// Coherent: the e10_cache=coherent consistency mode (§III-B).
//
// A writer rank caches a large extent on its local SSD; a reader on
// another node immediately tries to read-lock the same extent of the
// global file. With coherent mode the extent stays write-locked until the
// background sync has made it persistent in the global file system, so the
// reader blocks exactly as long as the data is in transit — it can never
// observe partially synchronised data.
//
//	go run ./examples/coherent
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/extent"
	"repro/internal/pfs"
)

func main() {
	cluster := repro.NewCluster(repro.Scaled(3, 2, 1))
	world := cluster.World
	comm := world.Comm()

	info := repro.Info{
		repro.HintCBWrite:           "enable",
		repro.HintE10Cache:          repro.CacheValueCoherent,
		repro.HintE10CacheFlushFlag: repro.FlushImmediate,
	}
	const extentSize = 64 << 20
	err := world.Run(func(r *repro.Rank) {
		f, err := cluster.Env.Open(r, comm, "shared.dat",
			repro.ModeCreate|repro.ModeRdWr, info)
		if err != nil {
			log.Fatal(err)
		}
		switch comm.RankOf(r) {
		case 0: // writer
			if err := f.Handle().WriteContig(nil, 0, extentSize); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[%v] writer: %d MB cached on local SSD, sync in flight\n",
				r.Now(), extentSize>>20)
			r.Compute(10 * repro.Second) // plenty to finish the sync
		case 1: // reader
			r.Compute(200 * repro.Millisecond) // let the writer cache first
			t0 := r.Now()
			lock := cluster.FS.Locks.Acquire(r.Proc(), "shared.dat",
				pfs.ReadLock, extent.Extent{Off: 0, Len: extentSize})
			fmt.Printf("[%v] reader: read lock granted after waiting %v\n",
				r.Now(), r.Now()-t0)
			buf := int64(1 << 20)
			if err := f.ReadAt(0, nil, buf); err != nil {
				log.Fatal(err)
			}
			cluster.FS.Locks.Unlock(lock)
			fmt.Printf("[%v] reader: consistent data read from the global file\n", r.Now())
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global file now holds %d bytes\n", cluster.FS.Lookup("shared.dat").Size())
}
