// Aggsweep: the paper's central trade-off on a laptop-sized grid.
//
// It sweeps the number of aggregators with and without the SSD cache and a
// short compute window, showing the crossover the paper warns about: with
// too few aggregators the cache flush cannot hide behind compute and
// perceived bandwidth collapses below the plain-file-system baseline,
// while with enough aggregators the cache wins by a wide margin.
//
//	go run ./examples/aggsweep
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	w := repro.CollPerf{RunBytes: 256 << 10, RunsY: 4, RunsZ: 4} // 4 MB/proc
	fmt.Println("aggregators | BW disabled | BW cache | TBW cache   (GB/s)")
	for _, aggs := range []int{1, 2, 4, 8, 16} {
		var bw [3]float64
		for i, cs := range repro.AllCases {
			spec := repro.DefaultSpec(w, cs, aggs, 4<<20)
			spec.Cluster = repro.Scaled(11, 16, 4)
			spec.NFiles = 3
			// A deliberately tight compute window: small aggregator
			// counts cannot hide the flush inside it.
			spec.ComputeDelay = 800 * repro.Millisecond
			res, err := repro.Run(spec)
			if err != nil {
				log.Fatal(err)
			}
			bw[i] = res.BandwidthGBs
		}
		marker := ""
		if bw[1] < bw[0] {
			marker = "  <- cache loses: flush not hidden"
		}
		fmt.Printf("%11d | %11.2f | %8.2f | %9.2f%s\n", aggs, bw[0], bw[1], bw[2], marker)
	}
}
