// Checkpoint: the paper's Figure 3 workflow with a legacy application.
//
// A simulation loop alternates compute and checkpoint phases. The
// application itself uses the classical open-write-close sequence; the
// MPIWRAP library (§III-C), configured from a small config text, injects
// the e10 cache hints and defers each close to the next checkpoint's open,
// so cache synchronisation hides behind the compute phases without any
// application change.
//
//	go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"

	"repro"
)

const wrapConfig = `
# Cache checkpoints on the node-local SSDs; hide the flush behind compute.
[file "ckpt*"]
romio_cb_write = enable
cb_nodes = 4
e10_cache = enable
e10_cache_flush_flag = flush_immediate
e10_cache_discard_flag = enable
defer_close = true
`

func main() {
	cluster := repro.NewCluster(repro.Scaled(7, 4, 4))
	world := cluster.World
	comm := world.Comm()
	cfg, err := repro.ParseWrapperConfig(wrapConfig)
	if err != nil {
		log.Fatal(err)
	}

	const (
		steps      = 3
		chunkBytes = 8 << 20 // per-rank checkpoint data
	)
	checkpointTimes := make([]repro.Time, steps)
	err = world.Run(func(r *repro.Rank) {
		wrap := repro.NewWrapper(cluster.Env, cfg, r)
		me := comm.RankOf(r)
		for step := 0; step < steps; step++ {
			// Compute phase: this is where the previous checkpoint's
			// cache flush runs in the background.
			r.Compute(10 * repro.Second)

			// I/O phase: classical open/write/close — MPIWRAP does the rest.
			t0 := r.Now()
			f, err := wrap.FileOpen(comm, fmt.Sprintf("ckpt.%04d", step),
				repro.ModeCreate|repro.ModeWrOnly, nil)
			if err != nil {
				log.Fatal(err)
			}
			off := int64(me) * chunkBytes
			if err := f.WriteAtAll(off, nil, chunkBytes); err != nil {
				log.Fatal(err)
			}
			if err := wrap.FileClose(f); err != nil {
				log.Fatal(err)
			}
			if me == 0 {
				checkpointTimes[step] = r.Now() - t0
			}
		}
		if err := wrap.Finalize(); err != nil {
			log.Fatal(err)
		}
		if me == 0 {
			fmt.Printf("deferred closes: %d, real closes: %d\n",
				wrap.DeferredCloses, wrap.RealCloses)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	total := int64(steps) * int64(world.Size()) * chunkBytes
	fmt.Printf("%d checkpoints of %d MB each written\n", steps, world.Size()*chunkBytes>>20)
	for step, t := range checkpointTimes {
		fmt.Printf("  checkpoint %d perceived I/O time: %v\n", step, t)
	}
	fmt.Printf("global file system received %d / %d bytes\n",
		cluster.FS.TotalBytesWritten(), total)
}
