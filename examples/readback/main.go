// Readback: write-then-read analysis workflow, MPI-IO consistency, and
// the cache-read extension.
//
// A producer phase writes a block-cyclic shared dataset collectively with
// the SSD cache. Per §III-B of the paper, that data only becomes globally
// visible after MPI_File_sync (or close) — so the consumer phase first
// syncs, then reads every rank's own slice back independently and
// collectively. Because the cache files are still warm (they are only
// discarded at close), ranks that acted as aggregators serve reads of
// their file domains straight from the local SSD when the (future-work,
// §VI) e10_cache_read hint is on.
//
//	go run ./examples/readback
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
)

func main() {
	cfg := repro.Scaled(99, 4, 2)
	cfg.Payload = true
	cluster := repro.NewCluster(cfg)
	world := cluster.World
	comm := world.Comm()

	info := repro.Info{
		repro.HintCBWrite:           "enable",
		repro.HintCBRead:            "enable",
		repro.HintCBNodes:           "4",
		repro.HintE10Cache:          repro.CacheValueEnable,
		repro.HintE10CacheFlushFlag: repro.FlushImmediate,
		"e10_cache_read":            "enable",
	}
	const blockLen = 8192
	nranks := world.Size()
	var cacheReads int64
	err := world.Run(func(r *repro.Rank) {
		f, err := cluster.Env.Open(r, comm, "dataset.h5",
			repro.ModeCreate|repro.ModeRdWr, info)
		if err != nil {
			log.Fatal(err)
		}
		me := comm.RankOf(r)
		ft := repro.Vector(8, blockLen, int64(nranks)*blockLen)
		if err := f.SetView(int64(me)*blockLen, ft); err != nil {
			log.Fatal(err)
		}
		data := bytes.Repeat([]byte{byte(me + 1)}, 8*blockLen)
		if err := f.WriteAtAll(0, data, int64(len(data))); err != nil {
			log.Fatal(err)
		}

		// §III-B: the data written by other ranks (via their aggregators)
		// is only guaranteed visible after MPI_File_sync returns.
		if err := f.Sync(); err != nil {
			log.Fatal(err)
		}
		comm.Barrier(r)

		// Independent read of my own slice. For aggregator ranks, the
		// extents inside their file domain come from the warm SSD cache.
		got := make([]byte, len(data))
		if err := f.ReadAt(0, got, 0); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			log.Fatalf("rank %d: own-slice read mismatch", me)
		}

		// Collective two-phase read of the same slice.
		if err := f.ReadAtAll(0, got, 0); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			log.Fatalf("rank %d: collective read mismatch", me)
		}

		if c, ok := f.Handle().InstalledHooks().(*core.Cache); ok {
			cacheReads += c.Stats.CacheReads
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset written, synced, read back twice; %d bytes verified per rank\n", 8*blockLen)
	fmt.Printf("reads served from warm SSD caches: %d\n", cacheReads)
	var ssdReads int64
	for _, fs := range cluster.NVMs {
		ssdReads += fs.Device().BytesRead
	}
	fmt.Printf("total bytes read from local SSDs (cache reads + sync): %d\n", ssdReads)
	fmt.Printf("simulated time: %v\n", cluster.Kernel.Now())
}
