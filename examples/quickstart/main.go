// Quickstart: build a small simulated cluster, write a shared file
// collectively with the E10 cache hints, and verify that after
// MPI_File_close every byte is in the global parallel file system.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 4-node × 4-rank machine with real payload bytes so we can verify
	// content end to end.
	cfg := repro.Scaled(42, 4, 4)
	cfg.Payload = true
	cluster := repro.NewCluster(cfg)
	world := cluster.World
	comm := world.Comm()

	// The hints of Tables I and II: force collective writes through two
	// aggregators, cache them on the node-local SSDs, flush in the
	// background, discard the cache files at close.
	info := repro.Info{
		repro.HintCBWrite:             "enable",
		repro.HintCBNodes:             "2",
		repro.HintCBBufferSize:        "1048576",
		repro.HintE10Cache:            repro.CacheValueEnable,
		repro.HintE10CachePath:        "/scratch",
		repro.HintE10CacheFlushFlag:   repro.FlushImmediate,
		repro.HintE10CacheDiscardFlag: "enable",
	}

	const blockLen = 4096
	nranks := world.Size()
	err := world.Run(func(r *repro.Rank) {
		f, err := cluster.Env.Open(r, comm, "quickstart.dat",
			repro.ModeCreate|repro.ModeWrOnly, info)
		if err != nil {
			log.Fatal(err)
		}
		// Each rank owns 4 interleaved blocks: a strided shared-file
		// pattern, the case collective I/O exists for.
		me := comm.RankOf(r)
		ft := repro.Vector(4, blockLen, int64(nranks)*blockLen)
		if err := f.SetView(int64(me)*blockLen, ft); err != nil {
			log.Fatal(err)
		}
		data := make([]byte, 4*blockLen)
		for i := range data {
			data[i] = byte(me + 1)
		}
		if err := f.WriteAtAll(0, data, int64(len(data))); err != nil {
			log.Fatal(err)
		}
		// Emulate a compute phase: the cache flush overlaps with it.
		r.Compute(2 * repro.Second)
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify the global file: every block must carry its owner's byte.
	meta := cluster.FS.Lookup("quickstart.dat")
	if meta == nil {
		log.Fatal("global file missing")
	}
	buf := make([]byte, meta.Size())
	meta.Store().ReadAt(buf, 0)
	for block := 0; block < 4*nranks; block++ {
		owner := byte(block%nranks + 1)
		for b := 0; b < blockLen; b++ {
			if buf[block*blockLen+b] != owner {
				log.Fatalf("block %d corrupted", block)
			}
		}
	}
	fmt.Printf("wrote and verified %d bytes through the SSD cache\n", meta.Size())
	fmt.Printf("simulated time: %v\n", cluster.Kernel.Now())
	for i, fs := range cluster.NVMs {
		if fs.Device().BytesWritten > 0 {
			fmt.Printf("node %d SSD absorbed %d bytes (cache discarded: %d in use)\n",
				i, fs.Device().BytesWritten, fs.Device().Used())
		}
	}
}
