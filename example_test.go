package repro_test

import (
	"fmt"

	"repro"
)

// Example runs one experiment cell — the coll_perf workload with the E10
// cache enabled — on a small simulated cluster and reports the perceived
// write bandwidth of Equation 2.
func Example() {
	w := repro.CollPerf{RunBytes: 64 << 10, RunsY: 4, RunsZ: 4} // 1 MB/process
	spec := repro.DefaultSpec(w, repro.CacheEnabled, 8, 4<<20)
	spec.Cluster = repro.Scaled(7, 8, 4) // 8 nodes x 4 ranks
	spec.NFiles = 1
	spec.ComputeDelay = repro.Second
	res, err := repro.Run(spec)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("bytes written:", res.TotalBytes)
	fmt.Println("bandwidth positive:", res.BandwidthGBs > 0)
	fmt.Println("sync hidden:", res.Breakdown["not_hidden_sync"] == 0)
	// Output:
	// bytes written: 33554432
	// bandwidth positive: true
	// sync hidden: true
}
