// Package repro is a from-scratch Go reproduction of "Improving Collective
// I/O Performance Using Non-Volatile Memory Devices" (Congiu,
// Narasimhamurthy, Süß, Brinkmann — IEEE CLUSTER 2016).
//
// The paper integrates node-local SSDs into ROMIO's collective write path
// as a persistent cache controlled by new MPI-IO hints (e10_cache and
// friends, Table II), with a background sync thread that drains cached
// file domains to the global parallel file system while the application
// computes. This package re-implements the whole stack as a deterministic
// discrete-event simulation: the MPI layer, ROMIO's extended two-phase
// collective write, a BeeGFS-like striped file system, node-local NVM
// devices, the E10 cache layer itself, the MPIWRAP workflow wrapper, and
// the three evaluation workloads (coll_perf, Flash-IO, IOR).
//
// This root package is the public facade: it re-exports the user-level
// types needed to build a simulated cluster, open files with the paper's
// hints, and regenerate every evaluation figure. The implementation lives
// in internal/ packages (see DESIGN.md for the system inventory).
//
// Quick start:
//
//	cluster := repro.NewCluster(repro.Scaled(1, 8, 4))
//	spec := repro.DefaultSpec(repro.DefaultCollPerf(), repro.CacheEnabled, 64, 16<<20)
//	res, err := repro.Run(spec)
//	fmt.Printf("%.2f GB/s\n", res.BandwidthGBs)
package repro

import (
	"repro/internal/adio"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/mpiwrap"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// ---- Simulation and cluster construction ----

// Time is virtual simulation time in nanoseconds.
type Time = sim.Time

// Time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// ClusterConfig describes a simulated machine; Cluster is the machine.
type (
	ClusterConfig = harness.ClusterConfig
	Cluster       = harness.Cluster
)

// DeepER returns the paper's 64-node × 8-rank testbed profile (§IV-A);
// Scaled shrinks it proportionally; NewCluster assembles the machine.
var (
	DeepER     = harness.DeepER
	Scaled     = harness.Scaled
	NewCluster = harness.NewCluster
)

// ---- MPI and MPI-IO surface ----

// Rank is one MPI process; Comm a communicator; Info an MPI_Info hint set.
type (
	Rank = mpi.Rank
	Comm = mpi.Comm
	Info = mpi.Info
)

// File is an open MPI-IO file; FlatType a flattened datatype for file
// views; Env the per-cluster open environment (available as Cluster.Env).
type (
	File     = mpiio.File
	FlatType = mpiio.FlatType
	Env      = mpiio.Env
)

// MPI_File_open access modes.
const (
	ModeRdOnly        = mpiio.ModeRdOnly
	ModeWrOnly        = mpiio.ModeWrOnly
	ModeRdWr          = mpiio.ModeRdWr
	ModeCreate        = mpiio.ModeCreate
	ModeDeleteOnClose = mpiio.ModeDeleteOnClose
)

// Contiguous, Vector and Subarray3D build flattened datatypes for file
// views (Subarray3D is MPI_Type_create_subarray over a byte etype).
var (
	Contiguous = mpiio.Contiguous
	Vector     = mpiio.Vector
	Subarray3D = mpiio.Subarray3D
)

// ---- Hints (Tables I and II of the paper) ----

// Standard ROMIO collective-I/O hints (Table I).
const (
	HintCBWrite         = adio.HintCBWrite
	HintCBRead          = adio.HintCBRead
	HintCBBufferSize    = adio.HintCBBufferSize
	HintCBNodes         = adio.HintCBNodes
	HintCBConfigList    = adio.HintCBConfigList
	HintIndWrBufferSize = adio.HintIndWrBufferSize
	HintIndRdBufferSize = adio.HintIndRdBufferSize
	HintStripingFactor  = adio.HintStripingFactor
	HintStripingUnit    = adio.HintStripingUnit
)

// E10 cache hint extensions (Table II), plus the e10_cache_read
// future-work extension.
const (
	HintE10Cache            = core.HintCache
	HintE10CachePath        = core.HintCachePath
	HintE10CacheFlushFlag   = core.HintFlushFlag
	HintE10CacheDiscardFlag = core.HintDiscardFlag
	HintE10CacheRead        = core.HintCacheRead
)

// Values for the e10_* hints. FlushAdaptive is the congestion-aware
// extension of §III's policy discussion.
const (
	CacheValueEnable   = core.CacheEnable
	CacheValueDisable  = core.CacheDisable
	CacheValueCoherent = core.CacheCoherent
	FlushImmediate     = core.FlushImmediate
	FlushOnClose       = core.FlushOnClose
	FlushAdaptive      = core.FlushAdaptive
)

// ---- MPIWRAP ----

// Wrapper applies the paper's §III-C workflow transformation (deferred
// close + config-file hints) around MPI_File_{open,close}.
type (
	Wrapper       = mpiwrap.Wrapper
	WrapperConfig = mpiwrap.Config
)

// NewWrapper creates the per-rank wrapper; ParseWrapperConfig parses the
// MPIWRAP configuration format.
var (
	NewWrapper         = mpiwrap.New
	ParseWrapperConfig = mpiwrap.ParseConfig
)

// ---- Workloads and experiments ----

// Workload is one of the paper's benchmarks; the three implementations are
// CollPerf, FlashIO and IOR.
type (
	Workload = workloads.Workload
	CollPerf = workloads.CollPerf
	FlashIO  = workloads.FlashIO
	IOR      = workloads.IOR
)

// Default workload configurations matching §IV.
var (
	DefaultCollPerf = workloads.DefaultCollPerf
	DefaultFlashIO  = workloads.DefaultFlashIO
	DefaultIOR      = workloads.DefaultIOR
)

// Case selects the evaluation data path; Spec and Result describe one
// experiment cell; Sweep and SweepResult cover the full grids of the
// paper's figures.
type (
	Case        = harness.Case
	Spec        = harness.Spec
	Result      = harness.Result
	Sweep       = harness.Sweep
	SweepResult = harness.SweepResult
)

// The three evaluation cases of Figures 4, 7 and 9.
const (
	CacheDisabled    = harness.CacheDisabled
	CacheEnabled     = harness.CacheEnabled
	CacheTheoretical = harness.CacheTheoretical
	// BurstBufferCase stages writes in dedicated NVMe proxies — the §V
	// comparator architecture, not part of the paper's own evaluation.
	BurstBufferCase = harness.BurstBuffer
)

// Experiment entry points.
var (
	DefaultSpec = harness.DefaultSpec
	Run         = harness.Run
	RunSweep    = harness.RunSweep
	PaperSweep  = harness.PaperSweep
	QuickSweep  = harness.QuickSweep
	AllCases    = harness.AllCases
)
