#!/bin/sh
# check.sh — the repo's tier-1 gate plus static, race and coverage checks.
#
#   scripts/check.sh          # fmt, build, vet, full tests, race (-short), coverage
#   scripts/check.sh -full    # same, but the race pass runs the full suite
#
# The race pass defaults to -short: the heavy end-to-end shape tests guard
# themselves with testing.Short() so the race detector finishes in seconds
# instead of minutes. Pass -full before a release. SKIP_RACE=1 skips the
# race pass entirely (for hosts where the race runtime is unavailable).
#
# A 25-iteration chaos smoke (see internal/chaos) also gates the run:
# seeded workload/fault scenarios checked against the end-to-end integrity
# oracles, plus a 25-iteration failover smoke (-netfaults: degraded-mode
# collective writes under lossy links, duplication, partitions and
# aggregator crashes) and a 25-iteration tenant smoke (-tenants:
# multi-tenant capacity arbitration and isolation under crashes and NVM
# faults). SKIP_CHAOS=1 skips all three; `make chaos` runs the
# 200-iteration soak. A 25-iteration corruption smoke (-corrupt:
# crash-then-corrupt scenarios — torn journal appends and NVM bit-rot
# before recovery, checked by the scrub/quarantine path) also gates the
# run; SKIP_CORRUPT=1 skips it and `make chaos-corrupt` runs the
# 200-iteration soak. The fuzz corpora also replay once (Fuzz* seeds as
# regression tests; SKIP_FUZZ=1 skips).
#
# A kilo-rank scale smoke also gates the run: the TestScale_ suite at
# 1024 ranks (clean, lossy and aggregator-crash collective writes checked
# for byte conservation, determinism and the committed report digests).
# SKIP_SCALE=1 skips it; `make scale` runs the 4096-rank soak.
#
# When a BENCH_*.json baseline is committed, the newest one also gates the
# run: any scenario whose virtual completion time regresses by more than 2%
# fails (SKIP_BENCH=1 skips this pass). A committed BENCH_SCALE_*.json
# additionally gates the 4096-rank kernel: its report digest must
# reproduce exactly and the measured events/sec must stay above the
# recorded floor (including the critical-path analyzer's own floor).
#
# A cardinality lint also gates the run: e10stat -lint rejects unbounded
# metric-label values and trace-name vocabularies (a raw rank id leaking
# into a label, say) over the demo pair's metrics and every committed JSON
# artifact. SKIP_LINT=1 skips it.
set -eu
cd "$(dirname "$0")/.."

# Minimum total statement coverage; the suite currently sits around 79%.
cover_min=70

race_flags="-short"
if [ "${1:-}" = "-full" ]; then
    race_flags=""
fi

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./...   (tier-1)"
go test ./...

if [ "${SKIP_RACE:-}" = "1" ]; then
    echo "== race pass skipped (SKIP_RACE=1)"
else
    echo "== go test -race $race_flags ./..."
    # shellcheck disable=SC2086 # race_flags is intentionally word-split
    go test -race -count=1 $race_flags ./...
fi

if [ "${SKIP_CHAOS:-}" = "1" ]; then
    echo "== chaos smoke skipped (SKIP_CHAOS=1)"
else
    echo "== chaos smoke (25 seeded scenarios through the integrity oracles)"
    go run ./cmd/e10chaos -iters 25 -seed 1
    echo "== failover chaos smoke (25 degraded-mode collective scenarios)"
    go run ./cmd/e10chaos -iters 25 -seed 2 -netfaults
    echo "== tenant chaos smoke (25 multi-tenant service-mode scenarios)"
    go run ./cmd/e10chaos -iters 25 -seed 3 -tenants
fi

if [ "${SKIP_CORRUPT:-}" = "1" ]; then
    echo "== corruption smoke skipped (SKIP_CORRUPT=1)"
else
    echo "== corruption chaos smoke (25 crash-then-corrupt scenarios)"
    go run ./cmd/e10chaos -iters 25 -seed 4 -corrupt
fi

if [ "${SKIP_FUZZ:-}" = "1" ]; then
    echo "== fuzz corpus replay skipped (SKIP_FUZZ=1)"
else
    echo "== fuzz corpus replay (committed Fuzz* seeds as regression tests)"
    go test -run 'Fuzz.*' ./...
fi

if [ "${SKIP_SCALE:-}" = "1" ]; then
    echo "== scale smoke skipped (SKIP_SCALE=1)"
else
    echo "== scale smoke (1024-rank collective writes: clean, lossy, crash)"
    go test ./internal/harness -run '^TestScale_' -count=1 -timeout 300s
fi

if [ "${SKIP_BENCH:-}" = "1" ]; then
    echo "== bench-compare skipped (SKIP_BENCH=1)"
else
    # BENCH_SCALE_*.json is the kilo-rank baseline, not a matrix baseline;
    # e10bench picks it up itself inside the same -bench-compare run.
    base=$(ls BENCH_*.json 2>/dev/null | grep -v '^BENCH_SCALE_' | sort | tail -1 || true)
    if [ -n "$base" ]; then
        echo "== bench-compare vs $base (>2% virtual-time regression fails)"
        go run ./cmd/e10bench -bench-compare "$base"
    else
        echo "== bench-compare skipped (no BENCH_*.json baseline)"
    fi
fi

if [ "${SKIP_LINT:-}" = "1" ]; then
    echo "== cardinality lint skipped (SKIP_LINT=1)"
else
    echo "== cardinality lint (metric labels and trace names stay bounded)"
    # shellcheck disable=SC2046 # artifact list is intentionally word-split
    go run ./cmd/e10stat -lint -run \
        $(ls BENCH_*.json 2>/dev/null || true) \
        internal/harness/testdata/*.json
fi

echo "== coverage gate (>= ${cover_min}% of statements)"
profile=$(mktemp)
trap 'rm -f "$profile"' EXIT
go test -count=1 -coverprofile="$profile" ./... >/dev/null
total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
echo "total coverage: ${total}%"
ok=$(awk -v t="$total" -v m="$cover_min" 'BEGIN {print (t+0 >= m) ? 1 : 0}')
if [ "$ok" != 1 ]; then
    echo "coverage ${total}% is below the ${cover_min}% gate" >&2
    exit 1
fi

echo "== all checks passed"
