#!/bin/sh
# check.sh — the repo's tier-1 gate plus static, race and coverage checks.
#
#   scripts/check.sh          # fmt, build, vet, full tests, race (-short), coverage
#   scripts/check.sh -full    # same, but the race pass runs the full suite
#
# The race pass defaults to -short: the heavy end-to-end shape tests guard
# themselves with testing.Short() so the race detector finishes in seconds
# instead of minutes. Pass -full before a release.
set -eu
cd "$(dirname "$0")/.."

# Minimum total statement coverage; the suite currently sits around 79%.
cover_min=70

race_flags="-short"
if [ "${1:-}" = "-full" ]; then
    race_flags=""
fi

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./...   (tier-1)"
go test ./...

echo "== go test -race $race_flags ./..."
# shellcheck disable=SC2086 # race_flags is intentionally word-split
go test -race -count=1 $race_flags ./...

echo "== coverage gate (>= ${cover_min}% of statements)"
profile=$(mktemp)
trap 'rm -f "$profile"' EXIT
go test -count=1 -coverprofile="$profile" ./... >/dev/null
total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
echo "total coverage: ${total}%"
ok=$(awk -v t="$total" -v m="$cover_min" 'BEGIN {print (t+0 >= m) ? 1 : 0}')
if [ "$ok" != 1 ]; then
    echo "coverage ${total}% is below the ${cover_min}% gate" >&2
    exit 1
fi

echo "== all checks passed"
