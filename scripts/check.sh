#!/bin/sh
# check.sh — the repo's tier-1 gate plus static and race checks.
#
#   scripts/check.sh          # build, vet, full tests, race tests (-short)
#   scripts/check.sh -full    # same, but the race pass runs the full suite
#
# The race pass defaults to -short: the heavy end-to-end shape tests guard
# themselves with testing.Short() so the race detector finishes in seconds
# instead of minutes. Pass -full before a release.
set -eu
cd "$(dirname "$0")/.."

race_flags="-short"
if [ "${1:-}" = "-full" ]; then
    race_flags=""
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./...   (tier-1)"
go test ./...

echo "== go test -race $race_flags ./..."
# shellcheck disable=SC2086 # race_flags is intentionally word-split
go test -race -count=1 $race_flags ./...

echo "== all checks passed"
