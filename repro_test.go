package repro

import (
	"testing"

	"repro/internal/harness"
)

// TestFacadeEndToEnd drives the library exactly the way the README's quick
// start does: build a cluster, write a strided shared file collectively
// through the cache, verify content end to end after close.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := Scaled(42, 4, 4)
	cfg.Payload = true
	cluster := NewCluster(cfg)
	world := cluster.World
	comm := world.Comm()

	info := Info{
		HintCBWrite:             "enable",
		HintCBNodes:             "4",
		HintCBBufferSize:        "262144",
		HintE10Cache:            CacheValueEnable,
		HintE10CacheFlushFlag:   FlushImmediate,
		HintE10CacheDiscardFlag: "enable",
	}
	const blockLen = 1024
	nranks := world.Size()
	err := world.Run(func(r *Rank) {
		f, err := cluster.Env.Open(r, comm, "facade.dat", ModeCreate|ModeWrOnly, info)
		if err != nil {
			t.Error(err)
			return
		}
		me := comm.RankOf(r)
		ft := Vector(4, blockLen, int64(nranks)*blockLen)
		if err := f.SetView(int64(me)*blockLen, ft); err != nil {
			t.Error(err)
		}
		data := make([]byte, 4*blockLen)
		for i := range data {
			data[i] = byte(me + 1)
		}
		if err := f.WriteAtAll(0, data, int64(len(data))); err != nil {
			t.Error(err)
		}
		r.Compute(2 * Second)
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	meta := cluster.FS.Lookup("facade.dat")
	if meta == nil {
		t.Fatal("file missing")
	}
	if meta.Size() != int64(4*nranks*blockLen) {
		t.Fatalf("size = %d", meta.Size())
	}
	buf := make([]byte, meta.Size())
	meta.Store().ReadAt(buf, 0)
	for block := 0; block < 4*nranks; block++ {
		owner := byte(block%nranks + 1)
		for b := 0; b < blockLen; b++ {
			if buf[block*blockLen+b] != owner {
				t.Fatalf("block %d byte %d = %d, want %d", block, b, buf[block*blockLen+b], owner)
			}
		}
	}
	// Discarded caches must have freed all SSD space.
	for i, fs := range cluster.NVMs {
		if fs.Device().Used() != 0 {
			t.Fatalf("node %d SSD still holds %d bytes", i, fs.Device().Used())
		}
	}
}

// TestFacadeExperiment runs a tiny experiment through the re-exported
// harness surface and sanity-checks the headline ordering.
func TestFacadeExperiment(t *testing.T) {
	w := CollPerf{RunBytes: 64 << 10, RunsY: 4, RunsZ: 4}
	bw := map[Case]float64{}
	for _, cs := range AllCases {
		spec := DefaultSpec(w, cs, 8, 4<<20)
		spec.Cluster = Scaled(7, 8, 4)
		spec.NFiles = 2
		spec.ComputeDelay = 2 * Second
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.BandwidthGBs <= 0 {
			t.Fatalf("case %s: zero bandwidth", cs)
		}
		bw[cs] = res.BandwidthGBs
	}
	if bw[CacheEnabled] <= bw[CacheDisabled] {
		t.Fatalf("cache (%f) must beat disabled (%f) here", bw[CacheEnabled], bw[CacheDisabled])
	}
}

// TestFacadeSweepRenders exercises RunSweep/Render* through the facade.
func TestFacadeSweepRenders(t *testing.T) {
	w := CollPerf{RunBytes: 32 << 10, RunsY: 2, RunsZ: 2}
	sw := Sweep{
		Aggregators: []int{2},
		CBBytes:     []int64{1 << 20},
		Cluster:     Scaled(3, 4, 2),
		NFiles:      1,
		Compute:     Second,
	}
	sr, err := RunSweep(w, []Case{CacheDisabled, CacheEnabled}, sw, false)
	if err != nil {
		t.Fatal(err)
	}
	if sr.RenderBandwidth("t") == "" || sr.RenderBreakdown("t", harness.CacheEnabled) == "" || sr.RenderCSV() == "" {
		t.Fatal("renderers returned empty output")
	}
}
