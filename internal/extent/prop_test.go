package extent

import (
	"math/rand"
	"testing"
)

// Property tests: a Set driven by a seeded random op sequence must agree with
// a brute-force byte-bitmap model and keep its internal invariants after
// every operation. The space is kept small ([0,worldSize) offsets) so the
// bitmap oracle is cheap and collisions between ops are frequent.

const (
	worldSize = 256            // offsets are drawn from [0, worldSize)
	modelSize = worldSize + 64 // generated extents may run past worldSize
)

// model is the reference implementation: one bool per byte.
type model [modelSize]bool

func (m *model) add(e Extent) {
	for o := e.Off; o < e.End() && o < modelSize; o++ {
		if o >= 0 {
			m[o] = true
		}
	}
}

func (m *model) remove(e Extent) {
	for o := e.Off; o < e.End() && o < modelSize; o++ {
		if o >= 0 {
			m[o] = false
		}
	}
}

func (m *model) total() int64 {
	var n int64
	for _, b := range m {
		if b {
			n++
		}
	}
	return n
}

func (m *model) covers(e Extent) bool {
	for o := e.Off; o < e.End(); o++ {
		if o < 0 || o >= modelSize || !m[o] {
			return false
		}
	}
	return true
}

func (m *model) overlaps(e Extent) bool {
	for o := e.Off; o < e.End(); o++ {
		if o >= 0 && o < modelSize && m[o] {
			return true
		}
	}
	return false
}

func (m *model) gaps(e Extent) []Extent {
	var out []Extent
	var cur *Extent
	for o := e.Off; o < e.End(); o++ {
		covered := o >= 0 && o < modelSize && m[o]
		if !covered {
			if cur != nil && cur.End() == o {
				cur.Len++
			} else {
				out = append(out, Extent{Off: o, Len: 1})
				cur = &out[len(out)-1]
			}
		} else {
			cur = nil
		}
	}
	return out
}

func randExtent(rng *rand.Rand) Extent {
	return Extent{Off: rng.Int63n(worldSize - 1), Len: 1 + rng.Int63n(48)}
}

func checkAgainstModel(t *testing.T, step int, s *Set, m *model) {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatalf("step %d: invariant violated: %v", step, err)
	}
	if got, want := s.TotalBytes(), m.total(); got != want {
		t.Fatalf("step %d: TotalBytes = %d, model says %d", step, got, want)
	}
	// Spot-check coverage queries on a few random probes per step.
	probe := Extent{Off: int64(step*7) % worldSize, Len: 1 + int64(step)%17}
	if got, want := s.Covers(probe), m.covers(probe); got != want {
		t.Fatalf("step %d: Covers(%v) = %v, model says %v", step, probe, got, want)
	}
	if got, want := s.Overlaps(probe), m.overlaps(probe); got != want {
		t.Fatalf("step %d: Overlaps(%v) = %v, model says %v", step, probe, got, want)
	}
	gGot, gWant := s.Gaps(probe), m.gaps(probe)
	if len(gGot) != len(gWant) {
		t.Fatalf("step %d: Gaps(%v) = %v, model says %v", step, probe, gGot, gWant)
	}
	for i := range gGot {
		if gGot[i] != gWant[i] {
			t.Fatalf("step %d: Gaps(%v)[%d] = %v, model says %v", step, probe, i, gGot[i], gWant[i])
		}
	}
}

func TestSetAgainstBitmapModel(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 20160901} {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		var m model
		for step := 0; step < 2000; step++ {
			e := randExtent(rng)
			if rng.Intn(3) == 0 {
				s.Remove(e)
				m.remove(e)
			} else {
				s.Add(e)
				m.add(e)
			}
			checkAgainstModel(t, step, &s, &m)
		}
	}
}

// TestAddIdempotent: adding an extent the set already covers changes nothing.
func TestAddIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var s Set
	for i := 0; i < 200; i++ {
		s.Add(randExtent(rng))
	}
	before := s.Extents()
	for _, e := range before {
		s.Add(e)
	}
	// Re-adding random sub-extents of covered ranges is also a no-op.
	for _, e := range before {
		if e.Len > 1 {
			s.Add(Extent{Off: e.Off + 1, Len: e.Len - 1})
		}
	}
	after := s.Extents()
	if len(before) != len(after) {
		t.Fatalf("idempotent re-add changed the set: %v -> %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("idempotent re-add changed extent %d: %v -> %v", i, before[i], after[i])
		}
	}
}

// TestAddOrderInvariance: the set is a function of the covered byte set, not
// of insertion order.
func TestAddOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	exts := make([]Extent, 64)
	for i := range exts {
		exts[i] = randExtent(rng)
	}
	var fwd, rev, shuf Set
	for _, e := range exts {
		fwd.Add(e)
	}
	for i := len(exts) - 1; i >= 0; i-- {
		rev.Add(exts[i])
	}
	perm := rng.Perm(len(exts))
	for _, i := range perm {
		shuf.Add(exts[i])
	}
	a, b, c := fwd.Extents(), rev.Extents(), shuf.Extents()
	if len(a) != len(b) || len(a) != len(c) {
		t.Fatalf("order-dependent result: %v / %v / %v", a, b, c)
	}
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("order-dependent extent %d: %v / %v / %v", i, a[i], b[i], c[i])
		}
	}
}

// TestRemoveAddRoundTrip: removing a covered range and re-adding it restores
// the set (conservation under the remove/add metamorphosis).
func TestRemoveAddRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		var s Set
		for i := 0; i < 50; i++ {
			s.Add(randExtent(rng))
		}
		before := s.Extents()
		total := s.TotalBytes()
		cut := randExtent(rng)
		if !s.Covers(cut) {
			continue
		}
		s.Remove(cut)
		if got := s.TotalBytes(); got != total-cut.Len {
			t.Fatalf("trial %d: removing covered %v dropped %d bytes, want %d",
				trial, cut, total-got, cut.Len)
		}
		s.Add(cut)
		after := s.Extents()
		if len(before) != len(after) {
			t.Fatalf("trial %d: remove/add round trip changed the set: %v -> %v", trial, before, after)
		}
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("trial %d: round trip changed extent %d: %v -> %v", trial, i, before[i], after[i])
			}
		}
	}
}

// TestExtentAlgebra: Intersect and Union laws on random pairs.
func TestExtentAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 5000; i++ {
		a, b := randExtent(rng), randExtent(rng)
		ab, ba := a.Intersect(b), b.Intersect(a)
		if ab.Empty() != ba.Empty() || (!ab.Empty() && ab != ba) {
			t.Fatalf("Intersect not commutative: %v ∩ %v = %v vs %v", a, b, ab, ba)
		}
		if ab.Empty() == a.Overlaps(b) {
			t.Fatalf("Overlaps(%v, %v) = %v but Intersect = %v", a, b, a.Overlaps(b), ab)
		}
		if !ab.Empty() {
			if !a.Covers(ab) || !b.Covers(ab) {
				t.Fatalf("intersection %v not covered by both %v and %v", ab, a, b)
			}
			u := a.Union(b)
			if u != b.Union(a) {
				t.Fatalf("Union not commutative for %v, %v", a, b)
			}
			if !u.Covers(a) || !u.Covers(b) {
				t.Fatalf("union %v does not cover %v and %v", u, a, b)
			}
			// |A ∪ B| = |A| + |B| - |A ∩ B| holds when the union is exact
			// (overlapping extents, no gap to bridge).
			if u.Len != a.Len+b.Len-ab.Len {
				t.Fatalf("inclusion-exclusion violated: |%v ∪ %v| = %d, want %d",
					a, b, u.Len, a.Len+b.Len-ab.Len)
			}
		}
		if a.Covers(b) && (!a.Overlaps(b) && !b.Empty()) {
			t.Fatalf("%v covers %v but does not overlap it", a, b)
		}
	}
}
