package extent_test

import (
	"fmt"

	"repro/internal/extent"
)

func ExampleSet_Gaps() {
	var s extent.Set
	s.Add(extent.Extent{Off: 0, Len: 4096})
	s.Add(extent.Extent{Off: 8192, Len: 4096})
	for _, g := range s.Gaps(extent.Extent{Off: 0, Len: 16384}) {
		fmt.Println(g)
	}
	// Output:
	// [4096,8192)
	// [12288,16384)
}

func ExampleSet_Add() {
	var s extent.Set
	s.Add(extent.Extent{Off: 0, Len: 100})
	s.Add(extent.Extent{Off: 200, Len: 100})
	s.Add(extent.Extent{Off: 100, Len: 100}) // bridges the two
	fmt.Println(s.Len(), s.TotalBytes())
	// Output:
	// 1 300
}
