// Package extent provides byte-range (offset, length) arithmetic and a
// coalescing interval set. It underpins sparse file stores, cache
// dirty-extent tracking and byte-range lock management.
package extent

import (
	"fmt"
	"sort"
)

// Extent is a half-open byte range [Off, Off+Len).
type Extent struct {
	Off int64
	Len int64
}

// End returns the exclusive end offset.
func (e Extent) End() int64 { return e.Off + e.Len }

// Empty reports whether the extent covers no bytes.
func (e Extent) Empty() bool { return e.Len <= 0 }

// Contains reports whether offset o lies inside the extent.
func (e Extent) Contains(o int64) bool { return o >= e.Off && o < e.End() }

// Overlaps reports whether e and o share at least one byte.
func (e Extent) Overlaps(o Extent) bool {
	return !e.Empty() && !o.Empty() && e.Off < o.End() && o.Off < e.End()
}

// Intersect returns the overlapping part of e and o (possibly empty).
func (e Extent) Intersect(o Extent) Extent {
	off := max64(e.Off, o.Off)
	end := min64(e.End(), o.End())
	if end <= off {
		return Extent{Off: off, Len: 0}
	}
	return Extent{Off: off, Len: end - off}
}

// Union returns the smallest extent covering both e and o. The two must
// overlap or touch; otherwise Union panics.
func (e Extent) Union(o Extent) Extent {
	if !e.Overlaps(o) && e.End() != o.Off && o.End() != e.Off {
		panic(fmt.Sprintf("extent: union of disjoint extents %v and %v", e, o))
	}
	off := min64(e.Off, o.Off)
	end := max64(e.End(), o.End())
	return Extent{Off: off, Len: end - off}
}

// Covers reports whether e fully contains o (empty extents are covered).
func (e Extent) Covers(o Extent) bool {
	return o.Empty() || (e.Off <= o.Off && e.End() >= o.End())
}

// String implements fmt.Stringer.
func (e Extent) String() string { return fmt.Sprintf("[%d,%d)", e.Off, e.End()) }

// Set is a sorted, coalesced set of non-overlapping extents.
type Set struct {
	ext []Extent // sorted by Off; no overlaps, no touching neighbours
}

// Add inserts e into the set, merging with overlapping or adjacent extents.
func (s *Set) Add(e Extent) {
	if e.Empty() {
		return
	}
	// Find the window of extents that overlap or touch e.
	i := sort.Search(len(s.ext), func(i int) bool { return s.ext[i].End() >= e.Off })
	j := i
	for j < len(s.ext) && s.ext[j].Off <= e.End() {
		j++
	}
	s.ext = mergeInto(s.ext, i, j, e)
}

// mergeInto replaces ext[i:j] with the union of e and those extents. The
// edit is done in place when capacity allows: Add sits on the per-write
// path of every store, cache and lock table, and allocating a fresh slice
// per insertion is quadratic churn on kilo-extent sets.
func mergeInto(ext []Extent, i, j int, e Extent) []Extent {
	lo, hi := e.Off, e.End()
	for k := i; k < j; k++ {
		lo = min64(lo, ext[k].Off)
		hi = max64(hi, ext[k].End())
	}
	merged := Extent{Off: lo, Len: hi - lo}
	switch {
	case j-i == 1:
		// Common case (overlap/extend one neighbour, or replace it): no
		// element moves at all.
		ext[i] = merged
		return ext
	case j-i > 1:
		// Net shrink: keep the prefix, drop the excess in place.
		ext[i] = merged
		n := copy(ext[i+1:], ext[j:])
		return ext[:i+1+n]
	default:
		// Net insert at i.
		ext = append(ext, Extent{})
		copy(ext[i+1:], ext[i:])
		ext[i] = merged
		return ext
	}
}

// Extents returns a copy of the extents in ascending offset order.
func (s *Set) Extents() []Extent {
	out := make([]Extent, len(s.ext))
	copy(out, s.ext)
	return out
}

// Len returns the number of disjoint extents.
func (s *Set) Len() int { return len(s.ext) }

// TotalBytes returns the number of bytes covered.
func (s *Set) TotalBytes() int64 {
	var n int64
	for _, e := range s.ext {
		n += e.Len
	}
	return n
}

// Covers reports whether every byte of e is in the set.
func (s *Set) Covers(e Extent) bool {
	if e.Empty() {
		return true
	}
	i := sort.Search(len(s.ext), func(i int) bool { return s.ext[i].End() > e.Off })
	return i < len(s.ext) && s.ext[i].Off <= e.Off && s.ext[i].End() >= e.End()
}

// Overlaps reports whether any byte of e is in the set.
func (s *Set) Overlaps(e Extent) bool {
	if e.Empty() {
		return false
	}
	i := sort.Search(len(s.ext), func(i int) bool { return s.ext[i].End() > e.Off })
	return i < len(s.ext) && s.ext[i].Off < e.End()
}

// Remove deletes e's byte range from the set, splitting extents as
// needed. Like Add, the edit is in place: only the extents overlapping e
// are touched, instead of rebuilding the whole slice per call.
func (s *Set) Remove(e Extent) {
	if e.Empty() || len(s.ext) == 0 {
		return
	}
	i := sort.Search(len(s.ext), func(i int) bool { return s.ext[i].End() > e.Off })
	if i == len(s.ext) || s.ext[i].Off >= e.End() {
		return // nothing overlaps
	}
	j := i
	for j < len(s.ext) && s.ext[j].Off < e.End() {
		j++
	}
	// Boundary remainders of the first and last overlapped extents.
	var left, right Extent
	hasLeft := s.ext[i].Off < e.Off
	if hasLeft {
		left = Extent{Off: s.ext[i].Off, Len: e.Off - s.ext[i].Off}
	}
	hasRight := s.ext[j-1].End() > e.End()
	if hasRight {
		right = Extent{Off: e.End(), Len: s.ext[j-1].End() - e.End()}
	}
	keep := 0
	if hasLeft {
		keep++
	}
	if hasRight {
		keep++
	}
	switch d := (j - i) - keep; {
	case d > 0: // net shrink: slide the tail left
		n := copy(s.ext[i+keep:], s.ext[j:])
		s.ext = s.ext[:i+keep+n]
	case d < 0: // d == -1: a mid-extent split grows the set by one
		s.ext = append(s.ext, Extent{})
		copy(s.ext[i+2:], s.ext[i+1:])
	}
	pos := i
	if hasLeft {
		s.ext[pos] = left
		pos++
	}
	if hasRight {
		s.ext[pos] = right
	}
}

// Gaps returns the sub-ranges of e not covered by the set, in order.
func (s *Set) Gaps(e Extent) []Extent {
	if e.Empty() {
		return nil
	}
	var gaps []Extent
	cur := e.Off
	for _, x := range s.ext {
		if x.End() <= cur {
			continue
		}
		if x.Off >= e.End() {
			break
		}
		if x.Off > cur {
			gaps = append(gaps, Extent{Off: cur, Len: x.Off - cur})
		}
		if x.End() > cur {
			cur = x.End()
		}
	}
	if cur < e.End() {
		gaps = append(gaps, Extent{Off: cur, Len: e.End() - cur})
	}
	return gaps
}

// Clear empties the set.
func (s *Set) Clear() { s.ext = nil }

// Max returns the largest covered offset+1, or 0 for an empty set.
func (s *Set) Max() int64 {
	if len(s.ext) == 0 {
		return 0
	}
	return s.ext[len(s.ext)-1].End()
}

// Validate checks the internal invariants (sortedness, no overlap or
// adjacency) and returns an error describing the first violation.
func (s *Set) Validate() error {
	for i, e := range s.ext {
		if e.Len <= 0 {
			return fmt.Errorf("extent %d empty: %v", i, e)
		}
		if i > 0 && s.ext[i-1].End() >= e.Off {
			return fmt.Errorf("extents %d and %d overlap or touch: %v %v", i-1, i, s.ext[i-1], e)
		}
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
