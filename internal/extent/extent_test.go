package extent

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestExtentBasics(t *testing.T) {
	e := Extent{Off: 10, Len: 5}
	if e.End() != 15 || e.Empty() {
		t.Fatal("end/empty wrong")
	}
	if !e.Contains(10) || !e.Contains(14) || e.Contains(15) || e.Contains(9) {
		t.Fatal("contains wrong")
	}
	if e.String() != "[10,15)" {
		t.Fatalf("string = %q", e.String())
	}
}

func TestOverlapsAndIntersect(t *testing.T) {
	a := Extent{0, 10}
	b := Extent{5, 10}
	c := Extent{10, 5}
	if !a.Overlaps(b) || a.Overlaps(c) {
		t.Fatal("overlap wrong")
	}
	got := a.Intersect(b)
	if got.Off != 5 || got.Len != 5 {
		t.Fatalf("intersect = %v", got)
	}
	if !a.Intersect(c).Empty() {
		t.Fatal("touching extents must not intersect")
	}
}

func TestUnionTouching(t *testing.T) {
	u := Extent{0, 10}.Union(Extent{10, 5})
	if u.Off != 0 || u.Len != 15 {
		t.Fatalf("union = %v", u)
	}
}

func TestUnionDisjointPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Extent{0, 5}.Union(Extent{10, 5})
}

func TestSetAddCoalesces(t *testing.T) {
	var s Set
	s.Add(Extent{0, 10})
	s.Add(Extent{20, 10})
	s.Add(Extent{10, 10}) // bridges the two
	if s.Len() != 1 {
		t.Fatalf("want 1 extent, got %v", s.Extents())
	}
	if s.TotalBytes() != 30 || s.Max() != 30 {
		t.Fatalf("total=%d max=%d", s.TotalBytes(), s.Max())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetAddAdjacentMerges(t *testing.T) {
	var s Set
	s.Add(Extent{0, 5})
	s.Add(Extent{5, 5})
	if s.Len() != 1 {
		t.Fatalf("adjacent extents must merge: %v", s.Extents())
	}
}

func TestSetCovers(t *testing.T) {
	var s Set
	s.Add(Extent{0, 10})
	s.Add(Extent{20, 10})
	if !s.Covers(Extent{2, 5}) || s.Covers(Extent{5, 10}) || s.Covers(Extent{15, 2}) {
		t.Fatal("covers wrong")
	}
	if !s.Covers(Extent{20, 0}) {
		t.Fatal("empty extent must always be covered")
	}
}

func TestSetOverlaps(t *testing.T) {
	var s Set
	s.Add(Extent{10, 10})
	if s.Overlaps(Extent{0, 10}) || !s.Overlaps(Extent{0, 11}) || !s.Overlaps(Extent{19, 5}) || s.Overlaps(Extent{20, 5}) {
		t.Fatal("overlaps wrong")
	}
}

func TestSetRemoveSplits(t *testing.T) {
	var s Set
	s.Add(Extent{0, 30})
	s.Remove(Extent{10, 10})
	got := s.Extents()
	if len(got) != 2 || got[0] != (Extent{0, 10}) || got[1] != (Extent{20, 10}) {
		t.Fatalf("remove split = %v", got)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetGaps(t *testing.T) {
	var s Set
	s.Add(Extent{10, 10})
	s.Add(Extent{30, 10})
	gaps := s.Gaps(Extent{0, 50})
	want := []Extent{{0, 10}, {20, 10}, {40, 10}}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v, want %v", gaps, want)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gaps = %v, want %v", gaps, want)
		}
	}
	if g := s.Gaps(Extent{10, 10}); len(g) != 0 {
		t.Fatalf("covered range must have no gaps, got %v", g)
	}
}

func TestSetClear(t *testing.T) {
	var s Set
	s.Add(Extent{0, 5})
	s.Clear()
	if s.Len() != 0 || s.Max() != 0 {
		t.Fatal("clear failed")
	}
}

// Property: a Set behaves like a set of bytes under Add/Remove.
func TestSetMatchesNaiveModel(t *testing.T) {
	const universe = 256
	f := func(seed int64, nOps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var s Set
		model := make(map[int64]bool)
		for op := 0; op < int(nOps%40)+5; op++ {
			off := r.Int63n(universe)
			length := r.Int63n(universe/4) + 1
			e := Extent{Off: off, Len: length}
			if r.Intn(3) == 0 {
				s.Remove(e)
				for b := e.Off; b < e.End(); b++ {
					delete(model, b)
				}
			} else {
				s.Add(e)
				for b := e.Off; b < e.End(); b++ {
					model[b] = true
				}
			}
			if err := s.Validate(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		// Compare byte-by-byte coverage.
		var bytes []int64
		for b := range model {
			bytes = append(bytes, b)
		}
		sort.Slice(bytes, func(i, j int) bool { return bytes[i] < bytes[j] })
		if int64(len(bytes)) != s.TotalBytes() {
			t.Logf("total bytes %d != model %d", s.TotalBytes(), len(bytes))
			return false
		}
		for b := int64(0); b < universe+universe/4; b++ {
			if model[b] != s.Covers(Extent{Off: b, Len: 1}) {
				t.Logf("byte %d: model=%v set=%v", b, model[b], !model[b])
				return false
			}
		}
		// Gaps over the whole universe must exactly complement coverage.
		covered := int64(0)
		for _, g := range s.Gaps(Extent{0, universe * 2}) {
			covered += g.Len
		}
		return covered == universe*2-s.TotalBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
