package extent

import "testing"

// kiloSet builds a set of n disjoint 1 KiB extents with 1 KiB holes —
// the shape a kilo-rank interleaved collective write produces in a store's
// written-set before the two-phase exchange coalesces it.
func kiloSet(n int) *Set {
	var s Set
	for i := 0; i < n; i++ {
		s.Add(Extent{Off: int64(i) * 2048, Len: 1024})
	}
	return &s
}

// BenchmarkSetAddCoalesce measures the hot write path: adds that bridge
// two existing extents, shrinking the set in place. Pre-rewrite this
// reallocated the whole backing slice on every call.
func BenchmarkSetAddCoalesce(b *testing.B) {
	const n = 4096
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := kiloSet(n)
		b.StartTimer()
		// Fill every hole: each Add merges its two neighbours.
		for j := 0; j < n-1; j++ {
			s.Add(Extent{Off: int64(j)*2048 + 1024, Len: 1024})
		}
		if s.Len() != 1 {
			b.Fatalf("set did not coalesce: %d extents", s.Len())
		}
	}
}

// BenchmarkSetAddExtend measures the append-only pattern of a contiguous
// writer: every add extends the set's last extent in place.
func BenchmarkSetAddExtend(b *testing.B) {
	b.ReportAllocs()
	var s Set
	for i := 0; i < b.N; i++ {
		s.Add(Extent{Off: int64(i) * 1024, Len: 1024})
	}
	if s.Len() != 1 {
		b.Fatalf("set did not stay coalesced: %d extents", s.Len())
	}
}

// BenchmarkSetRemoveSplit measures Remove carving holes out of one large
// extent — the cache-eviction pattern — growing the set by one per call.
func BenchmarkSetRemoveSplit(b *testing.B) {
	const n = 4096
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var s Set
		s.Add(Extent{Off: 0, Len: int64(n) * 2048})
		b.StartTimer()
		for j := 0; j < n-1; j++ {
			s.Remove(Extent{Off: int64(j)*2048 + 1024, Len: 1024})
		}
	}
}

// BenchmarkSetCovers measures the conservation oracle's inner loop: a
// binary-search containment probe against a kilo-extent set.
func BenchmarkSetCovers(b *testing.B) {
	const n = 4096
	s := kiloSet(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := Extent{Off: int64(i%n) * 2048, Len: 1024}
		if !s.Covers(e) {
			b.Fatalf("set should cover %v", e)
		}
	}
}

// BenchmarkExtentIntersect measures the pairwise range intersection used
// throughout the two-phase exchange to clip file domains.
func BenchmarkExtentIntersect(b *testing.B) {
	b.ReportAllocs()
	var total int64
	for i := 0; i < b.N; i++ {
		a := Extent{Off: int64(i % 1024), Len: 4096}
		c := Extent{Off: 2048, Len: 4096}
		total += a.Intersect(c).Len
	}
	_ = total
}

// BenchmarkSetGaps measures hole enumeration over a fragmented kilo-set,
// the read-modify-write planning path.
func BenchmarkSetGaps(b *testing.B) {
	const n = 1024
	s := kiloSet(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gaps := s.Gaps(Extent{Off: 0, Len: int64(n) * 2048})
		if len(gaps) != n {
			b.Fatalf("want %d gaps, got %d", n, len(gaps))
		}
	}
}
