package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mpe"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Sweep describes the <aggregators>_<coll_bufsize> grid of §IV: aggregators
// from 8 to 64 and collective buffers from 4 MB to 64 MB.
type Sweep struct {
	Aggregators []int
	CBBytes     []int64
	Cluster     ClusterConfig
	NFiles      int
	Compute     sim.Time
	FaultSpec   string // optional fault.Parse schedule armed on every cell
}

// PaperSweep returns the full evaluation grid on the DEEP-ER profile.
func PaperSweep(seed int64) Sweep {
	return Sweep{
		Aggregators: []int{8, 16, 32, 64},
		CBBytes:     []int64{4 << 20, 8 << 20, 16 << 20, 32 << 20, 64 << 20},
		Cluster:     DeepER(seed),
		NFiles:      4,
		Compute:     30 * sim.Second,
	}
}

// QuickSweep returns a reduced grid for fast regeneration (same corners,
// fewer interior points).
func QuickSweep(seed int64) Sweep {
	s := PaperSweep(seed)
	s.CBBytes = []int64{4 << 20, 16 << 20, 64 << 20}
	return s
}

// CellResult pairs a cell label with its per-case results.
type CellResult struct {
	Aggregators int
	CBBytes     int64
	Results     map[Case]*Result
}

// Label returns "<aggregators>_<coll_bufsize>".
func (c CellResult) Label() string {
	return fmt.Sprintf("%d_%dmb", c.Aggregators, c.CBBytes>>20)
}

// SweepResult holds a full workload sweep.
type SweepResult struct {
	Workload string
	Cells    []CellResult
}

// RunSweep executes every cell of the sweep for the given cases. The same
// results feed both the bandwidth figure and the breakdown figures of a
// workload. includeLastSync mirrors the IOR experiment's accounting.
func RunSweep(w workloads.Workload, cases []Case, sw Sweep, includeLastSync bool) (*SweepResult, error) {
	out := &SweepResult{Workload: w.Name()}
	for _, aggs := range sw.Aggregators {
		for _, cb := range sw.CBBytes {
			cell := CellResult{Aggregators: aggs, CBBytes: cb, Results: make(map[Case]*Result)}
			for _, cs := range cases {
				spec := Spec{
					Workload:        w,
					Cluster:         sw.Cluster,
					Case:            cs,
					Aggregators:     aggs,
					CBBuffer:        cb,
					NFiles:          sw.NFiles,
					ComputeDelay:    sw.Compute,
					IncludeLastSync: includeLastSync,
					StripeSize:      4 << 20,
					StripeCount:     4,
					SyncBuffer:      512 << 10,
					FaultSpec:       sw.FaultSpec,
				}
				res, err := Run(spec)
				if err != nil {
					return nil, fmt.Errorf("%s %s %s: %w", w.Name(), cell.Label(), cs, err)
				}
				cell.Results[cs] = res
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	return out, nil
}

// AllCases is the case list of the bandwidth figures.
var AllCases = []Case{CacheDisabled, CacheEnabled, CacheTheoretical}

// caseTitle maps cases to the paper's legend strings.
func caseTitle(c Case) string {
	switch c {
	case CacheDisabled:
		return "BW Cache Disabled"
	case CacheEnabled:
		return "BW Cache Enabled"
	case CacheTheoretical:
		return "TBW Cache Enable"
	}
	return string(c)
}

// RenderBandwidth renders a Figure 4/7/9-style table: one row per cell,
// one column per case, in GB/s.
func (sr *SweepResult) RenderBandwidth(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s perceived write bandwidth [GB/s]\n", title, sr.Workload)
	fmt.Fprintf(&b, "%-10s", "cell")
	var cases []Case
	for _, cs := range AllCases {
		if len(sr.Cells) > 0 && sr.Cells[0].Results[cs] != nil {
			cases = append(cases, cs)
			fmt.Fprintf(&b, " %22s", caseTitle(cs))
		}
	}
	b.WriteByte('\n')
	for _, cell := range sr.Cells {
		fmt.Fprintf(&b, "%-10s", cell.Label())
		for _, cs := range cases {
			fmt.Fprintf(&b, " %22.2f", cell.Results[cs].BandwidthGBs)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderBreakdown renders a Figure 5/6/8/10-style table: the per-phase
// collective I/O cost contributions (max over ranks, summed over files) for
// one case, one row per cell.
func (sr *SweepResult) RenderBreakdown(title string, cs Case) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s collective I/O contribution breakdown (%s) [s]\n",
		title, sr.Workload, caseTitle(cs))
	fmt.Fprintf(&b, "%-10s", "cell")
	for _, ph := range mpe.BreakdownPhases {
		fmt.Fprintf(&b, " %16s", ph)
	}
	b.WriteByte('\n')
	for _, cell := range sr.Cells {
		res := cell.Results[cs]
		if res == nil {
			continue
		}
		fmt.Fprintf(&b, "%-10s", cell.Label())
		for _, ph := range mpe.BreakdownPhases {
			fmt.Fprintf(&b, " %16.3f", res.Breakdown[ph].Seconds())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderCSV emits the sweep as CSV for external plotting.
func (sr *SweepResult) RenderCSV() string {
	var b strings.Builder
	b.WriteString("workload,aggregators,cb_mb,case,bandwidth_gbs,peak_buf_mb")
	for _, ph := range mpe.BreakdownPhases {
		fmt.Fprintf(&b, ",%s_s", ph)
	}
	b.WriteByte('\n')
	for _, cell := range sr.Cells {
		var cases []Case
		for cs := range cell.Results {
			cases = append(cases, cs)
		}
		sort.Slice(cases, func(i, j int) bool { return cases[i] < cases[j] })
		for _, cs := range cases {
			res := cell.Results[cs]
			fmt.Fprintf(&b, "%s,%d,%d,%s,%.3f,%.1f", sr.Workload, cell.Aggregators, cell.CBBytes>>20, cs,
				res.BandwidthGBs, float64(res.PeakBufBytes)/(1<<20))
			for _, ph := range mpe.BreakdownPhases {
				fmt.Fprintf(&b, ",%.3f", res.Breakdown[ph].Seconds())
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
