package harness

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/adio"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mpe"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/nvm"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// JobSpec describes one tenant job in a multi-tenant run: an independent
// application with its own rank set, workload, collective-buffering
// parameters and NVM-cache budget.
type JobSpec struct {
	Name         string // tenant identity (e10_tenant); must be unique
	Ranks        int    // world ranks assigned to this job
	Workload     workloads.Workload
	NFiles       int      // files written (0 = 1)
	ComputeDelay sim.Time // emulated compute phase between files
	StartDelay   sim.Time // delay before the job's first open (staggered arrival)
	Aggregators  int      // cb_nodes within the job's communicator
	CBBuffer     int64    // cb_buffer_size in bytes
	SyncBuffer   int64    // ind_wr_buffer_size (0 = adio default)
	FlushFlag    string   // e10_cache_flush_flag (default flush_immediate)
	CacheMode    string   // e10_cache (default enable)

	// NVM budget (per device). Zero values mean unlimited / no reservation.
	QuotaBytes int64  // e10_tenant_quota_bytes
	QuotaFiles int    // e10_tenant_quota_files
	Reserve    int64  // e10_tenant_reserve (admission floor)
	Admit      string // e10_tenant_admit: reject (default) | queue
	Policy     string // e10_tenant_policy: block (default) | writethrough

	// ExtraHints are merged last into the job's MPI_Info.
	ExtraHints map[string]string
}

// MultiSpec describes one multi-tenant service-mode run: several jobs
// sharing one cluster's PFS and per-node NVM devices.
type MultiSpec struct {
	Cluster     ClusterConfig
	Jobs        []JobSpec
	Metrics     bool // enable the metrics registry (Result.Metrics)
	TraceEvents bool // enable the event tracer (Result.Trace)
}

// JobResult is one tenant's outcome.
type JobResult struct {
	Name         string
	Ranks        int
	TotalBytes   int64
	BandwidthGBs float64    // Equation-2 perceived bandwidth for this job
	WallTime     sim.Time   // first open to last close, job-local
	Stats        core.Stats // cache stats summed over the job's ranks
	// Fallbacks counts file sessions that ran uncached (admission rejected
	// or no usable cache) — the job still completes through the PFS.
	Fallbacks int
	// Err is the job's first error, nil when the job completed. Capacity
	// pressure alone must never set it.
	Err error
}

// MultiResult is a multi-tenant run's outcome.
type MultiResult struct {
	Spec     MultiSpec
	Jobs     []JobResult
	WallTime sim.Time
	Trace    *trace.Tracer     // non-nil when Spec.TraceEvents
	Metrics  *metrics.Registry // non-nil when Spec.Metrics
	Report   string            // post-run cluster resource summary
}

// hints builds one job's MPI_Info, including the tenant budget hints.
func (j JobSpec) hints() mpi.Info {
	aggs := j.Aggregators
	if aggs <= 0 {
		aggs = 1
	}
	cb := j.CBBuffer
	if cb <= 0 {
		cb = 4 << 20
	}
	info := mpi.Info{
		adio.HintCBWrite:      adio.HintEnable,
		adio.HintCBNodes:      strconv.Itoa(aggs),
		adio.HintCBBufferSize: strconv.FormatInt(cb, 10),
	}
	if j.SyncBuffer > 0 {
		info[adio.HintIndWrBufferSize] = strconv.FormatInt(j.SyncBuffer, 10)
	}
	mode := j.CacheMode
	if mode == "" {
		mode = core.CacheEnable
	}
	info[core.HintCache] = mode
	if mode != core.CacheDisable {
		flush := j.FlushFlag
		if flush == "" {
			flush = core.FlushImmediate
		}
		info[core.HintFlushFlag] = flush
		info[core.HintDiscardFlag] = "enable"
		info[core.HintCachePath] = "/scratch"
		info[core.HintTenant] = j.Name
		if j.QuotaBytes > 0 {
			info[core.HintTenantQuotaBytes] = strconv.FormatInt(j.QuotaBytes, 10)
		}
		if j.QuotaFiles > 0 {
			info[core.HintTenantQuotaFiles] = strconv.Itoa(j.QuotaFiles)
		}
		if j.Reserve > 0 {
			info[core.HintTenantReserve] = strconv.FormatInt(j.Reserve, 10)
		}
		if j.Admit != "" {
			info[core.HintTenantAdmit] = j.Admit
		}
		if j.Policy != "" {
			info[core.HintTenantPolicy] = j.Policy
		}
	}
	for k, v := range j.ExtraHints {
		info[k] = v
	}
	return info
}

// RunMulti executes several tenant jobs concurrently on one freshly built
// cluster. World ranks are assigned to jobs in contiguous blocks, in job
// order; ranks beyond the jobs' total idle. Each job opens its own files
// over a Split communicator, so the jobs interleave on the shared fabric,
// PFS and NVM devices but never synchronize with each other.
func RunMulti(spec MultiSpec) (*MultiResult, error) {
	if len(spec.Jobs) == 0 {
		return nil, errors.New("harness: RunMulti needs at least one job")
	}
	total := 0
	seen := make(map[string]bool)
	for _, j := range spec.Jobs {
		if j.Name == "" {
			return nil, errors.New("harness: JobSpec.Name must be set")
		}
		if seen[j.Name] {
			return nil, fmt.Errorf("harness: duplicate job name %q", j.Name)
		}
		seen[j.Name] = true
		if j.Ranks <= 0 {
			return nil, fmt.Errorf("harness: job %q needs ranks", j.Name)
		}
		if j.Workload == nil {
			return nil, fmt.Errorf("harness: job %q needs a workload", j.Name)
		}
		total += j.Ranks
	}
	cl := NewCluster(spec.Cluster)
	if total > cl.World.Size() {
		return nil, fmt.Errorf("harness: jobs need %d ranks, world has %d", total, cl.World.Size())
	}
	var tr *trace.Tracer
	if spec.TraceEvents {
		tr = trace.New()
		cl.Kernel.SetTracer(tr)
	}
	var reg *metrics.Registry
	if spec.Metrics {
		reg = metrics.New()
		cl.Kernel.SetMetrics(reg)
	}

	w := cl.World
	comm := w.Comm()
	njobs := len(spec.Jobs)
	// jobOf maps a world rank to its job (or -1: idle).
	jobOf := make([]int, w.Size())
	starts := make([]int, njobs)
	next := 0
	for i, j := range spec.Jobs {
		starts[i] = next
		for k := 0; k < j.Ranks; k++ {
			jobOf[next] = i
			next++
		}
	}
	for i := next; i < w.Size(); i++ {
		jobOf[i] = -1
	}

	infos := make([]mpi.Info, njobs)
	for i, j := range spec.Jobs {
		infos[i] = j.hints()
	}
	type rankOut struct {
		stats     core.Stats
		fallbacks int
		err       error
		start     sim.Time
		end       sim.Time
	}
	outs := make([]rankOut, w.Size())
	// Per-job, per-file write times and close waits, job-rank-0 view.
	writeTimes := make([][]sim.Time, njobs)
	closeWaits := make([][][]sim.Time, njobs)
	for i, j := range spec.Jobs {
		nf := j.NFiles
		if nf <= 0 {
			nf = 1
		}
		writeTimes[i] = make([]sim.Time, nf)
		closeWaits[i] = make([][]sim.Time, nf)
		for k := range closeWaits[i] {
			closeWaits[i][k] = make([]sim.Time, j.Ranks)
		}
	}

	err := w.Run(func(r *mpi.Rank) {
		me := comm.RankOf(r)
		ji := jobOf[me]
		// Split is collective over the world: every rank participates,
		// idle ranks (color < 0) get a nil communicator and retire.
		jcomm := comm.Split(r, ji, me)
		if ji < 0 {
			return
		}
		job := spec.Jobs[ji]
		if job.StartDelay > 0 {
			r.Compute(job.StartDelay)
		}
		out := &outs[me]
		out.start = r.Now()
		jme := me - starts[ji]
		nf := job.NFiles
		if nf <= 0 {
			nf = 1
		}
		log := mpe.NewLog()
		fail := func(err error) {
			if err != nil && out.err == nil {
				out.err = err
			}
		}
		accounted := make(map[*adio.File]bool)
		account := func(f *mpiio.File) {
			h := f.Handle()
			if accounted[h] {
				return
			}
			accounted[h] = true
			if h.Stats.CacheFallback {
				out.fallbacks++
			}
			if c, ok := h.InstalledHooks().(*core.Cache); ok && c != nil {
				out.stats = addStats(out.stats, c.Stats)
			}
		}
		var prev *mpiio.File
		prevIdx := -1
		closePrev := func() {
			if prev == nil {
				return
			}
			jcomm.Barrier(r)
			t0 := r.Now()
			fail(prev.Close())
			closeWaits[ji][prevIdx][jme] = r.Now() - t0
			account(prev)
			prev, prevIdx = nil, -1
		}
		for k := 0; k < nf; k++ {
			closePrev()
			if out.err != nil {
				break
			}
			jcomm.Barrier(r)
			t0 := r.Now()
			f, err := cl.Env.OpenWithLog(r, jcomm,
				fmt.Sprintf("%s.%04d", job.Name, k),
				mpiio.ModeCreate|mpiio.ModeWrOnly, infos[ji], log)
			if err != nil {
				fail(err)
				break
			}
			fail(job.Workload.WritePhase(r, f, spec.Cluster.Payload))
			jcomm.Barrier(r)
			if jme == 0 {
				writeTimes[ji][k] = r.Now() - t0
			}
			prev, prevIdx = f, k
			if k < nf-1 {
				r.Compute(job.ComputeDelay)
			}
		}
		closePrev()
		out.end = r.Now()
	})
	if err != nil {
		return nil, err
	}

	res := &MultiResult{Spec: spec, WallTime: cl.Kernel.Now()}
	res.Report = ClusterReport(cl)
	if tr != nil {
		res.Trace = tr
	}
	if reg != nil {
		res.Metrics = reg
	}
	for i, j := range spec.Jobs {
		jr := JobResult{Name: j.Name, Ranks: j.Ranks}
		nf := j.NFiles
		if nf <= 0 {
			nf = 1
		}
		jr.TotalBytes = j.Workload.FileBytes(j.Ranks) * int64(nf)
		for ri := starts[i]; ri < starts[i]+j.Ranks; ri++ {
			o := outs[ri]
			jr.Stats = addStats(jr.Stats, o.stats)
			jr.Fallbacks += o.fallbacks
			if o.err != nil && jr.Err == nil {
				jr.Err = o.err
			}
			if span := o.end - o.start; span > jr.WallTime {
				jr.WallTime = span
			}
		}
		var denom sim.Time
		for k := 0; k < nf; k++ {
			var wait sim.Time
			for _, cw := range closeWaits[i][k] {
				if cw > wait {
					wait = cw
				}
			}
			if wait < 10*sim.Millisecond {
				wait = 0
			}
			if k == nf-1 {
				// Like coll_perf/Flash-IO (§IV-B), the final close's sync is
				// excluded from the job's perceived bandwidth.
				wait = 0
			}
			denom += writeTimes[i][k] + wait
		}
		if denom > 0 && jr.Err == nil {
			jr.BandwidthGBs = float64(jr.TotalBytes) / denom.Seconds() / 1e9
		}
		res.Jobs = append(res.Jobs, jr)
	}
	return res, nil
}

// addStats sums two cache-stat records field by field (booleans OR).
func addStats(a, b core.Stats) core.Stats {
	a.CacheWrites += b.CacheWrites
	a.CacheBytes += b.CacheBytes
	a.SyncedBytes += b.SyncedBytes
	a.SyncRequests += b.SyncRequests
	a.WriteThroughs += b.WriteThroughs
	a.FlushWaits += b.FlushWaits
	a.FlushWaitTime += b.FlushWaitTime
	a.CoherentLockHeld += b.CoherentLockHeld
	a.CacheReads += b.CacheReads
	a.Backoffs += b.Backoffs
	a.SyncRetries += b.SyncRetries
	a.SyncFailures += b.SyncFailures
	a.RecoveredExtents += b.RecoveredExtents
	a.RecoveredBytes += b.RecoveredBytes
	a.CacheDegraded = a.CacheDegraded || b.CacheDegraded
	a.QuotaStalls += b.QuotaStalls
	a.QuotaStallTime += b.QuotaStallTime
	a.QuotaWriteThroughs += b.QuotaWriteThroughs
	a.EvictedBytes += b.EvictedBytes
	a.AdmitRejects += b.AdmitRejects
	return a
}

// Devices returns the per-node NVM devices (chaos and tests inspect their
// arbiters after a run).
func (cl *Cluster) Devices() []*nvm.Device {
	out := make([]*nvm.Device, len(cl.NVMs))
	for i, fs := range cl.NVMs {
		out[i] = fs.Device()
	}
	return out
}
