package harness

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/critpath"
)

// ScaleBenchSchema identifies the kilo-rank benchmark baseline format
// (BENCH_SCALE_<date>.json).
const ScaleBenchSchema = "e10scalebench/v1"

// ScaleBenchRanks is the scale the bench tier runs at: the largest golden
// cell, 4096 ranks on 512 nodes.
const ScaleBenchRanks = 4096

// ScaleBenchReport is the kilo-rank kernel-throughput baseline. Digest,
// WallTimeNs and Events are deterministic and must reproduce exactly;
// EventsPerSec is the host-side measurement at record time, and
// EventsPerSecFloor the conservative gate derived from it — a later run
// whose throughput falls below the floor fails the compare, catching
// kernel-performance regressions that virtual time cannot see.
type ScaleBenchReport struct {
	Schema            string       `json:"schema"`
	Variant           ScaleVariant `json:"variant"`
	Ranks             int          `json:"ranks"`
	Seed              int64        `json:"seed"`
	Digest            string       `json:"digest"`
	WallTimeNs        int64        `json:"wall_time_ns"`
	Events            int64        `json:"events"`
	EventsPerSec      float64      `json:"events_per_sec"`
	EventsPerSecFloor float64      `json:"events_per_sec_floor"`
	// CritPathEventsPerSec is the host-side throughput of the critical-path
	// analyzer over a synthetic 4096-rank trace (trace events consumed per
	// second), and CritPathFloor the conservative gate derived from it. Both
	// are zero in baselines recorded before the analyzer existed, which
	// disables the gate.
	CritPathEventsPerSec float64 `json:"critpath_events_per_sec,omitempty"`
	CritPathFloor        float64 `json:"critpath_floor,omitempty"`
}

// scaleBenchFloorDiv sets the recorded floor at measured/2: enough headroom
// for slower hosts and noisy neighbours, while still failing on an
// order-of-magnitude kernel regression (the pre-optimisation kernel ran
// below half the optimised throughput).
const scaleBenchFloorDiv = 2

// RunScaleBench runs the 4096-rank clean collective write and returns the
// throughput report.
func RunScaleBench(seed int64) (*ScaleBenchReport, error) {
	rep, err := RunScale(ScaleConfig{Variant: ScaleClean, Ranks: ScaleBenchRanks, Seed: seed})
	if err != nil {
		return nil, err
	}
	cpPerSec := measureCritPathThroughput()
	return &ScaleBenchReport{
		Schema:               ScaleBenchSchema,
		Variant:              ScaleClean,
		Ranks:                rep.Ranks,
		Seed:                 rep.Seed,
		Digest:               rep.Digest(),
		WallTimeNs:           rep.WallTimeNs,
		Events:               rep.Events,
		EventsPerSec:         rep.EventsPerSec,
		EventsPerSecFloor:    rep.EventsPerSec / scaleBenchFloorDiv,
		CritPathEventsPerSec: cpPerSec,
		CritPathFloor:        cpPerSec / scaleBenchFloorDiv,
	}, nil
}

// critPathBenchIters trades measurement noise against record time: three
// ~35ms analyzer passes keep the host-side cost of a record or compare run
// around a tenth of a second.
const critPathBenchIters = 3

// measureCritPathThroughput times the critical-path analyzer over the
// synthetic 4096-rank trace and returns trace events consumed per second.
func measureCritPathThroughput() float64 {
	tr := critpath.SyntheticTrace(ScaleBenchRanks)
	n := len(tr.Events())
	start := time.Now()
	for i := 0; i < critPathBenchIters; i++ {
		critpath.Analyze(tr, 0)
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(n*critPathBenchIters) / elapsed
}

// MarshalScaleBench renders a report as the committed JSON baseline.
func MarshalScaleBench(rep *ScaleBenchReport) ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scalebench: %w", err)
	}
	return append(b, '\n'), nil
}

// ParseScaleBench decodes a BENCH_SCALE_*.json baseline.
func ParseScaleBench(data []byte) (*ScaleBenchReport, error) {
	var rep ScaleBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("scalebench: %w", err)
	}
	if rep.Schema != ScaleBenchSchema {
		return nil, fmt.Errorf("scalebench: unsupported schema %q (want %q)", rep.Schema, ScaleBenchSchema)
	}
	return &rep, nil
}

// CompareScaleBench gates cur against the committed baseline: the digest,
// virtual wall time and event count must reproduce exactly (the simulation
// is deterministic), and the measured throughput must not fall below the
// recorded floor.
func CompareScaleBench(base, cur *ScaleBenchReport) error {
	if cur.Digest != base.Digest {
		return fmt.Errorf("scalebench: digest %s, baseline %s — the simulation diverged", cur.Digest, base.Digest)
	}
	if cur.WallTimeNs != base.WallTimeNs || cur.Events != base.Events {
		return fmt.Errorf("scalebench: wall=%dns events=%d, baseline wall=%dns events=%d",
			cur.WallTimeNs, cur.Events, base.WallTimeNs, base.Events)
	}
	if cur.EventsPerSec < base.EventsPerSecFloor {
		return fmt.Errorf("scalebench: %.0f events/sec is below the recorded floor %.0f (baseline measured %.0f)",
			cur.EventsPerSec, base.EventsPerSecFloor, base.EventsPerSec)
	}
	if base.CritPathFloor > 0 && cur.CritPathEventsPerSec < base.CritPathFloor {
		return fmt.Errorf("scalebench: critpath analyzer at %.0f events/sec is below the recorded floor %.0f (baseline measured %.0f)",
			cur.CritPathEventsPerSec, base.CritPathFloor, base.CritPathEventsPerSec)
	}
	return nil
}
