package harness

import (
	"testing"

	"repro/internal/mpe"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// These tests pin the paper's qualitative findings at a reduced scale
// (16 nodes × 8 ranks, ~1 GB files). They are the regression net for the
// calibration: if a model change breaks one of the orderings the paper
// demonstrates, a test fails even though all unit tests still pass.

func shapeSpec(cs Case, aggs int, cb int64) Spec {
	w := workloads.CollPerf{RunBytes: 128 << 10, RunsY: 8, RunsZ: 8} // 8 MB/proc
	spec := DefaultSpec(w, cs, aggs, cb)
	spec.Cluster = Scaled(20160901, 16, 8)
	spec.NFiles = 2
	spec.ComputeDelay = 4 * sim.Second
	return spec
}

func mustRun(t *testing.T, spec Spec) *Result {
	t.Helper()
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Paper §IV-B / Figure 4: with enough aggregators the cache multiplies
// collective write bandwidth several-fold over the plain file system, and
// the theoretical bandwidth bounds the measured one.
func TestShapeCacheWinsWithEnoughAggregators(t *testing.T) {
	dis := mustRun(t, shapeSpec(CacheDisabled, 16, 4<<20))
	en := mustRun(t, shapeSpec(CacheEnabled, 16, 4<<20))
	tbw := mustRun(t, shapeSpec(CacheTheoretical, 16, 4<<20))
	if en.BandwidthGBs < 3*dis.BandwidthGBs {
		t.Fatalf("cache should win big: enabled %.2f vs disabled %.2f", en.BandwidthGBs, dis.BandwidthGBs)
	}
	if tbw.BandwidthGBs < en.BandwidthGBs*0.95 {
		t.Fatalf("theoretical %.2f must bound enabled %.2f", tbw.BandwidthGBs, en.BandwidthGBs)
	}
}

// Paper §IV-B / Figure 5: with too few aggregators the flush cannot hide
// inside the compute window; not_hidden_sync appears and the measured
// bandwidth collapses far below the theoretical one — it "can even
// degrade" below the no-cache baseline.
func TestShapeTooFewAggregatorsExposeSync(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy end-to-end run; skipped in -short mode")
	}
	spec := shapeSpec(CacheEnabled, 2, 4<<20)
	spec.ComputeDelay = sim.Second
	en := mustRun(t, spec)
	if en.Breakdown[mpe.PhaseNotHiddenSync] <= 0 {
		t.Fatal("expected non-hidden synchronisation with 2 aggregators")
	}
	tspec := shapeSpec(CacheTheoretical, 2, 4<<20)
	tspec.ComputeDelay = sim.Second
	tbw := mustRun(t, tspec)
	if en.BandwidthGBs > tbw.BandwidthGBs/2 {
		t.Fatalf("exposed sync must crush bandwidth: enabled %.2f vs theoretical %.2f",
			en.BandwidthGBs, tbw.BandwidthGBs)
	}
	dspec := shapeSpec(CacheDisabled, 2, 4<<20)
	dspec.ComputeDelay = sim.Second
	dis := mustRun(t, dspec)
	if en.BandwidthGBs > dis.BandwidthGBs*1.2 {
		t.Fatalf("with unhidden sync the cache must not win big: enabled %.2f vs disabled %.2f",
			en.BandwidthGBs, dis.BandwidthGBs)
	}
}

// Paper §IV-B, Figures 5 vs 6: the cache consistently reduces the global
// synchronisation contributions (shuffle_all2all and post_write).
func TestShapeCacheReducesGlobalSyncCost(t *testing.T) {
	dis := mustRun(t, shapeSpec(CacheDisabled, 16, 4<<20))
	en := mustRun(t, shapeSpec(CacheEnabled, 16, 4<<20))
	disSync := dis.Breakdown[mpe.PhaseShuffleA2A] + dis.Breakdown[mpe.PhasePostWrite]
	enSync := en.Breakdown[mpe.PhaseShuffleA2A] + en.Breakdown[mpe.PhasePostWrite]
	if enSync >= disSync {
		t.Fatalf("cache must reduce global sync cost: %v vs %v", enSync, disSync)
	}
	if en.Breakdown[mpe.PhaseWrite] >= dis.Breakdown[mpe.PhaseWrite] {
		t.Fatalf("SSD writes must beat PFS writes: %v vs %v",
			en.Breakdown[mpe.PhaseWrite], dis.Breakdown[mpe.PhaseWrite])
	}
}

// Paper §IV-B (end): with the cache, larger collective buffers stop
// mattering much — good performance with small buffers reduces memory
// pressure. The relative gain from 8x bigger buffers must be much larger
// without the cache than with it.
func TestShapeSmallBuffersSufficeWithCache(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy end-to-end run; skipped in -short mode")
	}
	small, big := int64(1<<20), int64(8<<20)
	disSmall := mustRun(t, shapeSpec(CacheDisabled, 16, small)).BandwidthGBs
	disBig := mustRun(t, shapeSpec(CacheDisabled, 16, big)).BandwidthGBs
	enSmall := mustRun(t, shapeSpec(CacheEnabled, 16, small)).BandwidthGBs
	enBig := mustRun(t, shapeSpec(CacheEnabled, 16, big)).BandwidthGBs
	disGain := disBig / disSmall
	enGain := enBig / enSmall
	if enGain >= disGain {
		t.Fatalf("buffer-size sensitivity must drop with the cache: cache gain %.2fx vs disabled gain %.2fx",
			enGain, disGain)
	}
}

// Paper §IV-D / Figures 9-10: accounting the last write's synchronisation
// (no trailing compute phase) caps IOR's peak bandwidth between the
// disabled and theoretical cases.
func TestShapeIORLastWriteCapsPeak(t *testing.T) {
	ior := workloads.IOR{BlockBytes: 2 << 20, Segments: 4}
	mk := func(cs Case) Spec {
		spec := DefaultSpec(ior, cs, 16, 4<<20)
		spec.Cluster = Scaled(20160901, 16, 8)
		spec.NFiles = 2
		spec.ComputeDelay = 4 * sim.Second
		spec.IncludeLastSync = true
		return spec
	}
	dis := mustRun(t, mk(CacheDisabled))
	en := mustRun(t, mk(CacheEnabled))
	tbw := mustRun(t, mk(CacheTheoretical))
	if !(dis.BandwidthGBs < en.BandwidthGBs && en.BandwidthGBs < tbw.BandwidthGBs) {
		t.Fatalf("want disabled < enabled < theoretical, got %.2f / %.2f / %.2f",
			dis.BandwidthGBs, en.BandwidthGBs, tbw.BandwidthGBs)
	}
	last := en.Phases[len(en.Phases)-1]
	if last.CloseWait <= 0 {
		t.Fatal("the last IOR write must expose synchronisation at close")
	}
}

// Figure 4 vs Figure 7: Flash-IO (fewer, larger contiguous chunks per
// rank) reaches at least coll_perf's cached bandwidth.
func TestShapeFlashAtLeastCollPerf(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy end-to-end run; skipped in -short mode")
	}
	fl := workloads.FlashIO{BlocksPerProc: 10, ZonesPerBlock: 16 * 16 * 16, Vars: 24, BytesPerZone: 8}
	mk := func(w workloads.Workload) Spec {
		spec := DefaultSpec(w, CacheEnabled, 16, 4<<20)
		spec.Cluster = Scaled(20160901, 16, 8)
		spec.NFiles = 2
		spec.ComputeDelay = 4 * sim.Second
		return spec
	}
	cp := mustRun(t, mk(workloads.CollPerf{RunBytes: 128 << 10, RunsY: 8, RunsZ: 8}))
	fi := mustRun(t, mk(fl))
	if fi.BandwidthGBs < cp.BandwidthGBs*0.5 {
		t.Fatalf("flash-io %.2f should be in coll_perf's league (%.2f)", fi.BandwidthGBs, cp.BandwidthGBs)
	}
}

// §V comparison: a fixed-size dedicated burst buffer absorbs bursts faster
// than the PFS but cannot match the node-local cache, whose aggregate
// bandwidth scales with the compute nodes.
func TestShapeBurstBufferBetweenPFSAndCache(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy end-to-end run; skipped in -short mode")
	}
	dis := mustRun(t, shapeSpec(CacheDisabled, 16, 4<<20))
	bb := mustRun(t, shapeSpec(BurstBuffer, 16, 4<<20))
	en := mustRun(t, shapeSpec(CacheEnabled, 16, 4<<20))
	if !(dis.BandwidthGBs < bb.BandwidthGBs && bb.BandwidthGBs < en.BandwidthGBs) {
		t.Fatalf("want disabled < burst buffer < node-local cache, got %.2f / %.2f / %.2f",
			dis.BandwidthGBs, bb.BandwidthGBs, en.BandwidthGBs)
	}
}
