package harness

import (
	"bytes"
	"testing"

	"repro/internal/adio"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// crashTracker wires Cluster.OnCrash the way internal/chaos does: every
// cache opened on a node is registered, and a crash-node fault kills all
// of them. Registration happens in the hook factory — before AtOpenColl —
// so a crash can land while a cache is still replaying its journal.
type crashTracker struct {
	live []map[*core.Cache]struct{}
}

func trackCrashes(cl *Cluster) *crashTracker {
	ct := &crashTracker{live: make([]map[*core.Cache]struct{}, cl.Cfg.Nodes)}
	for i := range ct.live {
		ct.live[i] = make(map[*core.Cache]struct{})
	}
	cl.OnCrash = func(node int) {
		for c := range ct.live[node] {
			c.Crash()
		}
	}
	return ct
}

// factory wraps the core hook factory with live-cache registration.
func (ct *crashTracker) factory(cl *Cluster) adio.HooksFactory {
	base := cl.CoreEnv.HooksFactory()
	return func(f *adio.File) (adio.Hooks, error) {
		h, err := base(f)
		if c, ok := h.(*core.Cache); ok && err == nil {
			ct.live[f.Rank().Node().ID()][c] = struct{}{}
		}
		return h, err
	}
}

func crashPattern(rank int, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rank*37 + i*13 + 5)
	}
	return out
}

// verifyGlobal reads every rank's region back from the global file through
// a cache-less handle and compares it against the written pattern.
func verifyGlobal(t *testing.T, cl *Cluster, r *mpi.Rank, size int64) {
	t.Helper()
	vf, err := adio.OpenColl(r, adio.OpenArgs{
		Comm: cl.World.Comm(), Registry: cl.Env.Registry, Path: "global.dat", Create: true,
	})
	if err != nil {
		t.Errorf("verification open: %v", err)
		return
	}
	defer vf.Close()
	got := make([]byte, size)
	if err := vf.ReadContig(got, int64(r.ID())*size, size); err != nil {
		t.Errorf("verification read: %v", err)
		return
	}
	if want := crashPattern(r.ID(), int(size)); !bytes.Equal(got, want) {
		t.Errorf("rank %d: global bytes differ from written pattern", r.ID())
	}
}

// TestTwoNodeCrashesInOneRun crashes two different nodes, at different
// times, inside a single run — both through the fault engine and the
// cluster's OnCrash hook. The next session recovers both journals and
// every byte must reach the global file.
func TestTwoNodeCrashesInOneRun(t *testing.T) {
	const size = 1 << 20
	cfg := Scaled(3, 3, 1)
	cfg.Payload = true
	cl := NewCluster(cfg)
	ct := trackCrashes(cl)

	sched := &fault.Schedule{}
	sched.At(10 * sim.Millisecond).CrashNode(0)
	sched.At(14 * sim.Millisecond).CrashNode(1)
	if _, err := cl.ArmFaults(sched); err != nil {
		t.Fatal(err)
	}

	err := cl.World.Run(func(r *mpi.Rank) {
		// Session 1: everyone writes into the cache; nodes 0 and 1 crash
		// while the data is journalled but unsynced (flush_onclose).
		f1, err := adio.OpenColl(r, adio.OpenArgs{
			Comm: cl.World.Comm(), Registry: cl.Env.Registry, Path: "global.dat", Create: true,
			Info: mpi.Info{
				adio.HintCBWrite: "enable", core.HintCache: "enable",
				core.HintFlushFlag: "flush_onclose",
			},
			Hooks: ct.factory(cl),
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := f1.WriteContig(crashPattern(r.ID(), size), int64(r.ID())*size, size); err != nil {
			t.Error(err)
		}
		r.Compute(20 * sim.Millisecond) // let both crash faults land
		err = f1.Close()
		if r.ID() <= 1 && err == nil {
			t.Errorf("rank %d: close on a crashed node must fail", r.ID())
		}
		if r.ID() == 2 && err != nil {
			t.Errorf("rank %d: close on the surviving node: %v", r.ID(), err)
		}
		cl.World.Comm().Barrier(r)

		// Session 2: the crashed nodes come back and replay their journals.
		f2, err := adio.OpenColl(r, adio.OpenArgs{
			Comm: cl.World.Comm(), Registry: cl.Env.Registry, Path: "global.dat", Create: true,
			Info: mpi.Info{
				adio.HintCBWrite: "enable", core.HintCache: "enable",
				core.HintCacheRecovery: "enable",
			},
			Hooks: ct.factory(cl),
		})
		if err != nil {
			t.Error(err)
			return
		}
		if c, _ := f2.InstalledHooks().(*core.Cache); r.ID() <= 1 {
			if c == nil {
				t.Errorf("rank %d: recovery open fell back", r.ID())
			} else if c.Stats.RecoveredBytes != size {
				t.Errorf("rank %d: recovered %d bytes, want %d", r.ID(), c.Stats.RecoveredBytes, size)
			}
		}
		if err := f2.Close(); err != nil {
			t.Errorf("rank %d: recovery close: %v", r.ID(), err)
		}
		cl.World.Comm().Barrier(r)
		verifyGlobal(t, cl, r, size)
	})
	if err != nil {
		t.Fatal(err)
	}
	if keys := cl.CoreEnv.JournalKeys(); len(keys) != 0 {
		t.Fatalf("journals must be drained after recovery, still have %v", keys)
	}
}

// TestSecondCrashDuringJournalReplay crashes node 0 once, then again while
// the recovery open is replaying the first crash's journal. The replay
// must abort at a chunk boundary (standard-path fallback, no lock leaked,
// journal keeping exactly the still-unsynced extents) and a third session
// must finish the job with full byte durability.
func TestSecondCrashDuringJournalReplay(t *testing.T) {
	const size = 1 << 20
	cfg := Scaled(5, 2, 1)
	cfg.Payload = true
	cl := NewCluster(cfg)
	ct := trackCrashes(cl)

	sched := &fault.Schedule{}
	sched.At(10 * sim.Millisecond).CrashNode(0)
	if _, err := cl.ArmFaults(sched); err != nil {
		t.Fatal(err)
	}

	cacheInfo := mpi.Info{
		adio.HintCBWrite: "enable", core.HintCache: "enable",
		core.HintFlushFlag: "flush_onclose", core.HintCacheRecovery: "enable",
	}
	err := cl.World.Run(func(r *mpi.Rank) {
		// Session 1: write, node 0 crashes with its 1 MB journalled.
		f1, err := adio.OpenColl(r, adio.OpenArgs{
			Comm: cl.World.Comm(), Registry: cl.Env.Registry, Path: "global.dat", Create: true,
			Info: cacheInfo, Hooks: ct.factory(cl),
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := f1.WriteContig(crashPattern(r.ID(), size), int64(r.ID())*size, size); err != nil {
			t.Error(err)
		}
		r.Compute(20 * sim.Millisecond)
		f1.Close() // errors on node 0, by design
		cl.World.Comm().Barrier(r)

		// Session 2: the second crash lands ~2 ms in, while node 0's replay
		// (two 512 KB chunks, several ms of SSD reads and PFS writes) is in
		// flight. The open must revert to the standard path.
		if r.ID() == 0 {
			cl.Kernel.After(2*sim.Millisecond, func() { cl.OnCrash(0) })
		}
		f2, err := adio.OpenColl(r, adio.OpenArgs{
			Comm: cl.World.Comm(), Registry: cl.Env.Registry, Path: "global.dat", Create: true,
			Info: cacheInfo, Hooks: ct.factory(cl),
		})
		if err != nil {
			t.Error(err)
			return
		}
		if r.ID() == 0 {
			if !f2.Stats.CacheFallback {
				t.Error("interrupted replay must revert to the standard path")
			}
			if f2.InstalledHooks() != nil {
				t.Error("no cache hooks must survive the aborted replay")
			}
			if held := cl.FS.Locks.HeldLocks("global.dat"); held != 0 {
				t.Errorf("aborted replay leaked %d locks", held)
			}
			if len(cl.CoreEnv.JournalKeys()) == 0 {
				t.Error("journal must survive the interrupted replay")
			}
		}
		if err := f2.Close(); err != nil {
			t.Errorf("rank %d: session 2 close: %v", r.ID(), err)
		}
		cl.World.Comm().Barrier(r)

		// Session 3: no more faults; recovery drains what the interrupted
		// replay left behind.
		f3, err := adio.OpenColl(r, adio.OpenArgs{
			Comm: cl.World.Comm(), Registry: cl.Env.Registry, Path: "global.dat", Create: true,
			Info: cacheInfo, Hooks: ct.factory(cl),
		})
		if err != nil {
			t.Error(err)
			return
		}
		if c, _ := f3.InstalledHooks().(*core.Cache); r.ID() == 0 {
			if c == nil {
				t.Error("third session must get its cache back")
			} else if c.Stats.RecoveredBytes == 0 || c.Stats.RecoveredBytes > size {
				t.Errorf("third session recovered %d bytes, want (0,%d]", c.Stats.RecoveredBytes, size)
			}
		}
		if err := f3.Close(); err != nil {
			t.Errorf("rank %d: session 3 close: %v", r.ID(), err)
		}
		cl.World.Comm().Barrier(r)
		verifyGlobal(t, cl, r, size)
	})
	if err != nil {
		t.Fatal(err)
	}
	if keys := cl.CoreEnv.JournalKeys(); len(keys) != 0 {
		t.Fatalf("journals must be drained after the third session, still have %v", keys)
	}
}
