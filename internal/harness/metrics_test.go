package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/estat"
)

// metricsSpec is the golden-trace cell with the metrics registry attached
// instead of the tracer.
func metricsSpec() Spec {
	spec := traceSpec()
	spec.TraceEvents = false
	spec.Metrics = true
	return spec
}

// TestMetricsDoNotPerturb runs the same cell with metrics off and on and
// requires every reported number to be identical: the registry observes
// virtual time but never advances it.
func TestMetricsDoNotPerturb(t *testing.T) {
	off := metricsSpec()
	off.Metrics = false
	plain, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := Run(metricsSpec())
	if err != nil {
		t.Fatal(err)
	}
	if plain.BandwidthGBs != measured.BandwidthGBs {
		t.Errorf("bandwidth perturbed: %v (off) vs %v (on)", plain.BandwidthGBs, measured.BandwidthGBs)
	}
	if plain.WallTime != measured.WallTime {
		t.Errorf("wall time perturbed: %v vs %v", plain.WallTime, measured.WallTime)
	}
	if plain.PeakBufBytes != measured.PeakBufBytes {
		t.Errorf("peak buffer perturbed: %d vs %d", plain.PeakBufBytes, measured.PeakBufBytes)
	}
	if !reflect.DeepEqual(plain.Phases, measured.Phases) {
		t.Errorf("phase metrics perturbed:\n off: %+v\n  on: %+v", plain.Phases, measured.Phases)
	}
	if !reflect.DeepEqual(plain.Breakdown, measured.Breakdown) {
		t.Errorf("breakdown perturbed:\n off: %v\n  on: %v", plain.Breakdown, measured.Breakdown)
	}
}

// TestMetricsRunDeterminism re-runs the cell and asserts the rendered
// registry is byte-identical: label merging, registration order and every
// recorded value reproduce exactly from a fresh kernel.
func TestMetricsRunDeterminism(t *testing.T) {
	render := func() string {
		res, err := Run(metricsSpec())
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics == nil || res.MetricsSummary == "" {
			t.Fatal("metrics enabled but no registry recorded")
		}
		return res.MetricsSummary
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("two identical runs rendered different registries (%d vs %d bytes)", len(a), len(b))
	}
	for _, want := range []string{"layer=sim", "layer=netsim", "layer=mpi", "layer=adio", "layer=core", "layer=nvm", "layer=pfs"} {
		if !strings.Contains(a, want) {
			t.Errorf("registry text missing %q", want)
		}
	}
}

// TestGoldenStatReport locks the e10stat markdown report for the golden cell
// down byte for byte, and checks the breakdown table's structural invariant:
// the rows sum to the wall time exactly. Regenerate deliberately with
//
//	go test ./internal/harness -run TestGoldenStatReport -update
func TestGoldenStatReport(t *testing.T) {
	res, err := Run(metricsSpec())
	if err != nil {
		t.Fatal(err)
	}
	in := res.StatInput()
	text, err := estat.Render([]estat.Input{in}, estat.FormatMarkdown)
	if err != nil {
		t.Fatal(err)
	}

	rep := estat.Build([]estat.Input{in})
	if len(rep.Cells) != 1 {
		t.Fatalf("want 1 cell, got %d", len(rep.Cells))
	}
	var sum int64
	for _, row := range rep.Cells[0].Rows {
		sum += row.Ns
	}
	if sum != rep.Cells[0].WallTimeNs {
		t.Errorf("breakdown rows sum to %d ns, wall time is %d ns", sum, rep.Cells[0].WallTimeNs)
	}
	if len(rep.Overlaps) != 1 {
		t.Errorf("cache-enabled run should produce a flush-overlap row, got %d", len(rep.Overlaps))
	}

	golden := filepath.Join("testdata", "golden_e10stat.md")
	got := []byte(text)
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("e10stat report diverges from golden:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestTraceSummaryDeterministicUnderFaults re-runs a faulted cell and
// requires the trace digest to be byte-identical: the counter section is
// sorted by track and first-sample time, so summaries no longer depend on
// the order fault handling first touches each station.
func TestTraceSummaryDeterministicUnderFaults(t *testing.T) {
	render := func() string {
		spec := traceSpec()
		spec.FaultSpec = "degrade-target,target=0,factor=0.5,from=100ms,to=2s"
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.TraceSummary == "" {
			t.Fatal("tracing enabled but no summary recorded")
		}
		return res.TraceSummary
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("two identical faulted runs produced different trace summaries:\n a:\n%s\n b:\n%s", a, b)
	}
	if !strings.Contains(a, "counter high-water marks:") {
		t.Fatalf("summary missing counter section:\n%s", a)
	}
}
