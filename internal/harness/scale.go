package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"repro/internal/critpath"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// ScaleSchema versions the scale-report digest. Bump it whenever a field
// is added to the digest text, so stale committed digests fail loudly
// instead of comparing garbage.
const ScaleSchema = "e10scale/v1"

// ScaleVariant names one of the three kilo-rank scenarios.
type ScaleVariant string

// The three TestScale_ scenarios: a clean collective write through the
// NVM cache, the same write over lossy links with reliable delivery, and
// an aggregator-node crash mid-write on the resilient path.
const (
	ScaleClean ScaleVariant = "clean"
	ScaleLossy ScaleVariant = "lossy"
	ScaleCrash ScaleVariant = "crash"
)

// ScaleConfig parameterizes one kilo-rank collective write.
type ScaleConfig struct {
	Variant ScaleVariant
	Ranks   int   // total MPI ranks (default 1024)
	PerNode int   // ranks per node (default 8)
	Seed    int64 // kernel seed (default 42)
	// DropPct is the outbound loss probability, in percent, armed on every
	// node for the lossy variant (default 10 when Variant == ScaleLossy).
	DropPct int
	// CrashNodes is how many nodes the crash variant kills mid-write
	// (default 1 when Variant == ScaleCrash). Node 0 is never crashed so
	// rank 0's bookkeeping survives.
	CrashNodes int
	// CrashAt is the virtual time of the first crash; later crashes follow
	// at 1 ms intervals. Zero means "mid write phase" (defaultCrashAt).
	CrashAt sim.Time
	// RunKB is the contiguous run size per rank in KiB; each rank writes
	// 4 runs (2x2), so the per-rank block is 4*RunKB KiB (default 16).
	RunKB int
	// Metrics/TraceEvents pass through to the Spec. Off by default: the
	// kilo-rank path is also the zero-observability fast path.
	Metrics     bool
	TraceEvents bool
	// CritPath additionally runs the critical-path analyzer on the trace
	// (implies tracing) and fills ScaleReport.CritPath with the top-of-path
	// category shares. Like tracing, it is post-hoc: every digest-covered
	// field is byte-identical with it on or off.
	CritPath bool
}

// defaultCrashAt lands inside the first collective write phase at every
// supported scale: opens at 4096 ranks finish well before it, and the
// write itself runs for seconds of virtual time.
const defaultCrashAt = 80 * sim.Millisecond

// scaleCollTimeout replaces DefaultCollTimeout (200 ms) on reliable scale
// runs. At kilo-rank counts the arrival skew of a healthy collective —
// stragglers delayed by retransmit backoff — can exceed 200 ms, which
// would fire spurious timeouts; crash detection still works, it just
// waits this long before declaring an aggregator dead.
const scaleCollTimeout = 30 * sim.Second

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.Variant == "" {
		c.Variant = ScaleClean
	}
	if c.Ranks == 0 {
		c.Ranks = 1024
	}
	if c.PerNode == 0 {
		c.PerNode = 8
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.RunKB == 0 {
		c.RunKB = 16
	}
	if c.Variant == ScaleLossy && c.DropPct == 0 {
		c.DropPct = 10
	}
	if c.Variant == ScaleCrash {
		if c.CrashNodes == 0 {
			c.CrashNodes = 1
		}
		if c.CrashAt == 0 {
			c.CrashAt = defaultCrashAt
		}
	}
	if c.Variant != ScaleLossy {
		c.DropPct = 0
	}
	if c.Variant != ScaleCrash {
		c.CrashNodes, c.CrashAt = 0, 0
	}
	return c
}

// ScaleReport is one scale run's outcome. Every field except the Host*
// pair is a pure function of the config, so Digest() is a determinism
// oracle: same seed, same digest — across runs and across commits.
type ScaleReport struct {
	Schema     string       `json:"schema"`
	Variant    ScaleVariant `json:"variant"`
	Ranks      int          `json:"ranks"`
	Nodes      int          `json:"nodes"`
	PerNode    int          `json:"per_node"`
	Seed       int64        `json:"seed"`
	DropPct    int          `json:"drop_pct"`
	CrashNodes int          `json:"crash_nodes"`
	CrashAtNs  int64        `json:"crash_at_ns"`
	RunKB      int          `json:"run_kb"`

	WallTimeNs     int64 `json:"wall_time_ns"`
	Events         int64 `json:"events"`
	ExpectedBytes  int64 `json:"expected_bytes"`
	PFSBytes       int64 `json:"pfs_bytes"`
	Retransmits    int64 `json:"retransmits"`
	DedupDrops     int64 `json:"dedup_drops"`
	NetDrops       int64 `json:"net_drops"`
	FailoverEpochs int64 `json:"failover_epochs"`

	// Host-side throughput measurement: how fast the kernel chewed through
	// the run on this machine. Excluded from the digest (host-dependent).
	HostNs       int64   `json:"host_ns"`
	EventsPerSec float64 `json:"events_per_sec"`

	// CritPath holds the critical path's category shares when
	// ScaleConfig.CritPath was set. Excluded from the digest text so the
	// committed digests stay byte-identical with analysis on or off (the
	// analyzer's sum-to-wall invariant is asserted by RunScale instead).
	CritPath []critpath.Share `json:"critpath,omitempty"`

	// CritPathFull is the complete analyzer report (stragglers, path
	// segments, message edges, what-ifs) backing the CritPath shares.
	// Never serialized: the shares are the stable exchange surface.
	CritPathFull *critpath.Report `json:"-"`
}

// Text renders the deterministic portion of the report, one "k=v" per
// line. This is the digest's preimage.
func (r *ScaleReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema=%s\n", r.Schema)
	fmt.Fprintf(&b, "variant=%s\n", r.Variant)
	fmt.Fprintf(&b, "ranks=%d nodes=%d per_node=%d seed=%d\n", r.Ranks, r.Nodes, r.PerNode, r.Seed)
	fmt.Fprintf(&b, "drop_pct=%d crash_nodes=%d crash_at_ns=%d run_kb=%d\n",
		r.DropPct, r.CrashNodes, r.CrashAtNs, r.RunKB)
	fmt.Fprintf(&b, "wall_time_ns=%d\n", r.WallTimeNs)
	fmt.Fprintf(&b, "events=%d\n", r.Events)
	fmt.Fprintf(&b, "expected_bytes=%d pfs_bytes=%d\n", r.ExpectedBytes, r.PFSBytes)
	fmt.Fprintf(&b, "retransmits=%d dedup_drops=%d net_drops=%d failover_epochs=%d\n",
		r.Retransmits, r.DedupDrops, r.NetDrops, r.FailoverEpochs)
	return b.String()
}

// Digest returns the hex SHA-256 of Text().
func (r *ScaleReport) Digest() string {
	h := sha256.Sum256([]byte(r.Text()))
	return hex.EncodeToString(h[:])
}

// scaleWorkload returns the per-rank write pattern: 4 contiguous runs of
// RunKB KiB in a 3D-block coll_perf layout, enough to exercise the full
// two-phase shuffle without drowning kilo-rank runs in payload.
func scaleWorkload(cfg ScaleConfig) workloads.CollPerf {
	return workloads.CollPerf{RunBytes: int64(cfg.RunKB) << 10, RunsY: 2, RunsZ: 2}
}

// crashTargets returns the node indices the crash variant kills: nodes
// 1..CrashNodes (node 0 is spared; it hosts rank 0).
func crashTargets(cfg ScaleConfig, nodes int) []int {
	ts := make([]int, 0, cfg.CrashNodes)
	for n := 1; n <= cfg.CrashNodes && n < nodes; n++ {
		ts = append(ts, n)
	}
	return ts
}

// RunScale executes one kilo-rank collective write and returns its
// report. The run is deterministic: every digest-covered field is a pure
// function of the config.
func RunScale(cfg ScaleConfig) (*ScaleReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Ranks%cfg.PerNode != 0 {
		return nil, fmt.Errorf("scale: ranks %d not divisible by per-node %d", cfg.Ranks, cfg.PerNode)
	}
	nodes := cfg.Ranks / cfg.PerNode
	w := scaleWorkload(cfg)

	spec := Spec{
		Workload:     w,
		Cluster:      Scaled(cfg.Seed, nodes, cfg.PerNode),
		Case:         CacheEnabled,
		Aggregators:  nodes,
		CBBuffer:     16 << 20,
		NFiles:       1,
		ComputeDelay: 100 * sim.Millisecond,
		StripeSize:   4 << 20,
		StripeCount:  4,
		SyncBuffer:   512 << 10,
		Metrics:      cfg.Metrics,
		TraceEvents:  cfg.TraceEvents,
		CritPath:     cfg.CritPath,
	}
	switch cfg.Variant {
	case ScaleClean:
	case ScaleLossy:
		spec.Reliable = true
		spec.CollTimeout = scaleCollTimeout
		p := float64(cfg.DropPct) / 100
		spec.PreRun = func(cl *Cluster) error {
			for n := 0; n < nodes; n++ {
				cl.Fabric.Node(n).SetLossy(p)
			}
			return nil
		}
	case ScaleCrash:
		// The resilient failover path writes straight to the PFS; the cache
		// layer is bypassed so a crashed aggregator cannot strand dirty
		// extents that only a recovery session could replay.
		spec.Case = CacheDisabled
		spec.Reliable = true
		spec.Resilient = true
		spec.CollTimeout = scaleCollTimeout
		spec.PreRun = func(cl *Cluster) error {
			cl.OnCrash = func(node int) { cl.World.KillNode(node) }
			for i, n := range crashTargets(cfg, nodes) {
				node := n
				cl.Kernel.After(cfg.CrashAt+sim.Time(i)*sim.Millisecond, func() {
					cl.OnCrash(node)
				})
			}
			return nil
		}
	default:
		return nil, fmt.Errorf("scale: unknown variant %q", cfg.Variant)
	}

	// Capture the cluster for post-run oracles without widening Result.
	var cl *Cluster
	prev := spec.PreRun
	spec.PreRun = func(c *Cluster) error {
		cl = c
		if prev != nil {
			return prev(c)
		}
		return nil
	}

	host0 := time.Now()
	res, err := Run(spec)
	hostNs := time.Since(host0).Nanoseconds()
	if err != nil {
		return nil, err
	}

	rep := &ScaleReport{
		Schema:        ScaleSchema,
		Variant:       cfg.Variant,
		Ranks:         cfg.Ranks,
		Nodes:         nodes,
		PerNode:       cfg.PerNode,
		Seed:          cfg.Seed,
		DropPct:       cfg.DropPct,
		CrashNodes:    cfg.CrashNodes,
		CrashAtNs:     int64(cfg.CrashAt),
		RunKB:         cfg.RunKB,
		WallTimeNs:    int64(res.WallTime),
		Events:        res.EventsDispatched,
		ExpectedBytes: w.FileBytes(cfg.Ranks),
		PFSBytes:      cl.FS.TotalBytesWritten(),
		Retransmits:   cl.World.Retransmits(),
		DedupDrops:    cl.World.DedupDrops(),

		FailoverEpochs: res.FailoverEpochs,
		HostNs:         hostNs,
	}
	rep.NetDrops = cl.Fabric.Drops()
	if hostNs > 0 {
		rep.EventsPerSec = float64(rep.Events) / (float64(hostNs) / 1e9)
	}

	if res.CritPath != nil {
		if res.CritPath.AttributedNs != int64(res.WallTime) {
			return nil, fmt.Errorf("scale: critical path attributed %d ns, want wall time %d",
				res.CritPath.AttributedNs, int64(res.WallTime))
		}
		rep.CritPath = res.CritPath.Shares
		rep.CritPathFull = res.CritPath
	}

	if err := checkScaleConservation(cfg, cl, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// checkScaleConservation asserts the byte-conservation oracle: every
// surviving rank's extents reached the global file.
func checkScaleConservation(cfg ScaleConfig, cl *Cluster, rep *ScaleReport) error {
	w := scaleWorkload(cfg)
	meta := cl.FS.Lookup(w.Name() + ".0000")
	if meta == nil {
		return fmt.Errorf("scale: global file missing after run")
	}
	written := meta.Store().Written()
	nodes := rep.Nodes
	dead := make(map[int]bool)
	for _, n := range crashTargets(cfg, nodes) {
		dead[n] = true
	}
	for rank := 0; rank < cfg.Ranks; rank++ {
		if dead[rank/cfg.PerNode] {
			continue
		}
		for _, seg := range w.Segments(rank, cfg.Ranks) {
			if !written.Covers(seg) {
				return fmt.Errorf("scale: rank %d extent [%d,+%d) missing from global file",
					rank, seg.Off, seg.Len)
			}
		}
	}
	if got := meta.Size(); cfg.Variant != ScaleCrash && got != rep.ExpectedBytes {
		return fmt.Errorf("scale: file size %d, want %d", got, rep.ExpectedBytes)
	}
	return nil
}
