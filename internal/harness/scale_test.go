package harness

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/sim"
)

// The TestScale_ suite runs kilo-rank collective writes — clean, lossy and
// aggregator-crash — and gates on two oracles: byte conservation (checked
// inside RunScale) and determinism (same seed, same report digest). The
// scale is flag-tunable:
//
//	go test ./internal/harness -run '^TestScale_' -scale.ranks=4096 -scale.seed=42
//
// Under -short (the race pass) the suite shrinks to 256 ranks so the race
// runtime finishes in seconds.
var (
	scaleRanks  = flag.Int("scale.ranks", 1024, "TestScale_ total rank count")
	scaleNodes  = flag.Int("scale.nodes", 0, "TestScale_ node count (0 = ranks/8)")
	scaleSeed   = flag.Int64("scale.seed", 42, "TestScale_ kernel seed")
	scaleDrop   = flag.Int("scale.drop", 10, "TestScale_ lossy-variant drop percent")
	scaleUpdate = flag.Bool("scale.update", false, "regenerate testdata/scale_digest_*.json")
)

// scaleGoldenRanks are the scales with committed digest files.
var scaleGoldenRanks = []int{1024, 4096}

// scaleTestConfig builds the flag-driven config for one variant.
func scaleTestConfig(t *testing.T, v ScaleVariant) ScaleConfig {
	t.Helper()
	ranks := *scaleRanks
	if testing.Short() && ranks > 256 {
		ranks = 256
	}
	cfg := ScaleConfig{Variant: v, Ranks: ranks, Seed: *scaleSeed}
	if *scaleNodes > 0 {
		if ranks%*scaleNodes != 0 {
			t.Fatalf("-scale.ranks=%d not divisible by -scale.nodes=%d", ranks, *scaleNodes)
		}
		cfg.PerNode = ranks / *scaleNodes
	}
	if v == ScaleLossy {
		cfg.DropPct = *scaleDrop
	}
	return cfg
}

// runScaleDeterministic runs cfg twice and fails unless both runs produce
// the same digest: every digest-covered field must be a pure function of
// the config, whatever the host's goroutine scheduling did.
func runScaleDeterministic(t *testing.T, cfg ScaleConfig) *ScaleReport {
	t.Helper()
	rep, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunScale(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if d1, d2 := rep.Digest(), again.Digest(); d1 != d2 {
		t.Errorf("nondeterministic run: digest %s then %s\nfirst:\n%ssecond:\n%s",
			d1, d2, rep.Text(), again.Text())
	}
	t.Logf("%s ranks=%d events=%d wall=%dms host=%dms ev/s=%.0f digest=%s",
		rep.Variant, rep.Ranks, rep.Events, rep.WallTimeNs/1e6, rep.HostNs/1e6,
		rep.EventsPerSec, rep.Digest())
	checkScaleGolden(t, cfg, rep)
	return rep
}

func TestScale_Clean(t *testing.T) {
	cfg := scaleTestConfig(t, ScaleClean)
	rep := runScaleDeterministic(t, cfg)
	if rep.PFSBytes < rep.ExpectedBytes {
		t.Errorf("PFS received %d bytes, want >= %d", rep.PFSBytes, rep.ExpectedBytes)
	}
	if rep.Retransmits != 0 || rep.NetDrops != 0 {
		t.Errorf("clean run saw retransmits=%d net_drops=%d, want 0",
			rep.Retransmits, rep.NetDrops)
	}
}

func TestScale_Lossy(t *testing.T) {
	cfg := scaleTestConfig(t, ScaleLossy)
	rep := runScaleDeterministic(t, cfg)
	if rep.NetDrops == 0 {
		t.Error("lossy run dropped no messages; the fault was not armed")
	}
	if rep.Retransmits == 0 {
		t.Error("lossy run retransmitted nothing; reliable delivery was not exercised")
	}
	if rep.PFSBytes < rep.ExpectedBytes {
		t.Errorf("PFS received %d bytes, want >= %d", rep.PFSBytes, rep.ExpectedBytes)
	}
}

func TestScale_Crash(t *testing.T) {
	cfg := scaleTestConfig(t, ScaleCrash)
	rep := runScaleDeterministic(t, cfg)
	if rep.FailoverEpochs == 0 {
		t.Error("crash run recorded no failover epochs; the crash was not detected")
	}
}

// TestScale_ObservabilityNoPerturbation asserts that attaching the tracer
// and metrics registry does not perturb the simulation: virtual time,
// event counts and every other digest-covered field stay identical. The
// observed run IS the baseline run.
func TestScale_ObservabilityNoPerturbation(t *testing.T) {
	for _, v := range []ScaleVariant{ScaleClean, ScaleLossy} {
		cfg := ScaleConfig{Variant: v, Ranks: 256, Seed: *scaleSeed}
		bare, err := RunScale(cfg)
		if err != nil {
			t.Fatalf("%s bare: %v", v, err)
		}
		cfg.Metrics = true
		cfg.TraceEvents = true
		observed, err := RunScale(cfg)
		if err != nil {
			t.Fatalf("%s observed: %v", v, err)
		}
		if bare.Digest() != observed.Digest() {
			t.Errorf("%s: observability perturbed the run\nbare:\n%sobserved:\n%s",
				v, bare.Text(), observed.Text())
		}
	}
}

// scaleGoldenFile is the committed digest format: the full deterministic
// report plus its digest, so a mismatch diff shows which field moved.
type scaleGoldenFile struct {
	Report ScaleReport `json:"report"`
	Digest string      `json:"digest"`
}

func scaleGoldenPath(v ScaleVariant, ranks int) string {
	return filepath.Join("testdata", fmt.Sprintf("scale_digest_%s_%d.json", v, ranks))
}

// checkScaleGolden compares rep against the committed digest when the
// config is one of the golden cells (default knobs at a golden scale);
// flag-tweaked runs have no baseline and are skipped.
func checkScaleGolden(t *testing.T, cfg ScaleConfig, rep *ScaleReport) {
	t.Helper()
	golden := false
	for _, r := range scaleGoldenRanks {
		if cfg.Ranks == r {
			golden = true
		}
	}
	if !golden || cfg.withDefaults() != (ScaleConfig{Variant: cfg.Variant, Ranks: cfg.Ranks}).withDefaults() {
		return
	}
	path := scaleGoldenPath(cfg.Variant, cfg.Ranks)
	if *scaleUpdate {
		writeScaleGolden(t, path, rep)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no committed digest for this cell (regenerate with -scale.update): %v", err)
	}
	var g scaleGoldenFile
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if got := rep.Digest(); got != g.Digest {
		t.Errorf("digest mismatch vs %s:\n got %s\nwant %s\ngot report:\n%swant report:\n%s",
			path, got, g.Digest, rep.Text(), g.Report.Text())
	}
}

func writeScaleGolden(t *testing.T, path string, rep *ScaleReport) {
	t.Helper()
	clean := *rep
	clean.HostNs, clean.EventsPerSec = 0, 0 // host-dependent, not digested
	b, err := json.MarshalIndent(scaleGoldenFile{Report: clean, Digest: rep.Digest()}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

// TestScale_GoldenDigests replays every committed scale digest: each file
// pins one (variant, scale) cell, and any divergence — an event reordered,
// a retransmit gained, a byte lost — changes the digest. Under -short the
// 4096-rank cells are skipped. With -scale.update the full golden matrix
// is regenerated instead.
func TestScale_GoldenDigests(t *testing.T) {
	if *scaleUpdate {
		for _, v := range []ScaleVariant{ScaleClean, ScaleLossy, ScaleCrash} {
			for _, ranks := range scaleGoldenRanks {
				rep, err := RunScale(ScaleConfig{Variant: v, Ranks: ranks})
				if err != nil {
					t.Fatalf("%s/%d: %v", v, ranks, err)
				}
				writeScaleGolden(t, scaleGoldenPath(v, ranks), rep)
			}
		}
		return
	}
	files, err := filepath.Glob(filepath.Join("testdata", "scale_digest_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no committed scale digests; regenerate with -scale.update")
	}
	sort.Strings(files)
	for _, path := range files {
		path := path
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var g scaleGoldenFile
		if err := json.Unmarshal(data, &g); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		t.Run(filepath.Base(path), func(t *testing.T) {
			if got := g.Report.Digest(); got != g.Digest {
				t.Fatalf("file self-check: report digests to %s but file claims %s", got, g.Digest)
			}
			if testing.Short() && g.Report.Ranks > 1024 {
				t.Skipf("skipping %d ranks in -short mode", g.Report.Ranks)
			}
			r := g.Report
			cfg := ScaleConfig{
				Variant: r.Variant, Ranks: r.Ranks, PerNode: r.PerNode, Seed: r.Seed,
				DropPct: r.DropPct, CrashNodes: r.CrashNodes, CrashAt: sim.Time(r.CrashAtNs),
				RunKB: r.RunKB,
			}
			rep, err := RunScale(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := rep.Digest(); got != g.Digest {
				t.Errorf("digest mismatch:\n got %s\nwant %s\ngot report:\n%swant report:\n%s",
					got, g.Digest, rep.Text(), g.Report.Text())
			}
		})
	}
}
