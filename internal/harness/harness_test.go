package harness

import (
	"strings"
	"testing"

	"repro/internal/mpe"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// tinySweep runs fast: 8 nodes × 4 ranks, small files.
func tinySpec(cs Case, aggs int) Spec {
	w := workloads.CollPerf{RunBytes: 64 << 10, RunsY: 4, RunsZ: 4} // 1 MB/proc
	spec := DefaultSpec(w, cs, aggs, 4<<20)
	spec.Cluster = Scaled(7, 8, 4)
	spec.NFiles = 2
	spec.ComputeDelay = 2 * sim.Second
	return spec
}

func TestRunProducesBandwidthAndBreakdown(t *testing.T) {
	res, err := Run(tinySpec(CacheDisabled, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.BandwidthGBs <= 0 {
		t.Fatalf("bandwidth = %f", res.BandwidthGBs)
	}
	if res.TotalBytes != 2*32<<20 {
		t.Fatalf("total bytes = %d", res.TotalBytes)
	}
	if len(res.Phases) != 2 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
	if res.Breakdown["shuffle_all2all"] <= 0 || res.Breakdown["write"] <= 0 {
		t.Fatalf("breakdown missing: %v", res.Breakdown)
	}
	if res.PeakBufBytes <= 0 {
		t.Fatal("peak buffer not recorded")
	}
}

func TestCacheCasesOrdering(t *testing.T) {
	// Theoretical >= enabled, and with plenty of aggregators both beat
	// disabled: the paper's headline result at small scale.
	bw := map[Case]float64{}
	for _, cs := range AllCases {
		res, err := Run(tinySpec(cs, 8))
		if err != nil {
			t.Fatal(err)
		}
		bw[cs] = res.BandwidthGBs
	}
	if bw[CacheTheoretical] < bw[CacheEnabled]*0.95 {
		t.Fatalf("theoretical (%f) must be >= enabled (%f)", bw[CacheTheoretical], bw[CacheEnabled])
	}
	if bw[CacheEnabled] <= bw[CacheDisabled] {
		t.Fatalf("cache (%f) must beat disabled (%f) with ample aggregators", bw[CacheEnabled], bw[CacheDisabled])
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(tinySpec(CacheEnabled, 4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinySpec(CacheEnabled, 4))
	if err != nil {
		t.Fatal(err)
	}
	if a.BandwidthGBs != b.BandwidthGBs || a.WallTime != b.WallTime {
		t.Fatalf("same seed must reproduce exactly: %f/%v vs %f/%v",
			a.BandwidthGBs, a.WallTime, b.BandwidthGBs, b.WallTime)
	}
}

func TestPayloadModeMatchesMetadataOnlyTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy end-to-end run; skipped in -short mode")
	}
	spec := tinySpec(CacheEnabled, 4)
	m, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Cluster.Payload = true
	p, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Control flow is identical, so virtual timings must agree exactly.
	if m.WallTime != p.WallTime || m.BandwidthGBs != p.BandwidthGBs {
		t.Fatalf("payload mode changed timing: %v/%f vs %v/%f",
			m.WallTime, m.BandwidthGBs, p.WallTime, p.BandwidthGBs)
	}
}

func TestIncludeLastSyncLowersBandwidth(t *testing.T) {
	with := tinySpec(CacheEnabled, 2) // few aggregators: sync is slow
	with.IncludeLastSync = true
	without := tinySpec(CacheEnabled, 2)
	a, err := Run(with)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(without)
	if err != nil {
		t.Fatal(err)
	}
	if a.BandwidthGBs >= b.BandwidthGBs {
		t.Fatalf("last-sync accounting must lower bandwidth: %f vs %f", a.BandwidthGBs, b.BandwidthGBs)
	}
	if last := a.Phases[len(a.Phases)-1]; last.CloseWait <= 0 {
		t.Fatal("last phase must expose sync wait when included")
	}
}

func TestSweepAndRenderers(t *testing.T) {
	w := workloads.CollPerf{RunBytes: 64 << 10, RunsY: 2, RunsZ: 2}
	sw := Sweep{
		Aggregators: []int{2, 4},
		CBBytes:     []int64{1 << 20},
		Cluster:     Scaled(7, 4, 2),
		NFiles:      1,
		Compute:     sim.Second,
	}
	sr, err := RunSweep(w, AllCases, sw, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Cells) != 2 {
		t.Fatalf("cells = %d", len(sr.Cells))
	}
	bwTable := sr.RenderBandwidth("Fig 4")
	if !strings.Contains(bwTable, "2_1mb") || !strings.Contains(bwTable, "BW Cache Enabled") {
		t.Fatalf("bandwidth table malformed:\n%s", bwTable)
	}
	bd := sr.RenderBreakdown("Fig 5", CacheEnabled)
	if !strings.Contains(bd, "shuffle_all2all") || !strings.Contains(bd, "not_hidden_sync") {
		t.Fatalf("breakdown table malformed:\n%s", bd)
	}
	csv := sr.RenderCSV()
	if !strings.Contains(csv, "coll_perf,2,1,disabled") || !strings.Contains(csv, "peak_buf_mb") {
		t.Fatalf("csv malformed:\n%s", csv)
	}
}

func TestSpecLabel(t *testing.T) {
	spec := DefaultSpec(workloads.DefaultIOR(), CacheEnabled, 16, 8<<20)
	if spec.Label() != "16_8mb" {
		t.Fatalf("label = %s", spec.Label())
	}
}

func TestDeepERProfile(t *testing.T) {
	cfg := DeepER(1)
	if cfg.Nodes != 64 || cfg.RanksPerNode != 8 {
		t.Fatalf("profile = %+v", cfg)
	}
	if cfg.PFS.Targets != 4 || cfg.PFS.DefaultStripeSize != 4<<20 {
		t.Fatal("pfs profile wrong")
	}
	cl := NewCluster(Scaled(1, 2, 2))
	if cl.World.Size() != 4 || len(cl.NVMs) != 2 {
		t.Fatal("cluster assembly wrong")
	}
}

func TestClusterReportContents(t *testing.T) {
	spec := tinySpec(CacheEnabled, 4)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"global file system", "target 0", "local SSDs", "network"} {
		if !strings.Contains(res.Report, want) {
			t.Fatalf("report missing %q:\n%s", want, res.Report)
		}
	}
}

func TestTraceSpecProducesTimelines(t *testing.T) {
	spec := tinySpec(CacheDisabled, 2)
	spec.Trace = true
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	for _, l := range res.Logs {
		events += len(l.Timeline())
	}
	if events == 0 {
		t.Fatal("trace mode must record timelines")
	}
	var sb strings.Builder
	if err := mpe.WriteChromeTrace(&sb, res.Logs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "shuffle_all2all") {
		t.Fatal("trace JSON missing phases")
	}
}

func TestPackedAggregatorPlacementHurtsCache(t *testing.T) {
	// cb_config_list "*:8" stuffs all aggregators onto one node: they
	// share a single SSD and NIC, so cached bandwidth collapses relative
	// to the default one-per-node spread.
	spread := tinySpec(CacheEnabled, 8)
	res1, err := Run(spread)
	if err != nil {
		t.Fatal(err)
	}
	// Same spec, packed placement.
	packed := tinySpec(CacheEnabled, 8)
	packed.ExtraHints = map[string]string{"cb_config_list": "*:8"}
	res2, err := Run(packed)
	if err != nil {
		t.Fatal(err)
	}
	if res2.BandwidthGBs >= res1.BandwidthGBs {
		t.Fatalf("packed placement (%.2f) must lose to spread (%.2f)",
			res2.BandwidthGBs, res1.BandwidthGBs)
	}
}

func TestFaultScheduleReplaysByteIdentical(t *testing.T) {
	spec := tinySpec(CacheEnabled, 4)
	spec.FaultSpec = "degrade-target,target=1,factor=0.25,from=100ms,to=3s;degrade-link,node=0,factor=0.5,from=1s,to=2s"
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.FaultReport == "" || a.FaultReport != b.FaultReport {
		t.Fatalf("fault report must replay byte-identically:\n%s\nvs\n%s", a.FaultReport, b.FaultReport)
	}
	if a.WallTime != b.WallTime || a.BandwidthGBs != b.BandwidthGBs {
		t.Fatalf("seeded fault run must replay exactly: %v/%f vs %v/%f",
			a.WallTime, a.BandwidthGBs, b.WallTime, b.BandwidthGBs)
	}
}

func TestDegradedTargetStretchesNotHiddenSync(t *testing.T) {
	// With no compute phase to hide behind, the cache sync lands in
	// not_hidden_sync; a degraded PFS target must stretch it.
	mk := func(faults string) Spec {
		spec := tinySpec(CacheEnabled, 4)
		spec.ComputeDelay = 0
		spec.FaultSpec = faults
		return spec
	}
	healthy, err := Run(mk(""))
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := Run(mk("degrade-target,target=0,factor=0.2,at=0s;" +
		"degrade-target,target=1,factor=0.2,at=0s;" +
		"degrade-target,target=2,factor=0.2,at=0s;" +
		"degrade-target,target=3,factor=0.2,at=0s"))
	if err != nil {
		t.Fatal(err)
	}
	h, d := healthy.Breakdown[mpe.PhaseNotHiddenSync], degraded.Breakdown[mpe.PhaseNotHiddenSync]
	if d <= h {
		t.Fatalf("degraded targets must stretch not_hidden_sync: healthy %v, degraded %v", h, d)
	}
	if degraded.BandwidthGBs >= healthy.BandwidthGBs {
		t.Fatalf("degraded run must lose bandwidth: %f vs %f",
			degraded.BandwidthGBs, healthy.BandwidthGBs)
	}
}

func TestBadFaultSpecFailsRun(t *testing.T) {
	spec := tinySpec(CacheDisabled, 2)
	spec.FaultSpec = "melt-cpu,node=0,at=1s"
	if _, err := Run(spec); err == nil {
		t.Fatal("unknown fault kind must fail the run")
	}
	spec.FaultSpec = "fail-target,target=99,at=1s"
	if _, err := Run(spec); err == nil {
		t.Fatal("out-of-range target must fail arming")
	}
}
