package harness

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/workloads"
)

// TestReliableNoFaultTraceUnchanged is the degraded-mode determinism
// regression: arming the reliable-delivery layer and collective timeouts
// on a fault-free run must leave the exported trace byte-identical to the
// plain run. Acks ride the fabric without delaying payload delivery and
// retransmit timers are cancelled before firing, so the reliability
// machinery is invisible until a fault actually needs it.
func TestReliableNoFaultTraceUnchanged(t *testing.T) {
	plain := exportTrace(t)
	spec := traceSpec()
	spec.Reliable = true
	reliable := exportTraceSpec(t, spec)
	if !bytes.Equal(plain, reliable) {
		t.Fatalf("reliable layer perturbed the fault-free trace (%d vs %d bytes)",
			len(plain), len(reliable))
	}
}

// TestResilientRequiresReliable pins the Spec contract: the failover
// write path cannot run without collective timeouts.
func TestResilientRequiresReliable(t *testing.T) {
	spec := traceSpec()
	spec.Resilient = true
	if _, err := Run(spec); err == nil {
		t.Fatal("Resilient without Reliable did not error")
	}
}

// degradedSpec is a small cell on the degraded-mode path: reliable
// delivery armed, resilient collective writes selected.
func degradedSpec() Spec {
	spec := traceSpec()
	spec.Reliable = true
	spec.Resilient = true
	return spec
}

// TestResilientWritePathRuns runs the failover-capable write path with no
// faults and checks it completes, moves every byte, and is deterministic.
func TestResilientWritePathRuns(t *testing.T) {
	a, err := Run(degradedSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.BandwidthGBs <= 0 {
		t.Fatalf("resilient run reported bandwidth %v", a.BandwidthGBs)
	}
	b, err := Run(degradedSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.WallTime != b.WallTime {
		t.Fatalf("resilient runs diverged: %v vs %v", a.WallTime, b.WallTime)
	}
	if !reflect.DeepEqual(a.Phases, b.Phases) {
		t.Fatalf("resilient phase metrics diverged:\n a: %+v\n b: %+v", a.Phases, b.Phases)
	}
}

// TestReliableRunSurvivesLossyLink drops 10% of node 0's fabric messages
// during the whole run; retransmission must carry the collective write to
// completion, deterministically.
func TestReliableRunSurvivesLossyLink(t *testing.T) {
	mk := func() Spec {
		w := workloads.CollPerf{RunBytes: 32 << 10, RunsY: 2, RunsZ: 2}
		spec := DefaultSpec(w, CacheEnabled, 2, 1<<20)
		spec.Cluster = Scaled(42, 2, 2)
		spec.NFiles = 1
		spec.ComputeDelay = 0
		spec.Reliable = true
		spec.FaultSpec = "lossy-link,node=0,factor=0.1,from=0s,to=1h"
		return spec
	}
	a, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.BandwidthGBs <= 0 {
		t.Fatalf("lossy run reported bandwidth %v", a.BandwidthGBs)
	}
	b, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.WallTime != b.WallTime {
		t.Fatalf("lossy runs diverged: %v vs %v", a.WallTime, b.WallTime)
	}
}
