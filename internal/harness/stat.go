package harness

import (
	"repro/internal/estat"
	"repro/internal/mpe"
	"repro/internal/sim"
)

// StatInput converts a run's outcome into the e10stat exchange format. The
// metrics snapshot is included when the run recorded one (Spec.Metrics);
// everything else derives from fields the harness always computes.
func (r *Result) StatInput() estat.Input {
	in := estat.Input{
		Schema:       estat.Schema,
		Workload:     r.Spec.Workload.Name(),
		Case:         string(r.Spec.Case),
		Cell:         r.Spec.Label(),
		Ranks:        r.Spec.Cluster.Nodes * r.Spec.Cluster.RanksPerNode,
		Files:        r.Spec.NFiles,
		WallTimeNs:   int64(r.WallTime),
		ComputeNs:    int64(r.computeTotal()),
		TotalBytes:   r.TotalBytes,
		BandwidthGBs: r.BandwidthGBs,

		EventsDispatched: r.EventsDispatched,
		FailoverEpochs:   r.FailoverEpochs,
	}
	for _, ph := range r.Phases {
		in.Phases = append(in.Phases, estat.PhaseTime{
			WriteNs:     int64(ph.WriteTime),
			CloseWaitNs: int64(ph.CloseWait),
		})
	}
	// Stacking order follows the paper's breakdown figures; zero phases are
	// kept so reports across cells stay column-aligned.
	for _, ph := range mpe.BreakdownPhases {
		in.Breakdown = append(in.Breakdown, estat.BreakdownEntry{
			Phase: string(ph),
			Ns:    int64(r.Breakdown[ph]),
		})
	}
	if r.Metrics != nil {
		snap := r.Metrics.Snapshot()
		in.Metrics = &snap
	}
	return in
}

// computeTotal is the virtual time spent in emulated compute phases: one
// ComputeDelay per file, except that IncludeLastSync (the IOR setup) drops
// the compute phase after the final write.
func (r *Result) computeTotal() sim.Time {
	n := r.Spec.NFiles
	if r.Spec.IncludeLastSync {
		n--
	}
	if n < 0 {
		n = 0
	}
	return r.Spec.ComputeDelay * sim.Time(n)
}
