// Package harness assembles the simulated DEEP-ER cluster and regenerates
// every figure of the paper's evaluation: the perceived-bandwidth sweeps
// (Figures 4, 7, 9) and the collective-I/O cost breakdowns (Figures 5, 6,
// 8, 10), over the <aggregators>_<coll_bufsize> grid, for the three cases
// BW Cache Disabled, BW Cache Enabled and TBW Cache Enabled.
package harness

import (
	"fmt"

	"repro/internal/adio"
	"repro/internal/burst"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/netsim"
	"repro/internal/nvm"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/store"
)

// ClusterConfig describes one simulated machine.
type ClusterConfig struct {
	Seed         int64
	Nodes        int
	RanksPerNode int
	Net          netsim.Config
	PFS          pfs.Config
	SSD          nvm.DeviceConfig
	Payload      bool // real bytes (tests) vs extents only (big runs)
	// BurstBuffer, when non-nil, provisions dedicated burst-buffer proxy
	// nodes (the §V comparator architecture) in addition to the compute
	// nodes. The harness selects the tier per experiment case.
	BurstBuffer *burst.Config
}

// DeepER returns the testbed of §IV-A: 64 nodes × 8 ranks, BeeGFS with four
// ~500 MB/s data targets, one SATA SSD per node, InfiniBand QDR.
func DeepER(seed int64) ClusterConfig {
	return ClusterConfig{
		Seed:         seed,
		Nodes:        64,
		RanksPerNode: 8,
		Net:          netsim.DefaultConfig(64),
		PFS:          pfs.DefaultConfig(),
		SSD:          nvm.DefaultDeviceConfig(),
	}
}

// Scaled shrinks the DEEP-ER profile for fast tests while keeping the
// hardware ratios.
func Scaled(seed int64, nodes, perNode int) ClusterConfig {
	cfg := DeepER(seed)
	cfg.Nodes = nodes
	cfg.RanksPerNode = perNode
	cfg.Net = netsim.DefaultConfig(nodes)
	return cfg
}

// Cluster is one assembled machine.
type Cluster struct {
	Cfg     ClusterConfig
	Kernel  *sim.Kernel
	Fabric  *netsim.Fabric
	FS      *pfs.System
	World   *mpi.World
	NVMs    []*nvm.FS
	Clients []*pfs.Client
	Env     *mpiio.Env
	CoreEnv *core.Env
	BB      *burst.Pool // nil unless Cfg.BurstBuffer is set

	// OnCrash handles crash-node faults: it receives the dying node's index
	// and must kill that node's cache layer (internal/chaos registers the
	// node's open caches here). Left nil, arming a crash-node fault fails
	// validation instead of silently doing nothing.
	OnCrash func(node int)
}

// NewCluster builds the machine: kernel, fabric, global file system with
// one client per node, one SSD file system per node, MPI world, driver
// registry (BeeGFS as default driver) and the E10 cache environment.
func NewCluster(cfg ClusterConfig) *Cluster {
	k := sim.NewKernel(cfg.Seed)
	netCfg := cfg.Net
	bbProxies := 0
	if cfg.BurstBuffer != nil {
		bbProxies = cfg.BurstBuffer.Proxies
		netCfg.Nodes = cfg.Nodes + bbProxies
	}
	fab := netsim.New(k, netCfg)
	factory := store.NewNull
	if cfg.Payload {
		factory = store.NewMem
	}
	fs := pfs.New(k, cfg.PFS, factory)
	// Node-local NVM gets the checksummed variant: at-rest corruption
	// (torn-write/bit-rot faults) must be detectable there. The wrapper
	// charges no simulated time, so fault-free runs are byte-identical.
	nvmFactory := store.NewNullChecksummed
	if cfg.Payload {
		nvmFactory = store.NewMemChecksummed
	}
	clients := make([]*pfs.Client, cfg.Nodes)
	nvms := make([]*nvm.FS, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		clients[i] = fs.NewClient(fab.Node(i))
		dev := nvm.NewDevice(k, fmt.Sprintf("ssd.n%d", i), cfg.SSD)
		nvms[i] = nvm.NewFS(dev, nvm.FSConfig{SupportsFallocate: true}, nvmFactory)
	}
	w := mpi.NewWorldOn(k, fab, cfg.RanksPerNode, cfg.Nodes)
	drv := adio.NewBeeGFSDriver(func(n int) *pfs.Client { return clients[n] })
	reg := adio.NewRegistry(drv)
	reg.Mount("ufs", adio.NewUFSDriver(func(n int) *pfs.Client { return clients[n] }))
	coreEnv := &core.Env{
		LocalFS: func(n int) *nvm.FS { return nvms[n] },
		Locks:   fs.Locks,
	}
	env := &mpiio.Env{Registry: reg, Hooks: coreEnv.HooksFactory()}
	cl := &Cluster{
		Cfg: cfg, Kernel: k, Fabric: fab, FS: fs, World: w,
		NVMs: nvms, Clients: clients, Env: env, CoreEnv: coreEnv,
	}
	if cfg.BurstBuffer != nil {
		bbNodes := make([]*netsim.Node, bbProxies)
		bbClients := make([]*pfs.Client, bbProxies)
		for i := 0; i < bbProxies; i++ {
			bbNodes[i] = fab.Node(cfg.Nodes + i)
			bbClients[i] = fs.NewClient(bbNodes[i])
		}
		cl.BB = burst.NewPool(k, *cfg.BurstBuffer, bbNodes, bbClients, factory)
	}
	return cl
}

// FaultTargets exposes the cluster's hardware to the fault engine.
func (cl *Cluster) FaultTargets() fault.Targets {
	return fault.Targets{
		Devices: func(n int) *nvm.Device {
			if n < 0 || n >= len(cl.NVMs) {
				return nil
			}
			return cl.NVMs[n].Device()
		},
		PFS:       cl.FS,
		Net:       cl.Fabric,
		Crash:     cl.OnCrash,
		TornWrite: func(n int) { cl.CoreEnv.TearNode(n) },
		BitRot:    cl.rotNode,
	}
}

// rotNode applies a bit-rot fault to node's at-rest NVM state: every
// retained journal image byte and every written cache-store chunk rots
// with probability rate, drawn from the kernel's seeded RNG so the damage
// replays bit-for-bit. Pure bookkeeping — no simulated time passes.
func (cl *Cluster) rotNode(node int, rate float64) {
	if node < 0 || node >= len(cl.NVMs) {
		return
	}
	rng := cl.Kernel.Rand()
	cl.CoreEnv.RotNode(node, rng, rate)
	for _, f := range cl.NVMs[node].Files() {
		integ, ok := f.Store().(store.Integrity)
		if !ok {
			continue
		}
		for _, e := range f.Store().Written().Extents() {
			for off := e.Off; off < e.End(); off += store.ChecksumChunk {
				if rng.Float64() < rate {
					integ.CorruptAt(off, 1)
				}
			}
		}
	}
}

// ArmFaults validates s against this cluster and schedules its faults on
// the kernel. Call before the run starts (fault times must not be in the
// past). A nil/empty schedule arms nothing and returns an empty injector.
func (cl *Cluster) ArmFaults(s *fault.Schedule) (*fault.Injector, error) {
	return fault.Arm(cl.Kernel, s, cl.FaultTargets())
}
