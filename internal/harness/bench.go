package harness

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/mpe"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// BenchSchema identifies the benchmark report format.
const BenchSchema = "e10bench/v1"

// BenchScenario is one cell of the fixed regression matrix: its identity
// and the deterministic virtual-time outcomes the compare gate checks.
type BenchScenario struct {
	Name            string  `json:"name"` // "<pattern>/<case>/<scale>"
	Workload        string  `json:"workload"`
	Case            string  `json:"case"`
	Flush           string  `json:"flush,omitempty"`
	Pattern         string  `json:"pattern"` // interleaved | contiguous
	Scale           string  `json:"scale"`   // "<nodes>x<ppn>"
	WallTimeNs      int64   `json:"wall_time_ns"`
	BandwidthGBs    float64 `json:"bandwidth_gbs"`
	NotHiddenSyncNs int64   `json:"not_hidden_sync_ns"`
	SyncedBytes     int64   `json:"synced_bytes"`
	ExchangeBytes   int64   `json:"exchange_bytes"`
}

// BenchReport is the full matrix outcome, serialized as BENCH_<date>.json.
// The simulation is deterministic, so re-running the matrix on the same
// seed must reproduce every scenario's virtual times exactly; the compare
// tolerance only gives headroom for intentional model changes.
type BenchReport struct {
	Schema    string          `json:"schema"`
	Seed      int64           `json:"seed"`
	Scenarios []BenchScenario `json:"scenarios"`
}

// benchCell is one named cell of the fixed matrix: its identity fields and
// the ready-to-run spec.
type benchCell struct {
	Name     string
	Workload string
	Case     string
	Flush    string
	Pattern  string
	Scale    string
	Spec     Spec
}

// benchCells enumerates the fixed scenario matrix: {cache disabled, cache
// enabled + flush_immediate, cache enabled + flush_onclose} x {interleaved
// (coll_perf), contiguous (IOR, one segment)} x {2x2, 4x2, 4x4} — 18
// cells, all small enough to finish in host seconds. Tests that need to
// exercise every bench cell under extra observability reuse this list.
func benchCells(seed int64) []benchCell {
	cases := []struct {
		cs    Case
		flush string
	}{
		{CacheDisabled, ""},
		{CacheEnabled, "flush_immediate"},
		{CacheEnabled, "flush_onclose"},
	}
	patterns := []struct {
		name string
		w    workloads.Workload
		last bool
	}{
		{"interleaved", workloads.CollPerf{RunBytes: 64 << 10, RunsY: 4, RunsZ: 4}, false},
		{"contiguous", workloads.IOR{BlockBytes: 1 << 20, Segments: 1}, true},
	}
	scales := []struct{ nodes, ppn int }{{2, 2}, {4, 2}, {4, 4}}

	var cells []benchCell
	for _, sc := range scales {
		scale := fmt.Sprintf("%dx%d", sc.nodes, sc.ppn)
		for _, p := range patterns {
			for _, c := range cases {
				caseName := string(c.cs)
				if c.flush != "" {
					caseName += "+" + c.flush
				}
				spec := DefaultSpec(p.w, c.cs, 4, 2<<20)
				spec.Cluster = Scaled(seed, sc.nodes, sc.ppn)
				spec.NFiles = 2
				spec.ComputeDelay = sim.Second / 4
				spec.IncludeLastSync = p.last
				spec.Metrics = true
				if c.flush != "" {
					spec.FlushFlag = c.flush
				}
				cells = append(cells, benchCell{
					Name:     p.name + "/" + caseName + "/" + scale,
					Workload: p.w.Name(),
					Case:     string(c.cs),
					Flush:    c.flush,
					Pattern:  p.name,
					Scale:    scale,
					Spec:     spec,
				})
			}
		}
	}
	return cells
}

// RunBenchReport runs the fixed scenario matrix and collects the
// deterministic virtual-time outcomes of every cell.
func RunBenchReport(seed int64) (*BenchReport, error) {
	rep := &BenchReport{Schema: BenchSchema, Seed: seed}
	for _, cell := range benchCells(seed) {
		res, err := Run(cell.Spec)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", cell.Name, err)
		}
		rep.Scenarios = append(rep.Scenarios, BenchScenario{
			Name:            cell.Name,
			Workload:        cell.Workload,
			Case:            cell.Case,
			Flush:           cell.Flush,
			Pattern:         cell.Pattern,
			Scale:           cell.Scale,
			WallTimeNs:      int64(res.WallTime),
			BandwidthGBs:    res.BandwidthGBs,
			NotHiddenSyncNs: int64(res.Breakdown[mpe.PhaseNotHiddenSync]),
			SyncedBytes:     res.Metrics.SumCounters("cache_synced_bytes_total"),
			ExchangeBytes:   res.Metrics.SumCounters("adio_exchange_bytes_total"),
		})
	}
	return rep, nil
}

// MarshalBench renders a report as the committed JSON file.
func MarshalBench(rep *BenchReport) ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return append(b, '\n'), nil
}

// ParseBench decodes a BENCH_*.json file.
func ParseBench(data []byte) (*BenchReport, error) {
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	if rep.Schema != BenchSchema {
		return nil, fmt.Errorf("bench: unsupported schema %q (want %q)", rep.Schema, BenchSchema)
	}
	return &rep, nil
}

// CompareBenchReports checks cur against the committed baseline: every
// baseline scenario must be present, and no scenario's virtual completion
// time may regress by more than tolPct percent. The returned error lists
// every violation; nil means the gate passes.
func CompareBenchReports(base, cur *BenchReport, tolPct int64) error {
	current := make(map[string]BenchScenario, len(cur.Scenarios))
	for _, s := range cur.Scenarios {
		current[s.Name] = s
	}
	var problems []string
	names := make([]string, 0, len(base.Scenarios))
	for _, s := range base.Scenarios {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	baseline := make(map[string]BenchScenario, len(base.Scenarios))
	for _, s := range base.Scenarios {
		baseline[s.Name] = s
	}
	for _, name := range names {
		b := baseline[name]
		c, ok := current[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: missing from current run", name))
			continue
		}
		limit := b.WallTimeNs + b.WallTimeNs*tolPct/100
		if c.WallTimeNs > limit {
			problems = append(problems, fmt.Sprintf(
				"%s: wall time regressed %d ns -> %d ns (limit %d ns, +%d%%)",
				name, b.WallTimeNs, c.WallTimeNs, limit, tolPct))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("bench regression:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

// RenderBench prints the matrix as an aligned table for the terminal.
func RenderBench(rep *BenchReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-42s %14s %10s %16s\n", "scenario", "wall[ms]", "BW[GB/s]", "not_hidden[ms]")
	for _, s := range rep.Scenarios {
		fmt.Fprintf(&sb, "%-42s %14.3f %10.2f %16.3f\n",
			s.Name, float64(s.WallTimeNs)/1e6, s.BandwidthGBs, float64(s.NotHiddenSyncNs)/1e6)
	}
	return sb.String()
}
