package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// ClusterReport summarises resource usage after a run: data-target
// utilizations and stored bytes, metadata traffic, SSD traffic and NIC
// volumes. It is the post-mortem view the benchmark commands print with
// -stats.
func ClusterReport(cl *Cluster) string {
	var b strings.Builder
	horizon := cl.Kernel.Now()
	fmt.Fprintf(&b, "cluster report at t=%v\n", horizon)

	fmt.Fprintf(&b, "  global file system: %.2f GB stored, %d metadata ops\n",
		float64(cl.FS.TotalBytesWritten())/1e9, cl.FS.MetaOps())
	util := cl.FS.TargetUtilization(horizon)
	bytes := cl.FS.TargetBytes()
	for i := range util {
		fmt.Fprintf(&b, "    target %d: %5.1f%% busy, %.2f GB\n", i, util[i]*100, float64(bytes[i])/1e9)
	}

	var ssdW, ssdR, ssdUsed int64
	for _, fs := range cl.NVMs {
		ssdW += fs.Device().BytesWritten
		ssdR += fs.Device().BytesRead
		ssdUsed += fs.Device().Used()
	}
	fmt.Fprintf(&b, "  local SSDs: %.2f GB written, %.2f GB read back, %.2f GB still allocated\n",
		float64(ssdW)/1e9, float64(ssdR)/1e9, float64(ssdUsed)/1e9)

	var tx, rx int64
	perNode := make([]int64, cl.Fabric.Nodes())
	for i := 0; i < cl.Fabric.Nodes(); i++ {
		n := cl.Fabric.Node(i)
		tx += n.TxBytes()
		rx += n.RxBytes()
		perNode[i] = n.TxBytes()
	}
	sort.Slice(perNode, func(i, j int) bool { return perNode[i] > perNode[j] })
	fmt.Fprintf(&b, "  network: %.2f GB injected, %.2f GB delivered", float64(tx)/1e9, float64(rx)/1e9)
	if len(perNode) > 0 {
		fmt.Fprintf(&b, " (busiest node injected %.2f GB)", float64(perNode[0])/1e9)
	}
	b.WriteByte('\n')

	var waits int64
	var waitTime sim.Time
	if cl.FS.Locks != nil {
		waits = cl.FS.Locks.Waits
		waitTime = cl.FS.Locks.WaitTime
	}
	if waits > 0 {
		fmt.Fprintf(&b, "  byte-range locks: %d waits, %v total wait\n", waits, waitTime)
	}
	return b.String()
}
