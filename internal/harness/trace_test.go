package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_trace.json from the current run")

// traceSpec is the golden-trace cell: a cache-enabled collective write small
// enough to keep the checked-in trace readable but large enough to exercise
// the two-phase exchange, the sync thread and the PFS targets.
func traceSpec() Spec {
	w := workloads.CollPerf{RunBytes: 32 << 10, RunsY: 2, RunsZ: 2} // 128 KB/proc
	spec := DefaultSpec(w, CacheEnabled, 2, 1<<20)
	spec.Cluster = Scaled(42, 2, 2)
	spec.NFiles = 2
	spec.ComputeDelay = sim.Second / 2
	spec.TraceEvents = true
	return spec
}

func exportTrace(t *testing.T) []byte {
	t.Helper()
	return exportTraceSpec(t, traceSpec())
}

func exportTraceSpec(t *testing.T, spec Spec) []byte {
	t.Helper()
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("tracing enabled but no events recorded")
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenTrace locks the exported trace down byte for byte against the
// checked-in golden. Any change to event order, timestamps, track naming or
// JSON rendering shows up here; regenerate deliberately with
//
//	go test ./internal/harness -run TestGoldenTrace -update
func TestGoldenTrace(t *testing.T) {
	got := exportTrace(t)
	golden := filepath.Join("testdata", "golden_trace.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		lo, hi := i-40, i+40
		if lo < 0 {
			lo = 0
		}
		ctx := func(b []byte) string {
			if hi > len(b) {
				return string(b[lo:])
			}
			return string(b[lo:hi])
		}
		t.Fatalf("trace diverges from golden at byte %d (got %d bytes, want %d)\n got: ...%s...\nwant: ...%s...",
			i, len(got), len(want), ctx(got), ctx(want))
	}
}

// TestTraceRunDeterminism re-runs the golden cell in-process and asserts the
// export is byte-identical, independent of the checked-in file. This is the
// stronger claim: a fresh kernel, fresh goroutines and fresh maps reproduce
// the identical event stream.
func TestTraceRunDeterminism(t *testing.T) {
	a := exportTrace(t)
	b := exportTrace(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical runs exported different traces (%d vs %d bytes)", len(a), len(b))
	}
}

// TestTracingDoesNotPerturb runs the same cell with tracing off and on and
// requires every reported number to be identical: the tracer observes virtual
// time but never advances it.
func TestTracingDoesNotPerturb(t *testing.T) {
	off := traceSpec()
	off.TraceEvents = false
	plain, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Run(traceSpec())
	if err != nil {
		t.Fatal(err)
	}
	if plain.BandwidthGBs != traced.BandwidthGBs {
		t.Errorf("bandwidth perturbed: %v (off) vs %v (on)", plain.BandwidthGBs, traced.BandwidthGBs)
	}
	if plain.WallTime != traced.WallTime {
		t.Errorf("wall time perturbed: %v vs %v", plain.WallTime, traced.WallTime)
	}
	if plain.PeakBufBytes != traced.PeakBufBytes {
		t.Errorf("peak buffer perturbed: %d vs %d", plain.PeakBufBytes, traced.PeakBufBytes)
	}
	if !reflect.DeepEqual(plain.Phases, traced.Phases) {
		t.Errorf("phase metrics perturbed:\n off: %+v\n  on: %+v", plain.Phases, traced.Phases)
	}
	if !reflect.DeepEqual(plain.Breakdown, traced.Breakdown) {
		t.Errorf("breakdown perturbed:\n off: %v\n  on: %v", plain.Breakdown, traced.Breakdown)
	}
}
