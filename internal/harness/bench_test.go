package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleBench() *BenchReport {
	return &BenchReport{
		Schema: BenchSchema,
		Seed:   1,
		Scenarios: []BenchScenario{
			{Name: "interleaved/disabled/2x2", WallTimeNs: 1_000_000},
			{Name: "contiguous/enabled+flush_onclose/4x4", WallTimeNs: 2_000_000},
		},
	}
}

func TestBenchCompareExact(t *testing.T) {
	base := sampleBench()
	if err := CompareBenchReports(base, sampleBench(), 2); err != nil {
		t.Fatalf("identical reports must pass: %v", err)
	}
}

func TestBenchCompareWithinTolerance(t *testing.T) {
	base, cur := sampleBench(), sampleBench()
	cur.Scenarios[0].WallTimeNs = 1_020_000 // exactly +2%
	if err := CompareBenchReports(base, cur, 2); err != nil {
		t.Fatalf("+2%% must pass: %v", err)
	}
}

func TestBenchCompareFailsOnRegression(t *testing.T) {
	base, cur := sampleBench(), sampleBench()
	cur.Scenarios[1].WallTimeNs = 2_041_000 // +2.05%
	err := CompareBenchReports(base, cur, 2)
	if err == nil {
		t.Fatal(">2% regression must fail")
	}
	if !strings.Contains(err.Error(), "contiguous/enabled+flush_onclose/4x4") {
		t.Errorf("error should name the regressed scenario: %v", err)
	}
}

func TestBenchCompareFailsOnMissingScenario(t *testing.T) {
	base, cur := sampleBench(), sampleBench()
	cur.Scenarios = cur.Scenarios[:1]
	err := CompareBenchReports(base, cur, 2)
	if err == nil {
		t.Fatal("missing scenario must fail")
	}
	if !strings.Contains(err.Error(), "missing from current run") {
		t.Errorf("error should flag the missing scenario: %v", err)
	}
}

func TestParseBenchRejectsWrongSchema(t *testing.T) {
	if _, err := ParseBench([]byte(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("wrong schema must be rejected")
	}
	if _, err := ParseBench([]byte(`not json`)); err == nil {
		t.Fatal("malformed JSON must be rejected")
	}
}

// TestCommittedBaselineParsesAndGates checks the repo's committed baseline:
// it must parse, cover the full 18-scenario matrix, and demonstrably fail
// the gate when one scenario's time is hand-inflated past the tolerance.
func TestCommittedBaselineParsesAndGates(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_2026-08-05.json"))
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	base, err := ParseBench(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Scenarios) != 18 {
		t.Errorf("baseline has %d scenarios, want the full 3x2x3 matrix (18)", len(base.Scenarios))
	}
	if err := CompareBenchReports(base, base, 2); err != nil {
		t.Fatalf("baseline must pass against itself: %v", err)
	}
	inflated, err := ParseBench(data)
	if err != nil {
		t.Fatal(err)
	}
	inflated.Scenarios[0].WallTimeNs += base.Scenarios[0].WallTimeNs/10 + 1 // +10%
	if err := CompareBenchReports(base, inflated, 2); err == nil {
		t.Fatal("hand-inflated scenario time must fail the gate")
	}
}

// TestRenderBench smoke-checks the terminal table.
func TestRenderBench(t *testing.T) {
	out := RenderBench(sampleBench())
	for _, want := range []string{"scenario", "interleaved/disabled/2x2", "wall[ms]"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// BenchmarkMetricsOverhead measures the host-CPU cost of running the golden
// cell with the metrics registry off and on. Virtual-time results are
// identical either way (TestMetricsDoNotPerturb); this shows the registry's
// only cost is host CPU.
func BenchmarkMetricsOverhead(b *testing.B) {
	run := func(b *testing.B, on bool) {
		for i := 0; i < b.N; i++ {
			spec := metricsSpec()
			spec.Metrics = on
			if _, err := Run(spec); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}
