package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/critpath"
)

// critSpec is the golden-critpath cell: the golden-trace cell with the
// critical-path analyzer and the run timeline switched on.
func critSpec() Spec {
	spec := traceSpec()
	spec.CritPath = true
	spec.TimelineBuckets = critpath.DefaultTimelineBuckets
	return spec
}

func runCrit(t *testing.T) *Result {
	t.Helper()
	res, err := Run(critSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.CritPath == nil || res.CritPathReport == "" {
		t.Fatal("CritPath requested but no report produced")
	}
	if res.Timeline == nil || res.TimelineReport == "" {
		t.Fatal("TimelineBuckets requested but no timeline produced")
	}
	return res
}

// TestGoldenCritPath locks the rendered critical-path and timeline reports
// down byte for byte against the checked-in goldens. Any change to the
// walk, the category mapping or the markdown rendering shows up here;
// regenerate deliberately with
//
//	go test ./internal/harness -run TestGoldenCritPath -update
func TestGoldenCritPath(t *testing.T) {
	res := runCrit(t)
	goldens := []struct {
		file string
		got  string
	}{
		{"golden_critpath.md", res.CritPathReport},
		{"golden_timeline.md", res.TimelineReport},
	}
	for _, g := range goldens {
		path := filepath.Join("testdata", g.file)
		if *updateGolden {
			if err := os.WriteFile(path, []byte(g.got), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s (%d bytes)", path, len(g.got))
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden (run with -update to create): %v", err)
		}
		if !bytes.Equal([]byte(g.got), want) {
			t.Errorf("%s diverges from golden (got %d bytes, want %d)\ngot:\n%s",
				g.file, len(g.got), len(want), g.got)
		}
	}
}

// TestCritPathRunDeterminism re-runs the golden cell and requires the
// analyzer and timeline output to be byte-identical across fresh kernels:
// the reports are pure functions of the deterministic trace.
func TestCritPathRunDeterminism(t *testing.T) {
	a, b := runCrit(t), runCrit(t)
	if a.CritPathReport != b.CritPathReport {
		t.Error("two identical runs produced different critical-path reports")
	}
	if a.TimelineReport != b.TimelineReport {
		t.Error("two identical runs produced different timeline reports")
	}
	aj, err := a.CritPath.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.CritPath.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if aj != bj {
		t.Error("two identical runs produced different critical-path JSON")
	}
}

// TestCritPathDoesNotPerturb runs the golden-trace cell with and without
// the analyzer and requires every reported number AND the exported trace to
// be identical: the analyzer is post-hoc — it reads the trace after the
// kernel stops and never advances virtual time.
func TestCritPathDoesNotPerturb(t *testing.T) {
	plain, err := Run(traceSpec())
	if err != nil {
		t.Fatal(err)
	}
	crit, err := Run(critSpec())
	if err != nil {
		t.Fatal(err)
	}
	if plain.WallTime != crit.WallTime {
		t.Errorf("wall time perturbed: %v vs %v", plain.WallTime, crit.WallTime)
	}
	if plain.BandwidthGBs != crit.BandwidthGBs {
		t.Errorf("bandwidth perturbed: %v vs %v", plain.BandwidthGBs, crit.BandwidthGBs)
	}
	if !reflect.DeepEqual(plain.Breakdown, crit.Breakdown) {
		t.Errorf("breakdown perturbed:\n off: %v\n  on: %v", plain.Breakdown, crit.Breakdown)
	}
	plainTrace := exportTraceSpec(t, traceSpec())
	critTrace := exportTraceSpec(t, critSpec())
	if !bytes.Equal(plainTrace, critTrace) {
		t.Errorf("enabling the analyzer changed the exported trace (%d vs %d bytes)",
			len(plainTrace), len(critTrace))
	}
}

// TestBenchMatrixCritPathExact runs every cell of the fixed bench matrix
// with the analyzer on and requires exact attribution on each: the critical
// path accounts for every nanosecond of virtual wall time, with the
// category shares partitioning the total. No tolerance — the walk is a
// contiguous backward partition of [0, wall] by construction, and any cell
// where it comes up short means a trace vocabulary the analyzer missed.
func TestBenchMatrixCritPathExact(t *testing.T) {
	if testing.Short() {
		t.Skip("18-cell matrix skipped in -short mode")
	}
	for _, cell := range benchCells(42) {
		cell := cell
		t.Run(cell.Name, func(t *testing.T) {
			spec := cell.Spec
			spec.CritPath = true
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			rep := res.CritPath
			if rep == nil {
				t.Fatal("no critical-path report")
			}
			if rep.AttributedNs != int64(res.WallTime) {
				t.Errorf("attributed %d ns, want wall time %d ns", rep.AttributedNs, int64(res.WallTime))
			}
			var sum int64
			for _, sh := range rep.Shares {
				sum += sh.Ns
			}
			if sum != rep.AttributedNs {
				t.Errorf("shares sum to %d ns, want %d ns", sum, rep.AttributedNs)
			}
		})
	}
}

// TestScale_CritPath runs the three kilo-rank variants with the analyzer on.
// RunScale itself enforces exact attribution; this test additionally pins
// that the analyzed run's digest matches the plain run — the analyzer never
// perturbs the simulation, even at scale — and that the report's category
// shares survive into the scale report.
func TestScale_CritPath(t *testing.T) {
	for _, v := range []ScaleVariant{ScaleClean, ScaleLossy, ScaleCrash} {
		v := v
		t.Run(string(v), func(t *testing.T) {
			cfg := scaleTestConfig(t, v)
			plain, err := RunScale(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.CritPath = true
			crit, err := RunScale(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if plain.Digest() != crit.Digest() {
				t.Errorf("analyzer perturbed the run\nplain:\n%scrit:\n%s",
					plain.Text(), crit.Text())
			}
			if len(crit.CritPath) == 0 {
				t.Fatal("scale report carries no critical-path shares")
			}
			var sum int64
			for _, sh := range crit.CritPath {
				sum += sh.Ns
			}
			if sum != crit.WallTimeNs {
				t.Errorf("critpath shares sum to %d ns, want wall time %d ns", sum, crit.WallTimeNs)
			}
		})
	}
}
