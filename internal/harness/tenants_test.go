package harness

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// tinyJob returns a small coll_perf job: 4 ranks × 16 KB blocks = 64 KB per
// file, in 8 KB collective rounds so quota pressure engages mid-file.
func tinyJob(name string, ranks int) JobSpec {
	return JobSpec{
		Name:        name,
		Ranks:       ranks,
		Workload:    workloads.CollPerf{RunBytes: 4 << 10, RunsY: 2, RunsZ: 2},
		Aggregators: 1,
		CBBuffer:    8 << 10,
	}
}

// oneNodeCluster puts every rank on one node so all jobs contend for the
// same NVM device.
func oneNodeCluster(seed int64, ranks int, ssdCap int64) ClusterConfig {
	cfg := Scaled(seed, 1, ranks)
	cfg.SSD.Capacity = ssdCap
	cfg.Payload = true
	return cfg
}

// TestMultiTenantAdmissionRejection: two tenants whose reservations cannot
// both fit. The rejected tenant must complete uncached (fallback), not
// fail.
func TestMultiTenantAdmissionRejection(t *testing.T) {
	a := tinyJob("jobA", 2)
	a.Reserve = 80 << 10
	b := tinyJob("jobB", 2)
	b.Reserve = 50 << 10
	b.StartDelay = sim.Millisecond // deterministic arrival order: A admits first
	res, err := RunMulti(MultiSpec{
		Cluster: oneNodeCluster(1, 4, 100<<10),
		Jobs:    []JobSpec{a, b},
		Metrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := res.Jobs[0], res.Jobs[1]
	if ra.Err != nil || rb.Err != nil {
		t.Fatalf("job errors: a=%v b=%v", ra.Err, rb.Err)
	}
	if ra.Fallbacks != 0 || ra.Stats.CacheWrites == 0 {
		t.Errorf("admitted tenant should run cached: fallbacks=%d writes=%d",
			ra.Fallbacks, ra.Stats.CacheWrites)
	}
	if rb.Fallbacks == 0 {
		t.Errorf("rejected tenant should fall back uncached: fallbacks=%d", rb.Fallbacks)
	}
	// The rejection itself is visible on the tenant-labelled counter (adio
	// drops the hooks object when the open falls back, so Stats can't carry
	// it).
	if text := res.Metrics.Text(); !strings.Contains(text, "cache_tenant_admit_rejects_total") {
		t.Errorf("admission rejection not recorded in metrics:\n%s", text)
	}
	if rb.Stats.CacheWrites != 0 {
		t.Errorf("rejected tenant wrote %d times to the cache", rb.Stats.CacheWrites)
	}
	if ra.BandwidthGBs <= 0 || rb.BandwidthGBs <= 0 {
		t.Errorf("both jobs must report bandwidth: a=%f b=%f", ra.BandwidthGBs, rb.BandwidthGBs)
	}
}

// TestMultiTenantQueuedAdmission: a queued tenant waits for the first
// tenant's close to release its reservation, then admits and runs cached.
func TestMultiTenantQueuedAdmission(t *testing.T) {
	a := tinyJob("jobA", 2)
	a.Reserve = 80 << 10
	b := tinyJob("jobB", 2)
	b.Reserve = 80 << 10
	b.Admit = "queue"
	b.StartDelay = sim.Millisecond
	res, err := RunMulti(MultiSpec{
		Cluster: oneNodeCluster(2, 4, 100<<10),
		Jobs:    []JobSpec{a, b},
	})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := res.Jobs[0], res.Jobs[1]
	if ra.Err != nil || rb.Err != nil {
		t.Fatalf("job errors: a=%v b=%v", ra.Err, rb.Err)
	}
	if rb.Fallbacks != 0 || rb.Stats.AdmitRejects != 0 {
		t.Errorf("queued tenant should admit after A closes: fallbacks=%d rejects=%d",
			rb.Fallbacks, rb.Stats.AdmitRejects)
	}
	if rb.Stats.CacheWrites == 0 {
		t.Error("queued tenant never reached the cache")
	}
}

// TestMultiTenantBackpressureThenAdmit: a tenant whose byte quota is
// smaller than one file blocks under pressure, the sync thread drains
// dirty extents, clean-extent eviction reclaims them, and the blocked
// write proceeds — no write-through, no failure.
func TestMultiTenantBackpressureThenAdmit(t *testing.T) {
	a := tinyJob("jobA", 4)
	a.QuotaBytes = 16 << 10 // two 8 KB rounds, file is 64 KB
	a.Policy = "block"
	res, err := RunMulti(MultiSpec{
		Cluster: oneNodeCluster(3, 4, 1<<20),
		Jobs:    []JobSpec{a},
	})
	if err != nil {
		t.Fatal(err)
	}
	ra := res.Jobs[0]
	if ra.Err != nil {
		t.Fatalf("job error: %v", ra.Err)
	}
	if ra.Stats.QuotaStalls == 0 {
		t.Error("expected quota stalls under a 16 KB quota")
	}
	if ra.Stats.EvictedBytes == 0 {
		t.Error("expected clean-extent eviction to reclaim quota")
	}
	if ra.Stats.QuotaWriteThroughs != 0 {
		t.Errorf("backpressure should admit, not degrade: %d write-throughs",
			ra.Stats.QuotaWriteThroughs)
	}
	if ra.Stats.QuotaStallTime <= 0 {
		t.Error("stall time not accounted")
	}
}

// TestMultiTenantDegradeToWriteThrough: with e10_tenant_policy=writethrough
// and flush_onclose (nothing drains mid-file, so nothing is evictable), a
// quota-exhausted tenant degrades to write-through immediately and still
// completes.
func TestMultiTenantDegradeToWriteThrough(t *testing.T) {
	a := tinyJob("jobA", 4)
	a.QuotaBytes = 16 << 10
	a.Policy = "writethrough"
	a.FlushFlag = "flush_onclose"
	res, err := RunMulti(MultiSpec{
		Cluster: oneNodeCluster(4, 4, 1<<20),
		Jobs:    []JobSpec{a},
	})
	if err != nil {
		t.Fatal(err)
	}
	ra := res.Jobs[0]
	if ra.Err != nil {
		t.Fatalf("job error: %v", ra.Err)
	}
	if ra.Stats.QuotaWriteThroughs == 0 {
		t.Error("expected pressure write-throughs under writethrough policy")
	}
	if ra.Stats.QuotaStalls != 0 {
		t.Errorf("writethrough policy must not stall (got %d stalls)", ra.Stats.QuotaStalls)
	}
	if ra.Stats.CacheWrites == 0 {
		t.Error("writes under quota should still hit the cache")
	}
}

// TestMultiTenantNoisyNeighborIsolation: an unreserved noisy tenant cannot
// starve a tenant holding a reservation; both complete and the reserved
// tenant runs fully cached.
func TestMultiTenantNoisyNeighborIsolation(t *testing.T) {
	noisy := tinyJob("noisy", 2)
	noisy.NFiles = 2
	quiet := tinyJob("quiet", 2)
	quiet.Reserve = 40 << 10
	quiet.StartDelay = sim.Millisecond
	res, err := RunMulti(MultiSpec{
		Cluster: oneNodeCluster(5, 4, 64<<10),
		Jobs:    []JobSpec{noisy, quiet},
		Metrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rn, rq := res.Jobs[0], res.Jobs[1]
	if rn.Err != nil || rq.Err != nil {
		t.Fatalf("job errors: noisy=%v quiet=%v", rn.Err, rq.Err)
	}
	if rq.Stats.AdmitRejects != 0 || rq.Fallbacks != 0 {
		t.Errorf("reserved tenant displaced: rejects=%d fallbacks=%d",
			rq.Stats.AdmitRejects, rq.Fallbacks)
	}
	if rq.Stats.CacheWrites == 0 {
		t.Error("reserved tenant never reached the cache")
	}
	// Per-tenant metric series must be present and labelled.
	text := res.Metrics.Text()
	if !strings.Contains(text, "tenant=") {
		t.Errorf("metrics lack tenant labels:\n%s", text)
	}
}

// TestRunMultiValidation pins the spec errors.
func TestRunMultiValidation(t *testing.T) {
	w := workloads.CollPerf{RunBytes: 4 << 10, RunsY: 2, RunsZ: 2}
	cases := []MultiSpec{
		{Cluster: Scaled(1, 1, 2)},
		{Cluster: Scaled(1, 1, 2), Jobs: []JobSpec{{Name: "", Ranks: 1, Workload: w}}},
		{Cluster: Scaled(1, 1, 2), Jobs: []JobSpec{
			{Name: "a", Ranks: 1, Workload: w}, {Name: "a", Ranks: 1, Workload: w}}},
		{Cluster: Scaled(1, 1, 2), Jobs: []JobSpec{{Name: "a", Ranks: 0, Workload: w}}},
		{Cluster: Scaled(1, 1, 2), Jobs: []JobSpec{{Name: "a", Ranks: 1}}},
		{Cluster: Scaled(1, 1, 2), Jobs: []JobSpec{{Name: "a", Ranks: 3, Workload: w}}},
	}
	for i, spec := range cases {
		if _, err := RunMulti(spec); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}
