package harness

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/adio"
	"repro/internal/burst"
	"repro/internal/core"
	"repro/internal/critpath"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/mpe"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Case selects one of the evaluation's three data paths.
type Case string

// The three cases of Figures 4, 7 and 9.
const (
	// CacheDisabled writes directly to the global file system
	// ("BW Cache Disabled").
	CacheDisabled Case = "disabled"
	// CacheEnabled writes to the local SSD cache and flushes it to the
	// global file system asynchronously ("BW Cache Enabled").
	CacheEnabled Case = "enabled"
	// CacheTheoretical writes to the cache without flushing — the
	// theoretical bandwidth with synchronisation cost fully hidden
	// ("TBW Cache Enable").
	CacheTheoretical Case = "theoretical"
	// BurstBuffer stages writes in a small tier of dedicated NVMe proxies
	// (the §V comparator architecture) instead of node-local SSDs. Not
	// part of the paper's evaluation; used by the comparison benches.
	BurstBuffer Case = "burstbuffer"
)

// Spec describes one experiment cell.
type Spec struct {
	Workload     workloads.Workload
	Cluster      ClusterConfig
	Case         Case
	Aggregators  int      // cb_nodes
	CBBuffer     int64    // cb_buffer_size in bytes
	NFiles       int      // files written per run (paper: 4 × 32 GB)
	ComputeDelay sim.Time // emulated compute phase (paper: 30 s)
	// IncludeLastSync adds the last write phase's non-hidden
	// synchronisation to the total time, as the IOR experiment does
	// (§IV-D); coll_perf and Flash-IO exclude it (§IV-B).
	IncludeLastSync bool
	StripeSize      int64  // file stripe size (paper: 4 MB)
	StripeCount     int    // file stripe count (paper: 4)
	SyncBuffer      int64  // ind_wr_buffer_size (paper: 512 KB)
	FlushFlag       string // e10_cache_flush_flag (default flush_immediate)
	Trace           bool   // record per-rank phase timelines (Result.Logs)
	// TraceEvents enables the event tracer (internal/trace): spans, instants
	// and counters across every simulated layer, exposed as Result.Trace.
	// Tracing records events only — it never perturbs virtual time, so every
	// measured number is identical with it on or off.
	TraceEvents bool
	// TracePath additionally writes the recorded events as Chrome
	// trace-event JSON (Perfetto-loadable) to this file after the run.
	// Setting it implies TraceEvents.
	TracePath string
	// CritPath runs the critical-path analyzer (internal/critpath) on the
	// recorded trace after the run, exposing Result.CritPath. It implies
	// TraceEvents; the analysis is post-hoc, so enabling it never perturbs
	// virtual time or the recorded trace.
	CritPath bool
	// TimelineBuckets, when > 0, builds the interval-sampled run timeline
	// (internal/critpath.BuildTimeline) with that many buckets, exposing
	// Result.Timeline. It implies TraceEvents and is likewise post-hoc.
	TimelineBuckets int
	// Metrics enables the metrics registry (internal/metrics): label-aware
	// counters, gauges and latency histograms across every simulated layer,
	// exposed as Result.Metrics. Like tracing, metrics record values only —
	// they never perturb virtual time, so every measured number is identical
	// with them on or off.
	Metrics bool
	// ExtraHints are merged into the MPI_Info last (e.g. cb_config_list
	// for placement experiments, e10_cache_read, ...).
	ExtraHints map[string]string
	// FaultSpec, when non-empty, is a fault.Parse schedule armed on the
	// cluster before the run (e.g. "degrade-target,target=1,factor=0.2,
	// from=2s,to=8s"). Fault injection is deterministic: the same spec and
	// seed reproduce the same run byte for byte.
	FaultSpec string
	// Reliable arms the reliable point-to-point delivery layer (acks,
	// timeout retransmit, receiver dedup) plus a collective timeout, so
	// the run tolerates lossy/duplicating links and a partitioned
	// collective surfaces a typed error instead of wedging. Without
	// faults, arming it leaves every measured virtual time unchanged.
	Reliable bool
	// CollTimeout overrides the collective timeout armed by Reliable
	// (zero keeps DefaultCollTimeout).
	CollTimeout sim.Time
	// Resilient selects the failover-capable collective write path
	// (e10_resilient_write): aggregator crash detection, deterministic
	// file-domain recompute over survivors, unacked-round replay.
	// Requires Reliable (the failover protocol needs collective
	// timeouts).
	Resilient bool
	// PreRun, when non-nil, runs against the freshly assembled cluster
	// after the reliability layer is armed but before faults are scheduled
	// and ranks start. It is the hook scale runs and tests use to wire
	// Cluster.OnCrash, arm per-node loss probabilities, or schedule
	// virtual-time callbacks. Everything it does must be deterministic.
	PreRun func(cl *Cluster) error
}

// DefaultCollTimeout is the collective timeout Run arms when
// Spec.Reliable is set and Spec.CollTimeout is zero. It bounds how long
// a collective waits for a crashed or partitioned peer before returning
// a typed timeout error.
const DefaultCollTimeout = 200 * sim.Millisecond

// DefaultSpec returns the paper's experiment parameters for a workload and
// cell, on the full DEEP-ER profile.
func DefaultSpec(w workloads.Workload, c Case, aggs int, cbBytes int64) Spec {
	return Spec{
		Workload:     w,
		Cluster:      DeepER(20160901),
		Case:         c,
		Aggregators:  aggs,
		CBBuffer:     cbBytes,
		NFiles:       4,
		ComputeDelay: 30 * sim.Second,
		StripeSize:   4 << 20,
		StripeCount:  4,
		SyncBuffer:   512 << 10,
	}
}

// PhaseMetrics captures one file's timings (the terms of Equation 1).
type PhaseMetrics struct {
	WriteTime sim.Time // T_c(k): collective write to cache or global FS
	CloseWait sim.Time // max(0, T_s(k) - C(k+1)): non-hidden sync at close
}

// Result is one experiment cell's outcome.
type Result struct {
	Spec       Spec
	TotalBytes int64
	Phases     []PhaseMetrics
	// BandwidthGBs is the perceived bandwidth of Equation 2 in GB/s.
	BandwidthGBs float64
	// Breakdown holds the max-over-ranks per-phase times summed over all
	// write phases (the stacked bars of Figures 5, 6, 8, 10).
	Breakdown map[mpe.Phase]sim.Time
	// WallTime is the total simulated run time.
	WallTime sim.Time
	// EventsDispatched is the number of kernel events the run consumed —
	// the numerator of the simulated-events-per-second throughput metric.
	EventsDispatched int64
	// PeakBufBytes is the largest collective buffer allocated on any rank
	// (memory pressure, the paper's point (d)).
	PeakBufBytes int64
	// FailoverEpochs is the largest number of resilient-write membership
	// epochs beyond the first observed on any rank (zero unless an
	// aggregator crashed mid-write on the resilient path).
	FailoverEpochs int64
	// Logs holds the per-rank MPE logs (with timelines when Spec.Trace is
	// set), for trace export via mpe.WriteChromeTrace.
	Logs []*mpe.Log
	// Trace is the event tracer with all recorded events, non-nil only when
	// Spec.TraceEvents or Spec.TracePath was set.
	Trace *trace.Tracer
	// TraceSummary is the plain-text trace digest (top spans, counter
	// high-water marks), empty when tracing was off.
	TraceSummary string
	// CritPath is the critical-path analysis of the recorded trace, non-nil
	// only when Spec.CritPath was set; CritPathReport is its markdown
	// rendering.
	CritPath       *critpath.Report
	CritPathReport string
	// Timeline is the interval-sampled run timeline, non-nil only when
	// Spec.TimelineBuckets > 0; TimelineReport is its markdown rendering.
	Timeline       *critpath.Timeline
	TimelineReport string
	// Metrics is the populated registry, non-nil only when Spec.Metrics was
	// set.
	Metrics *metrics.Registry
	// MetricsSummary is the registry's plain-text digest (sorted, integer
	// only, byte-deterministic per seed), empty when metrics were off.
	MetricsSummary string
	// Report is the post-run cluster resource summary (ClusterReport).
	Report string
	// FaultReport is the armed fault schedule's lifecycle rendering, empty
	// when no faults were injected.
	FaultReport string
}

// Label renders the cell name the paper uses on its x axes,
// "<aggregators>_<coll_bufsize>".
func (s Spec) Label() string {
	return fmt.Sprintf("%d_%dmb", s.Aggregators, s.CBBuffer>>20)
}

// hints builds the MPI_Info for the run.
func (s Spec) hints() mpi.Info {
	info := mpi.Info{
		adio.HintCBWrite:         adio.HintEnable,
		adio.HintCBNodes:         strconv.Itoa(s.Aggregators),
		adio.HintCBBufferSize:    strconv.FormatInt(s.CBBuffer, 10),
		adio.HintStripingUnit:    strconv.FormatInt(s.StripeSize, 10),
		adio.HintStripingFactor:  strconv.Itoa(s.StripeCount),
		adio.HintIndWrBufferSize: strconv.FormatInt(s.SyncBuffer, 10),
	}
	switch s.Case {
	case CacheDisabled, BurstBuffer:
		info[core.HintCache] = core.CacheDisable
	case CacheEnabled, CacheTheoretical:
		info[core.HintCache] = core.CacheEnable
		flush := s.FlushFlag
		if flush == "" {
			// Figure 3's workflow: synchronisation starts right after the
			// write so it can hide behind the next compute phase.
			flush = core.FlushImmediate
		}
		info[core.HintFlushFlag] = flush
		info[core.HintDiscardFlag] = "enable"
		info[core.HintCachePath] = "/scratch"
	}
	if s.Resilient {
		info[adio.HintResilientWrite] = adio.HintEnable
	}
	for k, v := range s.ExtraHints {
		info[k] = v
	}
	return info
}

// Run executes one experiment cell on a freshly built cluster and computes
// the perceived bandwidth per Equation 2.
func Run(spec Spec) (*Result, error) {
	if spec.Case == BurstBuffer && spec.Cluster.BurstBuffer == nil {
		bb := burst.DefaultConfig()
		spec.Cluster.BurstBuffer = &bb
	}
	cl := NewCluster(spec.Cluster)
	var tr *trace.Tracer
	if spec.TraceEvents || spec.TracePath != "" || spec.CritPath || spec.TimelineBuckets > 0 {
		tr = trace.New()
		cl.Kernel.SetTracer(tr)
	}
	var reg *metrics.Registry
	if spec.Metrics {
		reg = metrics.New()
		cl.Kernel.SetMetrics(reg)
	}
	switch {
	case spec.Case == CacheTheoretical:
		cl.CoreEnv.SkipSync = true
	case spec.Case == BurstBuffer:
		cl.Env.Hooks = cl.BB.HooksFactory()
	}
	if spec.Resilient && !spec.Reliable {
		return nil, fmt.Errorf("harness: Spec.Resilient requires Spec.Reliable (failover needs collective timeouts)")
	}
	if spec.Reliable {
		cl.World.EnableReliable(mpi.ReliableConfig{})
		ct := spec.CollTimeout
		if ct == 0 {
			ct = DefaultCollTimeout
		}
		cl.World.SetCollTimeout(ct)
	}
	if spec.PreRun != nil {
		if err := spec.PreRun(cl); err != nil {
			return nil, err
		}
	}
	var injector *fault.Injector
	if spec.FaultSpec != "" {
		sched, err := fault.Parse(spec.FaultSpec)
		if err != nil {
			return nil, err
		}
		injector, err = cl.ArmFaults(sched)
		if err != nil {
			return nil, err
		}
	}
	w := cl.World
	comm := w.Comm()
	nranks := w.Size()
	info := spec.hints()

	logs := make([]*mpe.Log, nranks)
	for i := range logs {
		logs[i] = mpe.NewLog()
		if spec.Trace {
			logs[i].EnableTimeline()
		}
		if tr != nil {
			// Registers the rank tracks 0..n-1 up front, in ascending order.
			logs[i].BindTracer(tr, w.Rank(i).TraceTrack(tr))
		}
		if reg != nil {
			logs[i].BindMetrics(reg, i)
		}
	}
	writeTimes := make([]sim.Time, spec.NFiles) // identical across ranks (barrier-fenced)
	closeWaits := make([][]sim.Time, spec.NFiles)
	for i := range closeWaits {
		closeWaits[i] = make([]sim.Time, nranks)
	}
	peakBuf := make([]int64, nranks)
	failovers := make([]int64, nranks)
	var firstErr error
	fail := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	err := w.Run(func(r *mpi.Rank) {
		me := comm.RankOf(r)
		var prev *mpiio.File
		prevIdx := -1
		closePrev := func() {
			if prev == nil {
				return
			}
			comm.Barrier(r)
			t0 := r.Now()
			fail(prev.Close())
			closeWaits[prevIdx][me] = r.Now() - t0
			peak := prev.Handle().Stats.PeakBufBytes
			if peak > peakBuf[me] {
				peakBuf[me] = peak
			}
			if fe := prev.Handle().Stats.FailoverEpochs; fe > failovers[me] {
				failovers[me] = fe
			}
			prev, prevIdx = nil, -1
		}
		for k := 0; k < spec.NFiles; k++ {
			// Figure 3 workflow: the previous file's close is deferred to
			// the beginning of this I/O phase.
			closePrev()
			comm.Barrier(r)
			t0 := r.Now()
			f, err := cl.Env.OpenWithLog(r, comm, fmt.Sprintf("%s.%04d", spec.Workload.Name(), k),
				mpiio.ModeCreate|mpiio.ModeWrOnly, info, logs[me])
			if err != nil {
				fail(err)
				return
			}
			fail(spec.Workload.WritePhase(r, f, spec.Cluster.Payload))
			comm.Barrier(r)
			if me == 0 {
				writeTimes[k] = r.Now() - t0
			}
			prev, prevIdx = f, k
			if k < spec.NFiles-1 || !spec.IncludeLastSync {
				// Compute phase C(k+1). With IncludeLastSync (IOR), the
				// final write has no following compute: C(N) = 0.
				r.Compute(spec.ComputeDelay)
			}
		}
		closePrev()
	})
	if err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}

	res := &Result{
		Spec:             spec,
		TotalBytes:       spec.Workload.FileBytes(nranks) * int64(spec.NFiles),
		Breakdown:        make(map[mpe.Phase]sim.Time),
		WallTime:         cl.Kernel.Now(),
		EventsDispatched: cl.Kernel.EventsDispatched(),
		Logs:             logs,
	}
	res.Report = ClusterReport(cl)
	if injector != nil {
		res.FaultReport = injector.Report()
	}
	if tr != nil {
		res.Trace = tr
		res.TraceSummary = tr.Summary()
		if spec.TracePath != "" {
			if werr := writeTraceFile(tr, spec.TracePath); werr != nil {
				return nil, werr
			}
		}
	}
	if reg != nil {
		res.Metrics = reg
		res.MetricsSummary = reg.Text()
	}
	// Post-hoc analyses: both only read the already-recorded trace, so the
	// trace bytes and every measured virtual time are identical with or
	// without them.
	if spec.CritPath {
		res.CritPath = critpath.Analyze(tr, int64(res.WallTime))
		res.CritPathReport = res.CritPath.Markdown()
	}
	if spec.TimelineBuckets > 0 {
		res.Timeline = critpath.BuildTimeline(tr, int64(res.WallTime), spec.TimelineBuckets)
		res.TimelineReport = res.Timeline.Markdown()
	}
	var denom sim.Time
	for k := 0; k < spec.NFiles; k++ {
		var wait sim.Time
		for _, cw := range closeWaits[k] {
			if cw > wait {
				wait = cw
			}
		}
		// Close always pays a couple of metadata round trips; only count
		// waits beyond that noise floor as non-hidden synchronisation.
		if wait < 10*sim.Millisecond {
			wait = 0
		}
		if k == spec.NFiles-1 && !spec.IncludeLastSync {
			wait = 0
		}
		res.Phases = append(res.Phases, PhaseMetrics{WriteTime: writeTimes[k], CloseWait: wait})
		denom += writeTimes[k] + wait
	}
	if denom > 0 {
		res.BandwidthGBs = float64(res.TotalBytes) / denom.Seconds() / 1e9
	}
	for _, ph := range mpe.BreakdownPhases {
		res.Breakdown[ph] = mpe.Aggregate(logs, ph).Max
	}
	for _, pb := range peakBuf {
		if pb > res.PeakBufBytes {
			res.PeakBufBytes = pb
		}
	}
	for _, fe := range failovers {
		if fe > res.FailoverEpochs {
			res.FailoverEpochs = fe
		}
	}
	return res, nil
}

// writeTraceFile exports the tracer as Chrome trace-event JSON at path.
func writeTraceFile(tr *trace.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("harness: trace export: %w", err)
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return fmt.Errorf("harness: trace export: %w", err)
	}
	return f.Close()
}
