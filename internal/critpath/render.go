package critpath

import (
	"encoding/json"
	"fmt"
	"strings"
)

// msStr renders nanoseconds as milliseconds with microsecond precision using
// integer arithmetic only, keeping every rendering byte-deterministic.
func msStr(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03dms", neg, ns/1_000_000, (ns%1_000_000)/1_000)
}

// pctX10 renders an x10 integer percentage ("123" -> "12.3%").
func pctX10(x int64) string {
	return fmt.Sprintf("%d.%d%%", x/10, x%10)
}

// shareX10 returns part/total as an x10 integer percentage.
func shareX10(part, total int64) int64 {
	if total == 0 {
		return 0
	}
	return part * 1000 / total
}

// Markdown renders the critical-path report for terminals and docs.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## critical path (%s)\n\n", r.Schema)
	fmt.Fprintf(&b, "wall %s, attributed %s (%s), start track %q, %d segments, %d message edges\n\n",
		msStr(r.WallNs), msStr(r.AttributedNs), pctX10(shareX10(r.AttributedNs, r.WallNs)),
		r.StartTrack, r.Segments, len(r.Edges))
	b.WriteString("| category | time | share | segments |\n|---|---:|---:|---:|\n")
	for _, sh := range r.Shares {
		fmt.Fprintf(&b, "| %s | %s | %s | %d |\n",
			sh.Category, msStr(sh.Ns), pctX10(shareX10(sh.Ns, r.AttributedNs)), sh.Segments)
	}
	if len(r.WhatIf) > 0 {
		b.WriteString("\n### what-if (Eq. 1 style, lower bounds)\n\n")
		b.WriteString("| scenario | category | saved | new wall | reduction |\n|---|---|---:|---:|---:|\n")
		for _, w := range r.WhatIf {
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
				w.Scenario, w.Category, msStr(w.SavedNs), msStr(w.NewWallNs), pctX10(w.ReductionPctX10))
		}
	}
	if len(r.Stragglers) > 0 {
		b.WriteString("\n### stragglers (on-path time per rank)\n\n")
		b.WriteString("| track | on path | top category |\n|---|---:|---|\n")
		for _, s := range r.Stragglers {
			fmt.Fprintf(&b, "| %s | %s | %s |\n", s.Track, msStr(s.OnPathNs), s.Top)
		}
	}
	if len(r.TopSegments) > 0 {
		b.WriteString("\n### longest path segments\n\n")
		b.WriteString("| track | from | to | category | via |\n|---|---:|---:|---|---|\n")
		for _, s := range r.TopSegments {
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
				s.Track, msStr(s.FromNs), msStr(s.ToNs), s.Category, s.Via)
		}
	}
	if len(r.Edges) > 0 {
		n := len(r.Edges)
		shown := n
		if shown > 12 {
			shown = 12
		}
		fmt.Fprintf(&b, "\n### message edges on the path (%d total, first %d)\n\n", n, shown)
		b.WriteString("| id | from | to | send | recv | bytes |\n|---:|---|---|---:|---:|---:|\n")
		for _, e := range r.Edges[:shown] {
			fmt.Fprintf(&b, "| %d | %s | %s | %s | %s | %d |\n",
				e.ID, e.From, e.To, msStr(e.SendNs), msStr(e.RecvNs), e.Bytes)
		}
	}
	return b.String()
}

// CSV renders the report as section-tagged rows.
func (r *Report) CSV() string {
	var b strings.Builder
	b.WriteString("section,key,category,ns,extra\n")
	fmt.Fprintf(&b, "summary,wall_ns,,%d,\n", r.WallNs)
	fmt.Fprintf(&b, "summary,attributed_ns,,%d,%s\n", r.AttributedNs, r.StartTrack)
	for _, sh := range r.Shares {
		fmt.Fprintf(&b, "share,%s,%s,%d,%d\n", sh.Category, sh.Category, sh.Ns, sh.Segments)
	}
	for _, w := range r.WhatIf {
		fmt.Fprintf(&b, "whatif,%s,%s,%d,%d\n", w.Scenario, w.Category, w.SavedNs, w.NewWallNs)
	}
	for _, s := range r.Stragglers {
		fmt.Fprintf(&b, "straggler,%s,%s,%d,\n", s.Track, s.Top, s.OnPathNs)
	}
	for _, e := range r.Edges {
		fmt.Fprintf(&b, "edge,%d,,%d,%s->%s\n", e.ID, e.RecvNs-e.SendNs, e.From, e.To)
	}
	return b.String()
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() (string, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

// ParseReport decodes a report produced by (*Report).JSON, validating the
// schema. It never panics on malformed input.
func ParseReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("critpath: parse report: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("critpath: parse report: schema %q, want %q", r.Schema, ReportSchema)
	}
	return &r, nil
}

// Markdown renders the timeline as a bucketed table.
func (t *Timeline) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## run timeline (%s)\n\n", t.Schema)
	fmt.Fprintf(&b, "wall %s in %d buckets of %s\n\n", msStr(t.WallNs), t.Buckets, msStr(t.WallNs/int64(maxInt(t.Buckets, 1))))
	b.WriteString("| series |")
	for _, te := range t.BucketNs {
		fmt.Fprintf(&b, " %s |", msStr(te))
	}
	b.WriteString("\n|---|")
	for range t.BucketNs {
		b.WriteString("---:|")
	}
	b.WriteString("\n")
	for _, s := range t.Series {
		fmt.Fprintf(&b, "| %s |", s.Name)
		for _, v := range s.Values {
			fmt.Fprintf(&b, " %d |", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the timeline as long-form rows.
func (t *Timeline) CSV() string {
	var b strings.Builder
	b.WriteString("series,bucket_end_ns,value\n")
	for _, s := range t.Series {
		for i, v := range s.Values {
			fmt.Fprintf(&b, "%s,%d,%d\n", s.Name, t.BucketNs[i], v)
		}
	}
	return b.String()
}

// JSON renders the timeline as indented JSON.
func (t *Timeline) JSON() (string, error) {
	out, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

// ParseTimeline decodes a timeline produced by (*Timeline).JSON, validating
// the schema. It never panics on malformed input.
func ParseTimeline(data []byte) (*Timeline, error) {
	var t Timeline
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("critpath: parse timeline: %w", err)
	}
	if t.Schema != TimelineSchema {
		return nil, fmt.Errorf("critpath: parse timeline: schema %q, want %q", t.Schema, TimelineSchema)
	}
	return &t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
