package critpath

import "testing"

// BenchmarkCritPath measures the analyzer on a 4096-rank synthetic trace
// (the same generator the scale-bench gate times), so analysis cost at the
// kilo-rank tier stays visible and bounded.
func BenchmarkCritPath(b *testing.B) {
	tr := SyntheticTrace(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := Analyze(tr, 0)
		if rep.AttributedNs == 0 {
			b.Fatal("attributed nothing")
		}
	}
}

// BenchmarkTimeline measures the timeline builder on the same trace.
func BenchmarkTimeline(b *testing.B) {
	tr := SyntheticTrace(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl := BuildTimeline(tr, 3_400_000_000, 24)
		if len(tl.Series) == 0 {
			b.Fatal("no series")
		}
	}
}
