// Package critpath is a deterministic critical-path analyzer and run-timeline
// builder for the simulated cluster's event traces (internal/trace).
//
// Analyze walks the recorded trace *backwards* from the instant that bounds
// virtual wall time, following the blocking chain: whenever the rank on the
// path resumed because a traced point-to-point message arrived, the path jumps
// to the sender at the send instant; otherwise the interval back to the
// previous same-track breakpoint is attributed by the innermost span covering
// it. The result partitions [0, wall] into contiguous segments, so the
// attributed nanoseconds sum to the virtual wall time exactly — an invariant
// the chaos `critpath_consistency` oracle re-checks on every run.
//
// The analysis is post-hoc: it only reads the tracer, so enabling it cannot
// perturb virtual time, golden traces, or scale digests.
package critpath

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Category names one cause of time on the critical path.
type Category string

// The attribution categories (the terms of the paper's Eq. 1, plus the
// degraded-mode and service-mode extensions).
const (
	CatCompute    Category = "compute"            // emulated compute / uncovered run time
	CatShuffle    Category = "shuffle_comms"      // two-phase shuffle + collective waits
	CatRetransmit Category = "retransmit_stall"   // comms waits overlapping dropped-message windows
	CatLockWait   Category = "lock_wait"          // tenant admission / capacity stalls
	CatNVMWrite   Category = "nvm_cache_write"    // write phase absorbed by the NVM cache
	CatSyncFlush  Category = "sync_flush"         // non-hidden cache synchronisation
	CatPFSWrite   Category = "pfs_write"          // write phase / sync chunks hitting the PFS
	CatFailover   Category = "failover_recompute" // crash recovery + resilient-write re-epochs
	CatOther      Category = "other"              // covered, but by no attributable layer
)

// Categories lists every category in stable render order.
var Categories = []Category{
	CatCompute, CatShuffle, CatRetransmit, CatLockWait,
	CatNVMWrite, CatSyncFlush, CatPFSWrite, CatFailover, CatOther,
}

// dropGraceNs extends each dropped-message window: a receiver stalls past the
// drop instant until the sender's retransmit lands, which the reliable layer
// paces at 10ms doubling to an 80ms cap (mpi.DefaultBackoffCap). Two capped
// backoffs bound the common case.
const dropGraceNs = int64(160_000_000)

// Share is one category's total on the critical path.
type Share struct {
	Category Category `json:"category"`
	Ns       int64    `json:"ns"`
	Segments int      `json:"segments"`
}

// Segment is one contiguous attributed interval of the path.
type Segment struct {
	Track    string   `json:"track"`
	FromNs   int64    `json:"from_ns"`
	ToNs     int64    `json:"to_ns"`
	Category Category `json:"category"`
	Via      string   `json:"via,omitempty"` // innermost span name, or "p2p" for message edges
}

// Edge is one cross-rank message hop the path followed (sender at SendNs to
// receiver at RecvNs). ID is the trace async-span id, so every edge can be
// checked against the trace.
type Edge struct {
	ID     uint64 `json:"id"`
	From   string `json:"from"`
	To     string `json:"to"`
	SendNs int64  `json:"send_ns"`
	RecvNs int64  `json:"recv_ns"`
	Bytes  int64  `json:"bytes,omitempty"`
}

// Straggler ranks one track by its time on the critical path.
type Straggler struct {
	Track    string   `json:"track"`
	OnPathNs int64    `json:"on_path_ns"`
	Top      Category `json:"top_category"`
}

// WhatIf is one Eq.-1-style estimate: scale a category's on-path time and
// report the wall-time saving. It is a lower bound — shrinking the path can
// expose a different chain.
type WhatIf struct {
	Scenario        string   `json:"scenario"`
	Category        Category `json:"category"`
	FactorPct       int      `json:"factor_pct"` // 50 = 2x faster, 0 = eliminated
	SavedNs         int64    `json:"saved_ns"`
	NewWallNs       int64    `json:"new_wall_ns"`
	ReductionPctX10 int64    `json:"reduction_pct_x10"`
}

// ReportSchema identifies the critical-path report JSON format.
const ReportSchema = "e10critpath/v1"

// Report is one run's critical-path analysis.
type Report struct {
	Schema       string      `json:"schema"`
	WallNs       int64       `json:"wall_ns"`
	AttributedNs int64       `json:"attributed_ns"`
	StartTrack   string      `json:"start_track"`
	Shares       []Share     `json:"shares"`
	Segments     int         `json:"segments"`
	TopSegments  []Segment   `json:"top_segments,omitempty"`
	Edges        []Edge      `json:"edges,omitempty"`
	Stragglers   []Straggler `json:"stragglers,omitempty"`
	WhatIf       []WhatIf    `json:"what_if,omitempty"`
}

// spanRef is one span on a track, in analysis form.
type spanRef struct {
	start, end int64
	cat, name  string
	blocked    bool
	seq        int // append order, for deterministic tie-breaks
}

// pairRef is one completed p2p async pair.
type pairRef struct {
	id                   uint64
	beginTrack, endTrack trace.TrackID
	beginTs, endTs       int64
	bytes                int64
}

// trackData is the per-track index the backward walk consults.
type trackData struct {
	spans      []spanRef // sorted by (end, seq)
	breaks     []int64   // sorted unique breakpoints (span starts/ends, pair ends)
	pairs      []pairRef // delivered pairs ending here, sorted by (endTs, id)
	blockedEnd []int64   // sorted end times of blocked spans
	stallTs    map[int64]bool
	failTs     []int64 // sorted failover_epoch instant times
	cacheWrite bool
	maxEnd     int64
}

type analysis struct {
	tr     *trace.Tracer
	tracks map[trace.TrackID]*trackData
	drops  []int64 // merged drop windows, flattened [s0,e0,s1,e1,...]
}

func (a *analysis) track(id trace.TrackID) *trackData {
	td := a.tracks[id]
	if td == nil {
		td = &trackData{}
		a.tracks[id] = td
	}
	return td
}

// rankOf parses the rank index out of a "rank %d" track name, or -1.
func rankOf(name string) int {
	var r int
	if n, err := fmt.Sscanf(name, "rank %d", &r); n == 1 && err == nil {
		return r
	}
	return -1
}

// build indexes the trace once.
func build(tr *trace.Tracer) *analysis {
	a := &analysis{tr: tr, tracks: make(map[trace.TrackID]*trackData)}
	type openPair struct {
		track trace.TrackID
		ts    int64
		bytes int64
		dst   int64
	}
	open := make(map[uint64]openPair)
	var dropIv [][2]int64
	for i, ev := range tr.Events() {
		switch ev.Kind {
		case trace.KindSpan:
			td := a.track(ev.Track)
			end := ev.Start + ev.Dur
			blocked := ev.Cat == "sim" && ev.Name == "blocked"
			td.spans = append(td.spans, spanRef{start: ev.Start, end: end, cat: ev.Cat, name: ev.Name, blocked: blocked, seq: i})
			if blocked {
				td.blockedEnd = append(td.blockedEnd, end)
			}
			if end > td.maxEnd {
				td.maxEnd = end
			}
		case trace.KindInstant:
			td := a.track(ev.Track)
			switch {
			case ev.Cat == "cache" && ev.Name == "cache_write":
				td.cacheWrite = true
			case ev.Cat == "adio" && ev.Name == "failover_epoch":
				td.failTs = append(td.failTs, ev.Start)
			case ev.Cat == "tenant" && (ev.Name == "tenant_stall" || ev.Name == "tenant_admit_queued"):
				if td.stallTs == nil {
					td.stallTs = make(map[int64]bool)
				}
				td.stallTs[ev.Start] = true
			}
			if ev.Start > td.maxEnd {
				td.maxEnd = ev.Start
			}
		case trace.KindAsyncBegin:
			if ev.Cat == "mpi" && ev.Name == "p2p" {
				op := openPair{track: ev.Track, ts: ev.Start, dst: -1}
				for j := uint8(0); j < ev.NArgs; j++ {
					switch ev.Args[j].Key {
					case "bytes":
						op.bytes = ev.Args[j].Val
					case "dst":
						op.dst = ev.Args[j].Val
					}
				}
				open[ev.ID] = op
			}
		case trace.KindAsyncEnd:
			if ev.Cat != "mpi" || ev.Name != "p2p" {
				break
			}
			b, ok := open[ev.ID]
			if !ok {
				break
			}
			delete(open, ev.ID)
			pr := pairRef{id: ev.ID, beginTrack: b.track, endTrack: ev.Track, beginTs: b.ts, endTs: ev.Start, bytes: b.bytes}
			if pr.beginTrack == pr.endTrack {
				// Same-track end: either a self-delivery (dst == own rank) or
				// the sender-side drop point of a lost/partitioned message.
				if int(b.dst) != rankOf(tr.TrackName(pr.beginTrack)) {
					dropIv = append(dropIv, [2]int64{pr.beginTs, pr.endTs + dropGraceNs})
					break
				}
			}
			td := a.track(pr.endTrack)
			td.pairs = append(td.pairs, pr)
		}
	}
	for _, td := range a.tracks {
		sort.Slice(td.spans, func(i, j int) bool {
			if td.spans[i].end != td.spans[j].end {
				return td.spans[i].end < td.spans[j].end
			}
			return td.spans[i].seq < td.spans[j].seq
		})
		sort.Slice(td.pairs, func(i, j int) bool {
			if td.pairs[i].endTs != td.pairs[j].endTs {
				return td.pairs[i].endTs < td.pairs[j].endTs
			}
			return td.pairs[i].id < td.pairs[j].id
		})
		sort.Slice(td.blockedEnd, func(i, j int) bool { return td.blockedEnd[i] < td.blockedEnd[j] })
		sort.Slice(td.failTs, func(i, j int) bool { return td.failTs[i] < td.failTs[j] })
		bset := make(map[int64]bool)
		for _, s := range td.spans {
			bset[s.start] = true
			bset[s.end] = true
		}
		for _, p := range td.pairs {
			bset[p.endTs] = true
		}
		td.breaks = td.breaks[:0]
		for b := range bset {
			td.breaks = append(td.breaks, b)
		}
		sort.Slice(td.breaks, func(i, j int) bool { return td.breaks[i] < td.breaks[j] })
	}
	// Merge the drop windows into a flat sorted interval union.
	sort.Slice(dropIv, func(i, j int) bool { return dropIv[i][0] < dropIv[j][0] })
	for _, iv := range dropIv {
		n := len(a.drops)
		if n > 0 && iv[0] <= a.drops[n-1] {
			if iv[1] > a.drops[n-1] {
				a.drops[n-1] = iv[1]
			}
			continue
		}
		a.drops = append(a.drops, iv[0], iv[1])
	}
	return a
}

// overlapsDrop reports whether (u, t] intersects the drop-window union.
func (a *analysis) overlapsDrop(u, t int64) bool {
	// a.drops is [s0,e0,s1,e1,...]; find the first interval with end > u.
	i := sort.Search(len(a.drops)/2, func(k int) bool { return a.drops[2*k+1] > u })
	return 2*i < len(a.drops) && a.drops[2*i] < t
}

// prevBreak returns the largest breakpoint < t on the track, or 0.
func (td *trackData) prevBreak(t int64) int64 {
	i := sort.Search(len(td.breaks), func(k int) bool { return td.breaks[k] >= t })
	if i == 0 {
		return 0
	}
	b := td.breaks[i-1]
	if b < 0 {
		return 0
	}
	return b
}

// pairEndingAt returns the delivered pair ending exactly at t on the track
// (latest id on ties), or nil.
func (td *trackData) pairEndingAt(t int64) *pairRef {
	i := sort.Search(len(td.pairs), func(k int) bool { return td.pairs[k].endTs > t })
	if i == 0 || td.pairs[i-1].endTs != t {
		return nil
	}
	return &td.pairs[i-1]
}

// blockedEndsAt reports whether a blocked span ends exactly at t.
func (td *trackData) blockedEndsAt(t int64) bool {
	i := sort.Search(len(td.blockedEnd), func(k int) bool { return td.blockedEnd[k] >= t })
	return i < len(td.blockedEnd) && td.blockedEnd[i] == t
}

// failoverIn reports whether a failover_epoch instant falls in (u, t].
func (td *trackData) failoverIn(u, t int64) bool {
	i := sort.Search(len(td.failTs), func(k int) bool { return td.failTs[k] > u })
	return i < len(td.failTs) && td.failTs[i] <= t
}

// mapSpan maps one covering span to a category.
func (td *trackData) mapSpan(s *spanRef) Category {
	switch s.cat {
	case "phase":
		switch s.name {
		case "calc_offsets", "shuffle_all2all", "exchange_waitall", "post_write":
			return CatShuffle
		case "pack":
			return CatCompute
		case "write":
			if td.cacheWrite {
				return CatNVMWrite
			}
			return CatPFSWrite
		case "not_hidden_sync":
			return CatSyncFlush
		}
		return CatOther
	case "mpi":
		return CatShuffle
	case "cache":
		switch s.name {
		case "not_hidden_sync", "sync_extent":
			return CatSyncFlush
		case "sync_chunk":
			return CatPFSWrite
		case "recovery":
			return CatFailover
		}
		return CatOther
	}
	return CatOther
}

// classify attributes the interval (u, t] on one track.
func (a *analysis) classify(td *trackData, u, t int64) (Category, string) {
	if td.failoverIn(u, t) {
		return CatFailover, "failover_epoch"
	}
	var blocked *spanRef
	var inner *spanRef // innermost non-blocked cover with a non-other mapping
	var innerAny *spanRef
	cat := CatOther
	for i := range td.spans {
		s := &td.spans[i]
		if s.start > u || s.end < t {
			continue
		}
		if s.blocked {
			if blocked == nil || s.start > blocked.start {
				blocked = s
			}
			continue
		}
		if innerAny == nil || s.start > innerAny.start ||
			(s.start == innerAny.start && (s.end < innerAny.end || (s.end == innerAny.end && s.seq > innerAny.seq))) {
			innerAny = s
		}
		if c := td.mapSpan(s); c != CatOther {
			if inner == nil || s.start > inner.start ||
				(s.start == inner.start && (s.end < inner.end || (s.end == inner.end && s.seq > inner.seq))) {
				inner = s
				cat = c
			}
		}
	}
	if blocked != nil && td.stallTs[blocked.start] {
		return CatLockWait, "tenant_stall"
	}
	if inner != nil {
		if cat == CatShuffle && blocked != nil && a.overlapsDrop(u, t) {
			return CatRetransmit, inner.name
		}
		return cat, inner.name
	}
	if innerAny != nil {
		return CatOther, innerAny.name
	}
	// Nothing covers the interval: the rank was running (or sleeping through
	// an emulated compute phase) outside any instrumented layer.
	return CatCompute, ""
}

// Analyze computes the critical-path report for a recorded trace. wallNs is
// the run's virtual wall time; the attributed span is max(wallNs, last event
// end), so on an honest trace AttributedNs == wallNs exactly.
func Analyze(tr *trace.Tracer, wallNs int64) *Report {
	rep := &Report{Schema: ReportSchema, WallNs: wallNs}
	a := build(tr)

	// T0 bounds the run; pick the start track holding the bounding event,
	// preferring rank tracks.
	t0 := wallNs
	start := trace.NoTrack
	var rankMax, anyMax int64 = -1, -1
	var rankTk, anyTk trace.TrackID = trace.NoTrack, trace.NoTrack
	ids := make([]trace.TrackID, 0, len(a.tracks))
	for id := range a.tracks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		td := a.tracks[id]
		if td.maxEnd > anyMax {
			anyMax, anyTk = td.maxEnd, id
		}
		if tr.TrackGroup(id) == trace.GroupRanks && td.maxEnd > rankMax {
			rankMax, rankTk = td.maxEnd, id
		}
	}
	if anyMax > t0 {
		t0 = anyMax
	}
	switch {
	case rankTk != trace.NoTrack && (rankMax >= t0 || anyTk == trace.NoTrack):
		start = rankTk
	case anyTk != trace.NoTrack && anyMax >= t0:
		start = anyTk
	case rankTk != trace.NoTrack:
		start = rankTk
	default:
		start = anyTk
	}
	rep.AttributedNs = t0
	rep.StartTrack = tr.TrackName(start)

	shares := make(map[Category]*Share)
	perTrack := make(map[trace.TrackID]map[Category]int64)
	var segs []Segment
	addSeg := func(tk trace.TrackID, from, to int64, cat Category, via string) {
		if to <= from {
			return
		}
		sh := shares[cat]
		if sh == nil {
			sh = &Share{Category: cat}
			shares[cat] = sh
		}
		sh.Ns += to - from
		sh.Segments++
		pt := perTrack[tk]
		if pt == nil {
			pt = make(map[Category]int64)
			perTrack[tk] = pt
		}
		pt[cat] += to - from
		segs = append(segs, Segment{Track: tr.TrackName(tk), FromNs: from, ToNs: to, Category: cat, Via: via})
	}

	cur, t := start, t0
	for t > 0 && cur != trace.NoTrack {
		td := a.track(cur)
		if p := td.pairEndingAt(t); p != nil && p.beginTs < t && td.blockedEndsAt(t) && p.beginTrack != p.endTrack {
			cat := CatShuffle
			if a.overlapsDrop(p.beginTs, t) {
				cat = CatRetransmit
			}
			addSeg(cur, p.beginTs, t, cat, "p2p")
			rep.Edges = append(rep.Edges, Edge{
				ID: p.id, From: tr.TrackName(p.beginTrack), To: tr.TrackName(p.endTrack),
				SendNs: p.beginTs, RecvNs: t, Bytes: p.bytes,
			})
			cur, t = p.beginTrack, p.beginTs
			continue
		}
		u := td.prevBreak(t)
		cat, via := a.classify(td, u, t)
		addSeg(cur, u, t, cat, via)
		t = u
	}
	if t > 0 {
		// Empty trace: attribute everything to compute on a nameless track.
		addSeg(trace.NoTrack, 0, t, CatCompute, "")
	}

	rep.Segments = len(segs)
	for _, c := range Categories {
		if sh := shares[c]; sh != nil {
			rep.Shares = append(rep.Shares, *sh)
		}
	}
	// Top segments by length (tie: earlier FromNs first), capped.
	top := append([]Segment(nil), segs...)
	sort.Slice(top, func(i, j int) bool {
		di, dj := top[i].ToNs-top[i].FromNs, top[j].ToNs-top[j].FromNs
		if di != dj {
			return di > dj
		}
		return top[i].FromNs < top[j].FromNs
	})
	if len(top) > 16 {
		top = top[:16]
	}
	rep.TopSegments = top
	// Straggler ranking over rank tracks on the path.
	for _, id := range ids {
		if tr.TrackGroup(id) != trace.GroupRanks {
			continue
		}
		pt := perTrack[id]
		if pt == nil {
			continue
		}
		var total, best int64
		topCat := CatOther
		for _, c := range Categories {
			total += pt[c]
			if pt[c] > best {
				best, topCat = pt[c], c
			}
		}
		rep.Stragglers = append(rep.Stragglers, Straggler{Track: tr.TrackName(id), OnPathNs: total, Top: topCat})
	}
	sort.SliceStable(rep.Stragglers, func(i, j int) bool { return rep.Stragglers[i].OnPathNs > rep.Stragglers[j].OnPathNs })
	if len(rep.Stragglers) > 8 {
		rep.Stragglers = rep.Stragglers[:8]
	}
	rep.WhatIf = whatIf(rep)
	return rep
}

// whatIf builds the Eq.-1-style estimates from the computed shares.
func whatIf(rep *Report) []WhatIf {
	get := func(c Category) int64 {
		for _, sh := range rep.Shares {
			if sh.Category == c {
				return sh.Ns
			}
		}
		return 0
	}
	mk := func(scenario string, c Category, factorPct int) (WhatIf, bool) {
		ns := get(c)
		if ns == 0 || rep.AttributedNs == 0 {
			return WhatIf{}, false
		}
		saved := ns - ns*int64(factorPct)/100
		return WhatIf{
			Scenario: scenario, Category: c, FactorPct: factorPct,
			SavedNs: saved, NewWallNs: rep.AttributedNs - saved,
			ReductionPctX10: saved * 1000 / rep.AttributedNs,
		}, true
	}
	var out []WhatIf
	for _, w := range []struct {
		scenario string
		cat      Category
		pct      int
	}{
		{"nvm_sync_2x_faster", CatSyncFlush, 50},
		{"shuffle_msgs_halved", CatShuffle, 50},
		{"nvm_write_2x_faster", CatNVMWrite, 50},
		{"pfs_write_2x_faster", CatPFSWrite, 50},
		{"no_retransmits", CatRetransmit, 0},
		{"no_lock_waits", CatLockWait, 0},
	} {
		if wi, ok := mk(w.scenario, w.cat, w.pct); ok {
			out = append(out, wi)
		}
	}
	return out
}
