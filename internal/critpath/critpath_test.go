package critpath

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

const ms = int64(1_000_000)

func shareNs(rep *Report, c Category) int64 {
	for _, sh := range rep.Shares {
		if sh.Category == c {
			return sh.Ns
		}
	}
	return 0
}

func sumShares(rep *Report) int64 {
	var total int64
	for _, sh := range rep.Shares {
		total += sh.Ns
	}
	return total
}

// verifyEdges checks every reported edge against the trace — the same
// invariant the chaos critpath_consistency oracle enforces.
func verifyEdges(t *testing.T, tr *trace.Tracer, rep *Report) {
	t.Helper()
	for _, e := range rep.Edges {
		var haveBegin, haveEnd bool
		for _, ev := range tr.Events() {
			if ev.ID != e.ID {
				continue
			}
			switch ev.Kind {
			case trace.KindAsyncBegin:
				haveBegin = ev.Start == e.SendNs && tr.TrackName(ev.Track) == e.From
			case trace.KindAsyncEnd:
				haveEnd = ev.Start == e.RecvNs && tr.TrackName(ev.Track) == e.To
			}
		}
		if !haveBegin || !haveEnd {
			t.Errorf("edge %+v not backed by trace (begin=%v end=%v)", e, haveBegin, haveEnd)
		}
	}
}

func TestAnalyzeJumpAndSum(t *testing.T) {
	tr := trace.New()
	tk0 := tr.Track(trace.GroupRanks, "rank 0")
	tk1 := tr.Track(trace.GroupRanks, "rank 1")
	tr.SpanAt(tk0, "phase", "pack", 0, 20)
	id := tr.AsyncBegin(tk0, "mpi", "p2p", 20, trace.I("dst", 1), trace.I("bytes", 1024))
	tr.SpanAt(tk1, "phase", "shuffle_all2all", 5, 60)
	tr.SpanAt(tk1, "sim", "blocked", 10, 50)
	tr.AsyncEnd(tk1, "mpi", "p2p", id, 50)
	tr.SpanAt(tk1, "phase", "write", 60, 100)

	rep := Analyze(tr, 100)
	if rep.AttributedNs != 100 {
		t.Fatalf("AttributedNs = %d, want 100", rep.AttributedNs)
	}
	if got := sumShares(rep); got != rep.AttributedNs {
		t.Fatalf("shares sum to %d, want %d", got, rep.AttributedNs)
	}
	if rep.StartTrack != "rank 1" {
		t.Fatalf("StartTrack = %q, want rank 1", rep.StartTrack)
	}
	if len(rep.Edges) != 1 {
		t.Fatalf("edges = %+v, want one", rep.Edges)
	}
	e := rep.Edges[0]
	if e.From != "rank 0" || e.To != "rank 1" || e.SendNs != 20 || e.RecvNs != 50 || e.Bytes != 1024 {
		t.Fatalf("edge = %+v", e)
	}
	verifyEdges(t, tr, rep)
	// (60,100] write without cache_write -> pfs; (50,60] + jump (20,50] ->
	// shuffle; (0,20] pack on rank 0 -> compute.
	if got := shareNs(rep, CatPFSWrite); got != 40 {
		t.Errorf("pfs_write = %d, want 40", got)
	}
	if got := shareNs(rep, CatShuffle); got != 40 {
		t.Errorf("shuffle_comms = %d, want 40", got)
	}
	if got := shareNs(rep, CatCompute); got != 20 {
		t.Errorf("compute = %d, want 20", got)
	}
}

func TestAnalyzeCategories(t *testing.T) {
	tr := trace.New()
	tk := tr.Track(trace.GroupRanks, "rank 0")
	tr.Instant(tk, "tenant", "tenant_stall", 10)
	tr.SpanAt(tk, "sim", "blocked", 10, 30)
	tr.Instant(tk, "cache", "cache_write", 35)
	tr.SpanAt(tk, "phase", "write", 0, 40)
	tr.SpanAt(tk, "cache", "not_hidden_sync", 40, 60)
	tr.Instant(tk, "adio", "failover_epoch", 65)
	tr.SpanAt(tk, "phase", "close", 60, 70)

	rep := Analyze(tr, 80)
	if got := sumShares(rep); got != 80 || rep.AttributedNs != 80 {
		t.Fatalf("sum=%d attributed=%d, want 80", got, rep.AttributedNs)
	}
	want := map[Category]int64{
		CatCompute:   10, // (70,80] uncovered
		CatFailover:  10, // (60,70] failover_epoch instant
		CatSyncFlush: 20,
		CatLockWait:  20, // blocked with tenant_stall at its start
		CatNVMWrite:  20, // write phase on a cache_write track
	}
	for c, ns := range want {
		if got := shareNs(rep, c); got != ns {
			t.Errorf("%s = %d, want %d", c, got, ns)
		}
	}
}

func TestAnalyzeRetransmitStall(t *testing.T) {
	tr := trace.New()
	tk0 := tr.Track(trace.GroupRanks, "rank 0")
	tk1 := tr.Track(trace.GroupRanks, "rank 1")
	// A dropped message: the pair ends back on the sender's own track.
	id := tr.AsyncBegin(tk0, "mpi", "p2p", 10*ms, trace.I("dst", 1))
	tr.AsyncEnd(tk0, "mpi", "p2p", id, 20*ms)
	tr.SpanAt(tk1, "sim", "blocked", 30*ms, 90*ms)
	tr.SpanAt(tk1, "phase", "exchange_waitall", 25*ms, 100*ms)

	rep := Analyze(tr, 100*ms)
	if got := sumShares(rep); got != 100*ms {
		t.Fatalf("shares sum to %d, want %d", got, 100*ms)
	}
	if got := shareNs(rep, CatRetransmit); got != 60*ms {
		t.Errorf("retransmit_stall = %d, want %d", got, 60*ms)
	}
	if got := shareNs(rep, CatShuffle); got != 15*ms {
		t.Errorf("shuffle_comms = %d, want %d", got, 15*ms)
	}
}

func TestAnalyzeSelfSendIsNotADrop(t *testing.T) {
	tr := trace.New()
	tk0 := tr.Track(trace.GroupRanks, "rank 0")
	id := tr.AsyncBegin(tk0, "mpi", "p2p", 10, trace.I("dst", 0))
	tr.AsyncEnd(tk0, "mpi", "p2p", id, 20)
	tr.SpanAt(tk0, "sim", "blocked", 12, 30)
	tr.SpanAt(tk0, "phase", "exchange_waitall", 5, 40)
	rep := Analyze(tr, 40)
	if got := shareNs(rep, CatRetransmit); got != 0 {
		t.Errorf("self-send produced retransmit_stall = %d, want 0", got)
	}
	if got := sumShares(rep); got != 40 {
		t.Fatalf("shares sum to %d, want 40", got)
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	rep := Analyze(trace.New(), 100)
	if rep.AttributedNs != 100 || sumShares(rep) != 100 {
		t.Fatalf("empty trace: attributed=%d sum=%d, want 100", rep.AttributedNs, sumShares(rep))
	}
	if got := shareNs(rep, CatCompute); got != 100 {
		t.Fatalf("empty trace compute = %d, want 100", got)
	}
}

func TestAnalyzeSyntheticInvariants(t *testing.T) {
	tr := SyntheticTrace(128)
	rep := Analyze(tr, 0)
	if rep.AttributedNs == 0 {
		t.Fatal("attributed nothing")
	}
	if got := sumShares(rep); got != rep.AttributedNs {
		t.Fatalf("shares sum to %d, want %d", got, rep.AttributedNs)
	}
	if len(rep.Edges) == 0 {
		t.Error("expected message edges on the synthetic path")
	}
	verifyEdges(t, tr, rep)
	if len(rep.Stragglers) == 0 || len(rep.Stragglers) > 8 {
		t.Errorf("stragglers = %d, want 1..8", len(rep.Stragglers))
	}
	if len(rep.WhatIf) == 0 {
		t.Error("expected what-if rows")
	}
	for _, w := range rep.WhatIf {
		if w.SavedNs+w.NewWallNs != rep.AttributedNs {
			t.Errorf("what-if %s: saved %d + new %d != %d", w.Scenario, w.SavedNs, w.NewWallNs, rep.AttributedNs)
		}
	}
}

func TestAnalyzeDeterminismAndRoundTrip(t *testing.T) {
	r1 := Analyze(SyntheticTrace(64), 0)
	r2 := Analyze(SyntheticTrace(64), 0)
	j1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := r2.JSON()
	if j1 != j2 {
		t.Fatal("two analyses of the same trace differ")
	}
	if r1.Markdown() != r2.Markdown() || r1.CSV() != r2.CSV() {
		t.Fatal("rendered reports differ")
	}
	back, err := ParseReport([]byte(j1))
	if err != nil {
		t.Fatal(err)
	}
	j3, _ := back.JSON()
	if j3 != j1 {
		t.Fatal("JSON round trip is not identity")
	}
	if _, err := ParseReport([]byte(`{"schema":"nope"}`)); err == nil {
		t.Error("bad schema accepted")
	}
	if _, err := ParseReport([]byte(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestTimeline(t *testing.T) {
	tr := trace.New()
	tk0 := tr.Track(trace.GroupRanks, "rank 0")
	tk1 := tr.Track(trace.GroupRanks, "rank 1")
	tr.Counter(tk0, "q", 10, 5)
	tr.Counter(tk1, "q", 30, 7)
	tr.Counter(tk0, "q", 60, 2)
	id := tr.AsyncBegin(tk0, "mpi", "p2p", 20, trace.I("dst", 1))
	tr.AsyncEnd(tk1, "mpi", "p2p", id, 70)
	tr.SpanAt(tk1, "mpi", "allreduce", 40, 80)
	tr.Instant(tk0, "tenant", "tenant_stall", 55)

	tl := BuildTimeline(tr, 100, 4)
	if len(tl.BucketNs) != 4 || tl.BucketNs[3] != 100 {
		t.Fatalf("buckets = %v", tl.BucketNs)
	}
	get := func(name string) []int64 {
		for _, s := range tl.Series {
			if s.Name == name {
				return s.Values
			}
		}
		t.Fatalf("series %q missing (have %+v)", name, tl.Series)
		return nil
	}
	wantQ := []int64{5, 12, 9, 9} // carry-forward, summed across tracks
	for i, v := range get("q") {
		if v != wantQ[i] {
			t.Errorf("q[%d] = %d, want %d", i, v, wantQ[i])
		}
	}
	wantP2P := []int64{1, 1, 0, 0} // in flight 20..70 covers bucket ends 25, 50
	for i, v := range get("p2p_inflight") {
		if v != wantP2P[i] {
			t.Errorf("p2p_inflight[%d] = %d, want %d", i, v, wantP2P[i])
		}
	}
	wantColl := []int64{0, 1, 1, 0} // allreduce 40..80 covers ends 50, 75
	for i, v := range get("colls_inflight") {
		if v != wantColl[i] {
			t.Errorf("colls_inflight[%d] = %d, want %d", i, v, wantColl[i])
		}
	}
	wantTen := []int64{0, 0, 1, 0}
	for i, v := range get("tenant_events") {
		if v != wantTen[i] {
			t.Errorf("tenant_events[%d] = %d, want %d", i, v, wantTen[i])
		}
	}

	j1, err := tl.JSON()
	if err != nil {
		t.Fatal(err)
	}
	tl2 := BuildTimeline(tr, 100, 4)
	j2, _ := tl2.JSON()
	if j1 != j2 {
		t.Fatal("timeline not deterministic")
	}
	back, err := ParseTimeline([]byte(j1))
	if err != nil {
		t.Fatal(err)
	}
	j3, _ := back.JSON()
	if j3 != j1 {
		t.Fatal("timeline JSON round trip is not identity")
	}
	if !strings.Contains(tl.Markdown(), "run timeline") || !strings.Contains(tl.CSV(), "p2p_inflight") {
		t.Error("timeline renderings incomplete")
	}
	if _, err := ParseTimeline([]byte(`{"schema":"nope"}`)); err == nil {
		t.Error("bad timeline schema accepted")
	}
}
