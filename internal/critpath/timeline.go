package critpath

import (
	"sort"

	"repro/internal/trace"
)

// TimelineSchema identifies the run-timeline JSON format.
const TimelineSchema = "e10timeline/v1"

// Series is one named time series sampled at every bucket end.
type Series struct {
	Name   string  `json:"name"`
	Values []int64 `json:"values"`
}

// Timeline is a compact interval-sampled view of one run: every counter the
// trace recorded (cache occupancy, queue depths, dirty bytes, per-tenant
// quota pressure) summed across tracks and carried forward to each bucket
// end, plus derived in-flight series. Like the critical path it is built
// post-hoc from the trace, so it can never perturb virtual time.
type Timeline struct {
	Schema   string   `json:"schema"`
	WallNs   int64    `json:"wall_ns"`
	Buckets  int      `json:"buckets"`
	BucketNs []int64  `json:"bucket_ns"` // bucket end times
	Series   []Series `json:"series"`
}

// DefaultTimelineBuckets is the bucket count CLIs use for `-timeline` when
// the user does not pick one.
const DefaultTimelineBuckets = 24

// BuildTimeline samples the trace into the given number of buckets.
func BuildTimeline(tr *trace.Tracer, wallNs int64, buckets int) *Timeline {
	if buckets <= 0 {
		buckets = DefaultTimelineBuckets
	}
	tl := &Timeline{Schema: TimelineSchema, WallNs: wallNs, Buckets: buckets}
	tl.BucketNs = make([]int64, buckets)
	for b := 0; b < buckets; b++ {
		tl.BucketNs[b] = wallNs * int64(b+1) / int64(buckets)
	}

	type sample struct {
		ts, val int64
	}
	type ckey struct {
		track trace.TrackID
		name  string
	}
	counters := make(map[ckey][]sample)
	type flight struct {
		start, end int64
	}
	var pairs, colls []flight
	openP := make(map[uint64]int64)
	tenant := make([]int64, 0, 16)
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case trace.KindCounter:
			k := ckey{track: ev.Track, name: ev.Name}
			counters[k] = append(counters[k], sample{ts: ev.Start, val: ev.Value})
		case trace.KindSpan:
			if ev.Cat == "mpi" {
				colls = append(colls, flight{start: ev.Start, end: ev.Start + ev.Dur})
			}
		case trace.KindAsyncBegin:
			if ev.Cat == "mpi" && ev.Name == "p2p" {
				openP[ev.ID] = ev.Start
			}
		case trace.KindAsyncEnd:
			if ev.Cat == "mpi" && ev.Name == "p2p" {
				if s, ok := openP[ev.ID]; ok {
					delete(openP, ev.ID)
					pairs = append(pairs, flight{start: s, end: ev.Start})
				}
			}
		case trace.KindInstant:
			if ev.Cat == "tenant" {
				tenant = append(tenant, ev.Start)
			}
		}
	}

	// Counters: per name, sum the carried-forward last sample of every track.
	agg := make(map[string][]int64)
	for k, samples := range counters {
		vals := agg[k.name]
		if vals == nil {
			vals = make([]int64, buckets)
			agg[k.name] = vals
		}
		sort.SliceStable(samples, func(i, j int) bool { return samples[i].ts < samples[j].ts })
		i := 0
		var last int64
		for b := 0; b < buckets; b++ {
			for i < len(samples) && samples[i].ts <= tl.BucketNs[b] {
				last = samples[i].val
				i++
			}
			vals[b] += last
		}
	}
	names := make([]string, 0, len(agg))
	for n := range agg {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		tl.Series = append(tl.Series, Series{Name: n, Values: agg[n]})
	}

	inflight := func(fs []flight) []int64 {
		vals := make([]int64, buckets)
		for _, f := range fs {
			for b := 0; b < buckets; b++ {
				te := tl.BucketNs[b]
				if f.start <= te && te < f.end {
					vals[b]++
				}
			}
		}
		return vals
	}
	perBucket := func(ts []int64) []int64 {
		vals := make([]int64, buckets)
		for _, t := range ts {
			for b := 0; b < buckets; b++ {
				lo := int64(0)
				if b > 0 {
					lo = tl.BucketNs[b-1]
				}
				if lo < t && t <= tl.BucketNs[b] || (b == 0 && t == 0) {
					vals[b]++
					break
				}
			}
		}
		return vals
	}
	tl.Series = append(tl.Series,
		Series{Name: "colls_inflight", Values: inflight(colls)},
		Series{Name: "p2p_inflight", Values: inflight(pairs)},
		Series{Name: "tenant_events", Values: perBucket(tenant)},
	)
	sort.SliceStable(tl.Series, func(i, j int) bool { return tl.Series[i].Name < tl.Series[j].Name })
	return tl
}
