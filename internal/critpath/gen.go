package critpath

import (
	"fmt"

	"repro/internal/trace"
)

// SyntheticTrace builds a deterministic kilo-rank trace shaped like a real
// two-file collective write (open, offset exchange, shuffle with p2p pairs
// and blocked waits, pack, cache/PFS write, deferred sync), without running
// the simulator. It backs BenchmarkCritPath and the scale-bench analyzer
// throughput gate, so analysis cost is measured on a trace whose size and
// structure track the 4096-rank scale runs.
func SyntheticTrace(ranks int) *trace.Tracer {
	const (
		ms = int64(1_000_000)
		us = int64(1_000)
	)
	tr := trace.New()
	tks := make([]trace.TrackID, ranks)
	for r := 0; r < ranks; r++ {
		tks[r] = tr.Track(trace.GroupRanks, fmt.Sprintf("rank %d", r))
	}
	for r := 0; r < ranks; r++ {
		tk := tks[r]
		tr.SpanAt(tk, "phase", "open", 0, 2*ms)
		for k := 0; k < 2; k++ {
			ps := 2*ms + int64(k)*600*ms
			tr.SpanAt(tk, "phase", "calc_offsets", ps, ps+2*ms)
			// Shuffle: every rank sends one message to its right neighbour and
			// blocks until the left neighbour's message lands.
			send := ps + 3*ms + int64(r%7)*100*us
			deliver := ps + 20*ms + int64(r%5)*100*us
			id := tr.AsyncBegin(tk, "mpi", "p2p", send,
				trace.I("dst", int64((r+1)%ranks)), trace.I("bytes", 64<<10))
			tr.AsyncEnd(tks[(r+1)%ranks], "mpi", "p2p", id, deliver)
			left := (r - 1 + ranks) % ranks
			arrives := ps + 20*ms + int64(left%5)*100*us
			tr.SpanAt(tk, "sim", "blocked", ps+5*ms, arrives)
			tr.SpanAt(tk, "phase", "shuffle_all2all", ps+2*ms, ps+40*ms)
			if r%97 == 3 {
				// A dropped message: the async pair ends on the sender track.
				did := tr.AsyncBegin(tk, "mpi", "p2p", ps+4*ms,
					trace.I("dst", int64((r+2)%ranks)), trace.I("bytes", 64<<10))
				tr.AsyncEnd(tk, "mpi", "p2p", did, ps+6*ms)
			}
			tr.SpanAt(tk, "sim", "blocked", ps+41*ms, ps+44*ms)
			tr.SpanAt(tk, "phase", "exchange_waitall", ps+40*ms, ps+45*ms)
			tr.SpanAt(tk, "phase", "pack", ps+45*ms, ps+47*ms)
			if r%2 == 0 {
				tr.Instant(tk, "cache", "cache_write", ps+50*ms, trace.I("bytes", 1<<20))
			}
			tr.Counter(tk, "queue", ps+50*ms, int64(r%3))
			tr.Counter(tk, "queue", ps+70*ms, 0)
			tr.SpanAt(tk, "phase", "write", ps+47*ms, ps+75*ms)
		}
		syncEnd := 1250*ms + 30*ms + int64(r%11)*ms
		tr.SpanAt(tk, "sim", "blocked", 1252*ms, syncEnd)
		tr.SpanAt(tk, "phase", "not_hidden_sync", 1250*ms, syncEnd)
	}
	return tr
}
