// Package core implements the paper's contribution: the E10 persistent
// cache layer for collective writes in ROMIO, controlled by the MPI-IO hint
// extensions of Table II. Aggregators write their file domains to a cache
// file on the node-local NVM device; a per-file sync thread
// (ADIOI_Sync_thread_start) drains the cache to the global parallel file
// system in ind_wr_buffer_size chunks in the background, so that cache
// synchronisation overlaps the application's next compute phase. MPI-IO
// consistency semantics (§III-B) are preserved: data becomes globally
// visible after the immediate-flush sync completes, after MPI_File_close,
// or after MPI_File_sync; the coherent mode additionally write-locks
// in-transit extents.
package core

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Hint keys from Table II of the paper.
const (
	HintCache       = "e10_cache"
	HintCachePath   = "e10_cache_path"
	HintFlushFlag   = "e10_cache_flush_flag"
	HintDiscardFlag = "e10_cache_discard_flag"
	// ind_wr_buffer_size (Table II's last row) is parsed by package adio,
	// since it predates the extensions; the cache layer reads it from the
	// normalized adio hint set.

	// HintCacheRead enables serving reads of locally cached extents from
	// the SSD. This implements the first item of the paper's future work
	// (§VI: "we plan to support cache reading operations"); it is NOT part
	// of the published hint set and defaults to disable.
	HintCacheRead = "e10_cache_read"

	// HintCacheRecovery enables crash recovery: when a retained cache file
	// from a previous (crashed) session exists at open, its unsynced
	// extents are replayed to the global file before new writes start.
	// This exercises the paper's persistence argument (§III: cached data
	// survives node failures and "can be synchronized at a later stage").
	// Defaults to disable.
	HintCacheRecovery = "e10_cache_recovery"

	// HintSyncRetryLimit bounds how many times the sync thread retries a
	// failed global-file chunk write (exponential backoff between
	// attempts) before completing the request with an error.
	HintSyncRetryLimit = "e10_sync_retry_limit"

	// HintSyncRetryBackoff is the initial retry backoff (a Go duration
	// string such as "10ms"); it doubles after every failed attempt.
	HintSyncRetryBackoff = "e10_sync_retry_backoff"
)

// Multi-tenant service-mode hints. None of these appear in the paper (it
// evaluates one application owning the whole scratch partition); they model
// a production burst buffer serving several jobs at once. All are inert
// unless e10_tenant is set, which keeps single-tenant runs byte-identical.
const (
	// HintTenant names the tenant (job) this session belongs to. Setting it
	// activates per-tenant capacity accounting on the NVM devices.
	HintTenant = "e10_tenant"

	// HintTenantQuotaBytes caps the tenant's cache footprint per device, in
	// bytes (0 = unlimited).
	HintTenantQuotaBytes = "e10_tenant_quota_bytes"

	// HintTenantQuotaFiles caps the tenant's cache file count per device
	// (0 = unlimited).
	HintTenantQuotaFiles = "e10_tenant_quota_files"

	// HintTenantReserve is a per-device admission reservation in bytes: a
	// guaranteed capacity floor the tenant claims at open. When the sum of
	// reservations would exceed a device, admission fails.
	HintTenantReserve = "e10_tenant_reserve"

	// HintTenantAdmit picks the admission-failure behaviour: "reject"
	// (default) falls the session back to the uncached path immediately;
	// "queue" polls for capacity until AdmitTimeout, then falls back.
	HintTenantAdmit = "e10_tenant_admit"

	// HintTenantPolicy picks the quota-exhaustion behaviour: "block"
	// (default) backpressures the writer — evict own clean extents, then
	// poll until BlockTimeout before degrading that write to write-through —
	// while "writethrough" degrades immediately.
	HintTenantPolicy = "e10_tenant_policy"

	// HintTenantBlockTimeout bounds how long a blocked write waits for
	// capacity (a Go duration string) before degrading to write-through.
	HintTenantBlockTimeout = "e10_tenant_block_timeout"
)

// e10_tenant_admit values.
const (
	AdmitReject = "reject"
	AdmitQueue  = "queue"
)

// e10_tenant_policy values.
const (
	PolicyBlock        = "block"
	PolicyWriteThrough = "writethrough"
)

// e10_cache values.
const (
	CacheEnable   = "enable"
	CacheDisable  = "disable"
	CacheCoherent = "coherent"
)

// e10_cache_flush_flag values. FlushAdaptive extends the published pair
// per the paper's §III suggestion that "the cache synchronisation could
// take into account the level of congestion of the I/O servers": requests
// start immediately, but the sync thread backs off between chunks when it
// observes service times far above the uncongested baseline.
const (
	FlushImmediate = "flush_immediate"
	FlushOnClose   = "flush_onclose"
	FlushAdaptive  = "flush_adaptive"
)

// Options is the parsed Table II hint set.
type Options struct {
	Mode         string   // disable | enable | coherent
	Path         string   // cache directory on the local file system
	FlushFlag    string   // flush_immediate | flush_onclose | flush_adaptive
	Discard      bool     // remove the cache file at close
	ReadCache    bool     // serve cached extents on reads (future-work extension)
	Recover      bool     // replay a retained cache file's unsynced extents at open
	RetryLimit   int      // sync chunk retry budget (attempts beyond the first)
	RetryBackoff sim.Time // initial backoff between retries; doubles per attempt

	Tenant TenantOptions // multi-tenant service mode (zero value: single tenant)
}

// TenantOptions is the parsed e10_tenant_* hint set. The zero value (empty
// Name) means single-tenant mode and leaves every legacy code path
// untouched.
type TenantOptions struct {
	Name         string   // tenant identity; "" disables tenancy
	QuotaBytes   int64    // per-device cache byte cap (0 = unlimited)
	QuotaFiles   int      // per-device cache file cap (0 = unlimited)
	Reserve      int64    // per-device admission reservation in bytes
	Admit        string   // reject | queue
	Policy       string   // block | writethrough
	BlockTimeout sim.Time // blocked-write deadline before write-through
}

// Defaults for tenant backpressure and queued admission.
const (
	DefaultBlockTimeout = 50 * sim.Millisecond
	// DefaultAdmitTimeout bounds how long a queued admission polls for
	// reservation headroom before falling back to the uncached path.
	DefaultAdmitTimeout = 200 * sim.Millisecond
	// PressurePollInterval is the deterministic polling period used by
	// blocked writes and queued admissions (the sim kernel has no timed
	// condition wait).
	PressurePollInterval = 2 * sim.Millisecond
)

// DefaultRetryLimit and DefaultRetryBackoff govern sync-failure handling
// when the e10_sync_retry_* hints are absent. PartitionBackoffCap bounds
// the backoff used while waiting out a network partition, whose retries
// are budget-exempt and could otherwise sleep geometrically forever.
const (
	DefaultRetryLimit   = 4
	DefaultRetryBackoff = 10 * sim.Millisecond
	PartitionBackoffCap = 80 * sim.Millisecond
)

// ParseOptions extracts and validates the e10_* hints. Cache mode defaults
// to disable, flush flag to flush_onclose and discard to enable (cache
// files are scratch data).
func ParseOptions(extra mpi.Info) (Options, error) {
	o := Options{
		Mode:         CacheDisable,
		Path:         "/scratch",
		FlushFlag:    FlushOnClose,
		Discard:      true,
		RetryLimit:   DefaultRetryLimit,
		RetryBackoff: DefaultRetryBackoff,
	}
	if v, ok := extra.Get(HintCache); ok {
		switch v {
		case CacheEnable, CacheDisable, CacheCoherent:
			o.Mode = v
		default:
			return o, fmt.Errorf("core: %s: invalid value %q", HintCache, v)
		}
	}
	if v, ok := extra.Get(HintCachePath); ok {
		if v == "" {
			return o, fmt.Errorf("core: %s: empty path", HintCachePath)
		}
		o.Path = v
	}
	if v, ok := extra.Get(HintFlushFlag); ok {
		switch v {
		case FlushImmediate, FlushOnClose, FlushAdaptive:
			o.FlushFlag = v
		default:
			return o, fmt.Errorf("core: %s: invalid value %q", HintFlushFlag, v)
		}
	}
	if v, ok := extra.Get(HintCacheRead); ok {
		switch v {
		case "enable":
			o.ReadCache = true
		case "disable":
			o.ReadCache = false
		default:
			return o, fmt.Errorf("core: %s: invalid value %q", HintCacheRead, v)
		}
	}
	if v, ok := extra.Get(HintDiscardFlag); ok {
		switch v {
		case "enable":
			o.Discard = true
		case "disable":
			o.Discard = false
		default:
			return o, fmt.Errorf("core: %s: invalid value %q", HintDiscardFlag, v)
		}
	}
	if v, ok := extra.Get(HintCacheRecovery); ok {
		switch v {
		case "enable":
			o.Recover = true
		case "disable":
			o.Recover = false
		default:
			return o, fmt.Errorf("core: %s: invalid value %q", HintCacheRecovery, v)
		}
	}
	if v, ok := extra.Get(HintSyncRetryLimit); ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return o, fmt.Errorf("core: %s: invalid value %q", HintSyncRetryLimit, v)
		}
		o.RetryLimit = n
	}
	if v, ok := extra.Get(HintSyncRetryBackoff); ok {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return o, fmt.Errorf("core: %s: invalid value %q", HintSyncRetryBackoff, v)
		}
		o.RetryBackoff = sim.Time(d.Nanoseconds())
	}
	t, err := parseTenantOptions(extra)
	if err != nil {
		return o, err
	}
	o.Tenant = t
	return o, nil
}

// parseTenantOptions extracts and validates the e10_tenant_* hints. Every
// tenant hint other than e10_tenant itself requires e10_tenant to be set:
// a quota without an owner is a configuration error, not a default.
func parseTenantOptions(extra mpi.Info) (TenantOptions, error) {
	t := TenantOptions{
		Admit:        AdmitReject,
		Policy:       PolicyBlock,
		BlockTimeout: DefaultBlockTimeout,
	}
	if v, ok := extra.Get(HintTenant); ok {
		if v == "" {
			return t, fmt.Errorf("core: %s: empty tenant name", HintTenant)
		}
		t.Name = v
	}
	requireTenant := func(key string) error {
		if t.Name == "" {
			return fmt.Errorf("core: %s requires %s", key, HintTenant)
		}
		return nil
	}
	if v, ok := extra.Get(HintTenantQuotaBytes); ok {
		if err := requireTenant(HintTenantQuotaBytes); err != nil {
			return t, err
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			return t, fmt.Errorf("core: %s: invalid value %q", HintTenantQuotaBytes, v)
		}
		t.QuotaBytes = n
	}
	if v, ok := extra.Get(HintTenantQuotaFiles); ok {
		if err := requireTenant(HintTenantQuotaFiles); err != nil {
			return t, err
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return t, fmt.Errorf("core: %s: invalid value %q", HintTenantQuotaFiles, v)
		}
		t.QuotaFiles = n
	}
	if v, ok := extra.Get(HintTenantReserve); ok {
		if err := requireTenant(HintTenantReserve); err != nil {
			return t, err
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			return t, fmt.Errorf("core: %s: invalid value %q", HintTenantReserve, v)
		}
		t.Reserve = n
	}
	if v, ok := extra.Get(HintTenantAdmit); ok {
		if err := requireTenant(HintTenantAdmit); err != nil {
			return t, err
		}
		switch v {
		case AdmitReject, AdmitQueue:
			t.Admit = v
		default:
			return t, fmt.Errorf("core: %s: invalid value %q", HintTenantAdmit, v)
		}
	}
	if v, ok := extra.Get(HintTenantPolicy); ok {
		if err := requireTenant(HintTenantPolicy); err != nil {
			return t, err
		}
		switch v {
		case PolicyBlock, PolicyWriteThrough:
			t.Policy = v
		default:
			return t, fmt.Errorf("core: %s: invalid value %q", HintTenantPolicy, v)
		}
	}
	if v, ok := extra.Get(HintTenantBlockTimeout); ok {
		if err := requireTenant(HintTenantBlockTimeout); err != nil {
			return t, err
		}
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return t, fmt.Errorf("core: %s: invalid value %q", HintTenantBlockTimeout, v)
		}
		t.BlockTimeout = sim.Time(d.Nanoseconds())
	}
	if t.QuotaBytes > 0 && t.Reserve > t.QuotaBytes {
		return t, fmt.Errorf("core: %s %d exceeds %s %d",
			HintTenantReserve, t.Reserve, HintTenantQuotaBytes, t.QuotaBytes)
	}
	return t, nil
}

// Tenancy reports whether multi-tenant service mode is active.
func (o Options) Tenancy() bool { return o.Tenant.Name != "" }

// Enabled reports whether the cache data path is active.
func (o Options) Enabled() bool { return o.Mode != CacheDisable }
