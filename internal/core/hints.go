// Package core implements the paper's contribution: the E10 persistent
// cache layer for collective writes in ROMIO, controlled by the MPI-IO hint
// extensions of Table II. Aggregators write their file domains to a cache
// file on the node-local NVM device; a per-file sync thread
// (ADIOI_Sync_thread_start) drains the cache to the global parallel file
// system in ind_wr_buffer_size chunks in the background, so that cache
// synchronisation overlaps the application's next compute phase. MPI-IO
// consistency semantics (§III-B) are preserved: data becomes globally
// visible after the immediate-flush sync completes, after MPI_File_close,
// or after MPI_File_sync; the coherent mode additionally write-locks
// in-transit extents.
package core

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Hint keys from Table II of the paper.
const (
	HintCache       = "e10_cache"
	HintCachePath   = "e10_cache_path"
	HintFlushFlag   = "e10_cache_flush_flag"
	HintDiscardFlag = "e10_cache_discard_flag"
	// ind_wr_buffer_size (Table II's last row) is parsed by package adio,
	// since it predates the extensions; the cache layer reads it from the
	// normalized adio hint set.

	// HintCacheRead enables serving reads of locally cached extents from
	// the SSD. This implements the first item of the paper's future work
	// (§VI: "we plan to support cache reading operations"); it is NOT part
	// of the published hint set and defaults to disable.
	HintCacheRead = "e10_cache_read"

	// HintCacheRecovery enables crash recovery: when a retained cache file
	// from a previous (crashed) session exists at open, its unsynced
	// extents are replayed to the global file before new writes start.
	// This exercises the paper's persistence argument (§III: cached data
	// survives node failures and "can be synchronized at a later stage").
	// Defaults to disable.
	HintCacheRecovery = "e10_cache_recovery"

	// HintSyncRetryLimit bounds how many times the sync thread retries a
	// failed global-file chunk write (exponential backoff between
	// attempts) before completing the request with an error.
	HintSyncRetryLimit = "e10_sync_retry_limit"

	// HintSyncRetryBackoff is the initial retry backoff (a Go duration
	// string such as "10ms"); it doubles after every failed attempt.
	HintSyncRetryBackoff = "e10_sync_retry_backoff"
)

// e10_cache values.
const (
	CacheEnable   = "enable"
	CacheDisable  = "disable"
	CacheCoherent = "coherent"
)

// e10_cache_flush_flag values. FlushAdaptive extends the published pair
// per the paper's §III suggestion that "the cache synchronisation could
// take into account the level of congestion of the I/O servers": requests
// start immediately, but the sync thread backs off between chunks when it
// observes service times far above the uncongested baseline.
const (
	FlushImmediate = "flush_immediate"
	FlushOnClose   = "flush_onclose"
	FlushAdaptive  = "flush_adaptive"
)

// Options is the parsed Table II hint set.
type Options struct {
	Mode         string   // disable | enable | coherent
	Path         string   // cache directory on the local file system
	FlushFlag    string   // flush_immediate | flush_onclose | flush_adaptive
	Discard      bool     // remove the cache file at close
	ReadCache    bool     // serve cached extents on reads (future-work extension)
	Recover      bool     // replay a retained cache file's unsynced extents at open
	RetryLimit   int      // sync chunk retry budget (attempts beyond the first)
	RetryBackoff sim.Time // initial backoff between retries; doubles per attempt
}

// DefaultRetryLimit and DefaultRetryBackoff govern sync-failure handling
// when the e10_sync_retry_* hints are absent. PartitionBackoffCap bounds
// the backoff used while waiting out a network partition, whose retries
// are budget-exempt and could otherwise sleep geometrically forever.
const (
	DefaultRetryLimit   = 4
	DefaultRetryBackoff = 10 * sim.Millisecond
	PartitionBackoffCap = 80 * sim.Millisecond
)

// ParseOptions extracts and validates the e10_* hints. Cache mode defaults
// to disable, flush flag to flush_onclose and discard to enable (cache
// files are scratch data).
func ParseOptions(extra mpi.Info) (Options, error) {
	o := Options{
		Mode:         CacheDisable,
		Path:         "/scratch",
		FlushFlag:    FlushOnClose,
		Discard:      true,
		RetryLimit:   DefaultRetryLimit,
		RetryBackoff: DefaultRetryBackoff,
	}
	if v, ok := extra.Get(HintCache); ok {
		switch v {
		case CacheEnable, CacheDisable, CacheCoherent:
			o.Mode = v
		default:
			return o, fmt.Errorf("core: %s: invalid value %q", HintCache, v)
		}
	}
	if v, ok := extra.Get(HintCachePath); ok {
		if v == "" {
			return o, fmt.Errorf("core: %s: empty path", HintCachePath)
		}
		o.Path = v
	}
	if v, ok := extra.Get(HintFlushFlag); ok {
		switch v {
		case FlushImmediate, FlushOnClose, FlushAdaptive:
			o.FlushFlag = v
		default:
			return o, fmt.Errorf("core: %s: invalid value %q", HintFlushFlag, v)
		}
	}
	if v, ok := extra.Get(HintCacheRead); ok {
		switch v {
		case "enable":
			o.ReadCache = true
		case "disable":
			o.ReadCache = false
		default:
			return o, fmt.Errorf("core: %s: invalid value %q", HintCacheRead, v)
		}
	}
	if v, ok := extra.Get(HintDiscardFlag); ok {
		switch v {
		case "enable":
			o.Discard = true
		case "disable":
			o.Discard = false
		default:
			return o, fmt.Errorf("core: %s: invalid value %q", HintDiscardFlag, v)
		}
	}
	if v, ok := extra.Get(HintCacheRecovery); ok {
		switch v {
		case "enable":
			o.Recover = true
		case "disable":
			o.Recover = false
		default:
			return o, fmt.Errorf("core: %s: invalid value %q", HintCacheRecovery, v)
		}
	}
	if v, ok := extra.Get(HintSyncRetryLimit); ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return o, fmt.Errorf("core: %s: invalid value %q", HintSyncRetryLimit, v)
		}
		o.RetryLimit = n
	}
	if v, ok := extra.Get(HintSyncRetryBackoff); ok {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return o, fmt.Errorf("core: %s: invalid value %q", HintSyncRetryBackoff, v)
		}
		o.RetryBackoff = sim.Time(d.Nanoseconds())
	}
	return o, nil
}

// Enabled reports whether the cache data path is active.
func (o Options) Enabled() bool { return o.Mode != CacheDisable }
