package core

import (
	"bytes"
	"testing"

	"repro/internal/adio"
	"repro/internal/extent"
	"repro/internal/mpi"
	"repro/internal/store"
)

func TestJournalScrubPristineIsFree(t *testing.T) {
	var j Journal
	j.Add(extent.Extent{Off: 0, Len: 4096})
	j.Add(extent.Extent{Off: 8192, Len: 4096})
	j.Remove(extent.Extent{Off: 0, Len: 4096})
	if lost := j.Scrub(); lost != nil {
		t.Fatalf("scrubbing a pristine journal lost %v, want nil", lost)
	}
	if j.Len() != 1 || j.TotalBytes() != 4096 {
		t.Fatalf("folded view reshaped by a clean scrub: %d extents / %d bytes", j.Len(), j.TotalBytes())
	}
	if j.Seq() != 3 {
		t.Fatalf("commit sequence = %d, want 3", j.Seq())
	}
}

func TestJournalTearDropsOnlyLastRecord(t *testing.T) {
	var j Journal
	a := extent.Extent{Off: 0, Len: 4096}
	b := extent.Extent{Off: 1 << 20, Len: 8192}
	j.Add(a)
	j.Add(b)
	j.Tear() // crash mid-append: b's commit CRC never landed
	lost := j.Scrub()
	if len(lost) != 1 || lost[0] != b {
		t.Fatalf("lost = %v, want [%v]", lost, b)
	}
	if !j.Covers(a) || j.Covers(b) {
		t.Fatalf("surviving prefix wrong: covers(a)=%v covers(b)=%v", j.Covers(a), j.Covers(b))
	}
	// A second scrub of the now-truncated journal is a no-op.
	if again := j.Scrub(); again != nil {
		t.Fatalf("re-scrub lost %v, want nil", again)
	}
}

func TestJournalTornTrimWidensReplay(t *testing.T) {
	// Tearing a TRIM record must make replay strictly more conservative:
	// the synced extent reappears as dirty (idempotent to replay), and
	// nothing is reported lost.
	var j Journal
	e := extent.Extent{Off: 4096, Len: 4096}
	j.Add(e)
	j.Remove(e)
	j.Tear()
	if lost := j.Scrub(); len(lost) != 0 {
		t.Fatalf("a torn trim lost %v, want nothing", lost)
	}
	if !j.Covers(e) {
		t.Fatal("the extent whose trim was torn must be dirty again")
	}
}

func TestJournalRotTruncatesToValidPrefix(t *testing.T) {
	var j Journal
	exts := []extent.Extent{
		{Off: 0, Len: 4096}, {Off: 1 << 20, Len: 4096}, {Off: 2 << 20, Len: 4096},
	}
	for _, e := range exts {
		j.Add(e)
	}
	j.Rot(journalRecSize + 7) // flip a byte inside record 1
	lost := j.Scrub()
	var lostSet extent.Set
	for _, e := range lost {
		lostSet.Add(e)
	}
	if !j.Covers(exts[0]) {
		t.Fatal("record 0 precedes the rot and must survive")
	}
	for _, e := range exts[1:] {
		if j.Covers(e) {
			t.Fatalf("extent %v after the rotten record must not survive", e)
		}
		if !lostSet.Covers(e) {
			t.Fatalf("extent %v dropped but not reported lost", e)
		}
	}
}

// TestRecoverTornLastRecord is the torn-journal regression test: a crash
// mid-append must leave the journal replayable — recovery truncates to the
// valid record prefix, replays it, and quarantines the torn range instead
// of erroring out.
func TestRecoverTornLastRecord(t *testing.T) {
	const (
		offA, sizeA = int64(256 << 10), int64(64 << 10)
		offB, sizeB = int64(4 << 20), int64(32 << 10)
	)
	dataA := make([]byte, sizeA)
	for i := range dataA {
		dataA[i] = byte(i*7 + 3)
	}
	dataB := make([]byte, sizeB)
	for i := range dataB {
		dataB[i] = byte(i*13 + 5)
	}
	rg := newRig(t, 1, 1, store.NewMemChecksummed)
	err := rg.w.Run(func(r *mpi.Rank) {
		f1 := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "enable", HintFlushFlag: "flush_onclose",
		})
		if err := f1.WriteContig(dataA, offA, sizeA); err != nil {
			t.Error(err)
		}
		if err := f1.WriteContig(dataB, offB, sizeB); err != nil {
			t.Error(err)
		}
		f1.InstalledHooks().(*Cache).Crash()

		// The torn-write fault: the crash shears the last journal append.
		rg.env.TearNode(0)

		f2, err := adio.OpenColl(r, adio.OpenArgs{
			Comm: rg.w.Comm(), Registry: rg.reg, Path: "global.dat", Create: true,
			Info: mpi.Info{
				adio.HintCBWrite: "enable", HintCache: "enable",
				HintCacheRecovery: "enable",
			},
			Hooks: rg.env.HooksFactory(),
		})
		if err != nil {
			t.Errorf("recovery open after a torn journal must not error: %v", err)
			return
		}
		c2 := f2.InstalledHooks().(*Cache)
		if c2 == nil {
			t.Error("recovery open fell back to the standard path")
			return
		}
		if c2.Stats.RecoveredExtents != 1 || c2.Stats.RecoveredBytes != sizeA {
			t.Errorf("recovered %d extents / %d bytes, want 1 / %d",
				c2.Stats.RecoveredExtents, c2.Stats.RecoveredBytes, sizeA)
		}
		if c2.Stats.CorruptExtents != 1 || c2.Stats.QuarantinedBytes != sizeB {
			t.Errorf("quarantined %d extents / %d bytes, want 1 / %d",
				c2.Stats.CorruptExtents, c2.Stats.QuarantinedBytes, sizeB)
		}
		var qs extent.Set
		for _, e := range c2.Quarantined() {
			qs.Add(e)
		}
		if !qs.Covers(extent.Extent{Off: offB, Len: sizeB}) {
			t.Errorf("torn extent [%d,+%d) not quarantined: %v", offB, sizeB, c2.Quarantined())
		}
		var rs extent.Set
		for _, e := range c2.Recovered() {
			rs.Add(e)
		}
		if !rs.Covers(extent.Extent{Off: offA, Len: sizeA}) {
			t.Errorf("surviving extent [%d,+%d) not replayed: %v", offA, sizeA, c2.Recovered())
		}

		// A quarantined range degrades: reads bypass the condemned cache
		// payload, and a rewrite goes through to the global file and lifts
		// the quarantine.
		got := make([]byte, sizeB)
		if err := f2.ReadContig(got, offB, sizeB); err != nil {
			t.Error(err)
		}
		if bytes.Equal(got, dataB) {
			t.Error("read of a quarantined range served the condemned cache payload")
		}
		if err := f2.WriteContig(dataB, offB, sizeB); err != nil {
			t.Error(err)
		}
		for _, e := range c2.Quarantined() {
			if e.Overlaps(extent.Extent{Off: offB, Len: sizeB}) {
				t.Errorf("write-through did not lift the quarantine: %v", c2.Quarantined())
			}
		}
		if err := f2.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	meta := rg.fs.Lookup("global.dat")
	if meta == nil {
		t.Fatal("global file missing after recovery")
	}
	gotA := make([]byte, sizeA)
	meta.Store().ReadAt(gotA, offA)
	if !bytes.Equal(gotA, dataA) {
		t.Fatal("replayed payload does not match the crashed session's write")
	}
	gotB := make([]byte, sizeB)
	meta.Store().ReadAt(gotB, offB)
	if !bytes.Equal(gotB, dataB) {
		t.Fatal("written-through payload does not match")
	}
}

// TestDoubleCrashDuringRecoveryIsIdempotent mirrors the chaos journal-
// idempotence oracle at unit scale: a second crash after the first replay
// (modelled by re-staging the journal whose trim the crash lost, torn
// mid-append for good measure) must leave the journal replayable, and the
// second recovery must not change the global file.
func TestDoubleCrashDuringRecoveryIsIdempotent(t *testing.T) {
	const off, size = int64(512 << 10), int64(128 << 10)
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i*11 + 1)
	}
	rg := newRig(t, 1, 1, store.NewMemChecksummed)
	err := rg.w.Run(func(r *mpi.Rank) {
		f1 := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "enable", HintFlushFlag: "flush_onclose",
		})
		if err := f1.WriteContig(data, off, size); err != nil {
			t.Error(err)
		}
		f1.InstalledHooks().(*Cache).Crash()

		recover := func(tag string) *Cache {
			f, err := adio.OpenColl(r, adio.OpenArgs{
				Comm: rg.w.Comm(), Registry: rg.reg, Path: "global.dat", Create: true,
				Info: mpi.Info{
					adio.HintCBWrite: "enable", HintCache: "enable",
					HintCacheRecovery: "enable", HintDiscardFlag: "disable",
				},
				Hooks: rg.env.HooksFactory(),
			})
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			c := f.InstalledHooks().(*Cache)
			if c == nil {
				t.Fatalf("%s: fell back to the standard path", tag)
			}
			if err := f.Close(); err != nil {
				t.Errorf("%s close: %v", tag, err)
			}
			return c
		}

		c2 := recover("recover1")
		if c2.Stats.RecoveredBytes != size {
			t.Fatalf("first recovery replayed %d bytes, want %d", c2.Stats.RecoveredBytes, size)
		}
		key := c2.JournalKey()
		snapA := make([]byte, size)
		rg.fs.Lookup("global.dat").Store().ReadAt(snapA, off)

		// Second crash: the data landed but the journal trims were lost, and
		// the dying append was torn on top. The tear shears the second
		// record; the first must stay replayable.
		half := size / 2
		rg.env.RestoreJournal(key, []extent.Extent{
			{Off: off, Len: half}, {Off: off + half, Len: half},
		})
		rg.env.TearNode(0)

		c3 := recover("recover2")
		if c3.Stats.RecoveredBytes != half {
			t.Errorf("second recovery replayed %d bytes, want the surviving prefix (%d)", c3.Stats.RecoveredBytes, half)
		}
		if c3.Stats.CorruptExtents != 1 || c3.Stats.QuarantinedBytes != half {
			t.Errorf("second recovery quarantined %d extents / %d bytes, want 1 / %d",
				c3.Stats.CorruptExtents, c3.Stats.QuarantinedBytes, half)
		}
		snapB := make([]byte, size)
		rg.fs.Lookup("global.dat").Store().ReadAt(snapB, off)
		if !bytes.Equal(snapA, snapB) {
			t.Error("second replay changed the global file: recovery is not idempotent")
		}
		if !bytes.Equal(snapB, data) {
			t.Error("recovered payload does not match the crashed session's write")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
