package core

import (
	"testing"

	"repro/internal/mpi"
)

// FuzzParseOptions drives the Table II e10_* hint parser. ParseOptions must
// never panic, and any accepted hint set must be normalized: a known cache
// mode and flush flag, a non-empty cache path and sane retry parameters.
func FuzzParseOptions(f *testing.F) {
	f.Add(HintCache, CacheEnable, HintFlushFlag, FlushImmediate)
	f.Add(HintCache, "coherent", HintCachePath, "/scratch")
	f.Add(HintDiscardFlag, "disable", HintCacheRecovery, "enable")
	f.Add(HintSyncRetryLimit, "7", HintSyncRetryBackoff, "25ms")
	f.Add(HintCache, "please", HintFlushFlag, "whenever")
	f.Add(HintCachePath, "", HintSyncRetryLimit, "-3")
	f.Add(HintSyncRetryBackoff, "-1s", HintCacheRead, "enable")
	f.Add("", "", "", "")
	f.Fuzz(func(t *testing.T, k1, v1, k2, v2 string) {
		info := mpi.Info{}
		if k1 != "" {
			info[k1] = v1
		}
		if k2 != "" {
			info[k2] = v2
		}
		o, err := ParseOptions(info)
		if err != nil {
			return
		}
		switch o.Mode {
		case CacheEnable, CacheDisable, CacheCoherent:
		default:
			t.Fatalf("ParseOptions(%v): invalid mode %q", info, o.Mode)
		}
		switch o.FlushFlag {
		case FlushImmediate, FlushOnClose, FlushAdaptive:
		default:
			t.Fatalf("ParseOptions(%v): invalid flush flag %q", info, o.FlushFlag)
		}
		if o.Path == "" {
			t.Fatalf("ParseOptions(%v): empty cache path accepted", info)
		}
		if o.RetryLimit < 0 {
			t.Fatalf("ParseOptions(%v): negative retry limit %d", info, o.RetryLimit)
		}
		if o.RetryBackoff < 0 {
			t.Fatalf("ParseOptions(%v): negative retry backoff %v", info, o.RetryBackoff)
		}
		if o.Enabled() == (o.Mode == CacheDisable) {
			t.Fatalf("ParseOptions(%v): Enabled()=%v inconsistent with mode %q", info, o.Enabled(), o.Mode)
		}
		o2, err := ParseOptions(info)
		if err != nil || o2 != o {
			t.Fatalf("ParseOptions(%v) not deterministic: %+v vs %+v (err %v)", info, o, o2, err)
		}
	})
}
