package core

import (
	"testing"

	"repro/internal/mpi"
)

// FuzzParseOptions drives the Table II e10_* hint parser. ParseOptions must
// never panic, and any accepted hint set must be normalized: a known cache
// mode and flush flag, a non-empty cache path and sane retry parameters.
func FuzzParseOptions(f *testing.F) {
	f.Add(HintCache, CacheEnable, HintFlushFlag, FlushImmediate)
	f.Add(HintCache, "coherent", HintCachePath, "/scratch")
	f.Add(HintDiscardFlag, "disable", HintCacheRecovery, "enable")
	f.Add(HintSyncRetryLimit, "7", HintSyncRetryBackoff, "25ms")
	f.Add(HintCache, "please", HintFlushFlag, "whenever")
	f.Add(HintCachePath, "", HintSyncRetryLimit, "-3")
	f.Add(HintSyncRetryBackoff, "-1s", HintCacheRead, "enable")
	f.Add("", "", "", "")
	f.Fuzz(func(t *testing.T, k1, v1, k2, v2 string) {
		info := mpi.Info{}
		if k1 != "" {
			info[k1] = v1
		}
		if k2 != "" {
			info[k2] = v2
		}
		o, err := ParseOptions(info)
		if err != nil {
			return
		}
		switch o.Mode {
		case CacheEnable, CacheDisable, CacheCoherent:
		default:
			t.Fatalf("ParseOptions(%v): invalid mode %q", info, o.Mode)
		}
		switch o.FlushFlag {
		case FlushImmediate, FlushOnClose, FlushAdaptive:
		default:
			t.Fatalf("ParseOptions(%v): invalid flush flag %q", info, o.FlushFlag)
		}
		if o.Path == "" {
			t.Fatalf("ParseOptions(%v): empty cache path accepted", info)
		}
		if o.RetryLimit < 0 {
			t.Fatalf("ParseOptions(%v): negative retry limit %d", info, o.RetryLimit)
		}
		if o.RetryBackoff < 0 {
			t.Fatalf("ParseOptions(%v): negative retry backoff %v", info, o.RetryBackoff)
		}
		if o.Enabled() == (o.Mode == CacheDisable) {
			t.Fatalf("ParseOptions(%v): Enabled()=%v inconsistent with mode %q", info, o.Enabled(), o.Mode)
		}
		o2, err := ParseOptions(info)
		if err != nil || o2 != o {
			t.Fatalf("ParseOptions(%v) not deterministic: %+v vs %+v (err %v)", info, o, o2, err)
		}
	})
}

// FuzzParseTenantOptions drives the multi-tenant e10_tenant_* hint parser.
// It must never panic; accepted sets must be normalized (non-empty tenant
// name whenever tenancy is on, known admit/policy values, non-negative
// budgets, reservation within quota) and quota hints without e10_tenant
// must be rejected, not defaulted.
func FuzzParseTenantOptions(f *testing.F) {
	f.Add(HintTenant, "jobA", HintTenantQuotaBytes, "1048576", HintTenantReserve, "65536")
	f.Add(HintTenant, "jobB", HintTenantAdmit, "queue", HintTenantPolicy, "writethrough")
	f.Add(HintTenant, "noisy", HintTenantQuotaFiles, "2", HintTenantBlockTimeout, "5ms")
	f.Add(HintTenantQuotaBytes, "4096", "", "", "", "")
	f.Add(HintTenant, "", HintTenantReserve, "100", "", "")
	f.Add(HintTenant, "a", HintTenantQuotaBytes, "100", HintTenantReserve, "200")
	f.Add(HintTenant, "a", HintTenantQuotaBytes, "-5", HintTenantPolicy, "maybe")
	f.Add(HintTenant, "a", HintTenantBlockTimeout, "-1s", HintTenantAdmit, "beg")
	f.Add(HintCache, CacheEnable, HintTenant, "t", HintTenantQuotaBytes, "9999999999")
	f.Fuzz(func(t *testing.T, k1, v1, k2, v2, k3, v3 string) {
		info := mpi.Info{}
		for _, kv := range [][2]string{{k1, v1}, {k2, v2}, {k3, v3}} {
			if kv[0] != "" {
				info[kv[0]] = kv[1]
			}
		}
		o, err := ParseOptions(info)
		if err != nil {
			return
		}
		to := o.Tenant
		if o.Tenancy() != (to.Name != "") {
			t.Fatalf("ParseOptions(%v): Tenancy()=%v inconsistent with name %q", info, o.Tenancy(), to.Name)
		}
		if to.Name == "" {
			// Without a tenant, no tenant hint may have been accepted.
			for _, k := range []string{HintTenantQuotaBytes, HintTenantQuotaFiles,
				HintTenantReserve, HintTenantAdmit, HintTenantPolicy, HintTenantBlockTimeout} {
				if _, ok := info.Get(k); ok {
					t.Fatalf("ParseOptions(%v): %s accepted without %s", info, k, HintTenant)
				}
			}
			return
		}
		switch to.Admit {
		case AdmitReject, AdmitQueue:
		default:
			t.Fatalf("ParseOptions(%v): invalid admit %q", info, to.Admit)
		}
		switch to.Policy {
		case PolicyBlock, PolicyWriteThrough:
		default:
			t.Fatalf("ParseOptions(%v): invalid policy %q", info, to.Policy)
		}
		if to.QuotaBytes < 0 || to.QuotaFiles < 0 || to.Reserve < 0 || to.BlockTimeout < 0 {
			t.Fatalf("ParseOptions(%v): negative tenant budget %+v", info, to)
		}
		if to.QuotaBytes > 0 && to.Reserve > to.QuotaBytes {
			t.Fatalf("ParseOptions(%v): reservation %d beyond quota %d accepted", info, to.Reserve, to.QuotaBytes)
		}
		o2, err := ParseOptions(info)
		if err != nil || o2 != o {
			t.Fatalf("ParseOptions(%v) not deterministic: %+v vs %+v (err %v)", info, o, o2, err)
		}
	})
}
