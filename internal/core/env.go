package core

import (
	"sort"

	"repro/internal/extent"
)

// The Env's journal registry models per-node NVM-resident journals, which
// outlive any single open. These accessors expose it read/write to external
// oracles (internal/chaos) that must inspect what a crashed session left
// behind and re-stage a journal to probe replay idempotence.

// JournalKeys returns the keys of all retained non-empty dirty-extent
// journals, sorted for deterministic iteration.
func (e *Env) JournalKeys() []string {
	keys := make([]string, 0, len(e.journals))
	for k, s := range e.journals {
		if s.Len() > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// JournalExtents returns a copy of the dirty extents journalled under key
// (nil when no journal is retained).
func (e *Env) JournalExtents(key string) []extent.Extent {
	s, ok := e.journals[key]
	if !ok {
		return nil
	}
	return s.Extents()
}

// RestoreJournal re-stages exts as key's journal, replacing whatever is
// there. Chaos testing uses this to model a crash that interrupted journal
// trimming: the data reached the global file but the journal entries
// survived, so the next recovery replays them again — which must be a
// no-op (idempotence).
func (e *Env) RestoreJournal(key string, exts []extent.Extent) {
	if e.journals == nil {
		e.journals = make(map[string]*Journal)
	}
	j := &Journal{}
	for _, x := range exts {
		j.Add(x)
	}
	e.journals[key] = j
}

// ClearJournal discards the journal retained under key.
func (e *Env) ClearJournal(key string) { e.dropJournal(key) }

// ScrubLost returns the cumulative ranges recovery scrubs condemned under
// key (nil when nothing was ever lost). Unlike a live Cache's quarantine
// view this ledger survives recovery opens that die mid-replay, so
// oracles can tell detected corruption from silent loss even when no
// recovered cache is left to ask.
func (e *Env) ScrubLost(key string) []extent.Extent {
	s, ok := e.scrubLost[key]
	if !ok {
		return nil
	}
	return s.Extents()
}

// JournalKey identifies this cache file in the Env's journal registry
// (exported for oracles that correlate a live cache with its journal).
func (c *Cache) JournalKey() string { return c.journalKey() }

// Name returns the cache file's path on the node-local file system.
func (c *Cache) Name() string { return c.name }
