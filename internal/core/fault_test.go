package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/adio"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/store"
)

// setTargets flips every PFS data target up or down at once.
func (rg *rig) setTargets(down bool) {
	for i := 0; i < rg.fs.Config().Targets; i++ {
		rg.fs.SetTargetDown(i, down)
	}
}

func TestSyncRetriesTransientTargetOutage(t *testing.T) {
	// All PFS targets go down right after the cached write; they come back
	// 40 ms later, well inside the default retry budget (10+20+40+80 ms of
	// backoff). The sync must retry, then succeed — no error, no data loss.
	rg := newRig(t, 1, 1, store.NewNull)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "enable", HintFlushFlag: "flush_immediate",
		})
		if err := f.WriteContig(nil, 0, 1<<20); err != nil {
			t.Error(err)
		}
		rg.setTargets(true)
		rg.k.After(40*sim.Millisecond, func() { rg.setTargets(false) })
		r.Compute(sim.FromSeconds(2))
		c := f.InstalledHooks().(*Cache)
		if err := f.Close(); err != nil {
			t.Errorf("close after transient outage: %v", err)
		}
		if c.Stats.SyncRetries == 0 {
			t.Error("transient outage must be visible as SyncRetries")
		}
		if c.Stats.SyncFailures != 0 {
			t.Errorf("no terminal failure expected, got %d", c.Stats.SyncFailures)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rg.fs.TotalBytesWritten() < 1<<20 {
		t.Fatalf("global FS got %d bytes, want the full 1 MB", rg.fs.TotalBytesWritten())
	}
}

func TestTerminalSyncFailureSurfacesAndRetainsCache(t *testing.T) {
	// The PFS never comes back: the sync exhausts its retry budget. The
	// failure must surface at close (never silent), the coherent-mode lock
	// must not leak, and the cache file — now the only copy — must survive
	// the close despite discard being enabled by default.
	rg := newRig(t, 1, 1, store.NewNull)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "coherent",
			HintFlushFlag: "flush_immediate", HintCachePath: "/scratch",
		})
		if err := f.WriteContig(nil, 0, 1<<20); err != nil {
			t.Error(err)
		}
		rg.setTargets(true)
		// Long enough for every retry (10+20+40+80 ms) to burn out.
		r.Compute(sim.FromSeconds(2))
		if held := rg.fs.Locks.HeldLocks("global.dat"); held != 0 {
			t.Errorf("aborted sync leaked %d coherent locks", held)
		}
		c := f.InstalledHooks().(*Cache)
		if err := f.Close(); err == nil {
			t.Error("close must surface the terminal sync failure")
		}
		if c.Stats.SyncFailures == 0 {
			t.Error("terminal failure must be counted in SyncFailures")
		}
		if c.Stats.SyncRetries == 0 {
			t.Error("retries must have been attempted first")
		}
		if c.Dirty().Len() == 0 {
			t.Error("unsynced extents must stay journalled")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rg.nvms[0].Exists("/scratch/global.dat.cache.r0") {
		t.Fatal("flush failure must retain the cache file (only surviving copy)")
	}
}

func TestCrashReleasesLocksAndFailsFurtherIO(t *testing.T) {
	rg := newRig(t, 1, 1, store.NewNull)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "coherent", HintFlushFlag: "flush_immediate",
		})
		if err := f.WriteContig(nil, 0, 32<<20); err != nil {
			t.Error(err)
		}
		if rg.fs.Locks.HeldLocks("global.dat") == 0 {
			t.Error("coherent write must hold its lock while in transit")
		}
		c := f.InstalledHooks().(*Cache)
		c.Crash()
		// Let the sync thread observe the crash and unwind mid-extent.
		r.Compute(sim.FromSeconds(1))
		if held := rg.fs.Locks.HeldLocks("global.dat"); held != 0 {
			t.Errorf("crash leaked %d locks", held)
		}
		if err := f.WriteContig(nil, 32<<20, 1<<20); !errors.Is(err, ErrCrashed) {
			t.Errorf("write on crashed node: got %v, want ErrCrashed", err)
		}
		if err := f.Flush(); !errors.Is(err, ErrCrashed) {
			t.Errorf("flush on crashed node: got %v, want ErrCrashed", err)
		}
		if !c.Crashed() {
			t.Error("Crashed() must report the crash")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryReplaysJournalWithVerification(t *testing.T) {
	// The end-to-end persistence story (§III): a node crashes with dirty
	// data in its cache file; reopening the file with e10_cache_recovery
	// replays the journalled extents from local NVM to the global file,
	// verifying every chunk's payload. Deterministic across seeds.
	const size = 1 << 20
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 7 % 251)
	}
	run := func(seed int64) (walltime sim.Time, recovered int64) {
		rg := newRigSeed(t, seed, 1, 1, store.NewMem)
		err := rg.w.Run(func(r *mpi.Rank) {
			// Session 1: cache the write, never sync (flush_onclose), crash.
			f1 := rg.open(r, t, mpi.Info{
				adio.HintCBWrite: "enable", HintCache: "enable", HintFlushFlag: "flush_onclose",
			})
			if err := f1.WriteContig(data, 256<<10, size); err != nil {
				t.Error(err)
			}
			c1 := f1.InstalledHooks().(*Cache)
			if c1.Dirty().Len() == 0 {
				t.Error("cached write must be journalled as dirty")
			}
			c1.Crash()
			if rg.fs.TotalBytesWritten() != 0 {
				t.Error("nothing must have reached the global file before the crash")
			}
			// Session 2: reopen with recovery enabled.
			f2, err := adio.OpenColl(r, adio.OpenArgs{
				Comm: rg.w.Comm(), Registry: rg.reg, Path: "global.dat", Create: true,
				Info: mpi.Info{
					adio.HintCBWrite: "enable", HintCache: "enable",
					HintCacheRecovery: "enable",
				},
				Hooks: rg.env.HooksFactory(),
			})
			if err != nil {
				t.Error(err)
				return
			}
			c2 := f2.InstalledHooks().(*Cache)
			if c2 == nil {
				t.Error("recovery open fell back to the standard path")
				return
			}
			recovered = c2.Stats.RecoveredBytes
			if c2.Stats.RecoveredExtents != 1 || c2.Stats.RecoveredBytes != size {
				t.Errorf("recovered %d extents / %d bytes, want 1 / %d",
					c2.Stats.RecoveredExtents, c2.Stats.RecoveredBytes, size)
			}
			if c2.Dirty().Len() != 0 {
				t.Error("journal must be clean after recovery")
			}
			if err := f2.Close(); err != nil {
				t.Error(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		meta := rg.fs.Lookup("global.dat")
		if meta == nil {
			t.Fatal("global file missing after recovery")
		}
		got := make([]byte, size)
		meta.Store().ReadAt(got, 256<<10)
		if !bytes.Equal(got, data) {
			t.Fatal("recovered payload does not match the crashed session's writes")
		}
		return rg.k.Now(), recovered
	}
	w1a, r1a := run(1)
	w1b, r1b := run(1)
	if w1a != w1b || r1a != r1b {
		t.Fatalf("same seed must replay identically: %v/%d vs %v/%d", w1a, r1a, w1b, r1b)
	}
	if _, r2 := run(7); r2 != r1a {
		t.Fatalf("recovery must not depend on the seed: %d vs %d bytes", r2, r1a)
	}
}

func TestRetryHintsConfigureBudget(t *testing.T) {
	// A zero retry limit fails fast: one attempt, no retries.
	rg := newRig(t, 1, 1, store.NewNull)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "enable", HintFlushFlag: "flush_immediate",
			HintSyncRetryLimit: "0", HintSyncRetryBackoff: "1ms",
		})
		if err := f.WriteContig(nil, 0, 1<<20); err != nil {
			t.Error(err)
		}
		rg.setTargets(true)
		r.Compute(sim.FromSeconds(1))
		rg.setTargets(false)
		c := f.InstalledHooks().(*Cache)
		if err := f.Close(); err == nil {
			t.Error("zero retry budget must fail the sync")
		}
		if c.Stats.SyncRetries != 0 {
			t.Errorf("retry limit 0 must not retry, got %d", c.Stats.SyncRetries)
		}
		if c.Stats.SyncFailures == 0 {
			t.Error("failure must be counted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
