package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/adio"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/store"
)

// setTargets flips every PFS data target up or down at once.
func (rg *rig) setTargets(down bool) {
	for i := 0; i < rg.fs.Config().Targets; i++ {
		rg.fs.SetTargetDown(i, down)
	}
}

func TestSyncRetriesTransientTargetOutage(t *testing.T) {
	// All PFS targets go down right after the cached write; they come back
	// 40 ms later, well inside the default retry budget (10+20+40+80 ms of
	// backoff). The sync must retry, then succeed — no error, no data loss.
	rg := newRig(t, 1, 1, store.NewNull)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "enable", HintFlushFlag: "flush_immediate",
		})
		if err := f.WriteContig(nil, 0, 1<<20); err != nil {
			t.Error(err)
		}
		rg.setTargets(true)
		rg.k.After(40*sim.Millisecond, func() { rg.setTargets(false) })
		r.Compute(sim.FromSeconds(2))
		c := f.InstalledHooks().(*Cache)
		if err := f.Close(); err != nil {
			t.Errorf("close after transient outage: %v", err)
		}
		if c.Stats.SyncRetries == 0 {
			t.Error("transient outage must be visible as SyncRetries")
		}
		if c.Stats.SyncFailures != 0 {
			t.Errorf("no terminal failure expected, got %d", c.Stats.SyncFailures)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rg.fs.TotalBytesWritten() < 1<<20 {
		t.Fatalf("global FS got %d bytes, want the full 1 MB", rg.fs.TotalBytesWritten())
	}
}

func TestTerminalSyncFailureSurfacesAndRetainsCache(t *testing.T) {
	// The PFS never comes back: the sync exhausts its retry budget. The
	// failure must surface at close (never silent), the coherent-mode lock
	// must not leak, and the cache file — now the only copy — must survive
	// the close despite discard being enabled by default.
	rg := newRig(t, 1, 1, store.NewNull)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "coherent",
			HintFlushFlag: "flush_immediate", HintCachePath: "/scratch",
		})
		if err := f.WriteContig(nil, 0, 1<<20); err != nil {
			t.Error(err)
		}
		rg.setTargets(true)
		// Long enough for every retry (10+20+40+80 ms) to burn out.
		r.Compute(sim.FromSeconds(2))
		if held := rg.fs.Locks.HeldLocks("global.dat"); held != 0 {
			t.Errorf("aborted sync leaked %d coherent locks", held)
		}
		c := f.InstalledHooks().(*Cache)
		if err := f.Close(); err == nil {
			t.Error("close must surface the terminal sync failure")
		}
		if c.Stats.SyncFailures == 0 {
			t.Error("terminal failure must be counted in SyncFailures")
		}
		if c.Stats.SyncRetries == 0 {
			t.Error("retries must have been attempted first")
		}
		if c.Dirty().Len() == 0 {
			t.Error("unsynced extents must stay journalled")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rg.nvms[0].Exists("/scratch/global.dat.cache.r0") {
		t.Fatal("flush failure must retain the cache file (only surviving copy)")
	}
}

func TestCrashReleasesLocksAndFailsFurtherIO(t *testing.T) {
	rg := newRig(t, 1, 1, store.NewNull)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "coherent", HintFlushFlag: "flush_immediate",
		})
		if err := f.WriteContig(nil, 0, 32<<20); err != nil {
			t.Error(err)
		}
		if rg.fs.Locks.HeldLocks("global.dat") == 0 {
			t.Error("coherent write must hold its lock while in transit")
		}
		c := f.InstalledHooks().(*Cache)
		c.Crash()
		// Let the sync thread observe the crash and unwind mid-extent.
		r.Compute(sim.FromSeconds(1))
		if held := rg.fs.Locks.HeldLocks("global.dat"); held != 0 {
			t.Errorf("crash leaked %d locks", held)
		}
		if err := f.WriteContig(nil, 32<<20, 1<<20); !errors.Is(err, ErrCrashed) {
			t.Errorf("write on crashed node: got %v, want ErrCrashed", err)
		}
		if err := f.Flush(); !errors.Is(err, ErrCrashed) {
			t.Errorf("flush on crashed node: got %v, want ErrCrashed", err)
		}
		if !c.Crashed() {
			t.Error("Crashed() must report the crash")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryReplaysJournalWithVerification(t *testing.T) {
	// The end-to-end persistence story (§III): a node crashes with dirty
	// data in its cache file; reopening the file with e10_cache_recovery
	// replays the journalled extents from local NVM to the global file,
	// verifying every chunk's payload. Deterministic across seeds.
	const size = 1 << 20
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 7 % 251)
	}
	run := func(seed int64) (walltime sim.Time, recovered int64) {
		rg := newRigSeed(t, seed, 1, 1, store.NewMem)
		err := rg.w.Run(func(r *mpi.Rank) {
			// Session 1: cache the write, never sync (flush_onclose), crash.
			f1 := rg.open(r, t, mpi.Info{
				adio.HintCBWrite: "enable", HintCache: "enable", HintFlushFlag: "flush_onclose",
			})
			if err := f1.WriteContig(data, 256<<10, size); err != nil {
				t.Error(err)
			}
			c1 := f1.InstalledHooks().(*Cache)
			if c1.Dirty().Len() == 0 {
				t.Error("cached write must be journalled as dirty")
			}
			c1.Crash()
			if rg.fs.TotalBytesWritten() != 0 {
				t.Error("nothing must have reached the global file before the crash")
			}
			// Session 2: reopen with recovery enabled.
			f2, err := adio.OpenColl(r, adio.OpenArgs{
				Comm: rg.w.Comm(), Registry: rg.reg, Path: "global.dat", Create: true,
				Info: mpi.Info{
					adio.HintCBWrite: "enable", HintCache: "enable",
					HintCacheRecovery: "enable",
				},
				Hooks: rg.env.HooksFactory(),
			})
			if err != nil {
				t.Error(err)
				return
			}
			c2 := f2.InstalledHooks().(*Cache)
			if c2 == nil {
				t.Error("recovery open fell back to the standard path")
				return
			}
			recovered = c2.Stats.RecoveredBytes
			if c2.Stats.RecoveredExtents != 1 || c2.Stats.RecoveredBytes != size {
				t.Errorf("recovered %d extents / %d bytes, want 1 / %d",
					c2.Stats.RecoveredExtents, c2.Stats.RecoveredBytes, size)
			}
			if c2.Dirty().Len() != 0 {
				t.Error("journal must be clean after recovery")
			}
			if err := f2.Close(); err != nil {
				t.Error(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		meta := rg.fs.Lookup("global.dat")
		if meta == nil {
			t.Fatal("global file missing after recovery")
		}
		got := make([]byte, size)
		meta.Store().ReadAt(got, 256<<10)
		if !bytes.Equal(got, data) {
			t.Fatal("recovered payload does not match the crashed session's writes")
		}
		return rg.k.Now(), recovered
	}
	w1a, r1a := run(1)
	w1b, r1b := run(1)
	if w1a != w1b || r1a != r1b {
		t.Fatalf("same seed must replay identically: %v/%d vs %v/%d", w1a, r1a, w1b, r1b)
	}
	if _, r2 := run(7); r2 != r1a {
		t.Fatalf("recovery must not depend on the seed: %d vs %d bytes", r2, r1a)
	}
}

func TestCrashDuringFlushWaitDoesNotDeadlock(t *testing.T) {
	// Found by the chaos explorer (fixture crash_flush_deadlock): the node
	// crashes while the rank is already parked in Flush waiting on a sync
	// request. The dying sync thread must complete abandoned requests with
	// ErrCrashed so the waiter wakes — before the fix it dropped them
	// silently and the whole run deadlocked.
	rg := newRig(t, 1, 1, store.NewNull)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "coherent", HintFlushFlag: "flush_immediate",
		})
		// Two extents: one will be mid-sync at crash time, one still queued.
		if err := f.WriteContig(nil, 0, 32<<20); err != nil {
			t.Error(err)
		}
		if err := f.WriteContig(nil, 32<<20, 32<<20); err != nil {
			t.Error(err)
		}
		c := f.InstalledHooks().(*Cache)
		// 64 MB of sync takes >100 ms; the crash lands mid-flush-wait.
		rg.k.After(5*sim.Millisecond, c.Crash)
		if err := f.Flush(); !errors.Is(err, ErrCrashed) {
			t.Errorf("flush interrupted by crash: got %v, want ErrCrashed", err)
		}
		if held := rg.fs.Locks.HeldLocks("global.dat"); held != 0 {
			t.Errorf("crash mid-flush leaked %d coherent locks", held)
		}
		if c.Outstanding() != 0 {
			t.Errorf("%d sync requests left incomplete after crash", c.Outstanding())
		}
	})
	// A dropped request would park the rank forever and surface here as a
	// kernel deadlock error.
	if err != nil {
		t.Fatal(err)
	}
}

func TestCrashDuringCacheWriteDoesNotStrandRequest(t *testing.T) {
	// Found by the chaos explorer: the crash fires while the rank is blocked
	// inside the cache-device write. The write must not post a sync request
	// to the dead sync thread (nothing would ever complete it); it returns
	// ErrCrashed with the coherent lock released, and the bytes stay
	// journalled for recovery.
	rg := newRig(t, 1, 1, store.NewNull)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "coherent", HintFlushFlag: "flush_onclose",
		})
		c := f.InstalledHooks().(*Cache)
		// A 32 MB cache write blocks the rank for ~64 ms; crash at 5 ms.
		rg.k.After(5*sim.Millisecond, c.Crash)
		if err := f.WriteContig(nil, 0, 32<<20); !errors.Is(err, ErrCrashed) {
			t.Errorf("write spanning the crash: got %v, want ErrCrashed", err)
		}
		if held := rg.fs.Locks.HeldLocks("global.dat"); held != 0 {
			t.Errorf("crashed write leaked %d locks", held)
		}
		if c.Outstanding() != 0 {
			t.Errorf("%d sync requests stranded on the dead sync thread", c.Outstanding())
		}
		if c.Dirty().Len() == 0 {
			t.Error("bytes that reached the cache must stay journalled for recovery")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFaultDeviceDiesDuringReplay(t *testing.T) {
	// Satellite audit: SSD failure *during* journal replay (double fault —
	// the node already crashed once, and its device dies while the next
	// open is replaying the journal). The open must fall back to the
	// standard path with no lock held and no sync thread left behind, and
	// the journal must survive for yet another attempt.
	rg := newRig(t, 1, 1, store.NewNull)
	err := rg.w.Run(func(r *mpi.Rank) {
		f1 := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "coherent", HintFlushFlag: "flush_onclose",
		})
		if err := f1.WriteContig(nil, 0, 1<<20); err != nil {
			t.Error(err)
		}
		f1.InstalledHooks().(*Cache).Crash()
		r.Compute(sim.Millisecond)

		// The device dies; the recovery open's first cache read hits ErrIO.
		rg.nvms[0].Device().SetFailed(true)
		f2, err := adio.OpenColl(r, adio.OpenArgs{
			Comm: rg.w.Comm(), Registry: rg.reg, Path: "global.dat", Create: true,
			Info: mpi.Info{
				adio.HintCBWrite: "enable", HintCache: "coherent", HintCacheRecovery: "enable",
			},
			Hooks: rg.env.HooksFactory(),
		})
		if err != nil {
			t.Errorf("open must fall back, not fail: %v", err)
			return
		}
		if !f2.Stats.CacheFallback {
			t.Error("failed recovery must revert to the standard path")
		}
		if f2.InstalledHooks() != nil {
			t.Error("no cache hooks must be installed after fallback")
		}
		if held := rg.fs.Locks.HeldLocks("global.dat"); held != 0 {
			t.Errorf("aborted replay leaked %d locks", held)
		}
		if len(rg.env.JournalKeys()) == 0 {
			t.Error("journal must survive the failed replay for a later attempt")
		}
		// The fallback file still works end to end.
		if err := f2.WriteContig(nil, 2<<20, 1<<20); err != nil {
			t.Errorf("write on fallback path: %v", err)
		}
		if err := f2.Close(); err != nil {
			t.Errorf("close on fallback path: %v", err)
		}
	})
	// A leaked sync-thread proc would park forever and fail the run here.
	if err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFaultENOSPCDuringReplayStillRecovers(t *testing.T) {
	// The ENOSPC flavour of the double fault is benign by design: journal
	// replay only *reads* the cache file, and a full device still serves
	// reads. Recovery must succeed; only later cache writes fall through.
	rg := newRigSeed(t, 1, 1, 1, store.NewMem)
	err := rg.w.Run(func(r *mpi.Rank) {
		f1 := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "enable", HintFlushFlag: "flush_onclose",
		})
		if err := f1.WriteContig(nil, 0, 1<<20); err != nil {
			t.Error(err)
		}
		f1.InstalledHooks().(*Cache).Crash()
		r.Compute(sim.Millisecond)

		rg.nvms[0].Device().SetNoSpace(true)
		f2, err := adio.OpenColl(r, adio.OpenArgs{
			Comm: rg.w.Comm(), Registry: rg.reg, Path: "global.dat", Create: true,
			Info: mpi.Info{
				adio.HintCBWrite: "enable", HintCache: "enable", HintCacheRecovery: "enable",
			},
			Hooks: rg.env.HooksFactory(),
		})
		if err != nil {
			t.Error(err)
			return
		}
		c2, _ := f2.InstalledHooks().(*Cache)
		if c2 == nil {
			t.Error("ENOSPC must not abort recovery (reads are unaffected)")
			return
		}
		if c2.Stats.RecoveredBytes != 1<<20 {
			t.Errorf("recovered %d bytes, want %d", c2.Stats.RecoveredBytes, 1<<20)
		}
		// New writes can't allocate cache space: they must write through.
		if err := f2.WriteContig(nil, 2<<20, 64<<10); err != nil {
			t.Errorf("write-through on full device: %v", err)
		}
		if c2.Stats.WriteThroughs == 0 {
			t.Error("full device must be visible as a write-through")
		}
		if err := f2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rg.fs.TotalBytesWritten() < 1<<20 {
		t.Fatalf("global FS got %d bytes, want the recovered 1 MB", rg.fs.TotalBytesWritten())
	}
}

func TestRecoveryReplayIsIdempotent(t *testing.T) {
	// Replaying the same journal twice must leave the global file
	// byte-identical to replaying it once — the idempotence oracle the
	// chaos harness is seeded with. The second replay models a crash that
	// interrupted journal trimming after the data had already reached the
	// global file.
	const size = 1 << 20
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i*13%251 + 1)
	}
	rg := newRigSeed(t, 1, 1, 1, store.NewMem)
	var afterOnce, afterTwice []byte
	err := rg.w.Run(func(r *mpi.Rank) {
		// Session 1: cache the write, crash before any sync.
		f1 := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "enable", HintFlushFlag: "flush_onclose",
		})
		if err := f1.WriteContig(data, 128<<10, size); err != nil {
			t.Error(err)
		}
		f1.InstalledHooks().(*Cache).Crash()
		r.Compute(sim.Millisecond)

		keys := rg.env.JournalKeys()
		if len(keys) != 1 {
			t.Errorf("journal keys = %v, want exactly one", keys)
			return
		}
		journalled := rg.env.JournalExtents(keys[0])

		// Session 2: first recovery. Keep the cache file (discard=disable)
		// so the re-staged journal has payload to replay from.
		recInfo := mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "enable",
			HintCacheRecovery: "enable", HintDiscardFlag: "disable",
		}
		open := func() *adio.File {
			f, err := adio.OpenColl(r, adio.OpenArgs{
				Comm: rg.w.Comm(), Registry: rg.reg, Path: "global.dat", Create: true,
				Info: recInfo, Hooks: rg.env.HooksFactory(),
			})
			if err != nil {
				t.Fatal(err)
			}
			return f
		}
		snapshot := func() []byte {
			meta := rg.fs.Lookup("global.dat")
			if meta == nil {
				t.Fatal("global file missing")
			}
			buf := make([]byte, size)
			meta.Store().ReadAt(buf, 128<<10)
			return buf
		}

		f2 := open()
		if c := f2.InstalledHooks().(*Cache); c.Stats.RecoveredBytes != size {
			t.Errorf("first replay recovered %d bytes, want %d", c.Stats.RecoveredBytes, size)
		}
		if err := f2.Close(); err != nil {
			t.Error(err)
		}
		afterOnce = snapshot()

		// The journal's clearing is "lost": re-stage it and recover again.
		rg.env.RestoreJournal(keys[0], journalled)
		f3 := open()
		if c := f3.InstalledHooks().(*Cache); c.Stats.RecoveredBytes != size {
			t.Errorf("second replay recovered %d bytes, want %d", c.Stats.RecoveredBytes, size)
		}
		if err := f3.Close(); err != nil {
			t.Error(err)
		}
		afterTwice = snapshot()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(afterOnce, data) {
		t.Fatal("first recovery did not reproduce the crashed session's bytes")
	}
	if !bytes.Equal(afterOnce, afterTwice) {
		t.Fatal("recover-twice differs from recover-once: replay is not idempotent")
	}
}

func TestRetryHintsConfigureBudget(t *testing.T) {
	// A zero retry limit fails fast: one attempt, no retries.
	rg := newRig(t, 1, 1, store.NewNull)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "enable", HintFlushFlag: "flush_immediate",
			HintSyncRetryLimit: "0", HintSyncRetryBackoff: "1ms",
		})
		if err := f.WriteContig(nil, 0, 1<<20); err != nil {
			t.Error(err)
		}
		rg.setTargets(true)
		r.Compute(sim.FromSeconds(1))
		rg.setTargets(false)
		c := f.InstalledHooks().(*Cache)
		if err := f.Close(); err == nil {
			t.Error("zero retry budget must fail the sync")
		}
		if c.Stats.SyncRetries != 0 {
			t.Errorf("retry limit 0 must not retry, got %d", c.Stats.SyncRetries)
		}
		if c.Stats.SyncFailures == 0 {
			t.Error("failure must be counted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSyncPartitionRetriesAreBudgetExempt(t *testing.T) {
	// Node 0 is cut off from the storage fabric for 400 ms — ten times the
	// plain-fault retry budget (10+20+40+80 ms). Partition errors are
	// retryable for as long as the partition lasts: the attempt counter
	// freezes, the backoff caps at PartitionBackoffCap, and the sync
	// completes once the fabric heals. No terminal failure, no data loss.
	rg := newRig(t, 2, 1, store.NewNull)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "enable", HintFlushFlag: "flush_immediate",
		})
		if r.ID() != 0 {
			r.Compute(sim.FromSeconds(2))
			if err := f.Close(); err != nil {
				t.Errorf("unpartitioned rank close: %v", err)
			}
			return
		}
		if err := f.WriteContig(nil, 0, 1<<20); err != nil {
			t.Error(err)
		}
		// The first sync chunk spends ~2 ms reading the SSD, so the
		// partition set here lands before its first global-write attempt.
		rg.fab.SetPartition([]int{0}, true)
		rg.k.After(400*sim.Millisecond, func() { rg.fab.SetPartition(nil, false) })
		r.Compute(sim.FromSeconds(2))
		c := f.InstalledHooks().(*Cache)
		if err := f.Close(); err != nil {
			t.Errorf("close after healed partition: %v", err)
		}
		if got := c.Stats.SyncRetries; got <= DefaultRetryLimit {
			t.Errorf("partition retries must exceed the plain-fault budget: got %d, want > %d",
				got, DefaultRetryLimit)
		}
		if c.Stats.SyncFailures != 0 {
			t.Errorf("no terminal failure expected, got %d", c.Stats.SyncFailures)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rg.fs.TotalBytesWritten() < 1<<20 {
		t.Fatalf("global FS got %d bytes, want the full 1 MB", rg.fs.TotalBytesWritten())
	}
}
