// Multi-tenant service mode for the E10 cache: admission control at open,
// backpressure and clean-extent eviction under capacity pressure. The paper
// evaluates one application owning the whole NVM partition; this file
// models a production burst buffer serving several jobs at once. Every
// entry point is gated on Options.Tenancy(), so single-tenant runs execute
// byte-identical control flow.
package core

import (
	"errors"

	"repro/internal/metrics"
	"repro/internal/nvm"
	"repro/internal/sim"
	"repro/internal/trace"
)

// tenantArb returns the arbiter of this rank's NVM device.
func (c *Cache) tenantArb() *nvm.Arbiter { return c.fs.Device().Arbiter() }

// tenantCounter resolves a tenant-labelled cache counter, or nil when
// metrics are off. These are new series — the pre-existing cache_* series
// stay unlabelled so single-tenant metric output is unchanged and the
// chaos trace/metrics cross-check keeps summing a single series.
func (c *Cache) tenantCounter(name string) *metrics.Counter {
	m := c.f.Rank().World().Kernel().Metrics()
	if m == nil {
		return nil
	}
	return m.Counter(name, metrics.L(metrics.KeyLayer, "core"),
		metrics.L("tenant", c.opts.Tenant.Name))
}

// tenantInstant marks a tenant-layer event on this rank's trace timeline.
// The tenant identity is implied by the rank's track (args are int-only).
func (c *Cache) tenantInstant(name string, args ...trace.Arg) {
	if tr, tk := c.tracer(); tr != nil {
		tr.Instant(tk, "tenant", name, int64(c.f.Rank().Now()), args...)
	}
}

// tenantAdmit registers the tenant's quota with the device arbiter and
// claims its admission reservation. With e10_tenant_admit=reject a denied
// reservation fails the open immediately (adio falls back to the uncached
// path); with queue it polls for headroom — another tenant closing releases
// its reservation — until DefaultAdmitTimeout, then falls back.
func (c *Cache) tenantAdmit() error {
	t := c.opts.Tenant
	if t.Name == "" {
		return nil
	}
	arb := c.tenantArb()
	arb.Register(t.Name, nvm.Quota{Bytes: t.QuotaBytes, Files: t.QuotaFiles})
	err := arb.TryAdmit(t.Name, t.Reserve)
	if err != nil && t.Admit == AdmitQueue {
		p := c.f.Rank().Proc()
		deadline := p.Now() + DefaultAdmitTimeout
		c.tenantInstant("tenant_admit_queued", trace.I("reserve", t.Reserve))
		for err != nil && p.Now() < deadline {
			p.Sleep(PressurePollInterval)
			if c.crashed {
				return ErrCrashed
			}
			err = arb.TryAdmit(t.Name, t.Reserve)
		}
	}
	if err != nil {
		c.Stats.AdmitRejects++
		if ctr := c.tenantCounter("cache_tenant_admit_rejects_total"); ctr != nil {
			ctr.Inc()
		}
		c.tenantInstant("tenant_admit_reject", trace.I("reserve", t.Reserve))
		return err
	}
	c.tenantAttached = true
	c.unregEvict = arb.RegisterEvictor(c.evictClean)
	c.tenantInstant("tenant_admitted", trace.I("reserve", t.Reserve))
	return nil
}

// tenantWithdraw undoes tenantAdmit at close (or on a failed open after
// admission). Crash never withdraws: the crashed session's reservation and
// cache bytes stay charged, which is exactly what a retained-for-recovery
// cache file costs the device.
func (c *Cache) tenantWithdraw() {
	if !c.tenantAttached {
		return
	}
	c.tenantAttached = false
	if c.unregEvict != nil {
		c.unregEvict()
		c.unregEvict = nil
	}
	c.tenantArb().Withdraw(c.opts.Tenant.Name)
}

// tenantDetachEvictor stops serving eviction requests (used by Crash: a
// dead node cannot punch extents, and its journal must stay intact).
func (c *Cache) tenantDetachEvictor() {
	if c.unregEvict != nil {
		c.unregEvict()
		c.unregEvict = nil
	}
}

// pressureErr reports whether err is capacity pressure (quota or space) —
// recoverable by eviction, waiting, or writing through — as opposed to a
// dead device.
func pressureErr(err error) bool {
	return errors.Is(err, nvm.ErrQuota) || errors.Is(err, nvm.ErrNoSpace)
}

// allocCache allocates cache space for one write. The single-tenant path
// is exactly Fallocate. Under tenancy, capacity pressure engages the
// backpressure ladder: reclaim clean extents (own tenants' evictors run
// via the arbiter), then — policy=block — poll for capacity until
// BlockTimeout before giving up (the caller degrades that write to
// write-through), or give up immediately under policy=writethrough.
// Returns ErrCrashed if the node dies while blocked.
func (c *Cache) allocCache(p *sim.Proc, off, size int64) error {
	err := c.cfile.Fallocate(p, off, size)
	t := c.opts.Tenant
	if err == nil || t.Name == "" || !pressureErr(err) {
		return err
	}
	arb := c.tenantArb()
	if arb.Reclaim(t.Name, size) > 0 {
		if err = c.cfile.Fallocate(p, off, size); err == nil || !pressureErr(err) {
			return err
		}
	}
	if t.Policy == PolicyWriteThrough {
		c.notePressureDegrade(off, size)
		return err
	}
	start := p.Now()
	deadline := start + t.BlockTimeout
	c.Stats.QuotaStalls++
	if ctr := c.tenantCounter("cache_tenant_stalls_total"); ctr != nil {
		ctr.Inc()
	}
	c.tenantInstant("tenant_stall", trace.I("off", off), trace.I("bytes", size))
	for {
		p.Sleep(PressurePollInterval)
		if c.crashed {
			c.Stats.QuotaStallTime += p.Now() - start
			return ErrCrashed
		}
		arb.Reclaim(t.Name, size)
		err = c.cfile.Fallocate(p, off, size)
		if err == nil || !pressureErr(err) {
			c.Stats.QuotaStallTime += p.Now() - start
			return err
		}
		if p.Now() >= deadline {
			c.Stats.QuotaStallTime += p.Now() - start
			c.notePressureDegrade(off, size)
			return err
		}
	}
}

// notePressureDegrade accounts one write degraded to write-through by
// capacity pressure (the job continues; only its bandwidth suffers).
func (c *Cache) notePressureDegrade(off, size int64) {
	c.Stats.QuotaWriteThroughs++
	if ctr := c.tenantCounter("cache_tenant_writethrough_total"); ctr != nil {
		ctr.Inc()
	}
	c.tenantInstant("tenant_writethrough", trace.I("off", off), trace.I("bytes", size))
}

// evictClean punches clean extents — allocated but no longer dirty, i.e.
// already durable in the global file — out of this rank's cache file,
// freeing up to need bytes for whichever tenant is under pressure. Dirty
// extents are never touched: the journal trims an extent only after its
// chunks reach the global file, so (allocated − dirty) is always safe to
// drop. Reads of punched ranges fall through to the global file.
func (c *Cache) evictClean(need int64) int64 {
	if c.cfile == nil || c.crashed || c.degraded {
		return 0
	}
	var freed int64
	for _, a := range c.cfile.AllocatedExtents() {
		for _, g := range c.dirty.Gaps(a) {
			freed += c.cfile.Punch(g)
			if freed >= need {
				break
			}
		}
		if freed >= need {
			break
		}
	}
	if freed > 0 {
		c.Stats.EvictedBytes += freed
		if ctr := c.tenantCounter("cache_tenant_evicted_bytes_total"); ctr != nil {
			ctr.Add(freed)
		}
		c.tenantInstant("tenant_evict", trace.I("bytes", freed))
	}
	return freed
}

// TenantName returns the owning tenant ("" in single-tenant mode).
func (c *Cache) TenantName() string { return c.opts.Tenant.Name }
