package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/extent"
)

// nodeKeyPrefix is the journal-registry key prefix of one node's caches
// (journalKey formats keys as "n<node>:<cache path>").
func nodeKeyPrefix(node int) string { return fmt.Sprintf("n%d:", node) }

// The dirty-extent journal's at-rest format: fixed-size commit records,
// each length-prefixed and checksummed, with a monotonic commit sequence.
// The trailing CRC is the atomic commit point — a record is committed iff
// it is complete and its CRC matches, so a torn append (crash mid-write)
// truncates replay to the last valid record instead of poisoning it.
//
//	[0]    magic (0xE1)
//	[1]    op: 1 = add (extent dirtied), 2 = trim (extent synced)
//	[2:4]  payload length (little-endian; always 24)
//	[4:12] commit sequence (monotonic per journal)
//	[12:20] extent offset
//	[20:28] extent length
//	[28:32] CRC-32C of bytes [0:28]
const (
	journalMagic   = 0xE1
	journalPayload = 24
	journalRecSize = 4 + journalPayload + 4

	opAdd  = 1
	opTrim = 2
)

var journalCRC = crc32.MakeTable(crc32.Castagnoli)

type journalRec struct {
	seq uint64
	op  byte
	ext extent.Extent
}

// Journal is one cache file's dirty-extent journal: the logical record
// list, its physical at-rest encoding (img — the bytes that would sit on
// the NVM device, and the only thing corruption faults touch), and the
// folded extent set the cache layer reads. It outlives the open, like the
// cache file itself.
type Journal struct {
	recs []journalRec
	img  []byte
	seq  uint64
	set  extent.Set
}

func (j *Journal) append(op byte, e extent.Extent) {
	j.seq++
	j.recs = append(j.recs, journalRec{seq: j.seq, op: op, ext: e})
	var frame [journalRecSize]byte
	frame[0] = journalMagic
	frame[1] = op
	binary.LittleEndian.PutUint16(frame[2:4], journalPayload)
	binary.LittleEndian.PutUint64(frame[4:12], j.seq)
	binary.LittleEndian.PutUint64(frame[12:20], uint64(e.Off))
	binary.LittleEndian.PutUint64(frame[20:28], uint64(e.Len))
	binary.LittleEndian.PutUint32(frame[28:32], crc32.Checksum(frame[:28], journalCRC))
	j.img = append(j.img, frame[:]...)
}

// Add journals e as dirty (a committed cache write).
func (j *Journal) Add(e extent.Extent) {
	if e.Empty() {
		return
	}
	j.append(opAdd, e)
	j.set.Add(e)
}

// Remove journals a trim of e (the bytes reached the global file).
func (j *Journal) Remove(e extent.Extent) {
	if e.Empty() || !j.set.Overlaps(e) {
		return
	}
	j.append(opTrim, e)
	j.set.Remove(e)
}

// Len returns the number of dirty extents in the folded view.
func (j *Journal) Len() int { return j.set.Len() }

// TotalBytes returns the folded dirty byte count.
func (j *Journal) TotalBytes() int64 { return j.set.TotalBytes() }

// Extents returns the folded dirty extents.
func (j *Journal) Extents() []extent.Extent { return j.set.Extents() }

// Covers reports whether the folded view covers e entirely.
func (j *Journal) Covers(e extent.Extent) bool { return j.set.Covers(e) }

// Gaps returns the subranges of e not covered by the folded view.
func (j *Journal) Gaps(e extent.Extent) []extent.Extent { return j.set.Gaps(e) }

// Seq returns the last committed sequence number.
func (j *Journal) Seq() uint64 { return j.seq }

// Tear simulates a crash mid-append: the tail of the image — the last
// record's commit CRC plus one payload byte — is lost, leaving a prefix
// of the record persisted. No-op on an empty journal.
func (j *Journal) Tear() {
	const lost = 5
	if len(j.img) < lost {
		return
	}
	j.img = j.img[:len(j.img)-lost]
}

// Rot flips one image byte (bit-rot at rest). The offset wraps so any
// non-negative off hits a real byte. No-op on an empty journal.
func (j *Journal) Rot(off int) {
	if len(j.img) == 0 || off < 0 {
		return
	}
	j.img[off%len(j.img)] ^= 0xFF
}

// Scrub decodes the at-rest image and truncates the journal to its
// longest valid record prefix — the write-ahead-log read path. It returns
// the dirty ranges lost to the truncation (covered by the full record
// list but not by the surviving prefix); the caller quarantines those. A
// pristine image returns nil without reshaping anything, so scrubbing a
// clean journal costs nothing and perturbs nothing.
//
// Dropped trim records only widen the surviving dirty set, which makes
// replay strictly more conservative — replaying an already-synced extent
// is idempotent. Dropped add records are the dangerous case, and exactly
// those ranges are reported as lost.
func (j *Journal) Scrub() []extent.Extent {
	valid := 0
	for off := 0; off+journalRecSize <= len(j.img); off += journalRecSize {
		frame := j.img[off : off+journalRecSize]
		if frame[0] != journalMagic || (frame[1] != opAdd && frame[1] != opTrim) ||
			binary.LittleEndian.Uint16(frame[2:4]) != journalPayload ||
			binary.LittleEndian.Uint32(frame[28:32]) != crc32.Checksum(frame[:28], journalCRC) {
			break
		}
		valid++
	}
	if valid >= len(j.recs) && len(j.img) == len(j.recs)*journalRecSize {
		return nil
	}
	var kept extent.Set
	for _, r := range j.recs[:valid] {
		if r.op == opAdd {
			kept.Add(r.ext)
		} else {
			kept.Remove(r.ext)
		}
	}
	var lost []extent.Extent
	for _, e := range j.set.Extents() {
		lost = append(lost, kept.Gaps(e)...)
	}
	j.recs = j.recs[:valid]
	j.img = j.img[:valid*journalRecSize]
	j.set = kept
	return lost
}

// journalsForNode returns node n's retained journal keys, sorted for
// deterministic fault application.
func (e *Env) journalsForNode(node int) []string {
	prefix := nodeKeyPrefix(node)
	var keys []string
	for k := range e.journals {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// TearNode tears the in-flight journal append of every journal on node:
// the fault.TornWrite hook. Deterministic (sorted key order).
func (e *Env) TearNode(node int) {
	for _, k := range e.journalsForNode(node) {
		e.journals[k].Tear()
	}
}

// RotNode flips each at-rest journal-image byte on node with probability
// rate, drawing from rng: the journal half of the fault.BitRot hook.
// Deterministic given the rng state (sorted key order).
func (e *Env) RotNode(node int, rng *rand.Rand, rate float64) {
	for _, k := range e.journalsForNode(node) {
		img := e.journals[k].img
		for i := range img {
			if rng.Float64() < rate {
				img[i] ^= 0xFF
			}
		}
	}
}
