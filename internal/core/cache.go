package core

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/adio"
	"repro/internal/extent"
	"repro/internal/metrics"
	"repro/internal/mpe"
	"repro/internal/mpi"
	"repro/internal/nvm"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/trace"
)

// ErrCrashed is returned by cache operations on a crashed node; the cache
// file and its journal are retained for recovery at the next open.
var ErrCrashed = errors.New("core: node crashed; cache file retained for recovery")

// Env wires the cache layer into a simulated cluster: where each node's
// local file system lives and which lock manager guards the global file
// (for e10_cache=coherent).
type Env struct {
	// LocalFS returns the node-local cache file system, or nil when the
	// node has no usable local storage (the open then falls back to the
	// standard path, as the paper requires).
	LocalFS func(node int) *nvm.FS
	// Locks is the global file's byte-range lock manager, used by the
	// coherent mode (ADIOI_WRITE_LOCK / ADIOI_UNLOCK).
	Locks *pfs.LockManager
	// SkipSync disables the background synchronisation entirely. This is
	// the evaluation's "TBW Cache Enable" case: writing to the cache
	// without flushing, measuring the theoretical bandwidth with the sync
	// cost fully hidden.
	SkipSync bool

	// journals maps a cache file (node + cache path) to its dirty-extent
	// journal: the extents written to the cache but not yet synced to the
	// global file, kept as checksummed commit records (see journal.go).
	// Like the cache file itself, the journal outlives the open (it models
	// a journal kept on the NVM device), which is what makes crash
	// recovery possible.
	journals map[string]*Journal

	// scrubLost is the cumulative scrub-loss ledger: every range a
	// recovery scrub ever condemned (torn/rotted journal records, cache
	// chunks failing their checksum), per journal key. Unlike the live
	// Cache's quarantine set it survives a recovery open that itself dies
	// mid-replay, so external oracles can always distinguish detected
	// corruption from silent loss.
	scrubLost map[string]*extent.Set
}

// journal returns (creating on demand) the dirty-extent journal for key.
func (e *Env) journal(key string) *Journal {
	if e.journals == nil {
		e.journals = make(map[string]*Journal)
	}
	s, ok := e.journals[key]
	if !ok {
		s = &Journal{}
		e.journals[key] = s
	}
	return s
}

// dropJournal discards the journal for key (the cache file was removed).
func (e *Env) dropJournal(key string) {
	delete(e.journals, key)
}

// noteScrubLoss records ranges a recovery scrub condemned under key.
func (e *Env) noteScrubLoss(key string, exts []extent.Extent) {
	if len(exts) == 0 {
		return
	}
	if e.scrubLost == nil {
		e.scrubLost = make(map[string]*extent.Set)
	}
	s, ok := e.scrubLost[key]
	if !ok {
		s = &extent.Set{}
		e.scrubLost[key] = s
	}
	for _, x := range exts {
		s.Add(x)
	}
}

// HooksFactory returns the adio hook factory that installs a cache on
// files opened with e10_cache set to enable or coherent.
func (e *Env) HooksFactory() adio.HooksFactory {
	return func(f *adio.File) (adio.Hooks, error) {
		opts, err := ParseOptions(f.Hints().Extra)
		if err != nil {
			return nil, err
		}
		if !opts.Enabled() {
			return nil, nil
		}
		return newCache(e, f, opts)
	}
}

// Stats counts cache-layer activity on one rank.
type Stats struct {
	CacheWrites      int64 // writes absorbed by the cache
	CacheBytes       int64 // bytes absorbed by the cache
	SyncedBytes      int64 // bytes drained to the global file system
	SyncRequests     int64 // sync requests created
	WriteThroughs    int64 // writes that bypassed a full cache
	FlushWaits       int64 // flush/close operations that had to wait
	FlushWaitTime    sim.Time
	CoherentLockHeld int64 // extents locked by coherent mode
	CacheReads       int64 // reads served from the local cache
	Backoffs         int64 // adaptive-flush congestion backoffs
	SyncRetries      int64 // failed sync chunks retried after backoff
	SyncFailures     int64 // sync requests completed with a terminal error
	RecoveredExtents int64 // journal extents replayed at open
	RecoveredBytes   int64 // bytes replayed from the cache at open
	ScrubbedExtents  int64 // journal extents checksum-verified before replay
	CorruptExtents   int64 // extents failing scrub, quarantined instead of replayed
	QuarantinedBytes int64 // bytes quarantined by scrub (degraded to re-fetch/write-through)
	CacheDegraded    bool  // cache device failed mid-run; writing through

	// Multi-tenant service mode (zero in single-tenant runs).
	QuotaStalls        int64    // writes that blocked on capacity/quota pressure
	QuotaStallTime     sim.Time // total time spent blocked
	QuotaWriteThroughs int64    // writes degraded to write-through by pressure
	EvictedBytes       int64    // clean cache bytes punched out under pressure
	AdmitRejects       int64    // admissions denied (session fell back to uncached)
}

// syncReq is one pending synchronisation request: move ext from the cache
// file to the global file, then complete the generalized request (and drop
// the coherent-mode lock, if one is held).
type syncReq struct {
	ext  extent.Extent
	greq *mpi.Request
	lock *pfs.Lock
	aid  uint64 // trace async-span id, 0 when tracing is off
}

// Cache is the per-rank cache state attached to an open ADIO file. It
// implements adio.Hooks.
type Cache struct {
	env   *Env
	f     *adio.File
	opts  Options
	fs    *nvm.FS
	cfile *nvm.File
	name  string

	// dirty is the cache file's persistent journal: cached-but-unsynced
	// extents. Shared with the Env registry so it survives close/crash.
	dirty    *Journal
	degraded bool // cache device failed mid-run; all writes go through
	crashed  bool

	// quarantine holds ranges that failed the recovery scrub: never
	// replayed, never served from the cache. A fresh write over a
	// quarantined range goes straight to the global file (write-through)
	// and lifts the quarantine; reads re-fetch from the global file.
	quarantine extent.Set
	// recovered accumulates the ranges this cache replayed to the global
	// file (oracles compare them against a clean run's bytes).
	recovered extent.Set

	// Multi-tenant service mode (see tenant.go; inert when the e10_tenant
	// hint is absent).
	tenantAttached bool   // admission granted and session counted
	unregEvict     func() // removes this cache's clean-extent evictor

	syncer      *syncThread
	pending     []*syncReq // created but not yet submitted (flush_onclose)
	outstanding []*syncReq // submitted or pending; waited on at flush

	// Metric handles, registered lazily on first use. The series carry only
	// the layer label, so every rank's cache feeds the same aggregate — the
	// per-run totals Equation 1 is stated in.
	mreg        bool
	mWrites     *metrics.Counter
	mBytes      *metrics.Counter
	mThrough    *metrics.Counter
	mDevErr     *metrics.Counter
	mSyncReqs   *metrics.Counter
	mSynced     *metrics.Counter
	mRetries    *metrics.Counter
	mFailures   *metrics.Counter
	mBackoffs   *metrics.Counter
	mFlushWaits *metrics.Counter
	mNotHidden  *metrics.Counter
	mReplays    *metrics.Counter
	mRecovered  *metrics.Counter
	mExtentNs   *metrics.Histogram
	mChunkNs    *metrics.Histogram

	Stats Stats
}

// metricsOn resolves (and caches) the cache's metric handles; it returns
// false when metrics are disabled.
func (c *Cache) metricsOn() bool {
	m := c.f.Rank().World().Kernel().Metrics()
	if m == nil {
		return false
	}
	if !c.mreg {
		layer := metrics.L(metrics.KeyLayer, "core")
		c.mWrites = m.Counter("cache_writes_total", layer)
		c.mBytes = m.Counter("cache_bytes_total", layer)
		c.mThrough = m.Counter("cache_write_through_total", layer)
		c.mDevErr = m.Counter("cache_device_errors_total", layer)
		c.mSyncReqs = m.Counter("cache_sync_reqs_total", layer)
		c.mSynced = m.Counter("cache_synced_bytes_total", layer)
		c.mRetries = m.Counter("cache_sync_retries_total", layer)
		c.mFailures = m.Counter("cache_sync_failures_total", layer)
		c.mBackoffs = m.Counter("cache_adaptive_backoffs_total", layer)
		c.mFlushWaits = m.Counter("cache_flush_waits_total", layer)
		c.mNotHidden = m.Counter("not_hidden_sync_ns_total", layer)
		c.mReplays = m.Counter("cache_journal_replays_total", layer)
		c.mRecovered = m.Counter("cache_recovered_bytes_total", layer)
		c.mExtentNs = m.Histogram("cache_sync_extent_ns", layer)
		c.mChunkNs = m.Histogram("cache_sync_chunk_ns", layer)
		c.mreg = true
	}
	return true
}

var _ adio.Hooks = (*Cache)(nil)

// newCache opens the cache file (ADIOI_GEN_OpenColl extension). An error
// here makes adio revert to the standard path.
func newCache(env *Env, f *adio.File, opts Options) (*Cache, error) {
	if env.LocalFS == nil {
		return nil, errors.New("core: no local file system provider")
	}
	fs := env.LocalFS(f.Rank().Node().ID())
	if fs == nil {
		return nil, fmt.Errorf("core: node %d has no local cache storage", f.Rank().Node().ID())
	}
	c := &Cache{env: env, f: f, opts: opts, fs: fs}
	c.name = fmt.Sprintf("%s/%s.cache.r%d", opts.Path, f.Path(), f.Rank().ID())
	return c, nil
}

// tracer returns the run's tracer (nil when tracing is disabled) and this
// rank's timeline.
func (c *Cache) tracer() (*trace.Tracer, trace.TrackID) {
	tr := c.f.Rank().World().Kernel().Tracer()
	if tr == nil {
		return nil, trace.NoTrack
	}
	return tr, c.f.Rank().TraceTrack(tr)
}

// journalKey identifies this cache file in the Env's journal registry.
func (c *Cache) journalKey() string {
	return fmt.Sprintf("n%d:%s", c.f.Rank().Node().ID(), c.name)
}

// AtOpenColl implements adio.Hooks: create the cache file, replay any
// retained journal from a previous crashed session (e10_cache_recovery),
// and start the sync thread.
func (c *Cache) AtOpenColl(f *adio.File) error {
	// Multi-tenant admission first: a tenant whose reservation cannot be
	// met never creates a cache file (the open reverts to the standard
	// path). No-op in single-tenant mode.
	if err := c.tenantAdmit(); err != nil {
		return err
	}
	cf, err := c.fs.OpenTenant(c.name, c.opts.Tenant.Name, true)
	if err != nil {
		c.tenantWithdraw()
		return err
	}
	c.cfile = cf
	c.dirty = c.env.journal(c.journalKey())
	if c.opts.Recover {
		c.scrub(f)
	}
	if c.opts.Recover && c.dirty.Len() > 0 {
		tr, tk := c.tracer()
		tr.Instant(tk, "cache", "journal_replay", int64(f.Rank().Now()),
			trace.I("extents", int64(c.dirty.Len())), trace.I("bytes", c.dirty.TotalBytes()))
		rsp := tr.Begin(tk, "cache", "recovery", int64(f.Rank().Now()))
		if err := c.recover(f); err != nil {
			// The cache file and journal stay behind for a later attempt;
			// this open reverts to the standard path.
			c.tenantWithdraw()
			return fmt.Errorf("core: cache recovery: %w", err)
		}
		rsp.End(int64(f.Rank().Now()), trace.I("bytes", c.Stats.RecoveredBytes))
		if c.metricsOn() {
			c.mReplays.Inc()
			c.mRecovered.Add(c.Stats.RecoveredBytes)
		}
	}
	if !c.env.SkipSync {
		c.syncer = startSyncThread(c)
	}
	return nil
}

// scrub verifies the retained journal before replay: first the journal's
// own at-rest image (a torn append or rotted record truncates the record
// list to its last valid prefix — the lost dirty ranges are quarantined),
// then every surviving journaled extent against the cache store's
// checksums (corrupt subranges are quarantined instead of replayed).
// Quarantined ranges degrade to re-fetch/write-through; they are never
// silently synced to the global file. Pure bookkeeping: no device time,
// and on a clean journal no trace events or metric series either.
func (c *Cache) scrub(f *adio.File) {
	lost := c.dirty.Scrub()
	if integ, ok := c.cfile.Store().(store.Integrity); ok {
		for _, e := range c.dirty.Extents() {
			c.Stats.ScrubbedExtents++
			lost = append(lost, integ.VerifyExtent(e)...)
		}
	}
	c.condemn(f, lost)
}

// condemn quarantines ranges an integrity check caught corrupt: they leave
// the dirty set (never replayed or synced), join the quarantine (degrading
// reads and writes over them), and are charged to the stats, metrics and
// the Env's scrub-loss ledger. No-op on an empty list, so clean paths emit
// nothing.
func (c *Cache) condemn(f *adio.File, lost []extent.Extent) {
	if len(lost) == 0 {
		return
	}
	var qs extent.Set
	for _, e := range lost {
		qs.Add(e)
	}
	var bytes int64
	for _, e := range qs.Extents() {
		c.dirty.Remove(e)
		c.quarantine.Add(e)
		c.Stats.CorruptExtents++
		bytes += e.Len
	}
	c.Stats.QuarantinedBytes += bytes
	c.env.noteScrubLoss(c.journalKey(), qs.Extents())
	if m := f.Rank().World().Kernel().Metrics(); m != nil {
		layer := metrics.L(metrics.KeyLayer, "core")
		m.Counter("cache_corrupt_extents_total", layer).Add(int64(qs.Len()))
		m.Counter("cache_quarantined_bytes_total", layer).Add(bytes)
	}
	if tr, tk := c.tracer(); tr != nil {
		tr.Instant(tk, "cache", "scrub_quarantine", int64(f.Rank().Now()),
			trace.I("extents", int64(qs.Len())), trace.I("bytes", bytes))
	}
}

// recover replays the journal's unsynced extents from the local cache file
// to the global file — the paper's persistence argument (§III): data that
// reached the NVM device survives a node crash and "can be synchronized at
// a later stage". When both the cache and the global file carry real
// payload, every replayed chunk is read back from the global file and
// compared, so recovery is integrity-checked end to end.
func (c *Cache) recover(f *adio.File) error {
	p := f.Rank().Proc()
	bufSize := f.Hints().IndWrBufferSize
	if bufSize <= 0 {
		bufSize = adio.DefaultIndWrBufferSize
	}
	_, cachePayload := c.cfile.Store().(store.PayloadBacked)
	verifier, _ := f.Backend().(interface{ PayloadBacked() bool })
	verify := cachePayload && verifier != nil && verifier.PayloadBacked()
	for _, ext := range c.dirty.Extents() {
		for off := ext.Off; off < ext.End(); off += bufSize {
			// A second crash can land while this node replays the first
			// crash's journal; abort the replay at a chunk boundary so the
			// journal keeps exactly the still-unsynced extents.
			if c.crashed {
				return ErrCrashed
			}
			n := min64(bufSize, ext.End()-off)
			chunk := extent.Extent{Off: off, Len: n}
			buf, err := c.readChunk(p, off, n)
			if err != nil {
				return err
			}
			// Re-verify AFTER the read: bit-rot can land between the
			// up-front scrub and this chunk's read completing (the read
			// consumes device time), and a checksum failure here must
			// quarantine, never propagate rotten bytes to durable storage.
			// Checking post-read closes the race — the verification runs at
			// the same virtual instant the payload was captured.
			good := []extent.Extent{chunk}
			if integ, ok := c.cfile.Store().(store.Integrity); ok {
				if bad := integ.VerifyExtent(chunk); len(bad) != 0 {
					c.condemn(f, bad)
					var bs extent.Set
					for _, b := range bad {
						bs.Add(b)
					}
					good = bs.Gaps(chunk)
				}
			}
			for _, g := range good {
				var gbuf []byte
				if buf != nil {
					gbuf = buf[g.Off-off : g.Off-off+g.Len]
				}
				if err := f.Backend().WriteContig(p, gbuf, g.Off, g.Len); err != nil {
					return err
				}
				if verify && gbuf != nil {
					vbuf := make([]byte, g.Len)
					if err := f.Backend().ReadContig(p, vbuf, g.Off, g.Len); err != nil {
						return err
					}
					if !bytes.Equal(gbuf, vbuf) {
						return fmt.Errorf("core: recovery verification failed at [%d,+%d)", g.Off, g.Len)
					}
				}
				c.dirty.Remove(g)
				c.recovered.Add(g)
				c.Stats.RecoveredBytes += g.Len
			}
		}
		c.Stats.RecoveredExtents++
	}
	return nil
}

// noteCacheError inspects a cache-device error: an I/O error marks the
// device dead for the rest of the run (all further writes go through),
// while ENOSPC stays per-write — space may free up later.
func (c *Cache) noteCacheError(err error) {
	if c.metricsOn() {
		c.mDevErr.Inc()
	}
	if errors.Is(err, nvm.ErrIO) {
		c.degraded = true
		c.Stats.CacheDegraded = true
		if tr, tk := c.tracer(); tr != nil {
			tr.Instant(tk, "cache", "cache_degraded", int64(c.f.Rank().Now()))
		}
	}
}

// noteWriteThrough accounts a write that bypassed the cache.
func (c *Cache) noteWriteThrough(off, size int64) {
	c.Stats.WriteThroughs++
	if c.metricsOn() {
		c.mThrough.Inc()
	}
	if tr, tk := c.tracer(); tr != nil {
		tr.Instant(tk, "cache", "write_through", int64(c.f.Rank().Now()),
			trace.I("off", off), trace.I("bytes", size))
	}
}

// WriteContig implements adio.Hooks: ADIOI_GEN_WriteContig writes through
// cache_fd, allocates cache space with ADIOI_Cache_alloc (fallocate), and
// posts a synchronisation request with an associated MPI_Request handle.
// When the cache partition is full — or the device has failed mid-run —
// the write falls through to the global file system (handled=false).
func (c *Cache) WriteContig(f *adio.File, data []byte, off, size int64) (bool, error) {
	if c.crashed {
		return false, ErrCrashed
	}
	if c.degraded || c.cfile == nil {
		c.noteWriteThrough(off, size)
		return false, nil
	}
	r := f.Rank()
	p := r.Proc()
	e := extent.Extent{Off: off, Len: size}

	// A write over a quarantined range supersedes the corrupt bytes with
	// fresh data: route it straight to the global file and lift the
	// quarantine — the cache copy of that range is untrusted.
	if c.quarantine.Len() > 0 && c.quarantine.Overlaps(e) {
		c.quarantine.Remove(e)
		c.noteWriteThrough(off, size)
		return false, nil
	}

	var lock *pfs.Lock
	if c.opts.Mode == CacheCoherent && c.env.Locks != nil {
		lock = c.env.Locks.Acquire(p, f.Path(), pfs.WriteLock, e)
		c.Stats.CoherentLockHeld++
	}

	// allocCache is Fallocate plus, under tenancy, the backpressure ladder:
	// reclaim clean extents, then block-and-poll up to the tenant's
	// BlockTimeout before surfacing the pressure error.
	if err := c.allocCache(p, off, size); err != nil {
		if lock != nil {
			c.env.Locks.Unlock(lock)
		}
		if errors.Is(err, ErrCrashed) {
			// The node died while the write was blocked on capacity.
			return false, ErrCrashed
		}
		// No space or dead device: let the write go to the global file
		// directly. Quota pressure is not a device error.
		if !errors.Is(err, nvm.ErrQuota) {
			c.noteCacheError(err)
		}
		c.noteWriteThrough(off, size)
		return false, nil
	}
	if err := c.cfile.WriteAt(p, data, off, size); err != nil {
		if lock != nil {
			c.env.Locks.Unlock(lock)
		}
		c.noteCacheError(err)
		c.noteWriteThrough(off, size)
		return false, nil
	}
	c.Stats.CacheWrites++
	c.Stats.CacheBytes += size
	if c.metricsOn() {
		c.mWrites.Inc()
		c.mBytes.Add(size)
	}
	c.dirty.Add(e)
	tr, tk := c.tracer()
	tr.Instant(tk, "cache", "cache_write", int64(r.Now()),
		trace.I("off", off), trace.I("bytes", size))

	// The lock acquisition and the device write both block, so the node may
	// have crashed underneath us. The bytes are in the cache file and the
	// journal (they will be recovered), but there is no sync thread left to
	// complete a request — posting one would park the rank forever at flush.
	if c.crashed {
		if lock != nil {
			c.env.Locks.Unlock(lock)
		}
		return false, ErrCrashed
	}

	if c.env.SkipSync {
		if lock != nil {
			c.env.Locks.Unlock(lock)
		}
		return true, nil
	}
	req := &syncReq{ext: e, greq: r.World().NewGrequest(), lock: lock}
	// The request's lifetime — creation here to Grequest completion on the
	// sync thread — is the window in which sync can hide behind compute;
	// trace it as an async span.
	req.aid = tr.AsyncBegin(tk, "cache", "sync_req", int64(r.Now()),
		trace.I("off", off), trace.I("len", size))
	c.Stats.SyncRequests++
	c.mSyncReqs.Inc()
	c.outstanding = append(c.outstanding, req)
	if c.opts.FlushFlag == FlushOnClose {
		c.pending = append(c.pending, req)
	} else {
		// flush_immediate and flush_adaptive both start sync right away.
		c.syncer.submit(req)
	}
	return true, nil
}

// ReadContig implements adio.ReadHooks (the paper's future-work cache-read
// extension, guarded by the e10_cache_read hint): a read whose extent is
// fully present in this rank's cache file is served from the local SSD
// without touching the global file system. This is always consistent with
// the reading rank's own writes; cross-rank reads still go to the global
// file.
func (c *Cache) ReadContig(f *adio.File, buf []byte, off, size int64) (bool, error) {
	if !c.opts.ReadCache || c.cfile == nil || c.degraded || c.crashed {
		return false, nil
	}
	if buf != nil {
		size = int64(len(buf))
	}
	if !c.cfile.Store().Written().Covers(extent.Extent{Off: off, Len: size}) {
		return false, nil
	}
	// Never serve quarantined bytes from the cache: the read re-fetches
	// from the global file instead.
	if c.quarantine.Len() > 0 && c.quarantine.Overlaps(extent.Extent{Off: off, Len: size}) {
		return false, nil
	}
	if err := c.cfile.ReadAt(f.Rank().Proc(), buf, off, size); err != nil {
		// Device died underneath us: fall through to the global file.
		c.noteCacheError(err)
		return false, nil
	}
	c.Stats.CacheReads++
	return true, nil
}

// AtFlush implements adio.Hooks: ADIOI_GEN_Flush. With flush_immediate it
// waits for previously started sync requests; with flush_onclose it first
// hands all pending requests to the sync thread, then waits. The wait time
// is the not_hidden_sync term of Equation 1 and is recorded as such. A
// request whose extent could not be synced within the retry budget carries
// a terminal error status, which is surfaced here — a failed sync is never
// silent.
func (c *Cache) AtFlush(f *adio.File) error {
	if c.env.SkipSync {
		return nil
	}
	if c.crashed {
		return ErrCrashed
	}
	for _, req := range c.pending {
		c.syncer.submit(req)
	}
	c.pending = nil
	r := f.Rank()
	start := r.Now()
	var errs []error
	for _, req := range c.outstanding {
		r.Wait(req.greq)
		if err := req.greq.Err(); err != nil {
			errs = append(errs, err)
		}
	}
	c.outstanding = nil
	if wait := r.Now() - start; wait > 0 {
		c.Stats.FlushWaits++
		c.Stats.FlushWaitTime += wait
		if c.metricsOn() {
			c.mFlushWaits.Inc()
			c.mNotHidden.Add(int64(wait))
		}
		f.Log().Add(mpe.PhaseNotHiddenSync, wait)
		// This wait IS Equation 1's not_hidden_sync term; give it its own
		// span so a trace shows exactly which flush stalled and for how long.
		if tr, tk := c.tracer(); tr != nil {
			tr.SpanAt(tk, "cache", "not_hidden_sync", int64(start), int64(r.Now()))
		}
	}
	return errors.Join(errs...)
}

// AtClose implements adio.Hooks: ADIO_Close invokes ADIOI_GEN_Flush to
// drain the cache, stops the sync thread, closes the cache file and, when
// e10_cache_discard_flag is enable, removes it to free local space. When
// the flush failed, the cache file holds the only surviving copy of the
// unsynced extents, so it is retained regardless of the discard flag (its
// journal stays with it) for recovery by a later open.
func (c *Cache) AtClose(f *adio.File) error {
	err := c.AtFlush(f)
	if c.syncer != nil {
		c.syncer.stop()
	}
	if err != nil {
		// The retained cache file stays charged to the tenant, but the
		// session itself is over: release the admission reservation.
		c.tenantWithdraw()
		return err
	}
	if c.opts.Discard && c.cfile != nil {
		if rerr := c.fs.Remove(c.name); rerr != nil {
			err = rerr
		} else {
			c.env.dropJournal(c.journalKey())
		}
		c.cfile = nil
	}
	c.tenantWithdraw()
	return err
}

// Crash simulates the rank's node dying: the sync thread stops mid-stream,
// in-flight and pending requests are abandoned, and nothing is cleaned up —
// the cache file and its journal survive on the NVM device, exactly the
// persistence property the paper argues for. Coherent-mode locks held by
// abandoned requests are released, as a lock manager's lease expiry would.
func (c *Cache) Crash() {
	if c.crashed {
		return
	}
	c.crashed = true
	// A dead node cannot serve eviction requests; its reservation and
	// cache bytes deliberately stay charged (retained for recovery).
	c.tenantDetachEvictor()
	for _, req := range c.pending {
		if req.lock != nil {
			c.env.Locks.Unlock(req.lock)
		}
		// Never submitted, so the sync thread cannot complete it; complete
		// it here so any Wait on the handle returns instead of parking
		// forever. (Submitted requests are completed by syncer.crash.)
		req.greq.CompleteWithError(ErrCrashed)
	}
	c.pending = nil
	c.outstanding = nil
	if c.syncer != nil {
		c.syncer.crash()
	}
}

// Crashed reports whether Crash was called.
func (c *Cache) Crashed() bool { return c.crashed }

// Dirty returns the unsynced-extent journal (tests inspect it).
func (c *Cache) Dirty() *Journal { return c.dirty }

// Quarantined returns the ranges the recovery scrub refused to replay
// (still quarantined: not yet superseded by a fresh write).
func (c *Cache) Quarantined() []extent.Extent { return c.quarantine.Extents() }

// Recovered returns the ranges this cache replayed to the global file.
func (c *Cache) Recovered() []extent.Extent { return c.recovered.Extents() }

// CacheFile exposes the underlying cache file (nil after a discarding
// close); tests use it to inspect retained cache contents.
func (c *Cache) CacheFile() *nvm.File { return c.cfile }

// Outstanding returns the number of sync requests not yet completed.
func (c *Cache) Outstanding() int {
	n := 0
	for _, req := range c.outstanding {
		if !req.greq.Done() {
			n++
		}
	}
	return n
}

// syncThread is the background cache-synchronisation agent
// (ADIOI_Sync_thread_start): a dedicated simulated thread that reads data
// back from the cache file into the synchronisation buffer
// (ind_wr_buffer_size bytes at a time) and writes it to the global file,
// then calls MPI_Grequest_complete on the request handle.
type syncThread struct {
	c       *Cache
	k       *sim.Kernel
	queue   []*syncReq
	cond    *sim.Cond
	stopped bool
	crashed bool
	proc    *sim.Proc
	tk      trace.TrackID
}

func startSyncThread(c *Cache) *syncThread {
	k := c.f.Rank().Proc().Kernel()
	st := &syncThread{c: c, k: k, cond: sim.NewCond(k), tk: trace.NoTrack}
	name := fmt.Sprintf("sync.%s.r%d", c.f.Path(), c.f.Rank().ID())
	st.proc = k.Spawn(name, st.run)
	if tr := k.Tracer(); tr != nil {
		st.tk = tr.Track(trace.GroupSync, name)
		st.proc.SetTraceTrack(st.tk)
	}
	return st
}

// submit enqueues a request for background synchronisation.
func (st *syncThread) submit(req *syncReq) {
	st.queue = append(st.queue, req)
	if tr := st.k.Tracer(); tr != nil {
		tr.Counter(st.tk, "sync_queue", int64(st.k.Now()), int64(len(st.queue)))
	}
	st.cond.Signal()
}

// stop terminates the thread once the queue is drained.
func (st *syncThread) stop() {
	st.stopped = true
	st.cond.Signal()
}

// crash kills the thread immediately: queued requests abort (the node is
// gone), their locks are released, and their request handles complete with
// ErrCrashed — a rank already parked in AtFlush waiting on one of them must
// wake and observe the crash, not deadlock the whole run.
func (st *syncThread) crash() {
	st.crashed = true
	for _, req := range st.queue {
		if req.lock != nil {
			st.c.env.Locks.Unlock(req.lock)
		}
		req.greq.CompleteWithError(ErrCrashed)
	}
	st.queue = nil
	st.cond.Signal()
}

func (st *syncThread) run(p *sim.Proc) {
	c := st.c
	bufSize := c.f.Hints().IndWrBufferSize
	if bufSize <= 0 {
		bufSize = adio.DefaultIndWrBufferSize
	}
	for {
		for len(st.queue) == 0 {
			if st.stopped || st.crashed {
				return
			}
			st.cond.Wait(p)
		}
		if st.crashed {
			return
		}
		req := st.queue[0]
		st.queue = st.queue[1:]
		tr := st.k.Tracer()
		if tr != nil {
			tr.Counter(st.tk, "sync_queue", int64(p.Now()), int64(len(st.queue)))
		}
		extT0 := p.Now()
		esp := tr.Begin(st.tk, "cache", "sync_extent", int64(p.Now()))
		err := st.syncExtent(p, req, bufSize)
		esp.End(int64(p.Now()), trace.I("off", req.ext.Off), trace.I("len", req.ext.Len))
		if c.metricsOn() {
			c.mExtentNs.Observe(int64(p.Now() - extT0))
		}
		if st.crashed {
			// The node died mid-extent: abort the request without leaking
			// its lock, and complete the handle with ErrCrashed so a rank
			// parked in AtFlush waiting on it wakes instead of deadlocking.
			if req.lock != nil {
				c.env.Locks.Unlock(req.lock)
			}
			req.greq.CompleteWithError(ErrCrashed)
			return
		}
		// The lock is released whether the sync succeeded or aborted —
		// a terminal failure must not leave the extent locked forever.
		if req.lock != nil {
			c.env.Locks.Unlock(req.lock)
		}
		if tr != nil {
			tr.AsyncEnd(st.tk, "cache", "sync_req", req.aid, int64(p.Now()))
		}
		if err != nil {
			c.Stats.SyncFailures++
			c.mFailures.Inc()
			if tr != nil {
				tr.Instant(st.tk, "cache", "sync_failed", int64(p.Now()),
					trace.I("off", req.ext.Off), trace.I("len", req.ext.Len))
			}
			req.greq.CompleteWithError(fmt.Errorf("core: sync [%d,+%d): %w", req.ext.Off, req.ext.Len, err))
			continue
		}
		req.greq.Complete()
	}
}

// syncExtent drains one extent through the synchronisation buffer: a
// serial read(cache) -> write(global) pipeline in bufSize chunks, exactly
// like the pthread implementation in the paper. Failed chunks (cache read
// or global write) are retried with exponential backoff up to the
// RetryLimit budget; the extent's journal entry is cleared chunk by chunk
// as data reaches the global file.
func (st *syncThread) syncExtent(p *sim.Proc, req *syncReq, bufSize int64) error {
	c := st.c
	adaptive := c.opts.FlushFlag == FlushAdaptive
	var baseline sim.Time
	for off := req.ext.Off; off < req.ext.End(); off += bufSize {
		if st.crashed {
			return ErrCrashed
		}
		n := min64(bufSize, req.ext.End()-off)
		start := p.Now()
		tr := st.k.Tracer()
		csp := tr.Begin(st.tk, "cache", "sync_chunk", int64(start))
		if err := st.syncChunk(p, off, n); err != nil {
			csp.End(int64(p.Now()), trace.I("off", off), trace.I("len", n))
			if c.metricsOn() {
				c.mChunkNs.Observe(int64(p.Now() - start))
			}
			return err
		}
		csp.End(int64(p.Now()), trace.I("off", off), trace.I("len", n))
		if c.metricsOn() {
			c.mChunkNs.Observe(int64(p.Now() - start))
		}
		c.Stats.SyncedBytes += n
		c.mSynced.Add(n)
		c.dirty.Remove(extent.Extent{Off: off, Len: n})
		if tr != nil {
			tr.Counter(st.tk, "dirty_bytes", int64(p.Now()), c.dirty.TotalBytes())
		}
		if !adaptive {
			continue
		}
		// Congestion-aware pacing (§III suggestion): track the best
		// observed chunk time as the uncongested baseline and back off
		// by the excess when a chunk runs far above it, ceding the
		// I/O servers to foreground traffic.
		took := p.Now() - start
		if baseline == 0 || took < baseline {
			baseline = took
		}
		if took > 2*baseline {
			c.Stats.Backoffs++
			c.mBackoffs.Inc()
			if tr != nil {
				tr.Instant(st.tk, "cache", "adaptive_backoff", int64(p.Now()),
					trace.I("excess_ns", int64(took-baseline)))
			}
			p.Sleep(took - baseline)
		}
	}
	return nil
}

// syncChunk moves one chunk cache -> global, retrying transient failures
// with exponential backoff. Both legs can fail: the cache read (SSD died)
// and the global write (storage target down); either way the data is still
// safe in one of the two copies, so retrying is always sound. A network
// partition (pfs.ErrPartitioned) is environmental rather than a fault of
// either copy: it heals when the fabric does, so partition retries do not
// consume the RetryLimit budget — they back off (capped, so a long
// partition polls instead of sleeping geometrically) until the fabric
// heals or the node crashes.
func (st *syncThread) syncChunk(p *sim.Proc, off, n int64) error {
	c := st.c
	backoff := c.opts.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	var err error
	for attempt := 0; ; {
		var buf []byte
		buf, err = c.readChunk(p, off, n)
		if err == nil {
			// The crash can land while the cache read is in flight; the
			// device op completes, but a dead node must not issue a fresh
			// global write with whatever the read captured (the at-rest
			// bytes may have rotted since). The chunk stays journalled for
			// recovery, where it is checksum-scrubbed before replay.
			if st.crashed {
				return ErrCrashed
			}
			err = c.f.Backend().WriteContig(p, buf, off, n)
			if err == nil {
				return nil
			}
		}
		if st.crashed {
			return err
		}
		partitioned := errors.Is(err, pfs.ErrPartitioned)
		if !partitioned {
			if attempt >= c.opts.RetryLimit {
				return fmt.Errorf("%w (after %d attempts)", err, attempt+1)
			}
			attempt++
		}
		c.Stats.SyncRetries++
		if c.metricsOn() {
			c.mRetries.Inc()
		}
		if tr := st.k.Tracer(); tr != nil {
			tr.Instant(st.tk, "cache", "sync_retry", int64(p.Now()),
				trace.I("attempt", int64(attempt)), trace.I("backoff_ns", int64(backoff)))
		}
		p.Sleep(backoff)
		if backoff < PartitionBackoffCap {
			backoff *= 2
			if partitioned && backoff > PartitionBackoffCap {
				backoff = PartitionBackoffCap
			}
		} else if !partitioned {
			backoff *= 2
		}
	}
}

// readChunk reads n bytes at off from the cache file, returning real bytes
// when a payload-carrying store backs the cache file and nil otherwise
// (the device time cost is charged either way).
func (c *Cache) readChunk(p *sim.Proc, off, n int64) ([]byte, error) {
	if _, isMem := c.cfile.Store().(store.PayloadBacked); isMem {
		buf := make([]byte, n)
		if err := c.cfile.ReadAt(p, buf, off, n); err != nil {
			return nil, err
		}
		return buf, nil
	}
	if err := c.cfile.ReadAt(p, nil, off, n); err != nil {
		return nil, err
	}
	return nil, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
