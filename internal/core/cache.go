package core

import (
	"errors"
	"fmt"

	"repro/internal/adio"
	"repro/internal/extent"
	"repro/internal/mpe"
	"repro/internal/mpi"
	"repro/internal/nvm"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/store"
)

// Env wires the cache layer into a simulated cluster: where each node's
// local file system lives and which lock manager guards the global file
// (for e10_cache=coherent).
type Env struct {
	// LocalFS returns the node-local cache file system, or nil when the
	// node has no usable local storage (the open then falls back to the
	// standard path, as the paper requires).
	LocalFS func(node int) *nvm.FS
	// Locks is the global file's byte-range lock manager, used by the
	// coherent mode (ADIOI_WRITE_LOCK / ADIOI_UNLOCK).
	Locks *pfs.LockManager
	// SkipSync disables the background synchronisation entirely. This is
	// the evaluation's "TBW Cache Enable" case: writing to the cache
	// without flushing, measuring the theoretical bandwidth with the sync
	// cost fully hidden.
	SkipSync bool
}

// HooksFactory returns the adio hook factory that installs a cache on
// files opened with e10_cache set to enable or coherent.
func (e *Env) HooksFactory() adio.HooksFactory {
	return func(f *adio.File) (adio.Hooks, error) {
		opts, err := ParseOptions(f.Hints().Extra)
		if err != nil {
			return nil, err
		}
		if !opts.Enabled() {
			return nil, nil
		}
		return newCache(e, f, opts)
	}
}

// Stats counts cache-layer activity on one rank.
type Stats struct {
	CacheWrites      int64 // writes absorbed by the cache
	CacheBytes       int64 // bytes absorbed by the cache
	SyncedBytes      int64 // bytes drained to the global file system
	SyncRequests     int64 // sync requests created
	WriteThroughs    int64 // writes that bypassed a full cache
	FlushWaits       int64 // flush/close operations that had to wait
	FlushWaitTime    sim.Time
	CoherentLockHeld int64 // extents locked by coherent mode
	CacheReads       int64 // reads served from the local cache
	Backoffs         int64 // adaptive-flush congestion backoffs
}

// syncReq is one pending synchronisation request: move ext from the cache
// file to the global file, then complete the generalized request (and drop
// the coherent-mode lock, if one is held).
type syncReq struct {
	ext  extent.Extent
	greq *mpi.Request
	lock *pfs.Lock
}

// Cache is the per-rank cache state attached to an open ADIO file. It
// implements adio.Hooks.
type Cache struct {
	env   *Env
	f     *adio.File
	opts  Options
	fs    *nvm.FS
	cfile *nvm.File
	name  string

	syncer      *syncThread
	pending     []*syncReq // created but not yet submitted (flush_onclose)
	outstanding []*syncReq // submitted or pending; waited on at flush

	Stats Stats
}

var _ adio.Hooks = (*Cache)(nil)

// newCache opens the cache file (ADIOI_GEN_OpenColl extension). An error
// here makes adio revert to the standard path.
func newCache(env *Env, f *adio.File, opts Options) (*Cache, error) {
	if env.LocalFS == nil {
		return nil, errors.New("core: no local file system provider")
	}
	fs := env.LocalFS(f.Rank().Node().ID())
	if fs == nil {
		return nil, fmt.Errorf("core: node %d has no local cache storage", f.Rank().Node().ID())
	}
	c := &Cache{env: env, f: f, opts: opts, fs: fs}
	c.name = fmt.Sprintf("%s/%s.cache.r%d", opts.Path, f.Path(), f.Rank().ID())
	return c, nil
}

// AtOpenColl implements adio.Hooks: create the cache file and start the
// sync thread.
func (c *Cache) AtOpenColl(f *adio.File) error {
	cf, err := c.fs.Open(c.name, true)
	if err != nil {
		return err
	}
	c.cfile = cf
	if !c.env.SkipSync {
		c.syncer = startSyncThread(c)
	}
	return nil
}

// WriteContig implements adio.Hooks: ADIOI_GEN_WriteContig writes through
// cache_fd, allocates cache space with ADIOI_Cache_alloc (fallocate), and
// posts a synchronisation request with an associated MPI_Request handle.
// When the cache partition is full the write falls through to the global
// file system (handled=false).
func (c *Cache) WriteContig(f *adio.File, data []byte, off, size int64) (bool, error) {
	r := f.Rank()
	p := r.Proc()
	e := extent.Extent{Off: off, Len: size}

	var lock *pfs.Lock
	if c.opts.Mode == CacheCoherent && c.env.Locks != nil {
		lock = c.env.Locks.Acquire(p, f.Path(), pfs.WriteLock, e)
		c.Stats.CoherentLockHeld++
	}

	if err := c.cfile.Fallocate(p, off, size); err != nil {
		// No space: release the lock and let the write go to the global
		// file directly.
		if lock != nil {
			c.env.Locks.Unlock(lock)
		}
		c.Stats.WriteThroughs++
		return false, nil
	}
	if err := c.cfile.WriteAt(p, data, off, size); err != nil {
		if lock != nil {
			c.env.Locks.Unlock(lock)
		}
		c.Stats.WriteThroughs++
		return false, nil
	}
	c.Stats.CacheWrites++
	c.Stats.CacheBytes += size

	if c.env.SkipSync {
		if lock != nil {
			c.env.Locks.Unlock(lock)
		}
		return true, nil
	}
	req := &syncReq{ext: e, greq: r.World().NewGrequest(), lock: lock}
	c.Stats.SyncRequests++
	c.outstanding = append(c.outstanding, req)
	if c.opts.FlushFlag == FlushOnClose {
		c.pending = append(c.pending, req)
	} else {
		// flush_immediate and flush_adaptive both start sync right away.
		c.syncer.submit(req)
	}
	return true, nil
}

// ReadContig implements adio.ReadHooks (the paper's future-work cache-read
// extension, guarded by the e10_cache_read hint): a read whose extent is
// fully present in this rank's cache file is served from the local SSD
// without touching the global file system. This is always consistent with
// the reading rank's own writes; cross-rank reads still go to the global
// file.
func (c *Cache) ReadContig(f *adio.File, buf []byte, off, size int64) (bool, error) {
	if !c.opts.ReadCache || c.cfile == nil {
		return false, nil
	}
	if buf != nil {
		size = int64(len(buf))
	}
	if !c.cfile.Store().Written().Covers(extent.Extent{Off: off, Len: size}) {
		return false, nil
	}
	c.cfile.ReadAt(f.Rank().Proc(), buf, off, size)
	c.Stats.CacheReads++
	return true, nil
}

// AtFlush implements adio.Hooks: ADIOI_GEN_Flush. With flush_immediate it
// waits for previously started sync requests; with flush_onclose it first
// hands all pending requests to the sync thread, then waits. The wait time
// is the not_hidden_sync term of Equation 1 and is recorded as such.
func (c *Cache) AtFlush(f *adio.File) error {
	if c.env.SkipSync {
		return nil
	}
	for _, req := range c.pending {
		c.syncer.submit(req)
	}
	c.pending = nil
	r := f.Rank()
	start := r.Now()
	for _, req := range c.outstanding {
		r.Wait(req.greq)
	}
	c.outstanding = nil
	if wait := r.Now() - start; wait > 0 {
		c.Stats.FlushWaits++
		c.Stats.FlushWaitTime += wait
		f.Log().Add(mpe.PhaseNotHiddenSync, wait)
	}
	return nil
}

// AtClose implements adio.Hooks: ADIO_Close invokes ADIOI_GEN_Flush to
// drain the cache, stops the sync thread, closes the cache file and, when
// e10_cache_discard_flag is enable, removes it to free local space.
func (c *Cache) AtClose(f *adio.File) error {
	err := c.AtFlush(f)
	if c.syncer != nil {
		c.syncer.stop()
	}
	if c.opts.Discard && c.cfile != nil {
		if rerr := c.fs.Remove(c.name); rerr != nil && err == nil {
			err = rerr
		}
		c.cfile = nil
	}
	return err
}

// CacheFile exposes the underlying cache file (nil after a discarding
// close); tests use it to inspect retained cache contents.
func (c *Cache) CacheFile() *nvm.File { return c.cfile }

// Outstanding returns the number of sync requests not yet completed.
func (c *Cache) Outstanding() int {
	n := 0
	for _, req := range c.outstanding {
		if !req.greq.Done() {
			n++
		}
	}
	return n
}

// syncThread is the background cache-synchronisation agent
// (ADIOI_Sync_thread_start): a dedicated simulated thread that reads data
// back from the cache file into the synchronisation buffer
// (ind_wr_buffer_size bytes at a time) and writes it to the global file,
// then calls MPI_Grequest_complete on the request handle.
type syncThread struct {
	c       *Cache
	queue   []*syncReq
	cond    *sim.Cond
	stopped bool
	proc    *sim.Proc
}

func startSyncThread(c *Cache) *syncThread {
	k := c.f.Rank().Proc().Kernel()
	st := &syncThread{c: c, cond: sim.NewCond(k)}
	name := fmt.Sprintf("sync.%s.r%d", c.f.Path(), c.f.Rank().ID())
	st.proc = k.Spawn(name, st.run)
	return st
}

// submit enqueues a request for background synchronisation.
func (st *syncThread) submit(req *syncReq) {
	st.queue = append(st.queue, req)
	st.cond.Signal()
}

// stop terminates the thread once the queue is drained.
func (st *syncThread) stop() {
	st.stopped = true
	st.cond.Signal()
}

func (st *syncThread) run(p *sim.Proc) {
	c := st.c
	bufSize := c.f.Hints().IndWrBufferSize
	if bufSize <= 0 {
		bufSize = adio.DefaultIndWrBufferSize
	}
	for {
		for len(st.queue) == 0 {
			if st.stopped {
				return
			}
			st.cond.Wait(p)
		}
		req := st.queue[0]
		st.queue = st.queue[1:]
		// Drain the extent through the synchronisation buffer: a serial
		// read(cache) -> write(global) pipeline in bufSize chunks, exactly
		// like the pthread implementation in the paper.
		adaptive := c.opts.FlushFlag == FlushAdaptive
		var baseline sim.Time
		for off := req.ext.Off; off < req.ext.End(); off += bufSize {
			n := min64(bufSize, req.ext.End()-off)
			start := p.Now()
			buf := c.readChunk(p, off, n)
			c.f.Backend().WriteContig(p, buf, off, n)
			c.Stats.SyncedBytes += n
			if !adaptive {
				continue
			}
			// Congestion-aware pacing (§III suggestion): track the best
			// observed chunk time as the uncongested baseline and back off
			// by the excess when a chunk runs far above it, ceding the
			// I/O servers to foreground traffic.
			took := p.Now() - start
			if baseline == 0 || took < baseline {
				baseline = took
			}
			if took > 2*baseline {
				c.Stats.Backoffs++
				p.Sleep(took - baseline)
			}
		}
		if req.lock != nil {
			c.env.Locks.Unlock(req.lock)
		}
		req.greq.Complete()
	}
}

// readChunk reads n bytes at off from the cache file, returning real bytes
// when a payload-carrying store backs the cache file and nil otherwise
// (the device time cost is charged either way).
func (c *Cache) readChunk(p *sim.Proc, off, n int64) []byte {
	if _, isMem := c.cfile.Store().(store.PayloadBacked); isMem {
		buf := make([]byte, n)
		c.cfile.ReadAt(p, buf, off, n)
		return buf
	}
	c.cfile.ReadAt(p, nil, off, n)
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
