package core

import (
	"bytes"
	"testing"

	"repro/internal/adio"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/store"
)

// These tests cover the future-work extensions (§VI of the paper) that
// this reproduction implements on top of the published system: cache
// reads (e10_cache_read) and congestion-aware flushing (flush_adaptive).

func TestParseOptionsCacheReadAndAdaptive(t *testing.T) {
	o, err := ParseOptions(mpi.Info{
		HintCache:     "enable",
		HintCacheRead: "enable",
		HintFlushFlag: FlushAdaptive,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !o.ReadCache || o.FlushFlag != FlushAdaptive {
		t.Fatalf("options = %+v", o)
	}
	if _, err := ParseOptions(mpi.Info{HintCacheRead: "sometimes"}); err == nil {
		t.Fatal("invalid e10_cache_read must be rejected")
	}
}

func TestCacheReadServesLocalExtent(t *testing.T) {
	rg := newRig(t, 1, 1, store.NewMem)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable",
			HintCache:        "enable",
			HintCacheRead:    "enable",
			HintFlushFlag:    "flush_onclose", // global file still empty
		})
		payload := []byte("cached-bytes")
		if err := f.WriteContig(payload, 100, int64(len(payload))); err != nil {
			t.Error(err)
		}
		// The global file has nothing yet; the read must come from cache.
		if rg.fs.TotalBytesWritten() != 0 {
			t.Error("precondition: global file must still be empty")
		}
		buf := make([]byte, len(payload))
		f.ReadContig(buf, 100, 0)
		if !bytes.Equal(buf, payload) {
			t.Errorf("cache read returned %q", buf)
		}
		// A read outside the cached extent must fall through to the
		// global file (and read zeros).
		miss := make([]byte, 4)
		f.ReadContig(miss, 1<<20, 0)
		if !bytes.Equal(miss, []byte{0, 0, 0, 0}) {
			t.Errorf("miss read = %v", miss)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCacheReadDisabledByDefault(t *testing.T) {
	rg := newRig(t, 1, 1, store.NewMem)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable",
			HintCache:        "enable",
			HintFlushFlag:    "flush_onclose",
		})
		payload := []byte("cached")
		if err := f.WriteContig(payload, 0, int64(len(payload))); err != nil {
			t.Error(err)
		}
		// Without e10_cache_read the read goes to the (empty) global file.
		buf := make([]byte, len(payload))
		f.ReadContig(buf, 0, 0)
		if !bytes.Equal(buf, make([]byte, len(payload))) {
			t.Errorf("read must hit the global file, got %q", buf)
		}
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveFlushBacksOffUnderCongestion(t *testing.T) {
	run := func(congest bool) (sim.Time, int64) {
		rg := newRig(t, 4, 1, store.NewNull)
		var done sim.Time
		var backoffs int64
		err := rg.w.Run(func(r *mpi.Rank) {
			if r.ID() >= 1 {
				if congest {
					// Foreground traffic arriving mid-sync: service times
					// degrade relative to the thread's baseline.
					r.Compute(60 * sim.Millisecond)
					c := rg.fs.NewClient(r.Node())
					h, err := c.Open(r.Proc(), "noise", true, pfs.Striping{})
					if err != nil {
						t.Error(err)
						return
					}
					for i := 0; i < 40; i++ {
						h.WriteAt(r.Proc(), nil, int64(i)*(16<<20), 16<<20)
					}
				}
				return
			}
			f, err := adio.OpenColl(r, adio.OpenArgs{
				Comm: rg.w.NewComm([]int{0}), Registry: rg.reg, Path: "g", Create: true,
				Info: mpi.Info{
					adio.HintCBWrite: "enable",
					HintCache:        "enable",
					HintFlushFlag:    FlushAdaptive,
				},
				Hooks: rg.env.HooksFactory(),
			})
			if err != nil {
				t.Error(err)
				return
			}
			if err := f.WriteContig(nil, 0, 32<<20); err != nil {
				t.Error(err)
			}
			if err := f.Close(); err != nil {
				t.Error(err)
			}
			done = r.Now()
			// Recover the backoff counter through the hook.
			if c, ok := f.InstalledHooks().(*Cache); ok {
				backoffs = c.Stats.Backoffs
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return done, backoffs
	}
	quietT, quietB := run(false)
	busyT, busyB := run(true)
	if busyB <= quietB {
		t.Fatalf("congestion must trigger backoffs: quiet=%d busy=%d", quietB, busyB)
	}
	if busyT <= quietT {
		t.Fatalf("congested adaptive flush should take longer: %v vs %v", quietT, busyT)
	}
}

func TestAdaptiveFlushStillDeliversAllData(t *testing.T) {
	rg := newRig(t, 1, 1, store.NewNull)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable",
			HintCache:        "enable",
			HintFlushFlag:    FlushAdaptive,
		})
		if err := f.WriteContig(nil, 0, 8<<20); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rg.fs.TotalBytesWritten() < 8<<20 {
		t.Fatal("adaptive flush lost data")
	}
}
