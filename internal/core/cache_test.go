package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/adio"
	"repro/internal/extent"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/nvm"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/store"
)

// rig is a small simulated cluster with local SSDs on every node.
type rig struct {
	k    *sim.Kernel
	fab  *netsim.Fabric
	fs   *pfs.System
	w    *mpi.World
	reg  *adio.Registry
	env  *Env
	nvms []*nvm.FS
}

func newRig(t *testing.T, nodes, perNode int, factory store.Factory) *rig {
	t.Helper()
	return newRigSeed(t, 1, nodes, perNode, factory)
}

func newRigSeed(t *testing.T, seed int64, nodes, perNode int, factory store.Factory) *rig {
	t.Helper()
	k := sim.NewKernel(seed)
	fab := netsim.New(k, netsim.Config{
		Nodes: nodes, InjRate: 3 * sim.GBps, EjeRate: 3 * sim.GBps,
		Latency: 2 * sim.Microsecond, MemRate: 6 * sim.GBps,
	})
	cfg := pfs.DefaultConfig()
	cfg.TargetJitter = nil
	fs := pfs.New(k, cfg, factory)
	w := mpi.NewWorld(k, fab, perNode)
	clients := make([]*pfs.Client, nodes)
	nvms := make([]*nvm.FS, nodes)
	for i := 0; i < nodes; i++ {
		clients[i] = fs.NewClient(fab.Node(i))
		dev := nvm.NewDevice(k, "ssd", nvm.DeviceConfig{
			WriteRate: 500 * sim.MBps, ReadRate: 520 * sim.MBps,
			Latency: 60 * sim.Microsecond, Capacity: 1 << 30,
		})
		nvms[i] = nvm.NewFS(dev, nvm.FSConfig{SupportsFallocate: true}, factory)
	}
	reg := adio.NewRegistry(adio.NewUFSDriver(func(n int) *pfs.Client { return clients[n] }))
	env := &Env{
		LocalFS: func(n int) *nvm.FS { return nvms[n] },
		Locks:   fs.Locks,
	}
	return &rig{k: k, fab: fab, fs: fs, w: w, reg: reg, env: env, nvms: nvms}
}

func (rg *rig) open(r *mpi.Rank, t *testing.T, info mpi.Info) *adio.File {
	t.Helper()
	f, err := adio.OpenColl(r, adio.OpenArgs{
		Comm: rg.w.Comm(), Registry: rg.reg, Path: "global.dat", Create: true,
		Info: info, Hooks: rg.env.HooksFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseOptionsTableII(t *testing.T) {
	o, err := ParseOptions(mpi.Info{
		HintCache:       "coherent",
		HintCachePath:   "/scratch/e10",
		HintFlushFlag:   "flush_immediate",
		HintDiscardFlag: "disable",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Mode != CacheCoherent || o.Path != "/scratch/e10" ||
		o.FlushFlag != FlushImmediate || o.Discard {
		t.Fatalf("options = %+v", o)
	}
	if !o.Enabled() {
		t.Fatal("coherent mode must count as enabled")
	}
}

func TestParseOptionsDefaultsAndErrors(t *testing.T) {
	o, err := ParseOptions(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Enabled() || o.FlushFlag != FlushOnClose || !o.Discard {
		t.Fatalf("defaults = %+v", o)
	}
	for _, bad := range []mpi.Info{
		{HintCache: "yes"},
		{HintFlushFlag: "sometimes"},
		{HintDiscardFlag: "maybe"},
		{HintCachePath: ""},
	} {
		if _, err := ParseOptions(bad); err == nil {
			t.Fatalf("expected error for %v", bad)
		}
	}
}

// The paper's end-to-end guarantee: a collective write with the cache
// enabled, after close, leaves the global file byte-identical to a direct
// collective write.
func TestCachedCollectiveWriteReachesGlobalFile(t *testing.T) {
	rg := newRig(t, 2, 2, store.NewMem)
	const chunk = 2048
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", adio.HintCBNodes: "2",
			HintCache: "enable", HintFlushFlag: "flush_onclose",
		})
		// Interleaved pattern with recognizable bytes.
		var segs []extent.Extent
		var data []byte
		for i := 0; i < 3; i++ {
			off := int64(i*4*chunk + r.ID()*chunk)
			segs = append(segs, extent.Extent{Off: off, Len: chunk})
			for b := 0; b < chunk; b++ {
				data = append(data, byte(r.ID()*50+i*3+b%200))
			}
		}
		if err := f.WriteStridedColl(segs, data); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	meta := rg.fs.Lookup("global.dat")
	if meta == nil {
		t.Fatal("global file missing")
	}
	if meta.Size() != 3*4*chunk {
		t.Fatalf("global size = %d, want %d", meta.Size(), 3*4*chunk)
	}
	got := make([]byte, meta.Size())
	meta.Store().ReadAt(got, 0)
	for rank := 0; rank < 4; rank++ {
		for i := 0; i < 3; i++ {
			off := i*4*chunk + rank*chunk
			want := make([]byte, chunk)
			for b := 0; b < chunk; b++ {
				want[b] = byte(rank*50 + i*3 + b%200)
			}
			if !bytes.Equal(got[off:off+chunk], want) {
				t.Fatalf("rank %d piece %d corrupted after cache flush", rank, i)
			}
		}
	}
}

func TestFlushImmediateStartsSyncBeforeClose(t *testing.T) {
	rg := newRig(t, 1, 1, store.NewNull)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "enable", HintFlushFlag: "flush_immediate",
		})
		if err := f.WriteContig(nil, 0, 50<<20); err != nil {
			t.Error(err)
		}
		// Give the background sync time to run during "compute".
		r.Compute(sim.FromSeconds(2))
		synced := rg.fs.TotalBytesWritten()
		if synced < 50<<20 {
			t.Errorf("immediate flush did not sync in background: %d bytes", synced)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlushOnCloseDefersSync(t *testing.T) {
	rg := newRig(t, 1, 1, store.NewNull)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "enable", HintFlushFlag: "flush_onclose",
		})
		if err := f.WriteContig(nil, 0, 10<<20); err != nil {
			t.Error(err)
		}
		r.Compute(sim.FromSeconds(1))
		if rg.fs.TotalBytesWritten() != 0 {
			t.Error("flush_onclose must not sync before close/flush")
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
		if rg.fs.TotalBytesWritten() < 10<<20 {
			t.Error("close must complete the sync")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSyncOverlapsCompute(t *testing.T) {
	// Writing then computing should hide the sync: close is cheap.
	// Without compute, close must wait (not_hidden_sync > 0).
	closeTime := func(compute sim.Time) (sim.Time, sim.Time) {
		rg := newRig(t, 1, 1, store.NewNull)
		var dur, notHidden sim.Time
		err := rg.w.Run(func(r *mpi.Rank) {
			f := rg.open(r, t, mpi.Info{
				adio.HintCBWrite: "enable", HintCache: "enable", HintFlushFlag: "flush_immediate",
			})
			if err := f.WriteContig(nil, 0, 64<<20); err != nil {
				t.Error(err)
			}
			r.Compute(compute)
			start := r.Now()
			if err := f.Close(); err != nil {
				t.Error(err)
			}
			dur = r.Now() - start
			notHidden = f.Log().Total("not_hidden_sync")
		})
		if err != nil {
			t.Fatal(err)
		}
		return dur, notHidden
	}
	slow, slowNH := closeTime(0)
	fast, fastNH := closeTime(sim.FromSeconds(5))
	if fast >= slow {
		t.Fatalf("compute must hide sync: close %v (no compute) vs %v (compute)", slow, fast)
	}
	if slowNH == 0 {
		t.Fatal("unhidden sync must be recorded as not_hidden_sync")
	}
	if fastNH != 0 {
		t.Fatalf("hidden sync must record no not_hidden_sync, got %v", fastNH)
	}
}

func TestDiscardFlagRemovesCacheFile(t *testing.T) {
	for _, discard := range []bool{true, false} {
		rg := newRig(t, 1, 1, store.NewNull)
		flag := "enable"
		if !discard {
			flag = "disable"
		}
		err := rg.w.Run(func(r *mpi.Rank) {
			f := rg.open(r, t, mpi.Info{
				adio.HintCBWrite: "enable", HintCache: "enable", HintDiscardFlag: flag,
				HintCachePath: "/scratch",
			})
			if err := f.WriteContig(nil, 0, 1<<20); err != nil {
				t.Error(err)
			}
			if err := f.Close(); err != nil {
				t.Error(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		name := "/scratch/global.dat.cache.r0"
		if got := rg.nvms[0].Exists(name); got == discard {
			t.Fatalf("discard=%v: cache file exists=%v", discard, got)
		}
		if discard && rg.nvms[0].Device().Used() != 0 {
			t.Fatal("discard must free device capacity")
		}
	}
}

func TestFallbackWhenNoLocalStorage(t *testing.T) {
	rg := newRig(t, 1, 1, store.NewNull)
	rg.env.LocalFS = func(int) *nvm.FS { return nil } // node has no SSD
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{adio.HintCBWrite: "enable", HintCache: "enable"})
		if !f.Stats.CacheFallback {
			t.Error("open must fall back to the standard path")
		}
		if err := f.WriteContig(nil, 0, 1<<20); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rg.fs.TotalBytesWritten() < 1<<20 {
		t.Fatal("fallback write must reach the global file")
	}
}

func TestFullCacheWritesThrough(t *testing.T) {
	rg := newRig(t, 1, 1, store.NewNull)
	// Shrink the SSD to 1 MB.
	dev := nvm.NewDevice(rg.k, "tiny", nvm.DeviceConfig{
		WriteRate: 500 * sim.MBps, ReadRate: 500 * sim.MBps, Capacity: 1 << 20,
	})
	tiny := nvm.NewFS(dev, nvm.FSConfig{SupportsFallocate: true}, store.NewNull)
	rg.env.LocalFS = func(int) *nvm.FS { return tiny }
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{adio.HintCBWrite: "enable", HintCache: "enable"})
		if err := f.WriteContig(nil, 0, 8<<20); err != nil { // exceeds capacity
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rg.fs.TotalBytesWritten() < 8<<20 {
		t.Fatal("oversized write must reach the global file directly")
	}
}

func TestCoherentModeLocksUntilSynced(t *testing.T) {
	rg := newRig(t, 1, 1, store.NewNull)
	var lockedDuringTransit bool
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "coherent", HintFlushFlag: "flush_immediate",
		})
		if err := f.WriteContig(nil, 0, 32<<20); err != nil {
			t.Error(err)
		}
		// Immediately after the cache write returns, sync is in flight and
		// the extent must be write-locked.
		lockedDuringTransit = rg.fs.Locks.HeldLocks("global.dat") > 0
		r.Compute(sim.FromSeconds(2))
		if rg.fs.Locks.HeldLocks("global.dat") != 0 {
			t.Error("lock must be dropped once the extent is synced")
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !lockedDuringTransit {
		t.Fatal("coherent mode must hold a write lock while data is in transit")
	}
}

func TestCoherentReaderBlocksUntilSync(t *testing.T) {
	rg := newRig(t, 1, 2, store.NewNull)
	var readerWaited sim.Time
	err := rg.w.Run(func(r *mpi.Rank) {
		// Open is collective: both ranks participate.
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "coherent", HintFlushFlag: "flush_immediate",
		})
		if r.ID() == 0 {
			if err := f.WriteContig(nil, 0, 64<<20); err != nil {
				t.Error(err)
			}
			r.Compute(sim.FromSeconds(5))
			_ = f.Close()
			return
		}
		// Reader: wait until the writer has cached, then try to read-lock
		// the extent that is still in transit to the global file.
		r.Compute(500 * sim.Millisecond)
		start := r.Now()
		l := rg.fs.Locks.Acquire(r.Proc(), "global.dat", pfs.ReadLock, extent.Extent{Off: 0, Len: 1 << 20})
		readerWaited = r.Now() - start
		rg.fs.Locks.Unlock(l)
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if readerWaited == 0 {
		t.Fatal("reader must block while cached data is in transit")
	}
}

func TestSkipSyncTheoreticalMode(t *testing.T) {
	rg := newRig(t, 1, 1, store.NewNull)
	rg.env.SkipSync = true
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{adio.HintCBWrite: "enable", HintCache: "enable"})
		if err := f.WriteContig(nil, 0, 16<<20); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rg.fs.TotalBytesWritten() != 0 {
		t.Fatal("theoretical mode must never touch the global file system")
	}
}

func TestMPIFileSyncSemantics(t *testing.T) {
	// §III-B third bullet: data is globally visible after MPI_File_sync
	// (adio.Flush) returns, even with flush_onclose and the file still open.
	rg := newRig(t, 1, 1, store.NewNull)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "enable", HintFlushFlag: "flush_onclose",
		})
		if err := f.WriteContig(nil, 0, 4<<20); err != nil {
			t.Error(err)
		}
		if err := f.Flush(); err != nil {
			t.Error(err)
		}
		if rg.fs.TotalBytesWritten() < 4<<20 {
			t.Error("MPI_File_sync must force the data to the global file")
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForgettingCloseReportsStuckSyncThread(t *testing.T) {
	// The sync thread lives until AtClose stops it; a file that is never
	// closed leaves it parked, and the kernel's deadlock detector names
	// it instead of hanging — a safety net for harness bugs.
	rg := newRig(t, 1, 1, store.NewNull)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{adio.HintCBWrite: "enable", HintCache: "enable"})
		_ = f // never closed
	})
	if err == nil {
		t.Fatal("expected a deadlock error naming the sync thread")
	}
	if !strings.Contains(err.Error(), "sync.") {
		t.Fatalf("error should identify the stuck sync thread: %v", err)
	}
}

func TestCacheStatsAccounting(t *testing.T) {
	rg := newRig(t, 1, 1, store.NewNull)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "enable", HintFlushFlag: "flush_immediate",
		})
		if err := f.WriteContig(nil, 0, 4<<20); err != nil {
			t.Error(err)
		}
		if err := f.WriteContig(nil, 4<<20, 4<<20); err != nil {
			t.Error(err)
		}
		c, ok := f.InstalledHooks().(*Cache)
		if !ok {
			t.Fatal("cache not installed")
		}
		if c.Stats.CacheWrites != 2 || c.Stats.CacheBytes != 8<<20 || c.Stats.SyncRequests != 2 {
			t.Errorf("stats = %+v", c.Stats)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
		if c.Stats.SyncedBytes != 8<<20 {
			t.Errorf("synced = %d", c.Stats.SyncedBytes)
		}
		if c.Outstanding() != 0 {
			t.Error("outstanding requests after close")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeviceFailureFallsThroughToGlobalFS(t *testing.T) {
	// Failure injection: the SSD dies between two writes; the cache layer
	// must route subsequent writes to the global file system and the run
	// must still complete with all data persistent.
	rg := newRig(t, 1, 1, store.NewNull)
	err := rg.w.Run(func(r *mpi.Rank) {
		f := rg.open(r, t, mpi.Info{
			adio.HintCBWrite: "enable", HintCache: "enable", HintFlushFlag: "flush_immediate",
		})
		if err := f.WriteContig(nil, 0, 4<<20); err != nil {
			t.Error(err)
		}
		rg.nvms[0].Device().SetFailed(true)
		if err := f.WriteContig(nil, 4<<20, 4<<20); err != nil {
			t.Error(err)
		}
		c := f.InstalledHooks().(*Cache)
		if c.Stats.WriteThroughs != 1 {
			t.Errorf("write-throughs = %d, want 1", c.Stats.WriteThroughs)
		}
		// Clear the failure so close can discard the cache file cleanly.
		rg.nvms[0].Device().SetFailed(false)
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rg.fs.TotalBytesWritten() < 8<<20 {
		t.Fatalf("global FS got %d, want all 8 MB", rg.fs.TotalBytesWritten())
	}
}
