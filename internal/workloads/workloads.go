// Package workloads implements the three I/O benchmarks of the paper's
// evaluation (§IV): coll_perf (the MPICH collective I/O benchmark, a
// block-distributed 3D array), Flash-IO (the I/O kernel of the FLASH
// adaptive-mesh hydrodynamics code, writing HDF5 checkpoints), and IOR
// (segmented shared-file writes). Each produces exactly the logical file
// layout the paper describes; the harness drives them through the modified
// multi-file + compute-delay workflow of Figure 3.
package workloads

import (
	"fmt"
	"sync"

	"repro/internal/extent"
	"repro/internal/h5lite"
	"repro/internal/mpi"
	"repro/internal/mpiio"
)

// Workload writes one complete shared file per phase.
type Workload interface {
	// Name identifies the workload ("coll_perf", "flashio", "ior").
	Name() string
	// FileBytes is the total data volume of one file for nranks processes.
	FileBytes(nranks int) int64
	// WritePhase issues the collective writes of one file on rank r.
	// payload selects whether real bytes flow (tests) or only extents
	// (large evaluation runs).
	WritePhase(r *mpi.Rank, f *mpiio.File, payload bool) error
}

// patternByte produces a deterministic, rank- and offset-dependent byte for
// payload-mode verification.
func patternByte(rank int, off int64) byte {
	return byte(int64(rank)*131 + off*7 + 13)
}

// fill creates a payload buffer for [off, off+n) in file space owned by rank.
func fill(rank int, off, n int64) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = patternByte(rank, off+int64(i))
	}
	return b
}

// ---------------------------------------------------------------------------
// coll_perf

// CollPerf is the MPICH coll_perf benchmark: a tridimensional
// block-distributed array written to a shared file, producing a strided
// pattern. Every process holds one block of RunBytes × RunsY × RunsZ bytes
// (64 MB with the defaults); processes form a 3D grid.
//
// The paper's runs use 512 processes each writing one 64 MB block. Byte
// granularity of the simulated pattern is RunBytes (the unit of contiguous
// data in the file), chosen so a block flattens to RunsY*RunsZ contiguous
// runs, which is the structure the real benchmark produces after datatype
// flattening.
type CollPerf struct {
	RunBytes int64 // contiguous bytes per run (x-extent of the local block)
	RunsY    int   // runs per block in y
	RunsZ    int   // runs per block in z
}

// DefaultCollPerf returns the 64 MB/process configuration used in §IV-B.
func DefaultCollPerf() CollPerf {
	return CollPerf{RunBytes: 256 << 10, RunsY: 16, RunsZ: 16}
}

// Name implements Workload.
func (c CollPerf) Name() string { return "coll_perf" }

// BlockBytes is the per-process data volume.
func (c CollPerf) BlockBytes() int64 {
	return c.RunBytes * int64(c.RunsY) * int64(c.RunsZ)
}

// FileBytes implements Workload.
func (c CollPerf) FileBytes(nranks int) int64 { return c.BlockBytes() * int64(nranks) }

// gridCache memoizes grid: Segments calls it once per rank, and the
// factorization scan is O(n·d(n)) — 17% of a 4096-rank run's CPU before
// caching. Keys are process counts, values are [3]int grids.
var gridCache sync.Map

// grid factorizes n into a near-cubic (px, py, pz) process grid.
func grid(n int) (int, int, int) {
	if g, ok := gridCache.Load(n); ok {
		b := g.([3]int)
		return b[0], b[1], b[2]
	}
	best := [3]int{n, 1, 1}
	bestScore := n * n
	for px := 1; px <= n; px++ {
		if n%px != 0 {
			continue
		}
		rest := n / px
		for py := 1; py <= rest; py++ {
			if rest%py != 0 {
				continue
			}
			pz := rest / py
			score := px*px + py*py + pz*pz
			if score < bestScore {
				bestScore = score
				best = [3]int{px, py, pz}
			}
		}
	}
	gridCache.Store(n, best)
	return best[0], best[1], best[2]
}

// Segments returns rank's file extents for an nranks-process run.
func (c CollPerf) Segments(rank, nranks int) []extent.Extent {
	px, py, _ := grid(nranks)
	ix := rank % px
	iy := (rank / px) % py
	iz := rank / (px * py)
	rowLen := int64(px) * c.RunBytes        // one global x-row
	planeRows := int64(py) * int64(c.RunsY) // global rows per z-plane
	segs := make([]extent.Extent, 0, c.RunsY*c.RunsZ)
	for jz := 0; jz < c.RunsZ; jz++ {
		for jy := 0; jy < c.RunsY; jy++ {
			globalRow := (int64(iz)*int64(c.RunsZ)+int64(jz))*planeRows +
				int64(iy)*int64(c.RunsY) + int64(jy)
			off := globalRow*rowLen + int64(ix)*c.RunBytes
			segs = append(segs, extent.Extent{Off: off, Len: c.RunBytes})
		}
	}
	return segs
}

// WritePhase implements Workload: one collective write of the whole block
// through a flattened strided view, like MPI_File_write_all over a
// subarray datatype.
func (c CollPerf) WritePhase(r *mpi.Rank, f *mpiio.File, payload bool) error {
	nranks := f.Comm().Size()
	segs := c.Segments(f.Comm().RankOf(r), nranks)
	base := segs[0].Off
	ft := mpiio.FlatType{Extent: segs[len(segs)-1].End() - base}
	for _, s := range segs {
		ft.Segs = append(ft.Segs, extent.Extent{Off: s.Off - base, Len: s.Len})
	}
	if err := f.SetView(base, ft); err != nil {
		return err
	}
	n := c.BlockBytes()
	var data []byte
	if payload {
		data = make([]byte, 0, n)
		for _, s := range segs {
			data = append(data, fill(f.Comm().RankOf(r), s.Off, s.Len)...)
		}
	}
	return f.WriteAtAll(0, data, n)
}

// ---------------------------------------------------------------------------
// IOR

// IOR is the segmented shared-file write pattern of §IV-D: every process
// writes one block of BlockBytes for each of Segments segments; segment s
// of rank r lands at s*P*BlockBytes + r*BlockBytes.
type IOR struct {
	BlockBytes int64
	Segments   int
}

// DefaultIOR returns the 8 MB × 8 segments configuration of the paper
// (32 GB per file with 512 processes).
func DefaultIOR() IOR { return IOR{BlockBytes: 8 << 20, Segments: 8} }

// Name implements Workload.
func (i IOR) Name() string { return "ior" }

// FileBytes implements Workload.
func (i IOR) FileBytes(nranks int) int64 {
	return i.BlockBytes * int64(i.Segments) * int64(nranks)
}

// Offset returns the file offset of rank's block in segment s.
func (i IOR) Offset(rank, nranks, s int) int64 {
	return (int64(s)*int64(nranks) + int64(rank)) * i.BlockBytes
}

// WritePhase implements Workload: one collective write per segment.
func (i IOR) WritePhase(r *mpi.Rank, f *mpiio.File, payload bool) error {
	me := f.Comm().RankOf(r)
	nranks := f.Comm().Size()
	if err := f.SetView(0, mpiio.FlatType{}); err != nil {
		return err
	}
	for s := 0; s < i.Segments; s++ {
		off := i.Offset(me, nranks, s)
		var data []byte
		if payload {
			data = fill(me, off, i.BlockBytes)
		}
		if err := f.WriteAtAll(off, data, i.BlockBytes); err != nil {
			return fmt.Errorf("ior segment %d: %w", s, err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Flash-IO

// FlashIO is the I/O kernel of the FLASH block-structured AMR code. The
// checkpoint file holds, for each of Vars unknowns, one dataset of
// (nranks × BlocksPerProc) blocks of ZonesPerBlock zones at 8 bytes per
// zone; each process owns a contiguous run of blocks in every dataset.
// With the defaults (80 blocks/proc, 16³ zones, 24 variables) the file is
// slightly over 30 GB at 512 processes, as in §IV-C.
type FlashIO struct {
	BlocksPerProc int
	ZonesPerBlock int // 16*16*16 with a standard FLASH block
	Vars          int
	BytesPerZone  int
}

// DefaultFlashIO returns the paper's checkpoint configuration.
func DefaultFlashIO() FlashIO {
	return FlashIO{BlocksPerProc: 80, ZonesPerBlock: 16 * 16 * 16, Vars: 24, BytesPerZone: 8}
}

// Name implements Workload.
func (fl FlashIO) Name() string { return "flashio" }

// BlockBytes is the size of one block of one variable.
func (fl FlashIO) BlockBytes() int64 {
	return int64(fl.ZonesPerBlock) * int64(fl.BytesPerZone)
}

// ChunkBytes is the contiguous bytes one process writes per variable.
func (fl FlashIO) ChunkBytes() int64 {
	return fl.BlockBytes() * int64(fl.BlocksPerProc)
}

// FileBytes implements Workload.
func (fl FlashIO) FileBytes(nranks int) int64 {
	return fl.ChunkBytes() * int64(fl.Vars) * int64(nranks)
}

// WritePhase implements Workload: an h5lite checkpoint with one collective
// write per variable dataset plus rank-0 metadata writes.
func (fl FlashIO) WritePhase(r *mpi.Rank, f *mpiio.File, payload bool) error {
	w, err := h5lite.Create(r, f)
	if err != nil {
		return err
	}
	me := f.Comm().RankOf(r)
	nranks := f.Comm().Size()
	chunk := fl.ChunkBytes()
	for v := 0; v < fl.Vars; v++ {
		ds, err := w.CreateDataset(fmt.Sprintf("unk%02d", v), chunk*int64(nranks))
		if err != nil {
			return err
		}
		off := int64(me) * chunk
		var data []byte
		if payload {
			data = fill(me, ds.Base+off, chunk)
		}
		if err := w.WriteAll(ds, off, data, chunk); err != nil {
			return fmt.Errorf("flashio var %d: %w", v, err)
		}
	}
	return w.Close()
}

// PlotFile writes a (much smaller) plot file with nVars variables at
// reduced precision, used by the flashio command's full three-file mode.
func (fl FlashIO) PlotFile(r *mpi.Rank, f *mpiio.File, nVars int, corners bool, payload bool) error {
	w, err := h5lite.Create(r, f)
	if err != nil {
		return err
	}
	me := f.Comm().RankOf(r)
	nranks := f.Comm().Size()
	zones := fl.ZonesPerBlock
	if corners {
		zones = 17 * 17 * 17 // zone corners instead of centres
	}
	chunk := int64(zones) * 4 * int64(fl.BlocksPerProc) // single precision
	for v := 0; v < nVars; v++ {
		ds, err := w.CreateDataset(fmt.Sprintf("plot%02d", v), chunk*int64(nranks))
		if err != nil {
			return err
		}
		var data []byte
		if payload {
			data = fill(me, ds.Base+int64(me)*chunk, chunk)
		}
		if err := w.WriteAll(ds, int64(me)*chunk, data, chunk); err != nil {
			return err
		}
	}
	return w.Close()
}
