package workloads

import (
	"testing"
	"testing/quick"

	"repro/internal/adio"
	"repro/internal/extent"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/store"

	"repro/internal/mpiio"
)

func testEnv(t *testing.T, nodes, perNode int) (*mpiio.Env, *mpi.World, *pfs.System) {
	t.Helper()
	k := sim.NewKernel(1)
	fab := netsim.New(k, netsim.Config{
		Nodes: nodes, InjRate: 3 * sim.GBps, EjeRate: 3 * sim.GBps,
		Latency: 2 * sim.Microsecond, MemRate: 6 * sim.GBps,
	})
	cfg := pfs.DefaultConfig()
	cfg.TargetJitter = nil
	fs := pfs.New(k, cfg, store.NewMem)
	w := mpi.NewWorld(k, fab, perNode)
	clients := make([]*pfs.Client, nodes)
	for i := range clients {
		clients[i] = fs.NewClient(fab.Node(i))
	}
	env := &mpiio.Env{Registry: adio.NewRegistry(adio.NewUFSDriver(func(n int) *pfs.Client { return clients[n] }))}
	return env, w, fs
}

func TestGridNearCubic(t *testing.T) {
	cases := map[int][3]int{
		8:   {2, 2, 2},
		512: {8, 8, 8},
		64:  {4, 4, 4},
	}
	for n, want := range cases {
		px, py, pz := grid(n)
		if px*py*pz != n {
			t.Fatalf("grid(%d) = %d,%d,%d does not multiply out", n, px, py, pz)
		}
		if [3]int{px, py, pz} != want {
			t.Fatalf("grid(%d) = %d,%d,%d, want %v", n, px, py, pz, want)
		}
	}
	px, py, pz := grid(6)
	if px*py*pz != 6 {
		t.Fatalf("grid(6) broken: %d %d %d", px, py, pz)
	}
}

// Property: coll_perf segments of all ranks exactly tile the file.
func TestCollPerfSegmentsTileFile(t *testing.T) {
	f := func(seed int64) bool {
		cp := CollPerf{RunBytes: 64, RunsY: 2, RunsZ: 2}
		for _, nranks := range []int{1, 2, 4, 8, 12} {
			var cover extent.Set
			var total int64
			for r := 0; r < nranks; r++ {
				for _, s := range cp.Segments(r, nranks) {
					if cover.Overlaps(s) {
						t.Logf("overlap at rank %d seg %v", r, s)
						return false
					}
					cover.Add(s)
					total += s.Len
				}
			}
			if total != cp.FileBytes(nranks) {
				t.Logf("nranks=%d total=%d want=%d", nranks, total, cp.FileBytes(nranks))
				return false
			}
			if cover.Len() != 1 || cover.Max() != total {
				t.Logf("nranks=%d coverage has holes: %v", nranks, cover.Extents())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestCollPerfIsInterleaved(t *testing.T) {
	cp := CollPerf{RunBytes: 64, RunsY: 2, RunsZ: 2}
	segs0 := cp.Segments(0, 8)
	segs1 := cp.Segments(1, 8)
	// Rank 1's first byte must precede rank 0's last byte (strided pattern).
	if segs1[0].Off >= segs0[len(segs0)-1].End() {
		t.Fatal("coll_perf pattern is not interleaved")
	}
}

func TestIOROffsets(t *testing.T) {
	ior := IOR{BlockBytes: 1 << 20, Segments: 3}
	if ior.FileBytes(4) != 12<<20 {
		t.Fatalf("file bytes = %d", ior.FileBytes(4))
	}
	if ior.Offset(2, 4, 1) != (4+2)<<20 {
		t.Fatalf("offset = %d", ior.Offset(2, 4, 1))
	}
}

func TestFlashIOSizesMatchPaper(t *testing.T) {
	fl := DefaultFlashIO()
	if fl.BlockBytes() != 32<<10 {
		t.Fatalf("block bytes = %d, want 32 KB", fl.BlockBytes())
	}
	// 768 KB per process per block across all 24 variables (§IV-C).
	perBlockAllVars := fl.BlockBytes() * int64(fl.Vars)
	if perBlockAllVars != 768<<10 {
		t.Fatalf("per-block-all-vars = %d, want 768 KB", perBlockAllVars)
	}
	// Slightly over 30 GB at 512 processes.
	total := fl.FileBytes(512)
	if total < 30<<30 || total > 32<<30 {
		t.Fatalf("checkpoint = %d bytes, want ~30 GB", total)
	}
}

func TestCollPerfFileBytesDefault(t *testing.T) {
	cp := DefaultCollPerf()
	if cp.BlockBytes() != 64<<20 {
		t.Fatalf("block = %d, want 64 MB", cp.BlockBytes())
	}
	if cp.FileBytes(512) != 32<<30 {
		t.Fatalf("file = %d, want 32 GB", cp.FileBytes(512))
	}
	ior := DefaultIOR()
	if ior.FileBytes(512) != 32<<30 {
		t.Fatalf("ior file = %d, want 32 GB", ior.FileBytes(512))
	}
}

// runPhase drives one workload write phase end-to-end with payloads and
// verifies the resulting file content against the workload's pattern.
func runPhase(t *testing.T, w Workload, verify func(t *testing.T, fs *pfs.System, nranks int)) {
	t.Helper()
	env, world, fs := testEnv(t, 2, 2)
	err := world.Run(func(r *mpi.Rank) {
		f, err := env.Open(r, world.Comm(), "out", mpiio.ModeCreate|mpiio.ModeWrOnly,
			mpi.Info{adio.HintCBWrite: "enable", adio.HintCBNodes: "2", adio.HintCBBufferSize: "65536"})
		if err != nil {
			t.Error(err)
			return
		}
		if err := w.WritePhase(r, f, true); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, fs, world.Size())
}

func TestCollPerfWritePhaseContent(t *testing.T) {
	cp := CollPerf{RunBytes: 512, RunsY: 2, RunsZ: 2}
	runPhase(t, cp, func(t *testing.T, fs *pfs.System, nranks int) {
		meta := fs.Lookup("out")
		if meta == nil {
			t.Fatal("no file")
		}
		if meta.Size() != cp.FileBytes(nranks) {
			t.Fatalf("size = %d, want %d", meta.Size(), cp.FileBytes(nranks))
		}
		for r := 0; r < nranks; r++ {
			for _, s := range cp.Segments(r, nranks) {
				buf := make([]byte, s.Len)
				meta.Store().ReadAt(buf, s.Off)
				for i, b := range buf {
					if want := patternByte(r, s.Off+int64(i)); b != want {
						t.Fatalf("rank %d seg %v byte %d: got %d want %d", r, s, i, b, want)
					}
				}
			}
		}
	})
}

func TestIORWritePhaseContent(t *testing.T) {
	ior := IOR{BlockBytes: 4096, Segments: 3}
	runPhase(t, ior, func(t *testing.T, fs *pfs.System, nranks int) {
		meta := fs.Lookup("out")
		if meta.Size() != ior.FileBytes(nranks) {
			t.Fatalf("size = %d", meta.Size())
		}
		for r := 0; r < nranks; r++ {
			for s := 0; s < ior.Segments; s++ {
				off := ior.Offset(r, nranks, s)
				buf := make([]byte, 8)
				meta.Store().ReadAt(buf, off)
				if buf[0] != patternByte(r, off) {
					t.Fatalf("segment %d rank %d wrong content", s, r)
				}
			}
		}
	})
}

func TestFlashIOWritePhaseContent(t *testing.T) {
	fl := FlashIO{BlocksPerProc: 2, ZonesPerBlock: 64, Vars: 3, BytesPerZone: 8}
	runPhase(t, fl, func(t *testing.T, fs *pfs.System, nranks int) {
		meta := fs.Lookup("out")
		if meta == nil {
			t.Fatal("no file")
		}
		// The checkpoint must be at least as large as the raw data.
		if meta.Size() < fl.FileBytes(nranks) {
			t.Fatalf("size = %d < data %d", meta.Size(), fl.FileBytes(nranks))
		}
		// Written coverage must include all dataset bytes plus metadata.
		written := meta.Store().Written().TotalBytes()
		if written < fl.FileBytes(nranks) {
			t.Fatalf("written = %d < data %d", written, fl.FileBytes(nranks))
		}
	})
}

func TestFlashIOPlotFile(t *testing.T) {
	env, world, fs := testEnv(t, 1, 2)
	fl := FlashIO{BlocksPerProc: 2, ZonesPerBlock: 64, Vars: 3, BytesPerZone: 8}
	err := world.Run(func(r *mpi.Rank) {
		f, err := env.Open(r, world.Comm(), "plot", mpiio.ModeCreate|mpiio.ModeWrOnly,
			mpi.Info{adio.HintCBWrite: "enable"})
		if err != nil {
			t.Error(err)
			return
		}
		if err := fl.PlotFile(r, f, 2, true, false); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Lookup("plot") == nil {
		t.Fatal("plot file missing")
	}
}
