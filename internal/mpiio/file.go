package mpiio

import (
	"errors"
	"fmt"

	"repro/internal/adio"
	"repro/internal/mpe"
	"repro/internal/mpi"
)

// Access-mode flags (MPI_MODE_*).
const (
	ModeRdOnly = 1 << iota
	ModeWrOnly
	ModeRdWr
	ModeCreate
	ModeDeleteOnClose
)

// Env holds the pieces an open needs: the driver registry and the optional
// cache hook factory (package core). One Env describes one cluster.
type Env struct {
	Registry *adio.Registry
	Hooks    adio.HooksFactory
}

// File is an open MPI file handle on one rank.
type File struct {
	env    *Env
	fh     *adio.File
	comm   *mpi.Comm
	rank   *mpi.Rank
	view   View
	amode  int
	path   string
	closed bool
}

// Open is MPI_File_open: collective over comm.
func (env *Env) Open(r *mpi.Rank, comm *mpi.Comm, path string, amode int, info mpi.Info) (*File, error) {
	return env.OpenWithLog(r, comm, path, amode, info, nil)
}

// OpenWithLog is Open with an explicit MPE log for phase instrumentation.
func (env *Env) OpenWithLog(r *mpi.Rank, comm *mpi.Comm, path string, amode int, info mpi.Info, log *mpe.Log) (*File, error) {
	if env.Registry == nil {
		return nil, errors.New("mpiio: env has no driver registry")
	}
	fh, err := adio.OpenColl(r, adio.OpenArgs{
		Comm:     comm,
		Registry: env.Registry,
		Path:     path,
		Create:   amode&ModeCreate != 0,
		Info:     info,
		Hooks:    env.Hooks,
		Log:      log,
	})
	if err != nil {
		return nil, err
	}
	return &File{env: env, fh: fh, comm: comm, rank: r, view: DefaultView(), amode: amode, path: path}, nil
}

// Handle exposes the underlying ADIO file (stats, hints, logs).
func (f *File) Handle() *adio.File { return f.fh }

// Comm returns the file's communicator.
func (f *File) Comm() *mpi.Comm { return f.comm }

// Path returns the path the file was opened with.
func (f *File) Path() string { return f.path }

// SetView is MPI_File_set_view with a flattened filetype.
func (f *File) SetView(disp int64, filetype FlatType) error {
	if err := filetype.Validate(); err != nil {
		return err
	}
	f.view = View{Disp: disp, Filetype: filetype}
	return nil
}

// View returns the current file view.
func (f *File) View() View { return f.view }

// GetInfo is MPI_File_get_info: the hints in use, as normalized.
func (f *File) GetInfo() mpi.Info { return f.fh.Hints().Echo() }

// SetAtomicity is MPI_File_set_atomicity.
func (f *File) SetAtomicity(v bool) { f.fh.SetAtomicity(v) }

// WriteAtAll is MPI_File_write_at_all: a collective write of n bytes at
// view offset vo. data may be nil for metadata-only simulation; otherwise
// len(data) must equal n.
func (f *File) WriteAtAll(vo int64, data []byte, n int64) error {
	if err := f.checkWritable(data, n); err != nil {
		return err
	}
	segs, err := f.view.Map(vo, n)
	if err != nil {
		return err
	}
	return f.fh.WriteStridedColl(segs, data)
}

// WriteAt is MPI_File_write_at: an independent write at view offset vo.
func (f *File) WriteAt(vo int64, data []byte, n int64) error {
	if err := f.checkWritable(data, n); err != nil {
		return err
	}
	segs, err := f.view.Map(vo, n)
	if err != nil {
		return err
	}
	return f.fh.WriteStrided(segs, data)
}

// ReadAt is MPI_File_read_at: an independent read at view offset vo into
// buf (or n bytes metadata-only when buf is nil). Reads come from the
// global file unless the cache layer's read extension is enabled (§III-B).
func (f *File) ReadAt(vo int64, buf []byte, n int64) error {
	if buf != nil {
		n = int64(len(buf))
	}
	segs, err := f.view.Map(vo, n)
	if err != nil {
		return err
	}
	return f.fh.ReadStrided(segs, buf)
}

// ReadAtAll is MPI_File_read_at_all: a collective read at view offset vo.
// Aggregators read their file domains and scatter the pieces (two-phase
// read).
func (f *File) ReadAtAll(vo int64, buf []byte, n int64) error {
	if buf != nil {
		n = int64(len(buf))
	}
	segs, err := f.view.Map(vo, n)
	if err != nil {
		return err
	}
	return f.fh.ReadStridedColl(segs, buf)
}

// Sync is MPI_File_sync: after it returns, all data this rank wrote is
// visible in the global file.
func (f *File) Sync() error { return f.fh.Flush() }

// Size is MPI_File_get_size: the current size of the global file.
func (f *File) Size() int64 { return f.fh.Backend().Size() }

// SetSize is MPI_File_set_size: truncate or extend the file. It is
// collective; callers must invoke it on every rank (rank 0 performs the
// metadata operation, then all ranks synchronise).
func (f *File) SetSize(size int64) error {
	if size < 0 {
		return errors.New("mpiio: negative size")
	}
	if f.comm.RankOf(f.rank) == 0 {
		f.fh.Backend().Resize(f.rank.Proc(), size)
	}
	f.comm.Barrier(f.rank)
	return nil
}

// Preallocate is MPI_File_preallocate: reserve space up to size. On the
// global file system this is a metadata-only operation in this model.
func (f *File) Preallocate(size int64) error {
	if size < 0 {
		return errors.New("mpiio: negative size")
	}
	if f.comm.RankOf(f.rank) == 0 && size > f.Size() {
		f.fh.Backend().Resize(f.rank.Proc(), size)
	}
	f.comm.Barrier(f.rank)
	return nil
}

// Close is MPI_File_close: collective; completes outstanding cache
// synchronisation first (§III-B), then closes, then optionally deletes.
func (f *File) Close() error {
	if f.closed {
		return errors.New("mpiio: file closed twice")
	}
	err := f.fh.Close()
	f.comm.Barrier(f.rank)
	f.closed = true
	if f.amode&ModeDeleteOnClose != 0 && f.comm.RankOf(f.rank) == 0 {
		if derr := f.env.Delete(f.rank, f.path); derr != nil && err == nil {
			err = derr
		}
	}
	return err
}

// Delete is MPI_File_delete.
func (env *Env) Delete(r *mpi.Rank, path string) error {
	drv, rel, err := env.Registry.Resolve(path)
	if err != nil {
		return err
	}
	return drv.Unlink(r, rel)
}

func (f *File) checkWritable(data []byte, n int64) error {
	if f.closed {
		return errors.New("mpiio: write on closed file")
	}
	if f.amode&ModeRdOnly != 0 {
		return errors.New("mpiio: write on read-only file")
	}
	if data != nil && int64(len(data)) != n {
		return fmt.Errorf("mpiio: data length %d != n %d", len(data), n)
	}
	return nil
}
