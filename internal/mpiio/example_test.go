package mpiio_test

import (
	"fmt"

	"repro/internal/mpiio"
)

// A vector file view: 2 rows of 4 bytes, strided by 16 bytes, displaced by
// 100 — the classic row-interleaved shared-array layout.
func ExampleView_Map() {
	v := mpiio.View{Disp: 100, Filetype: mpiio.Vector(2, 4, 16)}
	// Note: the trailing piece of tile 0 and the head of tile 1 are
	// adjacent in the file and get merged.
	segs, _ := v.Map(2, 8) // view bytes 2..10
	for _, s := range segs {
		fmt.Println(s)
	}
	// Output:
	// [102,104)
	// [116,122)
}

func ExampleSubarray3D() {
	// A 4x4x1 global byte array split into 2x2x1 blocks; the block at
	// (2,2,0) flattens to two x-runs.
	ft, _ := mpiio.Subarray3D([3]int64{4, 4, 1}, [3]int64{2, 2, 1}, [3]int64{2, 2, 0})
	for _, s := range ft.Segs {
		fmt.Println(s)
	}
	fmt.Println("extent:", ft.Extent)
	// Output:
	// [10,12)
	// [14,16)
	// extent: 16
}
