// Package mpiio is the user-facing MPI-IO layer: MPI_File_open/close/sync,
// file views over flattened datatypes, collective writes
// (MPI_File_write_all) that dispatch into the adio two-phase machinery, and
// independent reads/writes. It is the surface through which the benchmarks
// and the MPIWRAP library drive the system.
package mpiio

import (
	"fmt"

	"repro/internal/extent"
)

// FlatType is a flattened MPI datatype: the byte segments covered within
// one type extent plus the extent (stride) itself. ROMIO flattens derived
// datatypes to exactly this representation before doing I/O.
type FlatType struct {
	Segs   []extent.Extent // within [0, Extent), sorted, non-overlapping
	Extent int64           // total span of one instance of the type
}

// Contiguous returns a flat type covering n contiguous bytes.
func Contiguous(n int64) FlatType {
	return FlatType{Segs: []extent.Extent{{Off: 0, Len: n}}, Extent: n}
}

// Vector returns a flat type of count blocks of blockLen bytes separated by
// stride bytes (MPI_Type_vector over a byte etype).
func Vector(count int, blockLen, stride int64) FlatType {
	ft := FlatType{Extent: int64(count-1)*stride + blockLen}
	for i := 0; i < count; i++ {
		ft.Segs = append(ft.Segs, extent.Extent{Off: int64(i) * stride, Len: blockLen})
	}
	return ft
}

// Subarray3D builds the flattened filetype of a 3D block subarray of
// bytes (MPI_Type_create_subarray with a byte etype, C order with x
// fastest): gsizes are the global array dimensions, lsizes the local
// block dimensions and starts the block's origin. The result is the
// lsizes[1]*lsizes[2] contiguous x-runs the block flattens to — exactly
// the pattern coll_perf writes.
func Subarray3D(gsizes, lsizes, starts [3]int64) (FlatType, error) {
	for d := 0; d < 3; d++ {
		if gsizes[d] <= 0 || lsizes[d] <= 0 || starts[d] < 0 {
			return FlatType{}, fmt.Errorf("mpiio: subarray dim %d: invalid sizes g=%d l=%d s=%d",
				d, gsizes[d], lsizes[d], starts[d])
		}
		if starts[d]+lsizes[d] > gsizes[d] {
			return FlatType{}, fmt.Errorf("mpiio: subarray dim %d exceeds global size", d)
		}
	}
	gx, gy := gsizes[0], gsizes[1]
	ft := FlatType{Extent: gsizes[0] * gsizes[1] * gsizes[2]}
	for z := int64(0); z < lsizes[2]; z++ {
		for y := int64(0); y < lsizes[1]; y++ {
			off := ((starts[2]+z)*gy+(starts[1]+y))*gx + starts[0]
			ft.Segs = append(ft.Segs, extent.Extent{Off: off, Len: lsizes[0]})
		}
	}
	return ft, nil
}

// Size returns the number of data bytes in one type instance.
func (t FlatType) Size() int64 {
	var n int64
	for _, s := range t.Segs {
		n += s.Len
	}
	return n
}

// Validate checks the flat type invariants.
func (t FlatType) Validate() error {
	var prev extent.Extent
	for i, s := range t.Segs {
		if s.Len <= 0 {
			return fmt.Errorf("mpiio: flat type segment %d empty", i)
		}
		if i > 0 && prev.End() > s.Off {
			return fmt.Errorf("mpiio: flat type segments %d,%d overlap", i-1, i)
		}
		if s.End() > t.Extent {
			return fmt.Errorf("mpiio: segment %d exceeds type extent", i)
		}
		prev = s
	}
	return nil
}

// View is an MPI-IO file view: data starts at displacement Disp and is laid
// out according to the tiled filetype. View offsets address only the
// visible bytes.
type View struct {
	Disp     int64
	Filetype FlatType
}

// DefaultView exposes the whole file from byte 0.
func DefaultView() View {
	return View{Disp: 0, Filetype: FlatType{}}
}

// isDefault reports whether the view is the identity mapping.
func (v View) isDefault() bool { return len(v.Filetype.Segs) == 0 }

// Map translates the view-space byte range [vo, vo+n) into file extents,
// in ascending file offset order with adjacent extents merged.
func (v View) Map(vo, n int64) ([]extent.Extent, error) {
	if vo < 0 || n < 0 {
		return nil, fmt.Errorf("mpiio: negative view range (%d,%d)", vo, n)
	}
	if n == 0 {
		return nil, nil
	}
	if v.isDefault() {
		return []extent.Extent{{Off: v.Disp + vo, Len: n}}, nil
	}
	ft := v.Filetype
	size := ft.Size()
	if size <= 0 {
		return nil, fmt.Errorf("mpiio: filetype has no data bytes")
	}
	var out []extent.Extent
	appendExt := func(e extent.Extent) {
		if len(out) > 0 && out[len(out)-1].End() == e.Off {
			out[len(out)-1].Len += e.Len
			return
		}
		out = append(out, e)
	}
	tile := vo / size
	within := vo - tile*size // data bytes to skip inside the tile
	remaining := n
	for remaining > 0 {
		base := v.Disp + tile*ft.Extent
		var skipped int64
		for _, s := range ft.Segs {
			if remaining == 0 {
				break
			}
			segStart := skipped
			skipped += s.Len
			if within >= skipped {
				continue // fully before our start
			}
			intoSeg := int64(0)
			if within > segStart {
				intoSeg = within - segStart
			}
			take := s.Len - intoSeg
			if take > remaining {
				take = remaining
			}
			appendExt(extent.Extent{Off: base + s.Off + intoSeg, Len: take})
			remaining -= take
		}
		tile++
		within = 0
	}
	return out, nil
}
