package mpiio

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/adio"
	"repro/internal/extent"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/store"
)

func testEnv(t *testing.T, nodes, perNode int) (*Env, *mpi.World, *pfs.System) {
	t.Helper()
	k := sim.NewKernel(1)
	fab := netsim.New(k, netsim.Config{
		Nodes: nodes, InjRate: 3 * sim.GBps, EjeRate: 3 * sim.GBps,
		Latency: 2 * sim.Microsecond, MemRate: 6 * sim.GBps,
	})
	cfg := pfs.DefaultConfig()
	cfg.TargetJitter = nil
	fs := pfs.New(k, cfg, store.NewMem)
	w := mpi.NewWorld(k, fab, perNode)
	clients := make([]*pfs.Client, nodes)
	for i := range clients {
		clients[i] = fs.NewClient(fab.Node(i))
	}
	env := &Env{Registry: adio.NewRegistry(adio.NewUFSDriver(func(n int) *pfs.Client { return clients[n] }))}
	return env, w, fs
}

func TestFlatTypeBasics(t *testing.T) {
	v := Vector(3, 10, 100)
	if v.Size() != 30 || v.Extent != 210 {
		t.Fatalf("vector size=%d extent=%d", v.Size(), v.Extent)
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	c := Contiguous(64)
	if c.Size() != 64 || c.Extent != 64 {
		t.Fatal("contiguous wrong")
	}
	bad := FlatType{Segs: []extent.Extent{{Off: 0, Len: 10}, {Off: 5, Len: 10}}, Extent: 20}
	if bad.Validate() == nil {
		t.Fatal("overlapping segments must fail validation")
	}
}

func TestViewMapDefault(t *testing.T) {
	v := View{Disp: 100}
	segs, err := v.Map(50, 20)
	if err != nil || len(segs) != 1 || segs[0] != (extent.Extent{Off: 150, Len: 20}) {
		t.Fatalf("default map = %v, %v", segs, err)
	}
}

func TestViewMapVectorTiling(t *testing.T) {
	// Filetype: 10 data bytes then 90 hole, extent 100.
	v := View{Disp: 1000, Filetype: Vector(1, 10, 10)}
	v.Filetype.Extent = 100
	// View bytes 5..25 => file [1005,1010) [1100,1110) [1200,1205).
	segs, err := v.Map(5, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := []extent.Extent{{Off: 1005, Len: 5}, {Off: 1100, Len: 10}, {Off: 1200, Len: 5}}
	if len(segs) != len(want) {
		t.Fatalf("segs = %v", segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segs = %v, want %v", segs, want)
		}
	}
}

func TestViewMapMergesAdjacent(t *testing.T) {
	// Fully dense filetype: tiles are adjacent in the file and must merge.
	v := View{Disp: 0, Filetype: Contiguous(10)}
	segs, err := v.Map(0, 35)
	if err != nil || len(segs) != 1 || segs[0].Len != 35 {
		t.Fatalf("dense view must merge: %v %v", segs, err)
	}
}

// Property: Map covers exactly n bytes, monotonically increasing, within
// the data regions of the filetype.
func TestViewMapProperty(t *testing.T) {
	f := func(voRaw, nRaw uint16, blockRaw, strideRaw uint8) bool {
		block := int64(blockRaw%32) + 1
		stride := block + int64(strideRaw%32)
		v := View{Disp: 7, Filetype: Vector(3, block, stride)}
		vo, n := int64(voRaw%1000), int64(nRaw%1000)
		segs, err := v.Map(vo, n)
		if err != nil {
			return false
		}
		var total int64
		last := int64(-1)
		for _, s := range segs {
			if s.Len <= 0 || s.Off <= last {
				return false
			}
			last = s.End() - 1
			total += s.Len
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveWriteThroughView(t *testing.T) {
	env, w, fs := testEnv(t, 2, 2)
	// Each rank writes 4 interleaved 64-byte rows via a vector view.
	const rows, rowLen = 4, 64
	nranks := w.Size()
	err := w.Run(func(r *mpi.Rank) {
		f, err := env.Open(r, w.Comm(), "arr.dat", ModeCreate|ModeWrOnly,
			mpi.Info{adio.HintCBWrite: "enable", adio.HintCBNodes: "2"})
		if err != nil {
			t.Error(err)
			return
		}
		// Row-interleaved: rank r owns row r of every group of nranks rows.
		ft := Vector(rows, rowLen, int64(nranks*rowLen))
		if err := f.SetView(int64(r.ID()*rowLen), ft); err != nil {
			t.Error(err)
		}
		data := bytes.Repeat([]byte{byte(r.ID() + 1)}, rows*rowLen)
		if err := f.WriteAtAll(0, data, int64(len(data))); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	meta := fs.Lookup("arr.dat")
	if meta == nil {
		t.Fatal("file missing")
	}
	got := make([]byte, nranks*rows*rowLen)
	meta.Store().ReadAt(got, 0)
	for row := 0; row < nranks*rows; row++ {
		owner := byte(row%nranks + 1)
		for b := 0; b < rowLen; b++ {
			if got[row*rowLen+b] != owner {
				t.Fatalf("row %d byte %d = %d, want %d", row, b, got[row*rowLen+b], owner)
			}
		}
	}
}

func TestIndependentWriteAndReadBack(t *testing.T) {
	env, w, _ := testEnv(t, 1, 2)
	err := w.Run(func(r *mpi.Rank) {
		f, err := env.Open(r, w.Comm(), "f", ModeCreate|ModeRdWr, nil)
		if err != nil {
			t.Error(err)
			return
		}
		payload := []byte(fmt.Sprintf("rank-%d-payload", r.ID()))
		off := int64(r.ID()) * 100
		if err := f.WriteAt(off, payload, int64(len(payload))); err != nil {
			t.Error(err)
		}
		if err := f.Sync(); err != nil {
			t.Error(err)
		}
		w.Comm().Barrier(r)
		// Read the other rank's data.
		other := (r.ID() + 1) % 2
		buf := make([]byte, len(payload))
		if err := f.ReadAt(int64(other)*100, buf, 0); err != nil {
			t.Error(err)
		}
		want := fmt.Sprintf("rank-%d-payload", other)
		if string(buf) != want {
			t.Errorf("read %q, want %q", buf, want)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestModeEnforcement(t *testing.T) {
	env, w, _ := testEnv(t, 1, 1)
	err := w.Run(func(r *mpi.Rank) {
		f, err := env.Open(r, w.Comm(), "ro", ModeCreate|ModeRdOnly, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.WriteAt(0, nil, 10); err == nil {
			t.Error("write on read-only file must fail")
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err == nil {
			t.Error("double close must fail")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeleteOnClose(t *testing.T) {
	env, w, fs := testEnv(t, 1, 2)
	err := w.Run(func(r *mpi.Rank) {
		f, err := env.Open(r, w.Comm(), "tmp", ModeCreate|ModeWrOnly|ModeDeleteOnClose, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Lookup("tmp") != nil {
		t.Fatal("file must be deleted on close")
	}
}

func TestGetInfoEchoesHints(t *testing.T) {
	env, w, _ := testEnv(t, 1, 1)
	err := w.Run(func(r *mpi.Rank) {
		f, err := env.Open(r, w.Comm(), "f", ModeCreate, mpi.Info{adio.HintCBNodes: "1", "e10_cache": "disable"})
		if err != nil {
			t.Error(err)
			return
		}
		info := f.GetInfo()
		if info[adio.HintCBNodes] != "1" || info["e10_cache"] != "disable" {
			t.Errorf("info = %v", info)
		}
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubarray3D(t *testing.T) {
	// Global 8x4x2 byte array, local 4x2x2 block at (4,2,0).
	ft, err := Subarray3D([3]int64{8, 4, 2}, [3]int64{4, 2, 2}, [3]int64{4, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := ft.Validate(); err != nil {
		t.Fatal(err)
	}
	if ft.Size() != 4*2*2 || ft.Extent != 8*4*2 {
		t.Fatalf("size=%d extent=%d", ft.Size(), ft.Extent)
	}
	// First run: z=0,y=2 -> off = (0*4+2)*8+4 = 20.
	if ft.Segs[0] != (extent.Extent{Off: 20, Len: 4}) {
		t.Fatalf("segs[0] = %v", ft.Segs[0])
	}
	// Runs per block = ly*lz = 4.
	if len(ft.Segs) != 4 {
		t.Fatalf("runs = %d", len(ft.Segs))
	}
}

func TestSubarray3DRejectsBadDims(t *testing.T) {
	if _, err := Subarray3D([3]int64{4, 4, 4}, [3]int64{5, 1, 1}, [3]int64{0, 0, 0}); err == nil {
		t.Fatal("oversized block must fail")
	}
	if _, err := Subarray3D([3]int64{4, 4, 4}, [3]int64{2, 2, 2}, [3]int64{3, 0, 0}); err == nil {
		t.Fatal("out-of-range start must fail")
	}
	if _, err := Subarray3D([3]int64{0, 4, 4}, [3]int64{1, 1, 1}, [3]int64{0, 0, 0}); err == nil {
		t.Fatal("zero global dim must fail")
	}
}

// Property: subarrays of all ranks in a grid tile the global array exactly.
func TestSubarray3DTilesProperty(t *testing.T) {
	f := func(bx, by, bz uint8) bool {
		lx, ly, lz := int64(bx%5)+1, int64(by%4)+1, int64(bz%3)+1
		const px, py, pz = 2, 2, 2
		g := [3]int64{px * lx, py * ly, pz * lz}
		var cover extent.Set
		var total int64
		for iz := int64(0); iz < pz; iz++ {
			for iy := int64(0); iy < py; iy++ {
				for ix := int64(0); ix < px; ix++ {
					ft, err := Subarray3D(g, [3]int64{lx, ly, lz},
						[3]int64{ix * lx, iy * ly, iz * lz})
					if err != nil {
						return false
					}
					for _, s := range ft.Segs {
						if cover.Overlaps(s) {
							return false
						}
						cover.Add(s)
						total += s.Len
					}
				}
			}
		}
		want := g[0] * g[1] * g[2]
		return total == want && cover.Len() == 1 && cover.Max() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFileSizeOps(t *testing.T) {
	env, w, fs := testEnv(t, 1, 2)
	err := w.Run(func(r *mpi.Rank) {
		f, err := env.Open(r, w.Comm(), "f", ModeCreate|ModeRdWr, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.WriteAt(0, nil, 1000); err != nil {
			t.Error(err)
		}
		w.Comm().Barrier(r)
		if f.Size() != 1000 {
			t.Errorf("size = %d", f.Size())
		}
		if err := f.SetSize(500); err != nil {
			t.Error(err)
		}
		if f.Size() != 500 {
			t.Errorf("size after truncate = %d", f.Size())
		}
		if err := f.Preallocate(2000); err != nil {
			t.Error(err)
		}
		if f.Size() != 2000 {
			t.Errorf("size after preallocate = %d", f.Size())
		}
		if err := f.SetSize(-1); err == nil {
			t.Error("negative size must fail")
		}
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Lookup("f").Size() != 2000 {
		t.Fatal("global size wrong")
	}
}

func TestCollectiveReadThroughViewAndSubarray(t *testing.T) {
	env, w, _ := testEnv(t, 2, 2)
	err := w.Run(func(r *mpi.Rank) {
		f, err := env.Open(r, w.Comm(), "arr", ModeCreate|ModeRdWr,
			mpi.Info{adio.HintCBWrite: "enable", adio.HintCBRead: "enable", adio.HintCBNodes: "2"})
		if err != nil {
			t.Error(err)
			return
		}
		me := w.Comm().RankOf(r)
		// 2x2x1 process grid over a 64x8x1 global byte array.
		ft, err := Subarray3D([3]int64{64, 8, 1}, [3]int64{32, 4, 1},
			[3]int64{int64(me%2) * 32, int64(me/2) * 4, 0})
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.SetView(0, ft); err != nil {
			t.Error(err)
		}
		data := bytes.Repeat([]byte{byte(me + 1)}, 32*4)
		if err := f.WriteAtAll(0, data, int64(len(data))); err != nil {
			t.Error(err)
		}
		got := make([]byte, len(data))
		if err := f.ReadAtAll(0, got, 0); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("rank %d: subarray read-back mismatch", me)
		}
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}
