// Package mpe provides the phase instrumentation used to reproduce the
// paper's collective-I/O cost breakdowns (Figures 5, 6, 8 and 10). On the
// real system these numbers come from MPE state logging inside ROMIO; here
// every rank records named intervals in virtual time and the harness
// aggregates them across ranks.
package mpe

import (
	"sort"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Phase names one instrumented component of the collective write path.
// The names match the stacked components in the paper's breakdown figures.
type Phase string

// Phases of the collective write path (Figure 2 of the paper), plus the
// cache-specific not_hidden_sync term of Equation 1.
const (
	PhaseOpen          Phase = "open"
	PhaseCalc          Phase = "calc_offsets"     // offset exchange + file-domain computation
	PhaseShuffleA2A    Phase = "shuffle_all2all"  // MPI_Alltoall dissemination
	PhaseExchWaitall   Phase = "exchange_waitall" // MPI_Waitall of the data exchange
	PhasePack          Phase = "pack"             // filling the collective buffer
	PhaseWrite         Phase = "write"            // ADIO_WriteContig
	PhasePostWrite     Phase = "post_write"       // final MPI_Allreduce (error exchange)
	PhaseClose         Phase = "close"
	PhaseNotHiddenSync Phase = "not_hidden_sync" // T_s(k) - C(k+1) when positive
)

// BreakdownPhases lists the phases shown in the paper's breakdown figures,
// in stacking order.
var BreakdownPhases = []Phase{
	PhaseCalc, PhaseShuffleA2A, PhaseExchWaitall, PhasePack,
	PhaseWrite, PhasePostWrite, PhaseNotHiddenSync,
}

// Log accumulates per-phase time on one rank. The zero value is unusable;
// use NewLog.
type Log struct {
	totals    map[Phase]sim.Time
	counts    map[Phase]int64
	timeline  bool
	intervals []Interval
	tracer    *trace.Tracer
	track     trace.TrackID
	registry  *metrics.Registry
	rank      string
	hists     map[Phase]*metrics.Histogram
}

// NewLog creates an empty log.
func NewLog() *Log {
	return &Log{totals: make(map[Phase]sim.Time), counts: make(map[Phase]int64)}
}

// Add records d of time spent in phase ph.
func (l *Log) Add(ph Phase, d sim.Time) {
	if l == nil || d < 0 {
		return
	}
	l.totals[ph] += d
	l.counts[ph]++
	l.phaseHist(ph).Observe(int64(d))
}

// Total returns the accumulated time in ph.
func (l *Log) Total(ph Phase) sim.Time {
	if l == nil {
		return 0
	}
	return l.totals[ph]
}

// Count returns the number of intervals recorded for ph.
func (l *Log) Count(ph Phase) int64 {
	if l == nil {
		return 0
	}
	return l.counts[ph]
}

// Phases returns all phases with nonzero time, sorted by name.
func (l *Log) Phases() []Phase {
	if l == nil {
		return nil
	}
	out := make([]Phase, 0, len(l.totals))
	for ph := range l.totals {
		out = append(out, ph)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reset clears the log, including any recorded timeline.
func (l *Log) Reset() {
	for ph := range l.totals {
		delete(l.totals, ph)
	}
	for ph := range l.counts {
		delete(l.counts, ph)
	}
	l.intervals = nil
}

// BindTracer mirrors every phase interval recorded through Span.End onto
// the given tracer track as a "phase"-category span, so MPE's existing
// instrumentation of the collective write path flows into exported traces
// without touching the call sites.
func (l *Log) BindTracer(tr *trace.Tracer, tk trace.TrackID) {
	if l == nil {
		return
	}
	l.tracer = tr
	l.track = tk
}

// BindMetrics mirrors every phase interval recorded through Span.End (and
// direct Add calls) into a per-rank, per-phase duration histogram in the
// given registry, labelled {layer=adio, phase=<ph>, rank=<rank>}. Like
// BindTracer, it records values only and never perturbs virtual time.
func (l *Log) BindMetrics(m *metrics.Registry, rank int) {
	if l == nil || m == nil {
		return
	}
	l.registry = m
	l.rank = strconv.Itoa(rank)
	l.hists = make(map[Phase]*metrics.Histogram)
}

// phaseHist resolves (and caches) the histogram for ph, or nil when no
// registry is bound.
func (l *Log) phaseHist(ph Phase) *metrics.Histogram {
	if l == nil || l.registry == nil {
		return nil
	}
	h, ok := l.hists[ph]
	if !ok {
		h = l.registry.Histogram("phase_ns",
			metrics.L(metrics.KeyLayer, "adio"),
			metrics.L(metrics.KeyPhase, string(ph)),
			metrics.L(metrics.KeyRank, l.rank))
		l.hists[ph] = h
	}
	return h
}

// Span measures one interval: s := StartSpan(now) ... s.End(log, ph, now).
type Span struct{ start sim.Time }

// StartSpan begins an interval at the given virtual time.
func StartSpan(now sim.Time) Span { return Span{start: now} }

// End records the interval [start, now) into l under ph.
func (s Span) End(l *Log, ph Phase, now sim.Time) {
	l.Add(ph, now-s.start)
	if l == nil {
		return
	}
	if l.timeline && now > s.start {
		l.intervals = append(l.intervals, Interval{Phase: ph, Start: s.start, End: now})
	}
	if l.tracer != nil && now > s.start {
		l.tracer.SpanAt(l.track, "phase", string(ph), int64(s.start), int64(now))
	}
}

// Breakdown aggregates one phase across many rank logs.
type Breakdown struct {
	Max  sim.Time // critical-path view: the slowest rank's total
	Mean sim.Time
	Sum  sim.Time
}

// Aggregate computes the cross-rank breakdown of ph over logs, skipping
// nils (non-participating ranks).
func Aggregate(logs []*Log, ph Phase) Breakdown {
	var b Breakdown
	n := 0
	for _, l := range logs {
		if l == nil {
			continue
		}
		t := l.Total(ph)
		b.Sum += t
		if t > b.Max {
			b.Max = t
		}
		n++
	}
	if n > 0 {
		b.Mean = b.Sum / sim.Time(n)
	}
	return b
}
