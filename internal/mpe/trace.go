package mpe

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Interval is one recorded phase occurrence on a rank's timeline.
type Interval struct {
	Phase Phase
	Start sim.Time
	End   sim.Time
}

// EnableTimeline makes the log keep individual intervals (not just
// totals), so a trace can be exported afterwards. Off by default: large
// runs record millions of intervals.
func (l *Log) EnableTimeline() { l.timeline = true }

// Timeline returns the recorded intervals in completion order.
func (l *Log) Timeline() []Interval {
	if l == nil {
		return nil
	}
	out := make([]Interval, len(l.intervals))
	copy(out, l.intervals)
	return out
}

// traceEvent is one Chrome trace-format entry ("X" = complete event).
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// WriteChromeTrace renders per-rank timelines in the Chrome trace-event
// JSON format (load via chrome://tracing or Perfetto). logs[i] is rank i's
// log; nil entries are skipped.
func WriteChromeTrace(w io.Writer, logs []*Log) error {
	var events []traceEvent
	for rank, l := range logs {
		if l == nil {
			continue
		}
		for _, iv := range l.intervals {
			events = append(events, traceEvent{
				Name: string(iv.Phase),
				Cat:  "collective-io",
				Ph:   "X",
				TS:   float64(iv.Start) / 1e3,
				Dur:  float64(iv.End-iv.Start) / 1e3,
				PID:  0,
				TID:  rank,
			})
		}
	}
	enc := json.NewEncoder(w)
	if _, err := fmt.Fprint(w, `{"traceEvents":`); err != nil {
		return err
	}
	if err := enc.Encode(events); err != nil {
		return err
	}
	_, err := fmt.Fprint(w, "}")
	return err
}
