package mpe

import (
	"testing"

	"repro/internal/sim"
)

func TestLogAccumulates(t *testing.T) {
	l := NewLog()
	l.Add(PhaseWrite, 2*sim.Second)
	l.Add(PhaseWrite, 3*sim.Second)
	l.Add(PhasePostWrite, sim.Second)
	if l.Total(PhaseWrite) != 5*sim.Second || l.Count(PhaseWrite) != 2 {
		t.Fatalf("write total=%v count=%d", l.Total(PhaseWrite), l.Count(PhaseWrite))
	}
	phases := l.Phases()
	if len(phases) != 2 {
		t.Fatalf("phases = %v", phases)
	}
}

func TestNegativeAndNilAreIgnored(t *testing.T) {
	l := NewLog()
	l.Add(PhaseWrite, -sim.Second)
	if l.Total(PhaseWrite) != 0 {
		t.Fatal("negative durations must be ignored")
	}
	var nilLog *Log
	nilLog.Add(PhaseWrite, sim.Second) // must not panic
	if nilLog.Total(PhaseWrite) != 0 || nilLog.Count(PhaseWrite) != 0 || nilLog.Phases() != nil {
		t.Fatal("nil log must behave as empty")
	}
}

func TestSpan(t *testing.T) {
	l := NewLog()
	s := StartSpan(10 * sim.Second)
	s.End(l, PhaseShuffleA2A, 12*sim.Second)
	if l.Total(PhaseShuffleA2A) != 2*sim.Second {
		t.Fatalf("span total = %v", l.Total(PhaseShuffleA2A))
	}
}

func TestReset(t *testing.T) {
	l := NewLog()
	l.Add(PhaseOpen, sim.Second)
	l.Reset()
	if l.Total(PhaseOpen) != 0 || len(l.Phases()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestAggregate(t *testing.T) {
	a, b := NewLog(), NewLog()
	a.Add(PhaseWrite, 2*sim.Second)
	b.Add(PhaseWrite, 6*sim.Second)
	agg := Aggregate([]*Log{a, nil, b}, PhaseWrite)
	if agg.Max != 6*sim.Second {
		t.Fatalf("max = %v", agg.Max)
	}
	if agg.Mean != 4*sim.Second {
		t.Fatalf("mean = %v", agg.Mean)
	}
	if agg.Sum != 8*sim.Second {
		t.Fatalf("sum = %v", agg.Sum)
	}
}

func TestBreakdownPhasesIncludeNotHiddenSync(t *testing.T) {
	found := false
	for _, ph := range BreakdownPhases {
		if ph == PhaseNotHiddenSync {
			found = true
		}
	}
	if !found {
		t.Fatal("not_hidden_sync missing from breakdown phases")
	}
}
