package mpe

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestTimelineDisabledByDefault(t *testing.T) {
	l := NewLog()
	s := StartSpan(0)
	s.End(l, PhaseWrite, sim.Second)
	if len(l.Timeline()) != 0 {
		t.Fatal("timeline must be opt-in")
	}
}

func TestTimelineRecordsIntervals(t *testing.T) {
	l := NewLog()
	l.EnableTimeline()
	StartSpan(sim.Second).End(l, PhaseWrite, 2*sim.Second)
	StartSpan(3*sim.Second).End(l, PhasePostWrite, 4*sim.Second)
	StartSpan(5*sim.Second).End(l, PhasePack, 5*sim.Second) // zero-length: dropped
	tl := l.Timeline()
	if len(tl) != 2 {
		t.Fatalf("timeline = %v", tl)
	}
	if tl[0].Phase != PhaseWrite || tl[0].Start != sim.Second || tl[0].End != 2*sim.Second {
		t.Fatalf("interval 0 = %+v", tl[0])
	}
	l.Reset()
	if len(l.Timeline()) != 0 {
		t.Fatal("reset must clear the timeline")
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	a := NewLog()
	a.EnableTimeline()
	StartSpan(0).End(a, PhaseWrite, sim.Millisecond)
	b := NewLog()
	b.EnableTimeline()
	StartSpan(sim.Millisecond).End(b, PhaseShuffleA2A, 3*sim.Millisecond)

	var sb strings.Builder
	if err := WriteChromeTrace(&sb, []*Log{a, nil, b}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			TID  int     `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %+v", doc.TraceEvents)
	}
	if doc.TraceEvents[0].Name != "write" || doc.TraceEvents[0].TID != 0 {
		t.Fatalf("event 0 = %+v", doc.TraceEvents[0])
	}
	if doc.TraceEvents[1].TID != 2 || doc.TraceEvents[1].Dur != 2000 {
		t.Fatalf("event 1 = %+v", doc.TraceEvents[1])
	}
}
