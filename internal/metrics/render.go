package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// CounterSnap is one counter series in a Snapshot.
type CounterSnap struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Total  int64             `json:"total"`
}

// GaugeSnap is one gauge series in a Snapshot.
type GaugeSnap struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Last    int64             `json:"last"`
	Min     int64             `json:"min"`
	Max     int64             `json:"max"`
	Samples int64             `json:"samples"`
}

// HistogramSnap is one histogram series in a Snapshot. Bounds are the fixed
// bucket upper bounds; Counts has one more entry than Bounds (the +Inf
// bucket). P50/P95/P99 are exact nearest-rank percentiles.
type HistogramSnap struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Count  int64             `json:"count"`
	Sum    int64             `json:"sum"`
	Min    int64             `json:"min"`
	Max    int64             `json:"max"`
	P50    int64             `json:"p50"`
	P95    int64             `json:"p95"`
	P99    int64             `json:"p99"`
	Bounds []int64           `json:"bounds"`
	Counts []int64           `json:"counts"`
}

// Snapshot is the registry's serializable state, sorted by (name, labels)
// so that encoding it is deterministic. encoding/json renders map keys in
// sorted order, which keeps the Labels maps deterministic too.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Val
	}
	return m
}

// Snapshot captures the registry's current state. A nil registry returns an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	cs := append([]*Counter(nil), r.counters...)
	sort.Slice(cs, func(i, j int) bool { return cs[i].key < cs[j].key })
	for _, c := range cs {
		s.Counters = append(s.Counters, CounterSnap{Name: c.name, Labels: labelMap(c.labels), Total: c.total})
	}
	gs := append([]*Gauge(nil), r.gauges...)
	sort.Slice(gs, func(i, j int) bool { return gs[i].key < gs[j].key })
	for _, g := range gs {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: g.name, Labels: labelMap(g.labels),
			Last: g.last, Min: g.min, Max: g.max, Samples: g.samples})
	}
	hs := append([]*Histogram(nil), r.hists...)
	sort.Slice(hs, func(i, j int) bool { return hs[i].key < hs[j].key })
	for _, h := range hs {
		s.Histograms = append(s.Histograms, HistogramSnap{
			Name: h.name, Labels: labelMap(h.labels),
			Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
			P50: h.Percentile(50), P95: h.Percentile(95), P99: h.Percentile(99),
			Bounds: append([]int64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
		})
	}
	return s
}

// FindCounter returns the total of the named counter series, or 0 when it
// was never registered. Lookup order of labels does not matter.
func (r *Registry) FindCounter(name string, labels ...Label) int64 {
	if r == nil {
		return 0
	}
	if c, ok := r.counterIdx[canonKey(name, sortLabels(labels))]; ok {
		return c.total
	}
	return 0
}

// FindHistogram returns the named histogram series, or nil.
func (r *Registry) FindHistogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.histIdx[canonKey(name, sortLabels(labels))]
}

// SumCounters sums every counter series with the given name across all
// label sets (e.g. a per-rank counter aggregated over ranks).
func (r *Registry) SumCounters(name string) int64 {
	if r == nil {
		return 0
	}
	var total int64
	for _, c := range r.counters {
		if c.name == name {
			total += c.total
		}
	}
	return total
}

// SumHistograms aggregates count and sum over every histogram series with
// the given name.
func (r *Registry) SumHistograms(name string) (count, sum int64) {
	if r == nil {
		return 0, 0
	}
	for _, h := range r.hists {
		if h.name == name {
			count += h.count
			sum += h.sum
		}
	}
	return count, sum
}

// WriteText writes a plain-text digest of the registry: every series in
// sorted (name, labels) order with integer values only, so the output is
// byte-deterministic for a deterministic run.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if r == nil {
		fmt.Fprintln(bw, "metrics: disabled")
		return bw.Flush()
	}
	fmt.Fprintf(bw, "metrics: %d counters, %d gauges, %d histograms\n",
		len(r.counters), len(r.gauges), len(r.hists))
	if len(r.counters) > 0 {
		cs := append([]*Counter(nil), r.counters...)
		sort.Slice(cs, func(i, j int) bool { return cs[i].key < cs[j].key })
		fmt.Fprintf(bw, "counters:\n")
		for _, c := range cs {
			fmt.Fprintf(bw, "  %-58s %14d\n", c.key, c.total)
		}
	}
	if len(r.gauges) > 0 {
		gs := append([]*Gauge(nil), r.gauges...)
		sort.Slice(gs, func(i, j int) bool { return gs[i].key < gs[j].key })
		fmt.Fprintf(bw, "gauges:\n")
		fmt.Fprintf(bw, "  %-58s %12s %12s %12s\n", "GAUGE", "LAST", "MIN", "MAX")
		for _, g := range gs {
			fmt.Fprintf(bw, "  %-58s %12d %12d %12d\n", g.key, g.last, g.min, g.max)
		}
	}
	if len(r.hists) > 0 {
		hs := append([]*Histogram(nil), r.hists...)
		sort.Slice(hs, func(i, j int) bool { return hs[i].key < hs[j].key })
		fmt.Fprintf(bw, "histograms:\n")
		fmt.Fprintf(bw, "  %-58s %8s %14s %12s %12s %12s %12s\n",
			"HISTOGRAM", "COUNT", "SUM", "P50", "P95", "P99", "MAX")
		for _, h := range hs {
			fmt.Fprintf(bw, "  %-58s %8d %14d %12d %12d %12d %12d\n",
				h.key, h.count, h.sum, h.Percentile(50), h.Percentile(95), h.Percentile(99), h.max)
		}
	}
	return bw.Flush()
}

// Text returns WriteText's output as a string.
func (r *Registry) Text() string {
	var sb strings.Builder
	r.WriteText(&sb)
	return sb.String()
}
