// Package metrics is a deterministic, label-aware metrics registry for the
// simulated cluster: monotonic counters, last-value gauges with high/low
// water marks, and fixed-bucket histograms with exact nearest-rank
// percentiles.
//
// Like internal/trace, the package deliberately imports nothing from the
// simulation: values are raw int64 (virtual nanoseconds, bytes, counts),
// which lets the simulation kernel own a *Registry that every layer above
// it reaches without import cycles.
//
// Determinism is the point: the simulation is single-threaded and seeded,
// metrics are registered in first-use order but always rendered in sorted
// (name, labels) order with integer arithmetic only, so two runs with the
// same seed produce byte-identical output. That turns a metrics dump into a
// regression oracle (see the BENCH_*.json baselines).
//
// All methods are nil-receiver safe: a nil *Registry is the disabled
// registry, its constructors return nil handles, and recording through a
// nil handle is a single branch. Disabled instrumentation therefore costs
// one pointer test per site.
package metrics

import (
	"sort"
	"strings"
)

// Label is one key/value annotation on a metric. The set of labels (not
// their order at the call site) identifies a series: labels are sorted by
// key at registration, so two sites naming the same set merge into one
// series regardless of argument order.
type Label struct {
	Key string
	Val string
}

// L builds a Label; it keeps call sites compact.
func L(key, val string) Label { return Label{Key: key, Val: val} }

// Well-known label keys used across the instrumented layers.
const (
	KeyLayer = "layer" // sim | netsim | mpi | adio | core | nvm | pfs
	KeyRank  = "rank"  // MPI rank id
	KeyNode  = "node"  // compute node id
	KeyPhase = "phase" // MPE phase name
	KeyOp    = "op"    // operation name (read/write, collective kind, ...)
)

// canonKey renders the identity of a series: "name{k=v,k=v}" with labels
// sorted by key. The rendered form doubles as the sort key for output.
func canonKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Val)
	}
	sb.WriteByte('}')
	return sb.String()
}

// sortLabels returns a sorted copy of labels (by key, then value).
func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Val < out[j].Val
	})
	return out
}

// Registry holds all registered series. The zero value is not usable;
// create registries with New. A nil *Registry is the disabled registry.
type Registry struct {
	counters   []*Counter
	gauges     []*Gauge
	hists      []*Histogram
	counterIdx map[string]*Counter
	gaugeIdx   map[string]*Gauge
	histIdx    map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counterIdx: make(map[string]*Counter),
		gaugeIdx:   make(map[string]*Gauge),
		histIdx:    make(map[string]*Histogram),
	}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// Counter registers (or looks up) the counter series named name with the
// given labels. A nil registry returns a nil handle, which is safe to use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	ls := sortLabels(labels)
	key := canonKey(name, ls)
	if c, ok := r.counterIdx[key]; ok {
		return c
	}
	c := &Counter{name: name, labels: ls, key: key}
	r.counters = append(r.counters, c)
	r.counterIdx[key] = c
	return c
}

// Gauge registers (or looks up) the gauge series named name.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	ls := sortLabels(labels)
	key := canonKey(name, ls)
	if g, ok := r.gaugeIdx[key]; ok {
		return g
	}
	g := &Gauge{name: name, labels: ls, key: key}
	r.gauges = append(r.gauges, g)
	r.gaugeIdx[key] = g
	return g
}

// DefBuckets are the default histogram bucket upper bounds, tuned for
// virtual-time durations in nanoseconds: powers of four from 1 µs to ~17 s,
// with an implicit +Inf bucket above the last bound.
var DefBuckets = []int64{
	1_000, 4_000, 16_000, 64_000, 256_000, // 1µs .. 256µs
	1_024_000, 4_096_000, 16_384_000, 65_536_000, 262_144_000, // ~1ms .. ~262ms
	1_048_576_000, 4_194_304_000, 16_777_216_000, // ~1s .. ~17s
}

// Histogram registers (or looks up) a histogram with the default duration
// buckets.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.HistogramBuckets(name, DefBuckets, labels...)
}

// HistogramBuckets registers (or looks up) a histogram with the given
// ascending bucket upper bounds (an implicit +Inf bucket is appended). The
// bounds are fixed at first registration; later lookups reuse them.
func (r *Registry) HistogramBuckets(name string, bounds []int64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	ls := sortLabels(labels)
	key := canonKey(name, ls)
	if h, ok := r.histIdx[key]; ok {
		return h
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	h := &Histogram{name: name, labels: ls, key: key, bounds: b, counts: make([]int64, len(b)+1)}
	r.hists = append(r.hists, h)
	r.histIdx[key] = h
	return h
}

// Counter is a monotonically increasing series.
type Counter struct {
	name   string
	labels []Label
	key    string
	total  int64
}

// Add increases the counter by n (negative deltas are ignored: counters are
// monotonic). Safe on a nil handle.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.total += n
}

// Inc increases the counter by one. Safe on a nil handle.
func (c *Counter) Inc() { c.Add(1) }

// Total returns the accumulated value (0 on a nil handle).
func (c *Counter) Total() int64 {
	if c == nil {
		return 0
	}
	return c.total
}

// Gauge is a last-value series with high and low water marks.
type Gauge struct {
	name    string
	labels  []Label
	key     string
	set     bool
	last    int64
	max     int64
	min     int64
	samples int64
}

// Set records the gauge's new value. Safe on a nil handle.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	if !g.set {
		g.set, g.max, g.min = true, v, v
	}
	g.last = v
	g.samples++
	if v > g.max {
		g.max = v
	}
	if v < g.min {
		g.min = v
	}
}

// Last returns the most recent value (0 on a nil or never-set handle).
func (g *Gauge) Last() int64 {
	if g == nil {
		return 0
	}
	return g.last
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Histogram is a fixed-bucket distribution that additionally retains every
// sample, so percentiles are exact (nearest-rank over the sorted samples,
// integer arithmetic only) rather than bucket-interpolated. The simulation
// records at most a few hundred thousand samples per run, so retention is
// cheap; the buckets exist for compact rendering and cross-run diffing.
type Histogram struct {
	name    string
	labels  []Label
	key     string
	bounds  []int64 // ascending upper bounds (v <= bound falls in bucket)
	counts  []int64 // len(bounds)+1; last is the +Inf bucket
	count   int64
	sum     int64
	min     int64
	max     int64
	samples []int64
	sorted  bool
}

// Observe records one sample. Safe on a nil handle.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if h.count == 0 {
		h.min, h.max = v, v
	}
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Percentile returns the exact p-th percentile (nearest-rank definition:
// the smallest sample v such that at least ceil(p/100 * n) samples are
// <= v), computed over the retained samples with integer math. p is
// clamped to [1, 100]; an empty histogram returns 0.
func (h *Histogram) Percentile(p int) int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if p < 1 {
		p = 1
	}
	if p > 100 {
		p = 100
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	n := int64(len(h.samples))
	rank := (int64(p)*n + 99) / 100 // ceil(p*n/100)
	if rank < 1 {
		rank = 1
	}
	return h.samples[rank-1]
}
