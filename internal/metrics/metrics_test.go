package metrics

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
	"testing"
)

// oraclePercentile is the straightforward nearest-rank definition computed
// from a sorted copy of the samples.
func oraclePercentile(samples []int64, p int) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := int64(len(s))
	rank := (int64(p)*n + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// TestPercentileProperty hammers Percentile against the sort-based oracle
// over many random sample sets: sizes from 1 to a few thousand, values
// spanning nine orders of magnitude, every interesting percentile.
func TestPercentileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	percentiles := []int{1, 10, 25, 50, 75, 90, 95, 99, 100}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(3000)
		r := New()
		h := r.Histogram("t_ns", L(KeyLayer, "sim"))
		samples := make([]int64, n)
		for i := range samples {
			v := rng.Int63n(int64(1) << uint(10+rng.Intn(30)))
			samples[i] = v
			h.Observe(v)
		}
		for _, p := range percentiles {
			got, want := h.Percentile(p), oraclePercentile(samples, p)
			if got != want {
				t.Fatalf("trial %d n=%d p%d = %d, oracle %d", trial, n, p, got, want)
			}
		}
		// Interleave queries and observations: the sorted cache must stay
		// coherent after new samples arrive.
		extra := rng.Int63n(1 << 20)
		h.Observe(extra)
		samples = append(samples, extra)
		if got, want := h.Percentile(50), oraclePercentile(samples, 50); got != want {
			t.Fatalf("trial %d post-observe p50 = %d, oracle %d", trial, got, want)
		}
	}
}

// TestHistogramBuckets checks that samples land in the right fixed bucket
// and that summary stats are exact.
func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.HistogramBuckets("h", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 500, 1001, 5000} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1, 2} // <=10: {5,10}; <=100: {11,100}; <=1000: {500}; +Inf: {1001,5000}
	for i, c := range h.counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, c, want[i], h.counts)
		}
	}
	if h.Count() != 7 || h.Sum() != 5+10+11+100+500+1001+5000 || h.Min() != 5 || h.Max() != 5000 {
		t.Fatalf("stats wrong: count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
}

// TestLabelMerge: the label SET identifies a series — call-site order and
// duplicate registration must merge into one series.
func TestLabelMerge(t *testing.T) {
	r := New()
	a := r.Counter("bytes", L("layer", "nvm"), L("node", "3"))
	b := r.Counter("bytes", L("node", "3"), L("layer", "nvm"))
	if a != b {
		t.Fatal("label order created two series")
	}
	a.Add(5)
	b.Add(7)
	if a.Total() != 12 {
		t.Fatalf("merged total = %d, want 12", a.Total())
	}
	c := r.Counter("bytes", L("layer", "nvm"), L("node", "4"))
	if c == a {
		t.Fatal("different label values merged")
	}
}

// TestRenderDeterminism: two registries built through different insertion
// orders render byte-identically, in both text and JSON form.
func TestRenderDeterminism(t *testing.T) {
	build := func(reverse bool) *Registry {
		r := New()
		names := []string{"zeta", "alpha", "mid"}
		if reverse {
			names = []string{"mid", "alpha", "zeta"}
		}
		for _, n := range names {
			r.Counter(n, L("layer", "sim")).Add(int64(len(n)))
			r.Gauge(n+"_g", L("layer", "sim")).Set(int64(len(n)))
			h := r.Histogram(n+"_ns", L("layer", "sim"))
			for i := int64(1); i <= 5; i++ {
				h.Observe(i * 1000)
			}
		}
		return r
	}
	var a, b bytes.Buffer
	if err := build(false).WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := build(true).WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("text render depends on insertion order:\n%s\nvs\n%s", a.String(), b.String())
	}
	ja, err := json.Marshal(build(false).Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(build(true).Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("JSON snapshot depends on insertion order:\n%s\nvs\n%s", ja, jb)
	}
}

// TestNilSafety: the disabled registry and its nil handles must be inert.
func TestNilSafety(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Total() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(9)
	if g.Last() != 0 || g.Max() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := r.Histogram("z")
	h.Observe(1)
	if h.Count() != 0 || h.Percentile(50) != 0 {
		t.Fatal("nil histogram accumulated")
	}
	if got := r.Text(); got != "metrics: disabled\n" {
		t.Fatalf("nil text = %q", got)
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil snapshot not empty")
	}
	if r.FindCounter("x") != 0 || r.FindHistogram("z") != nil {
		t.Fatal("nil lookups not empty")
	}
}

// TestCounterMonotonic: negative deltas are ignored.
func TestCounterMonotonic(t *testing.T) {
	r := New()
	c := r.Counter("n")
	c.Add(10)
	c.Add(-5)
	if c.Total() != 10 {
		t.Fatalf("total = %d, want 10", c.Total())
	}
}

// TestSums: cross-label aggregation helpers.
func TestSums(t *testing.T) {
	r := New()
	r.Counter("b", L("rank", "0")).Add(3)
	r.Counter("b", L("rank", "1")).Add(4)
	r.Counter("other").Add(100)
	if got := r.SumCounters("b"); got != 7 {
		t.Fatalf("SumCounters = %d, want 7", got)
	}
	r.Histogram("h", L("rank", "0")).Observe(10)
	r.Histogram("h", L("rank", "1")).Observe(20)
	count, sum := r.SumHistograms("h")
	if count != 2 || sum != 30 {
		t.Fatalf("SumHistograms = (%d, %d), want (2, 30)", count, sum)
	}
}
