package metrics

import "testing"

// BenchmarkHistogramObserve measures the per-event cost of recording into
// a cached histogram handle — the hot metrics path on kilo-rank runs,
// where every p2p message contributes one latency sample.
func BenchmarkHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("mpi_p2p_ns", L(KeyLayer, "mpi"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i % 1_000_000))
	}
}

// BenchmarkCounterInc measures the cached-handle counter path.
func BenchmarkCounterInc(b *testing.B) {
	r := New()
	c := r.Counter("mpi_p2p_msgs_total", L(KeyLayer, "mpi"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkDisabledHistogramObserve measures the disabled-registry path —
// a nil handle — which the zero-observability kilo-rank runs take for
// every would-be sample. It must be branch-cheap and allocation-free.
func BenchmarkDisabledHistogramObserve(b *testing.B) {
	var r *Registry
	h := r.Histogram("mpi_p2p_ns", L(KeyLayer, "mpi"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkRegistryLookup measures the uncached path: re-resolving the
// handle through the registry on every record, which canonicalizes the
// label set each time. This is the cost the per-World handle caching in
// package mpi avoids; the gap against BenchmarkHistogramObserve is why.
func BenchmarkRegistryLookup(b *testing.B) {
	r := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Histogram("mpi_p2p_ns", L(KeyLayer, "mpi")).Observe(int64(i))
	}
}

// TestDisabledHandlesZeroAlloc pins the zero-observability contract: with
// metrics disabled (nil registry, nil handles), recording allocates
// nothing — the kilo-rank fast path must not pay for instrumentation it
// is not using.
func TestDisabledHandlesZeroAlloc(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	h := r.Histogram("y")
	g := r.Gauge("z")
	allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(17)
		h.Observe(42)
		g.Set(7)
	})
	if allocs != 0 {
		t.Fatalf("disabled handles allocated %.1f times per run, want 0", allocs)
	}
}
