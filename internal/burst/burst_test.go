package burst

import (
	"bytes"
	"testing"

	"repro/internal/adio"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/store"
)

// bbRig builds 2 compute nodes + the pool's proxy nodes on one fabric.
func bbRig(t *testing.T, cfg Config, factory store.Factory) (*Pool, *mpi.World, *pfs.System, *adio.Registry) {
	t.Helper()
	k := sim.NewKernel(1)
	const compute = 2
	fab := netsim.New(k, netsim.Config{
		Nodes: compute + cfg.Proxies, InjRate: 3 * sim.GBps, EjeRate: 3 * sim.GBps,
		Latency: 2 * sim.Microsecond, MemRate: 6 * sim.GBps,
	})
	pcfg := pfs.DefaultConfig()
	pcfg.TargetJitter = nil
	fs := pfs.New(k, pcfg, factory)
	w := mpi.NewWorldOn(k, fab, 2, compute)
	clients := make([]*pfs.Client, compute)
	for i := range clients {
		clients[i] = fs.NewClient(fab.Node(i))
	}
	bbNodes := make([]*netsim.Node, cfg.Proxies)
	bbClients := make([]*pfs.Client, cfg.Proxies)
	for i := 0; i < cfg.Proxies; i++ {
		bbNodes[i] = fab.Node(compute + i)
		bbClients[i] = fs.NewClient(bbNodes[i])
	}
	pool := NewPool(k, cfg, bbNodes, bbClients, factory)
	reg := adio.NewRegistry(adio.NewUFSDriver(func(n int) *pfs.Client { return clients[n] }))
	return pool, w, fs, reg
}

func TestBurstAbsorbsAndDrains(t *testing.T) {
	cfg := DefaultConfig()
	pool, w, fs, reg := bbRig(t, cfg, store.NewNull)
	err := w.Run(func(r *mpi.Rank) {
		f, err := adio.OpenColl(r, adio.OpenArgs{
			Comm: w.Comm(), Registry: reg, Path: "out", Create: true,
			Hooks: pool.HooksFactory(),
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.WriteContig(nil, int64(r.ID())*(32<<20), 32<<20); err != nil {
			t.Error(err)
		}
		// Close returns without waiting for the drain (IME semantics).
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err) // includes drainer-deadlock detection
	}
	total := int64(4 * 32 << 20)
	if pool.Absorbed != total {
		t.Fatalf("absorbed = %d, want %d", pool.Absorbed, total)
	}
	if pool.Drained != total {
		t.Fatalf("drained = %d, want %d", pool.Drained, total)
	}
	if fs.TotalBytesWritten() < total {
		t.Fatalf("global FS got %d bytes", fs.TotalBytesWritten())
	}
	if pool.PendingDrains() != 0 {
		t.Fatal("queues must be empty at quiescence")
	}
}

func TestBurstPreservesContent(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy end-to-end run; skipped in -short mode")
	}
	cfg := DefaultConfig()
	cfg.WaitDrainOnClose = true
	pool, w, fs, reg := bbRig(t, cfg, store.NewMem)
	err := w.Run(func(r *mpi.Rank) {
		f, err := adio.OpenColl(r, adio.OpenArgs{
			Comm: w.Comm(), Registry: reg, Path: "out", Create: true,
			Hooks: pool.HooksFactory(),
		})
		if err != nil {
			t.Error(err)
			return
		}
		// Cross a slab boundary so both proxies are involved.
		data := bytes.Repeat([]byte{byte(r.ID() + 1)}, 10<<20)
		if err := f.WriteContig(data, int64(r.ID())*(10<<20), int64(len(data))); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	meta := fs.Lookup("out")
	got := make([]byte, 4*10<<20)
	meta.Store().ReadAt(got, 0)
	for rank := 0; rank < 4; rank++ {
		base := rank * 10 << 20
		for _, idx := range []int{0, 5 << 20, 10<<20 - 1} {
			if got[base+idx] != byte(rank+1) {
				t.Fatalf("rank %d byte %d = %d", rank, idx, got[base+idx])
			}
		}
	}
}

func TestBurstWaitDrainOnClose(t *testing.T) {
	for _, wait := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.WaitDrainOnClose = wait
		pool, w, fs, reg := bbRig(t, cfg, store.NewNull)
		var drainedAtClose int64
		err := w.Run(func(r *mpi.Rank) {
			f, err := adio.OpenColl(r, adio.OpenArgs{
				Comm: w.Comm(), Registry: reg, Path: "out", Create: true,
				Hooks: pool.HooksFactory(),
			})
			if err != nil {
				t.Error(err)
				return
			}
			if err := f.WriteContig(nil, int64(r.ID())*(64<<20), 64<<20); err != nil {
				t.Error(err)
			}
			if err := f.Close(); err != nil {
				t.Error(err)
			}
			// Every rank has closed beyond this point; with
			// WaitDrainOnClose each close waited for that rank's drain.
			w.Comm().Barrier(r)
			if w.Comm().RankOf(r) == 0 {
				drainedAtClose = fs.TotalBytesWritten()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		total := int64(4 * 64 << 20)
		if wait && drainedAtClose < total {
			t.Fatalf("WaitDrainOnClose: only %d of %d drained at close", drainedAtClose, total)
		}
		if !wait && drainedAtClose >= total {
			t.Fatal("without WaitDrainOnClose the drain should still be in flight at close")
		}
		if fs.TotalBytesWritten() < total {
			t.Fatal("drain must finish eventually")
		}
	}
}

func TestBurstIngestionCappedByProxyCount(t *testing.T) {
	// 1 proxy vs 4 proxies: absorption time scales with the tier size —
	// the paper's scalability argument against fixed-size burst buffers.
	ingest := func(proxies int) sim.Time {
		cfg := DefaultConfig()
		cfg.Proxies = proxies
		pool, w, _, reg := bbRig(t, cfg, store.NewNull)
		var took sim.Time
		err := w.Run(func(r *mpi.Rank) {
			f, err := adio.OpenColl(r, adio.OpenArgs{
				Comm: w.Comm(), Registry: reg, Path: "out", Create: true,
				Hooks: pool.HooksFactory(),
			})
			if err != nil {
				t.Error(err)
				return
			}
			t0 := r.Now()
			if err := f.WriteContig(nil, int64(r.ID())*(256<<20), 256<<20); err != nil {
				t.Error(err)
			}
			w.Comm().Barrier(r)
			if w.Comm().RankOf(r) == 0 {
				took = r.Now() - t0
			}
			_ = f.Close()
		})
		if err != nil {
			t.Fatal(err)
		}
		return took
	}
	if one, four := ingest(1), ingest(4); four >= one {
		t.Fatalf("more proxies must absorb faster: 1->%v 4->%v", one, four)
	}
}

func TestBurstHarnessCase(t *testing.T) {
	// Covered end-to-end through the harness in the root bench suite; here
	// just validate the default config.
	cfg := DefaultConfig()
	if cfg.Proxies < 1 || cfg.Device.WriteRate <= 0 || cfg.DrainChunk <= 0 {
		t.Fatalf("bad default config: %+v", cfg)
	}
}

func TestBurstProxyFullFallsThrough(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Proxies = 1
	cfg.Device.Capacity = 1 << 20 // 1 MB proxy: fills immediately
	pool, w, fs, reg := bbRig(t, cfg, store.NewNull)
	err := w.Run(func(r *mpi.Rank) {
		f, err := adio.OpenColl(r, adio.OpenArgs{
			Comm: w.Comm(), Registry: reg, Path: "out", Create: true,
			Hooks: pool.HooksFactory(),
		})
		if err != nil {
			t.Error(err)
			return
		}
		// 8 MB exceeds the proxy capacity: the write must fall through to
		// the global file system and the data must still land.
		if err := f.WriteContig(nil, int64(r.ID())*(8<<20), 8<<20); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fs.TotalBytesWritten() < 4*8<<20 {
		t.Fatalf("global FS got %d bytes, want all data", fs.TotalBytesWritten())
	}
}
