// Package burst implements the comparator architecture the paper discusses
// in §V: a burst buffer in the style of the DOE Fast Forward I/O project
// and the DDN Infinite Memory Engine — a small number of dedicated,
// high-end NVMe storage proxies that absorb I/O bursts over the fabric and
// drain them to the parallel file system in the background.
//
// The paper's argument against this design is economic and architectural:
// burst buffers need expensive dedicated servers, whereas the E10 cache
// uses commodity SSDs already present in compute nodes, and aggregate
// cache bandwidth scales with the number of compute nodes while a burst
// buffer is capped by its proxy count. This package makes that comparison
// measurable: it plugs into the same adio.Hooks seam as the E10 cache, so
// the harness can run identical workloads against either tier.
//
// Semantics differ deliberately from the E10 cache: data is considered
// persistent once acknowledged by a proxy (IME-style), so MPI_File_close
// does not wait for the drain unless WaitDrainOnClose is set. The E10
// layer, by contrast, preserves MPI-IO visibility in the global file.
package burst

import (
	"fmt"

	"repro/internal/adio"
	"repro/internal/extent"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/nvm"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/store"
)

// Config sizes the burst-buffer tier.
type Config struct {
	Proxies    int              // dedicated proxy nodes
	Device     nvm.DeviceConfig // high-end NVMe per proxy
	DrainChunk int64            // granularity of the background drain
	// WaitDrainOnClose makes close block until the PFS drain completes,
	// for apples-to-apples visibility with the E10 cache.
	WaitDrainOnClose bool
}

// DefaultConfig models a small dedicated appliance: two proxies with
// 3 GB/s NVMe each.
func DefaultConfig() Config {
	return Config{
		Proxies: 2,
		Device: nvm.DeviceConfig{
			WriteRate: 3 * sim.GBps,
			ReadRate:  3.2 * sim.GBps,
			Latency:   20 * sim.Microsecond,
			Capacity:  1 << 40,
		},
		DrainChunk: 4 << 20,
	}
}

// Pool is the burst-buffer tier: proxies with NVMe, fabric endpoints and
// PFS clients for draining.
type Pool struct {
	k       *sim.Kernel
	cfg     Config
	proxies []*proxy

	openFiles int // per-rank open handles staging into the pool

	// Statistics.
	Absorbed int64 // bytes accepted from compute nodes
	Drained  int64 // bytes pushed to the parallel file system
}

type proxy struct {
	pool    *Pool
	node    *netsim.Node
	fs      *nvm.FS
	client  *pfs.Client
	queue   []*drainReq
	cond    *sim.Cond
	running bool
}

type drainReq struct {
	file string
	ext  extent.Extent
	greq *mpi.Request
}

// NewPool builds the tier. nodes must be dedicated fabric endpoints (not
// compute nodes); clients provides each proxy's PFS client.
func NewPool(k *sim.Kernel, cfg Config, nodes []*netsim.Node, clients []*pfs.Client, factory store.Factory) *Pool {
	if len(nodes) != cfg.Proxies || len(clients) != cfg.Proxies {
		panic("burst: need one fabric node and one PFS client per proxy")
	}
	if cfg.DrainChunk <= 0 {
		cfg.DrainChunk = 4 << 20
	}
	p := &Pool{k: k, cfg: cfg}
	for i := 0; i < cfg.Proxies; i++ {
		dev := nvm.NewDevice(k, fmt.Sprintf("bb%d.nvme", i), cfg.Device)
		px := &proxy{
			pool:   p,
			node:   nodes[i],
			fs:     nvm.NewFS(dev, nvm.FSConfig{SupportsFallocate: true}, factory),
			client: clients[i],
			cond:   sim.NewCond(k),
		}
		p.proxies = append(p.proxies, px)
	}
	return p
}

// proxyFor routes an extent to a proxy: round-robin by 8 MB slabs, like
// IME's deterministic placement.
func (p *Pool) proxyFor(off int64) *proxy {
	slab := off / (8 << 20)
	return p.proxies[int(slab)%len(p.proxies)]
}

// ensureRunning launches the proxy's background drainer on demand. The
// drainer exits once its queue is empty and no file handles stage into the
// pool anymore, so the simulation can run to quiescence.
func (px *proxy) ensureRunning() {
	if px.running {
		return
	}
	px.running = true
	px.pool.k.Spawn(fmt.Sprintf("bb.drain.%s", px.fs.Device().Name()), func(dp *sim.Proc) {
		defer func() { px.running = false }()
		for {
			for len(px.queue) == 0 {
				if px.pool.openFiles == 0 {
					return
				}
				px.cond.Wait(dp)
			}
			req := px.queue[0]
			px.queue = px.queue[1:]
			px.drain(dp, req)
			req.greq.Complete()
		}
	})
}

// drain moves one staged extent from the proxy NVMe to the global file.
func (px *proxy) drain(dp *sim.Proc, req *drainReq) {
	f, err := px.fs.Open(req.file, false)
	if err != nil {
		return // nothing staged (can't happen in normal flow)
	}
	gh, err := px.client.Open(dp, req.file, true, pfs.Striping{})
	if err != nil {
		return
	}
	chunk := px.pool.cfg.DrainChunk
	for off := req.ext.Off; off < req.ext.End(); off += chunk {
		n := off + chunk
		if n > req.ext.End() {
			n = req.ext.End()
		}
		size := n - off
		var buf []byte
		if _, mem := f.Store().(store.PayloadBacked); mem {
			buf = make([]byte, size)
			f.ReadAt(dp, buf, off, size)
		} else {
			f.ReadAt(dp, nil, off, size)
		}
		gh.WriteAt(dp, buf, off, size)
		px.pool.Drained += size
	}
	gh.Close(dp)
}

// HooksFactory returns an adio hook factory that stages every write in the
// burst buffer. Unlike the E10 cache it ignores the e10_* hints: the tier
// is selected by wiring, the way a site-wide burst buffer would be.
func (p *Pool) HooksFactory() adio.HooksFactory {
	return func(f *adio.File) (adio.Hooks, error) {
		return &hooks{pool: p}, nil
	}
}

// hooks implements adio.Hooks over the pool.
type hooks struct {
	pool        *Pool
	outstanding []*drainReq
}

// AtOpenColl implements adio.Hooks: register the handle and make sure the
// drainers are up.
func (h *hooks) AtOpenColl(f *adio.File) error {
	h.pool.openFiles++
	for _, px := range h.pool.proxies {
		px.ensureRunning()
	}
	return nil
}

// WriteContig implements adio.Hooks: push the extent over the fabric to
// its proxy, store it on the proxy NVMe, and enqueue the background drain.
// The call returns once the proxy has the data (burst absorbed).
func (h *hooks) WriteContig(f *adio.File, data []byte, off, size int64) (bool, error) {
	p := f.Rank().Proc()
	// Route in slab-sized pieces so large writes spread over proxies.
	for cur := off; cur < off+size; {
		px := h.pool.proxyFor(cur)
		slabEnd := (cur/(8<<20) + 1) * (8 << 20)
		end := off + size
		if slabEnd < end {
			end = slabEnd
		}
		n := end - cur
		var piece []byte
		if data != nil {
			piece = data[cur-off : cur-off+n]
		}
		// Fabric transfer to the proxy, then NVMe write.
		f.Rank().Node().Transfer(p, px.node, n)
		bf, err := px.fs.Open(f.Path(), true)
		if err != nil {
			return false, err
		}
		if err := bf.WriteAt(p, piece, cur, n); err != nil {
			return false, nil // proxy full: fall through to the global FS
		}
		h.pool.Absorbed += n
		req := &drainReq{file: f.Path(), ext: extent.Extent{Off: cur, Len: n},
			greq: f.Rank().World().NewGrequest()}
		h.outstanding = append(h.outstanding, req)
		px.queue = append(px.queue, req)
		px.cond.Signal()
		cur = end
	}
	return true, nil
}

// AtFlush implements adio.Hooks: with IME-style semantics the data is
// already persistent on the proxies, so flush only waits for the drain
// when WaitDrainOnClose demands global-file visibility.
func (h *hooks) AtFlush(f *adio.File) error {
	if !h.pool.cfg.WaitDrainOnClose {
		return nil
	}
	for _, req := range h.outstanding {
		f.Rank().Wait(req.greq)
	}
	h.outstanding = nil
	return nil
}

// AtClose implements adio.Hooks: deregister the handle and nudge the
// drainers so idle ones can exit.
func (h *hooks) AtClose(f *adio.File) error {
	err := h.AtFlush(f)
	h.pool.openFiles--
	for _, px := range h.pool.proxies {
		px.cond.Broadcast()
	}
	return err
}

// PendingDrains reports queued (not yet drained) requests.
func (p *Pool) PendingDrains() int {
	n := 0
	for _, px := range p.proxies {
		n += len(px.queue)
	}
	return n
}
