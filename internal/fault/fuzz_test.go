package fault

import (
	"strings"
	"testing"
)

// FuzzParse hammers the schedule grammar. Parse must never panic, and any
// spec it accepts must yield a well-formed schedule: known kinds, factors
// in (0,1], non-negative times and ordered windows.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"fail-device,node=0,at=5s",
		"device-enospc,node=1,from=1s,to=3s",
		"fail-target,target=2,from=2s,to=8s",
		"degrade-target,target=1,factor=0.2,from=2s,to=8s",
		"degrade-link,node=0,factor=0.5,at=500ms",
		"fail-device,node=0,at=5s;degrade-link,node=3,factor=0.9,at=1ms",
		"; ;fail-device,node=0,at=0s; ",
		"degrade-target,target=0,factor=1.0,at=1s",
		"fail-device,node=0,at=5s,from=1s",
		"fail-device,node=-1,at=5s",
		"fail-device,node=0,at=-5s",
		"fail-target,target=0,from=9s,to=2s",
		"bogus-kind,node=0,at=1s",
		"fail-device,nodeat5s",
		"fail-device,node=0,at=9223372036854ms",
		"torn-write,node=0,at=5s",
		"bit-rot,node=1,rate=0.1,at=6s",
		"torn-write,node=0,at=5s,from=1s",
		"bit-rot,node=1,factor=0.1,at=6s",
		"bit-rot,node=1,rate=1.5,at=6s",
		",,,",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := Parse(spec)
		if err != nil {
			if s != nil {
				t.Fatalf("Parse(%q) returned both a schedule and error %v", spec, err)
			}
			return
		}
		faults := s.Faults()
		if len(faults) == 0 {
			t.Fatalf("Parse(%q) accepted an empty schedule", spec)
		}
		for _, ft := range faults {
			switch ft.Kind {
			case FailDevice, DeviceENOSPC, FailTarget, DegradeTarget, DegradeLink,
				CrashNode, LossyLink, DupLink, Partition, TornWrite, BitRot:
			default:
				t.Fatalf("Parse(%q) produced unknown kind %q", spec, ft.Kind)
			}
			if ft.Factor <= 0 || ft.Factor > 1 {
				t.Fatalf("Parse(%q) produced factor %v outside (0,1]", spec, ft.Factor)
			}
			if ft.Kind == BitRot && ft.Factor >= 1 {
				t.Fatalf("Parse(%q) produced bit-rot rate %v outside (0,1)", spec, ft.Factor)
			}
			if (ft.Kind == TornWrite || ft.Kind == BitRot) && ft.To != 0 {
				t.Fatalf("Parse(%q) produced a reverting corruption %+v", spec, ft)
			}
			if ft.Node < 0 || ft.Target < 0 {
				t.Fatalf("Parse(%q) produced negative location %+v", spec, ft)
			}
			if ft.From < 0 {
				t.Fatalf("Parse(%q) produced negative start %v", spec, ft.From)
			}
			if ft.To != 0 && ft.To <= ft.From {
				t.Fatalf("Parse(%q) produced inverted window [%v,%v)", spec, ft.From, ft.To)
			}
			if strings.TrimSpace(ft.String()) == "" {
				t.Fatalf("Parse(%q): fault renders empty", spec)
			}
		}
		// Parsing is a pure function of the spec.
		again, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q) not deterministic: second call failed: %v", spec, err)
		}
		if len(again.Faults()) != len(faults) {
			t.Fatalf("Parse(%q) not deterministic: %d vs %d faults", spec, len(faults), len(again.Faults()))
		}
	})
}
