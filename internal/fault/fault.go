// Package fault is a deterministic, seed-independent fault-schedule engine
// for the simulated cluster: timed faults are injected into every modelled
// hardware layer — SSD failure and ENOSPC (internal/nvm), parallel-file-
// system target outage and transient slowdown (internal/pfs), NIC/link
// degradation (internal/netsim) — from a declarative schedule built in code
// (At/Between builders) or parsed from a textual spec (Parse), so whole
// fault scenarios replay bit-for-bit from one config.
//
// Faults fire as kernel callbacks at exact virtual times: a schedule armed
// on a seeded kernel perturbs the simulation identically on every run,
// which is what makes fault experiments comparable across code changes.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/nvm"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Kind names one fault class.
type Kind string

// The supported fault kinds.
const (
	// FailDevice fails node N's SSD: cache allocations, writes and reads
	// return I/O errors until the fault clears.
	FailDevice Kind = "fail-device"
	// DeviceENOSPC makes node N's SSD report out-of-space on allocation.
	DeviceENOSPC Kind = "device-enospc"
	// FailTarget takes PFS data target I offline: RPCs time out with
	// ErrTargetDown until the fault clears.
	FailTarget Kind = "fail-target"
	// DegradeTarget scales PFS data target I's service rate by Factor.
	DegradeTarget Kind = "degrade-target"
	// DegradeLink scales node N's NIC bandwidth by Factor.
	DegradeLink Kind = "degrade-link"
	// CrashNode kills node N's cache layer mid-run (the paper's §III node
	// failure): open cache files stop syncing, in-flight requests complete
	// with ErrCrashed, and the cache file plus its journal survive on the
	// NVM device for a later e10_cache_recovery open. A crash never
	// reverts, so it only accepts at= times.
	CrashNode Kind = "crash-node"
	// LossyLink makes node N's outbound link drop each message with
	// probability Factor (seeded, per-message). Dropped messages charge the
	// sender's NIC but never arrive; the MPI reliable-delivery layer (when
	// enabled) retransmits them.
	LossyLink Kind = "lossy-link"
	// DupLink makes node N's outbound link duplicate each message with
	// probability Factor. The MPI reliable-delivery layer dedups the extra
	// copy at the receiver.
	DupLink Kind = "dup-link"
	// Partition cuts the fabric between Nodes and the remaining nodes:
	// messages crossing the cut are dropped at the sender until the window
	// ends (or forever with at=). Only one partition may be active at a
	// time.
	Partition Kind = "partition"
	// TornWrite models a crash mid-write on node N's NVM: the in-flight
	// journal append is torn, leaving only a prefix of the record
	// persisted. The checksummed commit-record format detects the tear at
	// scrub time and truncates replay to the last valid record. A tear is
	// a one-shot corruption, so it only accepts at= times.
	TornWrite Kind = "torn-write"
	// BitRot flips at-rest bytes in node N's cache files and journal
	// images: each written chunk rots with probability Factor (rate=,
	// seeded, deterministic). The checksum layer detects rotted extents at
	// scrub time; recovery quarantines them instead of replaying garbage.
	// Rot is a one-shot corruption, so it only accepts at= times.
	BitRot Kind = "bit-rot"
)

// Fault is one scheduled fault. From is when it is applied; To, when
// non-zero, is when it reverts (Between). A zero To means the fault holds
// for the rest of the run (At).
type Fault struct {
	Kind   Kind
	Node   int     // FailDevice, DeviceENOSPC, DegradeLink, LossyLink, DupLink
	Nodes  []int   // Partition: the node group cut from the rest
	Target int     // FailTarget, DegradeTarget
	Factor float64 // DegradeTarget, DegradeLink: speed factor in (0, 1]; LossyLink, DupLink, BitRot: probability in (0, 1)
	From   sim.Time
	To     sim.Time
}

// String renders the fault compactly, e.g. "degrade-target(t1,f=0.20)@2s-8s"
// or "partition(n0:2)@2s-8s".
func (f Fault) String() string {
	var loc string
	switch f.Kind {
	case FailTarget, DegradeTarget:
		loc = fmt.Sprintf("t%d", f.Target)
	case Partition:
		parts := make([]string, len(f.Nodes))
		for i, n := range f.Nodes {
			parts[i] = strconv.Itoa(n)
		}
		loc = "n" + strings.Join(parts, ":")
	default:
		loc = fmt.Sprintf("n%d", f.Node)
	}
	s := fmt.Sprintf("%s(%s", f.Kind, loc)
	if f.Kind == DegradeTarget || f.Kind == DegradeLink || f.Kind == LossyLink || f.Kind == DupLink {
		s += fmt.Sprintf(",f=%.2f", f.Factor)
	}
	if f.Kind == BitRot {
		s += fmt.Sprintf(",r=%.3g", f.Factor)
	}
	s += ")@" + f.From.String()
	if f.To > 0 {
		s += "-" + f.To.String()
	}
	return s
}

// Schedule is an ordered collection of faults.
type Schedule struct {
	faults []Fault
}

// Faults returns the scheduled faults.
func (s *Schedule) Faults() []Fault {
	out := make([]Fault, len(s.faults))
	copy(out, s.faults)
	return out
}

// Empty reports whether the schedule holds no faults.
func (s *Schedule) Empty() bool { return s == nil || len(s.faults) == 0 }

// Clause is a builder handle scoping faults to a time window.
type Clause struct {
	s        *Schedule
	from, to sim.Time
}

// At starts a clause applying faults permanently from t on.
func (s *Schedule) At(t sim.Time) *Clause { return &Clause{s: s, from: t} }

// Between starts a clause applying faults during [from, to).
func (s *Schedule) Between(from, to sim.Time) *Clause {
	return &Clause{s: s, from: from, to: to}
}

func (c *Clause) add(f Fault) *Clause {
	f.From, f.To = c.from, c.to
	c.s.faults = append(c.s.faults, f)
	return c
}

// FailDevice fails node's SSD.
func (c *Clause) FailDevice(node int) *Clause {
	return c.add(Fault{Kind: FailDevice, Node: node})
}

// DeviceENOSPC fills node's SSD.
func (c *Clause) DeviceENOSPC(node int) *Clause {
	return c.add(Fault{Kind: DeviceENOSPC, Node: node})
}

// FailTarget takes PFS target i offline.
func (c *Clause) FailTarget(i int) *Clause {
	return c.add(Fault{Kind: FailTarget, Target: i})
}

// DegradeTarget slows PFS target i to factor of nominal speed.
func (c *Clause) DegradeTarget(i int, factor float64) *Clause {
	return c.add(Fault{Kind: DegradeTarget, Target: i, Factor: factor})
}

// DegradeLink slows node's NIC to factor of nominal bandwidth.
func (c *Clause) DegradeLink(node int, factor float64) *Clause {
	return c.add(Fault{Kind: DegradeLink, Node: node, Factor: factor})
}

// CrashNode kills node's cache layer. Only valid on At clauses (a crash
// does not revert); Validate rejects it inside a Between window.
func (c *Clause) CrashNode(node int) *Clause {
	return c.add(Fault{Kind: CrashNode, Node: node})
}

// LossyLink makes node's outbound link drop each message with probability p.
func (c *Clause) LossyLink(node int, p float64) *Clause {
	return c.add(Fault{Kind: LossyLink, Node: node, Factor: p})
}

// DupLink makes node's outbound link duplicate each message with
// probability p.
func (c *Clause) DupLink(node int, p float64) *Clause {
	return c.add(Fault{Kind: DupLink, Node: node, Factor: p})
}

// Partition cuts the fabric between nodes and the rest of the cluster.
func (c *Clause) Partition(nodes ...int) *Clause {
	return c.add(Fault{Kind: Partition, Nodes: nodes})
}

// TornWrite tears node's in-flight journal append. Only valid on At
// clauses (a tear is a one-shot corruption); Validate rejects it inside a
// Between window.
func (c *Clause) TornWrite(node int) *Clause {
	return c.add(Fault{Kind: TornWrite, Node: node})
}

// BitRot flips at-rest bytes on node's NVM: each written chunk rots with
// probability rate. Only valid on At clauses.
func (c *Clause) BitRot(node int, rate float64) *Clause {
	return c.add(Fault{Kind: BitRot, Node: node, Factor: rate})
}

// Parse builds a schedule from a textual spec: semicolon-separated clauses
// of comma-separated fields, e.g.
//
//	fail-device,node=0,at=5s
//	device-enospc,node=1,from=1s,to=3s
//	fail-target,target=2,from=2s,to=8s
//	degrade-target,target=1,factor=0.2,from=2s,to=8s
//	degrade-link,node=0,factor=0.5,at=500ms
//	lossy-link,node=0,factor=0.1,from=1s,to=4s
//	dup-link,node=1,factor=0.05,at=2s
//	partition,nodes=0:2,from=3s,to=6s
//	torn-write,node=0,at=5s
//	bit-rot,node=1,rate=0.1,at=5s
//
// Durations use Go syntax (time.ParseDuration). "at=" schedules a permanent
// fault; "from="/"to=" a reverting window. "nodes=" takes a colon-separated
// node-id list (partition only). "rate=" is the per-chunk rot probability
// (bit-rot only).
func Parse(spec string) (*Schedule, error) {
	s := &Schedule{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		fields := strings.Split(clause, ",")
		f := Fault{Kind: Kind(strings.TrimSpace(fields[0])), Factor: 1}
		switch f.Kind {
		case FailDevice, DeviceENOSPC, FailTarget, DegradeTarget, DegradeLink, CrashNode,
			LossyLink, DupLink, Partition, TornWrite, BitRot:
		default:
			return nil, fmt.Errorf("fault: unknown kind %q in clause %q", f.Kind, clause)
		}
		var haveAt, haveFrom, haveRate bool
		for _, field := range fields[1:] {
			field = strings.TrimSpace(field)
			key, val, ok := strings.Cut(field, "=")
			if !ok {
				return nil, fmt.Errorf("fault: malformed field %q in clause %q", field, clause)
			}
			switch key {
			case "node":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fault: bad node %q in clause %q", val, clause)
				}
				f.Node = n
			case "nodes":
				for _, part := range strings.Split(val, ":") {
					n, err := strconv.Atoi(part)
					if err != nil || n < 0 {
						return nil, fmt.Errorf("fault: bad nodes list %q in clause %q", val, clause)
					}
					f.Nodes = append(f.Nodes, n)
				}
			case "target":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fault: bad target %q in clause %q", val, clause)
				}
				f.Target = n
			case "factor":
				x, err := strconv.ParseFloat(val, 64)
				if err != nil || x <= 0 || x > 1 {
					return nil, fmt.Errorf("fault: bad factor %q in clause %q (need (0,1])", val, clause)
				}
				f.Factor = x
			case "rate":
				x, err := strconv.ParseFloat(val, 64)
				if err != nil || x <= 0 || x >= 1 {
					return nil, fmt.Errorf("fault: bad rate %q in clause %q (need (0,1))", val, clause)
				}
				f.Factor = x
				haveRate = true
			case "at":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("fault: bad time %q in clause %q", val, clause)
				}
				f.From = sim.Time(d.Nanoseconds())
				haveAt = true
			case "from":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("fault: bad time %q in clause %q", val, clause)
				}
				f.From = sim.Time(d.Nanoseconds())
				haveFrom = true
			case "to":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("fault: bad time %q in clause %q", val, clause)
				}
				f.To = sim.Time(d.Nanoseconds())
			default:
				return nil, fmt.Errorf("fault: unknown field %q in clause %q", key, clause)
			}
		}
		if haveAt && (haveFrom || f.To > 0) {
			return nil, fmt.Errorf("fault: clause %q mixes at= with from=/to=", clause)
		}
		if f.To > 0 && f.To <= f.From {
			return nil, fmt.Errorf("fault: clause %q has to <= from", clause)
		}
		if (f.Kind == DegradeTarget || f.Kind == DegradeLink || f.Kind == LossyLink || f.Kind == DupLink) && f.Factor == 1 {
			return nil, fmt.Errorf("fault: clause %q needs factor= in (0,1)", clause)
		}
		if f.Kind == CrashNode && (haveFrom || f.To > 0) {
			return nil, fmt.Errorf("fault: clause %q: crash-node takes at= only (a crash does not revert)", clause)
		}
		if (f.Kind == TornWrite || f.Kind == BitRot) && (haveFrom || f.To > 0) {
			return nil, fmt.Errorf("fault: clause %q: %s takes at= only (a corruption does not revert)", clause, f.Kind)
		}
		if f.Kind == BitRot && !haveRate {
			return nil, fmt.Errorf("fault: clause %q needs rate= in (0,1)", clause)
		}
		if f.Kind != BitRot && haveRate {
			return nil, fmt.Errorf("fault: clause %q: rate= is bit-rot-only (use factor=)", clause)
		}
		if f.Kind == Partition && len(f.Nodes) == 0 {
			return nil, fmt.Errorf("fault: clause %q: partition needs a nodes= list", clause)
		}
		if f.Kind != Partition && len(f.Nodes) > 0 {
			return nil, fmt.Errorf("fault: clause %q: nodes= is partition-only (use node=)", clause)
		}
		s.faults = append(s.faults, f)
	}
	if len(s.faults) == 0 {
		return nil, errors.New("fault: empty schedule")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// location identifies what a fault acts on, for overlap detection: faults of
// the same kind on the same location must not have overlapping windows. All
// partitions share one location (-1): the fabric supports a single cut at a
// time, so any two overlapping partitions conflict.
func (f Fault) location() int {
	switch f.Kind {
	case FailTarget, DegradeTarget:
		return f.Target
	case Partition:
		return -1
	}
	return f.Node
}

// Validate checks the schedule's internal consistency independent of any
// hardware: every action must have a non-negative start, a window (when
// present) that ends after it starts, a factor in (0,1] for degrade kinds,
// no revert window on crash-node, a mandatory heal window on partition,
// and no two actions of the same kind on the same node/target with
// overlapping active windows (a permanent fault, To == 0, is active
// forever). Errors name the offending action index so a
// generated schedule can be debugged from the message alone. Arm and Parse
// call this; builders that assemble schedules directly can call it early.
func (s *Schedule) Validate() error {
	for i, f := range s.faults {
		if f.From < 0 {
			return fmt.Errorf("fault: action %d (%s): negative start time %v", i, f, f.From)
		}
		if f.To < 0 {
			return fmt.Errorf("fault: action %d (%s): negative end time %v", i, f, f.To)
		}
		if f.To > 0 && f.To <= f.From {
			return fmt.Errorf("fault: action %d (%s): window ends at or before it starts", i, f)
		}
		if (f.Kind == DegradeTarget || f.Kind == DegradeLink) && (f.Factor <= 0 || f.Factor > 1) {
			return fmt.Errorf("fault: action %d (%s): factor %v outside (0,1]", i, f, f.Factor)
		}
		if (f.Kind == LossyLink || f.Kind == DupLink) && (f.Factor <= 0 || f.Factor >= 1) {
			return fmt.Errorf("fault: action %d (%s): probability %v outside (0,1)", i, f, f.Factor)
		}
		if f.Kind == CrashNode && f.To > 0 {
			return fmt.Errorf("fault: action %d (%s): crash-node cannot revert (no to= window)", i, f)
		}
		if (f.Kind == TornWrite || f.Kind == BitRot) && f.To > 0 {
			return fmt.Errorf("fault: action %d (%s): %s cannot revert (no to= window)", i, f, f.Kind)
		}
		if f.Kind == BitRot && (f.Factor <= 0 || f.Factor >= 1) {
			return fmt.Errorf("fault: action %d (%s): rate %v outside (0,1)", i, f, f.Factor)
		}
		if f.Kind == Partition && len(f.Nodes) == 0 {
			return fmt.Errorf("fault: action %d (%s): partition needs a non-empty node group", i, f)
		}
		if f.Kind == Partition && f.To == 0 {
			// A cut that never heals means partition-exempt retries spin
			// forever: the schedule guarantees a livelock, not a finding.
			return fmt.Errorf("fault: action %d (%s): partition needs a heal window (from=/to=, not at=)", i, f)
		}
		for _, n := range f.Nodes {
			if n < 0 {
				return fmt.Errorf("fault: action %d (%s): negative node %d in group", i, f, n)
			}
		}
	}
	for i := 0; i < len(s.faults); i++ {
		for j := i + 1; j < len(s.faults); j++ {
			a, b := s.faults[i], s.faults[j]
			if a.Kind != b.Kind || a.location() != b.location() {
				continue
			}
			// Active windows: [From, To), with To == 0 meaning forever.
			if (a.To == 0 || b.From < a.To) && (b.To == 0 || a.From < b.To) {
				return fmt.Errorf("fault: action %d (%s) overlaps action %d (%s)", i, a, j, b)
			}
		}
	}
	return nil
}

// Targets names the hardware a schedule is armed against. Any field may be
// nil/absent as long as no scheduled fault needs it.
type Targets struct {
	// Devices maps a node index to its SSD (nil when the node has none).
	Devices func(node int) *nvm.Device
	// PFS is the global parallel file system.
	PFS *pfs.System
	// Net is the cluster interconnect.
	Net *netsim.Fabric
	// Crash kills node's cache layer (CrashNode). Leave nil when the
	// deployment has no crashable cache; arming a crash-node fault then
	// fails at validate time instead of silently doing nothing.
	Crash func(node int)
	// TornWrite tears node's in-flight journal append (TornWrite). Like
	// Crash, leave nil when the deployment has no journalled cache.
	TornWrite func(node int)
	// BitRot flips at-rest bytes on node's NVM with per-chunk probability
	// rate (BitRot). Like Crash, leave nil when the deployment has no
	// corruptible cache state.
	BitRot func(node int, rate float64)
}

// Stat records one fault's lifecycle for the report.
type Stat struct {
	Fault     Fault
	AppliedAt sim.Time
	ClearedAt sim.Time // zero while active / for permanent faults
	Applied   bool
	Cleared   bool
}

// Injector is an armed schedule: it owns the timed callbacks and the
// per-fault stats.
type Injector struct {
	stats []Stat
}

// Arm validates the schedule against tg and registers kernel callbacks
// applying (and, for windows, reverting) every fault at its exact virtual
// time. Arm must run before k.Run so that no fault time lies in the past.
func Arm(k *sim.Kernel, s *Schedule, tg Targets) (*Injector, error) {
	if s.Empty() {
		return &Injector{}, nil
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{stats: make([]Stat, len(s.faults))}
	for i, f := range s.faults {
		if err := validate(f, tg); err != nil {
			return nil, fmt.Errorf("fault: action %d (%s): %w", i, f, err)
		}
		inj.stats[i].Fault = f
		i, f := i, f
		k.After(f.From, func() {
			apply(f, tg, true)
			inj.stats[i].Applied = true
			inj.stats[i].AppliedAt = k.Now()
			traceFault(k, f, true)
		})
		if f.To > 0 {
			k.After(f.To, func() {
				apply(f, tg, false)
				inj.stats[i].Cleared = true
				inj.stats[i].ClearedAt = k.Now()
				traceFault(k, f, false)
			})
		}
	}
	return inj, nil
}

// traceFault records a fault's apply/clear transitions on the shared
// "faults" trace timeline and in the per-kind fault counter (no-op without
// the respective observability layer attached).
func traceFault(k *sim.Kernel, f Fault, on bool) {
	name := string(f.Kind)
	if !on {
		name += ".clear"
	}
	if m := k.Metrics(); m != nil {
		m.Counter("fault_transitions_total", metrics.L(metrics.KeyOp, name)).Inc()
	}
	tr := k.Tracer()
	if tr == nil {
		return
	}
	loc := int64(f.Node)
	switch {
	case f.Kind == FailTarget || f.Kind == DegradeTarget:
		loc = int64(f.Target)
	case f.Kind == Partition && len(f.Nodes) > 0:
		loc = int64(f.Nodes[0])
	}
	tr.Instant(tr.Track(trace.GroupFaults, "faults"), "fault", name, int64(k.Now()),
		trace.I("loc", loc))
}

// validate checks that tg can host f, failing at arm time rather than
// mid-run. Arm wraps any error with the offending action index.
func validate(f Fault, tg Targets) error {
	switch f.Kind {
	case FailDevice, DeviceENOSPC:
		if tg.Devices == nil || tg.Devices(f.Node) == nil {
			return fmt.Errorf("node %d has no device", f.Node)
		}
	case FailTarget, DegradeTarget:
		if tg.PFS == nil {
			return errors.New("no PFS")
		}
		if f.Target >= tg.PFS.Config().Targets {
			return fmt.Errorf("target %d out of range (%d targets)",
				f.Target, tg.PFS.Config().Targets)
		}
	case DegradeLink, LossyLink, DupLink:
		if tg.Net == nil {
			return errors.New("no fabric")
		}
		if f.Node >= tg.Net.Nodes() {
			return fmt.Errorf("node %d out of range (%d nodes)",
				f.Node, tg.Net.Nodes())
		}
	case Partition:
		if tg.Net == nil {
			return errors.New("no fabric")
		}
		for _, n := range f.Nodes {
			if n >= tg.Net.Nodes() {
				return fmt.Errorf("node %d out of range (%d nodes)",
					n, tg.Net.Nodes())
			}
		}
	case CrashNode:
		if tg.Crash == nil {
			return errors.New("no crash hook wired")
		}
	case TornWrite, BitRot:
		if tg.Devices == nil || tg.Devices(f.Node) == nil {
			return fmt.Errorf("node %d has no device", f.Node)
		}
		if f.Kind == TornWrite && tg.TornWrite == nil {
			return errors.New("no torn-write hook wired")
		}
		if f.Kind == BitRot && tg.BitRot == nil {
			return errors.New("no bit-rot hook wired")
		}
	}
	if f.Kind == DegradeTarget || f.Kind == DegradeLink {
		if f.Factor <= 0 || f.Factor > 1 {
			return fmt.Errorf("factor %v outside (0,1]", f.Factor)
		}
	}
	return nil
}

// apply toggles one fault on (on=true) or back off.
func apply(f Fault, tg Targets, on bool) {
	switch f.Kind {
	case FailDevice:
		tg.Devices(f.Node).SetFailed(on)
	case DeviceENOSPC:
		tg.Devices(f.Node).SetNoSpace(on)
	case FailTarget:
		tg.PFS.SetTargetDown(f.Target, on)
	case DegradeTarget:
		factor := f.Factor
		if !on {
			factor = 1
		}
		tg.PFS.SetTargetSpeed(f.Target, factor)
	case DegradeLink:
		factor := f.Factor
		if !on {
			factor = 1
		}
		tg.Net.Node(f.Node).SetDegraded(factor)
	case CrashNode:
		if on { // a crash never reverts
			tg.Crash(f.Node)
		}
	case TornWrite:
		if on { // a tear never reverts
			tg.TornWrite(f.Node)
		}
	case BitRot:
		if on { // rot never reverts
			tg.BitRot(f.Node, f.Factor)
		}
	case LossyLink:
		p := f.Factor
		if !on {
			p = 0
		}
		tg.Net.Node(f.Node).SetLossy(p)
	case DupLink:
		p := f.Factor
		if !on {
			p = 0
		}
		tg.Net.Node(f.Node).SetDup(p)
	case Partition:
		tg.Net.SetPartition(f.Nodes, on)
	}
}

// Stats returns the per-fault lifecycle records, in schedule order.
func (inj *Injector) Stats() []Stat {
	out := make([]Stat, len(inj.stats))
	copy(out, inj.stats)
	return out
}

// Active returns how many faults are currently applied but not cleared.
func (inj *Injector) Active() int {
	n := 0
	for _, st := range inj.stats {
		if st.Applied && !st.Cleared {
			n++
		}
	}
	return n
}

// Report renders the fault lifecycle deterministically (schedule order,
// fixed formatting) so two seeded runs produce byte-identical output.
func (inj *Injector) Report() string {
	if len(inj.stats) == 0 {
		return ""
	}
	stats := make([]Stat, len(inj.stats))
	copy(stats, inj.stats)
	sort.SliceStable(stats, func(i, j int) bool {
		return stats[i].Fault.From < stats[j].Fault.From
	})
	var b strings.Builder
	b.WriteString("fault schedule:\n")
	for _, st := range stats {
		state := "pending"
		switch {
		case st.Cleared:
			state = fmt.Sprintf("cleared@%s", st.ClearedAt)
		case st.Applied:
			state = fmt.Sprintf("active since %s", st.AppliedAt)
		}
		fmt.Fprintf(&b, "  %-40s %s\n", st.Fault, state)
	}
	return b.String()
}
