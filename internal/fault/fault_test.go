package fault

import (
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/nvm"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/store"
)

// testTargets builds a minimal machine: one SSD, a 4-target PFS, a 2-node
// fabric.
func testTargets(k *sim.Kernel) Targets {
	dev := nvm.NewDevice(k, "ssd0", nvm.DeviceConfig{
		WriteRate: 100 * sim.MBps, ReadRate: 100 * sim.MBps, Capacity: 1 << 30,
	})
	cfg := pfs.DefaultConfig()
	cfg.TargetJitter = nil
	fab := netsim.New(k, netsim.Config{
		Nodes: 2, InjRate: sim.GBps, EjeRate: sim.GBps,
		Latency: sim.Microsecond, MemRate: 10 * sim.GBps,
	})
	return Targets{
		Devices: func(n int) *nvm.Device {
			if n != 0 {
				return nil
			}
			return dev
		},
		PFS: pfs.New(k, cfg, store.NewNull),
		Net: fab,
	}
}

func TestParseAllKinds(t *testing.T) {
	s, err := Parse("fail-device,node=0,at=5s;" +
		"device-enospc,node=1,from=1s,to=3s;" +
		"fail-target,target=2,from=2s,to=8s;" +
		"degrade-target,target=1,factor=0.2,from=2s,to=8s;" +
		"degrade-link,node=0,factor=0.5,at=500ms")
	if err != nil {
		t.Fatal(err)
	}
	fs := s.Faults()
	if len(fs) != 5 {
		t.Fatalf("parsed %d faults, want 5", len(fs))
	}
	if fs[0].Kind != FailDevice || fs[0].From != 5*sim.Second || fs[0].To != 0 {
		t.Errorf("fault 0 = %+v", fs[0])
	}
	if fs[1].Kind != DeviceENOSPC || fs[1].Node != 1 || fs[1].From != sim.Second || fs[1].To != 3*sim.Second {
		t.Errorf("fault 1 = %+v", fs[1])
	}
	if fs[3].Kind != DegradeTarget || fs[3].Target != 1 || fs[3].Factor != 0.2 {
		t.Errorf("fault 3 = %+v", fs[3])
	}
	if fs[4].Kind != DegradeLink || fs[4].From != 500*sim.Millisecond {
		t.Errorf("fault 4 = %+v", fs[4])
	}
	if got := fs[3].String(); got != "degrade-target(t1,f=0.20)@2.000s-8.000s" {
		t.Errorf("String() = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",                                         // empty schedule
		"melt-cpu,node=0,at=1s",                    // unknown kind
		"fail-device,node0,at=1s",                  // malformed field
		"fail-device,node=-1,at=1s",                // bad node
		"fail-target,target=x,at=1s",               // bad target
		"degrade-target,target=0,factor=0,at=1s",   // factor out of range
		"degrade-target,target=0,factor=1.5,at=1s", // factor out of range
		"degrade-target,target=0,at=1s",            // degrade without factor
		"fail-device,node=0,at=1s,to=2s",           // at mixed with to
		"fail-device,node=0,from=2s,to=1s",         // to <= from
		"fail-device,node=0,at=zzz",                // bad duration
		"fail-device,node=0,huh=1",                 // unknown field
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) must fail", spec)
		}
	}
}

func TestBuilderClauses(t *testing.T) {
	s := &Schedule{}
	s.At(sim.Second).FailDevice(0).DeviceENOSPC(1)
	s.Between(2*sim.Second, 8*sim.Second).DegradeTarget(1, 0.2).FailTarget(2).DegradeLink(0, 0.5)
	fs := s.Faults()
	if len(fs) != 5 {
		t.Fatalf("built %d faults, want 5", len(fs))
	}
	if fs[0].From != sim.Second || fs[0].To != 0 {
		t.Errorf("At fault = %+v", fs[0])
	}
	if fs[2].From != 2*sim.Second || fs[2].To != 8*sim.Second || fs[2].Factor != 0.2 {
		t.Errorf("Between fault = %+v", fs[2])
	}
	if (&Schedule{}).Empty() == false || s.Empty() {
		t.Error("Empty() wrong")
	}
}

func TestArmAppliesAndClearsAtExactTimes(t *testing.T) {
	k := sim.NewKernel(1)
	tg := testTargets(k)
	s := &Schedule{}
	s.Between(1*sim.Millisecond, 3*sim.Millisecond).FailDevice(0).DegradeLink(0, 0.5)
	s.Between(2*sim.Millisecond, 4*sim.Millisecond).DegradeTarget(1, 0.25).FailTarget(2)
	s.At(5 * sim.Millisecond).DeviceENOSPC(0)
	inj, err := Arm(k, s, tg)
	if err != nil {
		t.Fatal(err)
	}
	type sample struct {
		failed, noSpace, tgtDown bool
		tgtSpeed, link           float64
		active                   int
	}
	probe := map[sim.Time]*sample{}
	k.Spawn("probe", func(p *sim.Proc) {
		for _, at := range []sim.Time{500 * sim.Microsecond, 1500 * sim.Microsecond,
			2500 * sim.Microsecond, 3500 * sim.Microsecond, 6 * sim.Millisecond} {
			p.Sleep(at - p.Now())
			probe[at] = &sample{
				failed:   tg.Devices(0).Failed(),
				noSpace:  tg.Devices(0).NoSpace(),
				tgtDown:  tg.PFS.TargetDown(2),
				tgtSpeed: tg.PFS.TargetSpeed(1),
				link:     tg.Net.Node(0).Degraded(),
				active:   inj.Active(),
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for at, want := range map[sim.Time]sample{
		500 * sim.Microsecond:  {failed: false, tgtSpeed: 1, link: 1, active: 0},
		1500 * sim.Microsecond: {failed: true, tgtSpeed: 1, link: 0.5, active: 2},
		2500 * sim.Microsecond: {failed: true, tgtDown: true, tgtSpeed: 0.25, link: 0.5, active: 4},
		3500 * sim.Microsecond: {failed: false, tgtDown: true, tgtSpeed: 0.25, link: 1, active: 2},
		6 * sim.Millisecond:    {noSpace: true, tgtSpeed: 1, link: 1, active: 1},
	} {
		got := probe[at]
		if got == nil {
			t.Fatalf("no sample at %v", at)
		}
		if got.failed != want.failed || got.noSpace != want.noSpace ||
			got.tgtDown != want.tgtDown || got.tgtSpeed != want.tgtSpeed ||
			got.link != want.link || got.active != want.active {
			t.Errorf("at %v: got %+v, want %+v", at, *got, want)
		}
	}
	for i, st := range inj.Stats() {
		if !st.Applied {
			t.Errorf("fault %d never applied", i)
		}
	}
}

func TestArmValidatesEagerly(t *testing.T) {
	k := sim.NewKernel(1)
	tg := testTargets(k)
	for _, s := range []*Schedule{
		(&Schedule{}).At(0).FailDevice(7).s,        // node without device
		(&Schedule{}).At(0).FailTarget(99).s,       // target out of range
		(&Schedule{}).At(0).DegradeLink(99, 0.5).s, // node out of range
		(&Schedule{}).At(0).DegradeTarget(0, 0).s,  // bad factor
	} {
		if _, err := Arm(k, s, tg); err == nil {
			t.Errorf("Arm(%v) must fail", s.Faults())
		}
	}
	if _, err := Arm(k, nil, tg); err != nil {
		t.Errorf("nil schedule must arm as no-op: %v", err)
	}
}

func TestValidateRejectsBadSchedules(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Schedule
		want  string // substring the error must contain
	}{
		{
			name: "negative start",
			build: func() *Schedule {
				s := &Schedule{}
				s.faults = append(s.faults, Fault{Kind: FailDevice, Node: 0, From: -sim.Second})
				return s
			},
			want: "action 0",
		},
		{
			name: "negative end",
			build: func() *Schedule {
				s := &Schedule{}
				s.faults = append(s.faults, Fault{Kind: FailDevice, Node: 0, From: sim.Second, To: -sim.Second})
				return s
			},
			want: "action 0",
		},
		{
			name: "window ends before start",
			build: func() *Schedule {
				s := &Schedule{}
				s.faults = append(s.faults, Fault{Kind: FailTarget, Target: 1, From: 2 * sim.Second, To: sim.Second})
				return s
			},
			want: "action 0",
		},
		{
			name: "overlapping windows same kind same node",
			build: func() *Schedule {
				s := &Schedule{}
				s.Between(1*sim.Second, 5*sim.Second).FailDevice(0)
				s.Between(3*sim.Second, 7*sim.Second).FailDevice(0)
				return s
			},
			want: "action 0 (fail-device(n0)@1.000s-5.000s) overlaps action 1",
		},
		{
			name: "window overlapping permanent fault",
			build: func() *Schedule {
				s := &Schedule{}
				s.At(1 * sim.Second).DeviceENOSPC(2)
				s.Between(10*sim.Second, 11*sim.Second).DeviceENOSPC(2)
				return s
			},
			want: "overlaps action 1",
		},
		{
			name: "two permanent faults same location",
			build: func() *Schedule {
				s := &Schedule{}
				s.At(1 * sim.Second).FailTarget(3)
				s.At(9 * sim.Second).FailTarget(3)
				return s
			},
			want: "overlaps",
		},
		{
			name: "double crash same node",
			build: func() *Schedule {
				s := &Schedule{}
				s.At(1 * sim.Second).CrashNode(0)
				s.At(2 * sim.Second).CrashNode(0)
				return s
			},
			want: "overlaps",
		},
		{
			name: "crash with revert window",
			build: func() *Schedule {
				s := &Schedule{}
				s.Between(1*sim.Second, 2*sim.Second).CrashNode(0)
				return s
			},
			want: "cannot revert",
		},
		{
			name: "bad degrade factor",
			build: func() *Schedule {
				s := &Schedule{}
				s.At(0).DegradeLink(0, 1.5)
				return s
			},
			want: "factor",
		},
	}
	for _, tc := range cases {
		err := tc.build().Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %q, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateAcceptsDisjointAndCrossKind(t *testing.T) {
	s := &Schedule{}
	s.Between(1*sim.Second, 2*sim.Second).FailDevice(0)
	s.Between(2*sim.Second, 3*sim.Second).FailDevice(0)   // back-to-back, no overlap
	s.Between(1*sim.Second, 5*sim.Second).DeviceENOSPC(0) // same node, other kind
	s.Between(1*sim.Second, 5*sim.Second).FailDevice(1)   // same kind, other node
	s.At(10 * sim.Second).FailDevice(0)                   // permanent after windows end
	s.At(3 * sim.Second).CrashNode(1)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestParseCrashNode(t *testing.T) {
	s, err := Parse("crash-node,node=1,at=4s")
	if err != nil {
		t.Fatal(err)
	}
	fs := s.Faults()
	if len(fs) != 1 || fs[0].Kind != CrashNode || fs[0].Node != 1 || fs[0].From != 4*sim.Second || fs[0].To != 0 {
		t.Fatalf("parsed %+v", fs)
	}
	if got := fs[0].String(); got != "crash-node(n1)@4.000s" {
		t.Errorf("String() = %q", got)
	}
	for _, spec := range []string{
		"crash-node,node=0,from=1s,to=2s",                 // crashes do not revert
		"crash-node,node=0,at=1s;crash-node,node=0,at=2s", // double crash
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) must fail", spec)
		}
	}
}

func TestArmCrashNodeFiresOnce(t *testing.T) {
	k := sim.NewKernel(1)
	tg := testTargets(k)
	var crashed []int
	tg.Crash = func(node int) { crashed = append(crashed, node) }
	s := &Schedule{}
	s.At(2 * sim.Millisecond).CrashNode(1)
	inj, err := Arm(k, s, tg)
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("idle", func(p *sim.Proc) { p.Sleep(10 * sim.Millisecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(crashed) != 1 || crashed[0] != 1 {
		t.Fatalf("crash calls = %v, want [1]", crashed)
	}
	if st := inj.Stats()[0]; !st.Applied || st.AppliedAt != 2*sim.Millisecond {
		t.Fatalf("stat = %+v", st)
	}
}

func TestArmCrashNodeRequiresHook(t *testing.T) {
	k := sim.NewKernel(1)
	tg := testTargets(k) // no Crash hook wired
	s := &Schedule{}
	s.At(sim.Second).CrashNode(0)
	if _, err := Arm(k, s, tg); err == nil {
		t.Fatal("Arm must reject crash-node without a crash hook")
	}
}

func TestArmRejectsOverlapNamingIndex(t *testing.T) {
	k := sim.NewKernel(1)
	tg := testTargets(k)
	s := &Schedule{}
	s.Between(1*sim.Second, 4*sim.Second).FailTarget(2)
	s.Between(2*sim.Second, 3*sim.Second).FailTarget(2)
	_, err := Arm(k, s, tg)
	if err == nil || !strings.Contains(err.Error(), "action 0") || !strings.Contains(err.Error(), "action 1") {
		t.Fatalf("Arm error = %v, want overlap naming actions 0 and 1", err)
	}
}

func TestReportIsDeterministic(t *testing.T) {
	run := func() string {
		k := sim.NewKernel(42)
		tg := testTargets(k)
		sched, err := Parse("degrade-target,target=1,factor=0.2,from=1ms,to=3ms;fail-device,node=0,at=2ms")
		if err != nil {
			t.Fatal(err)
		}
		inj, err := Arm(k, sched, tg)
		if err != nil {
			t.Fatal(err)
		}
		k.Spawn("idle", func(p *sim.Proc) { p.Sleep(10 * sim.Millisecond) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return inj.Report()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replayed report differs:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "cleared@3.000ms") || !strings.Contains(a, "active since 2.000ms") {
		t.Fatalf("report missing lifecycle states:\n%s", a)
	}
}

func TestParseNetworkFaultKinds(t *testing.T) {
	s, err := Parse("lossy-link,node=0,factor=0.1,from=1s,to=4s;" +
		"dup-link,node=1,factor=0.05,at=2s;" +
		"partition,nodes=0:2,from=3s,to=6s")
	if err != nil {
		t.Fatal(err)
	}
	fs := s.Faults()
	if len(fs) != 3 {
		t.Fatalf("parsed %d faults, want 3", len(fs))
	}
	if fs[0].Kind != LossyLink || fs[0].Node != 0 || fs[0].Factor != 0.1 ||
		fs[0].From != sim.Second || fs[0].To != 4*sim.Second {
		t.Errorf("fault 0 = %+v", fs[0])
	}
	if fs[1].Kind != DupLink || fs[1].Node != 1 || fs[1].Factor != 0.05 || fs[1].To != 0 {
		t.Errorf("fault 1 = %+v", fs[1])
	}
	if fs[2].Kind != Partition || len(fs[2].Nodes) != 2 || fs[2].Nodes[0] != 0 || fs[2].Nodes[1] != 2 {
		t.Errorf("fault 2 = %+v", fs[2])
	}
	if got := fs[0].String(); got != "lossy-link(n0,f=0.10)@1.000s-4.000s" {
		t.Errorf("lossy String() = %q", got)
	}
	if got := fs[2].String(); got != "partition(n0:2)@3.000s-6.000s" {
		t.Errorf("partition String() = %q", got)
	}
}

func TestParseNetworkFaultErrors(t *testing.T) {
	for _, spec := range []string{
		"lossy-link,node=0,at=1s",                    // missing probability
		"lossy-link,node=0,factor=1,at=1s",           // probability must be < 1
		"dup-link,node=0,factor=0,at=1s",             // probability must be > 0
		"partition,from=1s,to=2s",                    // missing nodes=
		"partition,nodes=,from=1s,to=2s",             // empty nodes list
		"partition,nodes=0:x,from=1s,to=2s",          // bad node id in list
		"partition,nodes=0:-1,from=1s,to=2s",         // negative node id
		"lossy-link,node=0,nodes=1,factor=0.1,at=1s", // nodes= is partition-only
		"partition,nodes=0,at=1s",                    // permanent partition = guaranteed livelock
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) must fail", spec)
		}
	}
}

func TestValidateNetworkKinds(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *Schedule
		wantErr string // substring; "" = must pass
	}{
		{
			name: "overlapping partitions rejected even on disjoint groups",
			build: func() *Schedule {
				s := &Schedule{}
				s.Between(1*sim.Second, 5*sim.Second).Partition(0)
				s.Between(3*sim.Second, 8*sim.Second).Partition(1)
				return s
			},
			wantErr: "action 0",
		},
		{
			name: "sequential partitions allowed",
			build: func() *Schedule {
				s := &Schedule{}
				s.Between(1*sim.Second, 3*sim.Second).Partition(0)
				s.Between(3*sim.Second, 8*sim.Second).Partition(1)
				return s
			},
		},
		{
			name: "lossy probability 1 rejected",
			build: func() *Schedule {
				s := &Schedule{}
				s.At(sim.Second).LossyLink(0, 1)
				return s
			},
			wantErr: "probability 1 outside (0,1)",
		},
		{
			name: "dup probability 0 rejected",
			build: func() *Schedule {
				s := &Schedule{}
				s.At(sim.Second).DupLink(0, 0)
				return s
			},
			wantErr: "probability 0 outside (0,1)",
		},
		{
			name: "empty partition group rejected",
			build: func() *Schedule {
				s := &Schedule{}
				s.Between(1*sim.Second, 2*sim.Second).Partition()
				return s
			},
			wantErr: "non-empty node group",
		},
		{
			name: "negative node in group rejected",
			build: func() *Schedule {
				s := &Schedule{}
				s.Between(1*sim.Second, 2*sim.Second).Partition(0, -3)
				return s
			},
			wantErr: "negative node -3",
		},
		{
			name: "permanent partition rejected",
			build: func() *Schedule {
				s := &Schedule{}
				s.At(sim.Second).Partition(0)
				return s
			},
			wantErr: "heal window",
		},
		{
			name: "lossy and dup on the same node may overlap (different kinds)",
			build: func() *Schedule {
				s := &Schedule{}
				s.Between(1*sim.Second, 5*sim.Second).LossyLink(0, 0.1).DupLink(0, 0.1)
				return s
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build().Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestArmNetworkFaultsAppliesAndReverts(t *testing.T) {
	k := sim.NewKernel(1)
	tg := testTargets(k)
	s := &Schedule{}
	s.Between(1*sim.Millisecond, 3*sim.Millisecond).LossyLink(0, 0.25).DupLink(1, 0.1)
	s.Between(2*sim.Millisecond, 4*sim.Millisecond).Partition(0)
	if _, err := Arm(k, s, tg); err != nil {
		t.Fatal(err)
	}
	type sample struct {
		lossy, dup float64
		cut        bool
	}
	probe := map[sim.Time]*sample{}
	k.Spawn("probe", func(p *sim.Proc) {
		for _, at := range []sim.Time{500 * sim.Microsecond, 1500 * sim.Microsecond,
			2500 * sim.Microsecond, 3500 * sim.Microsecond, 5 * sim.Millisecond} {
			p.Sleep(at - p.Now())
			probe[at] = &sample{
				lossy: tg.Net.Node(0).Lossy(),
				dup:   tg.Net.Node(1).Dup(),
				cut:   tg.Net.Partitioned(0, 1),
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := probe[500*sim.Microsecond]; got.lossy != 0 || got.dup != 0 || got.cut {
		t.Errorf("before any window: %+v", got)
	}
	if got := probe[1500*sim.Microsecond]; got.lossy != 0.25 || got.dup != 0.1 || got.cut {
		t.Errorf("inside lossy/dup window: %+v", got)
	}
	if got := probe[2500*sim.Microsecond]; got.lossy != 0.25 || !got.cut {
		t.Errorf("inside both windows: %+v", got)
	}
	if got := probe[3500*sim.Microsecond]; got.lossy != 0 || got.dup != 0 || !got.cut {
		t.Errorf("partition-only window: %+v", got)
	}
	if got := probe[5*sim.Millisecond]; got.lossy != 0 || got.dup != 0 || got.cut {
		t.Errorf("after all windows: %+v", got)
	}
}
