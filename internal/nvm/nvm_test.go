package nvm

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/sim"
	"repro/internal/store"
)

func testDevice(k *sim.Kernel, capacity int64) *Device {
	return NewDevice(k, "ssd0", DeviceConfig{
		WriteRate: 100 * sim.MBps,
		ReadRate:  200 * sim.MBps,
		Latency:   10 * sim.Microsecond,
		Capacity:  capacity,
	})
}

func TestWriteChargesDeviceTime(t *testing.T) {
	k := sim.NewKernel(1)
	fs := NewFS(testDevice(k, 1<<30), FSConfig{SupportsFallocate: true}, store.NewMem)
	var end sim.Time
	k.Spawn("w", func(p *sim.Proc) {
		f, err := fs.Create("cache")
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.WriteAt(p, nil, 0, 10_000_000); err != nil { // 10 MB at 100 MB/s = 100 ms
			t.Error(err)
		}
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if want := 100*sim.Millisecond + 10*sim.Microsecond; end != want {
		t.Fatalf("write end = %v, want %v", end, want)
	}
}

func TestReadBackRoundTrip(t *testing.T) {
	k := sim.NewKernel(1)
	fs := NewFS(testDevice(k, 1<<20), FSConfig{SupportsFallocate: true}, store.NewMem)
	k.Spawn("rw", func(p *sim.Proc) {
		f, _ := fs.Create("f")
		if err := f.WriteAt(p, []byte("payload"), 100, 7); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 7)
		f.ReadAt(p, buf, 100, 7)
		if !bytes.Equal(buf, []byte("payload")) {
			t.Errorf("read %q", buf)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityEnforced(t *testing.T) {
	k := sim.NewKernel(1)
	fs := NewFS(testDevice(k, 1000), FSConfig{SupportsFallocate: true}, store.NewNull)
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := fs.Create("f")
		if err := f.WriteAt(p, nil, 0, 800); err != nil {
			t.Error(err)
		}
		err := f.WriteAt(p, nil, 800, 300)
		if !errors.Is(err, ErrNoSpace) {
			t.Errorf("want ErrNoSpace, got %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestStaleHandleCannotStrandBytes is the regression test for the ENOSPC
// accounting bug: a file handle surviving its FS.Remove could keep
// reserving device bytes that no Remove would ever return (the file was
// gone from the namespace), permanently stranding capacity. Stale handles
// now fail with ErrStale and reserve nothing.
func TestStaleHandleCannotStrandBytes(t *testing.T) {
	k := sim.NewKernel(1)
	dev := testDevice(k, 1000)
	fs := NewFS(dev, FSConfig{SupportsFallocate: true}, store.NewNull)
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := fs.Create("f")
		if err := f.WriteAt(p, nil, 0, 800); err != nil {
			t.Error(err)
		}
		if err := fs.Remove("f"); err != nil {
			t.Error(err)
		}
		if dev.Used() != 0 {
			t.Fatalf("used after remove = %d, want 0", dev.Used())
		}
		// The stale handle must not be able to claim capacity again.
		if err := f.WriteAt(p, nil, 0, 100); !errors.Is(err, ErrStale) {
			t.Errorf("stale write: want ErrStale, got %v", err)
		}
		buf := make([]byte, 4)
		if err := f.ReadAt(p, buf, 0, 4); !errors.Is(err, ErrStale) {
			t.Errorf("stale read: want ErrStale, got %v", err)
		}
		if dev.Used() != 0 {
			t.Fatalf("stale handle stranded %d bytes", dev.Used())
		}
		// The full capacity is still available to a fresh file.
		g, err := fs.Create("g")
		if err != nil {
			t.Fatal(err)
		}
		if err := g.WriteAt(p, nil, 0, 1000); err != nil {
			t.Errorf("fresh file denied reclaimed capacity: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFailedReserveLeavesAccountingIntact pins the all-or-nothing property
// of File.reserve: an allocation denied by ENOSPC must advance neither the
// file's allocation map nor the device counter, even when an eviction
// (Remove of a neighbour) is interleaved between attempts.
func TestFailedReserveLeavesAccountingIntact(t *testing.T) {
	k := sim.NewKernel(1)
	dev := testDevice(k, 1000)
	fs := NewFS(dev, FSConfig{SupportsFallocate: true}, store.NewNull)
	k.Spawn("w", func(p *sim.Proc) {
		a, _ := fs.Create("a")
		b, _ := fs.Create("b")
		if err := a.WriteAt(p, nil, 0, 600); err != nil {
			t.Error(err)
		}
		// Over-ask: denied, and nothing may move.
		if err := b.WriteAt(p, nil, 0, 500); !errors.Is(err, ErrNoSpace) {
			t.Errorf("want ErrNoSpace, got %v", err)
		}
		if dev.Used() != 600 || b.Allocated() != 0 {
			t.Fatalf("failed reserve moved accounting: used=%d b.alloc=%d", dev.Used(), b.Allocated())
		}
		// Concurrent eviction frees a's bytes; the retry must now fit and
		// the books must balance exactly.
		if err := fs.Remove("a"); err != nil {
			t.Error(err)
		}
		if err := b.WriteAt(p, nil, 0, 500); err != nil {
			t.Errorf("retry after eviction: %v", err)
		}
		if dev.Used() != 500 || dev.Used() != b.Allocated() {
			t.Fatalf("books out of balance: used=%d b.alloc=%d", dev.Used(), b.Allocated())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPunchReleasesCleanExtents(t *testing.T) {
	k := sim.NewKernel(1)
	dev := testDevice(k, 1000)
	fs := NewFS(dev, FSConfig{SupportsFallocate: true}, store.NewNull)
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := fs.Create("f")
		if err := f.WriteAt(p, nil, 0, 800); err != nil {
			t.Error(err)
		}
		if freed := f.Punch(extentOf(100, 300)); freed != 300 {
			t.Errorf("punch freed %d, want 300", freed)
		}
		if dev.Used() != 500 || f.Allocated() != 500 {
			t.Errorf("after punch: used=%d alloc=%d, want 500", dev.Used(), f.Allocated())
		}
		// Punching the same range again is a no-op.
		if freed := f.Punch(extentOf(100, 300)); freed != 0 {
			t.Errorf("double punch freed %d", freed)
		}
		// The freed range can be re-reserved.
		if err := f.WriteAt(p, nil, 100, 300); err != nil {
			t.Errorf("rewrite of punched range: %v", err)
		}
		if dev.Used() != 800 {
			t.Errorf("after rewrite: used=%d, want 800", dev.Used())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveReturnsSpace(t *testing.T) {
	k := sim.NewKernel(1)
	dev := testDevice(k, 1000)
	fs := NewFS(dev, FSConfig{SupportsFallocate: true}, store.NewNull)
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := fs.Create("f")
		if err := f.WriteAt(p, nil, 0, 1000); err != nil {
			t.Error(err)
		}
		if dev.Used() != 1000 {
			t.Errorf("used = %d", dev.Used())
		}
		if err := fs.Remove("f"); err != nil {
			t.Error(err)
		}
		if dev.Used() != 0 {
			t.Errorf("used after remove = %d", dev.Used())
		}
		if fs.Exists("f") {
			t.Error("file still exists")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFallocateFastVsSlow(t *testing.T) {
	run := func(fallocate bool) sim.Time {
		k := sim.NewKernel(1)
		fs := NewFS(testDevice(k, 1<<30), FSConfig{SupportsFallocate: fallocate}, store.NewNull)
		var end sim.Time
		k.Spawn("w", func(p *sim.Proc) {
			f, _ := fs.Create("f")
			if err := f.Fallocate(p, 0, 100_000_000); err != nil {
				t.Error(err)
			}
			end = p.Now()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	fast, slow := run(true), run(false)
	if fast >= slow {
		t.Fatalf("fallocate (%v) must beat write-zeros fallback (%v)", fast, slow)
	}
	if slow < 900*sim.Millisecond { // 100 MB at 100 MB/s
		t.Fatalf("write-zeros fallback too fast: %v", slow)
	}
}

func TestFallocateIdempotent(t *testing.T) {
	k := sim.NewKernel(1)
	dev := testDevice(k, 1000)
	fs := NewFS(dev, FSConfig{SupportsFallocate: true}, store.NewNull)
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := fs.Create("f")
		if err := f.Fallocate(p, 0, 500); err != nil {
			t.Error(err)
		}
		if err := f.Fallocate(p, 0, 500); err != nil {
			t.Error(err)
		}
		if dev.Used() != 500 || f.Allocated() != 500 {
			t.Errorf("used = %d alloc = %d, want 500", dev.Used(), f.Allocated())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenSemantics(t *testing.T) {
	k := sim.NewKernel(1)
	fs := NewFS(testDevice(k, 1000), FSConfig{}, store.NewNull)
	if _, err := fs.Open("missing", false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	f, err := fs.Open("new", true)
	if err != nil || f == nil {
		t.Fatalf("create-open failed: %v", err)
	}
	if _, err := fs.Create("new"); !errors.Is(err, ErrExists) {
		t.Fatalf("want ErrExists, got %v", err)
	}
	f2, err := fs.Open("new", false)
	if err != nil || f2 != f {
		t.Fatal("reopen must return same file")
	}
}

func TestDefaultDeviceConfig(t *testing.T) {
	cfg := DefaultDeviceConfig()
	if cfg.Capacity != 30<<30 || cfg.WriteRate <= 0 || cfg.ReadRate < cfg.WriteRate {
		t.Fatalf("suspicious default config: %+v", cfg)
	}
}

func TestNoSpaceInjection(t *testing.T) {
	k := sim.NewKernel(1)
	dev := testDevice(k, 1<<20)
	fs := NewFS(dev, FSConfig{SupportsFallocate: true}, store.NewNull)
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := fs.Create("f")
		dev.SetNoSpace(true)
		if err := f.WriteAt(p, nil, 0, 100); !errors.Is(err, ErrNoSpace) {
			t.Errorf("want injected ErrNoSpace, got %v", err)
		}
		// ENOSPC is per-operation: clearing it restores service.
		dev.SetNoSpace(false)
		if err := f.WriteAt(p, nil, 0, 100); err != nil {
			t.Errorf("write after clearing: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFailedDeviceReadAt(t *testing.T) {
	k := sim.NewKernel(1)
	dev := testDevice(k, 1<<20)
	fs := NewFS(dev, FSConfig{SupportsFallocate: true}, store.NewMem)
	k.Spawn("rw", func(p *sim.Proc) {
		f, _ := fs.Create("f")
		if err := f.WriteAt(p, []byte("data"), 0, 4); err != nil {
			t.Error(err)
		}
		dev.SetFailed(true)
		buf := make([]byte, 4)
		if err := f.ReadAt(p, buf, 0, 4); !errors.Is(err, ErrIO) {
			t.Errorf("want ErrIO from failed device, got %v", err)
		}
		if err := f.WriteAt(p, nil, 4, 4); !errors.Is(err, ErrIO) {
			t.Errorf("want ErrIO write, got %v", err)
		}
		dev.SetFailed(false)
		if err := f.ReadAt(p, buf, 0, 4); err != nil {
			t.Errorf("read after repair: %v", err)
		}
		if !bytes.Equal(buf, []byte("data")) {
			t.Errorf("payload lost across failure: %q", buf)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
