// Package nvm models the node-local non-volatile memory device used as the
// collective-write cache: in the paper's testbed, a 30 GB ext4 partition on
// an 80 GB SATA SSD mounted under /scratch on every compute node.
//
// A Device is a single queueing channel with separate read and write
// stream rates, a per-operation latency and (low) service-time jitter. FS
// layers a flat local file system on top, including the fallocate fast path
// used by ADIOI_Cache_alloc and the write-zeros fallback for file systems
// without fallocate support (footnote 2 of the paper).
package nvm

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/extent"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/store"
)

// Errors returned by the local file system.
var (
	ErrNoSpace  = errors.New("nvm: no space left on device")
	ErrNotFound = errors.New("nvm: file not found")
	ErrExists   = errors.New("nvm: file exists")
	ErrIO       = errors.New("nvm: input/output error")
)

// DeviceConfig describes one SSD.
type DeviceConfig struct {
	WriteRate sim.Rate // sequential write stream rate
	ReadRate  sim.Rate // sequential read stream rate
	Latency   sim.Time // per-operation latency
	Jitter    sim.Dist // service-time jitter (SSDs: low)
	Capacity  int64    // usable bytes on the cache partition
}

// DefaultDeviceConfig returns parameters approximating the testbed's SATA
// SSD scratch partition.
func DefaultDeviceConfig() DeviceConfig {
	return DeviceConfig{
		WriteRate: 500 * sim.MBps,
		ReadRate:  520 * sim.MBps,
		// The latency models per-operation cost on a fragmented sparse
		// ext4 scratch file, which dominates the 512 KB sync-buffer reads.
		Latency:  500 * sim.Microsecond,
		Jitter:   sim.UnitLogNormal(0.06),
		Capacity: 30 << 30, // 30 GB
	}
}

// Device is one node-local SSD.
type Device struct {
	k       *sim.Kernel
	cfg     DeviceConfig
	name    string
	ch      *sim.Station // device command channel
	used    int64
	failed  bool
	noSpace bool
	arb     *Arbiter // multi-tenant capacity arbiter; nil until Arbiter()

	// Statistics.
	BytesWritten int64
	BytesRead    int64

	// Per-operation latency histograms, registered lazily per op name.
	mOpNs map[string]*metrics.Histogram
}

// opHist resolves the device's latency histogram for op, or nil when
// metrics are disabled.
func (d *Device) opHist(op string) *metrics.Histogram {
	m := d.k.Metrics()
	if m == nil {
		return nil
	}
	h, ok := d.mOpNs[op]
	if !ok {
		h = m.Histogram("nvm_op_ns", metrics.L(metrics.KeyLayer, "nvm"),
			metrics.L(metrics.KeyOp, op), metrics.L("dev", d.name))
		if d.mOpNs == nil {
			d.mOpNs = make(map[string]*metrics.Histogram)
		}
		d.mOpNs[op] = h
	}
	return h
}

// NewDevice creates a device on kernel k.
func NewDevice(k *sim.Kernel, name string, cfg DeviceConfig) *Device {
	return &Device{k: k, cfg: cfg, name: name, ch: sim.NewStation(k, name, 1)}
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Used returns the allocated byte count.
func (d *Device) Used() int64 { return d.used }

// Capacity returns the configured capacity.
func (d *Device) Capacity() int64 { return d.cfg.Capacity }

// SetFailed injects (or clears) a device failure: subsequent writes and
// allocations return ErrIO. Used for failure-injection tests — the cache
// layer must fall back to the global file system.
func (d *Device) SetFailed(v bool) { d.failed = v }

// Failed reports the injected failure state.
func (d *Device) Failed() bool { return d.failed }

// SetNoSpace injects (or clears) an out-of-space condition: subsequent
// allocations return ErrNoSpace regardless of actual usage, as if another
// tenant filled the scratch partition.
func (d *Device) SetNoSpace(v bool) { d.noSpace = v }

// NoSpace reports the injected out-of-space state.
func (d *Device) NoSpace() bool { return d.noSpace }

// serve charges one device command. op names the command class for the
// per-operation latency histogram, which measures queueing plus service.
func (d *Device) serve(p *sim.Proc, op string, rate sim.Rate, n int64) {
	dur := d.cfg.Latency + rate.DurationFor(n)
	dur = sim.Jitter(d.k.Rand(), d.cfg.Jitter, dur)
	if h := d.opHist(op); h != nil {
		t0 := d.k.Now()
		d.ch.Serve(p, dur)
		h.Observe(int64(d.k.Now() - t0))
		return
	}
	d.ch.Serve(p, dur)
}

// write charges a write of n bytes.
func (d *Device) write(p *sim.Proc, n int64) {
	d.serve(p, "write", d.cfg.WriteRate, n)
	d.BytesWritten += n
	if m := d.k.Metrics(); m != nil {
		m.Counter("nvm_write_bytes_total", metrics.L(metrics.KeyLayer, "nvm"),
			metrics.L("dev", d.name)).Add(n)
	}
}

// read charges a read of n bytes.
func (d *Device) read(p *sim.Proc, n int64) {
	d.serve(p, "read", d.cfg.ReadRate, n)
	d.BytesRead += n
	if m := d.k.Metrics(); m != nil {
		m.Counter("nvm_read_bytes_total", metrics.L(metrics.KeyLayer, "nvm"),
			metrics.L("dev", d.name)).Add(n)
	}
}

// reserveAs claims n bytes of capacity on behalf of tenant ("" for the
// anonymous single-tenant path). Once an arbiter exists, all claims go
// through it so quotas and admission reservations are enforced uniformly.
func (d *Device) reserveAs(tenant string, n int64) error {
	if d.noSpace {
		return fmt.Errorf("%w: %s (injected)", ErrNoSpace, d.name)
	}
	if d.arb != nil {
		return d.arb.reserveFor(tenant, n)
	}
	if d.used+n > d.cfg.Capacity {
		return fmt.Errorf("%w: need %d, free %d", ErrNoSpace, n, d.cfg.Capacity-d.used)
	}
	d.used += n
	return nil
}

// reserve claims n bytes of capacity (anonymous path).
func (d *Device) reserve(n int64) error { return d.reserveAs("", n) }

// releaseAs frees n bytes of tenant's capacity.
func (d *Device) releaseAs(tenant string, n int64) {
	if d.arb != nil {
		d.arb.releaseFor(tenant, n)
		return
	}
	d.release(n)
}

// traceError marks a device-level failure on the device's trace timeline
// (the same track its station busy spans and queue counters live on) and in
// the per-device error counter.
func (d *Device) traceError(name string) {
	if tr := d.k.Tracer(); tr != nil {
		tr.Instant(d.ch.TraceTrack(tr), "nvm", name, int64(d.k.Now()))
	}
	if m := d.k.Metrics(); m != nil {
		m.Counter("nvm_errors_total", metrics.L(metrics.KeyLayer, "nvm"),
			metrics.L(metrics.KeyOp, name), metrics.L("dev", d.name)).Inc()
	}
}

// release frees n bytes of capacity.
func (d *Device) release(n int64) {
	d.used -= n
	if d.used < 0 {
		panic("nvm: released more than reserved")
	}
}

// FSConfig describes the local file system behaviour.
type FSConfig struct {
	SupportsFallocate bool // when false, Fallocate physically writes zeros
}

// FS is a flat local file system on one device.
type FS struct {
	dev     *Device
	cfg     FSConfig
	factory store.Factory
	files   map[string]*File
}

// NewFS creates a local file system. factory selects the payload backend.
func NewFS(dev *Device, cfg FSConfig, factory store.Factory) *FS {
	return &FS{dev: dev, cfg: cfg, factory: factory, files: make(map[string]*File)}
}

// Device returns the underlying SSD.
func (fs *FS) Device() *Device { return fs.dev }

// Create creates a new file, failing if it already exists.
func (fs *FS) Create(name string) (*File, error) { return fs.CreateTenant(name, "") }

// CreateTenant creates a new file owned by tenant, charging the tenant's
// file-count quota. tenant "" is the anonymous single-tenant path.
func (fs *FS) CreateTenant(name, tenant string) (*File, error) {
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	if tenant != "" {
		if err := fs.dev.Arbiter().chargeFile(tenant); err != nil {
			return nil, err
		}
	}
	f := &File{fs: fs, name: name, data: fs.factory(), tenant: tenant}
	fs.files[name] = f
	return f, nil
}

// Open returns an existing file, or creates it when create is true.
func (fs *FS) Open(name string, create bool) (*File, error) {
	return fs.OpenTenant(name, "", create)
}

// OpenTenant is Open with tenant attribution for newly created files.
func (fs *FS) OpenTenant(name, tenant string, create bool) (*File, error) {
	if f, ok := fs.files[name]; ok {
		return f, nil
	}
	if !create {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return fs.CreateTenant(name, tenant)
}

// Remove unlinks a file, returning its allocated space to the device. The
// handle goes stale: this file system models a cache, where Remove means
// discard/evict, so letting a stale handle keep writing would reserve
// capacity that no later Remove could return (the stranded-bytes bug).
func (fs *FS) Remove(name string) error {
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	fs.dev.releaseAs(f.tenant, f.Allocated())
	if f.tenant != "" {
		fs.dev.Arbiter().releaseFile(f.tenant)
	}
	f.unlinked = true
	f.reserved.Clear()
	delete(fs.files, name)
	return nil
}

// Exists reports whether a file exists.
func (fs *FS) Exists(name string) bool {
	_, ok := fs.files[name]
	return ok
}

// Files returns every file sorted by name, for deterministic iteration
// (fault injection walks them to corrupt at-rest content).
func (fs *FS) Files() []*File {
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*File, len(names))
	for i, name := range names {
		out[i] = fs.files[name]
	}
	return out
}

// File is a local file. Allocation is sparse (like ext4): only the byte
// ranges actually written or fallocated consume device capacity, so a
// cache file addressed at global-file offsets does not over-account.
type File struct {
	fs       *FS
	name     string
	tenant   string // owning tenant; "" for single-tenant runs
	unlinked bool   // set by FS.Remove; further writes return ErrStale
	data     store.Store
	reserved extent.Set // ranges holding allocated blocks
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Tenant returns the owning tenant ("" for single-tenant runs).
func (f *File) Tenant() string { return f.tenant }

// Size returns the current file size.
func (f *File) Size() int64 { return f.data.Size() }

// Store exposes the payload backend (used by tests and the cache layer).
func (f *File) Store() store.Store { return f.data }

// Allocated returns the bytes of device capacity held by this file.
func (f *File) Allocated() int64 { return f.reserved.TotalBytes() }

// reserve claims capacity for the not-yet-allocated parts of e and returns
// how many new bytes were claimed. The claim is all-or-nothing: on any
// error neither f.reserved nor the device's accounting moves, so a failed
// allocation racing an eviction can never strand reserved bytes.
func (f *File) reserve(e extent.Extent) (int64, error) {
	if f.unlinked {
		return 0, fmt.Errorf("%w: %s", ErrStale, f.name)
	}
	if f.fs.dev.failed {
		f.fs.dev.traceError("io_error")
		return 0, fmt.Errorf("%w: %s", ErrIO, f.fs.dev.name)
	}
	var need int64
	for _, g := range f.reserved.Gaps(e) {
		need += g.Len
	}
	if need == 0 {
		return 0, nil
	}
	if err := f.fs.dev.reserveAs(f.tenant, need); err != nil {
		if errors.Is(err, ErrQuota) {
			f.fs.dev.traceError("quota")
		} else {
			f.fs.dev.traceError("enospc")
		}
		return 0, err
	}
	f.reserved.Add(e)
	return need, nil
}

// AllocatedExtents returns the byte ranges currently holding allocated
// blocks (a copy of the allocation map, sorted).
func (f *File) AllocatedExtents() []extent.Extent { return f.reserved.Extents() }

// Punch deallocates the blocks of e, returning their capacity to the
// device and dropping them from the written-extent map — the cache layer's
// clean-extent eviction primitive. Callers must only punch ranges whose
// content is durable elsewhere. Returns the bytes actually freed.
func (f *File) Punch(e extent.Extent) int64 {
	if f.unlinked {
		return 0
	}
	var freed int64
	for _, a := range f.reserved.Extents() {
		ov := a.Intersect(e)
		if !ov.Empty() {
			freed += ov.Len
		}
	}
	if freed == 0 {
		return 0
	}
	f.reserved.Remove(e)
	f.data.Written().Remove(e)
	f.fs.dev.releaseAs(f.tenant, freed)
	if f.fs.dev.arb != nil {
		f.fs.dev.arb.noteEvicted(f.tenant, freed)
	}
	return freed
}

// Fallocate reserves the byte range [off, off+size). With fallocate
// support this is a metadata-only operation; without it, zeros are
// physically written for the newly allocated bytes (the paper's fallback
// path, footnote 2), costing full device write time.
func (f *File) Fallocate(p *sim.Proc, off, size int64) error {
	grow, err := f.reserve(extent.Extent{Off: off, Len: size})
	if err != nil {
		return err
	}
	if f.fs.cfg.SupportsFallocate {
		f.fs.dev.serve(p, "meta", 0, 0) // one metadata op
		return nil
	}
	if grow > 0 {
		f.fs.dev.write(p, grow)
		f.data.WriteAt(nil, off, size)
	}
	return nil
}

// WriteAt writes size bytes at off, charging device time. data may be nil
// for metadata-only simulation.
func (f *File) WriteAt(p *sim.Proc, data []byte, off, size int64) error {
	if _, err := f.reserve(extent.Extent{Off: off, Len: size}); err != nil {
		return err
	}
	f.fs.dev.write(p, size)
	f.data.WriteAt(data, off, size)
	return nil
}

// ReadAt reads len(buf) bytes (or size when buf is nil) at off. A failed
// device returns ErrIO after charging the attempt's latency, mirroring a
// timed-out block-layer read.
func (f *File) ReadAt(p *sim.Proc, buf []byte, off, size int64) error {
	if buf != nil {
		size = int64(len(buf))
	}
	if f.unlinked {
		return fmt.Errorf("%w: %s", ErrStale, f.name)
	}
	if f.fs.dev.failed {
		f.fs.dev.serve(p, "read", 0, 0)
		f.fs.dev.traceError("io_error")
		return fmt.Errorf("%w: %s", ErrIO, f.fs.dev.name)
	}
	f.fs.dev.read(p, size)
	if buf != nil {
		f.data.ReadAt(buf, off)
	}
	return nil
}
