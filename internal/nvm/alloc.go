package nvm

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/metrics"
)

// Multi-tenant capacity arbitration errors. They are distinct from
// ErrNoSpace so the cache layer can tell "this tenant is over ITS budget"
// (back off, evict own clean extents, or write through) from "the device is
// physically full" (somebody else's bytes are in the way).
var (
	// ErrQuota is returned when an allocation would push a tenant past its
	// per-device byte or file-count quota.
	ErrQuota = errors.New("nvm: tenant quota exceeded")
	// ErrAdmission is returned when a tenant's capacity reservation cannot
	// be granted at admission time.
	ErrAdmission = errors.New("nvm: tenant admission rejected")
	// ErrStale is returned by operations on a file handle whose file was
	// removed (e.g. evicted under capacity pressure). The cache layer's
	// discard semantics make a removed cache file dead, not POSIX-unlinked:
	// allowing further writes would reserve device capacity that no Remove
	// could ever return.
	ErrStale = errors.New("nvm: stale file handle (file was removed)")
)

// Quota caps one tenant's footprint on one device. Zero fields mean
// unlimited.
type Quota struct {
	Bytes int64 // byte cap on cache allocations
	Files int   // cache file-count cap
}

// tenantAcct is one tenant's accounting state on one device.
type tenantAcct struct {
	quota    Quota
	reserved int64 // admission reservation: a guaranteed capacity floor
	admitted bool
	sessions int // open sessions sharing the admission
	used     int64
	files    int

	// Statistics.
	rejections int64 // allocations denied by quota or capacity
	evicted    int64 // bytes reclaimed from this tenant's clean extents
}

// Evictor reclaims up to need bytes of clean (already durable elsewhere)
// cache capacity and returns how many bytes it actually freed. The cache
// layer registers one per open cache file.
type Evictor func(need int64) int64

type evictorEntry struct {
	id int
	fn Evictor
}

// Arbiter arbitrates one device's capacity between tenants: per-tenant
// byte and file-count quotas, admission reservations (guaranteed floors),
// and a registry of clean-extent evictors consulted under pressure. All
// state is plain bookkeeping in virtual time — the arbiter never blocks;
// backpressure policy (wait, retry, write through) lives in the cache
// layer.
type Arbiter struct {
	dev      *Device
	tenants  map[string]*tenantAcct
	evictors []evictorEntry
	nextID   int
}

// Arbiter returns the device's capacity arbiter, creating it on first use.
// Devices without tenants never allocate one, so single-tenant runs are
// byte-identical to builds that predate arbitration.
func (d *Device) Arbiter() *Arbiter {
	if d.arb == nil {
		d.arb = &Arbiter{dev: d, tenants: make(map[string]*tenantAcct)}
	}
	return d.arb
}

// acct returns (creating on demand) the accounting record for tenant.
func (a *Arbiter) acct(tenant string) *tenantAcct {
	t, ok := a.tenants[tenant]
	if !ok {
		t = &tenantAcct{}
		a.tenants[tenant] = t
	}
	return t
}

// Register installs (or updates) tenant's quota. Every rank of a tenant
// passes the same parsed hint set, so later registrations are idempotent.
func (a *Arbiter) Register(tenant string, q Quota) {
	a.acct(tenant).quota = q
}

// Tenants returns the registered tenant names, sorted.
func (a *Arbiter) Tenants() []string {
	out := make([]string, 0, len(a.tenants))
	for name := range a.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Usage returns tenant's current byte and file-count footprint.
func (a *Arbiter) Usage(tenant string) (bytes int64, files int) {
	if t, ok := a.tenants[tenant]; ok {
		return t.used, t.files
	}
	return 0, 0
}

// Evicted returns how many clean bytes have been reclaimed from tenant.
func (a *Arbiter) Evicted(tenant string) int64 {
	if t, ok := a.tenants[tenant]; ok {
		return t.evicted
	}
	return 0
}

// Rejections returns how many of tenant's allocations were denied.
func (a *Arbiter) Rejections(tenant string) int64 {
	if t, ok := a.tenants[tenant]; ok {
		return t.rejections
	}
	return 0
}

// Admitted reports whether tenant's reservation was granted.
func (a *Arbiter) Admitted(tenant string) bool {
	t, ok := a.tenants[tenant]
	return ok && t.admitted
}

// TryAdmit grants tenant a reservation of reserve bytes, or returns
// ErrAdmission when the sum of all reservations would exceed the device.
// Admission is idempotent per tenant (the first rank to open admits the
// job; its peers see the grant). Reservations are guaranteed floors: a
// tenant allocating within its reservation can never be starved by other
// tenants' best-effort allocations. They last for the device's lifetime,
// i.e. one simulated run.
func (a *Arbiter) TryAdmit(tenant string, reserve int64) error {
	t := a.acct(tenant)
	if t.admitted {
		t.sessions++
		return nil
	}
	var committed int64
	for _, o := range a.tenants {
		if o.admitted {
			committed += o.reserved
		}
	}
	if committed+reserve > a.dev.cfg.Capacity {
		return fmt.Errorf("%w: tenant %q reserve %d, %d of %d already committed",
			ErrAdmission, tenant, reserve, committed, a.dev.cfg.Capacity)
	}
	t.reserved = reserve
	t.admitted = true
	t.sessions = 1
	return nil
}

// Withdraw ends one admitted session. When the last session of a tenant
// withdraws, its reservation is released so queued tenants can admit. A
// crashed session deliberately never withdraws: its cache file (and the
// journal needed to recover it) stays charged until recovery or discard.
func (a *Arbiter) Withdraw(tenant string) {
	t, ok := a.tenants[tenant]
	if !ok || !t.admitted {
		return
	}
	t.sessions--
	if t.sessions <= 0 {
		t.sessions = 0
		t.admitted = false
		t.reserved = 0
	}
}

// avail returns how many bytes tenant may still allocate from the device:
// raw free space minus the unconsumed reservations of every OTHER tenant.
// A tenant's own unconsumed reservation is excluded from the hold, which is
// exactly what makes reservations guaranteed floors.
func (a *Arbiter) avail(tenant string) int64 {
	var hold int64
	for name, o := range a.tenants {
		if name != tenant && o.reserved > o.used {
			hold += o.reserved - o.used
		}
	}
	return a.dev.cfg.Capacity - a.dev.used - hold
}

// reserveFor claims n bytes for tenant, enforcing its byte quota and the
// reservation-aware capacity check. The claim is atomic: either both the
// tenant's and the device's accounting advance, or neither does — a failed
// allocation can never strand reserved bytes.
func (a *Arbiter) reserveFor(tenant string, n int64) error {
	t := a.acct(tenant)
	if tenant != "" && t.quota.Bytes > 0 && t.used+n > t.quota.Bytes {
		t.rejections++
		return fmt.Errorf("%w: tenant %q needs %d, quota headroom %d",
			ErrQuota, tenant, n, t.quota.Bytes-t.used)
	}
	if n > a.avail(tenant) {
		t.rejections++
		return fmt.Errorf("%w: tenant %q needs %d, available %d (reservations held)",
			ErrNoSpace, tenant, n, a.avail(tenant))
	}
	a.dev.used += n
	t.used += n
	a.gauge(tenant)
	return nil
}

// releaseFor returns n bytes of tenant's allocation to the device.
func (a *Arbiter) releaseFor(tenant string, n int64) {
	t := a.acct(tenant)
	t.used -= n
	if t.used < 0 {
		panic("nvm: tenant released more than reserved")
	}
	a.dev.release(n)
	a.gauge(tenant)
}

// chargeFile counts one cache file against tenant's file quota.
func (a *Arbiter) chargeFile(tenant string) error {
	t := a.acct(tenant)
	if tenant != "" && t.quota.Files > 0 && t.files+1 > t.quota.Files {
		t.rejections++
		return fmt.Errorf("%w: tenant %q at file-count quota %d", ErrQuota, tenant, t.quota.Files)
	}
	t.files++
	return nil
}

// releaseFile returns one file-count slot to tenant.
func (a *Arbiter) releaseFile(tenant string) {
	t := a.acct(tenant)
	t.files--
	if t.files < 0 {
		panic("nvm: tenant released more files than created")
	}
}

// gauge publishes tenant's live byte footprint when metrics are on.
func (a *Arbiter) gauge(tenant string) {
	if tenant == "" {
		return
	}
	if m := a.dev.k.Metrics(); m != nil {
		m.Gauge("nvm_tenant_used_bytes", metrics.L(metrics.KeyLayer, "nvm"),
			metrics.L("dev", a.dev.name), metrics.L("tenant", tenant)).Set(a.tenants[tenant].used)
	}
}

// RegisterEvictor adds a clean-extent evictor (registration order is the
// deterministic eviction order) and returns its unregister function.
func (a *Arbiter) RegisterEvictor(fn Evictor) (unregister func()) {
	id := a.nextID
	a.nextID++
	a.evictors = append(a.evictors, evictorEntry{id: id, fn: fn})
	return func() {
		for i, e := range a.evictors {
			if e.id == id {
				a.evictors = append(a.evictors[:i], a.evictors[i+1:]...)
				return
			}
		}
	}
}

// Reclaim asks the registered evictors, in registration order, to free up
// to need bytes of clean cache capacity, and returns the bytes actually
// freed. forTenant names the beneficiary (metrics only; "" is anonymous).
func (a *Arbiter) Reclaim(forTenant string, need int64) int64 {
	var freed int64
	evictors := make([]evictorEntry, len(a.evictors))
	copy(evictors, a.evictors) // evictors may unregister themselves
	for _, e := range evictors {
		if freed >= need {
			break
		}
		freed += e.fn(need - freed)
	}
	if freed > 0 && forTenant != "" {
		if m := a.dev.k.Metrics(); m != nil {
			m.Counter("nvm_tenant_reclaimed_bytes_total", metrics.L(metrics.KeyLayer, "nvm"),
				metrics.L("dev", a.dev.name), metrics.L("tenant", forTenant)).Add(freed)
		}
	}
	return freed
}

// noteEvicted credits reclaimed clean bytes to the tenant they were taken
// from (called by File.Punch).
func (a *Arbiter) noteEvicted(tenant string, n int64) {
	if tenant == "" {
		return
	}
	a.acct(tenant).evicted += n
	if m := a.dev.k.Metrics(); m != nil {
		m.Counter("nvm_tenant_evicted_bytes_total", metrics.L(metrics.KeyLayer, "nvm"),
			metrics.L("dev", a.dev.name), metrics.L("tenant", tenant)).Add(n)
	}
}
