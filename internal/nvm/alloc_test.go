package nvm

import (
	"errors"
	"testing"

	"repro/internal/extent"
	"repro/internal/sim"
	"repro/internal/store"
)

// extentOf is shorthand for test extents.
func extentOf(off, length int64) extent.Extent { return extent.Extent{Off: off, Len: length} }

func TestQuotaCapsTenantBytes(t *testing.T) {
	k := sim.NewKernel(1)
	dev := testDevice(k, 1000)
	fs := NewFS(dev, FSConfig{SupportsFallocate: true}, store.NewNull)
	arb := dev.Arbiter()
	arb.Register("jobA", Quota{Bytes: 400})
	k.Spawn("w", func(p *sim.Proc) {
		f, err := fs.CreateTenant("a", "jobA")
		if err != nil {
			t.Fatal(err)
		}
		if err := f.WriteAt(p, nil, 0, 400); err != nil {
			t.Error(err)
		}
		// Over quota even though the device has 600 bytes free.
		if err := f.WriteAt(p, nil, 400, 1); !errors.Is(err, ErrQuota) {
			t.Errorf("want ErrQuota, got %v", err)
		}
		if got, _ := arb.Usage("jobA"); got != 400 {
			t.Errorf("usage = %d, want 400", got)
		}
		if arb.Rejections("jobA") != 1 {
			t.Errorf("rejections = %d, want 1", arb.Rejections("jobA"))
		}
		// Freeing quota headroom (eviction) re-enables allocation.
		f.Punch(extentOf(0, 200))
		if err := f.WriteAt(p, nil, 400, 200); err != nil {
			t.Errorf("write after punch: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQuotaCapsTenantFiles(t *testing.T) {
	k := sim.NewKernel(1)
	dev := testDevice(k, 1000)
	fs := NewFS(dev, FSConfig{SupportsFallocate: true}, store.NewNull)
	dev.Arbiter().Register("jobA", Quota{Files: 1})
	if _, err := fs.CreateTenant("a0", "jobA"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.CreateTenant("a1", "jobA"); !errors.Is(err, ErrQuota) {
		t.Fatalf("want ErrQuota, got %v", err)
	}
	// Another tenant is unaffected.
	if _, err := fs.CreateTenant("b0", "jobB"); err != nil {
		t.Fatalf("other tenant blocked: %v", err)
	}
	// Removing the file returns the slot.
	if err := fs.Remove("a0"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.CreateTenant("a1", "jobA"); err != nil {
		t.Fatalf("slot not returned: %v", err)
	}
}

func TestReservationIsGuaranteedFloor(t *testing.T) {
	k := sim.NewKernel(1)
	dev := testDevice(k, 1000)
	fs := NewFS(dev, FSConfig{SupportsFallocate: true}, store.NewNull)
	arb := dev.Arbiter()
	if err := arb.TryAdmit("jobA", 400); err != nil {
		t.Fatal(err)
	}
	if err := arb.TryAdmit("jobB", 0); err != nil {
		t.Fatal(err)
	}
	k.Spawn("w", func(p *sim.Proc) {
		fb, _ := fs.CreateTenant("b", "jobB")
		// B sees only capacity minus A's untouched reservation.
		if err := fb.WriteAt(p, nil, 0, 700); !errors.Is(err, ErrNoSpace) {
			t.Errorf("best-effort tenant pierced a reservation: %v", err)
		}
		if err := fb.WriteAt(p, nil, 0, 600); err != nil {
			t.Error(err)
		}
		// A's floor is intact.
		fa, _ := fs.CreateTenant("a", "jobA")
		if err := fa.WriteAt(p, nil, 0, 400); err != nil {
			t.Errorf("reserved tenant starved: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionRejectsOversubscription(t *testing.T) {
	k := sim.NewKernel(1)
	dev := testDevice(k, 1000)
	arb := dev.Arbiter()
	if err := arb.TryAdmit("jobA", 700); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-admission of the same tenant is free.
	if err := arb.TryAdmit("jobA", 700); err != nil {
		t.Fatal(err)
	}
	if err := arb.TryAdmit("jobB", 400); !errors.Is(err, ErrAdmission) {
		t.Fatalf("want ErrAdmission, got %v", err)
	}
	if arb.Admitted("jobB") {
		t.Error("rejected tenant marked admitted")
	}
	if err := arb.TryAdmit("jobB", 300); err != nil {
		t.Fatalf("fitting reservation rejected: %v", err)
	}
	if got := arb.Tenants(); len(got) != 2 || got[0] != "jobA" || got[1] != "jobB" {
		t.Fatalf("tenants = %v", got)
	}
}

func TestReclaimRunsEvictorsInOrder(t *testing.T) {
	k := sim.NewKernel(1)
	dev := testDevice(k, 1000)
	arb := dev.Arbiter()
	var order []string
	unregA := arb.RegisterEvictor(func(need int64) int64 {
		order = append(order, "a")
		return 100
	})
	arb.RegisterEvictor(func(need int64) int64 {
		order = append(order, "b")
		return need
	})
	if freed := arb.Reclaim("jobX", 250); freed != 250 {
		t.Fatalf("freed = %d, want 250", freed)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
	// After unregistering a, only b runs.
	unregA()
	order = nil
	if freed := arb.Reclaim("jobX", 50); freed != 50 {
		t.Fatalf("freed = %d, want 50", freed)
	}
	if len(order) != 1 || order[0] != "b" {
		t.Fatalf("order after unregister = %v", order)
	}
	_ = k
}

// TestTenantAccountingBalances pins the invariant that tenant books and the
// device counter agree through a write/punch/remove cycle under quota
// pressure, including a failed allocation in the middle.
func TestTenantAccountingBalances(t *testing.T) {
	k := sim.NewKernel(1)
	dev := testDevice(k, 1000)
	fs := NewFS(dev, FSConfig{SupportsFallocate: true}, store.NewNull)
	arb := dev.Arbiter()
	arb.Register("jobA", Quota{Bytes: 500})
	arb.Register("jobB", Quota{})
	k.Spawn("w", func(p *sim.Proc) {
		fa, _ := fs.CreateTenant("a", "jobA")
		fb, _ := fs.CreateTenant("b", "jobB")
		if err := fa.WriteAt(p, nil, 0, 500); err != nil {
			t.Error(err)
		}
		if err := fb.WriteAt(p, nil, 0, 500); err != nil {
			t.Error(err)
		}
		// Both a quota and a capacity denial: books must not move.
		if err := fa.WriteAt(p, nil, 500, 100); !errors.Is(err, ErrQuota) {
			t.Errorf("want ErrQuota, got %v", err)
		}
		if err := fb.WriteAt(p, nil, 500, 100); !errors.Is(err, ErrNoSpace) {
			t.Errorf("want ErrNoSpace, got %v", err)
		}
		check := func(when string) {
			ua, _ := arb.Usage("jobA")
			ub, _ := arb.Usage("jobB")
			if ua != fa.Allocated() || ub != fb.Allocated() || ua+ub != dev.Used() {
				t.Fatalf("%s: books out of balance: a=%d/%d b=%d/%d dev=%d",
					when, ua, fa.Allocated(), ub, fb.Allocated(), dev.Used())
			}
		}
		check("after denials")
		fa.Punch(extentOf(0, 200))
		check("after punch")
		if arb.Evicted("jobA") != 200 {
			t.Errorf("evicted = %d, want 200", arb.Evicted("jobA"))
		}
		if err := fs.Remove("b"); err != nil {
			t.Error(err)
		}
		check("after remove")
		if dev.Used() != 300 {
			t.Errorf("used = %d, want 300", dev.Used())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
