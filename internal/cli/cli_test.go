package cli

import (
	"bytes"
	"flag"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func parse(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs, false)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSpecFromFlags(t *testing.T) {
	f := parse(t, "-aggs", "16", "-cb", "8", "-case", "theoretical",
		"-files", "2", "-compute", "5", "-nodes", "8", "-ppn", "4")
	spec, err := f.Spec(workloads.DefaultIOR())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Aggregators != 16 || spec.CBBuffer != 8<<20 || spec.Case != harness.CacheTheoretical {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.NFiles != 2 || spec.ComputeDelay != 5*sim.Second {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.Cluster.Nodes != 8 || spec.Cluster.RanksPerNode != 4 {
		t.Fatalf("cluster = %+v", spec.Cluster)
	}
}

func TestSpecDegradedFlags(t *testing.T) {
	f := parse(t, "-reliable")
	spec, err := f.Spec(workloads.DefaultIOR())
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Reliable || spec.Resilient {
		t.Fatalf("-reliable: spec = %+v", spec)
	}
	f = parse(t, "-resilient")
	spec, err = f.Spec(workloads.DefaultIOR())
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Reliable || !spec.Resilient {
		t.Fatalf("-resilient must imply Reliable: spec = %+v", spec)
	}
}

func TestSpecRejectsBadCase(t *testing.T) {
	f := parse(t, "-case", "turbo")
	if _, err := f.Spec(workloads.DefaultIOR()); err == nil {
		t.Fatal("expected error")
	}
}

func TestReportRendersEverything(t *testing.T) {
	w := workloads.CollPerf{RunBytes: 32 << 10, RunsY: 2, RunsZ: 2}
	spec := harness.DefaultSpec(w, harness.CacheEnabled, 2, 1<<20)
	spec.Cluster = harness.Scaled(1, 2, 2)
	spec.NFiles = 1
	spec.ComputeDelay = sim.Second
	res, err := harness.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Report(&buf, res)
	out := buf.String()
	for _, want := range []string{"perceived bandwidth", "coll_perf", "phase 0", "breakdown"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
