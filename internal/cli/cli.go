// Package cli is the shared command-line plumbing of the benchmark
// executables (collperf, flashio, ior): flag parsing into a harness.Spec
// and result rendering.
package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/harness"
	"repro/internal/mpe"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Flags holds the common benchmark options.
type Flags struct {
	Aggs      *int
	CBMB      *int
	Case      *string
	Files     *int
	Compute   *float64
	Nodes     *int
	PPN       *int
	Seed      *int64
	LastNHS   *bool
	Trace     *string
	TraceSum  *bool
	CritPath  *bool
	Timeline  *int
	Stats     *bool
	Faults    *string
	Reliable  *bool
	Resilient *bool
	Metrics   *MetricsFlags
}

// MetricsFlags holds the metrics options every binary shares: printing the
// registry text after a run and exporting the e10stat exchange JSON.
type MetricsFlags struct {
	Show *bool
	Out  *string
}

// RegisterMetrics installs the shared metrics flags on fs. The workload
// binaries get them through Register; e10bench installs them directly.
func RegisterMetrics(fs *flag.FlagSet) *MetricsFlags {
	return &MetricsFlags{
		Show: fs.Bool("metrics", false, "collect metrics during the run and print the registry text"),
		Out:  fs.String("metrics-out", "", "collect metrics and write the e10stat input JSON to this file"),
	}
}

// Enabled reports whether either metrics flag asks for collection.
func (m *MetricsFlags) Enabled() bool { return *m.Show || *m.Out != "" }

// Apply turns on metrics collection in spec when requested.
func (m *MetricsFlags) Apply(spec *harness.Spec) {
	if m.Enabled() {
		spec.Metrics = true
	}
}

// Report prints the registry text and/or writes the e10stat input file,
// according to the flags.
func (m *MetricsFlags) Report(out io.Writer, res *harness.Result) error {
	if *m.Show {
		fmt.Fprint(out, res.MetricsSummary)
	}
	if *m.Out != "" {
		b, err := json.MarshalIndent(res.StatInput(), "", "  ")
		if err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
		if err := os.WriteFile(*m.Out, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
		fmt.Fprintf(out, "metrics: wrote %s (feed it to e10stat)\n", *m.Out)
	}
	return nil
}

// Register installs the common flags on fs with the paper's defaults.
func Register(fs *flag.FlagSet, includeLastSync bool) *Flags {
	return &Flags{
		Aggs:     fs.Int("aggs", 64, "number of aggregators (cb_nodes)"),
		CBMB:     fs.Int("cb", 16, "collective buffer size in MB (cb_buffer_size)"),
		Case:     fs.String("case", "enabled", "data path: disabled | enabled | theoretical | burstbuffer"),
		Files:    fs.Int("files", 4, "number of files written"),
		Compute:  fs.Float64("compute", 30, "compute delay between files in seconds"),
		Nodes:    fs.Int("nodes", 64, "compute nodes"),
		PPN:      fs.Int("ppn", 8, "ranks per node"),
		Seed:     fs.Int64("seed", 20160901, "simulation seed"),
		LastNHS:  fs.Bool("last-sync", includeLastSync, "account the last write's non-hidden sync (IOR style)"),
		Trace:    fs.String("trace", "", "write a Chrome/Perfetto trace (spans, counters, instants from every layer) to this file"),
		TraceSum: fs.Bool("trace-summary", false, "print the trace digest (top spans, counter high-water marks); implies event tracing"),
		CritPath: fs.Bool("critpath", false,
			"print the critical-path report (per-category attribution of the blocking chain bounding wall time, straggler ranking, what-if estimates); implies event tracing, never perturbs virtual time"),
		Timeline: fs.Int("timeline", 0,
			"print the run timeline sampled into this many buckets (counters, in-flight collectives/messages, tenant events); implies event tracing"),
		Stats: fs.Bool("stats", false, "print the cluster resource report after the run"),
		Faults: fs.String("faults", "", "fault schedule, e.g. "+
			"'degrade-target,target=1,factor=0.2,from=2s,to=8s;fail-device,node=0,at=5s'; "+
			"corruption kinds: 'torn-write,node=0,at=5s;bit-rot,node=1,rate=0.1,at=6s'"),
		Reliable: fs.Bool("reliable", false,
			"arm reliable message delivery (acks, retransmit, dedup) and collective timeouts; required for lossy-link/dup-link/partition faults"),
		Resilient: fs.Bool("resilient", false,
			"use the failover-capable collective write path (aggregator crash recovery); implies -reliable"),
		Metrics: RegisterMetrics(fs),
	}
}

// Spec builds the experiment spec from the parsed flags.
func (f *Flags) Spec(w workloads.Workload) (harness.Spec, error) {
	var cs harness.Case
	switch *f.Case {
	case "disabled":
		cs = harness.CacheDisabled
	case "enabled":
		cs = harness.CacheEnabled
	case "theoretical":
		cs = harness.CacheTheoretical
	case "burstbuffer":
		cs = harness.BurstBuffer
	default:
		return harness.Spec{}, fmt.Errorf("unknown -case %q", *f.Case)
	}
	spec := harness.DefaultSpec(w, cs, *f.Aggs, int64(*f.CBMB)<<20)
	spec.Cluster = harness.Scaled(*f.Seed, *f.Nodes, *f.PPN)
	spec.NFiles = *f.Files
	spec.ComputeDelay = sim.FromSeconds(*f.Compute)
	spec.IncludeLastSync = *f.LastNHS
	spec.TracePath = *f.Trace
	spec.TraceEvents = *f.TraceSum
	spec.CritPath = *f.CritPath
	spec.TimelineBuckets = *f.Timeline
	spec.FaultSpec = *f.Faults
	spec.Reliable = *f.Reliable || *f.Resilient
	spec.Resilient = *f.Resilient
	f.Metrics.Apply(&spec)
	return spec, nil
}

// ReportTrace announces the written trace file and prints the trace digest
// when requested; the harness itself exports the file (Spec.TracePath).
func (f *Flags) ReportTrace(out io.Writer, res *harness.Result) {
	if *f.Trace != "" && res.Trace != nil {
		fmt.Fprintf(out, "trace: wrote %s (%d events on %d tracks); open with https://ui.perfetto.dev\n",
			*f.Trace, res.Trace.Len(), res.Trace.Tracks())
	}
	if *f.TraceSum {
		fmt.Fprint(out, res.TraceSummary)
	}
	if res.CritPathReport != "" {
		fmt.Fprint(out, res.CritPathReport)
	}
	if res.TimelineReport != "" {
		fmt.Fprint(out, res.TimelineReport)
	}
}

// Report prints a Result in the style of the paper's per-cell numbers.
func Report(out io.Writer, res *harness.Result) {
	spec := res.Spec
	fmt.Fprintf(out, "%s cell=%s case=%s ranks=%d files=%d compute=%.0fs\n",
		spec.Workload.Name(), spec.Label(), spec.Case,
		spec.Cluster.Nodes*spec.Cluster.RanksPerNode, spec.NFiles, spec.ComputeDelay.Seconds())
	fmt.Fprintf(out, "  total data         : %.2f GB\n", float64(res.TotalBytes)/1e9)
	fmt.Fprintf(out, "  perceived bandwidth: %.2f GB/s (Equation 2)\n", res.BandwidthGBs)
	fmt.Fprintf(out, "  simulated wall time: %.2f s\n", res.WallTime.Seconds())
	fmt.Fprintf(out, "  peak coll buffer   : %.1f MB\n", float64(res.PeakBufBytes)/(1<<20))
	fmt.Fprintf(out, "  events dispatched  : %d\n", res.EventsDispatched)
	if res.FailoverEpochs > 0 {
		fmt.Fprintf(out, "  failover epochs    : %d\n", res.FailoverEpochs)
	}
	for k, ph := range res.Phases {
		fmt.Fprintf(out, "  phase %d: T_c=%.3fs  close_wait=%.3fs\n", k, ph.WriteTime.Seconds(), ph.CloseWait.Seconds())
	}
	fmt.Fprintf(out, "  breakdown (max over ranks, all files):\n")
	for _, ph := range mpe.BreakdownPhases {
		if d := res.Breakdown[ph]; d > 0 {
			fmt.Fprintf(out, "    %-16s %8.3f s\n", ph, d.Seconds())
		}
	}
	if res.FaultReport != "" {
		fmt.Fprint(out, res.FaultReport)
	}
}

// ReportMetrics prints the registry text and/or writes the e10stat input
// file per the shared metrics flags, exiting on write errors.
func (f *Flags) ReportMetrics(out io.Writer, tool string, res *harness.Result) {
	if err := f.Metrics.Report(out, res); err != nil {
		Fatalf(tool, "%v", err)
	}
}

// MaybeReport prints the cluster resource summary when -stats was given.
func (f *Flags) MaybeReport(out io.Writer, res *harness.Result) {
	if *f.Stats {
		fmt.Fprint(out, res.Report)
	}
}

// Fatalf prints and exits.
func Fatalf(tool, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, tool+": "+format+"\n", args...)
	os.Exit(1)
}
