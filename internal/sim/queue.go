package sim

// eventQueue is the kernel's pending-event set, ordered by (t, seq).
//
// It replaces a container/heap binary heap, which boxed every event into
// an interface{} on Push and Pop — one heap allocation per scheduled
// event. This queue is two-tier and allocation-free in steady state:
//
//   - now: a FIFO ring of events scheduled for the current virtual time.
//     Same-time scheduling (Wake, Sleep(0), After(0)) is the kernel's
//     most common operation, and such events are pushed in seq order and
//     consumed in seq order, so a ring is already sorted — push and pop
//     are O(1).
//   - future: a 4-ary min-heap of events scheduled for a later time.
//     4-ary halves the tree depth of a binary heap and keeps children in
//     one cache line.
//
// Pop compares the ring head against the heap top under the same (t, seq)
// total order the old heap used, so the pop sequence — and with it every
// virtual-time tie-break — is bit-for-bit identical. The invariants that
// make the ring correct:
//
//   - seq increases monotonically with Push calls, so ring entries are
//     FIFO-sorted by seq and share t == now-at-push.
//   - a heap entry with the same t as a ring entry was necessarily pushed
//     earlier (while that t was still in the future), so its seq is
//     smaller and the compare pops it first.
//   - time only advances by popping a future event, which the compare
//     permits only once the ring is empty.
type eventQueue struct {
	now     []event // FIFO ring of events at the current virtual time
	head    int     // index of the ring's oldest entry
	future  []event // 4-ary min-heap on (t, seq)
	current Time    // the "now" the ring is bucketed on
}

// Len returns the number of pending events.
func (q *eventQueue) Len() int {
	return (len(q.now) - q.head) + len(q.future)
}

// eventBefore is the queue's total order: earlier time first, then lower
// sequence number (FIFO among same-time events).
func eventBefore(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// Push inserts ev. now is the kernel's current virtual time; events
// scheduled exactly at it take the ring fast path.
func (q *eventQueue) Push(ev event, now Time) {
	if ev.t == now && q.ringUsable(now) {
		q.now = append(q.now, ev)
		q.current = now
		return
	}
	q.future = append(q.future, ev)
	q.up(len(q.future) - 1)
}

// ringUsable reports whether the ring can accept an event at now: it is
// empty (and can be re-bucketed) or already holds events at this time.
func (q *eventQueue) ringUsable(now Time) bool {
	if q.head == len(q.now) {
		q.now = q.now[:0]
		q.head = 0
		return true
	}
	return q.current == now
}

// Pop removes and returns the smallest pending event under (t, seq).
// It must not be called on an empty queue.
func (q *eventQueue) Pop() event {
	ringOK := q.head < len(q.now)
	heapOK := len(q.future) > 0
	if ringOK && (!heapOK || eventBefore(&q.now[q.head], &q.future[0])) {
		ev := q.now[q.head]
		q.now[q.head] = event{} // release fn/p/tm references
		q.head++
		return ev
	}
	ev := q.future[0]
	n := len(q.future) - 1
	q.future[0] = q.future[n]
	q.future[n] = event{}
	q.future = q.future[:n]
	if n > 0 {
		q.down(0)
	}
	return ev
}

const heapArity = 4

func (q *eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / heapArity
		if !eventBefore(&q.future[i], &q.future[parent]) {
			return
		}
		q.future[i], q.future[parent] = q.future[parent], q.future[i]
		i = parent
	}
}

func (q *eventQueue) down(i int) {
	n := len(q.future)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventBefore(&q.future[c], &q.future[min]) {
				min = c
			}
		}
		if !eventBefore(&q.future[min], &q.future[i]) {
			return
		}
		q.future[i], q.future[min] = q.future[min], q.future[i]
		i = min
	}
}
