package sim

import "repro/internal/trace"

// Station is a FIFO queueing station with a fixed number of identical
// servers. It models contended resources such as storage targets, NIC
// injection ports and metadata servers: requests queue in arrival order and
// each occupies one server for its service time.
type Station struct {
	k       *Kernel
	name    string
	servers int
	busy    int
	waiters []*Proc

	// Statistics, accumulated over the run.
	BusyTime  Time  // total server-occupancy time (sum over servers)
	Served    int64 // completed service requests
	Bytes     int64 // payload bytes accounted via ServeBytes
	QueuedMax int   // high-water mark of the wait queue

	ttk  trace.TrackID
	treg bool
}

// NewStation creates a station with the given number of parallel servers.
func NewStation(k *Kernel, name string, servers int) *Station {
	if servers < 1 {
		panic("sim: station needs at least one server")
	}
	return &Station{k: k, name: name, servers: servers}
}

// Name returns the station name.
func (s *Station) Name() string { return s.name }

// TraceTrack lazily registers and returns this station's trace timeline
// (first use wins the registration, which is deterministic in a seeded
// run). Layers above can use it to attach events to the device's track.
func (s *Station) TraceTrack(tr *trace.Tracer) trace.TrackID {
	if tr == nil {
		return trace.NoTrack
	}
	if !s.treg {
		s.ttk = tr.Track(trace.GroupStations, s.name)
		s.treg = true
	}
	return s.ttk
}

// Acquire obtains one server, queueing FIFO behind earlier requests.
func (s *Station) Acquire(p *Proc) {
	if s.busy < s.servers {
		s.busy++
		return
	}
	s.waiters = append(s.waiters, p)
	if len(s.waiters) > s.QueuedMax {
		s.QueuedMax = len(s.waiters)
	}
	if tr := s.k.tracer; tr != nil {
		tr.Counter(s.TraceTrack(tr), "queue", int64(s.k.now), int64(len(s.waiters)))
	}
	p.Park()
	// The releaser transferred the server to us: busy stays constant.
}

// Release frees one server, handing it to the head waiter if present.
func (s *Station) Release() {
	if len(s.waiters) > 0 {
		p := s.waiters[0]
		s.waiters = s.waiters[1:]
		if tr := s.k.tracer; tr != nil {
			tr.Counter(s.TraceTrack(tr), "queue", int64(s.k.now), int64(len(s.waiters)))
		}
		s.k.Wake(p)
		return
	}
	s.busy--
	if s.busy < 0 {
		panic("sim: station released more than acquired")
	}
}

// Serve occupies one server for duration d.
func (s *Station) Serve(p *Proc, d Time) {
	s.Acquire(p)
	if tr := s.k.tracer; tr != nil {
		start := s.k.now
		p.Sleep(d)
		tr.SpanAt(s.TraceTrack(tr), "station", s.name, int64(start), int64(s.k.now))
	} else {
		p.Sleep(d)
	}
	s.BusyTime += d
	s.Served++
	s.Release()
}

// ServeBytes occupies one server for latency plus the transfer time of n
// bytes at the given rate, and accounts the bytes in the statistics.
func (s *Station) ServeBytes(p *Proc, latency Time, rate Rate, n int64) {
	d := latency + rate.DurationFor(n)
	s.Serve(p, d)
	s.Bytes += n
}

// Utilization returns the mean fraction of server capacity in use up to the
// given time horizon.
func (s *Station) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(s.BusyTime) / (float64(horizon) * float64(s.servers))
}
