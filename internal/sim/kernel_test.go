package sim

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := NewKernel(1)
	var end Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Second)
		p.Sleep(250 * Millisecond)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if want := 5*Second + 250*Millisecond; end != want {
		t.Fatalf("end time = %v, want %v", end, want)
	}
}

func TestSameTimeEventsRunInScheduleOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			p.Sleep(1 * Second) // all wake at the same instant
			order = append(order, i)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (full order %v)", i, v, i, order)
		}
	}
}

func TestZeroSleepYields(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAfterCallbackFires(t *testing.T) {
	k := NewKernel(1)
	var at Time = -1
	k.After(3*Second, func() { at = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 3*Second {
		t.Fatalf("callback at %v, want 3s", at)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := NewKernel(1)
	var childEnd Time
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(1 * Second)
		k.Spawn("child", func(c *Proc) {
			c.Sleep(2 * Second)
			childEnd = c.Now()
		})
		p.Sleep(10 * Second)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childEnd != 3*Second {
		t.Fatalf("child end = %v, want 3s", childEnd)
	}
}

func TestCondSignalWakesFIFO(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k)
	var woken []int
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("waiter", func(p *Proc) {
			p.Sleep(Time(i) * Millisecond) // park in index order
			c.Wait(p)
			woken = append(woken, i)
		})
	}
	k.Spawn("signaller", func(p *Proc) {
		p.Sleep(1 * Second)
		c.Signal()
		p.Sleep(1 * Second)
		c.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woken) != 3 || woken[0] != 0 || woken[1] != 1 || woken[2] != 2 {
		t.Fatalf("wake order = %v, want [0 1 2]", woken)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k)
	k.Spawn("stuck", func(p *Proc) { c.Wait(p) })
	if err := k.Run(); err == nil {
		t.Fatal("expected deadlock error, got nil")
	}
}

func TestStationSerializesSingleServer(t *testing.T) {
	k := NewKernel(1)
	s := NewStation(k, "disk", 1)
	var ends []Time
	for i := 0; i < 4; i++ {
		k.Spawn("client", func(p *Proc) {
			s.Serve(p, 1*Second)
			ends = append(ends, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, e := range ends {
		if want := Time(i+1) * Second; e != want {
			t.Fatalf("ends[%d] = %v, want %v", i, e, want)
		}
	}
	if s.Served != 4 || s.BusyTime != 4*Second {
		t.Fatalf("stats: served=%d busy=%v", s.Served, s.BusyTime)
	}
}

func TestStationParallelServers(t *testing.T) {
	k := NewKernel(1)
	s := NewStation(k, "raid", 2)
	var ends []Time
	for i := 0; i < 4; i++ {
		k.Spawn("client", func(p *Proc) {
			s.Serve(p, 1*Second)
			ends = append(ends, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Two at a time: completions at 1s,1s,2s,2s.
	want := []Time{Second, Second, 2 * Second, 2 * Second}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestStationServeBytesAccounting(t *testing.T) {
	k := NewKernel(1)
	s := NewStation(k, "link", 1)
	k.Spawn("client", func(p *Proc) {
		s.ServeBytes(p, 1*Millisecond, 1000*MBps, 500_000_000)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Bytes != 500_000_000 {
		t.Fatalf("bytes = %d", s.Bytes)
	}
	if got, want := k.Now(), 1*Millisecond+500*Millisecond; got != want {
		t.Fatalf("elapsed = %v, want %v", got, want)
	}
}

func TestDeterminismSameSeedSameSchedule(t *testing.T) {
	run := func(seed int64) []Time {
		k := NewKernel(seed)
		s := NewStation(k, "disk", 1)
		jit := UnitLogNormal(0.4)
		var ends []Time
		for i := 0; i < 16; i++ {
			k.Spawn("c", func(p *Proc) {
				d := Jitter(k.Rand(), jit, 100*Millisecond)
				s.Serve(p, d)
				ends = append(ends, p.Now())
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return ends
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jittered schedules")
	}
}

func TestUnitLogNormalMeanNearOne(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	d := UnitLogNormal(0.45)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	mean := sum / n
	if mean < 0.98 || mean > 1.02 {
		t.Fatalf("mean = %f, want ~1", mean)
	}
}

func TestRateDurationProperty(t *testing.T) {
	f := func(kb uint16) bool {
		n := int64(kb) * 1024
		d := Rate(1 * GBps).DurationFor(n)
		// 1 GB/s => 1 ns per byte, up to float rounding.
		diff := int64(d) - n
		return diff >= -1 && diff <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRateDurationNonNegative(t *testing.T) {
	if Rate(0).DurationFor(100) != 0 || Rate(100).DurationFor(-5) != 0 {
		t.Fatal("degenerate rate/size must yield zero duration")
	}
}

func TestJitterNilDistIsIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if Jitter(r, nil, 5*Second) != 5*Second {
		t.Fatal("nil dist must not change duration")
	}
}

func TestProcIdentity(t *testing.T) {
	k := NewKernel(1)
	p1 := k.Spawn("alpha", func(p *Proc) {})
	p2 := k.Spawn("beta", func(p *Proc) {})
	if p1.Name() != "alpha" || p2.Name() != "beta" {
		t.Fatal("names not preserved")
	}
	if p1.ID() == p2.ID() {
		t.Fatal("ids must be unique")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTimeStringUnits(t *testing.T) {
	cases := map[Time]string{
		2 * Second:      "2.000s",
		3 * Millisecond: "3.000ms",
		4 * Microsecond: "4.000µs",
		5:               "5ns",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestWakeAtFiresAtGivenTime(t *testing.T) {
	k := NewKernel(1)
	var sleeper *Proc
	var woke Time
	sleeper = k.Spawn("sleeper", func(p *Proc) {
		p.Park()
		woke = p.Now()
	})
	k.After(Millisecond, func() { k.WakeAt(2*Second, sleeper) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 2*Second {
		t.Fatalf("woke at %v, want 2s", woke)
	}
}

func TestStationQueueHighWaterMark(t *testing.T) {
	k := NewKernel(1)
	s := NewStation(k, "disk", 1)
	for i := 0; i < 5; i++ {
		k.Spawn("c", func(p *Proc) { s.Serve(p, Second) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s.QueuedMax != 4 {
		t.Fatalf("queue high-water = %d, want 4", s.QueuedMax)
	}
	if u := s.Utilization(5 * Second); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %f, want ~1", u)
	}
}

func TestEventBudgetAbortsLivelock(t *testing.T) {
	// A process re-arms itself forever; without the watchdog, Run would
	// never return. The budget turns that into an error naming the
	// livelock.
	k := NewKernel(1)
	k.SetEventBudget(1000)
	k.Spawn("spinner", func(p *Proc) {
		for {
			p.Sleep(Millisecond)
		}
	})
	err := k.Run()
	if !errors.Is(err, ErrEventBudget) {
		t.Fatalf("Run = %v, want ErrEventBudget", err)
	}
	if k.EventsDispatched() < 1000 {
		t.Fatalf("dispatched %d events, want >= budget", k.EventsDispatched())
	}
}

func TestEventBudgetOffByDefault(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("s", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(Millisecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStoppedTimerDoesNotPerturbTime(t *testing.T) {
	// Two kernels run the same workload; one additionally arms and cancels
	// a timer mid-run. Virtual time, dispatch counts, and final state must
	// be identical: a cancelled timer may not leave any footprint.
	run := func(withTimer bool) (Time, int64) {
		k := NewKernel(1)
		k.Spawn("worker", func(p *Proc) {
			var tm *Timer
			if withTimer {
				tm = k.AfterTimer(1*Second, func() {
					t.Error("cancelled timer fired")
				})
			}
			p.Sleep(10 * Millisecond)
			if withTimer {
				if !tm.Stop() {
					t.Error("Stop() = false before the due time")
				}
				tm.Stop() // double-stop is a no-op
			}
			p.Sleep(5 * Second)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now(), k.EventsDispatched()
	}
	baseNow, baseEvents := run(false)
	timerNow, timerEvents := run(true)
	if timerNow != baseNow {
		t.Fatalf("final time with cancelled timer = %v, want %v", timerNow, baseNow)
	}
	if timerEvents != baseEvents {
		t.Fatalf("events dispatched with cancelled timer = %d, want %d", timerEvents, baseEvents)
	}
}

func TestTimerFiresWhenNotStopped(t *testing.T) {
	k := NewKernel(1)
	var firedAt Time = -1
	tm := k.AfterTimer(2*Second, func() { firedAt = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if firedAt != 2*Second {
		t.Fatalf("timer fired at %v, want %v", firedAt, 2*Second)
	}
	if !tm.Fired() {
		t.Fatal("Fired() = false after the callback ran")
	}
	if tm.Stop() {
		t.Fatal("Stop() = true after the timer fired")
	}
}
