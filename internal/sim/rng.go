package sim

import (
	"math"
	"math/rand"
)

// Dist is a one-dimensional random distribution.
type Dist interface {
	// Sample draws one value using r.
	Sample(r *rand.Rand) float64
}

// Constant is a degenerate distribution that always yields Value.
type Constant float64

// Sample implements Dist.
func (c Constant) Sample(*rand.Rand) float64 { return float64(c) }

// Uniform is a uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(r *rand.Rand) float64 { return u.Lo + r.Float64()*(u.Hi-u.Lo) }

// LogNormal is a log-normal distribution parameterised by the mean and
// standard deviation of the underlying normal.
type LogNormal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (l LogNormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// UnitLogNormal returns a log-normal jitter distribution with mean exactly 1
// and the given shape parameter sigma. Multiplying service times by samples
// of this distribution injects load-imbalance noise without changing the
// mean service rate.
func UnitLogNormal(sigma float64) LogNormal {
	return LogNormal{Mu: -sigma * sigma / 2, Sigma: sigma}
}

// Exponential is an exponential distribution with the given mean.
type Exponential struct{ Mean float64 }

// Sample implements Dist.
func (e Exponential) Sample(r *rand.Rand) float64 { return r.ExpFloat64() * e.Mean }

// Jitter scales duration d by a sample of dist, never returning a negative
// duration.
func Jitter(r *rand.Rand, dist Dist, d Time) Time {
	if dist == nil {
		return d
	}
	f := dist.Sample(r)
	if f < 0 {
		f = 0
	}
	return Time(float64(d) * f)
}
