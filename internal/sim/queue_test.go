package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventQueueMatchesReferenceModel drives the two-tier queue with a
// random push/pop schedule and checks every pop against a reference model:
// a stable sort on (t, seq). The pop order must be a pure function of the
// (time, insertion-sequence) pairs — the property that lets the queue
// implementation change without moving a single golden trace.
func TestEventQueueMatchesReferenceModel(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var q eventQueue
		var model []event
		var seq uint64
		now := Time(0)
		for op := 0; op < 2000; op++ {
			if len(model) == 0 || rng.Intn(3) != 0 {
				// Push at now (the ring path) or in the future (the heap
				// path), with plenty of ties to exercise the seq tie-break.
				dt := Time(rng.Intn(4))
				ev := event{t: now + dt, seq: seq}
				seq++
				q.Push(ev, now)
				model = append(model, ev)
				continue
			}
			sort.SliceStable(model, func(i, j int) bool {
				return eventBefore(&model[i], &model[j])
			})
			want := model[0]
			model = model[1:]
			got := q.Pop()
			if got.t != want.t || got.seq != want.seq {
				t.Fatalf("seed %d op %d: popped (t=%v seq=%d), model says (t=%v seq=%d)",
					seed, op, got.t, got.seq, want.t, want.seq)
			}
			if got.t < now {
				t.Fatalf("seed %d op %d: time ran backwards: %v after %v", seed, op, got.t, now)
			}
			now = got.t
		}
		for len(model) > 0 {
			sort.SliceStable(model, func(i, j int) bool {
				return eventBefore(&model[i], &model[j])
			})
			want := model[0]
			model = model[1:]
			got := q.Pop()
			if got.t != want.t || got.seq != want.seq {
				t.Fatalf("seed %d drain: popped (t=%v seq=%d), model says (t=%v seq=%d)",
					seed, got.t, got.seq, want.t, want.seq)
			}
		}
		if q.Len() != 0 {
			t.Fatalf("seed %d: queue not empty after drain: %d left", seed, q.Len())
		}
	}
}

// TestKernelDispatchOrderIsPureFunctionOfSeedAndSequence runs the same
// randomized timer schedule twice and requires identical callback order:
// event ordering depends only on (seed, insertion sequence), never on
// anything the host contributes. This is the contract every queue rewrite
// must keep — it is what makes golden traces and scale digests stable.
func TestKernelDispatchOrderIsPureFunctionOfSeedAndSequence(t *testing.T) {
	run := func(seed int64) []int {
		k := NewKernel(seed)
		rng := rand.New(rand.NewSource(seed))
		var order []int
		for i := 0; i < 500; i++ {
			i := i
			// Many collisions: only 16 distinct times for 500 timers.
			k.After(Time(rng.Intn(16))*Millisecond, func() {
				order = append(order, i)
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("dispatch counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dispatch order diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Same-time timers must fire in insertion order: within each time
	// bucket the recorded indices ascend.
	rng := rand.New(rand.NewSource(7))
	at := make([]int, 500)
	for i := range at {
		at[i] = rng.Intn(16)
	}
	last := make(map[int]int)
	for _, idx := range a {
		if prev, ok := last[at[idx]]; ok && prev > idx {
			t.Fatalf("timers at t=%dms fired out of insertion order: %d before %d",
				at[idx], prev, idx)
		}
		last[at[idx]] = idx
	}
}

// TestEventQueueSteadyStateZeroAlloc pins the tentpole allocation
// property: once the ring and heap have grown to working size, push/pop
// traffic allocates nothing — unlike container/heap, which boxes every
// event into an interface value on both Push and Pop.
func TestEventQueueSteadyStateZeroAlloc(t *testing.T) {
	var q eventQueue
	var seq uint64
	now := Time(0)
	// Warm up the backing arrays.
	for i := 0; i < 4096; i++ {
		q.Push(event{t: now + Time(i%7), seq: seq}, now)
		seq++
	}
	for q.Len() > 0 {
		now = q.Pop().t
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 256; i++ {
			q.Push(event{t: now + Time(i%5), seq: seq}, now)
			seq++
		}
		for q.Len() > 0 {
			now = q.Pop().t
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkEventQueuePushPop cycles 4096 events — the scale harness's
// station count — through the queue with realistic time spread: a burst of
// same-time events (the ring fast path) plus future timers (the heap).
func BenchmarkEventQueuePushPop(b *testing.B) {
	const n = 4096
	rng := rand.New(rand.NewSource(1))
	dts := make([]Time, n)
	for i := range dts {
		if i%4 == 0 {
			dts[i] = 0 // 25% at now: the ring path
		} else {
			dts[i] = Time(1 + rng.Intn(1<<16))
		}
	}
	var q eventQueue
	var seq uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := Time(0)
		for j := 0; j < n; j++ {
			q.Push(event{t: now + dts[j], seq: seq}, now)
			seq++
		}
		for q.Len() > 0 {
			now = q.Pop().t
		}
	}
}

// BenchmarkKernelTimerChurn measures the full schedule/dispatch path —
// Push, Pop and callback dispatch through the kernel loop — for batches of
// cancellable timers, the dominant event source on the kilo-rank runs.
func BenchmarkKernelTimerChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel(1)
		k.Spawn("driver", func(p *Proc) {
			for round := 0; round < 64; round++ {
				for j := 0; j < 64; j++ {
					k.After(Time(j%8)*Microsecond, func() {})
				}
				p.Sleep(Millisecond)
			}
		})
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
