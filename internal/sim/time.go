// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel models virtual time as int64 nanoseconds and runs simulation
// processes as cooperatively scheduled goroutines: at any instant exactly one
// process executes, and processes hand control back to the kernel whenever
// they block (Sleep, Park, resource acquisition). Events that fire at the
// same virtual time are ordered by creation sequence, so a run with a given
// seed is bit-for-bit reproducible.
//
// The package also provides the building blocks used by the cluster models
// layered on top of it: FIFO queueing stations (Station), bandwidth pipes
// (Pipe), condition variables (Cond) and seeded random distributions.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration constants for building Time values.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns the time as a floating point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// FromSeconds converts a floating point number of seconds into a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Rate is a transfer rate in bytes per second.
type Rate float64

// Common rates.
const (
	KBps Rate = 1e3
	MBps Rate = 1e6
	GBps Rate = 1e9
)

// DurationFor returns the virtual time needed to move n bytes at rate r.
// A non-positive rate yields zero duration.
func (r Rate) DurationFor(n int64) Time {
	if r <= 0 || n <= 0 {
		return 0
	}
	return Time(float64(n) / float64(r) * 1e9)
}
