package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// event is a scheduled occurrence: either a process wake-up or a kernel
// callback (used to start new processes and for timers).
type event struct {
	t   Time
	seq uint64 // tie-break: FIFO among same-time events
	p   *Proc  // process to resume, or nil
	fn  func() // kernel callback, run inline (must not block)
	tm  *Timer // cancellable-timer handle, or nil
}

// ErrEventBudget is wrapped by the error Run returns when the liveness
// watchdog armed via SetEventBudget trips: the simulation dispatched more
// events than the budget allows, which in a finite workload means a
// livelock (an unbounded retry loop, a ping-pong wake cycle, ...).
var ErrEventBudget = errors.New("sim: event budget exhausted")

// Kernel is a discrete-event simulation engine. The zero value is not usable;
// create kernels with NewKernel.
type Kernel struct {
	now        Time
	seq        uint64
	queue      eventQueue
	rng        *rand.Rand
	nextID     int
	budget     int64 // max events Run may dispatch; 0 = unlimited
	dispatched int64

	live    map[int]*Proc // all spawned, unfinished processes
	yield   chan struct{} // process -> kernel: "I blocked or finished"
	running bool
	err     error

	tracer *trace.Tracer
	ktrack trace.TrackID

	metrics *metrics.Registry
	mEvents *metrics.Counter // kernel events dispatched
	mSpawns *metrics.Counter // processes spawned
	mWakes  *metrics.Counter // explicit wake-ups delivered
}

// NewKernel creates a kernel whose random number stream is seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		rng:   rand.New(rand.NewSource(seed)),
		live:  make(map[int]*Proc),
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// SetTracer attaches an event tracer. Tracing is off (nil) by default; when
// attached, every layer built on this kernel reaches the tracer via Tracer()
// so instrumentation needs no extra plumbing. Attaching a tracer records
// events only — it never schedules work or consumes randomness, so it cannot
// perturb virtual time.
func (k *Kernel) SetTracer(t *trace.Tracer) {
	k.tracer = t
	k.ktrack = t.Track(trace.GroupKernel, "kernel")
}

// Tracer returns the attached tracer, or nil when tracing is disabled.
func (k *Kernel) Tracer() *trace.Tracer { return k.tracer }

// SetMetrics attaches a metrics registry. Metrics are off (nil) by default;
// when attached, every layer built on this kernel reaches the registry via
// Metrics() so instrumentation needs no extra plumbing. Like the tracer,
// the registry records values only — it never schedules work or consumes
// randomness, so it cannot perturb virtual time.
func (k *Kernel) SetMetrics(m *metrics.Registry) {
	k.metrics = m
	k.mEvents = m.Counter("sim_events_total", metrics.L(metrics.KeyLayer, "sim"))
	k.mSpawns = m.Counter("sim_procs_spawned_total", metrics.L(metrics.KeyLayer, "sim"))
	k.mWakes = m.Counter("sim_wakes_total", metrics.L(metrics.KeyLayer, "sim"))
}

// Metrics returns the attached registry, or nil when metrics are disabled.
func (k *Kernel) Metrics() *metrics.Registry { return k.metrics }

// SetEventBudget arms the liveness watchdog: Run aborts with an error
// wrapping ErrEventBudget once more than n events have been dispatched
// over the kernel's lifetime. A finite simulated workload dispatches a
// bounded number of events, so exceeding a generous budget is evidence of
// a livelock rather than a long run. n <= 0 disables the watchdog (the
// default). The abort leaves still-parked processes behind; the kernel is
// not reusable afterwards.
func (k *Kernel) SetEventBudget(n int64) { k.budget = n }

// EventsDispatched returns how many events Run has dispatched so far.
func (k *Kernel) EventsDispatched() int64 { return k.dispatched }

// Rand returns the kernel's deterministic random number generator. It must
// only be used from simulation processes or kernel callbacks (the simulation
// is single-threaded, so no locking is required).
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// schedule inserts an event into the queue.
func (k *Kernel) schedule(ev event) {
	if ev.t < k.now {
		panic(fmt.Sprintf("sim: scheduling event in the past: %v < %v", ev.t, k.now))
	}
	ev.seq = k.seq
	k.seq++
	k.queue.Push(ev, k.now)
}

// After runs fn at time Now()+d in kernel context. fn must not block; it may
// spawn processes or wake parked ones.
func (k *Kernel) After(d Time, fn func()) {
	k.schedule(event{t: k.now + d, fn: fn})
}

// Timer is a cancellable kernel callback armed via AfterTimer. A timer that
// is stopped before its due time is discarded by the run loop *before* it
// can advance virtual time, count against the event budget, or bump the
// event metric — so arming-then-cancelling timers (e.g. retransmit timers
// on an ack'd message) is completely invisible to the golden trace and to
// every determinism oracle.
type Timer struct {
	stopped bool
	fired   bool
}

// Stop cancels the timer. It reports whether the cancellation landed before
// the callback fired; stopping an already-fired (or already-stopped) timer
// is a harmless no-op returning false (respectively true).
func (t *Timer) Stop() bool {
	if t.fired {
		return false
	}
	t.stopped = true
	return true
}

// Fired reports whether the timer's callback has run.
func (t *Timer) Fired() bool { return t.fired }

// AfterTimer schedules fn like After but returns a handle that can cancel
// the callback before it fires. fn must not block.
func (k *Kernel) AfterTimer(d Time, fn func()) *Timer {
	tm := &Timer{}
	k.schedule(event{t: k.now + d, tm: tm, fn: func() {
		tm.fired = true
		fn()
	}})
	return tm
}

// Spawn creates a new simulation process that begins executing fn at the
// current virtual time (or, when called before Run, at time zero).
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, nil, fn)
}

// SpawnLazy is Spawn for hot paths that create many short-lived processes
// (one per simulated message): the name is computed only when actually
// observed — a deadlock report, a panic, an explicit Name() call — so the
// fast path never pays for formatting it.
func (k *Kernel) SpawnLazy(nameFn func() string, fn func(p *Proc)) *Proc {
	return k.spawn("", nameFn, fn)
}

func (k *Kernel) spawn(name string, nameFn func() string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		nameFn: nameFn,
		id:     k.nextID,
		resume: make(chan struct{}),
		ttk:    trace.NoTrack,
	}
	k.nextID++
	k.live[p.id] = p
	k.mSpawns.Inc()
	k.tracer.Counter(k.ktrack, "live_procs", int64(k.now), int64(len(k.live)))
	k.schedule(event{t: k.now, fn: func() { k.start(p, fn) }})
	return p
}

// start launches the process goroutine and immediately transfers control to
// it. Called from kernel context.
func (k *Kernel) start(p *Proc, fn func(p *Proc)) {
	go func() {
		<-p.resume // wait for the kernel to hand over control
		defer func() {
			if r := recover(); r != nil {
				p.panicked = r
			}
			p.done = true
			delete(k.live, p.id)
			k.tracer.Counter(k.ktrack, "live_procs", int64(k.now), int64(len(k.live)))
			k.yield <- struct{}{}
		}()
		fn(p)
	}()
	k.transferTo(p)
}

// transferTo resumes p and waits until it blocks or finishes.
func (k *Kernel) transferTo(p *Proc) {
	p.resume <- struct{}{}
	<-k.yield
	if p.panicked != nil {
		panic(fmt.Sprintf("sim: process %q panicked: %v", p.Name(), p.panicked))
	}
}

// Run executes events until the queue drains. It returns an error if, when
// the queue is empty, some processes are still parked (a deadlock in the
// simulated system), identifying the stuck processes.
func (k *Kernel) Run() error {
	if k.running {
		return fmt.Errorf("sim: kernel already running")
	}
	k.running = true
	defer func() { k.running = false }()
	for k.queue.Len() > 0 {
		if k.budget > 0 && k.dispatched >= k.budget {
			k.err = fmt.Errorf("%w: %d events dispatched at t=%v (livelock?)",
				ErrEventBudget, k.dispatched, k.now)
			return k.err
		}
		ev := k.queue.Pop()
		if ev.tm != nil && ev.tm.stopped {
			continue // cancelled timer: dropped before it can touch k.now
		}
		k.now = ev.t
		k.dispatched++
		k.mEvents.Inc()
		switch {
		case ev.fn != nil:
			ev.fn()
		case ev.p != nil:
			if ev.p.done {
				continue // stale wake for a finished process
			}
			k.transferTo(ev.p)
		}
	}
	if len(k.live) > 0 {
		names := make([]string, 0, len(k.live))
		for _, p := range k.live {
			names = append(names, p.Name())
		}
		sort.Strings(names)
		k.err = fmt.Errorf("sim: deadlock at t=%v: %d process(es) still blocked: %v", k.now, len(names), names)
		return k.err
	}
	return nil
}

// Proc is a simulation process: a goroutine that the kernel schedules in
// virtual time. All Proc methods must be called from the process's own
// goroutine.
type Proc struct {
	k        *Kernel
	name     string
	nameFn   func() string // lazy name, resolved on first Name() call
	id       int
	resume   chan struct{}
	done     bool
	panicked interface{}
	ttk      trace.TrackID
}

// Name returns the process name given at Spawn, resolving a SpawnLazy
// name on first use.
func (p *Proc) Name() string {
	if p.name == "" && p.nameFn != nil {
		p.name = p.nameFn()
		p.nameFn = nil
	}
	return p.name
}

// ID returns the process's unique id within its kernel.
func (p *Proc) ID() int { return p.id }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// SetTraceTrack assigns the trace timeline that this process's blocked
// intervals are recorded on. Processes without a track (the default) record
// nothing.
func (p *Proc) SetTraceTrack(tk trace.TrackID) { p.ttk = tk }

// TraceTrack returns the process's trace timeline, or trace.NoTrack.
func (p *Proc) TraceTrack() trace.TrackID { return p.ttk }

// block transfers control back to the kernel and waits to be resumed. When
// the process carries a trace track, the blocked interval is recorded as a
// span (zero-length blocks — pure scheduling yields — are skipped).
func (p *Proc) block() {
	if tr := p.k.tracer; tr != nil && p.ttk >= 0 {
		start := p.k.now
		p.k.yield <- struct{}{}
		<-p.resume
		if p.k.now > start {
			tr.SpanAt(p.ttk, "sim", "blocked", int64(start), int64(p.k.now))
		}
		return
	}
	p.k.yield <- struct{}{}
	<-p.resume
}

// Sleep advances the process by d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	if d == 0 {
		// Still yield, so that same-time events scheduled earlier run first.
		p.k.schedule(event{t: p.k.now, p: p})
		p.block()
		return
	}
	p.k.schedule(event{t: p.k.now + d, p: p})
	p.block()
}

// Park blocks the process until another process (or a kernel callback) wakes
// it via Kernel.Wake. Each Park must be matched by exactly one Wake.
func (p *Proc) Park() {
	p.block()
}

// Wake schedules p to resume at the current virtual time. It must only be
// called for a process that is currently parked (or about to park at the
// same instant: wake events for same-time parks are delivered in order).
func (k *Kernel) Wake(p *Proc) {
	k.mWakes.Inc()
	k.schedule(event{t: k.now, p: p})
}

// WakeAt schedules p to resume at time t >= Now().
func (k *Kernel) WakeAt(t Time, p *Proc) {
	k.schedule(event{t: t, p: p})
}
