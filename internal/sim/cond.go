package sim

// Cond is a condition variable in virtual time. Because the simulation is
// single-threaded there is no associated lock: a process checks its
// predicate, calls Wait if it does not hold, and re-checks after waking.
type Cond struct {
	k       *Kernel
	waiters []*Proc
}

// NewCond creates a condition variable on kernel k.
func NewCond(k *Kernel) *Cond { return &Cond{k: k} }

// Wait parks p until a Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.Park()
}

// Signal wakes the longest-waiting process, if any, and reports whether a
// process was woken.
func (c *Cond) Signal() bool {
	if len(c.waiters) == 0 {
		return false
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.k.Wake(p)
	return true
}

// Broadcast wakes every waiting process in FIFO order.
func (c *Cond) Broadcast() {
	for _, p := range c.waiters {
		c.k.Wake(p)
	}
	c.waiters = nil
}

// Waiting returns the number of parked processes.
func (c *Cond) Waiting() int { return len(c.waiters) }
