package sim

import (
	"math"
	"math/rand"
	"testing"
)

// sampleMean draws n samples of dist and returns their mean.
func sampleMean(dist Dist, seed int64, n int) float64 {
	r := rand.New(rand.NewSource(seed))
	var sum float64
	for i := 0; i < n; i++ {
		sum += dist.Sample(r)
	}
	return sum / float64(n)
}

func TestConstantAlwaysYieldsValue(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if got := Constant(2.5).Sample(r); got != 2.5 {
			t.Fatalf("Constant(2.5).Sample = %v", got)
		}
	}
}

func TestUniformStaysInRange(t *testing.T) {
	u := Uniform{Lo: 3, Hi: 7}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		v := u.Sample(r)
		if v < 3 || v >= 7 {
			t.Fatalf("Uniform{3,7}.Sample = %v out of [3,7)", v)
		}
	}
	if m := sampleMean(u, 2, 10000); math.Abs(m-5) > 0.1 {
		t.Fatalf("Uniform{3,7} mean = %v, want ~5", m)
	}
}

func TestUnitLogNormalHasUnitMean(t *testing.T) {
	for _, sigma := range []float64{0.1, 0.25, 0.5} {
		d := UnitLogNormal(sigma)
		if m := sampleMean(d, 3, 200000); math.Abs(m-1) > 0.02 {
			t.Fatalf("UnitLogNormal(%v) mean = %v, want ~1", sigma, m)
		}
		r := rand.New(rand.NewSource(4))
		for i := 0; i < 1000; i++ {
			if v := d.Sample(r); v <= 0 {
				t.Fatalf("UnitLogNormal(%v).Sample = %v, want > 0", sigma, v)
			}
		}
	}
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{Mean: 4}
	if m := sampleMean(d, 5, 200000); math.Abs(m-4) > 0.1 {
		t.Fatalf("Exponential{4} mean = %v, want ~4", m)
	}
}

func TestJitter(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	if got := Jitter(r, nil, Second); got != Second {
		t.Fatalf("Jitter(nil dist) = %v, want %v (identity)", got, Second)
	}
	if got := Jitter(r, Constant(2), Second); got != 2*Second {
		t.Fatalf("Jitter(Constant(2)) = %v, want %v", got, 2*Second)
	}
	// Negative samples clamp to zero rather than sending time backwards.
	if got := Jitter(r, Constant(-3), Second); got != 0 {
		t.Fatalf("Jitter(Constant(-3)) = %v, want 0", got)
	}
}

// TestJitterIsDeterministicPerSeed pins the property the scale digests
// rest on: every jitter draw is a pure function of the seeded stream.
func TestJitterIsDeterministicPerSeed(t *testing.T) {
	draw := func() []Time {
		r := rand.New(rand.NewSource(7))
		d := UnitLogNormal(0.45)
		out := make([]Time, 64)
		for i := range out {
			out[i] = Jitter(r, d, Millisecond)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}
