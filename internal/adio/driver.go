package adio

import (
	"fmt"
	"strings"

	"repro/internal/extent"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/store"
)

// Driver is an ADIO file-system driver. A driver produces per-rank backend
// handles and defines the file-domain partitioning strategy best suited to
// the file system's locking/striping protocol.
type Driver interface {
	// Name identifies the driver ("ufs", "beegfs").
	Name() string
	// Open opens (optionally creating) path for the calling rank.
	Open(r *mpi.Rank, path string, create bool, h *Hints) (DriverFile, error)
	// Unlink removes the file.
	Unlink(r *mpi.Rank, path string) error
	// FileDomains partitions the aggregate access range [min, max] (inclusive
	// offsets, as in ROMIO) into naggs contiguous file domains.
	FileDomains(min, max int64, naggs int, h *Hints) []extent.Extent
}

// DriverFile is one rank's open backend file.
type DriverFile interface {
	// WriteContig writes size contiguous bytes at off (ADIO_WriteContig).
	WriteContig(p *sim.Proc, data []byte, off, size int64) error
	// ReadContig reads into buf (or size bytes metadata-only when buf nil).
	ReadContig(p *sim.Proc, buf []byte, off, size int64) error
	// Flush pushes dirty state to stable storage.
	Flush(p *sim.Proc)
	// Close releases the handle.
	Close(p *sim.Proc)
	// Size returns the file size as seen by this rank.
	Size() int64
	// Resize truncates or extends the file (MPI_File_set_size).
	Resize(p *sim.Proc, size int64)
}

// genFileDomains is ROMIO's generic equal partitioning
// (ADIOI_Calc_file_domains): the accessed byte range is divided evenly with
// the remainder spread one byte at a time over the leading domains.
func genFileDomains(min, max int64, naggs int) []extent.Extent {
	total := max - min + 1
	if total <= 0 || naggs <= 0 {
		return nil
	}
	if int64(naggs) > total {
		naggs = int(total)
	}
	base := total / int64(naggs)
	rem := total % int64(naggs)
	out := make([]extent.Extent, 0, naggs)
	off := min
	for i := 0; i < naggs; i++ {
		l := base
		if int64(i) < rem {
			l++
		}
		out = append(out, extent.Extent{Off: off, Len: l})
		off += l
	}
	return out
}

// alignedFileDomains aligns domain boundaries to multiples of unit
// (stripe-aligned partitioning, as in the Lustre ADIO driver and the BeeGFS
// driver developed in the course of the paper — footnote 1). Every domain
// gets a whole number of stripes; the first domains take the remainder.
func alignedFileDomains(min, max int64, naggs int, unit int64) []extent.Extent {
	if unit <= 0 {
		return genFileDomains(min, max, naggs)
	}
	start := min / unit * unit
	end := (max + unit) / unit * unit // exclusive, stripe-aligned
	stripes := (end - start) / unit
	if stripes <= 0 || naggs <= 0 {
		return nil
	}
	if int64(naggs) > stripes {
		naggs = int(stripes)
	}
	base := stripes / int64(naggs)
	rem := stripes % int64(naggs)
	out := make([]extent.Extent, 0, naggs)
	off := start
	for i := 0; i < naggs; i++ {
		s := base
		if int64(i) < rem {
			s++
		}
		e := extent.Extent{Off: off, Len: s * unit}
		off += s * unit
		// Clamp the first and last domains to the accessed range.
		if e.Off < min {
			e.Len -= min - e.Off
			e.Off = min
		}
		if e.End() > max+1 {
			e.Len = max + 1 - e.Off
		}
		out = append(out, e)
	}
	return out
}

// UFSDriver is the generic Unix-file-system driver backed by the global
// parallel file system model; it uses ROMIO's generic even file-domain
// partitioning.
type UFSDriver struct {
	name    string
	clients func(node int) *pfs.Client
	aligned bool // stripe-align file domains (BeeGFS/Lustre behaviour)
}

// NewUFSDriver creates the generic driver. clients maps a node id to that
// node's file-system client.
func NewUFSDriver(clients func(node int) *pfs.Client) *UFSDriver {
	return &UFSDriver{name: "ufs", clients: clients}
}

// NewBeeGFSDriver creates the stripe-aligned driver the paper's authors
// wrote for BeeGFS (footnote 1): identical data path, but file domains are
// aligned to stripe boundaries to avoid stripe collisions between
// aggregators.
func NewBeeGFSDriver(clients func(node int) *pfs.Client) *UFSDriver {
	return &UFSDriver{name: "beegfs", clients: clients, aligned: true}
}

// Name implements Driver.
func (d *UFSDriver) Name() string { return d.name }

// Open implements Driver.
func (d *UFSDriver) Open(r *mpi.Rank, path string, create bool, h *Hints) (DriverFile, error) {
	c := d.clients(r.Node().ID())
	if c == nil {
		return nil, fmt.Errorf("adio: node %d has no file-system client", r.Node().ID())
	}
	striping := pfs.Striping{}
	if h != nil {
		striping.StripeCount = h.StripingFactor
		striping.StripeSize = h.StripingUnit
	}
	ph, err := c.Open(r.Proc(), path, create, striping)
	if err != nil {
		return nil, err
	}
	return &ufsFile{h: ph, rank: r}, nil
}

// Unlink implements Driver.
func (d *UFSDriver) Unlink(r *mpi.Rank, path string) error {
	return d.clients(r.Node().ID()).Unlink(r.Proc(), path)
}

// FileDomains implements Driver.
func (d *UFSDriver) FileDomains(min, max int64, naggs int, h *Hints) []extent.Extent {
	if d.aligned {
		unit := int64(0)
		if h != nil {
			unit = h.StripingUnit
		}
		if unit <= 0 {
			unit = 4 << 20
		}
		return alignedFileDomains(min, max, naggs, unit)
	}
	return genFileDomains(min, max, naggs)
}

type ufsFile struct {
	h    *pfs.Handle
	rank *mpi.Rank
}

func (f *ufsFile) WriteContig(p *sim.Proc, data []byte, off, size int64) error {
	return f.h.WriteAt(p, data, off, size)
}

func (f *ufsFile) ReadContig(p *sim.Proc, buf []byte, off, size int64) error {
	return f.h.ReadAt(p, buf, off, size)
}

func (f *ufsFile) Flush(p *sim.Proc) { f.h.Sync(p) }
func (f *ufsFile) Close(p *sim.Proc) { f.h.Close(p) }
func (f *ufsFile) Size() int64       { return f.h.Meta().Size() }

// PayloadBacked reports whether the global file holds real bytes; the cache
// layer's crash recovery only read-back-verifies replayed extents when it
// does.
func (f *ufsFile) PayloadBacked() bool {
	_, ok := f.h.Meta().Store().(store.PayloadBacked)
	return ok
}

func (f *ufsFile) Resize(p *sim.Proc, size int64) { f.h.Truncate(p, size) }

// Registry maps path prefixes to drivers, like ROMIO's file-system type
// resolution ("ufs:", "beegfs:", "pvfs2:" prefixes).
type Registry struct {
	mounts map[string]Driver
	def    Driver
}

// NewRegistry creates a registry with def as the prefix-less default.
func NewRegistry(def Driver) *Registry {
	return &Registry{mounts: make(map[string]Driver), def: def}
}

// Mount registers a driver for paths of the form "prefix:rest".
func (g *Registry) Mount(prefix string, d Driver) { g.mounts[prefix] = d }

// Resolve returns the driver for path and the path with its prefix removed.
func (g *Registry) Resolve(path string) (Driver, string, error) {
	if i := strings.Index(path, ":"); i > 0 {
		prefix, rest := path[:i], path[i+1:]
		if d, ok := g.mounts[prefix]; ok {
			return d, rest, nil
		}
		return nil, "", fmt.Errorf("adio: no driver mounted for prefix %q", prefix)
	}
	if g.def == nil {
		return nil, "", fmt.Errorf("adio: no default driver for path %q", path)
	}
	return g.def, path, nil
}
