// Package adio re-implements the ADIO layer of ROMIO: file-system drivers,
// collective open, the extended two-phase collective write algorithm
// (ADIOI_GEN_WriteStridedColl / ADIOI_Exch_and_write), independent I/O with
// data sieving, and the MPI-IO hint machinery of Table I of the paper.
//
// The persistent-cache extension of the paper (Table II) plugs in through
// the Hooks interface, implemented by package core; adio itself stays
// cache-agnostic, mirroring how the authors' patches hook ADIOI_GEN_*
// routines in the UFS driver.
package adio

import (
	"fmt"
	"strconv"

	"repro/internal/mpi"
)

// Hint keys from Table I of the paper (standard ROMIO collective hints)
// plus the striping hints discussed in §II-B.
const (
	HintCBWrite         = "romio_cb_write"
	HintCBRead          = "romio_cb_read"
	HintCBBufferSize    = "cb_buffer_size"
	HintCBNodes         = "cb_nodes"
	HintIndWrBufferSize = "ind_wr_buffer_size"
	HintIndRdBufferSize = "ind_rd_buffer_size"
	HintStripingFactor  = "striping_factor"
	HintStripingUnit    = "striping_unit"
	// HintCBConfigList is ROMIO's aggregator-placement hint, supported in
	// the simplified "*:N" form: at most N aggregator ranks per node,
	// filling nodes in order. Unset (or "*:1"-like spreading) matches
	// ROMIO's default of distributing aggregators across nodes.
	HintCBConfigList = "cb_config_list"
)

// Tri-state hint values.
const (
	HintEnable    = "enable"
	HintDisable   = "disable"
	HintAutomatic = "automatic"
)

// Defaults mirroring ROMIO's.
const (
	DefaultCBBufferSize    = 16 << 20  // 16 MB
	DefaultIndWrBufferSize = 512 << 10 // 512 KB, "the standard independent I/O buffer size"
	DefaultIndRdBufferSize = 4 << 20   // 4 MB, ROMIO's read-sieving buffer default
)

// Hints is the parsed, normalized hint set attached to an open file.
type Hints struct {
	CBWrite         string // enable | disable | automatic
	CBRead          string
	CBNodes         int   // number of aggregator processes
	CBBufferSize    int64 // collective buffer size in bytes
	IndWrBufferSize int64 // independent-write / cache-sync buffer size
	IndRdBufferSize int64 // read data-sieving buffer size
	StripingFactor  int   // stripe count for file creation
	StripingUnit    int64 // stripe size for file creation
	CBPerNode       int   // cb_config_list "*:N": aggregators per node (0 = spread)

	// Extra carries hints not interpreted by this layer (e.g. the e10_*
	// cache hints of Table II, consumed by package core).
	Extra mpi.Info
}

// ParseHints normalizes an MPI_Info object against ROMIO defaults.
// commSize bounds cb_nodes. Unknown keys are preserved in Extra, matching
// MPI's requirement that unrecognized hints be ignored, not rejected.
func ParseHints(info mpi.Info, commSize int) (*Hints, error) {
	h := &Hints{
		CBWrite:         HintAutomatic,
		CBRead:          HintAutomatic,
		CBNodes:         commSize,
		CBBufferSize:    DefaultCBBufferSize,
		IndWrBufferSize: DefaultIndWrBufferSize,
		IndRdBufferSize: DefaultIndRdBufferSize,
		Extra:           mpi.Info{},
	}
	for k, v := range info {
		switch k {
		case HintCBWrite:
			if err := validTri(k, v); err != nil {
				return nil, err
			}
			h.CBWrite = v
		case HintCBRead:
			if err := validTri(k, v); err != nil {
				return nil, err
			}
			h.CBRead = v
		case HintCBNodes:
			n, err := parsePositiveInt(k, v)
			if err != nil {
				return nil, err
			}
			if n > commSize {
				n = commSize
			}
			h.CBNodes = n
		case HintCBBufferSize:
			n, err := parsePositiveInt(k, v)
			if err != nil {
				return nil, err
			}
			h.CBBufferSize = int64(n)
		case HintIndWrBufferSize:
			n, err := parsePositiveInt(k, v)
			if err != nil {
				return nil, err
			}
			h.IndWrBufferSize = int64(n)
		case HintIndRdBufferSize:
			n, err := parsePositiveInt(k, v)
			if err != nil {
				return nil, err
			}
			h.IndRdBufferSize = int64(n)
		case HintStripingFactor:
			n, err := parsePositiveInt(k, v)
			if err != nil {
				return nil, err
			}
			h.StripingFactor = n
		case HintStripingUnit:
			n, err := parsePositiveInt(k, v)
			if err != nil {
				return nil, err
			}
			h.StripingUnit = int64(n)
		case HintCBConfigList:
			var n int
			if _, err := fmt.Sscanf(v, "*:%d", &n); err != nil || n <= 0 {
				return nil, fmt.Errorf("adio: hint %s: unsupported value %q (want \"*:N\")", k, v)
			}
			h.CBPerNode = n
		default:
			h.Extra[k] = v
		}
	}
	return h, nil
}

// Echo renders the normalized hints as an Info object, the way
// MPI_File_get_info reports back what the implementation is using.
func (h *Hints) Echo() mpi.Info {
	out := mpi.Info{
		HintCBWrite:         h.CBWrite,
		HintCBRead:          h.CBRead,
		HintCBNodes:         strconv.Itoa(h.CBNodes),
		HintCBBufferSize:    strconv.FormatInt(h.CBBufferSize, 10),
		HintIndWrBufferSize: strconv.FormatInt(h.IndWrBufferSize, 10),
		HintIndRdBufferSize: strconv.FormatInt(h.IndRdBufferSize, 10),
	}
	if h.StripingFactor > 0 {
		out[HintStripingFactor] = strconv.Itoa(h.StripingFactor)
	}
	if h.StripingUnit > 0 {
		out[HintStripingUnit] = strconv.FormatInt(h.StripingUnit, 10)
	}
	if h.CBPerNode > 0 {
		out[HintCBConfigList] = fmt.Sprintf("*:%d", h.CBPerNode)
	}
	for k, v := range h.Extra {
		out[k] = v
	}
	return out
}

func validTri(key, v string) error {
	switch v {
	case HintEnable, HintDisable, HintAutomatic:
		return nil
	}
	return fmt.Errorf("adio: hint %s: invalid value %q", key, v)
}

func parsePositiveInt(key, v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("adio: hint %s: invalid value %q", key, v)
	}
	return n, nil
}
