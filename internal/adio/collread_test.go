package adio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/extent"
	"repro/internal/mpi"
	"repro/internal/store"
)

// TestCollectiveReadRoundTrip writes an interleaved pattern collectively,
// then reads it back collectively and checks every byte.
func TestCollectiveReadRoundTrip(t *testing.T) {
	const chunk = 1024
	cl := newCluster(t, 1, 4, 2, store.NewMem)
	nranks := cl.w.Size()
	info := mpi.Info{HintCBWrite: "enable", HintCBRead: "enable",
		HintCBNodes: "2", HintCBBufferSize: "4096"}
	err := cl.w.Run(func(r *mpi.Rank) {
		f, err := OpenColl(r, OpenArgs{Comm: cl.w.Comm(), Registry: cl.reg,
			Path: "rt.dat", Create: true, Info: info})
		if err != nil {
			t.Error(err)
			return
		}
		var segs []extent.Extent
		var data []byte
		for i := 0; i < 3; i++ {
			off := int64(i*nranks*chunk + r.ID()*chunk)
			segs = append(segs, extent.Extent{Off: off, Len: chunk})
			for b := 0; b < chunk; b++ {
				data = append(data, byte(r.ID()*37+i*5+b%199))
			}
		}
		if err := f.WriteStridedColl(segs, data); err != nil {
			t.Error(err)
		}
		got := make([]byte, len(data))
		if err := f.ReadStridedColl(segs, got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("rank %d: collective read mismatch", r.ID())
		}
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveReadMatchesIndependent reads the same random pattern both
// ways and requires identical bytes.
func TestCollectiveReadMatchesIndependent(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nranks := rng.Intn(3) + 2
		cl := newCluster(t, seed, nranks, 1, store.NewMem)

		// Prepare a file with known content via rank 0.
		fileLen := int64(rng.Intn(30000) + 10000)
		content := make([]byte, fileLen)
		rng.Read(content)

		// Random per-rank read patterns (possibly overlapping, reads may
		// overlap freely).
		type pat struct {
			segs []extent.Extent
		}
		pats := make([]pat, nranks)
		for i := range pats {
			off := int64(rng.Intn(1000))
			for off < fileLen-1 {
				l := int64(rng.Intn(2000) + 1)
				if off+l > fileLen {
					l = fileLen - off
				}
				pats[i].segs = append(pats[i].segs, extent.Extent{Off: off, Len: l})
				off += l + int64(rng.Intn(3000))
			}
		}
		ok := true
		err := cl.w.Run(func(r *mpi.Rank) {
			f, err := OpenColl(r, OpenArgs{Comm: cl.w.Comm(), Registry: cl.reg,
				Path: "f", Create: true,
				Info: mpi.Info{HintCBRead: "enable", HintCBNodes: "2", HintCBBufferSize: "2048"}})
			if err != nil {
				t.Error(err)
				return
			}
			if cl.w.Comm().RankOf(r) == 0 {
				if err := f.WriteContig(content, 0, fileLen); err != nil {
					t.Error(err)
				}
			}
			cl.w.Comm().Barrier(r)
			segs := pats[r.ID()].segs
			var total int64
			for _, s := range segs {
				total += s.Len
			}
			collBuf := make([]byte, total)
			indBuf := make([]byte, total)
			if err := f.ReadStridedColl(segs, collBuf); err != nil {
				t.Error(err)
				return
			}
			if err := f.ReadStrided(segs, indBuf); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(collBuf, indBuf) {
				ok = false
			}
			_ = f.Close()
		})
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveReadNonInterleavedFallsBack(t *testing.T) {
	cl := newCluster(t, 1, 2, 1, store.NewMem)
	err := cl.w.Run(func(r *mpi.Rank) {
		f, _ := OpenColl(r, OpenArgs{Comm: cl.w.Comm(), Registry: cl.reg, Path: "f", Create: true})
		if cl.w.Comm().RankOf(r) == 0 {
			if err := f.WriteContig(bytes.Repeat([]byte{9}, 4096), 0, 4096); err != nil {
				t.Error(err)
			}
		}
		cl.w.Comm().Barrier(r)
		// Disjoint ordered reads: the automatic check picks independent.
		seg := []extent.Extent{{Off: int64(r.ID()) * 2048, Len: 1024}}
		buf := make([]byte, 1024)
		if err := f.ReadStridedColl(seg, buf); err != nil {
			t.Error(err)
		}
		if r.ID() == 0 && buf[0] != 9 {
			t.Error("read returned wrong data")
		}
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveReadZeroRanks(t *testing.T) {
	// Ranks with no read requests must still participate and return.
	cl := newCluster(t, 1, 2, 2, store.NewMem)
	err := cl.w.Run(func(r *mpi.Rank) {
		f, _ := OpenColl(r, OpenArgs{Comm: cl.w.Comm(), Registry: cl.reg, Path: "f", Create: true,
			Info: mpi.Info{HintCBRead: "enable"}})
		if cl.w.Comm().RankOf(r) == 0 {
			if err := f.WriteContig(nil, 0, 1<<20); err != nil {
				t.Error(err)
			}
		}
		cl.w.Comm().Barrier(r)
		var segs []extent.Extent
		if r.ID()%2 == 0 {
			segs = []extent.Extent{{Off: int64(r.ID()) * 256, Len: 256},
				{Off: 4096 + int64(r.ID())*256, Len: 256}}
		}
		if err := f.ReadStridedColl(segs, nil); err != nil {
			t.Error(err)
		}
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveReadRecordsPhases(t *testing.T) {
	cl := newCluster(t, 1, 2, 2, store.NewMem)
	err := cl.w.Run(func(r *mpi.Rank) {
		f, _ := OpenColl(r, OpenArgs{Comm: cl.w.Comm(), Registry: cl.reg, Path: "f", Create: true,
			Info: mpi.Info{HintCBRead: "enable", HintCBNodes: "2"}})
		if cl.w.Comm().RankOf(r) == 0 {
			if err := f.WriteContig(nil, 0, 1<<20); err != nil {
				t.Error(err)
			}
		}
		cl.w.Comm().Barrier(r)
		segs := []extent.Extent{{Off: int64(r.ID()) * 256, Len: 256},
			{Off: 4096 + int64(r.ID())*256, Len: 256}}
		if err := f.ReadStridedColl(segs, nil); err != nil {
			t.Error(err)
		}
		log := f.Log()
		if log.Total("shuffle_all2all") <= 0 || log.Total("post_write") <= 0 {
			t.Errorf("rank %d missing collective-read phases", r.ID())
		}
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBeeGFSDriverEndToEndContent(t *testing.T) {
	// The stripe-aligned driver must produce byte-identical results to the
	// generic one for an interleaved collective write.
	cl := newCluster(t, 3, 4, 2, store.NewMem)
	const chunk = 1500 // deliberately unaligned to the stripe unit
	nranks := cl.w.Size()
	err := cl.w.Run(func(r *mpi.Rank) {
		f, err := OpenColl(r, OpenArgs{Comm: cl.w.Comm(), Registry: cl.reg,
			Path: "beegfs:aligned.dat", Create: true,
			Info: mpi.Info{HintCBWrite: "enable", HintCBNodes: "3",
				HintStripingUnit: "4096", HintCBBufferSize: "8192"}})
		if err != nil {
			t.Error(err)
			return
		}
		var segs []extent.Extent
		var data []byte
		for i := 0; i < 3; i++ {
			off := int64(i*nranks*chunk + r.ID()*chunk)
			segs = append(segs, extent.Extent{Off: off, Len: chunk})
			for b := 0; b < chunk; b++ {
				data = append(data, byte((r.ID()*13+i*7+b)%251))
			}
		}
		if err := f.WriteStridedColl(segs, data); err != nil {
			t.Error(err)
		}
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	meta := cl.fs.Lookup("aligned.dat")
	got := make([]byte, meta.Size())
	meta.Store().ReadAt(got, 0)
	for rank := 0; rank < nranks; rank++ {
		for i := 0; i < 3; i++ {
			base := i*nranks*chunk + rank*chunk
			for b := 0; b < chunk; b++ {
				if want := byte((rank*13 + i*7 + b) % 251); got[base+b] != want {
					t.Fatalf("byte %d = %d, want %d", base+b, got[base+b], want)
				}
			}
		}
	}
}
