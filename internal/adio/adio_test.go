package adio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/extent"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/store"
)

// cluster bundles a small simulated machine for adio tests.
type cluster struct {
	k   *sim.Kernel
	fs  *pfs.System
	w   *mpi.World
	reg *Registry
}

func newCluster(t *testing.T, seed int64, nodes, perNode int, factory store.Factory) *cluster {
	t.Helper()
	k := sim.NewKernel(seed)
	fab := netsim.New(k, netsim.Config{
		Nodes: nodes, InjRate: 3 * sim.GBps, EjeRate: 3 * sim.GBps,
		Latency: 2 * sim.Microsecond, MemRate: 6 * sim.GBps,
	})
	cfg := pfs.DefaultConfig()
	cfg.TargetJitter = nil // deterministic content tests
	fs := pfs.New(k, cfg, factory)
	w := mpi.NewWorld(k, fab, perNode)
	clients := make([]*pfs.Client, nodes)
	for i := 0; i < nodes; i++ {
		clients[i] = fs.NewClient(fab.Node(i))
	}
	drv := NewUFSDriver(func(n int) *pfs.Client { return clients[n] })
	reg := NewRegistry(drv)
	reg.Mount("beegfs", NewBeeGFSDriver(func(n int) *pfs.Client { return clients[n] }))
	return &cluster{k: k, fs: fs, w: w, reg: reg}
}

func TestParseHintsDefaults(t *testing.T) {
	h, err := ParseHints(nil, 512)
	if err != nil {
		t.Fatal(err)
	}
	if h.CBWrite != HintAutomatic || h.CBNodes != 512 ||
		h.CBBufferSize != DefaultCBBufferSize || h.IndWrBufferSize != DefaultIndWrBufferSize {
		t.Fatalf("defaults wrong: %+v", h)
	}
}

// TestParseHintsTableI exercises every hint of Table I of the paper.
func TestParseHintsTableI(t *testing.T) {
	info := mpi.Info{
		HintCBWrite:         "enable",
		HintCBRead:          "disable",
		HintCBBufferSize:    "4194304",
		HintCBNodes:         "16",
		HintStripingFactor:  "4",
		HintStripingUnit:    "4194304",
		HintIndWrBufferSize: "524288",
		"e10_cache":         "enable", // unknown here; must pass through
	}
	h, err := ParseHints(info, 512)
	if err != nil {
		t.Fatal(err)
	}
	if h.CBWrite != "enable" || h.CBRead != "disable" || h.CBNodes != 16 ||
		h.CBBufferSize != 4<<20 || h.StripingFactor != 4 || h.StripingUnit != 4<<20 ||
		h.IndWrBufferSize != 512<<10 {
		t.Fatalf("parsed = %+v", h)
	}
	if v, ok := h.Extra.Get("e10_cache"); !ok || v != "enable" {
		t.Fatal("unknown hints must be preserved in Extra")
	}
	echo := h.Echo()
	if echo[HintCBNodes] != "16" || echo["e10_cache"] != "enable" {
		t.Fatalf("echo = %v", echo)
	}
}

func TestParseHintsClampsAndRejects(t *testing.T) {
	h, err := ParseHints(mpi.Info{HintCBNodes: "10000"}, 64)
	if err != nil || h.CBNodes != 64 {
		t.Fatalf("cb_nodes must clamp to comm size: %v %+v", err, h)
	}
	for _, bad := range []mpi.Info{
		{HintCBWrite: "maybe"},
		{HintCBNodes: "-3"},
		{HintCBBufferSize: "zero"},
	} {
		if _, err := ParseHints(bad, 64); err == nil {
			t.Fatalf("expected error for %v", bad)
		}
	}
}

func TestGenFileDomainsPartitionExactly(t *testing.T) {
	f := func(min uint16, length uint16, naggs uint8) bool {
		if length == 0 {
			return true
		}
		lo := int64(min)
		hi := lo + int64(length) - 1
		n := int(naggs%16) + 1
		fds := genFileDomains(lo, hi, n)
		cur := lo
		for _, fd := range fds {
			if fd.Off != cur || fd.Len <= 0 {
				return false
			}
			cur = fd.End()
		}
		return cur == hi+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAlignedFileDomainsRespectStripes(t *testing.T) {
	const unit = 1 << 20
	fds := alignedFileDomains(100, 10<<20-1, 4, unit)
	cur := int64(100)
	for i, fd := range fds {
		if fd.Off != cur {
			t.Fatalf("domain %d starts at %d, want %d", i, fd.Off, cur)
		}
		if i > 0 && fd.Off%unit != 0 {
			t.Fatalf("interior domain %d not stripe aligned: %v", i, fd)
		}
		cur = fd.End()
	}
	if cur != 10<<20 {
		t.Fatalf("domains end at %d", cur)
	}
}

func TestAggregatorRanksSpread(t *testing.T) {
	aggs := aggregatorRanks(512, 64)
	if len(aggs) != 64 || aggs[0] != 0 || aggs[1] != 8 || aggs[63] != 504 {
		t.Fatalf("aggs = %v...", aggs[:4])
	}
	aggs = aggregatorRanks(512, 8)
	if aggs[1] != 64 {
		t.Fatalf("8-agg stride wrong: %v", aggs)
	}
	if n := len(aggregatorRanks(4, 100)); n != 4 {
		t.Fatalf("aggregators must clamp to comm size, got %d", n)
	}
}

// writeColl runs one collective write across the whole world and returns
// the resulting file meta.
func writeColl(t *testing.T, cl *cluster, info mpi.Info, pattern func(rank int) ([]extent.Extent, []byte)) *pfs.FileMeta {
	t.Helper()
	err := cl.w.Run(func(r *mpi.Rank) {
		f, err := OpenColl(r, OpenArgs{
			Comm: cl.w.Comm(), Registry: cl.reg, Path: "out.dat", Create: true, Info: info,
		})
		if err != nil {
			t.Error(err)
			return
		}
		segs, data := pattern(r.ID())
		if err := f.WriteStridedColl(segs, data); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	meta := cl.fs.Lookup("out.dat")
	if meta == nil {
		t.Fatal("file not created")
	}
	return meta
}

func TestCollectiveWriteInterleavedPattern(t *testing.T) {
	// 8 ranks write a block-cyclic pattern: rank r owns bytes
	// [i*8k + r*1k, +1k) for i in 0..3 — heavily interleaved.
	const chunk, cycles = 1024, 4
	cl := newCluster(t, 1, 4, 2, store.NewMem)
	nranks := cl.w.Size()
	meta := writeColl(t, cl, mpi.Info{HintCBNodes: "2", HintCBBufferSize: "4096"},
		func(rank int) ([]extent.Extent, []byte) {
			var segs []extent.Extent
			var data []byte
			for i := 0; i < cycles; i++ {
				off := int64(i*nranks*chunk + rank*chunk)
				segs = append(segs, extent.Extent{Off: off, Len: chunk})
				for b := 0; b < chunk; b++ {
					data = append(data, byte(rank*31+i*7+b))
				}
			}
			return segs, data
		})
	if meta.Size() != int64(cycles*nranks*chunk) {
		t.Fatalf("file size = %d", meta.Size())
	}
	// Verify every byte.
	got := make([]byte, meta.Size())
	meta.Store().ReadAt(got, 0)
	for rank := 0; rank < nranks; rank++ {
		for i := 0; i < cycles; i++ {
			off := i*nranks*chunk + rank*chunk
			for b := 0; b < chunk; b++ {
				want := byte(rank*31 + i*7 + b)
				if got[off+b] != want {
					t.Fatalf("byte %d = %d, want %d", off+b, got[off+b], want)
				}
			}
		}
	}
}

func TestCollectiveWriteRecordsPhases(t *testing.T) {
	cl := newCluster(t, 1, 4, 2, store.NewMem)
	logsSeen := 0
	err := cl.w.Run(func(r *mpi.Rank) {
		f, err := OpenColl(r, OpenArgs{
			Comm: cl.w.Comm(), Registry: cl.reg, Path: "f", Create: true,
			Info: mpi.Info{HintCBNodes: "2", HintCBWrite: "enable"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		seg := []extent.Extent{{Off: int64(r.ID()) * 4096, Len: 4096}}
		if err := f.WriteStridedColl(seg, nil); err != nil {
			t.Error(err)
		}
		log := f.Log()
		if log.Total("shuffle_all2all") <= 0 || log.Total("post_write") <= 0 {
			t.Errorf("rank %d: missing phases: a2a=%v pw=%v", r.ID(),
				log.Total("shuffle_all2all"), log.Total("post_write"))
		}
		if f.IsAggregator() && log.Total("write") <= 0 {
			t.Errorf("aggregator %d recorded no write time", r.ID())
		}
		logsSeen++
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if logsSeen != cl.w.Size() {
		t.Fatalf("only %d ranks ran", logsSeen)
	}
}

func TestNonInterleavedFallsBackToIndependent(t *testing.T) {
	cl := newCluster(t, 1, 2, 2, store.NewMem)
	var indep, coll int64
	err := cl.w.Run(func(r *mpi.Rank) {
		f, err := OpenColl(r, OpenArgs{Comm: cl.w.Comm(), Registry: cl.reg, Path: "f", Create: true})
		if err != nil {
			t.Error(err)
			return
		}
		// Disjoint, ordered blocks: not interleaved.
		seg := []extent.Extent{{Off: int64(r.ID()) * 1 << 20, Len: 1 << 20}}
		if err := f.WriteStridedColl(seg, nil); err != nil {
			t.Error(err)
		}
		indep += f.Stats.IndepWrites
		coll += f.Stats.CollRounds
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if indep == 0 || coll != 0 {
		t.Fatalf("want independent path (indep=%d coll=%d)", indep, coll)
	}
}

func TestCBWriteEnableForcesCollective(t *testing.T) {
	cl := newCluster(t, 1, 2, 2, store.NewMem)
	var coll int64
	err := cl.w.Run(func(r *mpi.Rank) {
		f, _ := OpenColl(r, OpenArgs{Comm: cl.w.Comm(), Registry: cl.reg, Path: "f", Create: true,
			Info: mpi.Info{HintCBWrite: "enable", HintCBNodes: "1"}})
		seg := []extent.Extent{{Off: int64(r.ID()) * 4096, Len: 4096}}
		if err := f.WriteStridedColl(seg, nil); err != nil {
			t.Error(err)
		}
		coll += f.Stats.CollRounds
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if coll == 0 {
		t.Fatal("romio_cb_write=enable must force the collective path")
	}
}

func TestCBWriteDisableForcesIndependent(t *testing.T) {
	cl := newCluster(t, 1, 2, 2, store.NewMem)
	var indep int64
	err := cl.w.Run(func(r *mpi.Rank) {
		f, _ := OpenColl(r, OpenArgs{Comm: cl.w.Comm(), Registry: cl.reg, Path: "f", Create: true,
			Info: mpi.Info{HintCBWrite: "disable"}})
		// Interleaved pattern that would otherwise go collective.
		seg := []extent.Extent{{Off: int64(r.ID()) * 512, Len: 512}, {Off: 8192 + int64(r.ID())*512, Len: 512}}
		if err := f.WriteStridedColl(seg, nil); err != nil {
			t.Error(err)
		}
		indep += f.Stats.IndepWrites
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if indep == 0 {
		t.Fatal("romio_cb_write=disable must force the independent path")
	}
}

func TestMultiRoundUsesCollectiveBufferSize(t *testing.T) {
	cl := newCluster(t, 1, 2, 2, store.NewMem)
	var rounds int64
	err := cl.w.Run(func(r *mpi.Rank) {
		f, _ := OpenColl(r, OpenArgs{Comm: cl.w.Comm(), Registry: cl.reg, Path: "f", Create: true,
			Info: mpi.Info{HintCBWrite: "enable", HintCBNodes: "1", HintCBBufferSize: "1024"}})
		// 16 KB total through a 1 KB collective buffer => 16 rounds.
		seg := []extent.Extent{{Off: int64(r.ID()) * 2048, Len: 2048},
			{Off: 8192 + int64(r.ID())*2048, Len: 2048}}
		if err := f.WriteStridedColl(seg, nil); err != nil {
			t.Error(err)
		}
		if f.IsAggregator() {
			rounds = f.Stats.CollRounds
		}
		if buf := f.Stats.PeakBufBytes; f.IsAggregator() && buf > 1024 {
			t.Errorf("collective buffer exceeded cb_buffer_size: %d", buf)
		}
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 12 {
		t.Fatalf("expected ~16 rounds, got %d", rounds)
	}
}

// The central correctness property: for random interleaved patterns, a
// collective write through the full two-phase machinery produces exactly
// the same bytes as a direct serial write.
func TestCollectiveWriteMatchesSerialProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := rng.Intn(3) + 1
		perNode := rng.Intn(3) + 1
		nranks := nodes * perNode
		// Generate a random non-overlapping interleaved pattern.
		type rankPat struct {
			segs []extent.Extent
			data []byte
		}
		pats := make([]rankPat, nranks)
		ref := store.NewMem()
		off := int64(rng.Intn(1000))
		nPieces := rng.Intn(20) + 5
		for i := 0; i < nPieces; i++ {
			r := rng.Intn(nranks)
			l := int64(rng.Intn(3000) + 1)
			piece := make([]byte, l)
			rng.Read(piece)
			pats[r].segs = append(pats[r].segs, extent.Extent{Off: off, Len: l})
			pats[r].data = append(pats[r].data, piece...)
			ref.WriteAt(piece, off, l)
			off += l + int64(rng.Intn(500))
		}
		cl := newCluster(t, seed, nodes, perNode, store.NewMem)
		info := mpi.Info{
			HintCBWrite:      "enable",
			HintCBNodes:      []string{"1", "2", "4"}[rng.Intn(3)],
			HintCBBufferSize: []string{"512", "4096", "1048576"}[rng.Intn(3)],
		}
		meta := writeColl(t, cl, info, func(rank int) ([]extent.Extent, []byte) {
			return pats[rank].segs, pats[rank].data
		})
		if meta.Size() != ref.Size() {
			t.Logf("size %d != ref %d", meta.Size(), ref.Size())
			return false
		}
		got := make([]byte, meta.Size())
		want := make([]byte, ref.Size())
		meta.Store().ReadAt(got, 0)
		ref.ReadAt(want, 0)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBeeGFSDriverAlignsDomains(t *testing.T) {
	cl := newCluster(t, 1, 2, 1, store.NewMem)
	drv, _, err := cl.reg.Resolve("beegfs:x")
	if err != nil {
		t.Fatal(err)
	}
	h := &Hints{StripingUnit: 1 << 20}
	fds := drv.FileDomains(0, 8<<20-1, 3, h)
	for i, fd := range fds[:len(fds)-1] {
		if fd.End()%(1<<20) != 0 {
			t.Fatalf("domain %d boundary not aligned: %v", i, fd)
		}
	}
}

func TestIndependentSievingOnDensePattern(t *testing.T) {
	cl := newCluster(t, 1, 1, 1, store.NewMem)
	err := cl.w.Run(func(r *mpi.Rank) {
		f, _ := OpenColl(r, OpenArgs{Comm: cl.w.Comm(), Registry: cl.reg, Path: "f", Create: true,
			Info: mpi.Info{HintIndWrBufferSize: "4096"}})
		// Dense hole-y pattern: 100 bytes written, 20-byte holes.
		var segs []extent.Extent
		var data []byte
		for i := 0; i < 50; i++ {
			segs = append(segs, extent.Extent{Off: int64(i * 120), Len: 100})
			for b := 0; b < 100; b++ {
				data = append(data, byte(i+b))
			}
		}
		if err := f.WriteStrided(segs, data); err != nil {
			t.Error(err)
		}
		if f.Stats.SievedWrites == 0 {
			t.Error("dense hole-y pattern should trigger data sieving")
		}
		// Verify content.
		buf := make([]byte, 100)
		f.ReadContig(buf, 120*7, 100)
		for b := range buf {
			if buf[b] != byte(7+b) {
				t.Errorf("sieved byte wrong at %d", b)
				break
			}
		}
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndependentSparsePatternAvoidsSieving(t *testing.T) {
	cl := newCluster(t, 1, 1, 1, store.NewMem)
	err := cl.w.Run(func(r *mpi.Rank) {
		f, _ := OpenColl(r, OpenArgs{Comm: cl.w.Comm(), Registry: cl.reg, Path: "f", Create: true})
		segs := []extent.Extent{{Off: 0, Len: 64}, {Off: 1 << 20, Len: 64}}
		if err := f.WriteStrided(segs, nil); err != nil {
			t.Error(err)
		}
		if f.Stats.SievedWrites != 0 {
			t.Error("sparse pattern must not sieve")
		}
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestValidateSegsRejectsBadInput(t *testing.T) {
	if _, err := validateSegs([]extent.Extent{{Off: 10, Len: 5}, {Off: 0, Len: 5}}); err == nil {
		t.Fatal("unsorted segments must be rejected")
	}
	if _, err := validateSegs([]extent.Extent{{Off: 0, Len: 10}, {Off: 5, Len: 10}}); err == nil {
		t.Fatal("overlapping segments must be rejected")
	}
	if _, err := validateSegs([]extent.Extent{{Off: 0, Len: 0}}); err == nil {
		t.Fatal("empty segments must be rejected")
	}
}

func TestRegistryResolution(t *testing.T) {
	cl := newCluster(t, 1, 1, 1, store.NewMem)
	if _, _, err := cl.reg.Resolve("nfs:file"); err == nil {
		t.Fatal("unknown prefix must fail")
	}
	d, rest, err := cl.reg.Resolve("beegfs:dir/file")
	if err != nil || d.Name() != "beegfs" || rest != "dir/file" {
		t.Fatalf("resolve: %v %v %v", d, rest, err)
	}
	d, rest, err = cl.reg.Resolve("plain")
	if err != nil || d.Name() != "ufs" || rest != "plain" {
		t.Fatalf("default resolve: %v %v %v", d, rest, err)
	}
}

func TestZeroDataRanksParticipate(t *testing.T) {
	// Half the ranks write nothing; collective must still complete and the
	// written half's data must land.
	cl := newCluster(t, 1, 2, 2, store.NewMem)
	meta := writeColl(t, cl, mpi.Info{HintCBWrite: "enable", HintCBNodes: "2"},
		func(rank int) ([]extent.Extent, []byte) {
			if rank%2 == 1 {
				return nil, nil
			}
			// Interleave the two writers.
			return []extent.Extent{{Off: int64(rank) * 256, Len: 256},
				{Off: 2048 + int64(rank)*256, Len: 256}}, nil
		})
	if meta.Store().Written().TotalBytes() != 1024 {
		t.Fatalf("written bytes = %d", meta.Store().Written().TotalBytes())
	}
}

func TestCBConfigListPackedPlacement(t *testing.T) {
	cl := newCluster(t, 1, 4, 4, store.NewMem) // 16 ranks, 4 per node
	err := cl.w.Run(func(r *mpi.Rank) {
		f, err := OpenColl(r, OpenArgs{Comm: cl.w.Comm(), Registry: cl.reg, Path: "f", Create: true,
			Info: mpi.Info{HintCBNodes: "8", HintCBConfigList: "*:4"}})
		if err != nil {
			t.Error(err)
			return
		}
		aggs := f.Aggregators()
		// "*:4" with 8 aggregators packs ranks 0..7 (nodes 0 and 1).
		for i, a := range aggs {
			if a != i {
				t.Errorf("packed aggs = %v", aggs)
				break
			}
		}
		if f.Hints().Echo()[HintCBConfigList] != "*:4" {
			t.Error("cb_config_list must echo back")
		}
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCBConfigListOnePerNodeMatchesSpread(t *testing.T) {
	cl := newCluster(t, 1, 4, 4, store.NewMem)
	err := cl.w.Run(func(r *mpi.Rank) {
		f, err := OpenColl(r, OpenArgs{Comm: cl.w.Comm(), Registry: cl.reg, Path: "f", Create: true,
			Info: mpi.Info{HintCBNodes: "4", HintCBConfigList: "*:1"}})
		if err != nil {
			t.Error(err)
			return
		}
		aggs := f.Aggregators()
		want := []int{0, 4, 8, 12} // one per node
		for i := range want {
			if aggs[i] != want[i] {
				t.Errorf("aggs = %v, want %v", aggs, want)
				break
			}
		}
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCBConfigListRejectsBadValues(t *testing.T) {
	for _, bad := range []string{"node1:2", "*:0", "*:x", ""} {
		if _, err := ParseHints(mpi.Info{HintCBConfigList: bad}, 8); err == nil {
			t.Errorf("value %q must be rejected", bad)
		}
	}
}

func TestReadSievingDensePattern(t *testing.T) {
	cl := newCluster(t, 1, 1, 1, store.NewMem)
	err := cl.w.Run(func(r *mpi.Rank) {
		f, _ := OpenColl(r, OpenArgs{Comm: cl.w.Comm(), Registry: cl.reg, Path: "f", Create: true,
			Info: mpi.Info{HintIndRdBufferSize: "4096"}})
		// Write known content, then read a dense hole-y subset back.
		content := make([]byte, 12000)
		for i := range content {
			content[i] = byte(i % 251)
		}
		if err := f.WriteContig(content, 0, int64(len(content))); err != nil {
			t.Error(err)
			return
		}
		var segs []extent.Extent
		var total int64
		for i := 0; i < 50; i++ {
			segs = append(segs, extent.Extent{Off: int64(i * 200), Len: 150})
			total += 150
		}
		buf := make([]byte, total)
		if err := f.ReadStrided(segs, buf); err != nil {
			t.Error(err)
			return
		}
		if f.Stats.SievedReads == 0 {
			t.Error("dense read must sieve")
		}
		cursor := 0
		for _, s := range segs {
			for b := int64(0); b < s.Len; b++ {
				if buf[cursor] != byte((s.Off+b)%251) {
					t.Fatalf("sieved read wrong at seg %v byte %d", s, b)
				}
				cursor++
			}
		}
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadSievingFewerBackendOps(t *testing.T) {
	// Sieving must reduce the number of PFS read ops versus per-segment
	// reads: check via accumulated read time at equal byte counts.
	run := func(sieve bool) sim.Time {
		k := sim.NewKernel(1)
		cl := newCluster(t, 1, 1, 1, store.NewMem)
		_ = k
		var took sim.Time
		err := cl.w.Run(func(r *mpi.Rank) {
			info := mpi.Info{HintIndRdBufferSize: "65536"}
			f, _ := OpenColl(r, OpenArgs{Comm: cl.w.Comm(), Registry: cl.reg, Path: "f", Create: true, Info: info})
			if err := f.WriteContig(nil, 0, 1<<20); err != nil {
				t.Error(err)
				return
			}
			var segs []extent.Extent
			for i := 0; i < 256; i++ {
				l := int64(2048)
				if !sieve {
					// Sparse version of the same request count: gaps too
					// large to sieve.
					segs = append(segs, extent.Extent{Off: int64(i) * 40960, Len: l})
				} else {
					segs = append(segs, extent.Extent{Off: int64(i) * 4096, Len: l})
				}
			}
			t0 := r.Now()
			if err := f.ReadStrided(segs, nil); err != nil {
				t.Error(err)
			}
			took = r.Now() - t0
		})
		if err != nil {
			t.Fatal(err)
		}
		return took
	}
	if dense, sparse := run(true), run(false); dense >= sparse {
		t.Fatalf("sieved dense read (%v) should beat scattered reads (%v)", dense, sparse)
	}
}

func TestCollectiveWriteHolesPreserveExistingData(t *testing.T) {
	// Fragmented-but-dense coverage triggers the read-modify-write path in
	// the aggregator; bytes in the holes must survive.
	cl := newCluster(t, 1, 2, 1, store.NewMem)
	err := cl.w.Run(func(r *mpi.Rank) {
		f, err := OpenColl(r, OpenArgs{Comm: cl.w.Comm(), Registry: cl.reg, Path: "f", Create: true,
			Info: mpi.Info{HintCBWrite: "enable", HintCBNodes: "1"}})
		if err != nil {
			t.Error(err)
			return
		}
		// Pre-fill the file with 0xEE via rank 0.
		if cl.w.Comm().RankOf(r) == 0 {
			pre := bytes.Repeat([]byte{0xEE}, 8192)
			if err := f.WriteContig(pre, 0, int64(len(pre))); err != nil {
				t.Error(err)
			}
		}
		cl.w.Comm().Barrier(r)
		// Interleaved dense pattern with 64-byte holes every 192 bytes:
		// rank 0 gets offsets 0,192,384..., rank 1 offsets 64,256,...
		var segs []extent.Extent
		var data []byte
		for i := 0; i < 16; i++ {
			off := int64(i*192 + r.ID()*64)
			segs = append(segs, extent.Extent{Off: off, Len: 64})
			data = append(data, bytes.Repeat([]byte{byte(r.ID() + 1)}, 64)...)
		}
		if err := f.WriteStridedColl(segs, data); err != nil {
			t.Error(err)
		}
		if f.IsAggregator() && f.Stats.SievedWrites == 0 {
			t.Error("dense hole-y window must use read-modify-write")
		}
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8192)
	cl.fs.Lookup("f").Store().ReadAt(got, 0)
	for i := 0; i < 16; i++ {
		base := i * 192
		for b := 0; b < 64; b++ {
			if got[base+b] != 1 {
				t.Fatalf("rank0 bytes wrong at %d: %x", base+b, got[base+b])
			}
			if got[base+64+b] != 2 {
				t.Fatalf("rank1 bytes wrong at %d: %x", base+64+b, got[base+64+b])
			}
			if got[base+128+b] != 0xEE {
				t.Fatalf("hole clobbered at %d: %x", base+128+b, got[base+128+b])
			}
		}
	}
}

func TestCollectiveWriteStats(t *testing.T) {
	cl := newCluster(t, 1, 2, 2, store.NewMem)
	err := cl.w.Run(func(r *mpi.Rank) {
		f, _ := OpenColl(r, OpenArgs{Comm: cl.w.Comm(), Registry: cl.reg, Path: "f", Create: true,
			Info: mpi.Info{HintCBWrite: "enable", HintCBNodes: "2"}})
		// Interleaved 1 KB pieces.
		segs := []extent.Extent{{Off: int64(r.ID()) * 1024, Len: 1024},
			{Off: 8192 + int64(r.ID())*1024, Len: 1024}}
		if err := f.WriteStridedColl(segs, nil); err != nil {
			t.Error(err)
		}
		if f.Stats.CollWrites != 1 {
			t.Errorf("coll writes = %d", f.Stats.CollWrites)
		}
		// Non-aggregators shipped their bytes over the network.
		if !f.IsAggregator() && f.Stats.BytesExchanged < 2048 {
			t.Errorf("rank %d exchanged %d bytes", r.ID(), f.Stats.BytesExchanged)
		}
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}
