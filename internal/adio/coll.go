package adio

import (
	"fmt"
	"sort"

	"repro/internal/extent"
	"repro/internal/metrics"
	"repro/internal/mpe"
	"repro/internal/mpi"
	"repro/internal/store"
	"repro/internal/trace"
)

// layerLabel is the metrics label shared by every ADIO series.
var layerLabel = metrics.L(metrics.KeyLayer, "adio")

// metrics returns the kernel-owned registry (nil when disabled).
func (f *File) metrics() *metrics.Registry {
	return f.rank.World().Kernel().Metrics()
}

// tagDataBase is the tag space for two-phase data-exchange messages.
const tagDataBase = 1 << 27

// WriteStridedColl is ADIOI_GEN_WriteStridedColl, the collective write
// entry point (Figure 2 of the paper). segs is this rank's flattened file
// access (sorted, non-overlapping extents); data optionally carries the
// concatenated payload bytes in segment order. Payload use is
// all-or-nothing per communicator: either every rank passes real bytes
// (verification mode) or every rank passes nil (metadata-only mode);
// mixing the two writes zeros for the nil ranks' extents.
//
// The implementation follows §II-A: (1) all ranks exchange start/end
// offsets; (2) the interleaving check selects collective vs independent
// I/O, overridable with romio_cb_write; (3) the accessed range is split
// into file domains by the driver's partitioning strategy; (4) the
// extended two-phase loop runs ntimes rounds of Alltoall dissemination,
// Isend/Irecv data shuffle, collective-buffer packing and WriteContig; and
// (5) a final Allreduce exchanges error codes. ROMIO precomputes the
// my_req/others_req maps once before the loop; this implementation derives
// the identical per-round sets from the file domains inside the loop,
// which produces the same message pattern.
func (f *File) WriteStridedColl(segs []extent.Extent, data []byte) error {
	r, c, log := f.rank, f.comm, f.log
	total, err := validateSegs(segs)
	if err != nil {
		return err
	}
	if data != nil && int64(len(data)) != total {
		return fmt.Errorf("adio: payload length %d != segment total %d", len(data), total)
	}
	if f.resilientEnabled() {
		return f.writeStridedCollResilient(segs, data, total)
	}
	f.Stats.CollWrites++

	mt := f.metrics()
	mt.Counter("adio_coll_writes_total", layerLabel).Inc()
	mRoundNs := mt.Histogram("adio_round_ns", layerLabel)
	mRounds := mt.Counter("adio_coll_rounds_total", layerLabel)
	mExch := mt.Counter("adio_exchange_bytes_total", layerLabel)

	tr := r.World().Kernel().Tracer()
	ttk := r.TraceTrack(tr)
	if tr != nil {
		csp := tr.Begin(ttk, "adio", "coll_write", int64(r.Now()))
		defer func() {
			csp.End(int64(r.Now()), trace.I("segs", int64(len(segs))), trace.I("bytes", total))
		}()
	}

	// Step 1: exchange access-pattern information (start and end offsets).
	span := mpe.StartSpan(r.Now())
	const noData = int64(-1)
	st, end := noData, noData
	if len(segs) > 0 {
		st = segs[0].Off
		end = segs[len(segs)-1].End() - 1
	}
	offs := c.Allgather(r, []int64{st, end})

	// Step 2: interleaving check over adjacent ranks, global range.
	minSt, maxEnd := int64(-1), int64(-1)
	interleaved := false
	prevEnd, hasPrev := int64(-1), false
	for _, o := range offs {
		if o[0] == noData {
			continue
		}
		if minSt == -1 || o[0] < minSt {
			minSt = o[0]
		}
		if o[1] > maxEnd {
			maxEnd = o[1]
		}
		if hasPrev && o[0] < prevEnd {
			interleaved = true
		}
		prevEnd, hasPrev = o[1], true
	}
	span.End(log, mpe.PhaseCalc, r.Now())

	if f.hints.CBWrite == HintDisable || (f.hints.CBWrite == HintAutomatic && !interleaved) {
		return f.WriteStrided(segs, data)
	}
	if maxEnd < minSt {
		// No rank has data; still synchronise error codes.
		span = mpe.StartSpan(r.Now())
		c.Allreduce(r, []int64{0}, mpi.MaxOp)
		span.End(log, mpe.PhasePostWrite, r.Now())
		return nil
	}

	// Step 3: file domains, per the driver's partitioning strategy.
	fds := f.driver.FileDomains(minSt, maxEnd, len(f.aggList), f.hints)
	naggs := len(fds)
	cb := f.hints.CBBufferSize
	ntimes := 0
	for _, fd := range fds {
		if nt := int((fd.Len + cb - 1) / cb); nt > ntimes {
			ntimes = nt
		}
	}

	var pre []int64
	if data != nil {
		pre = make([]int64, len(segs)+1)
		for i, s := range segs {
			pre[i+1] = pre[i] + s.Len
		}
	}

	me := c.RankOf(r)
	amAgg := f.myAgg >= 0 && f.myAgg < naggs
	var myFD extent.Extent
	if amAgg {
		myFD = fds[f.myAgg]
		if buf := min64(cb, myFD.Len); buf > f.Stats.PeakBufBytes {
			f.Stats.PeakBufBytes = buf
		}
		tr.Instant(ttk, "adio", "file_domain", int64(r.Now()),
			trace.I("off", myFD.Off), trace.I("len", myFD.Len))
	}

	// Step 4: the extended two-phase loop.
	var firstErr error
	for m := 0; m < ntimes; m++ {
		tag := tagDataBase + (m & 0xffff)
		roundT0 := r.Now()
		rsp := tr.Begin(ttk, "adio", "round", int64(r.Now()))

		// What do I send to each aggregator this round?
		sendExts := make([][]extent.Extent, naggs)
		sendSizes := make([]int64, c.Size())
		for a := 0; a < naggs; a++ {
			win := roundWindow(fds[a], cb, m)
			if win.Empty() {
				continue
			}
			for _, s := range segs {
				if ov := s.Intersect(win); !ov.Empty() {
					sendExts[a] = append(sendExts[a], ov)
					sendSizes[f.aggList[a]] += ov.Len
				}
			}
		}

		// Dissemination: every round starts with an MPI_Alltoall telling
		// each aggregator how much each process contributes.
		span = mpe.StartSpan(r.Now())
		recvSizes := c.Alltoall(r, sendSizes)
		span.End(log, mpe.PhaseShuffleA2A, r.Now())

		// Data shuffle: post receives, start sends, wait for all.
		span = mpe.StartSpan(r.Now())
		var recvReqs []*mpi.Request
		if amAgg {
			for src := 0; src < c.Size(); src++ {
				if src == me || recvSizes[src] == 0 {
					continue
				}
				recvReqs = append(recvReqs, r.Irecv(c.Member(src).ID(), tag))
			}
		}
		var sendReqs []*mpi.Request
		var selfExts []extent.Extent
		for a := 0; a < naggs; a++ {
			if len(sendExts[a]) == 0 {
				continue
			}
			if f.aggList[a] == me {
				selfExts = sendExts[a]
				continue
			}
			msg := buildDataMsg(sendExts[a], segs, pre, data)
			f.Stats.BytesExchanged += msg.Size
			mExch.Add(msg.Size)
			sendReqs = append(sendReqs, r.Isend(c.Member(f.aggList[a]).ID(), tag, msg))
		}
		r.Waitall(sendReqs)
		r.Waitall(recvReqs)
		span.End(log, mpe.PhaseExchWaitall, r.Now())

		// Aggregator: pack the collective buffer and write the domain.
		if amAgg {
			if win := roundWindow(myFD, cb, m); !win.Empty() {
				var msgs []*mpi.Message
				for _, q := range recvReqs {
					msgs = append(msgs, r.Wait(q))
				}
				if err := f.packAndWrite(win, msgs, selfExts, segs, pre, data); err != nil && firstErr == nil {
					firstErr = err
				}
				f.Stats.CollRounds++
				mRounds.Inc()
			}
		}
		rsp.End(int64(r.Now()), trace.I("round", int64(m)), trace.I("ntimes", int64(ntimes)))
		mRoundNs.Observe(int64(r.Now() - roundT0))
	}

	// Step 5: synchronise and exchange error codes.
	span = mpe.StartSpan(r.Now())
	code := int64(0)
	if firstErr != nil {
		code = 1
	}
	res := c.Allreduce(r, []int64{code}, mpi.MaxOp)
	span.End(log, mpe.PhasePostWrite, r.Now())
	if res[0] != 0 && firstErr == nil {
		firstErr = fmt.Errorf("adio: collective write failed on another rank")
	}
	return firstErr
}

// roundWindow returns the sub-domain of fd written in round m with a
// collective buffer of cb bytes.
func roundWindow(fd extent.Extent, cb int64, m int) extent.Extent {
	off := fd.Off + int64(m)*cb
	if off >= fd.End() {
		return extent.Extent{}
	}
	return extent.Extent{Off: off, Len: min64(cb, fd.End()-off)}
}

// buildDataMsg encodes extents (and payload, when present) into a shuffle
// message. Vals carries (off, len) pairs; Size adds a 16-byte per-extent
// header to the payload bytes.
func buildDataMsg(exts []extent.Extent, segs []extent.Extent, pre []int64, data []byte) mpi.Message {
	vals := make([]int64, 0, 2*len(exts))
	var payload []byte
	var bytes int64
	for _, e := range exts {
		vals = append(vals, e.Off, e.Len)
		bytes += e.Len
		if data != nil {
			payload = append(payload, segPayload(e, segs, pre, data)...)
		}
	}
	return mpi.Message{Vals: vals, Data: payload, Size: bytes + 16*int64(len(exts))}
}

// segPayload extracts the bytes of e (which lies within one segment) from
// the rank's concatenated payload.
func segPayload(e extent.Extent, segs []extent.Extent, pre []int64, data []byte) []byte {
	i := sort.Search(len(segs), func(i int) bool { return segs[i].End() > e.Off })
	if i == len(segs) || !segs[i].Covers(e) {
		panic(fmt.Sprintf("adio: extent %v not within any segment", e))
	}
	start := pre[i] + (e.Off - segs[i].Off)
	return data[start : start+e.Len]
}

// packAndWrite fills the collective buffer with the received and local
// contributions for win, charges the memory-copy cost, and writes every
// contiguous covered run via WriteContig (holes are skipped, as ROMIO does
// when hole detection shows no read-modify-write is needed).
func (f *File) packAndWrite(win extent.Extent, msgs []*mpi.Message, selfExts []extent.Extent,
	segs []extent.Extent, pre []int64, data []byte) error {
	r := f.rank
	var cover extent.Set
	var scratch store.Store
	var packed int64

	addPiece := func(e extent.Extent, b []byte) {
		cover.Add(e)
		packed += e.Len
		if b != nil {
			if scratch == nil {
				scratch = store.NewMem()
			}
			scratch.WriteAt(b, e.Off, e.Len)
		}
	}
	for _, m := range msgs {
		var cursor int64
		for i := 0; i+1 < len(m.Vals); i += 2 {
			e := extent.Extent{Off: m.Vals[i], Len: m.Vals[i+1]}
			var b []byte
			if m.Data != nil {
				b = m.Data[cursor : cursor+e.Len]
			}
			cursor += e.Len
			addPiece(e, b)
		}
	}
	for _, e := range selfExts {
		var b []byte
		if data != nil {
			b = segPayload(e, segs, pre, data)
		}
		addPiece(e, b)
	}

	// Packing cost: one memory copy of the collective buffer contents.
	span := mpe.StartSpan(r.Now())
	r.Node().LocalCopy(r.Proc(), packed)
	span.End(f.log, mpe.PhasePack, r.Now())

	span = mpe.StartSpan(r.Now())
	defer func() { span.End(f.log, mpe.PhaseWrite, r.Now()) }()

	runs := cover.Extents()
	// Hole handling, as in ADIOI_Exch_and_write: when the window is
	// fragmented but mostly covered, read-modify-write the whole window
	// once instead of issuing one write per fragment. Sparse coverage
	// writes the runs individually.
	if len(runs) > 1 && packed*2 >= win.Len {
		f.Stats.SievedWrites++
		var wd []byte
		if scratch != nil {
			wd = make([]byte, win.Len)
		}
		if err := f.ReadContig(wd, win.Off, win.Len); err != nil {
			return err
		}
		if scratch != nil {
			for _, run := range runs {
				run = run.Intersect(win)
				if run.Empty() {
					continue
				}
				scratch.ReadAt(wd[run.Off-win.Off:run.Off-win.Off+run.Len], run.Off)
			}
		}
		return f.WriteContig(wd, win.Off, win.Len)
	}
	var err error
	for _, run := range runs {
		run = run.Intersect(win)
		if run.Empty() {
			continue
		}
		var rd []byte
		if scratch != nil {
			rd = make([]byte, run.Len)
			scratch.ReadAt(rd, run.Off)
		}
		if werr := f.WriteContig(rd, run.Off, run.Len); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
