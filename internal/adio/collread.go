package adio

import (
	"fmt"

	"repro/internal/extent"
	"repro/internal/mpe"
	"repro/internal/mpi"
	"repro/internal/store"
)

// tagReadBase is the tag space for collective-read request/reply messages.
const tagReadBase = 1 << 26

// ReadStridedColl is ADIOI_GEN_ReadStridedColl: the collective read twin of
// the extended two-phase algorithm. Aggregators read their file-domain
// windows from the file system and scatter the pieces to the requesting
// ranks round by round; the structure (offset exchange, interleaving check,
// file domains, per-round Alltoall dissemination, Isend/Irecv/Waitall)
// mirrors the write path. Reads always target the global file: §III-B of
// the paper explains why reads from other ranks' caches are unsupported.
func (f *File) ReadStridedColl(segs []extent.Extent, buf []byte) error {
	r, c, log := f.rank, f.comm, f.log
	total, err := validateSegs(segs)
	if err != nil {
		return err
	}
	if buf != nil && int64(len(buf)) != total {
		return fmt.Errorf("adio: buffer length %d != segment total %d", len(buf), total)
	}

	// Offset exchange and interleaving check, as in the write path.
	span := mpe.StartSpan(r.Now())
	const noData = int64(-1)
	st, end := noData, noData
	if len(segs) > 0 {
		st = segs[0].Off
		end = segs[len(segs)-1].End() - 1
	}
	offs := c.Allgather(r, []int64{st, end})
	minSt, maxEnd := int64(-1), int64(-1)
	interleaved := false
	prevEnd, hasPrev := int64(-1), false
	for _, o := range offs {
		if o[0] == noData {
			continue
		}
		if minSt == -1 || o[0] < minSt {
			minSt = o[0]
		}
		if o[1] > maxEnd {
			maxEnd = o[1]
		}
		if hasPrev && o[0] < prevEnd {
			interleaved = true
		}
		prevEnd, hasPrev = o[1], true
	}
	span.End(log, mpe.PhaseCalc, r.Now())

	if f.hints.CBRead == HintDisable || (f.hints.CBRead == HintAutomatic && !interleaved) {
		return f.ReadStrided(segs, buf)
	}
	if maxEnd < minSt {
		c.Allreduce(r, []int64{0}, mpi.MaxOp)
		return nil
	}

	fds := f.driver.FileDomains(minSt, maxEnd, len(f.aggList), f.hints)
	naggs := len(fds)
	cb := f.hints.CBBufferSize
	ntimes := 0
	for _, fd := range fds {
		if nt := int((fd.Len + cb - 1) / cb); nt > ntimes {
			ntimes = nt
		}
	}

	var pre []int64
	if buf != nil {
		pre = make([]int64, len(segs)+1)
		for i, s := range segs {
			pre[i+1] = pre[i] + s.Len
		}
	}

	me := c.RankOf(r)
	amAgg := f.myAgg >= 0 && f.myAgg < naggs
	var myFD extent.Extent
	if amAgg {
		myFD = fds[f.myAgg]
		if b := min64(cb, myFD.Len); b > f.Stats.PeakBufBytes {
			f.Stats.PeakBufBytes = b
		}
	}
	payload := buf != nil

	for m := 0; m < ntimes; m++ {
		reqTag := tagReadBase + 2*(m&0x7fff)
		repTag := reqTag + 1

		// What do I want from each aggregator this round?
		wantExts := make([][]extent.Extent, naggs)
		wantSizes := make([]int64, c.Size())
		for a := 0; a < naggs; a++ {
			win := roundWindow(fds[a], cb, m)
			if win.Empty() {
				continue
			}
			for _, s := range segs {
				if ov := s.Intersect(win); !ov.Empty() {
					wantExts[a] = append(wantExts[a], ov)
					wantSizes[f.aggList[a]] += ov.Len
				}
			}
		}

		span = mpe.StartSpan(r.Now())
		reqSizes := c.Alltoall(r, wantSizes)
		span.End(log, mpe.PhaseShuffleA2A, r.Now())

		span = mpe.StartSpan(r.Now())
		// Aggregators receive the extent requests.
		var reqReqs []*mpi.Request
		var reqSrcs []int
		if amAgg {
			for src := 0; src < c.Size(); src++ {
				if src == me || reqSizes[src] == 0 {
					continue
				}
				reqReqs = append(reqReqs, r.Irecv(c.Member(src).ID(), reqTag))
				reqSrcs = append(reqSrcs, src)
			}
		}
		// Send extent requests; post receives for the replies.
		var replyReqs []*mpi.Request
		var replyAggs []int
		var selfExts []extent.Extent
		for a := 0; a < naggs; a++ {
			if len(wantExts[a]) == 0 {
				continue
			}
			if f.aggList[a] == me {
				selfExts = wantExts[a]
				continue
			}
			vals := make([]int64, 0, 2*len(wantExts[a]))
			for _, e := range wantExts[a] {
				vals = append(vals, e.Off, e.Len)
			}
			aggWorld := c.Member(f.aggList[a]).ID()
			replyReqs = append(replyReqs, r.Irecv(aggWorld, repTag))
			replyAggs = append(replyAggs, a)
			r.Send(aggWorld, reqTag, mpi.Message{Vals: vals})
		}
		r.Waitall(reqReqs)

		// Aggregator: read the covering range once (data-sieving read) and
		// answer every request.
		if amAgg {
			win := roundWindow(myFD, cb, m)
			if !win.Empty() {
				var need extent.Set
				type request struct {
					src  int
					exts []extent.Extent
				}
				var reqs []request
				for i, q := range reqReqs {
					msg := r.Wait(q)
					var exts []extent.Extent
					for j := 0; j+1 < len(msg.Vals); j += 2 {
						e := extent.Extent{Off: msg.Vals[j], Len: msg.Vals[j+1]}
						exts = append(exts, e)
						need.Add(e)
					}
					reqs = append(reqs, request{src: reqSrcs[i], exts: exts})
				}
				for _, e := range selfExts {
					need.Add(e)
				}
				var scratch store.Store
				span2 := mpe.StartSpan(r.Now())
				for _, run := range need.Extents() {
					run = run.Intersect(win)
					if run.Empty() {
						continue
					}
					var rd []byte
					if payload {
						rd = make([]byte, run.Len)
					}
					f.ReadContig(rd, run.Off, run.Len)
					if payload {
						if scratch == nil {
							scratch = store.NewMem()
						}
						scratch.WriteAt(rd, run.Off, run.Len)
					}
				}
				span2.End(log, mpe.PhaseWrite, r.Now()) // file I/O time
				// Reply to every requester.
				for _, q := range reqs {
					msg := buildReadReply(q.exts, scratch)
					f.Stats.BytesExchanged += msg.Size
					r.Send(c.Member(q.src).ID(), repTag, msg)
				}
				// Local pieces for this aggregator's own request.
				if len(selfExts) > 0 && payload {
					for _, e := range selfExts {
						rd := make([]byte, e.Len)
						scratch.ReadAt(rd, e.Off)
						copyIntoSegs(rd, e, segs, pre, buf)
					}
				}
			}
		}

		// Collect the replies and place them into the caller's buffer.
		r.Waitall(replyReqs)
		for i, q := range replyReqs {
			msg := r.Wait(q)
			if !payload {
				continue
			}
			var cursor int64
			for _, e := range wantExts[replyAggs[i]] {
				copyIntoSegs(msg.Data[cursor:cursor+e.Len], e, segs, pre, buf)
				cursor += e.Len
			}
		}
		span.End(log, mpe.PhaseExchWaitall, r.Now())
	}

	span = mpe.StartSpan(r.Now())
	c.Allreduce(r, []int64{0}, mpi.MaxOp)
	span.End(log, mpe.PhasePostWrite, r.Now())
	return nil
}

// buildReadReply packs the bytes of exts (from the aggregator's scratch
// buffer) into a reply message.
func buildReadReply(exts []extent.Extent, scratch store.Store) mpi.Message {
	var bytes int64
	var payload []byte
	for _, e := range exts {
		bytes += e.Len
		if scratch != nil {
			b := make([]byte, e.Len)
			scratch.ReadAt(b, e.Off)
			payload = append(payload, b...)
		}
	}
	return mpi.Message{Data: payload, Size: bytes + 16*int64(len(exts))}
}

// copyIntoSegs places the bytes of file extent e into the caller's
// segment-ordered buffer.
func copyIntoSegs(data []byte, e extent.Extent, segs []extent.Extent, pre []int64, buf []byte) {
	for i, s := range segs {
		ov := s.Intersect(e)
		if ov.Empty() {
			continue
		}
		dst := pre[i] + (ov.Off - s.Off)
		src := ov.Off - e.Off
		copy(buf[dst:dst+ov.Len], data[src:src+ov.Len])
	}
}
