package adio

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/extent"
	"repro/internal/mpe"
	"repro/internal/mpi"
)

// Hooks are the integration points the paper adds to ROMIO for the
// persistent cache layer (§III-A). Package core implements them; a nil
// Hooks means the stock data path.
type Hooks interface {
	// AtOpenColl runs inside ADIOI_GEN_OpenColl after the global file is
	// open: the cache layer opens the cache file and stores cache_fd. An
	// error makes the implementation revert to the standard path.
	AtOpenColl(f *File) error
	// WriteContig may intercept ADIOI_GEN_WriteContig. It returns true if
	// it handled the write (data went to the cache).
	WriteContig(f *File, data []byte, off, size int64) (bool, error)
	// AtFlush runs inside ADIOI_GEN_Flush: wait for (or trigger and wait
	// for) completion of outstanding cache-sync requests.
	AtFlush(f *File) error
	// AtClose runs inside ADIO_Close before the global file is closed:
	// flush the cache and close/discard the cache file.
	AtClose(f *File) error
}

// ReadHooks is an optional extension of Hooks implementing cache reads,
// the first item of the paper's future work (§VI). A hook set that also
// implements ReadHooks may serve ReadContig from the local cache.
type ReadHooks interface {
	// ReadContig returns true when it served the read from the cache.
	ReadContig(f *File, buf []byte, off, size int64) (bool, error)
}

// HooksFactory builds the hook set for a freshly opened file, typically by
// inspecting the e10_* hints. Returning (nil, nil) means no cache layer.
type HooksFactory func(f *File) (Hooks, error)

// Stats counts per-handle activity, including the collective-buffer memory
// pressure the paper's point (d) is about.
type Stats struct {
	CollWrites     int64 // collective write calls
	CollRounds     int64 // two-phase rounds executed
	IndepWrites    int64 // independent write calls
	BytesExchanged int64 // bytes this rank sent during data shuffle
	BytesWritten   int64 // bytes this rank wrote via WriteContig
	PeakBufBytes   int64 // peak collective buffer allocation on this rank
	SievedWrites   int64 // read-modify-write cycles in write data sieving
	SievedReads    int64 // sieved windows in read data sieving
	FailoverEpochs int64 // resilient-write membership epochs beyond the first
	CacheFallback  bool  // cache open failed, reverted to standard path
}

// File is one rank's open ADIO file (ADIO_File / MPI file handle).
type File struct {
	rank    *mpi.Rank
	comm    *mpi.Comm
	path    string
	hints   *Hints
	driver  Driver
	backend DriverFile
	hooks   Hooks
	log     *mpe.Log
	aggList []int // comm ranks acting as aggregators
	myAgg   int   // my index in aggList, or -1
	atomic  bool
	closed  bool

	resilCall int // resilient collective-write call counter (epoch comm scoping)

	Stats Stats
}

// OpenArgs bundles the parameters of a collective open.
type OpenArgs struct {
	Comm     *mpi.Comm
	Registry *Registry
	Path     string
	Create   bool
	Info     mpi.Info
	Hooks    HooksFactory
	Log      *mpe.Log // optional per-rank MPE log
}

// OpenColl is ADIOI_GEN_OpenColl: a collective open. Rank 0 of the
// communicator creates the file, everyone else opens it after a barrier;
// then the cache hook (if any) opens the cache file, reverting to the
// standard path on failure exactly as the paper specifies.
func OpenColl(r *mpi.Rank, a OpenArgs) (*File, error) {
	if a.Comm == nil || a.Registry == nil {
		return nil, errors.New("adio: OpenColl needs a communicator and a registry")
	}
	hints, err := ParseHints(a.Info, a.Comm.Size())
	if err != nil {
		return nil, err
	}
	drv, rel, err := a.Registry.Resolve(a.Path)
	if err != nil {
		return nil, err
	}
	log := a.Log
	if log == nil {
		log = mpe.NewLog()
	}
	span := mpe.StartSpan(r.Now())

	var backend DriverFile
	me := a.Comm.RankOf(r)
	if a.Create {
		if me == 0 {
			backend, err = drv.Open(r, rel, true, hints)
		}
		a.Comm.Barrier(r)
		if me != 0 {
			backend, err = drv.Open(r, rel, false, hints)
		}
	} else {
		backend, err = drv.Open(r, rel, false, hints)
		a.Comm.Barrier(r)
	}
	if err != nil {
		return nil, fmt.Errorf("adio: open %s: %w", a.Path, err)
	}

	f := &File{
		rank:    r,
		comm:    a.Comm,
		path:    rel,
		hints:   hints,
		driver:  drv,
		backend: backend,
		log:     log,
		myAgg:   -1,
	}
	if hints.CBPerNode > 0 {
		f.aggList = aggregatorRanksPacked(a.Comm, hints.CBNodes, hints.CBPerNode)
	} else {
		f.aggList = aggregatorRanks(a.Comm.Size(), hints.CBNodes)
	}
	for i, a := range f.aggList {
		if a == me {
			f.myAgg = i
		}
	}
	if a.Hooks != nil {
		// Paper: "If for any reason the open of the cache file fails, the
		// implementation reverts to standard open."
		switch h, err := a.Hooks(f); {
		case err != nil:
			f.Stats.CacheFallback = true
		case h != nil:
			if err := h.AtOpenColl(f); err != nil {
				f.Stats.CacheFallback = true
			} else {
				f.hooks = h
			}
		}
	}
	span.End(log, mpe.PhaseOpen, r.Now())
	return f, nil
}

// aggregatorRanks spreads naggs aggregators evenly over the communicator.
// With node-major rank placement this puts consecutive aggregators on
// distinct nodes, matching ROMIO's default cb_config_list behaviour.
func aggregatorRanks(commSize, naggs int) []int {
	if naggs > commSize {
		naggs = commSize
	}
	out := make([]int, naggs)
	for i := range out {
		out[i] = i * commSize / naggs
	}
	return out
}

// aggregatorRanksPacked implements the cb_config_list "*:N" placement: fill
// nodes in comm-rank order, taking at most perNode aggregator ranks from
// each node, until naggs aggregators are chosen. Packing multiple
// aggregators per node makes them share that node's NIC and local SSD.
func aggregatorRanksPacked(c *mpi.Comm, naggs, perNode int) []int {
	if naggs > c.Size() {
		naggs = c.Size()
	}
	var out []int
	taken := make(map[int]int) // node id -> aggregators placed
	for i := 0; i < c.Size() && len(out) < naggs; i++ {
		node := c.Member(i).Node().ID()
		if taken[node] >= perNode {
			continue
		}
		taken[node]++
		out = append(out, i)
	}
	return out
}

// Rank returns the owning rank.
func (f *File) Rank() *mpi.Rank { return f.rank }

// Comm returns the file's communicator.
func (f *File) Comm() *mpi.Comm { return f.comm }

// Path returns the driver-relative path.
func (f *File) Path() string { return f.path }

// Hints returns the normalized hint set.
func (f *File) Hints() *Hints { return f.hints }

// Log returns the rank's MPE log for this file.
func (f *File) Log() *mpe.Log { return f.log }

// Driver returns the backing driver.
func (f *File) Driver() Driver { return f.driver }

// Backend returns the rank's backend handle (used by the cache sync path
// to write through to the global file).
func (f *File) Backend() DriverFile { return f.backend }

// InstalledHooks returns the active hook set (nil on the standard path),
// letting callers inspect cache-layer statistics.
func (f *File) InstalledHooks() Hooks { return f.hooks }

// IsAggregator reports whether this rank is one of the cb_nodes
// aggregators for this file.
func (f *File) IsAggregator() bool { return f.myAgg >= 0 }

// AggregatorIndex returns this rank's position in the aggregator list, or
// -1 when it is not an aggregator.
func (f *File) AggregatorIndex() int { return f.myAgg }

// Aggregators returns the comm ranks of the aggregators.
func (f *File) Aggregators() []int {
	out := make([]int, len(f.aggList))
	copy(out, f.aggList)
	return out
}

// SetAtomicity toggles MPI_File_set_atomicity.
func (f *File) SetAtomicity(v bool) { f.atomic = v }

// Atomicity reports the current atomic mode.
func (f *File) Atomicity() bool { return f.atomic }

// WriteContig is ADIOI_GEN_WriteContig: the cache hook may intercept it;
// otherwise data goes straight to the backend file system.
func (f *File) WriteContig(data []byte, off, size int64) error {
	if f.hooks != nil {
		handled, err := f.hooks.WriteContig(f, data, off, size)
		if err != nil {
			return err
		}
		if handled {
			f.Stats.BytesWritten += size
			f.metrics().Counter("adio_write_bytes_total", layerLabel).Add(size)
			return nil
		}
	}
	if err := f.backend.WriteContig(f.rank.Proc(), data, off, size); err != nil {
		return err
	}
	f.Stats.BytesWritten += size
	f.metrics().Counter("adio_write_bytes_total", layerLabel).Add(size)
	return nil
}

// ReadContig reads from the global file. The base system does not read
// from the cache (§III-B of the paper); when the cache layer implements
// the optional ReadHooks extension (future work implemented here), locally
// cached extents may be served from the SSD instead.
func (f *File) ReadContig(buf []byte, off, size int64) error {
	if rh, ok := f.hooks.(ReadHooks); ok {
		if handled, err := rh.ReadContig(f, buf, off, size); err == nil && handled {
			return nil
		}
	}
	return f.backend.ReadContig(f.rank.Proc(), buf, off, size)
}

// Flush is ADIOI_GEN_Flush: drain the cache (when present), then flush the
// backend (MPI_File_sync semantics).
func (f *File) Flush() error {
	if f.hooks != nil {
		if err := f.hooks.AtFlush(f); err != nil {
			return err
		}
	}
	f.backend.Flush(f.rank.Proc())
	return nil
}

// Close is ADIO_Close: complete all cache synchronisation, close the cache
// file, then close the global file. Collective semantics (the final
// barrier) are provided by the mpiio layer.
func (f *File) Close() error {
	if f.closed {
		return errors.New("adio: file closed twice")
	}
	span := mpe.StartSpan(f.rank.Now())
	var err error
	if f.hooks != nil {
		err = f.hooks.AtClose(f)
	}
	f.backend.Close(f.rank.Proc())
	f.closed = true
	span.End(f.log, mpe.PhaseClose, f.rank.Now())
	return err
}

// validateSegs checks that segments are sorted, non-overlapping and
// non-empty, and returns the total byte count.
func validateSegs(segs []extent.Extent) (int64, error) {
	var total int64
	if !sort.SliceIsSorted(segs, func(i, j int) bool { return segs[i].Off < segs[j].Off }) {
		return 0, errors.New("adio: segments not sorted by offset")
	}
	for i, s := range segs {
		if s.Len <= 0 {
			return 0, fmt.Errorf("adio: segment %d empty", i)
		}
		if i > 0 && segs[i-1].End() > s.Off {
			return 0, fmt.Errorf("adio: segments %d and %d overlap", i-1, i)
		}
		total += s.Len
	}
	return total, nil
}
