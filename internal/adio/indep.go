package adio

import (
	"fmt"

	"repro/internal/extent"
	"repro/internal/mpe"
)

// WriteStrided is ADIOI_GEN_WriteStrided: an independent strided write.
// Contiguous runs are written directly; when the access pattern leaves
// holes that are dense enough, ROMIO-style data sieving performs
// read-modify-write cycles of ind_wr_buffer_size, which is also the reason
// that hint defines the independent write granularity (§III of the paper).
func (f *File) WriteStrided(segs []extent.Extent, data []byte) error {
	total, err := validateSegs(segs)
	if err != nil {
		return err
	}
	if data != nil && int64(len(data)) != total {
		return fmt.Errorf("adio: payload length %d != segment total %d", len(data), total)
	}
	if len(segs) == 0 {
		return nil
	}
	f.Stats.IndepWrites++
	f.metrics().Counter("adio_indep_writes_total", layerLabel).Inc()

	var pre []int64
	if data != nil {
		pre = make([]int64, len(segs)+1)
		for i, s := range segs {
			pre[i+1] = pre[i] + s.Len
		}
	}

	// Coalesce the segments into contiguous runs.
	var cover extent.Set
	for _, s := range segs {
		cover.Add(s)
	}
	runs := cover.Extents()

	span := mpe.StartSpan(f.rank.Now())
	defer func() { span.End(f.log, mpe.PhaseWrite, f.rank.Now()) }()

	spanExt := extent.Extent{Off: segs[0].Off, Len: segs[len(segs)-1].End() - segs[0].Off}
	holeBytes := spanExt.Len - total
	// Sieve when the pattern is hole-y but dense: the extra bytes moved by
	// read-modify-write are less than half the window.
	if len(runs) > 1 && holeBytes*2 < spanExt.Len {
		return f.sieveWrite(spanExt, segs, pre, data)
	}
	for _, run := range runs {
		var rd []byte
		if data != nil {
			rd = make([]byte, run.Len)
			fillRun(rd, run, segs, pre, data)
		}
		if err := f.WriteContig(rd, run.Off, run.Len); err != nil {
			return err
		}
	}
	return nil
}

// sieveWrite performs data sieving over spanExt in ind_wr_buffer_size
// windows: read the window, overlay the new bytes, write it back.
func (f *File) sieveWrite(spanExt extent.Extent, segs []extent.Extent, pre []int64, data []byte) error {
	bufSize := f.hints.IndWrBufferSize
	if bufSize <= 0 {
		bufSize = DefaultIndWrBufferSize
	}
	if bufSize > f.Stats.PeakBufBytes {
		f.Stats.PeakBufBytes = bufSize
	}
	p := f.rank.Proc()
	for off := spanExt.Off; off < spanExt.End(); off += bufSize {
		win := extent.Extent{Off: off, Len: min64(bufSize, spanExt.End()-off)}
		// Which segments intersect this window?
		var pieces []extent.Extent
		covered := int64(0)
		for _, s := range segs {
			if ov := s.Intersect(win); !ov.Empty() {
				pieces = append(pieces, ov)
				covered += ov.Len
			}
		}
		if len(pieces) == 0 {
			continue
		}
		if covered == win.Len {
			// Fully covered: no read needed.
			var wd []byte
			if data != nil {
				wd = make([]byte, win.Len)
				for _, e := range pieces {
					copy(wd[e.Off-win.Off:], segPayload(e, segs, pre, data))
				}
			}
			if err := f.WriteContig(wd, win.Off, win.Len); err != nil {
				return err
			}
			continue
		}
		// Read-modify-write.
		f.Stats.SievedWrites++
		var wd []byte
		if data != nil {
			wd = make([]byte, win.Len)
		}
		if err := f.backend.ReadContig(p, wd, win.Off, win.Len); err != nil {
			return err
		}
		if data != nil {
			for _, e := range pieces {
				copy(wd[e.Off-win.Off:], segPayload(e, segs, pre, data))
			}
		}
		if err := f.WriteContig(wd, win.Off, win.Len); err != nil {
			return err
		}
	}
	return nil
}

// fillRun assembles the payload bytes of run (a coalesced union of
// segments) into rd.
func fillRun(rd []byte, run extent.Extent, segs []extent.Extent, pre []int64, data []byte) {
	for i, s := range segs {
		ov := s.Intersect(run)
		if ov.Empty() {
			continue
		}
		start := pre[i] + (ov.Off - s.Off)
		copy(rd[ov.Off-run.Off:], data[start:start+ov.Len])
	}
}

// ReadStrided is ADIOI_GEN_ReadStrided: an independent strided read.
// Dense hole-y patterns use read data sieving — one large contiguous read
// of ind_rd_buffer_size per window, from which the wanted pieces are
// extracted — which is how ROMIO turns many small reads into few large
// ones. Reads target the global file unless the cache layer's optional
// read extension serves a locally cached extent.
func (f *File) ReadStrided(segs []extent.Extent, buf []byte) error {
	total, err := validateSegs(segs)
	if err != nil {
		return err
	}
	if buf != nil && int64(len(buf)) != total {
		return fmt.Errorf("adio: buffer length %d != segment total %d", len(buf), total)
	}
	if len(segs) == 0 {
		return nil
	}
	var pre []int64
	if buf != nil {
		pre = make([]int64, len(segs)+1)
		for i, s := range segs {
			pre[i+1] = pre[i] + s.Len
		}
	}
	spanExt := extent.Extent{Off: segs[0].Off, Len: segs[len(segs)-1].End() - segs[0].Off}
	holeBytes := spanExt.Len - total
	if len(segs) > 1 && holeBytes*2 < spanExt.Len {
		return f.sieveRead(spanExt, segs, pre, buf)
	}
	var cursor int64
	for _, s := range segs {
		var rd []byte
		if buf != nil {
			rd = buf[cursor : cursor+s.Len]
		}
		if err := f.ReadContig(rd, s.Off, s.Len); err != nil {
			return err
		}
		cursor += s.Len
	}
	return nil
}

// sieveRead reads whole ind_rd_buffer_size windows and scatters the
// requested pieces into the caller's buffer.
func (f *File) sieveRead(spanExt extent.Extent, segs []extent.Extent, pre []int64, buf []byte) error {
	bufSize := f.hints.IndRdBufferSize
	if bufSize <= 0 {
		bufSize = DefaultIndRdBufferSize
	}
	if bufSize > f.Stats.PeakBufBytes {
		f.Stats.PeakBufBytes = bufSize
	}
	for off := spanExt.Off; off < spanExt.End(); off += bufSize {
		win := extent.Extent{Off: off, Len: min64(bufSize, spanExt.End()-off)}
		var pieces []extent.Extent
		for _, s := range segs {
			if ov := s.Intersect(win); !ov.Empty() {
				pieces = append(pieces, ov)
			}
		}
		if len(pieces) == 0 {
			continue
		}
		f.Stats.SievedReads++
		var wd []byte
		if buf != nil {
			wd = make([]byte, win.Len)
		}
		if err := f.ReadContig(wd, win.Off, win.Len); err != nil {
			return err
		}
		if buf == nil {
			continue
		}
		for _, e := range pieces {
			i := segIndexOf(segs, e)
			dst := pre[i] + (e.Off - segs[i].Off)
			copy(buf[dst:dst+e.Len], wd[e.Off-win.Off:])
		}
	}
	return nil
}

// segIndexOf locates the segment containing e (which never spans two
// segments by construction).
func segIndexOf(segs []extent.Extent, e extent.Extent) int {
	for i, s := range segs {
		if s.Covers(e) {
			return i
		}
	}
	panic(fmt.Sprintf("adio: extent %v outside all segments", e))
}
