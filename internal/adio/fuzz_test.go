package adio

import (
	"testing"

	"repro/internal/mpi"
)

// FuzzParseHints drives the Table I hint parser with adversarial key/value
// pairs. ParseHints must never panic; accepted hint sets must be normalized
// (positive sizes, cb_nodes within the communicator) and leave unknown keys
// untouched in Extra.
func FuzzParseHints(f *testing.F) {
	f.Add("romio_cb_write", "enable", "cb_nodes", "16", 64)
	f.Add("cb_buffer_size", "16777216", "striping_unit", "4194304", 512)
	f.Add("cb_nodes", "9999", "ind_wr_buffer_size", "524288", 8)
	f.Add("romio_cb_read", "automatic", "striping_factor", "4", 4)
	f.Add("cb_config_list", "*:2", "e10_cache", "enable", 16)
	f.Add("cb_buffer_size", "-1", "cb_nodes", "0", 4)
	f.Add("cb_buffer_size", "not-a-number", "romio_cb_write", "maybe", 4)
	f.Add("", "", "", "", 1)
	f.Add("cb_nodes", "1", "cb_nodes", "2", 0)
	f.Fuzz(func(t *testing.T, k1, v1, k2, v2 string, commSize int) {
		if commSize < 1 || commSize > 1<<20 {
			return
		}
		info := mpi.Info{}
		if k1 != "" {
			info[k1] = v1
		}
		if k2 != "" {
			info[k2] = v2
		}
		h, err := ParseHints(info, commSize)
		if err != nil {
			return
		}
		if h.CBNodes < 1 || h.CBNodes > commSize {
			t.Fatalf("ParseHints(%v, %d): cb_nodes = %d outside [1,%d]", info, commSize, h.CBNodes, commSize)
		}
		if h.CBBufferSize <= 0 || h.IndWrBufferSize <= 0 || h.IndRdBufferSize <= 0 {
			t.Fatalf("ParseHints(%v): non-positive buffer size %+v", info, h)
		}
		switch h.CBWrite {
		case HintEnable, HintDisable, HintAutomatic:
		default:
			t.Fatalf("ParseHints(%v): invalid cb_write %q", info, h.CBWrite)
		}
		switch h.CBRead {
		case HintEnable, HintDisable, HintAutomatic:
		default:
			t.Fatalf("ParseHints(%v): invalid cb_read %q", info, h.CBRead)
		}
		if h.CBPerNode < 0 {
			t.Fatalf("ParseHints(%v): negative cb_config_list %d", info, h.CBPerNode)
		}
		// Keys this layer interprets must not leak into Extra, and Extra
		// must be a subset of the input.
		for k, v := range h.Extra {
			switch k {
			case HintCBWrite, HintCBRead, HintCBNodes, HintCBBufferSize,
				HintIndWrBufferSize, HintIndRdBufferSize,
				HintStripingFactor, HintStripingUnit, HintCBConfigList:
				t.Fatalf("ParseHints(%v): interpreted key %q leaked into Extra", info, k)
			}
			if got, ok := info.Get(k); !ok || got != v {
				t.Fatalf("ParseHints(%v): Extra[%q]=%q not from input", info, k, v)
			}
		}
		// Parsing is deterministic.
		h2, err := ParseHints(info, commSize)
		if err != nil {
			t.Fatalf("ParseHints(%v) not deterministic: second call failed: %v", info, err)
		}
		if h2.CBNodes != h.CBNodes || h2.CBBufferSize != h.CBBufferSize || h2.CBWrite != h.CBWrite {
			t.Fatalf("ParseHints(%v) not deterministic: %+v vs %+v", info, h, h2)
		}
	})
}
