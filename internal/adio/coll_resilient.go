package adio

import (
	"errors"
	"fmt"

	"repro/internal/extent"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file is the degraded-mode variant of the extended two-phase
// collective write: the same round structure as WriteStridedColl, wrapped
// in a failover-epoch loop that survives aggregator death and network
// partitions.
//
// The protocol adds one collective per round — a round-ack Allreduce — and
// treats the acked extent set as the unit of progress: a sender releases a
// round's buffers (here: stops considering those extents pending) only
// once the round-ack succeeds, so anything an aggregator had in flight
// when it died is replayed from the sender's retained data in the next
// epoch. Epochs are delimited by collective failures: any timed-out
// collective or receive aborts the epoch, the survivors recompute the live
// membership and the file-domain partitioning over it (deterministically —
// same survivor set, same domains), and only the unacked remainder is
// re-exchanged. Re-writing an extent is idempotent: the bytes are the
// same, so byte conservation holds across failover.
//
// The failover machinery requires World.SetCollTimeout to be armed; with
// no timeout a collective involving a dead rank waits forever and the
// epoch loop never advances.

// HintResilientWrite enables the failover-capable collective write path
// ("enable"/"disable"). It rides in the hint Extra set, like the e10_*
// cache hints.
const HintResilientWrite = "e10_resilient_write"

// maxFailoverEpochs bounds the epoch loop: each epoch either finishes the
// write, or shrinks the membership / waits out a partition. Repeated
// failure without progress gives up with ErrFailoverExhausted.
const maxFailoverEpochs = 8

// DefaultRecvDeadline bounds an aggregator's wait for one shuffled data
// message when no collective timeout is armed to derive it from.
const DefaultRecvDeadline = 100 * sim.Millisecond

// ErrFailoverExhausted reports that the resilient write could not complete
// within maxFailoverEpochs membership epochs.
var ErrFailoverExhausted = errors.New("adio: resilient collective write exhausted failover epochs")

// errEpochFailed marks an epoch aborted by a retryable degraded-mode
// condition (collective timeout, receive deadline, peer-reported timeout).
var errEpochFailed = errors.New("adio: failover epoch aborted")

// Round-ack codes, combined with MaxOp so the worst peer status wins.
const (
	ackOK      = 0 // round written and acknowledged
	ackIOErr   = 1 // an aggregator's WriteContig failed: fatal
	ackTimeout = 2 // an aggregator missed a shuffle message: retry epoch
)

// resilientEnabled reports whether the e10_resilient_write hint selects
// the failover path.
func (f *File) resilientEnabled() bool {
	v, _ := f.hints.Extra.Get(HintResilientWrite)
	return v == "enable"
}

// writeStridedCollResilient runs the failover-epoch loop around
// resilientEpoch. acked accumulates every extent of this rank whose round
// was acknowledged; each epoch replays only the gaps.
func (f *File) writeStridedCollResilient(segs []extent.Extent, data []byte, total int64) error {
	r, w := f.rank, f.rank.World()
	f.Stats.CollWrites++
	f.metrics().Counter("adio_coll_writes_total", layerLabel).Inc()

	tr := w.Kernel().Tracer()
	ttk := r.TraceTrack(tr)
	if tr != nil {
		csp := tr.Begin(ttk, "adio", "coll_write_resilient", int64(r.Now()))
		defer func() {
			csp.End(int64(r.Now()), trace.I("segs", int64(len(segs))), trace.I("bytes", total))
		}()
	}

	var pre []int64
	if data != nil {
		pre = make([]int64, len(segs)+1)
		for i, s := range segs {
			pre[i+1] = pre[i] + s.Len
		}
	}

	// Per-file resilient-call counter: collective calls run in lockstep on
	// every rank, so the counter agrees across the communicator and keys
	// the per-epoch communicator scopes.
	call := f.resilCall
	f.resilCall++

	// The receive deadline must undercut the collective timeout: an
	// aggregator that gives up on a dead sender has to reach the round-ack
	// before the other survivors' round-ack timer fires, so every survivor
	// observes the same failed collective and enters the next epoch at the
	// same instant. A deadline >= the timeout leaves the aggregator one
	// collective behind for the rest of the call.
	deadline := w.CollTimeout() / 2
	if deadline <= 0 {
		deadline = DefaultRecvDeadline
	}

	var acked extent.Set
	for epoch := 0; epoch < maxFailoverEpochs; epoch++ {
		// Survivor membership, in the file communicator's rank order, so
		// every live rank derives the same sub-communicator and the same
		// aggregator placement.
		var live []int
		for i := 0; i < f.comm.Size(); i++ {
			if id := f.comm.Member(i).ID(); w.Alive(id) {
				live = append(live, id)
			}
		}
		scope := fmt.Sprintf("e10res|%s|c%d|e%d", f.path, call, epoch)
		sub := w.NewSharedComm(live, scope)
		if sub.RankOf(r) < 0 {
			return fmt.Errorf("adio: rank %d not in survivor set", r.ID())
		}
		if epoch > 0 {
			f.Stats.FailoverEpochs++
			f.metrics().Counter("adio_failover_epochs_total", layerLabel).Inc()
			if tr != nil {
				tr.Instant(ttk, "adio", "failover_epoch", int64(r.Now()),
					trace.I("epoch", int64(epoch)), trace.I("survivors", int64(len(live))))
			}
		}
		err := f.resilientEpoch(sub, epoch, segs, pre, data, &acked, deadline)
		if err == nil {
			return nil
		}
		if !errors.Is(err, errEpochFailed) && !errors.Is(err, mpi.ErrCollTimeout) {
			return err
		}
	}
	return fmt.Errorf("%w (after %d epochs)", ErrFailoverExhausted, maxFailoverEpochs)
}

// resilientEpoch runs one membership epoch of the two-phase loop over the
// unacked remainder. A nil return means the whole write (this rank's part
// and, via the final code exchange, everyone else's) completed; a
// retryable abort is reported as errEpochFailed (possibly wrapping the
// underlying timeout) and a write error is returned as itself.
func (f *File) resilientEpoch(c *mpi.Comm, epoch int, segs []extent.Extent, pre []int64,
	data []byte, acked *extent.Set, deadline sim.Time) error {
	r := f.rank
	me := c.RankOf(r)

	// This rank's pending work: the unacked gaps of each original segment.
	// Gaps are computed per segment, so every pending extent stays inside
	// one segment and segPayload can locate its bytes.
	var rem []extent.Extent
	for _, s := range segs {
		rem = append(rem, acked.Gaps(s)...)
	}

	// Offset exchange over the survivor communicator.
	const noData = int64(-1)
	st, end := noData, noData
	if len(rem) > 0 {
		st = rem[0].Off
		end = rem[len(rem)-1].End() - 1
	}
	offs, err := c.TryAllgather(r, []int64{st, end})
	if err != nil {
		return fmt.Errorf("%w: %w", errEpochFailed, err)
	}
	minSt, maxEnd := int64(-1), int64(-1)
	for _, o := range offs {
		if o[0] == noData {
			continue
		}
		if minSt == -1 || o[0] < minSt {
			minSt = o[0]
		}
		if o[1] > maxEnd {
			maxEnd = o[1]
		}
	}
	if maxEnd < minSt {
		// Nothing left anywhere: synchronise final codes and succeed.
		if _, err := c.TryAllreduce(r, []int64{ackOK}, mpi.MaxOp); err != nil {
			return fmt.Errorf("%w: %w", errEpochFailed, err)
		}
		return nil
	}

	// File domains recomputed over the survivors: same aggregator count as
	// the healthy run (capped by the surviving membership), re-placed by
	// the standard spreading rule so every survivor derives the same map.
	naggs := len(f.aggList)
	if naggs > c.Size() {
		naggs = c.Size()
	}
	aggList := aggregatorRanks(c.Size(), naggs)
	fds := f.driver.FileDomains(minSt, maxEnd, naggs, f.hints)
	naggs = len(fds)
	myAgg := -1
	for i := 0; i < naggs; i++ {
		if aggList[i] == me {
			myAgg = i
		}
	}
	amAgg := myAgg >= 0
	cb := f.hints.CBBufferSize
	ntimes := 0
	for _, fd := range fds {
		if nt := int((fd.Len + cb - 1) / cb); nt > ntimes {
			ntimes = nt
		}
	}
	if amAgg {
		if buf := min64(cb, fds[myAgg].Len); buf > f.Stats.PeakBufBytes {
			f.Stats.PeakBufBytes = buf
		}
	}

	mExch := f.metrics().Counter("adio_exchange_bytes_total", layerLabel)
	mRounds := f.metrics().Counter("adio_coll_rounds_total", layerLabel)

	// The epoch's tag space: rounds live in the low 16 bits, the epoch
	// above them, so a straggler retransmit from a failed epoch can never
	// match a later epoch's receives.
	tagBase := tagDataBase + ((epoch & 0x3ff) << 16)

	var firstErr error
	for m := 0; m < ntimes; m++ {
		tag := tagBase + (m & 0xffff)

		sendExts := make([][]extent.Extent, naggs)
		sendSizes := make([]int64, c.Size())
		for a := 0; a < naggs; a++ {
			win := roundWindow(fds[a], cb, m)
			if win.Empty() {
				continue
			}
			for _, s := range rem {
				if ov := s.Intersect(win); !ov.Empty() {
					sendExts[a] = append(sendExts[a], ov)
					sendSizes[aggList[a]] += ov.Len
				}
			}
		}

		recvSizes, err := c.TryAlltoall(r, sendSizes)
		if err != nil {
			return fmt.Errorf("%w: %w", errEpochFailed, err)
		}

		var recvReqs []*mpi.Request
		if amAgg {
			for src := 0; src < c.Size(); src++ {
				if src == me || recvSizes[src] == 0 {
					continue
				}
				recvReqs = append(recvReqs, r.Irecv(c.Member(src).ID(), tag))
			}
		}
		var sendReqs []*mpi.Request
		var selfExts []extent.Extent
		for a := 0; a < naggs; a++ {
			if len(sendExts[a]) == 0 {
				continue
			}
			if aggList[a] == me {
				selfExts = sendExts[a]
				continue
			}
			msg := buildDataMsg(sendExts[a], segs, pre, data)
			f.Stats.BytesExchanged += msg.Size
			mExch.Add(msg.Size)
			sendReqs = append(sendReqs, r.Isend(c.Member(aggList[a]).ID(), tag, msg))
		}
		r.Waitall(sendReqs)

		// Aggregator: collect contributions under a deadline — a sender
		// that died mid-round must not park this rank forever — then pack
		// and write whatever arrived. A missed message degrades the round
		// to ackTimeout; the write is not attempted, and the round-ack
		// sends everyone to the next epoch.
		code := int64(ackOK)
		if amAgg {
			if win := roundWindow(fds[myAgg], cb, m); !win.Empty() {
				msgs := make([]*mpi.Message, 0, len(recvReqs))
				for _, q := range recvReqs {
					msg, rerr := r.WaitDeadline(q, deadline)
					if rerr != nil {
						code = ackTimeout
						break
					}
					msgs = append(msgs, msg)
				}
				if code == ackOK {
					if err := f.packAndWrite(win, msgs, selfExts, segs, pre, data); err != nil {
						code = ackIOErr
						if firstErr == nil {
							firstErr = err
						}
					}
					f.Stats.CollRounds++
					mRounds.Inc()
				}
			}
		}

		// Round-ack: senders release this round's extents only when every
		// surviving aggregator confirms the round landed.
		res, err := c.TryAllreduce(r, []int64{code}, mpi.MaxOp)
		if err != nil {
			return fmt.Errorf("%w: %w", errEpochFailed, err)
		}
		switch res[0] {
		case ackIOErr:
			if firstErr == nil {
				firstErr = fmt.Errorf("adio: collective write failed on another rank")
			}
			return firstErr
		case ackTimeout:
			return fmt.Errorf("%w: %w in round %d", errEpochFailed, mpi.ErrRecvTimeout, m)
		}
		for a := 0; a < naggs; a++ {
			for _, e := range sendExts[a] {
				acked.Add(e)
			}
		}
	}

	// Final code exchange, as in the standard path.
	code := int64(ackOK)
	if firstErr != nil {
		code = ackIOErr
	}
	res, err := c.TryAllreduce(r, []int64{code}, mpi.MaxOp)
	if err != nil {
		return fmt.Errorf("%w: %w", errEpochFailed, err)
	}
	if res[0] != ackOK && firstErr == nil {
		firstErr = fmt.Errorf("adio: collective write failed on another rank")
	}
	return firstErr
}
