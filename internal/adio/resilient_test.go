package adio

import (
	"sync"
	"testing"

	"repro/internal/extent"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/store"
)

// resilientInfo arms the failover-capable collective write path.
var resilientInfo = mpi.Info{
	HintCBNodes:        "2",
	HintCBBufferSize:   "4096",
	HintResilientWrite: "enable",
}

// blockCyclic returns rank r's segments of an interleaved pattern: cycles
// chunks of chunk bytes each, with a per-byte value derived from (rank,
// cycle, offset) so any misplaced byte is detectable.
func blockCyclic(nranks, rank, chunk, cycles int) ([]extent.Extent, []byte) {
	var segs []extent.Extent
	var data []byte
	for i := 0; i < cycles; i++ {
		off := int64(i*nranks*chunk + rank*chunk)
		segs = append(segs, extent.Extent{Off: off, Len: int64(chunk)})
		for b := 0; b < chunk; b++ {
			data = append(data, byte(rank*31+i*7+b))
		}
	}
	return segs, data
}

// TestResilientWriteFaultFree checks the degraded-mode path is a drop-in
// replacement when nothing fails: same bytes, no failover epochs.
func TestResilientWriteFaultFree(t *testing.T) {
	const chunk, cycles = 1024, 4
	cl := newCluster(t, 1, 4, 2, store.NewMem)
	cl.w.SetCollTimeout(50 * sim.Millisecond)
	nranks := cl.w.Size()
	meta := writeColl(t, cl, resilientInfo, func(rank int) ([]extent.Extent, []byte) {
		return blockCyclic(nranks, rank, chunk, cycles)
	})
	got := make([]byte, meta.Size())
	meta.Store().ReadAt(got, 0)
	for rank := 0; rank < nranks; rank++ {
		segs, data := blockCyclic(nranks, rank, chunk, cycles)
		var cursor int64
		for _, s := range segs {
			for b := int64(0); b < s.Len; b++ {
				if got[s.Off+b] != data[cursor+b] {
					t.Fatalf("byte %d = %d, want %d", s.Off+b, got[s.Off+b], data[cursor+b])
				}
			}
			cursor += s.Len
		}
	}
}

// TestResilientWriteSurvivesAggregatorCrash is the acceptance scenario of
// the degraded-mode work: an aggregator node is killed in the middle of
// the two-phase loop, the survivors detect it via collective timeout,
// recompute file domains among themselves, and replay every unacked
// extent. Every surviving rank's bytes must reach the file intact (byte
// conservation across failover).
func TestResilientWriteSurvivesAggregatorCrash(t *testing.T) {
	const chunk, cycles = 16 << 10, 4
	cl := newCluster(t, 7, 4, 2, store.NewMem)
	// The timeout must exceed one round's aggregator I/O (~2ms at this
	// PFS config) or healthy rounds get misdiagnosed as failures.
	cl.w.SetCollTimeout(50 * sim.Millisecond)
	nranks := cl.w.Size()

	// With cb_nodes=2 over 8 ranks the aggregators are world ranks 0 and 4
	// (nodes 0 and 2). Kill node 2 once the two-phase loop is in flight:
	// the write starts after the (serialized) opens at ~2.4ms and runs for
	// well over 100ms of virtual time, so 20ms lands mid-round.
	const crashNode = 2
	crashAt := 20 * sim.Millisecond
	cl.k.After(crashAt, func() { cl.w.KillNode(crashNode) })

	var mu sync.Mutex
	var failovers int64
	survivorErrs := map[int]error{}
	err := cl.w.Run(func(r *mpi.Rank) {
		f, err := OpenColl(r, OpenArgs{
			Comm: cl.w.Comm(), Registry: cl.reg, Path: "out.dat", Create: true, Info: resilientInfo,
		})
		if err != nil {
			t.Error(err)
			return
		}
		segs, data := blockCyclic(nranks, r.ID(), chunk, cycles)
		werr := f.WriteStridedColl(segs, data)
		mu.Lock()
		survivorErrs[r.ID()] = werr
		if f.Stats.FailoverEpochs > failovers {
			failovers = f.Stats.FailoverEpochs
		}
		mu.Unlock()
		f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if failovers == 0 {
		t.Fatal("crash did not trigger a failover epoch; crash time missed the write window")
	}
	for id, werr := range survivorErrs {
		if cl.w.Alive(id) && werr != nil {
			t.Fatalf("surviving rank %d: write failed: %v", id, werr)
		}
	}

	meta := cl.fs.Lookup("out.dat")
	if meta == nil {
		t.Fatal("file not created")
	}
	got := make([]byte, int64(cycles*nranks*chunk))
	meta.Store().ReadAt(got, 0)
	for rank := 0; rank < nranks; rank++ {
		if !cl.w.Alive(rank) {
			continue // a dead rank's unsent data is legitimately lost
		}
		segs, data := blockCyclic(nranks, rank, chunk, cycles)
		var cursor int64
		for _, s := range segs {
			for b := int64(0); b < s.Len; b++ {
				if got[s.Off+b] != data[cursor+b] {
					t.Fatalf("survivor rank %d byte %d = %d, want %d (lost across failover)",
						rank, s.Off+b, got[s.Off+b], data[cursor+b])
				}
			}
			cursor += s.Len
		}
	}
}

// TestResilientWriteDeterministicPerSeed runs the crash scenario twice
// with the same seed and demands identical virtual end times: failover
// must be as replayable as the fault-free path.
func TestResilientWriteDeterministicPerSeed(t *testing.T) {
	run := func() sim.Time {
		const chunk, cycles = 16 << 10, 4
		cl := newCluster(t, 7, 4, 2, store.NewMem)
		cl.w.SetCollTimeout(50 * sim.Millisecond)
		nranks := cl.w.Size()
		cl.k.After(20*sim.Millisecond, func() { cl.w.KillNode(2) })
		if err := cl.w.Run(func(r *mpi.Rank) {
			f, err := OpenColl(r, OpenArgs{
				Comm: cl.w.Comm(), Registry: cl.reg, Path: "out.dat", Create: true, Info: resilientInfo,
			})
			if err != nil {
				t.Error(err)
				return
			}
			segs, data := blockCyclic(nranks, r.ID(), chunk, cycles)
			f.WriteStridedColl(segs, data)
			f.Close()
		}); err != nil {
			t.Fatal(err)
		}
		return cl.k.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("virtual end times differ across identical runs: %v vs %v", a, b)
	}
}
