package mpi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// runCollective executes body on a fresh world with the given collective
// model and returns per-rank outputs.
func runCollective(t *testing.T, nodes, perNode int, model CollModel,
	body func(c *Comm, r *Rank) []int64) [][]int64 {
	t.Helper()
	w := testWorld(t, nodes, perNode)
	c := w.Comm()
	c.SetCollModel(model)
	out := make([][]int64, w.Size())
	if err := w.Run(func(r *Rank) {
		out[r.ID()] = body(c, r)
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBarrierSynchronisesBothModels(t *testing.T) {
	for _, model := range []CollModel{Analytic, MessagePassing} {
		w := testWorld(t, 4, 2)
		c := w.Comm()
		c.SetCollModel(model)
		var after []sim.Time
		err := w.Run(func(r *Rank) {
			r.Compute(sim.Time(r.ID()) * sim.Millisecond) // skewed arrivals
			c.Barrier(r)
			after = append(after, r.Now())
		})
		if err != nil {
			t.Fatal(err)
		}
		maxArrival := sim.Time(7) * sim.Millisecond
		for _, a := range after {
			if a < maxArrival {
				t.Fatalf("model %v: rank left barrier at %v before slowest arrival %v", model, a, maxArrival)
			}
		}
	}
}

func TestAllreduceValues(t *testing.T) {
	for _, model := range []CollModel{Analytic, MessagePassing} {
		out := runCollective(t, 3, 2, model, func(c *Comm, r *Rank) []int64 {
			return c.Allreduce(r, []int64{int64(r.ID()), int64(-r.ID()), 1}, MaxOp)
		})
		for rank, v := range out {
			if v[0] != 5 || v[1] != 0 || v[2] != 1 {
				t.Fatalf("model %v rank %d: allreduce = %v", model, rank, v)
			}
		}
	}
}

func TestAllreduceSumAndMin(t *testing.T) {
	out := runCollective(t, 2, 2, MessagePassing, func(c *Comm, r *Rank) []int64 {
		s := c.Allreduce(r, []int64{int64(r.ID() + 1)}, SumOp)
		m := c.Allreduce(r, []int64{int64(r.ID() + 1)}, MinOp)
		return []int64{s[0], m[0]}
	})
	for rank, v := range out {
		if v[0] != 10 || v[1] != 1 {
			t.Fatalf("rank %d: sum=%d min=%d", rank, v[0], v[1])
		}
	}
}

func TestAllgatherValues(t *testing.T) {
	for _, model := range []CollModel{Analytic, MessagePassing} {
		w := testWorld(t, 2, 2)
		c := w.Comm()
		c.SetCollModel(model)
		results := make([][][]int64, w.Size())
		err := w.Run(func(r *Rank) {
			results[r.ID()] = c.Allgather(r, []int64{int64(r.ID() * 10), int64(r.ID())})
		})
		if err != nil {
			t.Fatal(err)
		}
		for rank, res := range results {
			for i, v := range res {
				if v[0] != int64(i*10) || v[1] != int64(i) {
					t.Fatalf("model %v rank %d: allgather[%d] = %v", model, rank, i, v)
				}
			}
		}
	}
}

func TestAlltoallValues(t *testing.T) {
	for _, model := range []CollModel{Analytic, MessagePassing} {
		w := testWorld(t, 5, 1)
		c := w.Comm()
		c.SetCollModel(model)
		results := make([][]int64, w.Size())
		err := w.Run(func(r *Rank) {
			send := make([]int64, c.Size())
			for i := range send {
				send[i] = int64(r.ID()*100 + i)
			}
			results[r.ID()] = c.Alltoall(r, send)
		})
		if err != nil {
			t.Fatal(err)
		}
		for me, recv := range results {
			for src, v := range recv {
				if want := int64(src*100 + me); v != want {
					t.Fatalf("model %v: recv[%d][%d] = %d, want %d", model, me, src, v, want)
				}
			}
		}
	}
}

func TestBcastValues(t *testing.T) {
	for _, model := range []CollModel{Analytic, MessagePassing} {
		for root := 0; root < 3; root++ {
			out := runCollective(t, 3, 1, model, func(c *Comm, r *Rank) []int64 {
				var vals []int64
				if c.RankOf(r) == root {
					vals = []int64{42, 43}
				}
				return c.Bcast(r, root, vals)
			})
			for rank, v := range out {
				if len(v) != 2 || v[0] != 42 || v[1] != 43 {
					t.Fatalf("model %v root %d rank %d: bcast = %v", model, root, rank, v)
				}
			}
		}
	}
}

func TestSubCommunicator(t *testing.T) {
	w := testWorld(t, 4, 1)
	sub := w.NewComm([]int{1, 3}) // aggregator-style subset
	results := make(map[int]int64)
	err := w.Run(func(r *Rank) {
		if sub.RankOf(r) < 0 {
			return
		}
		v := sub.Allreduce(r, []int64{int64(r.ID())}, SumOp)
		results[r.ID()] = v[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[1] != 4 || results[3] != 4 {
		t.Fatalf("sub-comm allreduce = %v", results)
	}
}

func TestSingleRankCollectivesAreFree(t *testing.T) {
	w := testWorld(t, 1, 1)
	err := w.Run(func(r *Rank) {
		c := w.Comm()
		c.Barrier(r)
		v := c.Allreduce(r, []int64{9}, MaxOp)
		g := c.Allgather(r, []int64{7})
		a := c.Alltoall(r, []int64{5})
		if v[0] != 9 || g[0][0] != 7 || a[0] != 5 {
			t.Error("single-rank collectives wrong")
		}
		if r.Now() != 0 {
			t.Errorf("single-rank collectives must cost nothing, took %v", r.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMismatchedCollectivesPanic(t *testing.T) {
	w := testWorld(t, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched collectives")
		}
	}()
	_ = w.Run(func(r *Rank) {
		c := w.Comm()
		if r.ID() == 0 {
			c.Barrier(r)
		} else {
			c.Allreduce(r, []int64{1}, MaxOp)
		}
	})
}

// Property: analytic and message-passing modes produce identical data
// results for random inputs (timings differ, semantics must not).
func TestCollectiveModelsAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(6) + 2 // 2..7 ranks
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = r.Int63n(1000) - 500
		}
		run := func(model CollModel) ([][]int64, [][]int64) {
			k := sim.NewKernel(seed)
			f := netsim.New(k, netsim.Config{Nodes: n, InjRate: sim.GBps, EjeRate: sim.GBps, Latency: sim.Microsecond, MemRate: 10 * sim.GBps})
			w := NewWorld(k, f, 1)
			c := w.Comm()
			c.SetCollModel(model)
			red := make([][]int64, n)
			a2a := make([][]int64, n)
			if err := w.Run(func(rk *Rank) {
				red[rk.ID()] = c.Allreduce(rk, []int64{vals[rk.ID()]}, MaxOp)
				send := make([]int64, n)
				for i := range send {
					send[i] = vals[rk.ID()] * int64(i+1)
				}
				a2a[rk.ID()] = c.Alltoall(rk, send)
			}); err != nil {
				t.Fatal(err)
			}
			return red, a2a
		}
		ra, aa := run(Analytic)
		rm, am := run(MessagePassing)
		for i := range ra {
			if ra[i][0] != rm[i][0] {
				return false
			}
			for j := range aa[i] {
				if aa[i][j] != am[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyticAlltoallScalesWithCommSize(t *testing.T) {
	cost := func(n int) sim.Time {
		w := testWorld(t, n, 1)
		c := w.Comm()
		var end sim.Time
		if err := w.Run(func(r *Rank) {
			send := make([]int64, n)
			c.Alltoall(r, send)
			end = r.Now()
		}); err != nil {
			t.Fatal(err)
		}
		return end
	}
	if c4, c16 := cost(4), cost(16); c16 <= c4 {
		t.Fatalf("alltoall cost must grow with comm size: %v vs %v", c4, c16)
	}
}
