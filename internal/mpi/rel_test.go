package mpi

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// testWorldSeed is testWorld with a controllable kernel seed (the lossy
// link draws from the kernel RNG).
func testWorldSeed(t *testing.T, seed int64, nodes, perNode int) *World {
	t.Helper()
	k := sim.NewKernel(seed)
	f := netsim.New(k, netsim.Config{
		Nodes: nodes, InjRate: 1 * sim.GBps, EjeRate: 1 * sim.GBps,
		Latency: 10 * sim.Microsecond, MemRate: 10 * sim.GBps,
	})
	return NewWorld(k, f, perNode)
}

func TestReliableDeliveryUnderLoss(t *testing.T) {
	// A 30% lossy link must not lose a single one of 50 messages once the
	// reliable layer is on: every drop is retransmitted until delivered.
	w := testWorldSeed(t, 3, 2, 1)
	w.EnableReliable(ReliableConfig{})
	w.Kernel().Rand() // fabric built; arm loss directly
	w.fabric.Node(0).SetLossy(0.3)
	const n = 50
	var got []int64
	err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			for i := 0; i < n; i++ {
				r.Send(1, 7, Message{Vals: []int64{int64(i)}})
			}
		case 1:
			for i := 0; i < n; i++ {
				m := r.Recv(0, 7)
				got = append(got, m.Vals[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("received %d messages, want %d", len(got), n)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("got[%d] = %d (stream reordered or lost)", i, v)
		}
	}
	if w.Retransmits() == 0 {
		t.Fatal("a 30% lossy link must force at least one retransmit")
	}
	if w.Outstanding() != 0 {
		t.Fatalf("%d messages still retained after all were acked", w.Outstanding())
	}
}

func TestReliableDedupUnderDuplication(t *testing.T) {
	w := testWorldSeed(t, 5, 2, 1)
	w.EnableReliable(ReliableConfig{})
	w.fabric.Node(0).SetDup(0.5)
	const n = 40
	recvd := 0
	err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			for i := 0; i < n; i++ {
				r.Send(1, 9, Message{Size: 64})
			}
			r.Compute(50 * sim.Millisecond) // let stray duplicates land
		case 1:
			for i := 0; i < n; i++ {
				r.Recv(0, 9)
				recvd++
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if recvd != n {
		t.Fatalf("received %d, want exactly %d", recvd, n)
	}
	if w.DedupDrops() == 0 {
		t.Fatal("a 50% dup link must force at least one dedup")
	}
}

func TestUnreliableDupDeliversTwice(t *testing.T) {
	// Without the reliable layer a duplicated message really arrives twice
	// — the fault is observable, which is what the chaos oracles rely on.
	w := testWorldSeed(t, 5, 2, 1)
	w.fabric.Node(0).SetDup(0.9)
	extra := 0
	err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			for i := 0; i < 10; i++ {
				r.Send(1, 3, Message{Size: 8})
			}
		case 1:
			for i := 0; i < 10; i++ {
				r.Recv(0, 3)
			}
			r.Compute(10 * sim.Millisecond)
			for {
				req := r.Irecv(0, 3)
				if !req.Done() {
					r.cancelRecv(req)
					break
				}
				extra++
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if extra == 0 {
		t.Fatal("90% dup link with no dedup must deliver extra copies")
	}
}

func TestRetransmitGivesUpUnderPermanentPartition(t *testing.T) {
	// With the destination unreachable forever, the retransmit budget must
	// drain and the sender must release the retained message — the run ends
	// instead of looping.
	w := testWorldSeed(t, 1, 2, 1)
	w.EnableReliable(ReliableConfig{RetransmitAfter: sim.Millisecond, MaxAttempts: 3})
	w.fabric.SetPartition([]int{1}, true)
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			req := r.Isend(1, 5, Message{Size: 128})
			r.Wait(req) // eager: completes at injection even though dst is cut off
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Outstanding() != 0 {
		t.Fatalf("%d messages retained after the retransmit budget drained", w.Outstanding())
	}
	if w.rel.giveUps != 1 {
		t.Fatalf("giveUps = %d, want 1", w.rel.giveUps)
	}
}

func TestWaitDeadlineTimesOutAndCancels(t *testing.T) {
	w := testWorld(t, 2, 1)
	var waitErr error
	var lateDelivered bool
	err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Compute(20 * sim.Millisecond) // miss rank 1's deadline
			r.Send(1, 4, Message{Size: 8})
		case 1:
			req := r.Irecv(0, 4)
			_, waitErr = r.WaitDeadline(req, 5*sim.Millisecond)
			r.Compute(30 * sim.Millisecond)
			// The late message must not have completed the abandoned
			// request; it sits in the unexpected queue instead.
			lateDelivered = req.Done()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(waitErr, ErrRecvTimeout) {
		t.Fatalf("WaitDeadline error = %v, want ErrRecvTimeout", waitErr)
	}
	if lateDelivered {
		t.Fatal("late message completed a cancelled receive")
	}
}

func TestWaitDeadlineFastPathNoPerturbation(t *testing.T) {
	// When the message arrives in time, WaitDeadline must be
	// indistinguishable from Wait: same final virtual time, same event
	// count (the cancelled deadline timer leaves no footprint).
	run := func(deadline bool) (sim.Time, int64) {
		w := testWorld(t, 2, 1)
		err := w.Run(func(r *Rank) {
			switch r.ID() {
			case 0:
				r.Send(1, 4, Message{Size: 1024})
			case 1:
				req := r.Irecv(0, 4)
				if deadline {
					if _, err := r.WaitDeadline(req, sim.Second); err != nil {
						t.Errorf("WaitDeadline: %v", err)
					}
				} else {
					r.Wait(req)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Kernel().Now(), w.Kernel().EventsDispatched()
	}
	plainNow, plainEvents := run(false)
	dlNow, dlEvents := run(true)
	if plainNow != dlNow || plainEvents != dlEvents {
		t.Fatalf("WaitDeadline fast path perturbs the run: (%v, %d) vs (%v, %d)",
			dlNow, dlEvents, plainNow, plainEvents)
	}
}

func TestCollectiveTimeoutOnDeadRank(t *testing.T) {
	// Rank 1 dies before the barrier; with a collective timeout armed the
	// survivors get a typed error naming the missing rank instead of
	// deadlocking.
	w := testWorld(t, 2, 2)
	w.SetCollTimeout(10 * sim.Millisecond)
	errs := make([]error, w.Size())
	err := w.Run(func(r *Rank) {
		if r.ID() == 1 {
			w.Kill(1)
		}
		r.checkKilled()
		errs[r.ID()] = w.Comm().TryBarrier(r)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 2, 3} {
		e := errs[id]
		if !errors.Is(e, ErrCollTimeout) {
			t.Fatalf("rank %d barrier error = %v, want ErrCollTimeout", id, e)
		}
		var cte *CollTimeoutError
		if !errors.As(e, &cte) || len(cte.Missing) != 1 || cte.Missing[0] != 1 {
			t.Fatalf("rank %d timeout error %v must name missing rank 1", id, e)
		}
	}
}

func TestCollectiveHeldAcrossPartitionHeals(t *testing.T) {
	// A barrier spanning a partition must hold (not complete) while the cut
	// is up, then complete for everyone once it heals — before the generous
	// timeout fires.
	w := testWorld(t, 2, 1)
	w.SetCollTimeout(sim.Second)
	w.fabric.SetPartition([]int{1}, true)
	w.Kernel().After(50*sim.Millisecond, func() {
		w.fabric.SetPartition(nil, false)
	})
	done := make([]sim.Time, 2)
	errs := make([]error, 2)
	err := w.Run(func(r *Rank) {
		errs[r.ID()] = w.Comm().TryBarrier(r)
		done[r.ID()] = r.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 2; id++ {
		if errs[id] != nil {
			t.Fatalf("rank %d barrier error = %v, want nil (partition healed in time)", id, errs[id])
		}
		if done[id] < 50*sim.Millisecond {
			t.Fatalf("rank %d finished at %v, before the partition healed", id, done[id])
		}
	}
}

func TestCollectiveTimeoutUnderPermanentPartition(t *testing.T) {
	w := testWorld(t, 2, 1)
	w.SetCollTimeout(20 * sim.Millisecond)
	w.fabric.SetPartition([]int{1}, true)
	errs := make([]error, 2)
	err := w.Run(func(r *Rank) {
		_, errs[r.ID()] = w.Comm().TryAllreduce(r, []int64{int64(r.ID())}, SumOp)
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 2; id++ {
		if !errors.Is(errs[id], ErrCollTimeout) {
			t.Fatalf("rank %d allreduce error = %v, want ErrCollTimeout", id, errs[id])
		}
	}
}

func TestKillUnwindsParkedRank(t *testing.T) {
	// Kill a rank parked in Recv: its process must end cleanly (no
	// deadlock) and messages to it must be discarded.
	w := testWorld(t, 2, 1)
	err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Compute(5 * sim.Millisecond)
			w.Kill(1)
			r.Compute(5 * sim.Millisecond)
			r.Send(1, 8, Message{Size: 16}) // discarded at delivery
		case 1:
			r.Recv(0, 8)
			t.Error("killed rank returned from Recv")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Alive(1) {
		t.Fatal("Alive(1) = true after Kill")
	}
}

func TestKillNodeKillsAllRanksOnNode(t *testing.T) {
	w := testWorld(t, 2, 2)
	w.KillNode(1)
	for id := 0; id < 4; id++ {
		want := id < 2
		if w.Alive(id) != want {
			t.Fatalf("Alive(%d) = %v, want %v", id, w.Alive(id), want)
		}
	}
}

func TestReliableNoFaultsNoPerturbation(t *testing.T) {
	// The determinism regression at the MPI layer: with the reliable layer
	// and collective timeouts armed but no faults scheduled, sequence
	// numbers, retention, acks and cancelled timers must leave virtual time
	// and the event count untouched.
	run := func(reliable bool) (sim.Time, int64) {
		w := testWorld(t, 2, 2)
		if reliable {
			w.EnableReliable(ReliableConfig{})
			w.SetCollTimeout(sim.Second)
		}
		err := w.Run(func(r *Rank) {
			peer := (r.ID() + 2) % 4 // cross-node pairs
			req := r.Irecv(peer, 1)
			r.Send(peer, 1, Message{Size: 4096})
			r.Wait(req)
			w.Comm().Barrier(r)
			r.Send(peer, 2, Message{Vals: []int64{int64(r.ID())}})
			r.Recv(peer, 2)
			w.Comm().Allreduce(r, []int64{int64(r.ID())}, SumOp)
		})
		if err != nil {
			t.Fatal(err)
		}
		if reliable && w.Retransmits() != 0 {
			t.Fatalf("fault-free run retransmitted %d messages", w.Retransmits())
		}
		return w.Kernel().Now(), w.Kernel().EventsDispatched()
	}
	offNow, offEvents := run(false)
	onNow, onEvents := run(true)
	if offNow != onNow || offEvents != onEvents {
		t.Fatalf("reliable layer perturbs fault-free run: (%v, %d) vs (%v, %d)",
			onNow, onEvents, offNow, offEvents)
	}
}

func TestReliableDeterministicPerSeed(t *testing.T) {
	// Two runs of the same seed under loss must be byte-identical: same
	// final time, same retransmit count.
	run := func() (sim.Time, int64) {
		w := testWorldSeed(t, 11, 2, 1)
		w.EnableReliable(ReliableConfig{})
		w.fabric.Node(0).SetLossy(0.2)
		err := w.Run(func(r *Rank) {
			switch r.ID() {
			case 0:
				for i := 0; i < 20; i++ {
					r.Send(1, 6, Message{Size: 256})
				}
			case 1:
				for i := 0; i < 20; i++ {
					r.Recv(0, 6)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Kernel().Now(), w.Retransmits()
	}
	n1, r1 := run()
	n2, r2 := run()
	if n1 != n2 || r1 != r2 {
		t.Fatalf("seeded lossy run not reproducible: (%v, %d) vs (%v, %d)", n1, r1, n2, r2)
	}
}

func TestNewSharedCommScopesAreDistinct(t *testing.T) {
	w := testWorld(t, 2, 1)
	members := []int{0, 1}
	a := w.NewSharedComm(members, "epoch0")
	b := w.NewSharedComm(members, "epoch1")
	if a == b {
		t.Fatal("distinct scopes must yield distinct communicators")
	}
	if a != w.NewSharedComm(members, "epoch0") {
		t.Fatal("same scope must intern to the same communicator")
	}
	_ = fmt.Sprint(a, b)
}
