// Package mpi implements the message-passing substrate the reproduction
// runs on: a World of ranks mapped onto simulated compute nodes, MPI-style
// point-to-point communication with (source, tag) matching and nonblocking
// requests, generalized requests (MPI_Grequest), Info objects for hints,
// and the collectives used by ROMIO's extended two-phase algorithm.
//
// Ranks are simulation processes. Message transfers contend for the node
// NICs modelled by package netsim, so 8 ranks per node share injection
// bandwidth exactly as in the paper's testbed (512 processes on 64 nodes).
package mpi

import (
	"errors"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// World is the set of all ranks (MPI_COMM_WORLD).
type World struct {
	k        *sim.Kernel
	fabric   *netsim.Fabric
	ranks    []*Rank
	perNode  int
	comm     *Comm
	interned map[string]*Comm // Split results, shared across members

	rel         *relState    // reliable-delivery layer, nil when disabled
	collTimeout sim.Time     // collective timeout; 0 = wait forever
	heldColl    []*collState // collectives held open by a partition
	onChangeReg bool         // partition observer registered
	dead        map[int]bool // ranks removed by Kill

	// Per-rank collective accounting: calls entered vs calls completed.
	// A live rank with started != done after the run is wedged inside a
	// collective — the chaos harness's no_stuck_collective oracle.
	collStarted []int64
	collDone    []int64

	// Per-message metric handles, registered lazily on first use (the
	// registry may be attached to the kernel after the world is built).
	// Resolving a handle through the registry canonicalizes the label set
	// on every call; caching keeps the per-message cost at one branch.
	mreg      bool
	mP2PMsgs  *metrics.Counter
	mP2PBytes *metrics.Counter
	mP2PNs    *metrics.Histogram
	collM     map[string]collMetrics // per-op collective metric handles
}

// metricsOn resolves (and caches) the world's per-message metric handles;
// it returns false when metrics are disabled.
func (w *World) metricsOn() bool {
	m := w.k.Metrics()
	if m == nil {
		return false
	}
	if !w.mreg {
		layer := metrics.L(metrics.KeyLayer, "mpi")
		w.mP2PMsgs = m.Counter("mpi_p2p_msgs_total", layer)
		w.mP2PBytes = m.Counter("mpi_p2p_bytes_total", layer)
		w.mP2PNs = m.Histogram("mpi_p2p_ns", layer)
		w.mreg = true
	}
	return true
}

// NewWorld creates ranksPerNode ranks on every node of the fabric, in
// node-major order (ranks 0..perNode-1 on node 0, and so on), matching the
// block process placement used in the paper's experiments.
func NewWorld(k *sim.Kernel, fabric *netsim.Fabric, ranksPerNode int) *World {
	return NewWorldOn(k, fabric, ranksPerNode, fabric.Nodes())
}

// NewWorldOn places ranks on the first computeNodes nodes only, leaving
// the remaining fabric endpoints for dedicated servers (e.g. burst-buffer
// proxies).
func NewWorldOn(k *sim.Kernel, fabric *netsim.Fabric, ranksPerNode, computeNodes int) *World {
	if ranksPerNode < 1 {
		panic("mpi: need at least one rank per node")
	}
	if computeNodes < 1 || computeNodes > fabric.Nodes() {
		panic("mpi: compute node count out of range")
	}
	w := &World{
		k: k, fabric: fabric, perNode: ranksPerNode,
		interned: make(map[string]*Comm),
		dead:     make(map[int]bool),
	}
	n := computeNodes * ranksPerNode
	for i := 0; i < n; i++ {
		w.ranks = append(w.ranks, &Rank{
			w:    w,
			id:   i,
			node: fabric.Node(i / ranksPerNode),
		})
	}
	w.comm = newComm(w, w.ranks)
	w.collStarted = make([]int64, n)
	w.collDone = make([]int64, n)
	return w
}

// CollBalance returns how many collective calls rank id entered and how
// many it completed (normally or with a surfaced error). The two differ
// only while the rank is inside a collective — or, after the run, when it
// is wedged in one forever.
func (w *World) CollBalance(id int) (started, done int64) {
	return w.collStarted[id], w.collDone[id]
}

// SkewCollAccounting artificially unbalances rank id's collective
// accounting, as if the rank had entered a collective and never returned.
// The chaos harness uses it to regression-test its no_stuck_collective
// oracle; real code has no business calling it.
func (w *World) SkewCollAccounting(id int) { w.collStarted[id]++ }

// Kernel returns the simulation kernel.
func (w *World) Kernel() *sim.Kernel { return w.k }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// RanksPerNode returns the process-per-node count.
func (w *World) RanksPerNode() int { return w.perNode }

// Rank returns rank i's handle (for inspection; MPI calls must run on the
// rank's own process).
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Comm returns the world communicator.
func (w *World) Comm() *Comm { return w.comm }

// Run spawns every rank executing body and drives the simulation to
// completion. It is the moral equivalent of mpirun.
func (w *World) Run(body func(r *Rank)) error {
	for _, r := range w.ranks {
		r := r
		w.k.Spawn(fmt.Sprintf("rank%d", r.id), func(p *sim.Proc) {
			// A killed rank unwinds via the errKilled panic sentinel; its
			// process ends here as if the node's OS reaped it.
			defer func() {
				if rec := recover(); rec != nil && rec != errKilled {
					panic(rec)
				}
			}()
			r.proc = p
			if tr := w.k.Tracer(); tr != nil {
				p.SetTraceTrack(r.TraceTrack(tr))
			}
			body(r)
		})
	}
	return w.k.Run()
}

// errKilled unwinds a killed rank's process from inside an MPI call. It is
// recovered by the Run wrapper, never seen by applications.
var errKilled = errors.New("mpi: rank killed")

// Kill removes rank id from the world, modelling its process dying with the
// node: a rank parked inside an MPI call (Wait or a collective) is unwound
// immediately; a rank busy elsewhere dies at its next MPI call. Messages
// addressed to a dead rank are discarded. Killing a dead rank is a no-op.
func (w *World) Kill(id int) {
	if w.dead[id] {
		return
	}
	w.dead[id] = true
	r := w.ranks[id]
	if r.proc == nil {
		return // never started
	}
	switch {
	case r.waitReq != nil:
		// Detach from the request so a later completion does not wake a
		// corpse, then unwind the rank.
		r.waitReq.waiter = nil
		r.waitReq = nil
		w.k.Wake(r.proc)
	case r.collSt != nil:
		// Drop out of the rendezvous wait list; the rank's contribution
		// (already recorded) stands, so survivors still complete.
		st := r.collSt
		r.collSt = nil
		for i, wr := range st.waiters {
			if wr == r {
				st.waiters = append(st.waiters[:i], st.waiters[i+1:]...)
				break
			}
		}
		w.k.Wake(r.proc)
	}
	// Ranks parked elsewhere (NIC/device stations, sleeps) finish that
	// operation and die at the next MPI checkpoint.
}

// KillNode kills every rank hosted on the given node.
func (w *World) KillNode(node int) {
	for _, r := range w.ranks {
		if r.node.ID() == node {
			w.Kill(r.id)
		}
	}
}

// Alive reports whether rank id has not been killed.
func (w *World) Alive(id int) bool { return !w.dead[id] }

// checkKilled is the per-call death checkpoint: a dead rank entering (or
// resuming inside) an MPI call unwinds instead of proceeding.
func (r *Rank) checkKilled() {
	if r.w.dead[r.id] {
		panic(errKilled)
	}
}

// SetCollTimeout bounds how long a collective waits for its last arrival
// (and for any network partition cutting the communicator to heal) before
// failing all participants with a *CollTimeoutError. d = 0 (the default)
// restores wait-forever semantics. The timeout is armed per collective via
// a cancellable kernel timer, so on the fault-free path — where every
// collective completes and stops its timer — virtual time, event counts
// and the golden trace are byte-identical to a world without timeouts.
func (w *World) SetCollTimeout(d sim.Time) {
	w.collTimeout = d
	if d > 0 && !w.onChangeReg {
		w.fabric.OnChange(w.recheckHeld)
		w.onChangeReg = true
	}
}

// CollTimeout returns the configured collective timeout (0 = disabled).
func (w *World) CollTimeout() sim.Time { return w.collTimeout }

// Rank is one MPI process.
type Rank struct {
	w     *World
	id    int
	node  *netsim.Node
	proc  *sim.Proc
	mbox  mailbox
	ttk   trace.TrackID
	ttReg bool

	// Tracked park sites, so Kill can unwind a rank blocked inside an MPI
	// call without double-resuming processes parked elsewhere.
	waitReq *Request   // non-nil while parked in Wait
	collSt  *collState // non-nil while parked in a collective rendezvous
}

// TraceTrack lazily registers and returns this rank's trace timeline.
func (r *Rank) TraceTrack(tr *trace.Tracer) trace.TrackID {
	if tr == nil {
		return trace.NoTrack
	}
	if !r.ttReg {
		r.ttk = tr.Track(trace.GroupRanks, fmt.Sprintf("rank %d", r.id))
		r.ttReg = true
	}
	return r.ttk
}

// ID returns the world rank number.
func (r *Rank) ID() int { return r.id }

// World returns the owning world.
func (r *Rank) World() *World { return r.w }

// Node returns the compute node hosting this rank.
func (r *Rank) Node() *netsim.Node { return r.node }

// Proc returns the rank's simulation process. It is only valid inside the
// body function passed to World.Run.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Wtime returns the current virtual time in seconds (MPI_Wtime).
func (r *Rank) Wtime() float64 { return r.proc.Now().Seconds() }

// Now returns the current virtual time.
func (r *Rank) Now() sim.Time { return r.proc.Now() }

// Compute blocks the rank for d of virtual time, emulating a computation
// phase (the benchmarks' --compute-delay).
func (r *Rank) Compute(d sim.Time) { r.proc.Sleep(d) }

// Info is an MPI_Info object: a string-keyed hint dictionary.
type Info map[string]string

// Get returns the hint value and whether it was set.
func (i Info) Get(key string) (string, bool) {
	if i == nil {
		return "", false
	}
	v, ok := i[key]
	return v, ok
}

// GetDefault returns the hint value, or def when unset.
func (i Info) GetDefault(key, def string) string {
	if v, ok := i.Get(key); ok {
		return v
	}
	return def
}

// Set stores a hint.
func (i Info) Set(key, value string) { i[key] = value }

// Clone returns a copy of the info object.
func (i Info) Clone() Info {
	out := make(Info, len(i))
	for k, v := range i {
		out[k] = v
	}
	return out
}
