// Package mpi implements the message-passing substrate the reproduction
// runs on: a World of ranks mapped onto simulated compute nodes, MPI-style
// point-to-point communication with (source, tag) matching and nonblocking
// requests, generalized requests (MPI_Grequest), Info objects for hints,
// and the collectives used by ROMIO's extended two-phase algorithm.
//
// Ranks are simulation processes. Message transfers contend for the node
// NICs modelled by package netsim, so 8 ranks per node share injection
// bandwidth exactly as in the paper's testbed (512 processes on 64 nodes).
package mpi

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// World is the set of all ranks (MPI_COMM_WORLD).
type World struct {
	k        *sim.Kernel
	fabric   *netsim.Fabric
	ranks    []*Rank
	perNode  int
	comm     *Comm
	interned map[string]*Comm // Split results, shared across members
}

// NewWorld creates ranksPerNode ranks on every node of the fabric, in
// node-major order (ranks 0..perNode-1 on node 0, and so on), matching the
// block process placement used in the paper's experiments.
func NewWorld(k *sim.Kernel, fabric *netsim.Fabric, ranksPerNode int) *World {
	return NewWorldOn(k, fabric, ranksPerNode, fabric.Nodes())
}

// NewWorldOn places ranks on the first computeNodes nodes only, leaving
// the remaining fabric endpoints for dedicated servers (e.g. burst-buffer
// proxies).
func NewWorldOn(k *sim.Kernel, fabric *netsim.Fabric, ranksPerNode, computeNodes int) *World {
	if ranksPerNode < 1 {
		panic("mpi: need at least one rank per node")
	}
	if computeNodes < 1 || computeNodes > fabric.Nodes() {
		panic("mpi: compute node count out of range")
	}
	w := &World{k: k, fabric: fabric, perNode: ranksPerNode, interned: make(map[string]*Comm)}
	n := computeNodes * ranksPerNode
	for i := 0; i < n; i++ {
		w.ranks = append(w.ranks, &Rank{
			w:    w,
			id:   i,
			node: fabric.Node(i / ranksPerNode),
		})
	}
	w.comm = newComm(w, w.ranks)
	return w
}

// Kernel returns the simulation kernel.
func (w *World) Kernel() *sim.Kernel { return w.k }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// RanksPerNode returns the process-per-node count.
func (w *World) RanksPerNode() int { return w.perNode }

// Rank returns rank i's handle (for inspection; MPI calls must run on the
// rank's own process).
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Comm returns the world communicator.
func (w *World) Comm() *Comm { return w.comm }

// Run spawns every rank executing body and drives the simulation to
// completion. It is the moral equivalent of mpirun.
func (w *World) Run(body func(r *Rank)) error {
	for _, r := range w.ranks {
		r := r
		w.k.Spawn(fmt.Sprintf("rank%d", r.id), func(p *sim.Proc) {
			r.proc = p
			if tr := w.k.Tracer(); tr != nil {
				p.SetTraceTrack(r.TraceTrack(tr))
			}
			body(r)
		})
	}
	return w.k.Run()
}

// Rank is one MPI process.
type Rank struct {
	w     *World
	id    int
	node  *netsim.Node
	proc  *sim.Proc
	mbox  mailbox
	ttk   trace.TrackID
	ttReg bool
}

// TraceTrack lazily registers and returns this rank's trace timeline.
func (r *Rank) TraceTrack(tr *trace.Tracer) trace.TrackID {
	if tr == nil {
		return trace.NoTrack
	}
	if !r.ttReg {
		r.ttk = tr.Track(trace.GroupRanks, fmt.Sprintf("rank %d", r.id))
		r.ttReg = true
	}
	return r.ttk
}

// ID returns the world rank number.
func (r *Rank) ID() int { return r.id }

// World returns the owning world.
func (r *Rank) World() *World { return r.w }

// Node returns the compute node hosting this rank.
func (r *Rank) Node() *netsim.Node { return r.node }

// Proc returns the rank's simulation process. It is only valid inside the
// body function passed to World.Run.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Wtime returns the current virtual time in seconds (MPI_Wtime).
func (r *Rank) Wtime() float64 { return r.proc.Now().Seconds() }

// Now returns the current virtual time.
func (r *Rank) Now() sim.Time { return r.proc.Now() }

// Compute blocks the rank for d of virtual time, emulating a computation
// phase (the benchmarks' --compute-delay).
func (r *Rank) Compute(d sim.Time) { r.proc.Sleep(d) }

// Info is an MPI_Info object: a string-keyed hint dictionary.
type Info map[string]string

// Get returns the hint value and whether it was set.
func (i Info) Get(key string) (string, bool) {
	if i == nil {
		return "", false
	}
	v, ok := i[key]
	return v, ok
}

// GetDefault returns the hint value, or def when unset.
func (i Info) GetDefault(key, def string) string {
	if v, ok := i.Get(key); ok {
		return v
	}
	return def
}

// Set stores a hint.
func (i Info) Set(key, value string) { i[key] = value }

// Clone returns a copy of the info object.
func (i Info) Clone() Info {
	out := make(Info, len(i))
	for k, v := range i {
		out[k] = v
	}
	return out
}
