package mpi

import (
	"errors"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// This file is the reliable-delivery layer: per-(src, dst, tag) stream
// sequence numbers assigned at Isend, sender-side retention of every
// in-flight message until the receiver's ack, retransmission on loss with
// capped exponential backoff and a bounded attempt budget, and
// receiver-side dedup of duplicated (or re-delivered) copies.
//
// Acks are modelled as zero-cost control-plane messages: the receiving NIC
// acknowledges synchronously at delivery time, and acks are never lost.
// This is deliberately simpler than a full sliding-window protocol — the
// simulator decides a message's fate (deliver/drop/duplicate) at send time,
// so a retransmit timer only ever needs to be armed for messages that were
// actually lost, and a successfully delivered message is acked exactly
// once. The observable behaviour is that of a correctly tuned reliable
// transport: no spurious retransmits, no perturbation of fault-free runs,
// and bounded retransmission under loss or partition.

// ErrRecvTimeout is returned by WaitDeadline when no matching message
// arrives within the deadline.
var ErrRecvTimeout = errors.New("mpi: receive timed out")

// ReliableConfig tunes the reliable-delivery layer. Zero fields take the
// defaults below.
type ReliableConfig struct {
	RetransmitAfter sim.Time // initial retransmit backoff (default 10ms)
	BackoffCap      sim.Time // backoff ceiling (default 80ms)
	MaxAttempts     int      // retransmits per message before giving up (default 8)
}

// Defaults for ReliableConfig.
const (
	DefaultRetransmitAfter = 10 * sim.Millisecond
	DefaultBackoffCap      = 80 * sim.Millisecond
	DefaultMaxAttempts     = 8
)

// relKey identifies one message stream.
type relKey struct {
	src, dst, tag int
}

// outMsg is one unacked message retained by the sender.
type outMsg struct {
	msg      Message
	attempts int      // retransmissions so far
	backoff  sim.Time // next retransmit delay
	timer    *sim.Timer
}

// relState is the world-wide reliable-transport bookkeeping (the simulation
// is single-threaded, so one shared structure stands in for every rank's
// protocol endpoint).
type relState struct {
	cfg         ReliableConfig
	nextSeq     map[relKey]uint64              // sender: next seq per stream
	outstanding map[relKey]map[uint64]*outMsg  // sender: unacked messages
	nextDeliver map[relKey]uint64              // receiver: next in-order seq
	pending     map[relKey]map[uint64]*Message // receiver: out-of-order buffer
	retransmits int64
	dedups      int64
	giveUps     int64

	// free is the outMsg recycle list. Every inter-node message allocates
	// one retention record; on kilo-rank runs that is one allocation per
	// message unless released records are reused. The simulation is
	// single-threaded, so a plain stack works.
	free []*outMsg
}

// getOut returns a retention record for m, reusing a released one when
// possible.
func (rel *relState) getOut(m Message) *outMsg {
	if n := len(rel.free); n > 0 {
		om := rel.free[n-1]
		rel.free = rel.free[:n-1]
		*om = outMsg{msg: m, backoff: rel.cfg.RetransmitAfter}
		return om
	}
	return &outMsg{msg: m, backoff: rel.cfg.RetransmitAfter}
}

// putOut releases om for reuse, dropping its payload reference. Safe
// against the stale-timer race: a recycled record can never be re-keyed
// under its old (stream, seq) — sequence numbers are never reused — so
// the pointer-identity check in the retransmit callback stays sound.
func (rel *relState) putOut(om *outMsg) {
	*om = outMsg{}
	rel.free = append(rel.free, om)
}

// EnableReliable arms the reliable-delivery layer for all inter-node
// point-to-point traffic (same-node messages never touch the wire and need
// no protection). Must be called before Run.
func (w *World) EnableReliable(cfg ReliableConfig) {
	if cfg.RetransmitAfter <= 0 {
		cfg.RetransmitAfter = DefaultRetransmitAfter
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = DefaultBackoffCap
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	w.rel = &relState{
		cfg:         cfg,
		nextSeq:     make(map[relKey]uint64),
		outstanding: make(map[relKey]map[uint64]*outMsg),
		nextDeliver: make(map[relKey]uint64),
		pending:     make(map[relKey]map[uint64]*Message),
	}
}

// ReliableEnabled reports whether the reliable-delivery layer is armed.
func (w *World) ReliableEnabled() bool { return w.rel != nil }

// Retransmits returns how many messages were retransmitted so far.
func (w *World) Retransmits() int64 {
	if w.rel == nil {
		return 0
	}
	return w.rel.retransmits
}

// DedupDrops returns how many duplicate deliveries the receiver side
// absorbed.
func (w *World) DedupDrops() int64 {
	if w.rel == nil {
		return 0
	}
	return w.rel.dedups
}

// Outstanding returns how many sent messages are still retained awaiting
// an ack (lost messages whose retransmit budget ran out are released).
func (w *World) Outstanding() int {
	if w.rel == nil {
		return 0
	}
	n := 0
	for _, m := range w.rel.outstanding {
		n += len(m)
	}
	return n
}

// retain registers a freshly sequenced message as awaiting its ack.
func (rel *relState) retain(k relKey, m Message) {
	if rel.outstanding[k] == nil {
		rel.outstanding[k] = make(map[uint64]*outMsg)
	}
	rel.outstanding[k][m.relSeq] = rel.getOut(m)
}

// ack releases the retained copy of (k, seq); the receiver has it.
func (rel *relState) ack(k relKey, seq uint64) {
	om := rel.outstanding[k][seq]
	if om == nil {
		return
	}
	if om.timer != nil {
		om.timer.Stop()
	}
	delete(rel.outstanding[k], seq)
	rel.putOut(om)
}

// onLost is the sender-side loss reaction: schedule a retransmit with the
// stream's current backoff, doubling it up to the cap, or give the message
// up once the attempt budget is spent (higher layers — collective timeouts
// and the ADIO failover — own recovery from there).
func (w *World) onLost(m Message) {
	rel := w.rel
	if rel == nil {
		return
	}
	k := relKey{src: m.Src, dst: m.Dst, tag: m.Tag}
	om := rel.outstanding[k][m.relSeq]
	if om == nil {
		return // already acked or given up
	}
	if om.attempts >= rel.cfg.MaxAttempts {
		rel.giveUps++
		if om.timer != nil {
			om.timer.Stop()
		}
		delete(rel.outstanding[k], m.relSeq)
		rel.putOut(om)
		return
	}
	om.attempts++
	d := om.backoff
	om.backoff *= 2
	if om.backoff > rel.cfg.BackoffCap {
		om.backoff = rel.cfg.BackoffCap
	}
	om.timer = w.k.AfterTimer(d, func() {
		if rel.outstanding[k][m.relSeq] != om {
			return // acked in the meantime
		}
		rel.retransmits++
		if mt := w.k.Metrics(); mt != nil {
			mt.Counter("mpi_retransmits_total", metrics.L(metrics.KeyLayer, "mpi")).Inc()
		}
		srcNode := w.ranks[m.Src].node
		dstNode := w.ranks[m.Dst].node
		fate := w.fabric.MessageFate(srcNode.ID(), dstNode.ID())
		w.sendPhysical(om.msg, nil, fate, true)
	})
}

// arrived runs the receiver-side protocol at delivery time: dedup,
// in-order resequencing, ack, then hand the message(s) to the rank's
// mailbox. A message arriving ahead of a lost predecessor is acked (it has
// been received) but buffered until the retransmitted gap fills, so every
// stream delivers in send order. Messages for dead ranks are still acked —
// the NIC is alive even when the process is not — and then discarded by
// deliver. A stream whose gap message exhausted its retransmit budget
// stalls; recovery from that belongs to the collective-timeout and
// failover layers above.
func (w *World) arrived(dst *Rank, m *Message) {
	rel := w.rel
	if rel == nil {
		dst.deliver(m)
		return
	}
	k := relKey{src: m.Src, dst: m.Dst, tag: m.Tag}
	next := rel.nextDeliver[k]
	if m.relSeq < next || (rel.pending[k] != nil && rel.pending[k][m.relSeq] != nil) {
		rel.dedups++
		if mt := w.k.Metrics(); mt != nil {
			mt.Counter("mpi_dedup_drops_total", metrics.L(metrics.KeyLayer, "mpi")).Inc()
		}
		return
	}
	rel.ack(k, m.relSeq)
	if m.relSeq > next {
		if rel.pending[k] == nil {
			rel.pending[k] = make(map[uint64]*Message)
		}
		rel.pending[k][m.relSeq] = m
		return
	}
	rel.nextDeliver[k] = next + 1
	dst.deliver(m)
	for {
		nm := rel.pending[k][rel.nextDeliver[k]]
		if nm == nil {
			return
		}
		delete(rel.pending[k], rel.nextDeliver[k])
		rel.nextDeliver[k]++
		dst.deliver(nm)
	}
}

// WaitDeadline waits for req like Wait but gives up after d, cancelling
// the posted receive so a late message cannot complete the abandoned
// request. The deadline timer is cancellable: when the request completes
// in time (the fault-free path) the timer leaves no trace in virtual time.
func (r *Rank) WaitDeadline(q *Request, d sim.Time) (*Message, error) {
	r.checkKilled()
	if q.done {
		return q.msg, q.err
	}
	if q.waiter != nil {
		panic("mpi: two ranks waiting on one request")
	}
	timedOut := false
	tm := r.w.k.AfterTimer(d, func() {
		if q.done || q.waiter != r {
			return // completed, or the waiter was detached (e.g. Kill)
		}
		timedOut = true
		q.waiter = nil
		r.w.k.Wake(r.proc)
	})
	q.waiter = r
	r.waitReq = q
	r.proc.Park()
	r.waitReq = nil
	r.checkKilled()
	tm.Stop()
	if timedOut && !q.done {
		r.cancelRecv(q)
		return nil, fmt.Errorf("%w after %v", ErrRecvTimeout, d)
	}
	return q.msg, q.err
}

// cancelRecv withdraws the posted receive backing q, if any.
func (r *Rank) cancelRecv(q *Request) {
	for i, pr := range r.mbox.posted {
		if pr.req == q {
			r.mbox.posted = append(r.mbox.posted[:i], r.mbox.posted[i+1:]...)
			return
		}
	}
}
