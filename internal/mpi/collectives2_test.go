package mpi

import (
	"testing"
)

func TestReduceBothModels(t *testing.T) {
	for _, model := range []CollModel{Analytic, MessagePassing} {
		for root := 0; root < 3; root++ {
			w := testWorld(t, 3, 1)
			c := w.Comm()
			c.SetCollModel(model)
			results := make([][]int64, w.Size())
			err := w.Run(func(r *Rank) {
				results[r.ID()] = c.Reduce(r, root, []int64{int64(r.ID() + 1), 10}, SumOp)
			})
			if err != nil {
				t.Fatal(err)
			}
			for rank, res := range results {
				if rank == root {
					if res == nil || res[0] != 6 || res[1] != 30 {
						t.Fatalf("model %v root %d: reduce = %v", model, root, res)
					}
				} else if res != nil {
					t.Fatalf("model %v: non-root rank %d got %v", model, rank, res)
				}
			}
		}
	}
}

func TestGatherBothModels(t *testing.T) {
	for _, model := range []CollModel{Analytic, MessagePassing} {
		w := testWorld(t, 2, 2)
		c := w.Comm()
		c.SetCollModel(model)
		var got [][]int64
		err := w.Run(func(r *Rank) {
			res := c.Gather(r, 1, []int64{int64(r.ID() * 2)})
			if c.RankOf(r) == 1 {
				got = res
			} else if res != nil {
				t.Errorf("non-root got %v", res)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v[0] != int64(i*2) {
				t.Fatalf("model %v: gather[%d] = %v", model, i, v)
			}
		}
	}
}

func TestScatterBothModels(t *testing.T) {
	for _, model := range []CollModel{Analytic, MessagePassing} {
		w := testWorld(t, 4, 1)
		c := w.Comm()
		c.SetCollModel(model)
		results := make([][]int64, w.Size())
		err := w.Run(func(r *Rank) {
			var parts [][]int64
			if c.RankOf(r) == 0 {
				parts = [][]int64{{0}, {10, 11}, {20}, {30, 31, 32}}
			}
			results[r.ID()] = c.Scatter(r, 0, parts)
		})
		if err != nil {
			t.Fatal(err)
		}
		want := [][]int64{{0}, {10, 11}, {20}, {30, 31, 32}}
		for i, res := range results {
			if len(res) != len(want[i]) {
				t.Fatalf("model %v: scatter[%d] = %v, want %v", model, i, res, want[i])
			}
			for j := range res {
				if res[j] != want[i][j] {
					t.Fatalf("model %v: scatter[%d] = %v, want %v", model, i, res, want[i])
				}
			}
		}
	}
}

func TestScanBothModels(t *testing.T) {
	for _, model := range []CollModel{Analytic, MessagePassing} {
		w := testWorld(t, 4, 1)
		c := w.Comm()
		c.SetCollModel(model)
		results := make([][]int64, w.Size())
		err := w.Run(func(r *Rank) {
			results[r.ID()] = c.Scan(r, []int64{int64(r.ID() + 1)}, SumOp)
		})
		if err != nil {
			t.Fatal(err)
		}
		// Inclusive prefix sums of 1,2,3,4.
		want := []int64{1, 3, 6, 10}
		for i, res := range results {
			if res[0] != want[i] {
				t.Fatalf("model %v: scan[%d] = %d, want %d", model, i, res[0], want[i])
			}
		}
	}
}

func TestSendrecvNoDeadlock(t *testing.T) {
	// Ring exchange with blocking Send/Recv would deadlock; Sendrecv must
	// not.
	w := testWorld(t, 4, 1)
	got := make([]int64, w.Size())
	err := w.Run(func(r *Rank) {
		p := w.Size()
		right := (r.ID() + 1) % p
		left := (r.ID() - 1 + p) % p
		m := r.Sendrecv(right, 5, Message{Vals: []int64{int64(r.ID())}}, left, 5)
		got[r.ID()] = m.Vals[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if want := int64((i - 1 + w.Size()) % w.Size()); v != want {
			t.Fatalf("ring recv[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestSplitByColor(t *testing.T) {
	w := testWorld(t, 4, 2) // 8 ranks
	sums := make([]int64, w.Size())
	err := w.Run(func(r *Rank) {
		c := w.Comm()
		sub := c.Split(r, r.ID()%2, r.ID())
		if sub == nil {
			t.Errorf("rank %d got nil comm", r.ID())
			return
		}
		if sub.Size() != 4 {
			t.Errorf("sub size = %d", sub.Size())
		}
		res := sub.Allreduce(r, []int64{int64(r.ID())}, SumOp)
		sums[r.ID()] = res[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sums {
		want := int64(0 + 2 + 4 + 6)
		if i%2 == 1 {
			want = 1 + 3 + 5 + 7
		}
		if s != want {
			t.Fatalf("sum[%d] = %d, want %d", i, s, want)
		}
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	w := testWorld(t, 2, 1)
	err := w.Run(func(r *Rank) {
		c := w.Comm()
		color := 0
		if r.ID() == 1 {
			color = -1 // MPI_UNDEFINED
		}
		sub := c.Split(r, color, 0)
		if r.ID() == 1 && sub != nil {
			t.Error("undefined color must yield nil")
		}
		if r.ID() == 0 && (sub == nil || sub.Size() != 1) {
			t.Errorf("rank 0 comm wrong: %v", sub)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitOrdersByKey(t *testing.T) {
	w := testWorld(t, 3, 1)
	err := w.Run(func(r *Rank) {
		c := w.Comm()
		// Reverse key order: rank 2 gets key 0, rank 0 key 2.
		sub := c.Split(r, 0, 2-r.ID())
		if got := sub.RankOf(r); got != 2-r.ID() {
			t.Errorf("rank %d: sub rank = %d, want %d", r.ID(), got, 2-r.ID())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
