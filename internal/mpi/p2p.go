package mpi

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Message is a point-to-point payload. Size is the wire size in bytes;
// Data and Vals optionally carry real content (Data for file payloads,
// Vals for control integers such as the two-phase size dissemination).
type Message struct {
	Src  int
	Dst  int
	Tag  int
	Size int64
	Data []byte
	Vals []int64

	relSeq uint64 // reliable-delivery stream sequence number
}

// procName names the simulation process that carries this message. It is
// passed lazily to SpawnLazy: the formatting only runs if a deadlock
// report or panic ever needs the name.
func (m Message) procName() string {
	return fmt.Sprintf("msg.%d->%d.t%d", m.Src, m.Dst, m.Tag)
}

// Request is a nonblocking-operation handle (MPI_Request). A Request is
// also the unit of MPI generalized requests: external agents — such as the
// cache sync thread — complete it via Complete.
type Request struct {
	w      *World
	done   bool
	err    error    // terminal error status (generalized requests)
	msg    *Message // received message, for receive requests
	waiter *Rank    // rank parked in Wait, if any
}

// NewGrequest creates a generalized request that an external agent will
// Complete (MPI_Grequest_start).
func (w *World) NewGrequest() *Request { return &Request{w: w} }

// Done reports whether the operation has completed (MPI_Test).
func (q *Request) Done() bool { return q.done }

// Err returns the error status set at completion, nil for success or while
// still in flight (the MPI_ERROR field of the request's status).
func (q *Request) Err() error { return q.err }

// Complete marks the request finished and wakes its waiter
// (MPI_Grequest_complete for generalized requests; internal completion for
// sends and receives).
func (q *Request) Complete() {
	if q.done {
		panic("mpi: request completed twice")
	}
	q.done = true
	if q.waiter != nil {
		q.w.k.Wake(q.waiter.proc)
		q.waiter = nil
	}
}

// CompleteWithError completes the request with a terminal error status,
// which Wait surfaces to the waiter via Err.
func (q *Request) CompleteWithError(err error) {
	q.err = err
	q.Complete()
}

// Wait blocks rank r until the request completes and returns the received
// message (nil for send and generalized requests).
func (r *Rank) Wait(q *Request) *Message {
	r.checkKilled()
	if !q.done {
		if q.waiter != nil {
			panic("mpi: two ranks waiting on one request")
		}
		q.waiter = r
		r.waitReq = q
		r.proc.Park()
		r.waitReq = nil
		r.checkKilled()
	}
	return q.msg
}

// Waitall blocks until every request has completed (MPI_Waitall).
func (r *Rank) Waitall(reqs []*Request) {
	for _, q := range reqs {
		if q != nil {
			r.Wait(q)
		}
	}
}

// postedRecv is a receive waiting for a matching message.
type postedRecv struct {
	src int
	tag int
	req *Request
}

// mailbox holds posted receives and unexpected messages, in arrival order.
type mailbox struct {
	posted     []*postedRecv
	unexpected []*Message
}

func match(src, tag int, m *Message) bool {
	return (src == AnySource || src == m.Src) && (tag == AnyTag || tag == m.Tag)
}

// deliver hands an arrived message to the earliest matching posted receive,
// or queues it as unexpected. Messages for a dead rank are discarded.
func (r *Rank) deliver(m *Message) {
	if r.w.dead[r.id] {
		return
	}
	for i, pr := range r.mbox.posted {
		if match(pr.src, pr.tag, m) {
			r.mbox.posted = append(r.mbox.posted[:i], r.mbox.posted[i+1:]...)
			pr.req.msg = m
			pr.req.Complete()
			return
		}
	}
	r.mbox.unexpected = append(r.mbox.unexpected, m)
}

// Irecv posts a nonblocking receive matching (src, tag); wildcards
// AnySource and AnyTag are honoured in posting order.
func (r *Rank) Irecv(src, tag int) *Request {
	r.checkKilled()
	req := &Request{w: r.w}
	for i, m := range r.mbox.unexpected {
		if match(src, tag, m) {
			r.mbox.unexpected = append(r.mbox.unexpected[:i], r.mbox.unexpected[i+1:]...)
			req.msg = m
			req.done = true
			return req
		}
	}
	r.mbox.posted = append(r.mbox.posted, &postedRecv{src: src, tag: tag, req: req})
	return req
}

// Recv blocks until a matching message arrives.
func (r *Rank) Recv(src, tag int) *Message {
	return r.Wait(r.Irecv(src, tag))
}

// Isend starts a nonblocking send of m to world rank dst. The send request
// completes when the message has left the sending node (eager semantics);
// delivery happens after the fabric latency and receiver-side ejection.
func (r *Rank) Isend(dst, tag int, m Message) *Request {
	r.checkKilled()
	if dst < 0 || dst >= len(r.w.ranks) {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	if m.Data != nil && int64(len(m.Data)) > m.Size {
		panic("mpi: message data exceeds declared size")
	}
	if m.Size == 0 && m.Data != nil {
		m.Size = int64(len(m.Data))
	}
	if m.Size == 0 && m.Vals != nil {
		m.Size = int64(8 * len(m.Vals))
	}
	m.Src = r.id
	m.Dst = dst
	m.Tag = tag
	req := &Request{w: r.w}
	dstRank := r.w.ranks[dst]
	if r.node == dstRank.node {
		// Same-node messages never touch the wire: no fate, no sequence
		// numbers, identical to the pre-reliability fast path.
		r.w.sendLocal(r, dstRank, m, req)
		return req
	}
	fate := r.w.fabric.MessageFate(r.node.ID(), dstRank.node.ID())
	if rel := r.w.rel; rel != nil {
		k := relKey{src: r.id, dst: dst, tag: tag}
		m.relSeq = rel.nextSeq[k]
		rel.nextSeq[k]++
		rel.retain(k, m)
	}
	r.w.sendPhysical(m, req, fate, false)
	return req
}

// sendLocal runs the intra-node message path (shared memory copy).
func (w *World) sendLocal(r *Rank, dstRank *Rank, m Message, req *Request) {
	tr := w.k.Tracer()
	var aid uint64
	if tr != nil {
		aid = tr.AsyncBegin(r.TraceTrack(tr), "mpi", "p2p", int64(r.proc.Now()),
			trace.I("dst", int64(m.Dst)), trace.I("bytes", m.Size))
	}
	var p2pNs *metrics.Histogram
	var t0 sim.Time
	if w.metricsOn() {
		w.mP2PMsgs.Inc()
		w.mP2PBytes.Add(m.Size)
		p2pNs = w.mP2PNs
		t0 = r.proc.Now()
	}
	node := r.node
	w.k.SpawnLazy(func() string { return m.procName() }, func(p *sim.Proc) {
		node.LocalCopy(p, m.Size)
		req.Complete()
		if tr != nil {
			tr.AsyncEnd(dstRank.TraceTrack(tr), "mpi", "p2p", aid, int64(p.Now()))
		}
		p2pNs.Observe(int64(p.Now() - t0))
		dstRank.deliver(&m)
	})
}

// sendPhysical runs the inter-node wire path for an initial send (req
// non-nil, retrans false: full trace/metric accounting, byte-identical to
// the pre-reliability code when the fate is FateDeliver) or a retransmit
// (req nil, retrans true: the NIC and wire are charged but the logical
// message was already accounted for). A dropped or partitioned message
// charges the sender's injection port and vanishes; the reliable layer's
// loss reaction schedules the retransmit.
func (w *World) sendPhysical(m Message, req *Request, fate netsim.Fate, retrans bool) {
	srcRank, dstRank := w.ranks[m.Src], w.ranks[m.Dst]
	srcNode, dstNode := srcRank.node, dstRank.node
	var tr *trace.Tracer
	var aid uint64
	var p2pNs *metrics.Histogram
	var t0 sim.Time
	if !retrans {
		// Trace the message lifetime as an async span: begun on the
		// sender's timeline at Isend, ended on the receiver's timeline at
		// delivery (or on the sender's at the drop point).
		if tr = w.k.Tracer(); tr != nil {
			aid = tr.AsyncBegin(srcRank.TraceTrack(tr), "mpi", "p2p", int64(w.k.Now()),
				trace.I("dst", int64(m.Dst)), trace.I("bytes", m.Size))
		}
		// The same lifetime — Isend to delivery — is one sample in the p2p
		// latency histogram.
		if w.metricsOn() {
			w.mP2PMsgs.Inc()
			w.mP2PBytes.Add(m.Size)
			p2pNs = w.mP2PNs
			t0 = w.k.Now()
		}
	}
	name := func() string { return m.procName() }
	if retrans {
		name = func() string { return "re" + m.procName() }
	}
	w.k.SpawnLazy(name, func(p *sim.Proc) {
		srcNode.Inject(p, m.Size)
		if req != nil {
			req.Complete() // eager semantics: the send buffer has left the node
		}
		if fate == netsim.FateDrop || fate == netsim.FatePartition {
			srcNode.CountDrop()
			if tr != nil {
				tr.AsyncEnd(srcRank.TraceTrack(tr), "mpi", "p2p", aid, int64(p.Now()))
			}
			w.onLost(m)
			return
		}
		p.Sleep(w.fabric.Latency())
		dstNode.Eject(p, m.Size)
		if tr != nil {
			tr.AsyncEnd(dstRank.TraceTrack(tr), "mpi", "p2p", aid, int64(p.Now()))
		}
		p2pNs.Observe(int64(p.Now() - t0))
		w.arrived(dstRank, &m)
		if fate == netsim.FateDup {
			dstNode.CountDup()
			dup := m
			w.arrived(dstRank, &dup)
		}
	})
}

// Send is a blocking send (Isend + Wait).
func (r *Rank) Send(dst, tag int, m Message) {
	r.Wait(r.Isend(dst, tag, m))
}
