package mpi

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// CollModel selects how collectives are executed.
type CollModel int

const (
	// Analytic charges a LogGP-style cost model and synchronises all ranks
	// at max(arrival) + cost. It keeps 512-rank multi-round sweeps fast
	// while preserving wait-for-slowest semantics. This is the default.
	Analytic CollModel = iota
	// MessagePassing runs real message-based algorithms (dissemination
	// barrier, binomial bcast/reduce, ring allgather, pairwise alltoall)
	// over the simulated network.
	MessagePassing
)

// Comm is a communicator: an ordered group of ranks.
type Comm struct {
	w       *World
	ranks   []*Rank
	index   map[int]int // world id -> comm rank
	model   CollModel
	states  map[int]*collState
	callIdx []int
}

func newComm(w *World, ranks []*Rank) *Comm {
	c := &Comm{
		w:       w,
		ranks:   ranks,
		index:   make(map[int]int, len(ranks)),
		states:  make(map[int]*collState),
		callIdx: make([]int, len(ranks)),
	}
	for i, r := range ranks {
		c.index[r.id] = i
	}
	return c
}

// NewComm builds a communicator from the given world rank ids, in order.
func (w *World) NewComm(members []int) *Comm {
	ranks := make([]*Rank, len(members))
	for i, m := range members {
		ranks[i] = w.ranks[m]
	}
	return newComm(w, ranks)
}

// internComm returns a shared communicator for the membership, creating it
// on first use; Comm.Split relies on every member receiving the same
// object.
func (w *World) internComm(members []int) *Comm {
	key := fmt.Sprint(members)
	if c, ok := w.interned[key]; ok {
		return c
	}
	c := w.NewComm(members)
	w.interned[key] = c
	return c
}

// NewSharedComm returns a communicator shared by every caller passing the
// same members and scope, creating it on first use. Distinct scopes yield
// distinct communicators even over identical membership — the resilient
// two-phase write uses a fresh scope per failover epoch so retried
// collectives start from clean rendezvous state instead of colliding with
// the poisoned call indices of a timed-out epoch.
func (w *World) NewSharedComm(members []int, scope string) *Comm {
	key := scope + "|" + fmt.Sprint(members)
	if c, ok := w.interned[key]; ok {
		return c
	}
	c := w.NewComm(members)
	w.interned[key] = c
	return c
}

// SetCollModel selects the collective execution model.
func (c *Comm) SetCollModel(m CollModel) { c.model = m }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// RankOf returns the communicator rank of world rank r, or -1.
func (c *Comm) RankOf(r *Rank) int {
	if i, ok := c.index[r.id]; ok {
		return i
	}
	return -1
}

// Member returns the rank at communicator position i.
func (c *Comm) Member(i int) *Rank { return c.ranks[i] }

// collState tracks one in-flight collective operation.
type collState struct {
	comm    *Comm
	n       int // call index within the communicator
	kind    string
	arrived int
	got     []bool // which comm ranks have contributed
	bytes   int64  // largest per-rank byte count seen, for held completion
	inputs  [][]int64
	waiters []*Rank
	finish  sim.Time
	err     error // terminal timeout error, set at most once
	timer   *sim.Timer
}

// CollTimeoutError is the typed failure a timed-out collective surfaces:
// the operation that stalled plus the world ranks that never arrived (dead,
// partitioned away, or simply still busy).
type CollTimeoutError struct {
	Op      string
	Missing []int
}

// ErrCollTimeout is the sentinel matched by errors.Is for any
// *CollTimeoutError.
var ErrCollTimeout = errors.New("mpi: collective timed out")

func (e *CollTimeoutError) Error() string {
	return fmt.Sprintf("mpi: %s timed out waiting for ranks %v", e.Op, e.Missing)
}

// Is makes errors.Is(err, ErrCollTimeout) match.
func (e *CollTimeoutError) Is(target error) bool { return target == ErrCollTimeout }

// cut reports whether an active network partition separates any two member
// nodes of the communicator.
func (c *Comm) cut() bool {
	if len(c.ranks) < 2 {
		return false
	}
	first := c.ranks[0].node.ID()
	for _, r := range c.ranks[1:] {
		if c.w.fabric.Partitioned(first, r.node.ID()) {
			return true
		}
	}
	return false
}

// sync is the analytic rendezvous: every rank contributes input, blocks
// until all have arrived plus the modelled cost, and gets all inputs back.
// Timeout errors (only possible with SetCollTimeout armed) are dropped;
// error-aware callers use syncErr via the Try* wrappers.
func (c *Comm) sync(r *Rank, kind string, perRankBytes int64, input []int64) [][]int64 {
	inputs, _ := c.syncErr(r, kind, perRankBytes, input)
	return inputs
}

// syncErr implements the rendezvous. When a collective timeout is armed, a
// per-call cancellable timer bounds the wait, and a collective whose
// communicator spans an active partition is held open — completing when
// the partition heals, or failing all participants with *CollTimeoutError
// when the timer fires first. On the fault-free path the timer is always
// cancelled before firing, leaving virtual time untouched.
func (c *Comm) syncErr(r *Rank, kind string, perRankBytes int64, input []int64) ([][]int64, error) {
	r.checkKilled()
	me := c.RankOf(r)
	if me < 0 {
		panic(fmt.Sprintf("mpi: rank %d not in communicator", r.id))
	}
	if len(c.ranks) == 1 {
		return [][]int64{input}, nil
	}
	n := c.callIdx[me]
	c.callIdx[me]++
	st := c.states[n]
	if st == nil {
		st = &collState{
			comm: c, n: n, kind: kind,
			inputs: make([][]int64, len(c.ranks)),
			got:    make([]bool, len(c.ranks)),
		}
		c.states[n] = st
		if d := c.w.collTimeout; d > 0 {
			st.timer = c.w.k.AfterTimer(d, func() { c.w.timeoutColl(st) })
		}
	}
	if st.kind != kind {
		panic(fmt.Sprintf("mpi: mismatched collectives: rank %d calls %s, others called %s", r.id, kind, st.kind))
	}
	if st.err != nil {
		// The call slot already timed out: a straggler fails immediately
		// instead of parking for a timeout of its own, so a rank that fell
		// one collective behind (slow open, receive deadline) resynchronises
		// with the group at the next call rather than trailing forever.
		return st.inputs, st.err
	}
	st.inputs[me] = input
	st.got[me] = true
	st.arrived++
	if perRankBytes > st.bytes {
		st.bytes = perRankBytes
	}
	if st.arrived == len(c.ranks) && !(st.timer != nil && c.cut()) {
		// Last arrival, communicator reachable: everyone resumes after the
		// modelled completion time.
		delete(c.states, n)
		if st.timer != nil {
			st.timer.Stop()
		}
		cost := c.collCost(kind, perRankBytes)
		st.finish = r.proc.Now() + cost
		for _, wr := range st.waiters {
			c.w.k.WakeAt(st.finish, wr.proc)
		}
		r.proc.Sleep(cost)
		return st.inputs, nil
	}
	if st.arrived == len(c.ranks) {
		// All arrived but a partition cuts the communicator: hold the
		// collective open until the fabric heals or the timer fires.
		delete(c.states, n)
		c.w.heldColl = append(c.w.heldColl, st)
	}
	st.waiters = append(st.waiters, r)
	r.collSt = st
	r.proc.Park()
	r.collSt = nil
	r.checkKilled()
	return st.inputs, st.err
}

// timeoutColl fails a stalled collective: every parked participant wakes
// with the typed error, and the call slot is released. Kernel-callback
// context.
func (w *World) timeoutColl(st *collState) {
	if st.err != nil {
		return
	}
	var missing []int
	for i, got := range st.got {
		if !got {
			missing = append(missing, st.comm.ranks[i].id)
		}
	}
	st.err = &CollTimeoutError{Op: st.kind, Missing: missing}
	// The errored state stays registered at its call index: ranks that have
	// not arrived yet must observe the failure (and fail fast) instead of
	// opening a fresh rendezvous that can only time out again.
	w.dropHeld(st)
	for _, wr := range st.waiters {
		w.k.Wake(wr.proc)
	}
	st.waiters = nil
}

// recheckHeld re-evaluates partition-held collectives after every topology
// change, completing those whose communicator became reachable again.
// Held states live in an insertion-ordered slice so completions (and their
// wake events) replay deterministically.
func (w *World) recheckHeld() {
	kept := w.heldColl[:0]
	for _, st := range w.heldColl {
		c := st.comm
		if st.err == nil && st.arrived == len(c.ranks) && !c.cut() {
			if st.timer != nil {
				st.timer.Stop()
			}
			cost := c.collCost(st.kind, st.bytes)
			st.finish = w.k.Now() + cost
			for _, wr := range st.waiters {
				w.k.WakeAt(st.finish, wr.proc)
			}
			st.waiters = nil
			continue
		}
		kept = append(kept, st)
	}
	w.heldColl = kept
}

// dropHeld removes st from the held-collective list.
func (w *World) dropHeld(st *collState) {
	for i, held := range w.heldColl {
		if held == st {
			w.heldColl = append(w.heldColl[:i], w.heldColl[i+1:]...)
			return
		}
	}
}

// collCost models the completion time of a collective once all ranks have
// arrived, following LogGP: per-message software overhead o, wire latency
// L, and per-rank NIC bandwidth for the data terms.
func (c *Comm) collCost(kind string, n int64) sim.Time {
	p := len(c.ranks)
	if p <= 1 {
		return 0
	}
	const o = 1 * sim.Microsecond
	l := c.w.fabric.Latency()
	bw := sim.Rate(3.2 * sim.GBps)
	log2p := sim.Time(bits.Len(uint(p - 1)))
	step := o + l
	switch kind {
	case "barrier":
		return log2p * step
	case "bcast", "reduce", "allreduce":
		return log2p * (step + bw.DurationFor(n))
	case "allgather":
		return log2p*step + sim.Time(p-1)*bw.DurationFor(n)
	case "alltoall":
		return sim.Time(p-1)*(o+bw.DurationFor(n)) + l
	default:
		panic("mpi: unknown collective " + kind)
	}
}

// collSpan covers one collective call for both observability layers: a
// tracer span on the rank's timeline plus a latency sample in the
// per-operation histogram. It also carries the entered/completed balance
// behind World.CollBalance: a call that never reaches end (the rank parked
// forever, or unwound by Kill) stays visible as an imbalance.
type collSpan struct {
	c  *Comm
	sp trace.Span
	h  *metrics.Histogram
	t0 sim.Time
}

// beginColl opens a collSpan for one collective call (both execution models
// route through the public wrappers).
func (c *Comm) beginColl(r *Rank, name string) collSpan {
	cs := collSpan{c: c}
	c.w.collStarted[r.id]++
	if tr := c.w.k.Tracer(); tr != nil {
		cs.sp = tr.Begin(r.TraceTrack(tr), "mpi", name, int64(r.proc.Now()))
	}
	if m := c.w.k.Metrics(); m != nil {
		cm := c.w.collMetricsFor(m, name)
		cs.h = cm.ns
		cm.calls.Inc()
		cs.t0 = r.proc.Now()
	}
	return cs
}

// collMetrics is one collective op's cached metric handles.
type collMetrics struct {
	ns    *metrics.Histogram
	calls *metrics.Counter
}

// collMetricsFor resolves (and caches) the handles for one collective op.
// Resolving through the registry canonicalizes the label set on every
// call; the per-op cache keeps the steady-state cost at one map hit.
func (w *World) collMetricsFor(m *metrics.Registry, name string) collMetrics {
	if cm, ok := w.collM[name]; ok {
		return cm
	}
	cm := collMetrics{
		ns: m.Histogram("mpi_coll_ns",
			metrics.L(metrics.KeyLayer, "mpi"), metrics.L(metrics.KeyOp, name)),
		calls: m.Counter("mpi_colls_total",
			metrics.L(metrics.KeyLayer, "mpi"), metrics.L(metrics.KeyOp, name)),
	}
	if w.collM == nil {
		w.collM = make(map[string]collMetrics)
	}
	w.collM[name] = cm
	return cm
}

// end closes the span at the rank's current virtual time.
func (cs collSpan) end(r *Rank) {
	cs.c.w.collDone[r.id]++
	now := r.proc.Now()
	cs.sp.End(int64(now))
	cs.h.Observe(int64(now - cs.t0))
}

// Op is a reduction operator over int64.
type Op func(a, b int64) int64

// Standard reduction operators.
var (
	MaxOp Op = func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	MinOp Op = func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}
	SumOp Op = func(a, b int64) int64 { return a + b }
	BorOp Op = func(a, b int64) int64 { return a | b }
)

// Barrier blocks until every rank of the communicator has entered.
func (c *Comm) Barrier(r *Rank) {
	sp := c.beginColl(r, "barrier")
	if c.model == MessagePassing {
		c.msgBarrier(r)
	} else {
		c.sync(r, "barrier", 0, nil)
	}
	sp.end(r)
}

// Allreduce combines each rank's vals element-wise with op; every rank
// receives the combined vector (MPI_Allreduce).
func (c *Comm) Allreduce(r *Rank, vals []int64, op Op) []int64 {
	sp := c.beginColl(r, "allreduce")
	defer func() { sp.end(r) }()
	if c.model == MessagePassing {
		return c.msgAllreduce(r, vals, op)
	}
	inputs := c.sync(r, "allreduce", int64(8*len(vals)), vals)
	return foldInputs(inputs, vals, op)
}

// foldInputs reduces the contributed vectors element-wise, skipping slots
// that are nil (possible only after a collective timeout left some ranks
// unheard).
func foldInputs(inputs [][]int64, own []int64, op Op) []int64 {
	var out []int64
	for _, in := range inputs {
		if in == nil {
			continue
		}
		if out == nil {
			out = make([]int64, len(in))
			copy(out, in)
			continue
		}
		for j := range out {
			out[j] = op(out[j], in[j])
		}
	}
	if out == nil {
		out = make([]int64, len(own))
		copy(out, own)
	}
	return out
}

// Allgather collects each rank's vals; result[i] is rank i's contribution
// (MPI_Allgather / MPI_Allgatherv).
func (c *Comm) Allgather(r *Rank, vals []int64) [][]int64 {
	sp := c.beginColl(r, "allgather")
	defer func() { sp.end(r) }()
	if c.model == MessagePassing {
		return c.msgAllgather(r, vals)
	}
	// The rendezvous result is returned as-is: the state it lives in is
	// released once the collective completes, and callers treat it as
	// read-only. Copying the outer slice would cost O(ranks) per caller —
	// 400 MB across one 4096-rank collective write.
	return c.sync(r, "allgather", int64(8*len(vals)), vals)
}

// Alltoall sends send[i] to comm rank i and returns recv where recv[i] is
// the value sent by rank i (MPI_Alltoall with one int64 per pair). This is
// the dissemination step at the start of every two-phase exchange round.
func (c *Comm) Alltoall(r *Rank, send []int64) []int64 {
	if len(send) != len(c.ranks) {
		panic("mpi: alltoall send vector must have comm-size entries")
	}
	sp := c.beginColl(r, "alltoall")
	defer func() { sp.end(r) }()
	if c.model == MessagePassing {
		return c.msgAlltoall(r, send)
	}
	inputs := c.sync(r, "alltoall", 8, send)
	me := c.RankOf(r)
	out := make([]int64, len(c.ranks))
	for i, in := range inputs {
		if in != nil {
			out[i] = in[me]
		}
	}
	return out
}

// Bcast distributes root's vals to every rank (MPI_Bcast).
func (c *Comm) Bcast(r *Rank, root int, vals []int64) []int64 {
	sp := c.beginColl(r, "bcast")
	defer func() { sp.end(r) }()
	if c.model == MessagePassing {
		return c.msgBcast(r, root, vals)
	}
	var n int64
	if c.RankOf(r) == root {
		n = int64(8 * len(vals))
	}
	inputs := c.sync(r, "bcast", n, vals)
	return inputs[root]
}

// ---- Error-aware (Try) variants ----
//
// The Try* collectives surface a *CollTimeoutError instead of silently
// returning partial data when SetCollTimeout is armed and the operation
// stalls (dead ranks, network partition). Under the MessagePassing model
// they fall back to the plain algorithms, which have no timeout support —
// degraded-mode callers (the resilient two-phase write) require Analytic.

// TryBarrier is Barrier with timeout surfacing.
func (c *Comm) TryBarrier(r *Rank) error {
	sp := c.beginColl(r, "barrier")
	defer func() { sp.end(r) }()
	if c.model == MessagePassing {
		c.msgBarrier(r)
		return nil
	}
	_, err := c.syncErr(r, "barrier", 0, nil)
	return err
}

// TryAllreduce is Allreduce with timeout surfacing; on error the partial
// result is nil.
func (c *Comm) TryAllreduce(r *Rank, vals []int64, op Op) ([]int64, error) {
	sp := c.beginColl(r, "allreduce")
	defer func() { sp.end(r) }()
	if c.model == MessagePassing {
		return c.msgAllreduce(r, vals, op), nil
	}
	inputs, err := c.syncErr(r, "allreduce", int64(8*len(vals)), vals)
	if err != nil {
		return nil, err
	}
	return foldInputs(inputs, vals, op), nil
}

// TryAllgather is Allgather with timeout surfacing.
func (c *Comm) TryAllgather(r *Rank, vals []int64) ([][]int64, error) {
	sp := c.beginColl(r, "allgather")
	defer func() { sp.end(r) }()
	if c.model == MessagePassing {
		return c.msgAllgather(r, vals), nil
	}
	inputs, err := c.syncErr(r, "allgather", int64(8*len(vals)), vals)
	if err != nil {
		return nil, err
	}
	// Shared read-only rendezvous result; see Allgather.
	return inputs, nil
}

// TryAlltoall is Alltoall with timeout surfacing.
func (c *Comm) TryAlltoall(r *Rank, send []int64) ([]int64, error) {
	if len(send) != len(c.ranks) {
		panic("mpi: alltoall send vector must have comm-size entries")
	}
	sp := c.beginColl(r, "alltoall")
	defer func() { sp.end(r) }()
	if c.model == MessagePassing {
		return c.msgAlltoall(r, send), nil
	}
	inputs, err := c.syncErr(r, "alltoall", 8, send)
	if err != nil {
		return nil, err
	}
	me := c.RankOf(r)
	out := make([]int64, len(c.ranks))
	for i, in := range inputs {
		if in != nil {
			out[i] = in[me]
		}
	}
	return out, nil
}

// ---- Message-passing implementations ----

// advanceTagFor reserves a tag block for one collective call. All ranks
// allocate collective call indices in the same order (SPMD), so the tag is
// consistent across the communicator; the stride of 4 leaves room for
// multi-stage algorithms (reduce+bcast) to use distinct sub-tags.
func (c *Comm) advanceTagFor(me int) int {
	tag := 1<<30 + c.callIdx[me]*4
	c.callIdx[me]++
	return tag
}

func (c *Comm) msgBarrier(r *Rank) {
	me := c.RankOf(r)
	tag := c.advanceTagFor(me)
	p := len(c.ranks)
	for dist := 1; dist < p; dist *= 2 {
		dst := c.ranks[(me+dist)%p].id
		src := c.ranks[(me-dist+p)%p].id
		req := r.Irecv(src, tag)
		r.Send(dst, tag, Message{Size: 1})
		r.Wait(req)
	}
}

func (c *Comm) msgBcast(r *Rank, root int, vals []int64) []int64 {
	me := c.RankOf(r)
	tag := c.advanceTagFor(me)
	p := len(c.ranks)
	rel := (me - root + p) % p // position in the binomial tree rooted at 0
	if rel != 0 {
		src := ((rel - lowestSetBit(rel)) + root) % p
		m := r.Recv(c.ranks[src].id, tag)
		vals = m.Vals
	}
	for dist := topMask(p); dist >= 1; dist /= 2 {
		if rel%(2*dist) == 0 && rel+dist < p {
			dst := (rel + dist + root) % p
			r.Send(c.ranks[dst].id, tag, Message{Vals: vals})
		}
	}
	return vals
}

func (c *Comm) msgAllreduce(r *Rank, vals []int64, op Op) []int64 {
	me := c.RankOf(r)
	tag := c.advanceTagFor(me)
	p := len(c.ranks)
	acc := make([]int64, len(vals))
	copy(acc, vals)
	// Binomial reduce to comm rank 0.
	for dist := 1; dist < p; dist *= 2 {
		if me%(2*dist) == 0 {
			if me+dist < p {
				m := r.Recv(c.ranks[me+dist].id, tag)
				for j := range acc {
					acc[j] = op(acc[j], m.Vals[j])
				}
			}
		} else {
			r.Send(c.ranks[me-dist].id, tag, Message{Vals: acc})
			break
		}
	}
	// Binomial broadcast of the result on a distinct sub-tag.
	return c.bcastWithTag(r, 0, acc, tag+1)
}

func (c *Comm) bcastWithTag(r *Rank, root int, vals []int64, tag int) []int64 {
	me := c.RankOf(r)
	p := len(c.ranks)
	rel := (me - root + p) % p
	if rel != 0 {
		src := ((rel - lowestSetBit(rel)) + root) % p
		m := r.Recv(c.ranks[src].id, tag)
		vals = m.Vals
	}
	for dist := topMask(p); dist >= 1; dist /= 2 {
		if rel%(2*dist) == 0 && rel+dist < p {
			dst := (rel + dist + root) % p
			r.Send(c.ranks[dst].id, tag, Message{Vals: vals})
		}
	}
	return vals
}

func (c *Comm) msgAllgather(r *Rank, vals []int64) [][]int64 {
	me := c.RankOf(r)
	tag := c.advanceTagFor(me)
	p := len(c.ranks)
	out := make([][]int64, p)
	out[me] = vals
	// Ring: forward the (p-1) most recently received contributions.
	right := c.ranks[(me+1)%p].id
	left := c.ranks[(me-1+p)%p].id
	cur := me
	curVals := vals
	for step := 0; step < p-1; step++ {
		req := r.Irecv(left, tag)
		r.Send(right, tag, Message{Vals: append([]int64{int64(cur)}, curVals...)})
		m := r.Wait(req)
		cur = int(m.Vals[0])
		curVals = m.Vals[1:]
		out[cur] = curVals
	}
	return out
}

func (c *Comm) msgAlltoall(r *Rank, send []int64) []int64 {
	me := c.RankOf(r)
	tag := c.advanceTagFor(me)
	p := len(c.ranks)
	out := make([]int64, p)
	out[me] = send[me]
	for round := 1; round < p; round++ {
		dst := (me + round) % p
		src := (me - round + p) % p
		req := r.Irecv(c.ranks[src].id, tag)
		r.Send(c.ranks[dst].id, tag, Message{Vals: []int64{send[dst]}})
		m := r.Wait(req)
		out[src] = m.Vals[0]
	}
	return out
}

func lowestSetBit(x int) int { return x & (-x) }

// topMask returns the largest power of two strictly below the smallest
// power of two >= p (i.e. the first sender stride of a binomial tree).
func topMask(p int) int {
	m := 1
	for m < p {
		m *= 2
	}
	return m / 2
}
