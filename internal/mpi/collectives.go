package mpi

import (
	"fmt"
	"math/bits"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// CollModel selects how collectives are executed.
type CollModel int

const (
	// Analytic charges a LogGP-style cost model and synchronises all ranks
	// at max(arrival) + cost. It keeps 512-rank multi-round sweeps fast
	// while preserving wait-for-slowest semantics. This is the default.
	Analytic CollModel = iota
	// MessagePassing runs real message-based algorithms (dissemination
	// barrier, binomial bcast/reduce, ring allgather, pairwise alltoall)
	// over the simulated network.
	MessagePassing
)

// Comm is a communicator: an ordered group of ranks.
type Comm struct {
	w       *World
	ranks   []*Rank
	index   map[int]int // world id -> comm rank
	model   CollModel
	states  map[int]*collState
	callIdx []int
}

func newComm(w *World, ranks []*Rank) *Comm {
	c := &Comm{
		w:       w,
		ranks:   ranks,
		index:   make(map[int]int, len(ranks)),
		states:  make(map[int]*collState),
		callIdx: make([]int, len(ranks)),
	}
	for i, r := range ranks {
		c.index[r.id] = i
	}
	return c
}

// NewComm builds a communicator from the given world rank ids, in order.
func (w *World) NewComm(members []int) *Comm {
	ranks := make([]*Rank, len(members))
	for i, m := range members {
		ranks[i] = w.ranks[m]
	}
	return newComm(w, ranks)
}

// internComm returns a shared communicator for the membership, creating it
// on first use; Comm.Split relies on every member receiving the same
// object.
func (w *World) internComm(members []int) *Comm {
	key := fmt.Sprint(members)
	if c, ok := w.interned[key]; ok {
		return c
	}
	c := w.NewComm(members)
	w.interned[key] = c
	return c
}

// SetCollModel selects the collective execution model.
func (c *Comm) SetCollModel(m CollModel) { c.model = m }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// RankOf returns the communicator rank of world rank r, or -1.
func (c *Comm) RankOf(r *Rank) int {
	if i, ok := c.index[r.id]; ok {
		return i
	}
	return -1
}

// Member returns the rank at communicator position i.
func (c *Comm) Member(i int) *Rank { return c.ranks[i] }

// collState tracks one in-flight collective operation.
type collState struct {
	kind    string
	arrived int
	inputs  [][]int64
	waiters []*Rank
	finish  sim.Time
}

// sync is the analytic rendezvous: every rank contributes input, blocks
// until all have arrived plus the modelled cost, and gets all inputs back.
func (c *Comm) sync(r *Rank, kind string, perRankBytes int64, input []int64) [][]int64 {
	me := c.RankOf(r)
	if me < 0 {
		panic(fmt.Sprintf("mpi: rank %d not in communicator", r.id))
	}
	if len(c.ranks) == 1 {
		return [][]int64{input}
	}
	n := c.callIdx[me]
	c.callIdx[me]++
	st := c.states[n]
	if st == nil {
		st = &collState{kind: kind, inputs: make([][]int64, len(c.ranks))}
		c.states[n] = st
	}
	if st.kind != kind {
		panic(fmt.Sprintf("mpi: mismatched collectives: rank %d calls %s, others called %s", r.id, kind, st.kind))
	}
	st.inputs[me] = input
	st.arrived++
	if st.arrived < len(c.ranks) {
		st.waiters = append(st.waiters, r)
		r.proc.Park()
		return st.inputs
	}
	// Last arrival: everyone resumes after the modelled completion time.
	delete(c.states, n)
	cost := c.collCost(kind, perRankBytes)
	st.finish = r.proc.Now() + cost
	for _, wr := range st.waiters {
		c.w.k.WakeAt(st.finish, wr.proc)
	}
	r.proc.Sleep(cost)
	return st.inputs
}

// collCost models the completion time of a collective once all ranks have
// arrived, following LogGP: per-message software overhead o, wire latency
// L, and per-rank NIC bandwidth for the data terms.
func (c *Comm) collCost(kind string, n int64) sim.Time {
	p := len(c.ranks)
	if p <= 1 {
		return 0
	}
	const o = 1 * sim.Microsecond
	l := c.w.fabric.Latency()
	bw := sim.Rate(3.2 * sim.GBps)
	log2p := sim.Time(bits.Len(uint(p - 1)))
	step := o + l
	switch kind {
	case "barrier":
		return log2p * step
	case "bcast", "reduce", "allreduce":
		return log2p * (step + bw.DurationFor(n))
	case "allgather":
		return log2p*step + sim.Time(p-1)*bw.DurationFor(n)
	case "alltoall":
		return sim.Time(p-1)*(o+bw.DurationFor(n)) + l
	default:
		panic("mpi: unknown collective " + kind)
	}
}

// collSpan covers one collective call for both observability layers: a
// tracer span on the rank's timeline plus a latency sample in the
// per-operation histogram.
type collSpan struct {
	sp trace.Span
	h  *metrics.Histogram
	t0 sim.Time
}

// beginColl opens a collSpan for one collective call (both execution models
// route through the public wrappers).
func (c *Comm) beginColl(r *Rank, name string) collSpan {
	var cs collSpan
	if tr := c.w.k.Tracer(); tr != nil {
		cs.sp = tr.Begin(r.TraceTrack(tr), "mpi", name, int64(r.proc.Now()))
	}
	if m := c.w.k.Metrics(); m != nil {
		cs.h = m.Histogram("mpi_coll_ns",
			metrics.L(metrics.KeyLayer, "mpi"), metrics.L(metrics.KeyOp, name))
		m.Counter("mpi_colls_total",
			metrics.L(metrics.KeyLayer, "mpi"), metrics.L(metrics.KeyOp, name)).Inc()
		cs.t0 = r.proc.Now()
	}
	return cs
}

// end closes the span at the rank's current virtual time.
func (cs collSpan) end(r *Rank) {
	now := r.proc.Now()
	cs.sp.End(int64(now))
	cs.h.Observe(int64(now - cs.t0))
}

// Op is a reduction operator over int64.
type Op func(a, b int64) int64

// Standard reduction operators.
var (
	MaxOp Op = func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	MinOp Op = func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}
	SumOp Op = func(a, b int64) int64 { return a + b }
	BorOp Op = func(a, b int64) int64 { return a | b }
)

// Barrier blocks until every rank of the communicator has entered.
func (c *Comm) Barrier(r *Rank) {
	sp := c.beginColl(r, "barrier")
	if c.model == MessagePassing {
		c.msgBarrier(r)
	} else {
		c.sync(r, "barrier", 0, nil)
	}
	sp.end(r)
}

// Allreduce combines each rank's vals element-wise with op; every rank
// receives the combined vector (MPI_Allreduce).
func (c *Comm) Allreduce(r *Rank, vals []int64, op Op) []int64 {
	sp := c.beginColl(r, "allreduce")
	defer func() { sp.end(r) }()
	if c.model == MessagePassing {
		return c.msgAllreduce(r, vals, op)
	}
	inputs := c.sync(r, "allreduce", int64(8*len(vals)), vals)
	out := make([]int64, len(vals))
	copy(out, inputs[0])
	for _, in := range inputs[1:] {
		for j := range out {
			out[j] = op(out[j], in[j])
		}
	}
	return out
}

// Allgather collects each rank's vals; result[i] is rank i's contribution
// (MPI_Allgather / MPI_Allgatherv).
func (c *Comm) Allgather(r *Rank, vals []int64) [][]int64 {
	sp := c.beginColl(r, "allgather")
	defer func() { sp.end(r) }()
	if c.model == MessagePassing {
		return c.msgAllgather(r, vals)
	}
	inputs := c.sync(r, "allgather", int64(8*len(vals)), vals)
	out := make([][]int64, len(inputs))
	copy(out, inputs)
	return out
}

// Alltoall sends send[i] to comm rank i and returns recv where recv[i] is
// the value sent by rank i (MPI_Alltoall with one int64 per pair). This is
// the dissemination step at the start of every two-phase exchange round.
func (c *Comm) Alltoall(r *Rank, send []int64) []int64 {
	if len(send) != len(c.ranks) {
		panic("mpi: alltoall send vector must have comm-size entries")
	}
	sp := c.beginColl(r, "alltoall")
	defer func() { sp.end(r) }()
	if c.model == MessagePassing {
		return c.msgAlltoall(r, send)
	}
	inputs := c.sync(r, "alltoall", 8, send)
	me := c.RankOf(r)
	out := make([]int64, len(c.ranks))
	for i, in := range inputs {
		out[i] = in[me]
	}
	return out
}

// Bcast distributes root's vals to every rank (MPI_Bcast).
func (c *Comm) Bcast(r *Rank, root int, vals []int64) []int64 {
	sp := c.beginColl(r, "bcast")
	defer func() { sp.end(r) }()
	if c.model == MessagePassing {
		return c.msgBcast(r, root, vals)
	}
	var n int64
	if c.RankOf(r) == root {
		n = int64(8 * len(vals))
	}
	inputs := c.sync(r, "bcast", n, vals)
	return inputs[root]
}

// ---- Message-passing implementations ----

// advanceTagFor reserves a tag block for one collective call. All ranks
// allocate collective call indices in the same order (SPMD), so the tag is
// consistent across the communicator; the stride of 4 leaves room for
// multi-stage algorithms (reduce+bcast) to use distinct sub-tags.
func (c *Comm) advanceTagFor(me int) int {
	tag := 1<<30 + c.callIdx[me]*4
	c.callIdx[me]++
	return tag
}

func (c *Comm) msgBarrier(r *Rank) {
	me := c.RankOf(r)
	tag := c.advanceTagFor(me)
	p := len(c.ranks)
	for dist := 1; dist < p; dist *= 2 {
		dst := c.ranks[(me+dist)%p].id
		src := c.ranks[(me-dist+p)%p].id
		req := r.Irecv(src, tag)
		r.Send(dst, tag, Message{Size: 1})
		r.Wait(req)
	}
}

func (c *Comm) msgBcast(r *Rank, root int, vals []int64) []int64 {
	me := c.RankOf(r)
	tag := c.advanceTagFor(me)
	p := len(c.ranks)
	rel := (me - root + p) % p // position in the binomial tree rooted at 0
	if rel != 0 {
		src := ((rel - lowestSetBit(rel)) + root) % p
		m := r.Recv(c.ranks[src].id, tag)
		vals = m.Vals
	}
	for dist := topMask(p); dist >= 1; dist /= 2 {
		if rel%(2*dist) == 0 && rel+dist < p {
			dst := (rel + dist + root) % p
			r.Send(c.ranks[dst].id, tag, Message{Vals: vals})
		}
	}
	return vals
}

func (c *Comm) msgAllreduce(r *Rank, vals []int64, op Op) []int64 {
	me := c.RankOf(r)
	tag := c.advanceTagFor(me)
	p := len(c.ranks)
	acc := make([]int64, len(vals))
	copy(acc, vals)
	// Binomial reduce to comm rank 0.
	for dist := 1; dist < p; dist *= 2 {
		if me%(2*dist) == 0 {
			if me+dist < p {
				m := r.Recv(c.ranks[me+dist].id, tag)
				for j := range acc {
					acc[j] = op(acc[j], m.Vals[j])
				}
			}
		} else {
			r.Send(c.ranks[me-dist].id, tag, Message{Vals: acc})
			break
		}
	}
	// Binomial broadcast of the result on a distinct sub-tag.
	return c.bcastWithTag(r, 0, acc, tag+1)
}

func (c *Comm) bcastWithTag(r *Rank, root int, vals []int64, tag int) []int64 {
	me := c.RankOf(r)
	p := len(c.ranks)
	rel := (me - root + p) % p
	if rel != 0 {
		src := ((rel - lowestSetBit(rel)) + root) % p
		m := r.Recv(c.ranks[src].id, tag)
		vals = m.Vals
	}
	for dist := topMask(p); dist >= 1; dist /= 2 {
		if rel%(2*dist) == 0 && rel+dist < p {
			dst := (rel + dist + root) % p
			r.Send(c.ranks[dst].id, tag, Message{Vals: vals})
		}
	}
	return vals
}

func (c *Comm) msgAllgather(r *Rank, vals []int64) [][]int64 {
	me := c.RankOf(r)
	tag := c.advanceTagFor(me)
	p := len(c.ranks)
	out := make([][]int64, p)
	out[me] = vals
	// Ring: forward the (p-1) most recently received contributions.
	right := c.ranks[(me+1)%p].id
	left := c.ranks[(me-1+p)%p].id
	cur := me
	curVals := vals
	for step := 0; step < p-1; step++ {
		req := r.Irecv(left, tag)
		r.Send(right, tag, Message{Vals: append([]int64{int64(cur)}, curVals...)})
		m := r.Wait(req)
		cur = int(m.Vals[0])
		curVals = m.Vals[1:]
		out[cur] = curVals
	}
	return out
}

func (c *Comm) msgAlltoall(r *Rank, send []int64) []int64 {
	me := c.RankOf(r)
	tag := c.advanceTagFor(me)
	p := len(c.ranks)
	out := make([]int64, p)
	out[me] = send[me]
	for round := 1; round < p; round++ {
		dst := (me + round) % p
		src := (me - round + p) % p
		req := r.Irecv(c.ranks[src].id, tag)
		r.Send(c.ranks[dst].id, tag, Message{Vals: []int64{send[dst]}})
		m := r.Wait(req)
		out[src] = m.Vals[0]
	}
	return out
}

func lowestSetBit(x int) int { return x & (-x) }

// topMask returns the largest power of two strictly below the smallest
// power of two >= p (i.e. the first sender stride of a binomial tree).
func topMask(p int) int {
	m := 1
	for m < p {
		m *= 2
	}
	return m / 2
}
