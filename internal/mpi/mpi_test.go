package mpi

import (
	"bytes"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func testWorld(t *testing.T, nodes, perNode int) *World {
	t.Helper()
	k := sim.NewKernel(1)
	f := netsim.New(k, netsim.Config{
		Nodes: nodes, InjRate: 1 * sim.GBps, EjeRate: 1 * sim.GBps,
		Latency: 10 * sim.Microsecond, MemRate: 10 * sim.GBps,
	})
	return NewWorld(k, f, perNode)
}

func TestWorldLayout(t *testing.T) {
	w := testWorld(t, 4, 8)
	if w.Size() != 32 || w.RanksPerNode() != 8 {
		t.Fatalf("size=%d perNode=%d", w.Size(), w.RanksPerNode())
	}
	if w.Rank(0).Node().ID() != 0 || w.Rank(7).Node().ID() != 0 || w.Rank(8).Node().ID() != 1 {
		t.Fatal("node-major placement broken")
	}
}

func TestSendRecvPayload(t *testing.T) {
	w := testWorld(t, 2, 1)
	var got []byte
	err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 42, Message{Data: []byte("hello"), Size: 5})
		case 1:
			m := r.Recv(0, 42)
			got = m.Data
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("got %q", got)
	}
}

func TestRecvBeforeSendAndAfterSend(t *testing.T) {
	// Both orders must work: posted-receive matching and unexpected queue.
	w := testWorld(t, 2, 1)
	var early, late *Message
	err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Compute(5 * sim.Millisecond)
			r.Send(1, 1, Message{Vals: []int64{111}})
			r.Send(1, 2, Message{Vals: []int64{222}})
		case 1:
			early = r.Recv(0, 1) // posted before the send
			r.Compute(50 * sim.Millisecond)
			late = r.Recv(0, 2) // send already arrived
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if early.Vals[0] != 111 || late.Vals[0] != 222 {
		t.Fatalf("early=%v late=%v", early, late)
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	w := testWorld(t, 3, 1)
	var fromTag, fromSrc int64
	err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(2, 7, Message{Vals: []int64{70}})
		case 1:
			r.Send(2, 9, Message{Vals: []int64{90}})
		case 2:
			m := r.Recv(AnySource, 9)
			fromTag = m.Vals[0]
			m2 := r.Recv(0, AnyTag)
			fromSrc = m2.Vals[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fromTag != 90 || fromSrc != 70 {
		t.Fatalf("tag match got %d, src match got %d", fromTag, fromSrc)
	}
}

func TestMessageTransferTakesTime(t *testing.T) {
	w := testWorld(t, 2, 1)
	var recvAt sim.Time
	err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 0, Message{Size: 1_000_000}) // 1 MB at 1 GB/s per side
		case 1:
			r.Recv(0, 0)
			recvAt = r.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*sim.Millisecond + 10*sim.Microsecond; recvAt != want {
		t.Fatalf("recv at %v, want %v", recvAt, want)
	}
}

func TestIntraNodeMessageSkipsNIC(t *testing.T) {
	w := testWorld(t, 1, 2)
	var recvAt sim.Time
	err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 0, Message{Size: 10_000_000}) // 10 MB at 10 GB/s mem
		case 1:
			r.Recv(0, 0)
			recvAt = r.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if recvAt > 2*sim.Millisecond {
		t.Fatalf("intra-node message too slow: %v", recvAt)
	}
	if w.Rank(0).Node().TxBytes() != 0 {
		t.Fatal("intra-node message must not touch the NIC")
	}
}

func TestIsendWaitallOverlap(t *testing.T) {
	w := testWorld(t, 3, 1)
	var end sim.Time
	err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			reqs := []*Request{
				r.Isend(1, 0, Message{Size: 1_000_000}),
				r.Isend(2, 0, Message{Size: 1_000_000}),
			}
			r.Waitall(reqs)
			end = r.Now()
		default:
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sends complete at injection: 2 MB through the 1 GB/s NIC = ~2 ms,
	// without waiting for remote ejection.
	if end > 2*sim.Millisecond+sim.Millisecond {
		t.Fatalf("waitall end = %v", end)
	}
}

func TestGrequestExternalCompletion(t *testing.T) {
	w := testWorld(t, 1, 1)
	k := w.Kernel()
	var waited sim.Time
	err := w.Run(func(r *Rank) {
		req := w.NewGrequest()
		k.After(5*sim.Second, func() { req.Complete() })
		r.Wait(req)
		waited = r.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if waited != 5*sim.Second {
		t.Fatalf("grequest wait ended at %v", waited)
	}
}

func TestWaitOnCompletedRequestReturnsImmediately(t *testing.T) {
	w := testWorld(t, 1, 1)
	err := w.Run(func(r *Rank) {
		req := w.NewGrequest()
		req.Complete()
		if !req.Done() {
			t.Error("request should be done")
		}
		before := r.Now()
		r.Wait(req)
		if r.Now() != before {
			t.Error("wait on done request must not block")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInfoBasics(t *testing.T) {
	info := Info{}
	info.Set("cb_nodes", "16")
	if v, ok := info.Get("cb_nodes"); !ok || v != "16" {
		t.Fatal("get failed")
	}
	if info.GetDefault("missing", "x") != "x" {
		t.Fatal("default failed")
	}
	clone := info.Clone()
	clone.Set("cb_nodes", "32")
	if info["cb_nodes"] != "16" {
		t.Fatal("clone must not alias")
	}
	var nilInfo Info
	if _, ok := nilInfo.Get("k"); ok {
		t.Fatal("nil info must report unset")
	}
}

func TestSameSourceTagFIFOOrder(t *testing.T) {
	// Messages between one pair with one tag must match in send order.
	w := testWorld(t, 2, 1)
	var got []int64
	err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			for i := int64(0); i < 8; i++ {
				r.Send(1, 3, Message{Vals: []int64{i}})
			}
		case 1:
			for i := 0; i < 8; i++ {
				got = append(got, r.Recv(0, 3).Vals[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("FIFO violated: got %v", got)
		}
	}
}

func TestWaitallMixedSendRecv(t *testing.T) {
	w := testWorld(t, 2, 1)
	err := w.Run(func(r *Rank) {
		other := 1 - r.ID()
		recv := r.Irecv(other, 9)
		send := r.Isend(other, 9, Message{Vals: []int64{int64(r.ID())}})
		r.Waitall([]*Request{send, recv, nil}) // nils are tolerated
		if m := r.Wait(recv); m.Vals[0] != int64(other) {
			t.Errorf("rank %d got %v", r.ID(), m.Vals)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
