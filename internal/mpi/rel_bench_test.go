package mpi

import "testing"

// newBenchRelState builds a relState with the default protocol config,
// bypassing World so the bookkeeping can be driven directly.
func newBenchRelState() *relState {
	return &relState{
		cfg: ReliableConfig{
			RetransmitAfter: DefaultRetransmitAfter,
			BackoffCap:      DefaultBackoffCap,
			MaxAttempts:     DefaultMaxAttempts,
		},
		nextSeq:     make(map[relKey]uint64),
		outstanding: make(map[relKey]map[uint64]*outMsg),
		nextDeliver: make(map[relKey]uint64),
		pending:     make(map[relKey]map[uint64]*Message),
	}
}

// BenchmarkRelRetainAck measures the fault-free reliable-delivery cost per
// message: sequence assignment, sender-side retention and the ack release.
// With the outMsg free list this is allocation-free in steady state.
func BenchmarkRelRetainAck(b *testing.B) {
	rel := newBenchRelState()
	k := relKey{src: 0, dst: 9, tag: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := Message{Src: k.src, Dst: k.dst, Tag: k.tag, Size: 1024}
		m.relSeq = rel.nextSeq[k]
		rel.nextSeq[k]++
		rel.retain(k, m)
		rel.ack(k, m.relSeq)
	}
	if n := len(rel.outstanding[k]); n != 0 {
		b.Fatalf("%d messages still outstanding", n)
	}
}

// BenchmarkRelRetainAckManyStreams spreads the same traffic over 4096
// streams — one per (aggregator, writer) pair at the bench-tier scale — so
// the per-stream map overhead is measured too.
func BenchmarkRelRetainAckManyStreams(b *testing.B) {
	rel := newBenchRelState()
	const streams = 4096
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := relKey{src: i % streams, dst: streams, tag: 3}
		m := Message{Src: k.src, Dst: k.dst, Tag: k.tag, Size: 1024}
		m.relSeq = rel.nextSeq[k]
		rel.nextSeq[k]++
		rel.retain(k, m)
		rel.ack(k, m.relSeq)
	}
}

// TestRelRetainAckSteadyStateZeroAlloc pins the pooling property: once the
// free list and stream maps are warm, the fault-free retain/ack cycle
// allocates nothing per message.
func TestRelRetainAckSteadyStateZeroAlloc(t *testing.T) {
	rel := newBenchRelState()
	k := relKey{src: 1, dst: 2, tag: 5}
	cycle := func() {
		m := Message{Src: k.src, Dst: k.dst, Tag: k.tag, Size: 64}
		m.relSeq = rel.nextSeq[k]
		rel.nextSeq[k]++
		rel.retain(k, m)
		rel.ack(k, m.relSeq)
	}
	for i := 0; i < 64; i++ {
		cycle() // warm the free list and map buckets
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("steady-state retain/ack allocated %.1f times per message, want 0", allocs)
	}
}
