package mpi

// Additional collectives completing the communicator surface: Reduce,
// Gather, Scatter, Scan, Sendrecv and communicator Split. ROMIO's
// collective write only needs the core set in collectives.go, but tools
// and applications built on this library (and ROMIO itself in other code
// paths) use these as well. They share the analytic/message-passing split
// of the core set via the same rendezvous machinery.

// Reduce combines vals element-wise with op; only root receives the result
// (other ranks get nil).
func (c *Comm) Reduce(r *Rank, root int, vals []int64, op Op) []int64 {
	if c.model == MessagePassing {
		return c.msgReduce(r, root, vals, op)
	}
	inputs := c.sync(r, "allreduce", int64(8*len(vals)), vals)
	if c.RankOf(r) != root {
		return nil
	}
	out := make([]int64, len(vals))
	copy(out, inputs[0])
	for _, in := range inputs[1:] {
		for j := range out {
			out[j] = op(out[j], in[j])
		}
	}
	return out
}

func (c *Comm) msgReduce(r *Rank, root int, vals []int64, op Op) []int64 {
	me := c.RankOf(r)
	tag := c.advanceTagFor(me)
	p := len(c.ranks)
	// Reduce over ranks relative to root using a binomial tree.
	rel := (me - root + p) % p
	acc := make([]int64, len(vals))
	copy(acc, vals)
	for dist := 1; dist < p; dist *= 2 {
		if rel%(2*dist) == 0 {
			if rel+dist < p {
				src := (rel + dist + root) % p
				m := r.Recv(c.ranks[src].id, tag)
				for j := range acc {
					acc[j] = op(acc[j], m.Vals[j])
				}
			}
		} else {
			dst := (rel - dist + root) % p
			r.Send(c.ranks[dst].id, tag, Message{Vals: acc})
			return nil
		}
	}
	return acc
}

// Gather collects each rank's vals at root; root receives one slice per
// comm rank, others nil (MPI_Gather / MPI_Gatherv).
func (c *Comm) Gather(r *Rank, root int, vals []int64) [][]int64 {
	if c.model == MessagePassing {
		return c.msgGather(r, root, vals)
	}
	inputs := c.sync(r, "allgather", int64(8*len(vals)), vals)
	if c.RankOf(r) != root {
		return nil
	}
	out := make([][]int64, len(inputs))
	copy(out, inputs)
	return out
}

func (c *Comm) msgGather(r *Rank, root int, vals []int64) [][]int64 {
	me := c.RankOf(r)
	tag := c.advanceTagFor(me)
	p := len(c.ranks)
	if me != root {
		r.Send(c.ranks[root].id, tag, Message{Vals: vals})
		return nil
	}
	out := make([][]int64, p)
	out[root] = vals
	for src := 0; src < p; src++ {
		if src == root {
			continue
		}
		m := r.Recv(c.ranks[src].id, tag)
		out[src] = m.Vals
	}
	return out
}

// Scatter distributes parts[i] from root to comm rank i; every rank
// returns its own part (MPI_Scatter). Non-root callers pass nil parts.
func (c *Comm) Scatter(r *Rank, root int, parts [][]int64) []int64 {
	me := c.RankOf(r)
	if c.model == MessagePassing {
		tag := c.advanceTagFor(me)
		if me == root {
			for dst := 0; dst < len(c.ranks); dst++ {
				if dst == root {
					continue
				}
				r.Send(c.ranks[dst].id, tag, Message{Vals: parts[dst]})
			}
			return parts[root]
		}
		return r.Recv(c.ranks[root].id, tag).Vals
	}
	var flat []int64
	var n int64
	if me == root {
		for _, part := range parts {
			flat = append(flat, int64(len(part)))
			flat = append(flat, part...)
		}
		n = int64(8 * len(flat))
	}
	inputs := c.sync(r, "bcast", n, flat)
	rootFlat := inputs[root]
	// Decode my part from the root's flattened vector.
	idx := 0
	for rank := 0; rank <= me; rank++ {
		l := int(rootFlat[idx])
		idx++
		if rank == me {
			return rootFlat[idx : idx+l]
		}
		idx += l
	}
	return nil
}

// Scan computes the inclusive prefix reduction: rank i receives the
// combination of ranks 0..i (MPI_Scan).
func (c *Comm) Scan(r *Rank, vals []int64, op Op) []int64 {
	me := c.RankOf(r)
	if c.model == MessagePassing {
		tag := c.advanceTagFor(me)
		acc := make([]int64, len(vals))
		copy(acc, vals)
		if me > 0 {
			m := r.Recv(c.ranks[me-1].id, tag)
			for j := range acc {
				acc[j] = op(m.Vals[j], acc[j])
			}
		}
		if me < len(c.ranks)-1 {
			r.Send(c.ranks[me+1].id, tag, Message{Vals: acc})
		}
		return acc
	}
	inputs := c.sync(r, "allgather", int64(8*len(vals)), vals)
	out := make([]int64, len(vals))
	copy(out, inputs[0])
	for i := 1; i <= me; i++ {
		for j := range out {
			out[j] = op(out[j], inputs[i][j])
		}
	}
	return out
}

// Sendrecv performs a simultaneous send to dst and receive from src
// (MPI_Sendrecv), avoiding the deadlock of two blocking calls.
func (r *Rank) Sendrecv(dst, dtag int, m Message, src, stag int) *Message {
	recv := r.Irecv(src, stag)
	send := r.Isend(dst, dtag, m)
	r.Wait(send)
	return r.Wait(recv)
}

// Split partitions the communicator by color; ranks with equal color land
// in a new communicator ordered by (key, rank), as MPI_Comm_split. Every
// member must call it; callers with color < 0 (MPI_UNDEFINED) get nil.
// The grouping is computed via an Allgather of (color, key) pairs, so it
// costs one collective.
func (c *Comm) Split(r *Rank, color, key int) *Comm {
	pairs := c.Allgather(r, []int64{int64(color), int64(key)})
	if color < 0 {
		return nil
	}
	type member struct {
		rank int // position in c
		key  int64
	}
	var members []member
	for i, p := range pairs {
		if p[0] == int64(color) {
			members = append(members, member{rank: i, key: p[1]})
		}
	}
	// Stable order by (key, rank).
	for i := 1; i < len(members); i++ {
		for j := i; j > 0 && (members[j].key < members[j-1].key ||
			(members[j].key == members[j-1].key && members[j].rank < members[j-1].rank)); j-- {
			members[j], members[j-1] = members[j-1], members[j]
		}
	}
	ids := make([]int, len(members))
	for i, m := range members {
		ids[i] = c.ranks[m.rank].id
	}
	// All members must share one communicator object so that collective
	// rendezvous state matches; intern by membership.
	nc := c.w.internComm(ids)
	nc.model = c.model
	return nc
}
