package estat

import (
	"encoding/json"
	"fmt"
	"sort"
)

// DefaultLintMax is the per-key distinct-value budget the cardinality lint
// enforces. Metric labels and trace-event names are meant to be small fixed
// vocabularies — the per-rank / per-extent dimension belongs in trace
// tracks, not in label values — so a key that accumulates more distinct
// values than this has almost certainly swallowed an unbounded identifier
// (a raw rank id, an offset, a pointer).
const DefaultLintMax = 64

// LintInputs checks metric-label cardinality over parsed stat inputs: for
// every metric family, the number of distinct values per label key must not
// exceed max (<=0 means DefaultLintMax). Returned problems are sorted and
// deterministic; nil means clean.
func LintInputs(ins []Input, max int) []string {
	if max <= 0 {
		max = DefaultLintMax
	}
	// family -> label key -> distinct values
	card := map[string]map[string]map[string]bool{}
	note := func(family string, labels map[string]string) {
		for k, v := range labels {
			byKey, ok := card[family]
			if !ok {
				byKey = map[string]map[string]bool{}
				card[family] = byKey
			}
			vals, ok := byKey[k]
			if !ok {
				vals = map[string]bool{}
				byKey[k] = vals
			}
			vals[v] = true
		}
	}
	for _, in := range ins {
		if in.Metrics == nil {
			continue
		}
		for _, c := range in.Metrics.Counters {
			note(c.Name, c.Labels)
		}
		for _, g := range in.Metrics.Gauges {
			note(g.Name, g.Labels)
		}
		for _, h := range in.Metrics.Histograms {
			note(h.Name, h.Labels)
		}
	}
	var problems []string
	for family, byKey := range card {
		for key, vals := range byKey {
			if len(vals) > max {
				problems = append(problems, fmt.Sprintf(
					"metric %s: label %q has %d distinct values (max %d) — unbounded label cardinality; move the variable part to a trace track or drop it",
					family, key, len(vals), max))
			}
		}
	}
	sort.Strings(problems)
	return problems
}

// LintData runs the cardinality lint over one raw artifact file. Chrome
// traces are checked for unbounded event-name vocabularies per category
// (track names legitimately carry the per-rank dimension; event names must
// not); stat inputs are checked with LintInputs. Artifacts without labels
// or names to check (bench baselines, scale digests, critpath reports)
// lint clean. Undecodable input returns the parse error as a problem.
func LintData(data []byte, max int) []string {
	if max <= 0 {
		max = DefaultLintMax
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err == nil {
		if raw, ok := probe["traceEvents"]; ok {
			return lintChrome(raw, max)
		}
	}
	art, err := ParseAny(data)
	if err != nil {
		return []string{fmt.Sprintf("unparseable artifact: %v", err)}
	}
	return LintInputs(art.Inputs, max)
}

// lintChrome flags trace categories whose event-name vocabulary exceeds
// max distinct names.
func lintChrome(raw json.RawMessage, max int) []string {
	var events []chromeEvent
	if err := json.Unmarshal(raw, &events); err != nil {
		return []string{fmt.Sprintf("unparseable trace: %v", err)}
	}
	names := map[string]map[string]bool{} // cat -> distinct names
	for _, ev := range events {
		if ev.Ph == "M" { // metadata (track naming) is per-track by design
			continue
		}
		byCat, ok := names[ev.Cat]
		if !ok {
			byCat = map[string]bool{}
			names[ev.Cat] = byCat
		}
		byCat[ev.Name] = true
	}
	var problems []string
	for cat, set := range names {
		if len(set) > max {
			problems = append(problems, fmt.Sprintf(
				"trace category %q has %d distinct event names (max %d) — unbounded name cardinality; encode the variable part as a track or an argument",
				cat, len(set), max))
		}
	}
	sort.Strings(problems)
	return problems
}
