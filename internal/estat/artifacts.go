package estat

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/critpath"
)

// Artifact kinds, one per recognised file format.
const (
	KindStat       = "stat"       // e10stat/v1 inputs, arrays, Chrome traces
	KindBench      = "bench"      // e10bench/v1 (BENCH_<date>.json)
	KindScaleBench = "scalebench" // e10scalebench/v1 (BENCH_SCALE_<date>.json)
	KindScale      = "scale"      // e10scale/v1 (scale reports and digest goldens)
	KindCritPath   = "critpath"   // e10critpath/v1 critical-path reports
	KindTimeline   = "timeline"   // e10timeline/v1 run timelines
)

// Schema identifiers of the non-stat artifacts. estat mirrors the harness
// shapes instead of importing them: the harness imports estat, so estat
// cannot import the harness back.
const (
	benchSchema      = "e10bench/v1"
	scaleBenchSchema = "e10scalebench/v1"
	scaleSchema      = "e10scale/v1"
)

// BenchFileScenario is one cell of a committed bench-matrix baseline.
type BenchFileScenario struct {
	Name            string  `json:"name"`
	WallTimeNs      int64   `json:"wall_time_ns"`
	BandwidthGBs    float64 `json:"bandwidth_gbs"`
	NotHiddenSyncNs int64   `json:"not_hidden_sync_ns"`
	SyncedBytes     int64   `json:"synced_bytes"`
}

// BenchFile mirrors a BENCH_<date>.json bench-matrix baseline.
type BenchFile struct {
	Schema    string              `json:"schema"`
	Seed      int64               `json:"seed"`
	Scenarios []BenchFileScenario `json:"scenarios"`
}

// ScaleBenchFile mirrors a BENCH_SCALE_<date>.json kilo-rank baseline.
type ScaleBenchFile struct {
	Schema               string  `json:"schema"`
	Variant              string  `json:"variant"`
	Ranks                int     `json:"ranks"`
	Seed                 int64   `json:"seed"`
	Digest               string  `json:"digest"`
	WallTimeNs           int64   `json:"wall_time_ns"`
	Events               int64   `json:"events"`
	EventsPerSec         float64 `json:"events_per_sec"`
	EventsPerSecFloor    float64 `json:"events_per_sec_floor"`
	CritPathEventsPerSec float64 `json:"critpath_events_per_sec,omitempty"`
	CritPathFloor        float64 `json:"critpath_floor,omitempty"`
}

// ScaleFileReport mirrors the deterministic fields of a scale report.
type ScaleFileReport struct {
	Schema         string           `json:"schema"`
	Variant        string           `json:"variant"`
	Ranks          int              `json:"ranks"`
	Nodes          int              `json:"nodes"`
	PerNode        int              `json:"per_node"`
	Seed           int64            `json:"seed"`
	DropPct        int              `json:"drop_pct"`
	WallTimeNs     int64            `json:"wall_time_ns"`
	Events         int64            `json:"events"`
	ExpectedBytes  int64            `json:"expected_bytes"`
	PFSBytes       int64            `json:"pfs_bytes"`
	Retransmits    int64            `json:"retransmits"`
	NetDrops       int64            `json:"net_drops"`
	FailoverEpochs int64            `json:"failover_epochs"`
	CritPath       []critpath.Share `json:"critpath,omitempty"`
}

// ScaleFile is either a bare scale report or a committed digest golden
// ({"report": {...}, "digest": "..."}); Digest is empty for the bare shape.
type ScaleFile struct {
	Report ScaleFileReport `json:"report"`
	Digest string          `json:"digest,omitempty"`
}

// Artifact is one parsed file of any recognised format. Exactly one of the
// payload fields is populated, selected by Kind.
type Artifact struct {
	Kind       string             `json:"kind"`
	Inputs     []Input            `json:"inputs,omitempty"`
	Bench      *BenchFile         `json:"bench,omitempty"`
	ScaleBench *ScaleBenchFile    `json:"scalebench,omitempty"`
	Scale      *ScaleFile         `json:"scale,omitempty"`
	CritPath   *critpath.Report   `json:"critpath,omitempty"`
	Timeline   *critpath.Timeline `json:"timeline,omitempty"`
}

// ParseAny decodes any artifact the repo's tools write: e10stat inputs
// (single, array or Chrome trace — everything Parse accepts), bench and
// scale-bench baselines, scale reports and digest goldens, critical-path
// reports and run timelines. The schema field (or container shape) selects
// the decoder; malformed content returns an error, never a panic.
func ParseAny(data []byte) (*Artifact, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		// Not an object: only the stat-input array shape remains.
		ins, err := Parse(data)
		if err != nil {
			return nil, err
		}
		return &Artifact{Kind: KindStat, Inputs: ins}, nil
	}
	var schema string
	if raw, ok := probe["schema"]; ok {
		_ = json.Unmarshal(raw, &schema)
	}
	switch schema {
	case benchSchema:
		var f BenchFile
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, fmt.Errorf("estat: bench artifact: %w", err)
		}
		return &Artifact{Kind: KindBench, Bench: &f}, nil
	case scaleBenchSchema:
		var f ScaleBenchFile
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, fmt.Errorf("estat: scale-bench artifact: %w", err)
		}
		return &Artifact{Kind: KindScaleBench, ScaleBench: &f}, nil
	case scaleSchema:
		var r ScaleFileReport
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("estat: scale artifact: %w", err)
		}
		return &Artifact{Kind: KindScale, Scale: &ScaleFile{Report: r}}, nil
	case critpath.ReportSchema:
		rep, err := critpath.ParseReport(data)
		if err != nil {
			return nil, fmt.Errorf("estat: %w", err)
		}
		return &Artifact{Kind: KindCritPath, CritPath: rep}, nil
	case critpath.TimelineSchema:
		tl, err := critpath.ParseTimeline(data)
		if err != nil {
			return nil, fmt.Errorf("estat: %w", err)
		}
		return &Artifact{Kind: KindTimeline, Timeline: tl}, nil
	}
	// Scale digest golden: {"report": {...}, "digest": "..."} with the
	// schema nested inside the report.
	if _, ok := probe["report"]; ok {
		var f ScaleFile
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, fmt.Errorf("estat: scale digest artifact: %w", err)
		}
		if f.Report.Schema == scaleSchema {
			return &Artifact{Kind: KindScale, Scale: &f}, nil
		}
	}
	// Everything else — bare stat inputs and Chrome traces — is Parse's job.
	ins, err := Parse(data)
	if err != nil {
		return nil, err
	}
	return &Artifact{Kind: KindStat, Inputs: ins}, nil
}

// RenderAny renders a mixed artifact set. Stat inputs from every artifact
// are combined into the standard report; each non-stat artifact appends its
// own section. Formats mirror Render: md, csv, or json.
func RenderAny(arts []*Artifact, format string) (string, error) {
	var ins []Input
	for _, a := range arts {
		ins = append(ins, a.Inputs...)
	}
	if format == FormatJSON {
		b, err := json.MarshalIndent(arts, "", "  ")
		if err != nil {
			return "", fmt.Errorf("estat: %w", err)
		}
		return string(b) + "\n", nil
	}
	var sb strings.Builder
	if len(ins) > 0 {
		text, err := Render(ins, format)
		if err != nil {
			return "", err
		}
		sb.WriteString(text)
	}
	for _, a := range arts {
		switch a.Kind {
		case KindBench:
			renderBenchFile(&sb, a.Bench, format)
		case KindScaleBench:
			renderScaleBenchFile(&sb, a.ScaleBench, format)
		case KindScale:
			renderScaleFile(&sb, a.Scale, format)
		case KindCritPath:
			if format == FormatCSV {
				sb.WriteString(a.CritPath.CSV())
			} else {
				sb.WriteString(a.CritPath.Markdown())
			}
		case KindTimeline:
			if format == FormatCSV {
				sb.WriteString(a.Timeline.CSV())
			} else {
				sb.WriteString(a.Timeline.Markdown())
			}
		}
	}
	if sb.Len() == 0 {
		return "", fmt.Errorf("estat: no renderable artifacts")
	}
	return sb.String(), nil
}

func renderBenchFile(sb *strings.Builder, f *BenchFile, format string) {
	if format == FormatCSV {
		for _, s := range f.Scenarios {
			fmt.Fprintf(sb, "bench,%s,wall_time_ns,%d\n", s.Name, s.WallTimeNs)
			fmt.Fprintf(sb, "bench,%s,bandwidth_gbs,%.3f\n", s.Name, s.BandwidthGBs)
		}
		return
	}
	fmt.Fprintf(sb, "\n## bench matrix (%s, seed %d)\n\n", f.Schema, f.Seed)
	sb.WriteString("| scenario | wall (ms) | BW (GB/s) | not hidden (ms) |\n")
	sb.WriteString("|---|---:|---:|---:|\n")
	for _, s := range f.Scenarios {
		fmt.Fprintf(sb, "| %s | %s | %.2f | %s |\n",
			s.Name, ms(s.WallTimeNs), s.BandwidthGBs, ms(s.NotHiddenSyncNs))
	}
}

func renderScaleBenchFile(sb *strings.Builder, f *ScaleBenchFile, format string) {
	if format == FormatCSV {
		fmt.Fprintf(sb, "scalebench,%s/%d,wall_time_ns,%d\n", f.Variant, f.Ranks, f.WallTimeNs)
		fmt.Fprintf(sb, "scalebench,%s/%d,events,%d\n", f.Variant, f.Ranks, f.Events)
		fmt.Fprintf(sb, "scalebench,%s/%d,events_per_sec_floor,%.0f\n", f.Variant, f.Ranks, f.EventsPerSecFloor)
		if f.CritPathFloor > 0 {
			fmt.Fprintf(sb, "scalebench,%s/%d,critpath_floor,%.0f\n", f.Variant, f.Ranks, f.CritPathFloor)
		}
		return
	}
	fmt.Fprintf(sb, "\n## scale bench (%s)\n\n", f.Schema)
	fmt.Fprintf(sb, "- variant %s, %d ranks, seed %d\n", f.Variant, f.Ranks, f.Seed)
	fmt.Fprintf(sb, "- wall %s ms virtual, %d events, digest %s\n", ms(f.WallTimeNs), f.Events, f.Digest)
	fmt.Fprintf(sb, "- throughput floor %.0f events/sec (measured %.0f)\n", f.EventsPerSecFloor, f.EventsPerSec)
	if f.CritPathFloor > 0 {
		fmt.Fprintf(sb, "- critpath analyzer floor %.0f events/sec (measured %.0f)\n",
			f.CritPathFloor, f.CritPathEventsPerSec)
	}
}

func renderScaleFile(sb *strings.Builder, f *ScaleFile, format string) {
	r := f.Report
	name := fmt.Sprintf("%s/%d", r.Variant, r.Ranks)
	if format == FormatCSV {
		fmt.Fprintf(sb, "scale,%s,wall_time_ns,%d\n", name, r.WallTimeNs)
		fmt.Fprintf(sb, "scale,%s,events,%d\n", name, r.Events)
		fmt.Fprintf(sb, "scale,%s,pfs_bytes,%d\n", name, r.PFSBytes)
		fmt.Fprintf(sb, "scale,%s,retransmits,%d\n", name, r.Retransmits)
		fmt.Fprintf(sb, "scale,%s,failover_epochs,%d\n", name, r.FailoverEpochs)
		for _, sh := range r.CritPath {
			fmt.Fprintf(sb, "scale_critpath,%s,%s,%d\n", name, sh.Category, sh.Ns)
		}
		return
	}
	fmt.Fprintf(sb, "\n## scale run (%s, %s)\n\n", r.Schema, name)
	fmt.Fprintf(sb, "- %d ranks on %d nodes, seed %d, drop %d%%\n", r.Ranks, r.Nodes, r.Seed, r.DropPct)
	fmt.Fprintf(sb, "- wall %s ms, %d events, PFS %d of %d expected bytes\n",
		ms(r.WallTimeNs), r.Events, r.PFSBytes, r.ExpectedBytes)
	fmt.Fprintf(sb, "- retransmits %d, net drops %d, failover epochs %d\n",
		r.Retransmits, r.NetDrops, r.FailoverEpochs)
	if f.Digest != "" {
		fmt.Fprintf(sb, "- digest %s\n", f.Digest)
	}
	if len(r.CritPath) > 0 {
		sb.WriteString("\n| critical path category | time (ms) | share |\n|---|---:|---:|\n")
		for _, sh := range r.CritPath {
			fmt.Fprintf(sb, "| %s | %s | %s |\n", sh.Category, ms(sh.Ns), pctOf(sh.Ns, r.WallTimeNs))
		}
	}
}
