package estat

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Report formats.
const (
	FormatMarkdown = "md"
	FormatCSV      = "csv"
	FormatJSON     = "json"
)

// CellReport is one input's derived breakdown: the paper's Figure-5 stacked
// components plus explicit compute and residual rows, so the rows sum to
// the wall time exactly.
type CellReport struct {
	Name             string           `json:"name"`
	Ranks            int              `json:"ranks"`
	Files            int              `json:"files"`
	TotalBytes       int64            `json:"total_bytes"`
	BandwidthGBs     float64          `json:"bandwidth_gbs"`
	WallTimeNs       int64            `json:"wall_time_ns"`
	EventsDispatched int64            `json:"events_dispatched,omitempty"`
	FailoverEpochs   int64            `json:"failover_epochs,omitempty"`
	Rows             []BreakdownEntry `json:"rows"`
}

// SpeedupRow compares a cache-disabled input against a cache-enabled (or
// theoretical) input of the same workload and cell (Figure 6).
type SpeedupRow struct {
	Key         string `json:"key"` // "<workload>/<cell>"
	Case        string `json:"case"`
	DisabledNs  int64  `json:"disabled_ns"`
	EnabledNs   int64  `json:"enabled_ns"`
	SpeedupX100 int64  `json:"speedup_x100"` // ratio * 100, integer
}

// OverlapRow reports how much of the cache synchronisation time was hidden
// behind compute (Figure 7 / Equation 1), derived from the metrics
// snapshot: hidden = sync_extent time - not_hidden_sync time.
type OverlapRow struct {
	Name          string `json:"name"`
	SyncNs        int64  `json:"sync_ns"`
	NotHiddenNs   int64  `json:"not_hidden_ns"`
	HiddenPctX10  int64  `json:"hidden_pct_x10"` // percentage * 10, integer
	SyncedBytes   int64  `json:"synced_bytes"`
	SyncRetries   int64  `json:"sync_retries"`
	JournalReplay int64  `json:"journal_replays"`
}

// RecoveryRow reports the crash-recovery and scrub-and-repair counters:
// what the journal replay restored and what the integrity scrub condemned.
// The row is emitted only for inputs whose run actually recovered or
// quarantined something, so fault-free reports are unchanged.
type RecoveryRow struct {
	Name             string `json:"name"`
	JournalReplays   int64  `json:"journal_replays"`
	RecoveredBytes   int64  `json:"recovered_bytes"`
	CorruptExtents   int64  `json:"corrupt_extents"`
	QuarantinedBytes int64  `json:"quarantined_bytes"`
}

// Report is the analyzer's full output.
type Report struct {
	Cells      []CellReport  `json:"cells"`
	Speedups   []SpeedupRow  `json:"speedups,omitempty"`
	Overlaps   []OverlapRow  `json:"overlaps,omitempty"`
	Recoveries []RecoveryRow `json:"recoveries,omitempty"`
}

// Build derives the report from parsed inputs. It is pure integer
// arithmetic over the inputs, so the same inputs produce byte-identical
// renderings.
func Build(ins []Input) Report {
	var rep Report
	for _, in := range ins {
		rep.Cells = append(rep.Cells, buildCell(in))
		if row, ok := buildOverlap(in); ok {
			rep.Overlaps = append(rep.Overlaps, row)
		}
		if row, ok := buildRecovery(in); ok {
			rep.Recoveries = append(rep.Recoveries, row)
		}
	}
	rep.Speedups = buildSpeedups(ins)
	return rep
}

func buildCell(in Input) CellReport {
	c := CellReport{
		Name:             in.Name(),
		Ranks:            in.Ranks,
		Files:            in.Files,
		TotalBytes:       in.TotalBytes,
		BandwidthGBs:     in.BandwidthGBs,
		WallTimeNs:       in.WallTimeNs,
		EventsDispatched: in.EventsDispatched,
		FailoverEpochs:   in.FailoverEpochs,
	}
	var accounted int64
	for _, e := range in.Breakdown {
		c.Rows = append(c.Rows, e)
		accounted += e.Ns
	}
	if in.ComputeNs > 0 {
		c.Rows = append(c.Rows, BreakdownEntry{Phase: "compute", Ns: in.ComputeNs})
		accounted += in.ComputeNs
	}
	// The residual makes the table sum to the wall time exactly: scheduling
	// gaps, opens, barriers — anything the phase spans don't cover. It can
	// go negative when per-phase maxima come from different ranks.
	c.Rows = append(c.Rows, BreakdownEntry{Phase: "other", Ns: in.WallTimeNs - accounted})
	return c
}

// buildSpeedups pairs each disabled input with every other case sharing its
// workload and cell.
func buildSpeedups(ins []Input) []SpeedupRow {
	type key struct{ workload, cell string }
	disabled := make(map[key]Input)
	for _, in := range ins {
		if in.Case == "disabled" {
			disabled[key{in.Workload, in.Cell}] = in
		}
	}
	var rows []SpeedupRow
	for _, in := range ins {
		if in.Case == "disabled" || in.Case == "" {
			continue
		}
		base, ok := disabled[key{in.Workload, in.Cell}]
		if !ok || in.WallTimeNs <= 0 {
			continue
		}
		rows = append(rows, SpeedupRow{
			Key:         in.Workload + "/" + in.Cell,
			Case:        in.Case,
			DisabledNs:  base.WallTimeNs,
			EnabledNs:   in.WallTimeNs,
			SpeedupX100: base.WallTimeNs * 100 / in.WallTimeNs,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Key != rows[j].Key {
			return rows[i].Key < rows[j].Key
		}
		return rows[i].Case < rows[j].Case
	})
	return rows
}

// snapshot aggregation helpers (the analyzer sees the Snapshot, not the
// live Registry).

func snapCounterSum(in Input, name string) int64 {
	if in.Metrics == nil {
		return 0
	}
	var total int64
	for _, c := range in.Metrics.Counters {
		if c.Name == name {
			total += c.Total
		}
	}
	return total
}

func snapHistSum(in Input, name string) int64 {
	if in.Metrics == nil {
		return 0
	}
	var total int64
	for _, h := range in.Metrics.Histograms {
		if h.Name == name {
			total += h.Sum
		}
	}
	return total
}

func buildRecovery(in Input) (RecoveryRow, bool) {
	row := RecoveryRow{
		Name:             in.Name(),
		JournalReplays:   snapCounterSum(in, "cache_journal_replays_total"),
		RecoveredBytes:   snapCounterSum(in, "cache_recovered_bytes_total"),
		CorruptExtents:   snapCounterSum(in, "cache_corrupt_extents_total"),
		QuarantinedBytes: snapCounterSum(in, "cache_quarantined_bytes_total"),
	}
	if row.JournalReplays == 0 && row.RecoveredBytes == 0 &&
		row.CorruptExtents == 0 && row.QuarantinedBytes == 0 {
		return RecoveryRow{}, false
	}
	return row, true
}

func buildOverlap(in Input) (OverlapRow, bool) {
	syncNs := snapHistSum(in, "cache_sync_extent_ns")
	if syncNs <= 0 {
		return OverlapRow{}, false
	}
	notHidden := snapCounterSum(in, "not_hidden_sync_ns_total")
	hidden := syncNs - notHidden
	if hidden < 0 {
		hidden = 0
	}
	return OverlapRow{
		Name:          in.Name(),
		SyncNs:        syncNs,
		NotHiddenNs:   notHidden,
		HiddenPctX10:  hidden * 1000 / syncNs,
		SyncedBytes:   snapCounterSum(in, "cache_synced_bytes_total"),
		SyncRetries:   snapCounterSum(in, "cache_sync_retries_total"),
		JournalReplay: snapCounterSum(in, "cache_journal_replays_total"),
	}, true
}

// Render builds the report from ins and renders it in the given format.
func Render(ins []Input, format string) (string, error) {
	rep := Build(ins)
	switch format {
	case FormatMarkdown, "":
		return rep.Markdown(), nil
	case FormatCSV:
		return rep.CSV(), nil
	case FormatJSON:
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return "", fmt.Errorf("estat: %w", err)
		}
		return string(b) + "\n", nil
	default:
		return "", fmt.Errorf("estat: unknown format %q (want md, csv or json)", format)
	}
}

// ms renders nanoseconds as fixed-point milliseconds with integer math.
func ms(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1_000_000, ns%1_000_000/1_000)
}

// pctOf renders part/whole as a fixed-point percentage with integer math.
func pctOf(part, whole int64) string {
	if whole == 0 {
		return "-"
	}
	t := part * 1000 / whole
	neg := ""
	if t < 0 {
		neg, t = "-", -t
	}
	return fmt.Sprintf("%s%d.%d%%", neg, t/10, t%10)
}

// Markdown renders the paper-figure-style report.
func (rep Report) Markdown() string {
	var sb strings.Builder
	sb.WriteString("# e10stat report\n")
	for _, c := range rep.Cells {
		fmt.Fprintf(&sb, "\n## %s\n\n", c.Name)
		fmt.Fprintf(&sb, "ranks %d, files %d, %d bytes", c.Ranks, c.Files, c.TotalBytes)
		if c.BandwidthGBs > 0 {
			fmt.Fprintf(&sb, ", perceived bandwidth %.3f GB/s", c.BandwidthGBs)
		}
		if c.EventsDispatched > 0 {
			fmt.Fprintf(&sb, ", %d events dispatched", c.EventsDispatched)
		}
		if c.FailoverEpochs > 0 {
			fmt.Fprintf(&sb, ", %d failover epoch(s)", c.FailoverEpochs)
		}
		sb.WriteString("\n\n")
		sb.WriteString("| component | time (ms) | share |\n")
		sb.WriteString("|---|---:|---:|\n")
		for _, row := range c.Rows {
			fmt.Fprintf(&sb, "| %s | %s | %s |\n", row.Phase, ms(row.Ns), pctOf(row.Ns, c.WallTimeNs))
		}
		fmt.Fprintf(&sb, "| **total (wall)** | %s | %s |\n", ms(c.WallTimeNs), pctOf(c.WallTimeNs, c.WallTimeNs))
	}
	if len(rep.Speedups) > 0 {
		sb.WriteString("\n## Speedup: cache vs no cache\n\n")
		sb.WriteString("| workload/cell | case | disabled (ms) | cached (ms) | speedup |\n")
		sb.WriteString("|---|---|---:|---:|---:|\n")
		for _, r := range rep.Speedups {
			fmt.Fprintf(&sb, "| %s | %s | %s | %s | %d.%02dx |\n",
				r.Key, r.Case, ms(r.DisabledNs), ms(r.EnabledNs),
				r.SpeedupX100/100, r.SpeedupX100%100)
		}
	}
	if len(rep.Overlaps) > 0 {
		sb.WriteString("\n## Flush overlap (Equation 1)\n\n")
		sb.WriteString("| cell | sync (ms) | not hidden (ms) | hidden | synced bytes | retries | replays |\n")
		sb.WriteString("|---|---:|---:|---:|---:|---:|---:|\n")
		for _, r := range rep.Overlaps {
			fmt.Fprintf(&sb, "| %s | %s | %s | %d.%d%% | %d | %d | %d |\n",
				r.Name, ms(r.SyncNs), ms(r.NotHiddenNs),
				r.HiddenPctX10/10, r.HiddenPctX10%10,
				r.SyncedBytes, r.SyncRetries, r.JournalReplay)
		}
	}
	if len(rep.Recoveries) > 0 {
		sb.WriteString("\n## Crash recovery & scrub\n\n")
		sb.WriteString("| cell | journal replays | recovered bytes | corrupt extents | quarantined bytes |\n")
		sb.WriteString("|---|---:|---:|---:|---:|\n")
		for _, r := range rep.Recoveries {
			fmt.Fprintf(&sb, "| %s | %d | %d | %d | %d |\n",
				r.Name, r.JournalReplays, r.RecoveredBytes, r.CorruptExtents, r.QuarantinedBytes)
		}
	}
	return sb.String()
}

// CSV renders the report as flat section,name,key,value rows.
func (rep Report) CSV() string {
	var sb strings.Builder
	sb.WriteString("section,name,key,value\n")
	for _, c := range rep.Cells {
		fmt.Fprintf(&sb, "summary,%s,wall_time_ns,%d\n", c.Name, c.WallTimeNs)
		fmt.Fprintf(&sb, "summary,%s,total_bytes,%d\n", c.Name, c.TotalBytes)
		fmt.Fprintf(&sb, "summary,%s,bandwidth_gbs,%.3f\n", c.Name, c.BandwidthGBs)
		if c.EventsDispatched > 0 {
			fmt.Fprintf(&sb, "summary,%s,events_dispatched,%d\n", c.Name, c.EventsDispatched)
		}
		if c.FailoverEpochs > 0 {
			fmt.Fprintf(&sb, "summary,%s,failover_epochs,%d\n", c.Name, c.FailoverEpochs)
		}
		for _, row := range c.Rows {
			fmt.Fprintf(&sb, "breakdown,%s,%s,%d\n", c.Name, row.Phase, row.Ns)
		}
	}
	for _, r := range rep.Speedups {
		fmt.Fprintf(&sb, "speedup,%s/%s,speedup_x100,%d\n", r.Key, r.Case, r.SpeedupX100)
	}
	for _, r := range rep.Overlaps {
		fmt.Fprintf(&sb, "overlap,%s,sync_ns,%d\n", r.Name, r.SyncNs)
		fmt.Fprintf(&sb, "overlap,%s,not_hidden_ns,%d\n", r.Name, r.NotHiddenNs)
		fmt.Fprintf(&sb, "overlap,%s,hidden_pct_x10,%d\n", r.Name, r.HiddenPctX10)
	}
	for _, r := range rep.Recoveries {
		fmt.Fprintf(&sb, "recovery,%s,journal_replays,%d\n", r.Name, r.JournalReplays)
		fmt.Fprintf(&sb, "recovery,%s,recovered_bytes,%d\n", r.Name, r.RecoveredBytes)
		fmt.Fprintf(&sb, "recovery,%s,corrupt_extents,%d\n", r.Name, r.CorruptExtents)
		fmt.Fprintf(&sb, "recovery,%s,quarantined_bytes,%d\n", r.Name, r.QuarantinedBytes)
	}
	return sb.String()
}
