package estat

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse holds Parse to its contract: arbitrary bytes either produce
// valid inputs or an error — never a panic. The seed corpus covers every
// accepted container shape plus characteristic malformed files; more seeds
// live under testdata/fuzz/FuzzParse.
func FuzzParse(f *testing.F) {
	f.Add([]byte(sampleInput))
	f.Add([]byte("[" + sampleInput + "]"))
	f.Add([]byte(`{"traceEvents": [{"name": "write", "cat": "phase", "ph": "X", "ts": 1, "dur": 2, "tid": 0}]}`))
	f.Add([]byte(`{"traceEvents": []}`))
	f.Add([]byte(`{"schema": "e10stat/v1"}`))
	f.Add([]byte(`{"schema": "bogus"}`))
	f.Add([]byte(`{"wall_time_ns": -1}`))
	f.Add([]byte(`{"traceEvents": [{"ts": "not-a-number", "dur": null, "tid": {"deep": [1,2]}}]}`))
	f.Add([]byte(`[{]`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`0`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ins, err := Parse(data) // must never panic
		if err == nil && len(ins) == 0 {
			t.Errorf("Parse returned no inputs and no error for %q", data)
		}
		if err == nil {
			// Whatever parses must also render without panicking.
			if _, rerr := Render(ins, FormatMarkdown); rerr != nil {
				t.Errorf("parsed input failed to render: %v", rerr)
			}
		}
	})
}

// TestFuzzCorpusCovered replays the checked-in corpus files through Parse so
// the regular test run exercises them even when fuzzing is not invoked.
func TestFuzzCorpusCovered(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzParse")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("seed corpus directory is empty")
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		// Corpus files are in the Go fuzz encoding; feeding the raw file to
		// Parse still checks the no-panic contract on adversarial bytes.
		_, _ = Parse(data)
	}
}
