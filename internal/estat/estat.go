// Package estat defines the serializable experiment-statistics exchange
// format consumed by the e10stat analyzer and produced by the harness (and
// by the -metrics-out flag of the workload binaries). An Input is one
// experiment cell's outcome: identity, timing, per-file phases, the
// Figure-5-style breakdown, and optionally the full metrics snapshot.
//
// Parse is deliberately forgiving about container shape — a single Input, a
// JSON array of Inputs, or a Chrome trace-event file all work — but strict
// about malformed content: it returns errors, never panics (there is a fuzz
// target holding it to that).
package estat

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/metrics"
)

// Schema is the current Input schema identifier.
const Schema = "e10stat/v1"

// PhaseTime is one file's write/close timing (the terms of Equation 1).
type PhaseTime struct {
	WriteNs     int64 `json:"write_ns"`
	CloseWaitNs int64 `json:"close_wait_ns"`
}

// BreakdownEntry is one stacked component of the paper's breakdown figures.
// Entries are ordered (stacking order), so the slice — not a map — carries
// them.
type BreakdownEntry struct {
	Phase string `json:"phase"`
	Ns    int64  `json:"ns"`
}

// Input is one experiment cell's outcome.
type Input struct {
	Schema       string  `json:"schema"`
	Workload     string  `json:"workload"`
	Case         string  `json:"case"`
	Cell         string  `json:"cell"` // "<aggregators>_<cb_mb>mb"
	Ranks        int     `json:"ranks"`
	Files        int     `json:"files"`
	WallTimeNs   int64   `json:"wall_time_ns"`
	ComputeNs    int64   `json:"compute_ns"`
	TotalBytes   int64   `json:"total_bytes"`
	BandwidthGBs float64 `json:"bandwidth_gbs"`
	// EventsDispatched is the kernel's total event count — the cost of the
	// run in simulator work, independent of virtual time. FailoverEpochs
	// counts aggregator-failover recoveries; non-zero only in crash runs.
	EventsDispatched int64             `json:"events_dispatched,omitempty"`
	FailoverEpochs   int64             `json:"failover_epochs,omitempty"`
	Phases           []PhaseTime       `json:"phases,omitempty"`
	Breakdown        []BreakdownEntry  `json:"breakdown,omitempty"`
	Metrics          *metrics.Snapshot `json:"metrics,omitempty"`
}

// Name renders the input's identity for report headings.
func (in Input) Name() string {
	n := in.Workload
	if n == "" {
		n = "unknown"
	}
	if in.Case != "" {
		n += "/" + in.Case
	}
	if in.Cell != "" {
		n += "/" + in.Cell
	}
	return n
}

// Parse decodes report input from raw JSON. Accepted shapes:
//
//   - a single Input object,
//   - a JSON array of Input objects,
//   - a Chrome trace-event file ({"traceEvents": [...]}, as written by
//     -trace-out), from which the phase breakdown and wall time are derived.
//
// Malformed input returns an error; Parse never panics.
func Parse(data []byte) ([]Input, error) {
	if len(data) == 0 {
		return nil, errors.New("estat: empty input")
	}
	// Chrome trace? Detect by the top-level traceEvents key.
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err == nil {
		if raw, ok := probe["traceEvents"]; ok {
			in, err := fromChrome(raw)
			if err != nil {
				return nil, err
			}
			return []Input{in}, nil
		}
		var in Input
		if err := json.Unmarshal(data, &in); err != nil {
			return nil, fmt.Errorf("estat: %w", err)
		}
		if err := validate(in); err != nil {
			return nil, err
		}
		return []Input{in}, nil
	}
	var ins []Input
	if err := json.Unmarshal(data, &ins); err != nil {
		return nil, fmt.Errorf("estat: input is neither an object nor an array: %w", err)
	}
	if len(ins) == 0 {
		return nil, errors.New("estat: empty input array")
	}
	for _, in := range ins {
		if err := validate(in); err != nil {
			return nil, err
		}
	}
	return ins, nil
}

// validate rejects inputs a report could not be built from.
func validate(in Input) error {
	if in.Schema != "" && in.Schema != Schema {
		return fmt.Errorf("estat: unsupported schema %q (want %q)", in.Schema, Schema)
	}
	if in.WallTimeNs < 0 || in.ComputeNs < 0 || in.TotalBytes < 0 {
		return fmt.Errorf("estat: negative timing/size fields in input %q", in.Name())
	}
	for _, e := range in.Breakdown {
		if e.Ns < 0 {
			return fmt.Errorf("estat: negative breakdown entry %q in input %q", e.Phase, in.Name())
		}
	}
	return nil
}

// chromeEvent is the subset of the trace-event format the converter reads.
type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Ts   json.Number     `json:"ts"`
	Dur  json.Number     `json:"dur"`
	Tid  json.RawMessage `json:"tid"`
}

// fromChrome derives an Input from trace events: per-phase time is the
// maximum over tids of each tid's summed "phase"-category span durations
// (the cross-rank max the breakdown figures use), and wall time is the
// latest event end. Timestamps in the file are microseconds; the derived
// Input is nanoseconds.
func fromChrome(raw json.RawMessage) (Input, error) {
	var events []chromeEvent
	if err := json.Unmarshal(raw, &events); err != nil {
		return Input{}, fmt.Errorf("estat: traceEvents: %w", err)
	}
	perTid := make(map[string]map[string]int64) // tid -> phase -> summed ns
	var wallNs int64
	for _, ev := range events {
		ts, err := ev.Ts.Int64()
		if err != nil {
			ts = 0
		}
		dur, err := ev.Dur.Int64()
		if err != nil {
			dur = 0
		}
		if end := (ts + dur) * 1000; end > wallNs {
			wallNs = end
		}
		if ev.Cat != "phase" || ev.Ph != "X" {
			continue
		}
		tid := string(ev.Tid)
		m, ok := perTid[tid]
		if !ok {
			m = make(map[string]int64)
			perTid[tid] = m
		}
		m[ev.Name] += dur * 1000
	}
	maxPhase := make(map[string]int64)
	for _, m := range perTid {
		for ph, ns := range m {
			if ns > maxPhase[ph] {
				maxPhase[ph] = ns
			}
		}
	}
	in := Input{Schema: Schema, Workload: "trace", WallTimeNs: wallNs}
	phases := make([]string, 0, len(maxPhase))
	for ph := range maxPhase {
		phases = append(phases, ph)
	}
	sort.Strings(phases)
	for _, ph := range phases {
		in.Breakdown = append(in.Breakdown, BreakdownEntry{Phase: ph, Ns: maxPhase[ph]})
	}
	return in, nil
}
