package estat

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

const sampleInput = `{
  "schema": "e10stat/v1",
  "workload": "coll_perf",
  "case": "enabled",
  "cell": "4_4mb",
  "ranks": 4,
  "files": 2,
  "wall_time_ns": 2000000000,
  "compute_ns": 1000000000,
  "total_bytes": 536870912,
  "bandwidth_gbs": 0.5,
  "breakdown": [
    {"phase": "write", "ns": 600000000},
    {"phase": "shuffle_all2all", "ns": 300000000}
  ]
}`

func TestParseSingle(t *testing.T) {
	ins, err := Parse([]byte(sampleInput))
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 {
		t.Fatalf("want 1 input, got %d", len(ins))
	}
	if got := ins[0].Name(); got != "coll_perf/enabled/4_4mb" {
		t.Errorf("Name() = %q", got)
	}
	if ins[0].WallTimeNs != 2_000_000_000 {
		t.Errorf("wall time = %d", ins[0].WallTimeNs)
	}
}

func TestParseArray(t *testing.T) {
	ins, err := Parse([]byte("[" + sampleInput + "," + sampleInput + "]"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 2 {
		t.Fatalf("want 2 inputs, got %d", len(ins))
	}
}

func TestParseChromeTrace(t *testing.T) {
	data := `{"traceEvents": [
	  {"name": "write", "cat": "phase", "ph": "X", "ts": 0, "dur": 500, "tid": 1},
	  {"name": "write", "cat": "phase", "ph": "X", "ts": 600, "dur": 700, "tid": 2},
	  {"name": "pack", "cat": "phase", "ph": "X", "ts": 100, "dur": 50, "tid": 1},
	  {"name": "serve", "cat": "pfs", "ph": "X", "ts": 0, "dur": 2000, "tid": 3}
	]}`
	ins, err := Parse([]byte(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 {
		t.Fatalf("want 1 input, got %d", len(ins))
	}
	in := ins[0]
	// Wall time: latest end is ts=0,dur=2000 -> 2000us = 2ms.
	if in.WallTimeNs != 2_000_000 {
		t.Errorf("wall = %d ns, want 2000000", in.WallTimeNs)
	}
	// write: max over tids of summed durations -> max(500, 700) = 700us.
	want := map[string]int64{"pack": 50_000, "write": 700_000}
	if len(in.Breakdown) != len(want) {
		t.Fatalf("breakdown %v, want phases %v", in.Breakdown, want)
	}
	for _, e := range in.Breakdown {
		if want[e.Phase] != e.Ns {
			t.Errorf("phase %s = %d ns, want %d", e.Phase, e.Ns, want[e.Phase])
		}
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"malformed":       "{not json",
		"wrong schema":    `{"schema": "e10stat/v999"}`,
		"negative wall":   `{"wall_time_ns": -5}`,
		"negative phase":  `{"breakdown": [{"phase": "write", "ns": -1}]}`,
		"empty array":     `[]`,
		"scalar":          `42`,
		"bad traceEvents": `{"traceEvents": 42}`,
	}
	for name, data := range cases {
		if _, err := Parse([]byte(data)); err == nil {
			t.Errorf("%s: Parse accepted %q", name, data)
		}
	}
}

func TestBreakdownSumsToWall(t *testing.T) {
	ins, err := Parse([]byte(sampleInput))
	if err != nil {
		t.Fatal(err)
	}
	rep := Build(ins)
	var sum int64
	for _, row := range rep.Cells[0].Rows {
		sum += row.Ns
	}
	if sum != rep.Cells[0].WallTimeNs {
		t.Errorf("rows sum to %d, wall is %d", sum, rep.Cells[0].WallTimeNs)
	}
	// 2e9 wall - (0.6e9 + 0.3e9 + 1e9 compute) = 0.1e9 residual.
	last := rep.Cells[0].Rows[len(rep.Cells[0].Rows)-1]
	if last.Phase != "other" || last.Ns != 100_000_000 {
		t.Errorf("residual row = %+v, want other/100000000", last)
	}
}

func TestSpeedups(t *testing.T) {
	dis, err := Parse([]byte(sampleInput))
	if err != nil {
		t.Fatal(err)
	}
	dis[0].Case = "disabled"
	dis[0].WallTimeNs = 3_000_000_000
	en, err := Parse([]byte(sampleInput))
	if err != nil {
		t.Fatal(err)
	}
	rep := Build([]Input{dis[0], en[0]})
	if len(rep.Speedups) != 1 {
		t.Fatalf("want 1 speedup row, got %d", len(rep.Speedups))
	}
	if rep.Speedups[0].SpeedupX100 != 150 {
		t.Errorf("speedup = %d, want 150 (1.50x)", rep.Speedups[0].SpeedupX100)
	}
}

func TestRecoveryRowFromScrubCounters(t *testing.T) {
	ins, err := Parse([]byte(sampleInput))
	if err != nil {
		t.Fatal(err)
	}
	// No recovery counters: no row, so fault-free reports are unchanged.
	if rep := Build(ins); len(rep.Recoveries) != 0 {
		t.Fatalf("fault-free input grew %d recovery rows", len(rep.Recoveries))
	}
	ins[0].Metrics = &metrics.Snapshot{Counters: []metrics.CounterSnap{
		{Name: "cache_journal_replays_total", Total: 2},
		{Name: "cache_recovered_bytes_total", Total: 1 << 20},
		{Name: "cache_corrupt_extents_total", Total: 3},
		{Name: "cache_quarantined_bytes_total", Total: 64 << 10},
	}}
	rep := Build(ins)
	if len(rep.Recoveries) != 1 {
		t.Fatalf("want 1 recovery row, got %d", len(rep.Recoveries))
	}
	r := rep.Recoveries[0]
	if r.JournalReplays != 2 || r.RecoveredBytes != 1<<20 ||
		r.CorruptExtents != 3 || r.QuarantinedBytes != 64<<10 {
		t.Errorf("recovery row = %+v", r)
	}
	md := rep.Markdown()
	if !strings.Contains(md, "## Crash recovery & scrub") {
		t.Errorf("markdown lacks the recovery section:\n%s", md)
	}
	csv := rep.CSV()
	if !strings.Contains(csv, "recovery,"+ins[0].Name()+",quarantined_bytes,65536") {
		t.Errorf("csv lacks the recovery rows:\n%s", csv)
	}
}

func TestRenderFormats(t *testing.T) {
	ins, err := Parse([]byte(sampleInput))
	if err != nil {
		t.Fatal(err)
	}
	md, err := Render(ins, FormatMarkdown)
	if err != nil || !strings.Contains(md, "# e10stat report") {
		t.Errorf("markdown render: %v\n%s", err, md)
	}
	csv, err := Render(ins, FormatCSV)
	if err != nil || !strings.HasPrefix(csv, "section,name,key,value\n") {
		t.Errorf("csv render: %v\n%s", err, csv)
	}
	js, err := Render(ins, FormatJSON)
	if err != nil || !strings.Contains(js, `"cells"`) {
		t.Errorf("json render: %v\n%s", err, js)
	}
	if _, err := Render(ins, "xml"); err == nil {
		t.Error("unknown format must error")
	}
}

func TestFixedPointHelpers(t *testing.T) {
	if got := ms(1_234_567_890); got != "1234.567" {
		t.Errorf("ms = %q", got)
	}
	if got := ms(-1_500_000); got != "-1.500" {
		t.Errorf("ms negative = %q", got)
	}
	if got := pctOf(250, 1000); got != "25.0%" {
		t.Errorf("pctOf = %q", got)
	}
	if got := pctOf(1, 0); got != "-" {
		t.Errorf("pctOf zero whole = %q", got)
	}
	if got := pctOf(-50, 1000); got != "-5.0%" {
		t.Errorf("pctOf negative = %q", got)
	}
}
