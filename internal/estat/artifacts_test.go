package estat

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/critpath"
	"repro/internal/metrics"
)

// TestParseAnyCommittedArtifacts round-trips every committed artifact the
// repo carries — scale digest goldens and the bench/scale-bench baselines —
// through the artifact union: each must parse to its kind and render in
// every format, deterministically.
func TestParseAnyCommittedArtifacts(t *testing.T) {
	globs := []struct {
		pattern string
		kind    string
	}{
		{"../harness/testdata/scale_digest_*.json", KindScale},
		{"../../BENCH_SCALE_*.json", KindScaleBench},
	}
	seen := 0
	for _, g := range globs {
		files, err := filepath.Glob(g.pattern)
		if err != nil {
			t.Fatal(err)
		}
		for _, path := range files {
			path := path
			t.Run(filepath.Base(path), func(t *testing.T) {
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				art, err := ParseAny(data)
				if err != nil {
					t.Fatal(err)
				}
				if art.Kind != g.kind {
					t.Fatalf("kind = %q, want %q", art.Kind, g.kind)
				}
				for _, format := range []string{FormatMarkdown, FormatCSV, FormatJSON} {
					a, err := RenderAny([]*Artifact{art}, format)
					if err != nil {
						t.Fatalf("%s: %v", format, err)
					}
					if a == "" {
						t.Fatalf("%s: empty rendering", format)
					}
					b, err := RenderAny([]*Artifact{art}, format)
					if err != nil || a != b {
						t.Fatalf("%s: nondeterministic rendering", format)
					}
				}
				if art.Kind == KindScale && art.Scale.Digest == "" {
					t.Error("scale digest golden lost its digest")
				}
			})
			seen++
		}
	}
	if seen == 0 {
		t.Fatal("no committed artifacts found; the globs are stale")
	}
}

// TestParseAnyCritPathAndTimeline round-trips analyzer output through the
// union: Analyze -> JSON -> ParseAny -> render must reproduce the original
// report rendering.
func TestParseAnyCritPathAndTimeline(t *testing.T) {
	tr := critpath.SyntheticTrace(32)
	rep := critpath.Analyze(tr, 0)
	repJSON, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	art, err := ParseAny([]byte(repJSON))
	if err != nil {
		t.Fatal(err)
	}
	if art.Kind != KindCritPath {
		t.Fatalf("kind = %q, want %q", art.Kind, KindCritPath)
	}
	md, err := RenderAny([]*Artifact{art}, FormatMarkdown)
	if err != nil {
		t.Fatal(err)
	}
	if md != rep.Markdown() {
		t.Error("critpath rendering diverges after the round trip")
	}

	tl := critpath.BuildTimeline(tr, 0, 8)
	tlJSON, err := tl.JSON()
	if err != nil {
		t.Fatal(err)
	}
	art, err = ParseAny([]byte(tlJSON))
	if err != nil {
		t.Fatal(err)
	}
	if art.Kind != KindTimeline {
		t.Fatalf("kind = %q, want %q", art.Kind, KindTimeline)
	}
	csv, err := RenderAny([]*Artifact{art}, FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	if csv != tl.CSV() {
		t.Error("timeline CSV diverges after the round trip")
	}
}

// TestParseAnyStatInput keeps the union backward compatible: plain e10stat
// inputs and arrays still parse, as KindStat.
func TestParseAnyStatInput(t *testing.T) {
	for _, data := range []string{sampleInput, "[" + sampleInput + "]"} {
		art, err := ParseAny([]byte(data))
		if err != nil {
			t.Fatal(err)
		}
		if art.Kind != KindStat || len(art.Inputs) != 1 {
			t.Fatalf("kind = %q with %d inputs, want stat/1", art.Kind, len(art.Inputs))
		}
	}
}

// TestParseAnyRejectsMalformed holds the union to Parse's contract: errors,
// never panics.
func TestParseAnyRejectsMalformed(t *testing.T) {
	for _, data := range []string{
		"", "{", `{"schema": "e10bench/v1", "scenarios": 7}`,
		`{"schema": "e10critpath/v1", "wall_ns": "x"}`,
	} {
		if _, err := ParseAny([]byte(data)); err == nil {
			t.Errorf("ParseAny(%q) accepted malformed input", data)
		}
	}
}

// lintSnapshot builds a metrics snapshot whose counter carries n distinct
// values of one label key.
func lintSnapshot(n int) *metrics.Snapshot {
	snap := &metrics.Snapshot{}
	for i := 0; i < n; i++ {
		snap.Counters = append(snap.Counters, metrics.CounterSnap{
			Name:   "cache_synced_bytes_total",
			Labels: map[string]string{"rank": string(rune('a'+i%26)) + string(rune('a'+i/26))},
			Total:  1,
		})
	}
	return snap
}

func TestLintInputsCardinality(t *testing.T) {
	bounded := Input{Schema: Schema, Metrics: lintSnapshot(4)}
	if problems := LintInputs([]Input{bounded}, 8); len(problems) != 0 {
		t.Errorf("bounded labels flagged: %v", problems)
	}
	unbounded := Input{Schema: Schema, Metrics: lintSnapshot(12)}
	problems := LintInputs([]Input{unbounded}, 8)
	if len(problems) != 1 {
		t.Fatalf("want 1 problem, got %v", problems)
	}
	if !strings.Contains(problems[0], "cache_synced_bytes_total") ||
		!strings.Contains(problems[0], `"rank"`) {
		t.Errorf("problem should name the metric and label key: %s", problems[0])
	}
}

func TestLintDataChromeTrace(t *testing.T) {
	var evs []map[string]interface{}
	for i := 0; i < 80; i++ {
		evs = append(evs, map[string]interface{}{
			"name": "write_" + string(rune('a'+i%26)) + string(rune('a'+i/26)),
			"cat":  "phase", "ph": "X", "ts": i, "dur": 1, "tid": 0,
		})
	}
	data, err := json.Marshal(map[string]interface{}{"traceEvents": evs})
	if err != nil {
		t.Fatal(err)
	}
	problems := LintData(data, 0) // 0 -> DefaultLintMax (64)
	if len(problems) != 1 || !strings.Contains(problems[0], `"phase"`) {
		t.Fatalf("want one problem naming the category, got %v", problems)
	}
	if problems := LintData(data, 100); len(problems) != 0 {
		t.Errorf("under a higher budget the trace should lint clean: %v", problems)
	}
}

// TestLintDataCleanArtifacts runs the lint over the committed artifacts:
// all of them must be clean — the repo's own metric and trace vocabularies
// are bounded by design.
func TestLintDataCleanArtifacts(t *testing.T) {
	files, err := filepath.Glob("../../BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	more, err := filepath.Glob("../harness/testdata/*.json")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, more...)
	if len(files) == 0 {
		t.Fatal("no committed artifacts found")
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if problems := LintData(data, 0); len(problems) != 0 {
			t.Errorf("%s: %v", path, problems)
		}
	}
}
