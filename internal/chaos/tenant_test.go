package chaos

import (
	"math/rand"
	"strings"
	"testing"
)

// tenanted returns a small healthy two-tenant scenario on one shared NVM.
func tenanted() Scenario {
	return Scenario{
		Seed: 42, Nodes: 1, PerNode: 4,
		Shape: ShapeContiguous, BlockKB: 64, Blocks: 1,
		Mode: "enable", FlushFlag: "flush_immediate", Sessions: 1,
		Tenants: []TenantSpec{
			{Ranks: 2, Blocks: 2, BlockKB: 64},
			{Ranks: 2, Blocks: 2, BlockKB: 64},
		},
	}
}

func TestTenantCleanScenarioHasNoViolations(t *testing.T) {
	res := mustExecute(t, tenanted())
	if res.Failed() {
		t.Fatalf("clean tenant scenario violated: %v", res.Violations)
	}
	if res.AckedOps != 8 {
		t.Fatalf("acked %d writes, want 8", res.AckedOps)
	}
}

// TestTenantCrashMidFlushIsolation drives the tenant_crash_isolation
// fixture scenario through the run internals: the crashed tenant's ranks
// must actually see the crash (otherwise the fixture pins nothing), the
// quota-starved tenant must actually hit capacity pressure, and still no
// invariant — conservation for the victim, isolation for the survivors —
// may trip.
func TestTenantCrashMidFlushIsolation(t *testing.T) {
	sc := Scenario{
		Seed: 42, Nodes: 2, PerNode: 2,
		Shape: ShapeInterleaved, BlockKB: 64, Blocks: 1,
		Mode: "enable", FlushFlag: "flush_onclose", Sessions: 1,
		SSDCapKB: 1024,
		Tenants: []TenantSpec{
			{Ranks: 1, Blocks: 3, BlockKB: 64},
			{Ranks: 2, Blocks: 3, BlockKB: 64, CrashUS: 3_000},
			{Ranks: 1, Blocks: 3, BlockKB: 64, QuotaKB: 64, Policy: "writethrough"},
		},
	}
	r := &run{sc: sc, solo: -1}
	if err := r.setup(); err != nil {
		t.Fatal(err)
	}
	r.simulate()
	res := r.check()
	if res.Failed() {
		t.Fatalf("crash-isolation scenario violated: %v", res.Violations)
	}
	crashed := 0
	for lr := 0; lr < sc.Tenants[1].Ranks; lr++ {
		if r.rankErr[sc.tenantStart(1)+lr] != "" {
			crashed++
		}
	}
	if crashed == 0 {
		t.Error("crashed tenant's ranks saw no error: the crash never engaged")
	}
	for _, i := range []int{0, 2} {
		for lr := 0; lr < sc.Tenants[i].Ranks; lr++ {
			if e := r.rankErr[sc.tenantStart(i)+lr]; e != "" {
				t.Errorf("surviving tenant %d rank saw error: %s", i, e)
			}
		}
	}
	var pressured int64
	for _, c := range r.tenantCaches[2] {
		pressured += c.Stats.QuotaWriteThroughs + c.Stats.QuotaStalls
	}
	if pressured == 0 {
		t.Error("starvation-quota tenant never hit capacity pressure")
	}
}

// TestTenantScribbleTripsOnlyIsolation pins the blast radius of the
// cross-tenant-scribble injection: the victim's digest diverges, but no
// acked-write oracle fires (the foreign byte lands outside every acked
// extent).
func TestTenantScribbleTripsOnlyIsolation(t *testing.T) {
	sc := tenanted()
	sc.Injection = "cross-tenant-scribble"
	res := mustExecute(t, sc)
	invs := res.ViolatedInvariants()
	if len(invs) != 1 || invs[0] != InvTenantIsolation {
		t.Fatalf("scribble verdict %v, want exactly [%s]", invs, InvTenantIsolation)
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v.Detail, "diverged from its solo same-seed run") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violation detail does not name the solo divergence: %v", res.Violations)
	}
}

func TestTenantExecuteIsDeterministic(t *testing.T) {
	sc := tenanted()
	sc.Tenants[0].QuotaKB = 64
	sc.Tenants[1].Admit = "queue"
	sc.Tenants[1].ReserveKB = 128
	sc.SSDCapKB = 256
	a := mustExecute(t, sc)
	b := mustExecute(t, sc)
	if a.WallNS != b.WallNS || a.Events != b.Events || a.AckedOps != b.AckedOps {
		t.Fatalf("tenant runs diverged: (%d,%d,%d) vs (%d,%d,%d)",
			a.WallNS, a.Events, a.AckedOps, b.WallNS, b.Events, b.AckedOps)
	}
}

func TestGenerateTenantsAlwaysValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		sc := GenerateTenants(rng)
		if err := sc.Validate(); err != nil {
			t.Fatalf("iter %d: generated invalid scenario: %v\n%+v", i, err, sc)
		}
		if len(sc.Tenants) < 2 {
			t.Fatalf("iter %d: generated %d tenants, want >= 2", i, len(sc.Tenants))
		}
		if sc.SSDCapKB <= 0 {
			t.Fatalf("iter %d: no SSD cap override", i)
		}
	}
}

// TestTenantSoakIsClean soaks a few generated tenant scenarios end to end:
// quota pressure, queued admissions, tenant crashes and NVM faults must
// never trip an invariant on their own.
func TestTenantSoakIsClean(t *testing.T) {
	rep, err := ExploreGen(3, 10, GenerateTenants, nil)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if len(rep.Failures) != 0 {
		t.Fatalf("tenant soak found violations:\n%s", rep.Text())
	}
	if len(rep.Tenants) == 0 {
		t.Fatal("report carries no tenant coverage")
	}
}

func TestTenantScenarioValidateRejectsBadInput(t *testing.T) {
	mut := func(f func(*Scenario)) Scenario {
		sc := tenanted()
		f(&sc)
		return sc
	}
	cases := map[string]Scenario{
		"collective+tenants": mut(func(sc *Scenario) { sc.Collective = true; sc.Nodes = 2 }),
		"multi-session":      mut(func(sc *Scenario) { sc.Sessions = 2 }),
		"too many ranks":     mut(func(sc *Scenario) { sc.Tenants[0].Ranks = 4 }),
		"zero-rank tenant":   mut(func(sc *Scenario) { sc.Tenants[1].Ranks = 0 }),
		"bad admit":          mut(func(sc *Scenario) { sc.Tenants[0].Admit = "maybe" }),
		"bad policy":         mut(func(sc *Scenario) { sc.Tenants[0].Policy = "panic" }),
		"reserve beyond quota": mut(func(sc *Scenario) {
			sc.Tenants[0].QuotaKB = 64
			sc.Tenants[0].ReserveKB = 128
		}),
		"negative crash time": mut(func(sc *Scenario) { sc.Tenants[0].CrashUS = -1 }),
		"negative ssd cap":    mut(func(sc *Scenario) { sc.SSDCapKB = -1 }),
		"scribble needs two tenants": mut(func(sc *Scenario) {
			sc.Tenants = sc.Tenants[:1]
			sc.Injection = "cross-tenant-scribble"
		}),
	}
	for name, sc := range cases {
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: invalid scenario accepted", name)
		}
	}
}
