package chaos

import (
	"bytes"
	"fmt"

	"repro/internal/critpath"
	"repro/internal/extent"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/trace"
)

// checkGranularity is the subrange size at which missing/corrupt bytes are
// attributed during conservation checking.
const checkGranularity = 4 << 10

// check runs every oracle against the finished simulation and assembles
// the Result. Violations are appended in fixed invariant order, so two
// runs of the same scenario produce byte-identical results.
func (r *run) check() *Result {
	applyInjection(r, phasePostRun)
	res := &Result{
		Scenario:  r.sc,
		WallNS:    int64(r.cl.Kernel.Now()),
		Events:    r.cl.Kernel.EventsDispatched(),
		AckedOps:  len(r.acked),
		Fallbacks: r.fallbacks,
	}
	if r.mreg != nil {
		snap := r.mreg.Snapshot()
		res.Metrics = &snap
	}
	add := func(inv, format string, args ...interface{}) {
		res.Violations = append(res.Violations, Violation{
			Invariant: inv, Detail: fmt.Sprintf(format, args...),
		})
	}

	// Liveness first: if the kernel aborted, the remaining oracles would
	// report a half-finished world's state, which is noise, not signal.
	// The stuck-collective check still runs — it names the ranks wedged
	// inside a collective, turning "the run hung" into a diagnosis.
	if r.runErr != nil {
		add(InvLiveness, "run did not terminate cleanly: %v", r.runErr)
		r.checkStuckCollective(add)
		return res
	}

	r.checkConservation(add)
	r.checkRecoveryEquivalence(add)
	r.checkIdempotence(add)
	r.checkLockRelease(add)
	r.checkTraceMetrics(add)
	r.checkCritPath(res, add)
	r.checkStuckCollective(add)
	if r.solo < 0 {
		// Solo baseline runs exist only to be digested by this very oracle;
		// re-checking them would recurse.
		r.checkTenantIsolation(add)
	}
	return res
}

// checkStuckCollective verifies the collective-call balance of every rank
// that is still alive: calls entered == calls completed. With collective
// timeouts armed, even a partitioned or bereaved collective must return
// (with a typed error) rather than strand its participants.
func (r *run) checkStuckCollective(add func(inv, format string, args ...interface{})) {
	w := r.cl.World
	for id := 0; id < w.Size(); id++ {
		if !w.Alive(id) {
			continue // a killed rank legitimately left collectives unfinished
		}
		if started, done := w.CollBalance(id); started != done {
			add(InvStuckCollective,
				"rank %d entered %d collective(s) but completed only %d", id, started, done)
		}
	}
}

// checkConservation enforces the two durability invariants over every
// acknowledged write, comparing the global file against the in-memory
// reference oracle:
//
//   - lost_ack: a rank that was never told about any error must find every
//     byte it wrote durable in the global file, payload-identical.
//   - byte_conservation: a rank that WAS told about an error may have
//     non-durable bytes, but each such byte must still be accounted for —
//     journalled for recovery with the payload intact in the retained
//     cache file. Bytes in neither place are silently lost.
func (r *run) checkConservation(add func(inv, format string, args ...interface{})) {
	// Per-file durable view (tenant scenarios spread writes over several
	// global files), built lazily.
	type fileView struct {
		st      store.Store
		durable *extent.Set
	}
	views := map[string]fileView{}
	view := func(path string) fileView {
		if v, ok := views[path]; ok {
			return v
		}
		v := fileView{durable: &extent.Set{}}
		if meta := r.cl.FS.Lookup(path); meta != nil {
			v.st = meta.Store()
			v.durable = v.st.Written()
		}
		views[path] = v
		return v
	}
	// Per-rank journal cover and cache payload reader, built lazily.
	journals := map[int]*extent.Set{}
	journalFor := func(rank int) *extent.Set {
		if s, ok := journals[rank]; ok {
			return s
		}
		s := &extent.Set{}
		if key := r.journalKey[rank]; key != "" {
			for _, e := range r.cl.CoreEnv.JournalExtents(key) {
				s.Add(e)
			}
		}
		journals[rank] = s
		return s
	}
	cacheBytes := func(rank int, off, n int64) []byte {
		name := r.cacheName[rank]
		if name == "" {
			return nil
		}
		cf, err := r.cl.NVMs[r.cacheNode[rank]].Open(name, false)
		if err != nil {
			return nil
		}
		buf := make([]byte, n)
		cf.Store().ReadAt(buf, off)
		return buf
	}
	// The scrub-loss ledger: ranges a recovery scrub condemned. It outlives
	// recovery opens that themselves died mid-replay, unlike the harvested
	// per-cache quarantine sets.
	scrubLost := map[int]*extent.Set{}
	scrubLostFor := func(rank int) *extent.Set {
		if s, ok := scrubLost[rank]; ok {
			return s
		}
		s := &extent.Set{}
		if key := r.journalKey[rank]; key != "" {
			for _, e := range r.cl.CoreEnv.ScrubLost(key) {
				s.Add(e)
			}
		}
		scrubLost[rank] = s
		return s
	}
	// cacheCorrupt reports whether the rank's cache store itself flags
	// corruption inside e — rot that landed after the last scrub, which no
	// oracle-visible scrub has condemned yet but the checksums still catch.
	cacheCorrupt := func(rank int, e extent.Extent) bool {
		name := r.cacheName[rank]
		if name == "" {
			return false
		}
		cf, err := r.cl.NVMs[r.cacheNode[rank]].Open(name, false)
		if err != nil {
			return false
		}
		integ, ok := cf.Store().(store.Integrity)
		if !ok {
			return false
		}
		return len(integ.VerifyExtent(e)) > 0
	}

	for _, rec := range r.acked {
		fv := view(rec.file)
		want := make([]byte, rec.ext.Len)
		r.refFor(rec.file).ReadAt(want, rec.ext.Off)
		got := make([]byte, rec.ext.Len)
		if fv.st != nil {
			fv.st.ReadAt(got, rec.ext.Off)
		}
		if fv.durable.Covers(rec.ext) && bytes.Equal(want, got) {
			continue // fully durable, payload-identical
		}
		if r.rankErr[rec.rank] == "" {
			add(InvLostAck,
				"rank %d write [%d,+%d) acked with no surfaced error, but bytes are not durable in %s",
				rec.rank, rec.ext.Off, rec.ext.Len, rec.file)
			continue
		}
		// The rank saw an error; every non-durable subrange must still be
		// recoverable: journalled, with matching payload in the cache file.
		j := journalFor(rec.rank)
		for off := rec.ext.Off; off < rec.ext.End(); off += checkGranularity {
			n := rec.ext.End() - off
			if n > checkGranularity {
				n = checkGranularity
			}
			lo := off - rec.ext.Off
			if fv.durable.Covers(extent.Extent{Off: off, Len: n}) && bytes.Equal(want[lo:lo+n], got[lo:lo+n]) {
				continue
			}
			// Subranges a scrub condemned are not silent loss: the scrub
			// detected the corruption, counted it, and degraded the range to
			// re-fetch/write-through. The recovery-equivalence oracle owns
			// the quarantine bookkeeping. The ledger (not just the harvested
			// quarantine view) matters: a recovery open can itself die
			// mid-replay, leaving no cache to harvest from.
			sub := extent.Extent{Off: off, Len: n}
			if r.quarantined[rec.rank].Covers(sub) || scrubLostFor(rec.rank).Covers(sub) {
				continue
			}
			if !j.Covers(sub) {
				add(InvConservation,
					"rank %d bytes [%d,+%d) neither durable nor journalled (rank error: %s)",
					rec.rank, off, n, r.rankErr[rec.rank])
				break
			}
			if cb := cacheBytes(rec.rank, off, n); cb == nil || !bytes.Equal(cb, want[lo:lo+n]) {
				// Payload rot the checksums can still catch is detected-not-
				// silent: the next recovery's scrub quarantines exactly these
				// chunks. Only undetectable divergence is a violation.
				if cacheCorrupt(rec.rank, sub) {
					continue
				}
				add(InvConservation,
					"rank %d bytes [%d,+%d) journalled but cache payload lost or corrupt",
					rec.rank, off, n)
				break
			}
		}
	}
}

// checkRecoveryEquivalence verifies scrub-and-repair recovery told the
// truth: every extent the replay reported restored is durable in the
// global file and byte-identical to the cache payload the replay copied
// from (its own source of truth — the reference-pattern comparison is
// conservation's business), and the quarantine stats agree with the
// quarantined extent sets. Quarantined subranges are excluded from the
// byte comparison — a range honestly replayed by one recovery may be
// legitimately quarantined by a later one when corruption strikes between
// the sessions — as are chunks the cache store currently flags corrupt
// (rot that landed after the last scrub, which no oracle-visible scrub
// ever judged). This is what stands between "recovery ran" and "recovery
// claims bytes it never actually restored".
func (r *run) checkRecoveryEquivalence(add func(inv, format string, args ...interface{})) {
	if r.recovered == nil {
		return
	}
	var st store.Store
	durable := &extent.Set{}
	if meta := r.cl.FS.Lookup(FilePath); meta != nil {
		st = meta.Store()
		durable = st.Written()
	}
	for rank := range r.recovered {
		rs, qs := r.recovered[rank], r.quarantined[rank]
		if rs.Len() == 0 && qs.Len() == 0 && r.quarBytes[rank] == 0 {
			continue
		}
		var cacheStore store.Store
		if name := r.cacheName[rank]; name != "" {
			if cf, err := r.cl.NVMs[r.cacheNode[rank]].Open(name, false); err == nil {
				cacheStore = cf.Store()
			}
		}
		// The excluded view: everything scrub quarantined plus whatever the
		// cache store flags corrupt right now.
		var excluded extent.Set
		for _, e := range qs.Extents() {
			excluded.Add(e)
		}
		if integ, ok := cacheStore.(store.Integrity); ok {
			for _, e := range rs.Extents() {
				for _, bad := range integ.VerifyExtent(e) {
					excluded.Add(bad)
				}
			}
		}
		for _, e := range rs.Extents() {
			for _, sub := range excluded.Gaps(e) {
				if !durable.Covers(sub) {
					add(InvRecoveryEquivalence,
						"rank %d recovered extent [%d,+%d) is not durable in %s", rank, sub.Off, sub.Len, FilePath)
					continue
				}
				got := make([]byte, sub.Len)
				if st != nil {
					st.ReadAt(got, sub.Off)
				}
				want := make([]byte, sub.Len)
				if cacheStore != nil {
					cacheStore.ReadAt(want, sub.Off)
				}
				if !bytes.Equal(got, want) {
					i := 0
					for i < len(got) && got[i] == want[i] {
						i++
					}
					add(InvRecoveryEquivalence,
						"rank %d recovered extent [%d,+%d) differs from the replayed cache payload at offset %d",
						rank, sub.Off, sub.Len, sub.Off+int64(i))
				}
			}
		}
		if (qs.Len() > 0) != (r.quarBytes[rank] > 0) {
			add(InvRecoveryEquivalence,
				"rank %d quarantine bookkeeping inconsistent: %d quarantined extent(s) vs %d stat byte(s)",
				rank, qs.Len(), r.quarBytes[rank])
		}
	}
}

// checkIdempotence compares the global file's bytes over the crash
// session's journal before and after the second replay. Replay-twice ==
// replay-once only holds when nothing corrupts the cache between the two
// replays, so the check stands down when a corruption fault fired at or
// after the first recovery began — the scrub's verdicts then legitimately
// differ between the sessions (the deliberate corrupt-replay injection
// stages its corruption without a fault, so it is still caught).
func (r *run) checkIdempotence(add func(inv, format string, args ...interface{})) {
	if !r.staged {
		return
	}
	for _, a := range r.sc.Faults {
		if (a.Kind == fault.TornWrite || a.Kind == fault.BitRot) &&
			int64(sim.Time(a.FromUS)*sim.Microsecond) >= r.recoverStartNS {
			return
		}
	}
	if !bytes.Equal(r.idemA, r.idemB) {
		i := 0
		for i < len(r.idemA) && r.idemA[i] == r.idemB[i] {
			i++
		}
		add(InvIdempotence,
			"global file differs after second journal replay (first diff at journal byte %d of %d)",
			i, len(r.idemA))
	}
}

// checkLockRelease verifies no byte-range lock outlives the run, on any
// global file the scenario can touch.
func (r *run) checkLockRelease(add func(inv, format string, args ...interface{})) {
	for _, path := range r.files() {
		if held := r.cl.FS.Locks.HeldLocks(path); held != 0 {
			add(InvLockRelease, "%d byte-range lock(s) on %s still held after the run", held, path)
		}
	}
}

// checkCritPath runs the critical-path analyzer over the run's trace and
// enforces its self-consistency contract: attributed time sums exactly to
// the virtual wall time (an event outliving the run means the trace and
// the kernel disagree about when the run ended), the per-category shares
// partition the attributed total, and every message edge the path followed
// is backed by a matching async begin/end pair in the trace.
func (r *run) checkCritPath(res *Result, add func(inv, format string, args ...interface{})) {
	wall := int64(r.cl.Kernel.Now())
	rep := critpath.Analyze(r.tracer, wall)
	res.CritPath = rep
	res.Timeline = critpath.BuildTimeline(r.tracer, wall, critpath.DefaultTimelineBuckets)
	if rep.AttributedNs != wall {
		add(InvCritPath, "attributed path time %d ns != virtual wall time %d ns", rep.AttributedNs, wall)
	}
	var sum int64
	for _, sh := range rep.Shares {
		sum += sh.Ns
	}
	if sum != rep.AttributedNs {
		add(InvCritPath, "category shares sum to %d ns, want attributed total %d ns", sum, rep.AttributedNs)
	}
	type pairEv struct {
		beginTk, endTk trace.TrackID
		beginTs, endTs int64
		haveB, haveE   bool
	}
	pairs := map[uint64]*pairEv{}
	for _, ev := range r.tracer.Events() {
		switch ev.Kind {
		case trace.KindAsyncBegin, trace.KindAsyncEnd:
			p := pairs[ev.ID]
			if p == nil {
				p = &pairEv{}
				pairs[ev.ID] = p
			}
			if ev.Kind == trace.KindAsyncBegin {
				p.beginTk, p.beginTs, p.haveB = ev.Track, ev.Start, true
			} else {
				p.endTk, p.endTs, p.haveE = ev.Track, ev.Start, true
			}
		}
	}
	for _, e := range rep.Edges {
		p := pairs[e.ID]
		if p == nil || !p.haveB || !p.haveE ||
			p.beginTs != e.SendNs || p.endTs != e.RecvNs ||
			r.tracer.TrackName(p.beginTk) != e.From || r.tracer.TrackName(p.endTk) != e.To {
			add(InvCritPath, "path edge id=%d %s@%d -> %s@%d has no matching async pair in the trace",
				e.ID, e.From, e.SendNs, e.To, e.RecvNs)
		}
	}
}

// checkTraceMetrics cross-checks the three independent records of sync
// retries: traced retry instants, the metrics counter, and the per-cache
// stats. Any divergence means one observability layer lies.
func (r *run) checkTraceMetrics(add func(inv, format string, args ...interface{})) {
	var traced int64
	for _, ev := range r.tracer.Events() {
		if ev.Kind == trace.KindInstant && ev.Name == "sync_retry" {
			traced++
		}
	}
	counted := r.mreg.Counter("cache_sync_retries_total", metrics.L(metrics.KeyLayer, "core")).Total()
	var stats int64
	for _, c := range r.caches {
		stats += c.Stats.SyncRetries
	}
	if traced != counted || counted != stats {
		add(InvTraceMetrics,
			"sync retries disagree: %d traced instants, %d in cache_sync_retries_total, %d in cache stats",
			traced, counted, stats)
	}
}
