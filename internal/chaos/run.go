package chaos

import (
	"fmt"
	"sort"

	"repro/internal/adio"
	"repro/internal/core"
	"repro/internal/critpath"
	"repro/internal/extent"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/trace"
)

// FilePath is the shared global file every scenario writes.
const FilePath = "chaos.dat"

// Violation is one oracle failure.
type Violation struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// The invariant registry. Every violation names one of these.
const (
	InvConservation = "byte_conservation"   // every acked byte durable or journalled
	InvLostAck      = "lost_ack"            // success reported, bytes gone
	InvIdempotence  = "journal_idempotence" // recover twice == recover once
	InvLockRelease  = "lock_release"        // no byte-range lock survives the run
	InvLiveness     = "liveness"            // the run terminates (no deadlock/livelock)
	InvTraceMetrics = "trace_metrics"       // retry counters match traced retries
	// InvStuckCollective demands every surviving rank left every collective
	// it entered — by completing it or by a surfaced timeout, never by
	// parking forever while the rest of the run moves on.
	InvStuckCollective = "no_stuck_collective"
	// InvTenantIsolation demands that in a multi-tenant run, every tenant
	// not deliberately faulted (crashed, or hosted on a faulted node) ends
	// with its file byte-identical to a solo same-seed run of just that
	// tenant, and that capacity pressure alone never fails its job.
	InvTenantIsolation = "tenant_isolation"
	// InvCritPath demands the critical-path analysis be self-consistent
	// with the run it describes: the attributed path time sums exactly to
	// the virtual wall time (no trace event may outlive the run), the
	// category shares sum to the attributed total, and every message edge
	// on the path is backed by a matching async begin/end pair in the
	// trace.
	InvCritPath = "critpath_consistency"
	// InvRecoveryEquivalence demands scrub-and-repair recovery be honest:
	// every extent the replay claims to have restored must be durable in
	// the global file and byte-identical to the clean same-seed payload,
	// no range may be both recovered and quarantined, and the quarantine
	// stats must agree with the quarantined extent set.
	InvRecoveryEquivalence = "recovery_equivalence"
)

// Invariants lists every checked invariant, in report order.
var Invariants = []string{
	InvConservation, InvLostAck, InvIdempotence,
	InvLockRelease, InvLiveness, InvTraceMetrics, InvStuckCollective,
	InvTenantIsolation, InvCritPath, InvRecoveryEquivalence,
}

// Result is one executed scenario's verdict.
type Result struct {
	Scenario   Scenario    `json:"scenario"`
	Violations []Violation `json:"violations"`
	WallNS     int64       `json:"wall_ns"`
	Events     int64       `json:"events"`
	AckedOps   int         `json:"acked_ops"`
	Fallbacks  int         `json:"fallbacks"`

	// CritPath is the analysis the critpath_consistency oracle ran (and
	// Timeline the matching run timeline, built on demand by e10chaos).
	// Both are excluded from the JSON so repro fixtures and soak report
	// digests stay byte-identical.
	CritPath *critpath.Report   `json:"-"`
	Timeline *critpath.Timeline `json:"-"`

	// Metrics is the run's full metric snapshot (recovery and scrub
	// counters included), for e10chaos -metrics-out. Excluded from the
	// JSON for the same reason as CritPath.
	Metrics *metrics.Snapshot `json:"-"`
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// ViolatedInvariants returns the sorted, deduplicated invariant names.
func (r *Result) ViolatedInvariants() []string {
	seen := map[string]bool{}
	for _, v := range r.Violations {
		seen[v.Invariant] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// writeRec records one acknowledged (error-free) WriteContig.
type writeRec struct {
	rank int
	ext  extent.Extent
	file string // global file the write targeted
}

// run carries one scenario's execution state from setup through oracles.
type run struct {
	sc     Scenario
	cl     *harness.Cluster
	tracer *trace.Tracer
	mreg   *metrics.Registry
	ref    map[string]store.Store // per file: what SHOULD be durable

	live   []map[*core.Cache]bool // per node: caches currently open
	caches []*core.Cache          // every cache ever installed

	// Multi-tenant state. solo >= 0 restricts the run to that one tenant
	// (the isolation oracle's contention-free baseline).
	solo         int
	tenantCaches [][]*core.Cache // per tenant: every cache it ever opened

	acked      []writeRec
	rankErr    []string // first surfaced error per rank ("" = clean run)
	cacheName  []string // per rank: cache file path ("" if never cached)
	cacheNode  []int    // per rank: node index
	journalKey []string // per rank: journal registry key

	idemKeys []string                   // journal keys snapshotted after the crash session
	idemJ    map[string][]extent.Extent // their extents
	idemA    []byte                     // PFS bytes over idemJ after first recovery
	idemB    []byte                     // ... after second recovery
	staged   bool                       // idempotence probe actually ran

	// Scrub-and-repair accounting, per rank: ranges the recovery replay
	// restored to the global file, ranges scrub quarantined as corrupt,
	// and the cumulative quarantined byte count from the cache stats.
	// recoverStartNS is the virtual time the first recovery open began —
	// the oracle boundary between "corruption the scrub had to catch" and
	// "corruption racing the replay itself".
	recovered      []*extent.Set
	quarantined    []*extent.Set
	quarBytes      []int64
	recoverStartNS int64

	fallbacks int   // recovery opens that reverted to the standard path
	runErr    error // kernel verdict: nil, deadlock, or event budget
}

// pattern computes the chaos workload's deterministic payload byte for an
// absolute file offset written by rank.
func pattern(rank int, off int64) byte {
	return byte(int64(rank)*151 + off*11 + 29)
}

func patternBuf(rank int, off, size int64) []byte {
	buf := make([]byte, size)
	for i := range buf {
		buf[i] = pattern(rank, off+int64(i))
	}
	return buf
}

// Execute runs one scenario end to end — build the cluster, arm the fault
// schedule, run every session, then check every oracle — and returns its
// verdict. It errors only on an invalid scenario; invariant failures are
// reported in the Result.
func Execute(sc Scenario) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	r := &run{sc: sc, solo: -1}
	if err := r.setup(); err != nil {
		return nil, err
	}
	r.simulate()
	return r.check(), nil
}

// refFor returns (creating on demand) the in-memory reference store for
// one global file.
func (r *run) refFor(path string) store.Store {
	if s, ok := r.ref[path]; ok {
		return s
	}
	s := store.NewMem()
	r.ref[path] = s
	return s
}

// files returns every global file path the scenario can touch.
func (r *run) files() []string {
	out := []string{FilePath}
	for i := range r.sc.Tenants {
		out = append(out, tenantFile(i))
	}
	return out
}

// setup assembles the cluster, observability, crash hook and fault
// schedule.
func (r *run) setup() error {
	cfg := harness.Scaled(r.sc.Seed, r.sc.Nodes, r.sc.PerNode)
	cfg.Payload = true // oracles compare real bytes
	if r.sc.SSDCapKB > 0 {
		cfg.SSD.Capacity = r.sc.SSDCapKB << 10
	}
	r.cl = harness.NewCluster(cfg)
	r.tracer = trace.New()
	r.mreg = metrics.New()
	r.cl.Kernel.SetTracer(r.tracer)
	r.cl.Kernel.SetMetrics(r.mreg)
	budget := r.sc.EventBudget
	if budget <= 0 {
		budget = DefaultEventBudget
	}
	r.cl.Kernel.SetEventBudget(budget)

	r.ref = make(map[string]store.Store)
	r.tenantCaches = make([][]*core.Cache, len(r.sc.Tenants))
	ranks := r.sc.ranks()
	r.rankErr = make([]string, ranks)
	r.cacheName = make([]string, ranks)
	r.cacheNode = make([]int, ranks)
	r.journalKey = make([]string, ranks)
	r.recovered = make([]*extent.Set, ranks)
	r.quarantined = make([]*extent.Set, ranks)
	r.quarBytes = make([]int64, ranks)
	for i := 0; i < ranks; i++ {
		r.recovered[i] = &extent.Set{}
		r.quarantined[i] = &extent.Set{}
	}
	r.live = make([]map[*core.Cache]bool, r.sc.Nodes)
	for i := range r.live {
		r.live[i] = make(map[*core.Cache]bool)
	}
	r.cl.OnCrash = func(node int) {
		for c := range r.live[node] {
			c.Crash()
		}
		if r.sc.Collective {
			// Degraded-mode scenarios model the whole node dying: its MPI
			// ranks unwind too, and the survivors must fail over.
			r.cl.World.KillNode(node)
		}
	}
	if r.sc.Collective {
		// The degraded-mode stack: retransmitting transport plus bounded
		// collectives, so lost messages and partitions surface as typed
		// errors instead of deadlocks. The timeout must exceed one
		// two-phase round's aggregator I/O at the chaos block sizes.
		r.cl.World.EnableReliable(mpi.ReliableConfig{})
		r.cl.World.SetCollTimeout(collectiveTimeout)
	}
	if _, err := r.cl.ArmFaults(r.sc.Schedule()); err != nil {
		return fmt.Errorf("chaos: arming schedule: %w", err)
	}
	applyInjection(r, phasePreRun)
	return nil
}

// fail records a surfaced error for rank (first error wins — it is the one
// the application would have acted on).
func (r *run) fail(rank int, session string, err error) {
	if err != nil && r.rankErr[rank] == "" {
		r.rankErr[rank] = session + ": " + err.Error()
	}
}

// open performs one collective open with the scenario's hints. recovery
// selects the e10_cache_recovery + retain-cache hint set used by sessions
// 2 and 3.
func (r *run) open(mr *mpi.Rank, recovery bool) (*adio.File, error) {
	info := mpi.Info{
		adio.HintCBWrite:   "enable",
		core.HintCache:     r.sc.Mode,
		core.HintFlushFlag: r.sc.FlushFlag,
	}
	if recovery {
		info[core.HintCacheRecovery] = "enable"
		info[core.HintDiscardFlag] = "disable"
	} else if !r.sc.Discard {
		info[core.HintDiscardFlag] = "disable"
	}
	f, err := adio.OpenColl(mr, adio.OpenArgs{
		Comm: r.cl.World.Comm(), Registry: r.cl.Env.Registry,
		Path: FilePath, Create: true, Info: info,
		Hooks: r.cl.CoreEnv.HooksFactory(),
	})
	if err != nil {
		return nil, err
	}
	if c, ok := f.InstalledHooks().(*core.Cache); ok && c != nil {
		node := mr.Node().ID()
		r.live[node][c] = true
		r.caches = append(r.caches, c)
		r.cacheName[mr.ID()] = c.Name()
		r.cacheNode[mr.ID()] = node
		r.journalKey[mr.ID()] = c.JournalKey()
	}
	return f, nil
}

// close closes f and unregisters its cache from the crash registry.
func (r *run) close(f *adio.File, mr *mpi.Rank) error {
	c, _ := f.InstalledHooks().(*core.Cache)
	err := f.Close()
	if c != nil {
		delete(r.live[mr.Node().ID()], c)
	}
	return err
}

// collectiveTimeout bounds every collective call in degraded-mode
// scenarios; the paired receive deadline is derived from it (timeout/2).
const collectiveTimeout = 200 * sim.Millisecond

// simulateCollective runs the degraded-mode workload: one resilient
// two-phase strided write per rank, under whatever the schedule throws at
// the fabric. Ranks on crashed nodes are killed outright and unwind; a
// surviving rank whose write returns nil has every byte acked through
// round-acks, which is exactly what the conservation oracle then checks
// against the global file.
func (r *run) simulateCollective() {
	sc := r.sc
	r.runErr = r.cl.World.Run(func(mr *mpi.Rank) {
		me := mr.ID()
		f, err := adio.OpenColl(mr, adio.OpenArgs{
			Comm: r.cl.World.Comm(), Registry: r.cl.Env.Registry,
			Path: FilePath, Create: true,
			Info: mpi.Info{
				adio.HintCBNodes:        "2",
				adio.HintCBBufferSize:   "1048576",
				adio.HintResilientWrite: "enable",
			},
		})
		if err != nil {
			r.fail(me, "open", err)
			return
		}
		if me == 0 {
			applyInjection(r, phaseSession1, mr)
		}
		var segs []extent.Extent
		var data []byte
		for b := 0; b < sc.Blocks; b++ {
			off := sc.offsetFor(me, b)
			segs = append(segs, extent.Extent{Off: off, Len: sc.blockSize()})
			data = append(data, patternBuf(me, off, sc.blockSize())...)
		}
		if werr := f.WriteStridedColl(segs, data); werr != nil {
			r.fail(me, "write", werr)
		} else {
			for _, s := range segs {
				r.acked = append(r.acked, writeRec{rank: me, ext: s, file: FilePath})
				r.refFor(FilePath).WriteAt(patternBuf(me, s.Off, s.Len), s.Off, s.Len)
			}
		}
		if cerr := f.Close(); cerr != nil {
			r.fail(me, "close", cerr)
		}
	})
}

// simulate runs every session of the scenario inside one kernel run. All
// ranks execute the same collective structure unconditionally — OpenColl
// contains barriers, so the session count must be scenario-driven, never
// runtime-state-driven.
func (r *run) simulate() {
	if r.sc.Collective {
		r.simulateCollective()
		return
	}
	if len(r.sc.Tenants) > 0 {
		r.simulateTenants()
		return
	}
	sc := r.sc
	comm := r.cl.World.Comm()
	r.runErr = r.cl.World.Run(func(mr *mpi.Rank) {
		me := mr.ID()

		// Session 1: the write workload.
		f, err := r.open(mr, false)
		if err != nil {
			r.fail(me, "open", err)
		} else {
			if me == 0 {
				applyInjection(r, phaseSession1, mr)
			}
			for b := 0; b < sc.Blocks; b++ {
				off := sc.offsetFor(me, b)
				size := sc.blockSize()
				data := patternBuf(me, off, size)
				if werr := f.WriteContig(data, off, size); werr != nil {
					r.fail(me, "write", werr)
				} else {
					r.acked = append(r.acked, writeRec{rank: me, ext: extent.Extent{Off: off, Len: size}, file: FilePath})
					r.refFor(FilePath).WriteAt(data, off, size)
				}
			}
			if cerr := r.close(f, mr); cerr != nil {
				r.fail(me, "close", cerr)
			}
		}
		if sc.Sessions < 2 {
			return
		}

		// Session 2: recovery open. Rank 0 snapshots the crash session's
		// journals between two barriers, before any rank can replay them.
		comm.Barrier(mr)
		if me == 0 && sc.Sessions >= 3 {
			r.idemKeys = r.cl.CoreEnv.JournalKeys()
			r.idemJ = make(map[string][]extent.Extent, len(r.idemKeys))
			for _, k := range r.idemKeys {
				r.idemJ[k] = r.cl.CoreEnv.JournalExtents(k)
			}
		}
		comm.Barrier(mr)
		r.runSession(mr, "recover1")
		if sc.Sessions < 3 {
			return
		}

		// Session 3: re-stage the journal (modelling a crash that lost the
		// journal trim after the data was already durable) and recover
		// again. The global file must come out byte-identical.
		comm.Barrier(mr)
		if me == 0 && len(r.idemKeys) > 0 {
			r.idemA = r.snapshotPFS()
			for _, k := range r.idemKeys {
				r.cl.CoreEnv.RestoreJournal(k, r.stagedExtents(k))
			}
			applyInjection(r, phaseStaging)
			r.staged = true
		}
		comm.Barrier(mr)
		r.runSession(mr, "recover2")
		comm.Barrier(mr)
		if me == 0 && r.staged {
			r.idemB = r.snapshotPFS()
		}
	})
}

// runSession performs one recovery open/close round.
func (r *run) runSession(mr *mpi.Rank, tag string) {
	if r.recoverStartNS == 0 {
		r.recoverStartNS = int64(r.cl.Kernel.Now())
	}
	f, err := r.open(mr, true)
	if err != nil {
		r.fail(mr.ID(), tag+"/open", err)
		return
	}
	if f.Stats.CacheFallback {
		r.fallbacks++
	}
	if c, ok := f.InstalledHooks().(*core.Cache); ok && c != nil {
		// Harvest the open's scrub-and-repair verdicts while the cache is
		// live: what the replay restored and what scrub quarantined.
		me := mr.ID()
		for _, e := range c.Recovered() {
			r.recovered[me].Add(e)
		}
		for _, e := range c.Quarantined() {
			r.quarantined[me].Add(e)
		}
		r.quarBytes[me] += c.Stats.QuarantinedBytes
	}
	if err := r.close(f, mr); err != nil {
		r.fail(mr.ID(), tag+"/close", err)
	}
}

// stagedExtents returns the crash-session journal extents to re-stage
// under key for the idempotence probe, minus whatever the first recovery's
// scrub quarantined. The probe models a crash that lost the journal TRIM
// after the data landed — quarantined ranges were never replayed, so no
// trim of theirs could have been lost, and re-staging them would resurrect
// data the scrub already condemned.
func (r *run) stagedExtents(key string) []extent.Extent {
	exts := r.idemJ[key]
	for rank, k := range r.journalKey {
		if k != key || r.quarantined[rank].Len() == 0 {
			continue
		}
		var kept []extent.Extent
		for _, e := range exts {
			kept = append(kept, r.quarantined[rank].Gaps(e)...)
		}
		exts = kept
	}
	return exts
}

// snapshotPFS reads the global file's bytes over every snapshotted journal
// extent, in deterministic (key, extent) order.
func (r *run) snapshotPFS() []byte {
	var out []byte
	meta := r.cl.FS.Lookup(FilePath)
	for _, k := range r.idemKeys {
		for _, e := range r.idemJ[k] {
			buf := make([]byte, e.Len)
			if meta != nil {
				meta.Store().ReadAt(buf, e.Off)
			}
			out = append(out, buf...)
		}
	}
	return out
}
