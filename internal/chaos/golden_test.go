package chaos

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

var regen = flag.Bool("regen", false, "rewrite the testdata repro fixtures")

// fixtures is the committed reproducer corpus: one scenario per invariant
// class, each sabotaged by the injection its oracle must catch, plus
// injection-less "clean" fixtures pinning known-good degraded-mode
// schedules (empty verdict). The files under testdata/ are real
// chaos_repro.json files — `e10chaos -replay` accepts them unchanged.
func fixtures() []struct {
	file string
	note string
	sc   Scenario
} {
	return []struct {
		file string
		note string
		sc   Scenario
	}{
		{
			file: "conservation.json",
			note: "node 1 crashes mid-write, then every dirty-extent journal is dropped: the crashed ranks' unsynced bytes are unaccounted for",
			sc: Scenario{
				Seed: 42, Nodes: 2, PerNode: 2,
				Shape: ShapeInterleaved, BlockKB: 64, Blocks: 2,
				Mode: "enable", FlushFlag: "flush_onclose", Sessions: 1,
				Faults:    []Action{{Kind: fault.CrashNode, Node: 1, FromUS: 10_000}},
				Injection: "lose-journal",
			},
		},
		{
			file: "lost_ack.json",
			note: "durable bytes corrupted under a write whose rank saw no error: the acknowledgement was a lie",
			sc: Scenario{
				Seed: 42, Nodes: 2, PerNode: 2,
				Shape: ShapeContiguous, BlockKB: 64, Blocks: 2,
				Mode: "enable", FlushFlag: "flush_onclose", Sessions: 1,
				Injection: "lost-ack",
			},
		},
		{
			file: "idempotence.json",
			note: "cache payload corrupted between two journal replays: recovering twice diverges from recovering once",
			sc: Scenario{
				Seed: 42, Nodes: 2, PerNode: 2,
				Shape: ShapeInterleaved, BlockKB: 64, Blocks: 2,
				Mode: "enable", FlushFlag: "flush_onclose", Sessions: 3,
				Faults:    []Action{{Kind: fault.CrashNode, Node: 1, FromUS: 10_000}},
				Injection: "corrupt-replay",
			},
		},
		{
			file: "lock_release.json",
			note: "a byte-range lock on the global file is taken during the run and never released",
			sc: Scenario{
				Seed: 42, Nodes: 2, PerNode: 2,
				Shape: ShapeStrided, BlockKB: 64, Blocks: 2,
				Mode: "coherent", FlushFlag: "flush_immediate", Sessions: 1,
				Injection: "leak-lock",
			},
		},
		{
			file: "liveness.json",
			note: "a runaway process re-arms forever; the event-budget watchdog must abort the run",
			sc: Scenario{
				Seed: 42, Nodes: 1, PerNode: 2,
				Shape: ShapeContiguous, BlockKB: 16, Blocks: 1,
				Mode: "enable", FlushFlag: "flush_onclose", Sessions: 1,
				EventBudget: 100_000,
				Injection:   "stall",
			},
		},
		{
			file: "trace_metrics.json",
			note: "retry counter bumped without a matching traced retry: one observability layer lies",
			sc: Scenario{
				Seed: 42, Nodes: 2, PerNode: 1,
				Shape: ShapeContiguous, BlockKB: 64, Blocks: 2,
				Mode: "enable", FlushFlag: "flush_adaptive", Sessions: 1,
				Injection: "miscount-retry",
			},
		},
		{
			file: "stuck_collective.json",
			note: "rank 0's collective accounting skewed as if it entered a collective and never returned: the stuck-collective oracle must notice",
			sc: Scenario{
				Seed: 42, Nodes: 2, PerNode: 2, Collective: true,
				Shape: ShapeInterleaved, BlockKB: 64, Blocks: 2,
				Mode: "enable", FlushFlag: "flush_onclose", Sessions: 1,
				Injection: "stuck-collective",
			},
		},
		{
			file: "partition_sync.json",
			note: "clean: node 0 is partitioned for 40ms mid-sync; partition-exempt retries ride it out and every byte lands, no invariant trips",
			sc: Scenario{
				Seed: 42, Nodes: 2, PerNode: 2,
				Shape: ShapeInterleaved, BlockKB: 64, Blocks: 3,
				Mode: "enable", FlushFlag: "flush_immediate", Sessions: 1,
				Faults: []Action{{Kind: fault.Partition, Nodes: []int{0},
					FromUS: 2_000, ToUS: 42_000}},
			},
		},
		{
			file: "noisy_neighbor.json",
			note: "clean: an unreserved noisy tenant floods an undersized NVM while a reserved tenant writes; capacity pressure degrades bandwidth only — both files match their solo same-seed runs, no invariant trips",
			sc: Scenario{
				Seed: 42, Nodes: 1, PerNode: 4,
				Shape: ShapeContiguous, BlockKB: 64, Blocks: 1,
				Mode: "enable", FlushFlag: "flush_immediate", Sessions: 1,
				SSDCapKB: 512,
				Tenants: []TenantSpec{
					{Ranks: 2, Blocks: 4, BlockKB: 64},
					{Ranks: 2, Blocks: 2, BlockKB: 64, ReserveKB: 256},
				},
			},
		},
		{
			file: "tenant_crash_isolation.json",
			note: "clean: one of three tenants crashes mid-flush while another runs at a starvation quota; the victims' journals conserve every acked byte and the survivors' files match their solo same-seed runs, no invariant trips",
			sc: Scenario{
				Seed: 42, Nodes: 2, PerNode: 2,
				Shape: ShapeInterleaved, BlockKB: 64, Blocks: 1,
				Mode: "enable", FlushFlag: "flush_onclose", Sessions: 1,
				SSDCapKB: 1024,
				Tenants: []TenantSpec{
					{Ranks: 1, Blocks: 3, BlockKB: 64},
					{Ranks: 2, Blocks: 3, BlockKB: 64, CrashUS: 3_000},
					{Ranks: 1, Blocks: 3, BlockKB: 64, QuotaKB: 64, Policy: "writethrough"},
				},
			},
		},
		{
			file: "tenant_scribble.json",
			note: "one tenant's pattern is scribbled into another tenant's file after the run: the victim's digest diverges from its solo same-seed run and tenant_isolation must notice",
			sc: Scenario{
				Seed: 42, Nodes: 1, PerNode: 4,
				Shape: ShapeContiguous, BlockKB: 64, Blocks: 1,
				Mode: "enable", FlushFlag: "flush_immediate", Sessions: 1,
				Tenants: []TenantSpec{
					{Ranks: 2, Blocks: 2, BlockKB: 64},
					{Ranks: 2, Blocks: 2, BlockKB: 64},
				},
				Injection: "cross-tenant-scribble",
			},
		},
		{
			file: "critpath_overrun.json",
			note: "a span outliving the run is appended to the trace: the critical path attributes more time than the kernel's wall clock and critpath_consistency must notice",
			sc: Scenario{
				Seed: 42, Nodes: 2, PerNode: 2,
				Shape: ShapeContiguous, BlockKB: 64, Blocks: 2,
				Mode: "enable", FlushFlag: "flush_onclose", Sessions: 1,
				Injection: "overrun-span",
			},
		},
		{
			file: "aggregator_crash.json",
			note: "clean: an aggregator node crashes mid-round during a resilient collective write; survivors recompute file domains and replay unacked rounds, no invariant trips",
			sc: Scenario{
				Seed: 42, Nodes: 3, PerNode: 1, Collective: true,
				Shape: ShapeInterleaved, BlockKB: 64, Blocks: 4,
				Mode: "enable", FlushFlag: "flush_onclose", Sessions: 1,
				Faults: []Action{{Kind: fault.CrashNode, Node: 1, FromUS: 5_000}},
			},
		},
		{
			file: "torn_journal_crash.json",
			note: "clean: node 1 crashes mid-write and its last journal append is torn; scrub truncates to the valid record prefix, quarantines any dropped dirty range, and replay restores the rest, no invariant trips",
			sc: Scenario{
				Seed: 42, Nodes: 2, PerNode: 2,
				Shape: ShapeInterleaved, BlockKB: 64, Blocks: 2,
				Mode: "enable", FlushFlag: "flush_onclose", Sessions: 2,
				Faults: []Action{
					{Kind: fault.CrashNode, Node: 1, FromUS: 10_000},
					{Kind: fault.TornWrite, Node: 1, FromUS: 11_000},
				},
			},
		},
		{
			file: "bitrot_replay.json",
			note: "clean: node 1 crashes mid-write and its at-rest NVM state rots before recovery; checksums catch every rotten chunk, scrub quarantines them, and replay restores only verified bytes, no invariant trips",
			sc: Scenario{
				Seed: 42, Nodes: 2, PerNode: 2,
				Shape: ShapeInterleaved, BlockKB: 64, Blocks: 2,
				Mode: "enable", FlushFlag: "flush_onclose", Sessions: 2,
				Faults: []Action{
					{Kind: fault.CrashNode, Node: 1, FromUS: 10_000},
					{Kind: fault.BitRot, Node: 1, Factor: 0.1, FromUS: 12_000},
				},
			},
		},
		{
			file: "silent_corruption.json",
			note: "a durable byte is flipped inside an extent the recovery replay reported restored: recovery_equivalence must notice the restored bytes lie",
			sc: Scenario{
				Seed: 42, Nodes: 2, PerNode: 2,
				Shape: ShapeInterleaved, BlockKB: 64, Blocks: 2,
				Mode: "enable", FlushFlag: "flush_onclose", Sessions: 2,
				Faults:    []Action{{Kind: fault.CrashNode, Node: 1, FromUS: 10_000}},
				Injection: "silent-corrupt",
			},
		},
		{
			file: "double_crash_scrub.json",
			note: "clean: node 1 crashes mid-write and node 0 crashes during the recovery window; the half-replayed journals stay replayable and the second recovery is idempotent, no invariant trips",
			sc: Scenario{
				Seed: 42, Nodes: 2, PerNode: 2,
				Shape: ShapeInterleaved, BlockKB: 64, Blocks: 2,
				Mode: "enable", FlushFlag: "flush_onclose", Sessions: 3,
				Faults: []Action{
					{Kind: fault.CrashNode, Node: 1, FromUS: 10_000},
					{Kind: fault.CrashNode, Node: 0, FromUS: 60_000},
				},
			},
		},
	}
}

// TestReproFixturesReplay replays every committed reproducer and checks the
// recorded verdict reproduces exactly, and that it includes the invariant
// the fixture's injection targets. Run with -regen to rewrite the corpus.
func TestReproFixturesReplay(t *testing.T) {
	if *regen {
		for _, fx := range fixtures() {
			res := mustExecute(t, fx.sc)
			if fx.sc.Injection != "" && !res.Failed() {
				t.Fatalf("%s: fixture scenario does not fail", fx.file)
			}
			if fx.sc.Injection == "" && res.Failed() {
				t.Fatalf("%s: clean fixture scenario fails: %v", fx.file, res.ViolatedInvariants())
			}
			data, err := NewRepro(res, fx.note).Marshal()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", fx.file)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s: %v", path, res.ViolatedInvariants())
		}
	}
	for _, fx := range fixtures() {
		fx := fx
		t.Run(fx.file, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", fx.file))
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/chaos -run Fixtures -regen` to regenerate)", err)
			}
			rp, err := ParseRepro(data)
			if err != nil {
				t.Fatal(err)
			}
			res, match, err := Replay(rp)
			if err != nil {
				t.Fatal(err)
			}
			if !match {
				t.Fatalf("verdict did not reproduce: recorded %v, replayed %v",
					rp.Verdict, res.ViolatedInvariants())
			}
			if rp.Scenario.Injection == "" {
				if len(rp.Verdict) != 0 {
					t.Fatalf("clean fixture carries verdict %v, want empty", rp.Verdict)
				}
				return
			}
			want := Trips(rp.Scenario.Injection)
			found := false
			for _, inv := range rp.Verdict {
				if inv == want {
					found = true
				}
			}
			if !found {
				t.Fatalf("fixture verdict %v misses the injection's target invariant %q",
					rp.Verdict, want)
			}
		})
	}
}

// TestFixtureCorpusCoversEveryInvariant pins the corpus contract: at least
// one committed reproducer per invariant class, and at least two clean
// degraded-mode fixtures (partition-during-sync, aggregator failover).
func TestFixtureCorpusCoversEveryInvariant(t *testing.T) {
	covered := map[string]bool{}
	clean := 0
	for _, fx := range fixtures() {
		if fx.sc.Injection == "" {
			clean++
			continue
		}
		covered[Trips(fx.sc.Injection)] = true
	}
	for _, inv := range Invariants {
		if !covered[inv] {
			t.Errorf("no fixture covers invariant %q", inv)
		}
	}
	if clean < 2 {
		t.Errorf("corpus has %d clean fixtures, want >= 2", clean)
	}
	if len(fixtures()) < 5 {
		t.Errorf("corpus has %d fixtures, want >= 5", len(fixtures()))
	}
}
