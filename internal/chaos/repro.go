package chaos

import (
	"encoding/json"
	"fmt"
	"reflect"
)

// ReproVersion is bumped when the repro file format changes incompatibly.
const ReproVersion = 1

// Repro is the replayable reproducer format (chaos_repro.json): the exact
// scenario plus the verdict it produced. Replay re-executes the scenario
// and checks the verdict still holds — committed repro files are living
// regression tests for the invariant checkers themselves.
type Repro struct {
	Version  int      `json:"version"`
	Scenario Scenario `json:"scenario"`
	// Verdict is the sorted list of violated invariants; empty means the
	// scenario passed (useful to pin known-clean schedules too).
	Verdict []string `json:"verdict"`
	Note    string   `json:"note,omitempty"`
}

// NewRepro captures a result as a reproducer.
func NewRepro(res *Result, note string) *Repro {
	return &Repro{
		Version:  ReproVersion,
		Scenario: res.Scenario,
		Verdict:  res.ViolatedInvariants(),
		Note:     note,
	}
}

// Marshal renders the repro as stable, indented JSON.
func (rp *Repro) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(rp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ParseRepro decodes and validates a repro file.
func ParseRepro(data []byte) (*Repro, error) {
	var rp Repro
	if err := json.Unmarshal(data, &rp); err != nil {
		return nil, fmt.Errorf("chaos: bad repro file: %w", err)
	}
	if rp.Version != ReproVersion {
		return nil, fmt.Errorf("chaos: repro version %d, want %d", rp.Version, ReproVersion)
	}
	if err := rp.Scenario.Validate(); err != nil {
		return nil, err
	}
	return &rp, nil
}

// Replay re-executes the repro's scenario exactly and reports whether the
// recorded verdict reproduced.
func Replay(rp *Repro) (*Result, bool, error) {
	res, err := Execute(rp.Scenario)
	if err != nil {
		return nil, false, err
	}
	got := res.ViolatedInvariants()
	want := rp.Verdict
	if want == nil {
		want = []string{}
	}
	if got == nil {
		got = []string{}
	}
	return res, reflect.DeepEqual(got, want), nil
}
