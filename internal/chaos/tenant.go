// Multi-tenant service-mode chaos: several independent jobs on one
// simulated cluster, each on its own contiguous rank block writing its own
// file under its own capacity contract, all contending for deliberately
// undersized per-node NVM. The tenant_isolation oracle re-runs every
// unfaulted tenant solo with the same seed and demands its file come out
// byte-identical — capacity pressure, noisy neighbors and other tenants'
// crashes must cost bandwidth, never bytes.
package chaos

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/adio"
	"repro/internal/core"
	"repro/internal/extent"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// tenantName returns tenant i's e10_tenant hint value.
func tenantName(i int) string { return fmt.Sprintf("t%d", i) }

// tenantFile returns tenant i's private global file path.
func tenantFile(i int) string { return fmt.Sprintf("chaos.t%d.dat", i) }

// simulateTenants runs the multi-tenant workload: every tenant's rank
// block opens the tenant's file with its capacity-contract hints and
// writes its pattern, all inside one kernel run. Tenant crashes fire from
// kernel timers and kill only that tenant's open caches — the node, and
// every other tenant on it, keeps running.
func (r *run) simulateTenants() {
	sc := r.sc
	comm := r.cl.World.Comm()
	for i := range sc.Tenants {
		t := sc.Tenants[i]
		if t.CrashUS <= 0 {
			continue
		}
		i := i
		r.cl.Kernel.Spawn(fmt.Sprintf("chaos.tenant.%d.crash", i), func(p *sim.Proc) {
			p.Sleep(sim.Time(t.CrashUS) * sim.Microsecond)
			for _, c := range r.tenantCaches[i] {
				if r.liveCache(c) {
					c.Crash()
				}
			}
		})
	}
	r.runErr = r.cl.World.Run(func(mr *mpi.Rank) {
		me := mr.ID()
		ti := sc.tenantOf(me)
		color := ti
		if ti < 0 || (r.solo >= 0 && ti != r.solo) {
			color = -1 // idle rank, or muted tenant in a solo baseline run
		}
		jcomm := comm.Split(mr, color, me)
		if jcomm == nil {
			return
		}
		t := sc.Tenants[ti]
		lrank := me - sc.tenantStart(ti)
		f, err := r.openTenant(mr, jcomm, ti)
		if err != nil {
			r.fail(me, "open", err)
			return
		}
		if me == 0 {
			applyInjection(r, phaseSession1, mr)
		}
		for b := 0; b < t.Blocks; b++ {
			off := t.offsetFor(sc.Shape, lrank, b)
			size := t.BlockKB << 10
			data := patternBuf(me, off, size)
			if werr := f.WriteContig(data, off, size); werr != nil {
				r.fail(me, "write", werr)
			} else {
				r.acked = append(r.acked, writeRec{
					rank: me, ext: extent.Extent{Off: off, Len: size}, file: tenantFile(ti)})
				r.refFor(tenantFile(ti)).WriteAt(data, off, size)
			}
		}
		if cerr := r.close(f, mr); cerr != nil {
			r.fail(me, "close", cerr)
		}
	})
}

// openTenant performs one collective open of tenant ti's file over the
// tenant's sub-communicator, carrying the scenario's cache hints plus the
// tenant's capacity contract.
func (r *run) openTenant(mr *mpi.Rank, comm *mpi.Comm, ti int) (*adio.File, error) {
	t := r.sc.Tenants[ti]
	info := mpi.Info{
		adio.HintCBWrite:   "enable",
		core.HintCache:     r.sc.Mode,
		core.HintFlushFlag: r.sc.FlushFlag,
		core.HintTenant:    tenantName(ti),
	}
	if !r.sc.Discard {
		info[core.HintDiscardFlag] = "disable"
	}
	if t.QuotaKB > 0 {
		info[core.HintTenantQuotaBytes] = fmt.Sprintf("%d", t.QuotaKB<<10)
	}
	if t.ReserveKB > 0 {
		info[core.HintTenantReserve] = fmt.Sprintf("%d", t.ReserveKB<<10)
	}
	if t.Admit != "" {
		info[core.HintTenantAdmit] = t.Admit
	}
	if t.Policy != "" {
		info[core.HintTenantPolicy] = t.Policy
	}
	f, err := adio.OpenColl(mr, adio.OpenArgs{
		Comm: comm, Registry: r.cl.Env.Registry,
		Path: tenantFile(ti), Create: true, Info: info,
		Hooks: r.cl.CoreEnv.HooksFactory(),
	})
	if err != nil {
		return nil, err
	}
	if f.Stats.CacheFallback {
		r.fallbacks++ // e.g. a rejected admission: the job runs uncached
	}
	if c, ok := f.InstalledHooks().(*core.Cache); ok && c != nil {
		node := mr.Node().ID()
		r.live[node][c] = true
		r.caches = append(r.caches, c)
		r.tenantCaches[ti] = append(r.tenantCaches[ti], c)
		r.cacheName[mr.ID()] = c.Name()
		r.cacheNode[mr.ID()] = node
		r.journalKey[mr.ID()] = c.JournalKey()
	}
	return f, nil
}

// liveCache reports whether a cache is still open on any node.
func (r *run) liveCache(c *core.Cache) bool {
	for _, m := range r.live {
		if m[c] {
			return true
		}
	}
	return false
}

// digestTenant hashes tenant i's global file: every written extent's
// bounds and payload, in file order. Two runs that durably wrote the same
// bytes — and nothing else — produce the same digest, so a foreign byte
// landing anywhere in the file changes it.
func (r *run) digestTenant(i int) string {
	h := sha256.New()
	if meta := r.cl.FS.Lookup(tenantFile(i)); meta != nil {
		st := meta.Store()
		for _, e := range st.Written().Extents() {
			var hdr [16]byte
			binary.LittleEndian.PutUint64(hdr[:8], uint64(e.Off))
			binary.LittleEndian.PutUint64(hdr[8:], uint64(e.Len))
			h.Write(hdr[:])
			buf := make([]byte, e.Len)
			st.ReadAt(buf, e.Off)
			h.Write(buf)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// soloTenantDigest re-executes the scenario with only tenant `only`
// active — same seed, same cluster and rank placement, same capacity
// contract, but no faults, no injection and no neighbors — and returns
// the digest of the tenant's file. This is the contention-free baseline
// the isolation oracle compares against.
func soloTenantDigest(sc Scenario, only int) (string, error) {
	s := sc
	s.Faults = nil
	s.Injection = ""
	tenants := append([]TenantSpec(nil), sc.Tenants...)
	for j := range tenants {
		tenants[j].CrashUS = 0
	}
	s.Tenants = tenants
	r := &run{sc: s, solo: only}
	if err := r.setup(); err != nil {
		return "", err
	}
	r.simulate()
	if r.runErr != nil {
		return "", fmt.Errorf("solo run did not terminate: %w", r.runErr)
	}
	lo := s.tenantStart(only)
	for lr := 0; lr < s.Tenants[only].Ranks; lr++ {
		if e := r.rankErr[lo+lr]; e != "" {
			return "", fmt.Errorf("solo run rank %d failed: %s", lo+lr, e)
		}
	}
	return r.digestTenant(only), nil
}

// checkTenantIsolation enforces the multi-tenant contract for every tenant
// that is not a deliberate fault victim:
//
//   - capacity pressure alone never fails the job — no rank of an
//     unfaulted tenant may end with a surfaced error;
//   - the tenant's file is byte-identical to a solo same-seed run, so
//     neighbors' load, crashes and evictions cost bandwidth, never bytes,
//     and no foreign byte leaks into the tenant's namespace.
func (r *run) checkTenantIsolation(add func(inv, format string, args ...interface{})) {
	if len(r.sc.Tenants) == 0 {
		return
	}
	for i := range r.sc.Tenants {
		if r.sc.tenantFaulted(i) {
			continue // durability of faulted tenants is the conservation oracle's job
		}
		clean := true
		lo := r.sc.tenantStart(i)
		for lr := 0; lr < r.sc.Tenants[i].Ranks; lr++ {
			if e := r.rankErr[lo+lr]; e != "" {
				add(InvTenantIsolation,
					"tenant %s rank %d failed under capacity pressure alone: %s",
					tenantName(i), lo+lr, e)
				clean = false
			}
		}
		if !clean {
			continue // the digest of a failed job would only repeat the news
		}
		want, err := soloTenantDigest(r.sc, i)
		if err != nil {
			add(InvTenantIsolation, "tenant %s baseline: %v", tenantName(i), err)
			continue
		}
		if got := r.digestTenant(i); got != want {
			add(InvTenantIsolation,
				"tenant %s file %s diverged from its solo same-seed run (digest %.12s != %.12s)",
				tenantName(i), tenantFile(i), got, want)
		}
	}
}
