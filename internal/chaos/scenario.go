// Package chaos is a deterministic chaos/soak harness for the simulated E10
// stack, in the style of FoundationDB's simulation testing: a seeded
// explorer generates randomized-but-reproducible scenarios — collective
// workload shapes crossed with fault schedules over every modelled hardware
// layer — runs each through the full cluster, and checks a registry of
// end-to-end integrity oracles (byte conservation against an in-memory
// reference file, no lost acknowledgements, journal-replay idempotence,
// lock release on every error path, virtual-time liveness, trace/metrics
// cross-consistency). A failing scenario is shrunk to a minimal reproducer
// and serialized as a replayable chaos_repro.json.
package chaos

import (
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/sim"
)

// Workload shapes: how the ranks' write extents tile the shared file.
const (
	// ShapeContiguous gives each rank one private contiguous region.
	ShapeContiguous = "contiguous"
	// ShapeInterleaved interleaves block b of rank r at (b*R + r) blocks.
	ShapeInterleaved = "interleaved"
	// ShapeStrided strides each rank's blocks with holes between rounds.
	ShapeStrided = "strided"
)

// Action is one scheduled fault in a scenario, a JSON-serializable mirror
// of fault.Fault with microsecond times.
type Action struct {
	Kind   fault.Kind `json:"kind"`
	Node   int        `json:"node,omitempty"`
	Nodes  []int      `json:"nodes,omitempty"` // partition: the cut group
	Target int        `json:"target,omitempty"`
	Factor float64    `json:"factor,omitempty"`
	FromUS int64      `json:"from_us"`
	ToUS   int64      `json:"to_us,omitempty"` // 0 = permanent
}

// String renders the action like the fault engine renders its faults.
func (a Action) String() string { return a.fault().String() }

func (a Action) fault() fault.Fault {
	return fault.Fault{
		Kind: a.Kind, Node: a.Node, Nodes: a.Nodes, Target: a.Target, Factor: a.Factor,
		From: sim.Time(a.FromUS) * sim.Microsecond,
		To:   sim.Time(a.ToUS) * sim.Microsecond,
	}
}

// TenantSpec describes one tenant job inside a multi-tenant scenario: its
// rank block (ranks are assigned contiguously in tenant order), its private
// workload, and its capacity contract with the shared NVM devices. Each
// tenant writes its own file (chaos.t<i>.dat) with a tenant-unique payload
// pattern, which is what lets the tenant_isolation oracle detect one
// tenant's bytes leaking into another's namespace.
type TenantSpec struct {
	Ranks   int   `json:"ranks"`
	Blocks  int   `json:"blocks"`
	BlockKB int64 `json:"block_kb"`

	// Capacity contract, in KB (0 = unlimited / no reservation).
	QuotaKB   int64 `json:"quota_kb,omitempty"`
	ReserveKB int64 `json:"reserve_kb,omitempty"`
	// Admit: "" (reject) | "reject" | "queue"; Policy: "" (block) |
	// "block" | "writethrough" — see internal/core tenant hints.
	Admit  string `json:"admit,omitempty"`
	Policy string `json:"policy,omitempty"`

	// CrashUS > 0 crashes this tenant's cache layer at that virtual time
	// (mid-flush when it lands inside the write phase). Only the tenant's
	// caches die — the node, and every other tenant on it, keeps running.
	CrashUS int64 `json:"crash_us,omitempty"`
}

// offsetFor places block b of the tenant's local rank lrank inside the
// tenant's own file, mirroring the scenario shapes.
func (t TenantSpec) offsetFor(shape string, lrank, b int) int64 {
	bs := t.BlockKB << 10
	R := int64(t.Ranks)
	switch shape {
	case ShapeInterleaved:
		return (int64(b)*R + int64(lrank)) * bs
	case ShapeStrided:
		return (int64(b)*(R+1) + int64(lrank)) * bs
	default: // contiguous
		return (int64(lrank)*int64(t.Blocks) + int64(b)) * bs
	}
}

// bytes returns the tenant's total write footprint.
func (t TenantSpec) bytes() int64 {
	return int64(t.Ranks) * int64(t.Blocks) * (t.BlockKB << 10)
}

// Scenario is one randomized-but-reproducible chaos experiment: a workload
// shape plus hint combination crossed with a fault schedule. Scenarios are
// value types; the JSON form is the replay format.
type Scenario struct {
	Seed    int64 `json:"seed"` // kernel seed: full hardware determinism
	Nodes   int   `json:"nodes"`
	PerNode int   `json:"ranks_per_node"`

	Shape   string `json:"shape"`
	BlockKB int64  `json:"block_kb"`
	Blocks  int    `json:"blocks"` // write calls per rank

	Mode      string `json:"cache_mode"` // enable | coherent
	FlushFlag string `json:"flush_flag"` // flush_immediate | flush_onclose | flush_adaptive
	Discard   bool   `json:"discard"`

	// Sessions: 1 = write only; 2 = write then a recovery open
	// (e10_cache_recovery); 3 = additionally re-stage the journal and
	// recover again, probing replay idempotence.
	Sessions int `json:"sessions"`

	// Collective switches the workload from independent cached writes to
	// the degraded-mode collective path: reliable delivery and collective
	// timeouts armed, a resilient two-phase strided write, and crash-node
	// faults that kill the node's MPI ranks outright (aggregator failover).
	// Network fault kinds (lossy-link, dup-link) require this mode.
	Collective bool `json:"collective,omitempty"`

	// Tenants switches the workload to multi-tenant service mode: each
	// tenant runs as an independent job on a contiguous rank block, writing
	// its own file under its own capacity contract, all contending for the
	// shared per-node NVM. Requires Sessions=1 and Collective=false.
	Tenants []TenantSpec `json:"tenants,omitempty"`

	// SSDCapKB overrides every node's NVM capacity (KB); 0 keeps the
	// harness default. Tenant scenarios shrink it to force contention.
	SSDCapKB int64 `json:"ssd_cap_kb,omitempty"`

	Faults []Action `json:"faults,omitempty"`

	// EventBudget bounds the kernel's dispatched events (liveness
	// watchdog); 0 uses DefaultEventBudget.
	EventBudget int64 `json:"event_budget,omitempty"`

	// Injection deliberately sabotages the run so the oracles themselves
	// can be regression-tested (see injection.go). Empty for real soaks.
	Injection string `json:"injection,omitempty"`
}

// DefaultEventBudget bounds one scenario's kernel events. Clean scenarios
// dispatch a few tens of thousands; hitting this means a livelock.
const DefaultEventBudget = 2_000_000

// ranks returns the world size.
func (sc *Scenario) ranks() int { return sc.Nodes * sc.PerNode }

// tenantStart returns the first global rank of tenant i (tenants occupy
// contiguous rank blocks in declaration order).
func (sc *Scenario) tenantStart(i int) int {
	s := 0
	for j := 0; j < i; j++ {
		s += sc.Tenants[j].Ranks
	}
	return s
}

// tenantOf returns the tenant index owning a global rank, -1 for idle
// ranks beyond the tenants' blocks.
func (sc *Scenario) tenantOf(rank int) int {
	s := 0
	for i, t := range sc.Tenants {
		if rank < s+t.Ranks {
			return i
		}
		s += t.Ranks
	}
	return -1
}

// tenantFaulted reports whether tenant i is a deliberate fault victim: it
// crashes mid-run, or a scheduled fault touches a node hosting its ranks
// (cluster-scoped faults — PFS targets, partitions — touch every tenant).
// The tenant_isolation oracle asserts nothing about faulted tenants' own
// files; their durability is the conservation oracle's business.
func (sc *Scenario) tenantFaulted(i int) bool {
	t := sc.Tenants[i]
	if t.CrashUS > 0 {
		return true
	}
	lo := sc.tenantStart(i)
	hi := lo + t.Ranks - 1
	onNode := func(n int) bool { return n >= lo/sc.PerNode && n <= hi/sc.PerNode }
	for _, a := range sc.Faults {
		switch a.Kind {
		case fault.CrashNode, fault.FailDevice, fault.DeviceENOSPC,
			fault.DegradeLink, fault.LossyLink, fault.DupLink:
			if onNode(a.Node) {
				return true
			}
		default:
			return true
		}
	}
	return false
}

// blockSize returns the per-write byte count.
func (sc *Scenario) blockSize() int64 { return sc.BlockKB << 10 }

// offsetFor places block b of rank r in the shared file; extents are
// disjoint across all (rank, block) pairs for every shape.
func (sc *Scenario) offsetFor(rank, b int) int64 {
	bs := sc.blockSize()
	R := int64(sc.ranks())
	switch sc.Shape {
	case ShapeInterleaved:
		return (int64(b)*R + int64(rank)) * bs
	case ShapeStrided:
		// One hole block between successive rounds of the rank grid.
		return (int64(b)*(R+1) + int64(rank)) * bs
	default: // contiguous
		return (int64(rank)*int64(sc.Blocks) + int64(b)) * bs
	}
}

// Schedule converts the scenario's actions into an armable fault schedule.
func (sc *Scenario) Schedule() *fault.Schedule {
	s := &fault.Schedule{}
	for _, a := range sc.Faults {
		f := a.fault()
		var c *fault.Clause
		if f.To > 0 {
			c = s.Between(f.From, f.To)
		} else {
			c = s.At(f.From)
		}
		switch a.Kind {
		case fault.FailDevice:
			c.FailDevice(a.Node)
		case fault.DeviceENOSPC:
			c.DeviceENOSPC(a.Node)
		case fault.FailTarget:
			c.FailTarget(a.Target)
		case fault.DegradeTarget:
			c.DegradeTarget(a.Target, a.Factor)
		case fault.DegradeLink:
			c.DegradeLink(a.Node, a.Factor)
		case fault.CrashNode:
			c.CrashNode(a.Node)
		case fault.LossyLink:
			c.LossyLink(a.Node, a.Factor)
		case fault.DupLink:
			c.DupLink(a.Node, a.Factor)
		case fault.Partition:
			c.Partition(a.Nodes...)
		case fault.TornWrite:
			c.TornWrite(a.Node)
		case fault.BitRot:
			c.BitRot(a.Node, a.Factor)
		}
	}
	return s
}

// Validate checks the scenario's internal consistency: workload bounds,
// known enum values, fault locations within the cluster, and a valid fault
// schedule. It reports the first problem found.
func (sc *Scenario) Validate() error {
	switch {
	case sc.Nodes < 1 || sc.Nodes > 8:
		return fmt.Errorf("chaos: nodes %d outside [1,8]", sc.Nodes)
	case sc.PerNode < 1 || sc.PerNode > 4:
		return fmt.Errorf("chaos: ranks_per_node %d outside [1,4]", sc.PerNode)
	case sc.BlockKB < 4 || sc.BlockKB > 1024:
		return fmt.Errorf("chaos: block_kb %d outside [4,1024]", sc.BlockKB)
	case sc.Blocks < 1 || sc.Blocks > 16:
		return fmt.Errorf("chaos: blocks %d outside [1,16]", sc.Blocks)
	case sc.Sessions < 1 || sc.Sessions > 3:
		return fmt.Errorf("chaos: sessions %d outside [1,3]", sc.Sessions)
	}
	switch sc.Shape {
	case ShapeContiguous, ShapeInterleaved, ShapeStrided:
	default:
		return fmt.Errorf("chaos: unknown shape %q", sc.Shape)
	}
	switch sc.Mode {
	case "enable", "coherent":
	default:
		return fmt.Errorf("chaos: unknown cache_mode %q", sc.Mode)
	}
	switch sc.FlushFlag {
	case "flush_immediate", "flush_onclose", "flush_adaptive":
	default:
		return fmt.Errorf("chaos: unknown flush_flag %q", sc.FlushFlag)
	}
	if sc.Collective {
		if sc.Sessions != 1 {
			return fmt.Errorf("chaos: collective scenarios take sessions=1, got %d (no cache journal to recover)", sc.Sessions)
		}
		if sc.Nodes < 2 {
			return fmt.Errorf("chaos: collective scenarios need >= 2 nodes for cross-node traffic")
		}
	}
	if len(sc.Tenants) > 0 {
		if sc.Collective {
			return fmt.Errorf("chaos: tenant scenarios use the cached path, not collective mode")
		}
		if sc.Sessions != 1 {
			return fmt.Errorf("chaos: tenant scenarios take sessions=1, got %d", sc.Sessions)
		}
		if len(sc.Tenants) > 4 {
			return fmt.Errorf("chaos: %d tenants outside [1,4]", len(sc.Tenants))
		}
		sum := 0
		for i, t := range sc.Tenants {
			switch {
			case t.Ranks < 1:
				return fmt.Errorf("chaos: tenant %d: ranks %d < 1", i, t.Ranks)
			case t.Blocks < 1 || t.Blocks > 16:
				return fmt.Errorf("chaos: tenant %d: blocks %d outside [1,16]", i, t.Blocks)
			case t.BlockKB < 4 || t.BlockKB > 1024:
				return fmt.Errorf("chaos: tenant %d: block_kb %d outside [4,1024]", i, t.BlockKB)
			case t.QuotaKB < 0 || t.ReserveKB < 0 || t.CrashUS < 0:
				return fmt.Errorf("chaos: tenant %d: negative capacity or crash time", i)
			case t.QuotaKB > 0 && t.ReserveKB > t.QuotaKB:
				return fmt.Errorf("chaos: tenant %d: reserve %d KB beyond quota %d KB", i, t.ReserveKB, t.QuotaKB)
			}
			switch t.Admit {
			case "", "reject", "queue":
			default:
				return fmt.Errorf("chaos: tenant %d: unknown admit %q", i, t.Admit)
			}
			switch t.Policy {
			case "", "block", "writethrough":
			default:
				return fmt.Errorf("chaos: tenant %d: unknown policy %q", i, t.Policy)
			}
			sum += t.Ranks
		}
		if sum > sc.ranks() {
			return fmt.Errorf("chaos: tenants need %d ranks, world has %d", sum, sc.ranks())
		}
	}
	if sc.SSDCapKB < 0 {
		return fmt.Errorf("chaos: negative ssd_cap_kb %d", sc.SSDCapKB)
	}
	for i, a := range sc.Faults {
		switch a.Kind {
		case fault.FailDevice, fault.DeviceENOSPC, fault.DegradeLink, fault.CrashNode:
			if a.Node < 0 || a.Node >= sc.Nodes {
				return fmt.Errorf("chaos: fault %d (%s): node %d outside cluster", i, a, a.Node)
			}
		case fault.FailTarget, fault.DegradeTarget:
			// Target count fixed by pfs.DefaultConfig (4 targets).
			if a.Target < 0 || a.Target >= 4 {
				return fmt.Errorf("chaos: fault %d (%s): target %d outside PFS", i, a, a.Target)
			}
		case fault.LossyLink, fault.DupLink:
			// Without the reliable-delivery layer a single dropped message
			// deadlocks the run, which is a broken scenario, not a finding.
			if !sc.Collective {
				return fmt.Errorf("chaos: fault %d (%s): %s requires a collective scenario (reliable delivery armed)", i, a, a.Kind)
			}
			if a.Node < 0 || a.Node >= sc.Nodes {
				return fmt.Errorf("chaos: fault %d (%s): node %d outside cluster", i, a, a.Node)
			}
		case fault.TornWrite, fault.BitRot:
			if a.Node < 0 || a.Node >= sc.Nodes {
				return fmt.Errorf("chaos: fault %d (%s): node %d outside cluster", i, a, a.Node)
			}
			if a.ToUS != 0 {
				return fmt.Errorf("chaos: fault %d (%s): %s cannot revert (to_us must be 0)", i, a, a.Kind)
			}
			if a.Kind == fault.BitRot && (a.Factor <= 0 || a.Factor >= 1) {
				return fmt.Errorf("chaos: fault %d (%s): rate %v outside (0,1)", i, a, a.Factor)
			}
		case fault.Partition:
			if a.ToUS == 0 {
				return fmt.Errorf("chaos: fault %d (%s): a partition needs a healing window (to_us)", i, a)
			}
			if len(a.Nodes) == 0 || len(a.Nodes) >= sc.Nodes {
				return fmt.Errorf("chaos: fault %d (%s): partition group must be a non-empty strict subset of the cluster", i, a)
			}
			for _, n := range a.Nodes {
				if n < 0 || n >= sc.Nodes {
					return fmt.Errorf("chaos: fault %d (%s): node %d outside cluster", i, a, n)
				}
			}
		default:
			return fmt.Errorf("chaos: fault %d: unknown kind %q", i, a.Kind)
		}
	}
	if err := sc.Schedule().Validate(); err != nil {
		return err
	}
	if sc.Injection != "" {
		if _, ok := injections[sc.Injection]; !ok {
			return fmt.Errorf("chaos: unknown injection %q", sc.Injection)
		}
		if sc.Injection == "cross-tenant-scribble" && len(sc.Tenants) < 2 {
			return fmt.Errorf("chaos: injection %q needs >= 2 tenants", sc.Injection)
		}
		if sc.Injection == "silent-corrupt" && sc.Sessions < 2 {
			return fmt.Errorf("chaos: injection %q needs a recovery session (sessions >= 2)", sc.Injection)
		}
	}
	return nil
}

// Generate draws one scenario from rng. The same rng state always yields
// the same scenario, which is what makes a whole soak replayable from one
// master seed. The generated scenario always validates.
func Generate(rng *rand.Rand) Scenario {
	// One in four scenarios exercises the degraded-mode collective path —
	// lossy/duplicating links, network partitions, aggregator crashes —
	// instead of the cache stack.
	if rng.Intn(4) == 0 {
		return generateCollective(rng)
	}
	sc := Scenario{
		Nodes:     1 + rng.Intn(3),
		PerNode:   1 + rng.Intn(2),
		Shape:     []string{ShapeContiguous, ShapeInterleaved, ShapeStrided}[rng.Intn(3)],
		BlockKB:   []int64{16, 64, 128, 256}[rng.Intn(4)],
		Blocks:    1 + rng.Intn(4),
		Mode:      "enable",
		FlushFlag: []string{"flush_immediate", "flush_onclose", "flush_adaptive"}[rng.Intn(3)],
		Discard:   rng.Intn(2) == 0,
		Sessions:  1,
	}
	if rng.Intn(10) < 3 {
		sc.Mode = "coherent"
	}
	switch r := rng.Intn(10); {
	case r < 3: // crash + recovery
		sc.Sessions = 2
	case r < 5: // crash + recovery + idempotence probe
		sc.Sessions = 3
	}
	if sc.Sessions > 1 {
		// A recovery scenario needs something to recover from: crash one
		// node somewhere inside the write phase.
		sc.Faults = append(sc.Faults, Action{
			Kind: fault.CrashNode, Node: rng.Intn(sc.Nodes),
			FromUS: int64(1000 + rng.Intn(40_000)),
		})
	}
	// Sprinkle 0..3 additional hardware faults, dropping any candidate that
	// would make the schedule invalid (same-kind overlap).
	for n := rng.Intn(4); n > 0; n-- {
		a := randomAction(rng, sc.Nodes)
		sc.Faults = append(sc.Faults, a)
		if sc.Schedule().Validate() != nil {
			sc.Faults = sc.Faults[:len(sc.Faults)-1]
		}
	}
	// A windowed partition is safe for the cache stack too: it only cuts
	// the PFS fabric (Analytic collectives pass no messages), and the sync
	// thread's partition-exempt retries must ride it out.
	if sc.Nodes >= 2 && rng.Intn(4) == 0 {
		a := Action{
			Kind: fault.Partition, Nodes: []int{rng.Intn(sc.Nodes)},
			FromUS: int64(5_000 + rng.Intn(30_000)),
		}
		a.ToUS = a.FromUS + int64(5_000+rng.Intn(40_000))
		sc.Faults = append(sc.Faults, a)
		if sc.Schedule().Validate() != nil {
			sc.Faults = sc.Faults[:len(sc.Faults)-1]
		}
	}
	return sc
}

// / GenerateNetFaults draws only degraded-mode collective scenarios —
// resilient writes under lossy links, duplication, partitions and
// aggregator crashes. e10chaos -netfaults soaks with this generator to
// concentrate iterations on the failover machinery.
func GenerateNetFaults(rng *rand.Rand) Scenario {
	return generateCollective(rng)
}

// generateCollective draws a degraded-mode collective scenario: a strided
// resilient write under network faults.
func generateCollective(rng *rand.Rand) Scenario {
	sc := Scenario{
		Collective: true,
		Nodes:      2 + rng.Intn(2),
		PerNode:    1 + rng.Intn(2),
		Shape:      []string{ShapeContiguous, ShapeInterleaved, ShapeStrided}[rng.Intn(3)],
		BlockKB:    []int64{16, 64, 128}[rng.Intn(3)],
		Blocks:     1 + rng.Intn(4),
		Mode:       "enable", // unused by the collective workload, kept valid
		FlushFlag:  "flush_onclose",
		Sessions:   1,
	}
	for n := 1 + rng.Intn(2); n > 0; n-- {
		a := randomNetAction(rng, sc.Nodes)
		sc.Faults = append(sc.Faults, a)
		if sc.Schedule().Validate() != nil {
			sc.Faults = sc.Faults[:len(sc.Faults)-1]
		}
	}
	return sc
}

// randomNetAction draws one degraded-mode network fault.
func randomNetAction(rng *rand.Rand, nodes int) Action {
	switch rng.Intn(4) {
	case 0: // lossy link window
		a := Action{
			Kind: fault.LossyLink, Node: rng.Intn(nodes),
			Factor: 0.02 + 0.25*rng.Float64(),
			FromUS: int64(1_000 + rng.Intn(20_000)),
		}
		a.ToUS = a.FromUS + int64(5_000+rng.Intn(40_000))
		return a
	case 1: // duplicating link window
		a := Action{
			Kind: fault.DupLink, Node: rng.Intn(nodes),
			Factor: 0.05 + 0.35*rng.Float64(),
			FromUS: int64(1_000 + rng.Intn(20_000)),
		}
		a.ToUS = a.FromUS + int64(5_000+rng.Intn(40_000))
		return a
	case 2: // partition window: cut one node off, then heal
		a := Action{
			Kind: fault.Partition, Nodes: []int{rng.Intn(nodes)},
			FromUS: int64(2_000 + rng.Intn(20_000)),
		}
		a.ToUS = a.FromUS + int64(5_000+rng.Intn(40_000))
		return a
	default: // crash a node mid-write (aggregator failover when it hosts one)
		return Action{
			Kind: fault.CrashNode, Node: rng.Intn(nodes),
			FromUS: int64(1_000 + rng.Intn(40_000)),
		}
	}
}

// GenerateCorrupt draws only corruption-recovery scenarios: a crash plus
// at-rest corruption — a torn journal append, bit-rot, or both — on the
// crashed node's NVM, followed by scrub-and-repair recovery sessions.
// e10chaos -corrupt soaks with this generator to concentrate iterations
// on the checksummed journal and quarantine machinery.
func GenerateCorrupt(rng *rand.Rand) Scenario {
	sc := Scenario{
		Nodes:     1 + rng.Intn(3),
		PerNode:   1 + rng.Intn(2),
		Shape:     []string{ShapeContiguous, ShapeInterleaved, ShapeStrided}[rng.Intn(3)],
		BlockKB:   []int64{16, 64, 128}[rng.Intn(3)],
		Blocks:    1 + rng.Intn(4),
		Mode:      "enable",
		FlushFlag: []string{"flush_onclose", "flush_adaptive"}[rng.Intn(2)],
		Sessions:  2 + rng.Intn(2),
	}
	if rng.Intn(10) < 3 {
		sc.Mode = "coherent"
	}
	// Something to recover from: crash one node inside the write phase so
	// its journals retain unsynced extents.
	crash := Action{
		Kind: fault.CrashNode, Node: rng.Intn(sc.Nodes),
		FromUS: int64(1_000 + rng.Intn(30_000)),
	}
	sc.Faults = append(sc.Faults, crash)
	// ...then corrupt the crashed node's at-rest state shortly after. A
	// corruption landing after recovery already replayed is a harmless
	// no-op, so late times are safe, just less interesting.
	at := crash.FromUS + int64(100+rng.Intn(2_000))
	pick := rng.Intn(3) // 0: torn only, 1: rot only, 2: both
	if pick != 1 {
		sc.Faults = append(sc.Faults, Action{Kind: fault.TornWrite, Node: crash.Node, FromUS: at})
		at += int64(50 + rng.Intn(500))
	}
	if pick != 0 {
		sc.Faults = append(sc.Faults, Action{
			Kind: fault.BitRot, Node: crash.Node,
			Factor: 0.05 + 0.4*rng.Float64(), FromUS: at,
		})
	}
	// Sprinkle 0..2 additional hardware faults, dropping any candidate that
	// would make the schedule invalid (same-kind overlap).
	for n := rng.Intn(3); n > 0; n-- {
		a := randomAction(rng, sc.Nodes)
		sc.Faults = append(sc.Faults, a)
		if sc.Schedule().Validate() != nil {
			sc.Faults = sc.Faults[:len(sc.Faults)-1]
		}
	}
	return sc
}

// GenerateTenants draws only multi-tenant service-mode scenarios: several
// independent jobs contending for a deliberately undersized shared NVM,
// with quotas, reservations, queued admissions, mid-flush tenant crashes
// and NVM-layer faults. e10chaos -tenants soaks with this generator to
// concentrate iterations on the capacity arbitration and isolation
// machinery.
func GenerateTenants(rng *rand.Rand) Scenario {
	sc := Scenario{
		Nodes:     1 + rng.Intn(2),
		PerNode:   3 + rng.Intn(2),
		Shape:     []string{ShapeContiguous, ShapeInterleaved, ShapeStrided}[rng.Intn(3)],
		BlockKB:   64, // scenario-level workload fields are unused; tenants carry their own
		Blocks:    1,
		Mode:      "enable",
		FlushFlag: []string{"flush_immediate", "flush_onclose", "flush_adaptive"}[rng.Intn(3)],
		Discard:   rng.Intn(2) == 0,
		Sessions:  1,
	}
	// Carve 2..4 tenants out of the rank pool, one rank minimum each.
	ranks := sc.ranks()
	nt := 2 + rng.Intn(3)
	if nt > ranks {
		nt = ranks
	}
	var total int64
	for i := 0; i < nt; i++ {
		spare := ranks - (nt - 1 - i) // leave one rank per remaining tenant
		t := TenantSpec{
			Ranks:   1 + rng.Intn(spare),
			Blocks:  1 + rng.Intn(3),
			BlockKB: []int64{16, 32, 64}[rng.Intn(3)],
		}
		ranks -= t.Ranks
		total += t.bytes()
		sc.Tenants = append(sc.Tenants, t)
	}
	// Undersize the device so the tenants genuinely contend: between half
	// and all of the combined footprint, floored at one tenant block.
	sc.SSDCapKB = (total >> 10) / 2
	sc.SSDCapKB += rng.Int63n(sc.SSDCapKB + 1)
	if sc.SSDCapKB < 1024 {
		sc.SSDCapKB = 1024
	}
	// Capacity contracts: some tenants get byte quotas, some reservations,
	// some queue for admission, some degrade to write-through.
	for i := range sc.Tenants {
		t := &sc.Tenants[i]
		if rng.Intn(2) == 0 {
			t.QuotaKB = t.bytes() >> 10 >> uint(rng.Intn(3)) // 1x, 1/2, 1/4 of footprint
			if t.QuotaKB < t.BlockKB {
				t.QuotaKB = t.BlockKB
			}
		}
		if rng.Intn(3) == 0 {
			t.ReserveKB = sc.SSDCapKB / int64(2*len(sc.Tenants))
			if t.QuotaKB > 0 && t.ReserveKB > t.QuotaKB {
				t.ReserveKB = t.QuotaKB
			}
		}
		if rng.Intn(3) == 0 {
			t.Admit = "queue"
		}
		if rng.Intn(3) == 0 {
			t.Policy = "writethrough"
		}
	}
	// Half the scenarios crash one tenant mid-flush.
	if rng.Intn(2) == 0 {
		sc.Tenants[rng.Intn(len(sc.Tenants))].CrashUS = int64(1_000 + rng.Intn(30_000))
	}
	// Sprinkle 0..2 NVM-layer faults (transient ENOSPC, device failure).
	for n := rng.Intn(3); n > 0; n-- {
		kind := fault.DeviceENOSPC
		if rng.Intn(3) == 0 {
			kind = fault.FailDevice
		}
		a := Action{Kind: kind, Node: rng.Intn(sc.Nodes),
			FromUS: int64(1_000 + rng.Intn(30_000))}
		a.ToUS = a.FromUS + int64(2_000+rng.Intn(20_000))
		sc.Faults = append(sc.Faults, a)
		if sc.Schedule().Validate() != nil {
			sc.Faults = sc.Faults[:len(sc.Faults)-1]
		}
	}
	return sc
}

// randomAction draws one non-crash fault action.
func randomAction(rng *rand.Rand, nodes int) Action {
	kinds := []fault.Kind{
		fault.FailDevice, fault.DeviceENOSPC, fault.FailTarget,
		fault.DegradeTarget, fault.DegradeLink,
	}
	a := Action{Kind: kinds[rng.Intn(len(kinds))]}
	a.FromUS = int64(500 + rng.Intn(60_000))
	if rng.Intn(2) == 0 {
		// Transient window, 1..50 ms wide.
		a.ToUS = a.FromUS + int64(1000+rng.Intn(50_000))
	}
	switch a.Kind {
	case fault.FailDevice, fault.DeviceENOSPC, fault.DegradeLink:
		a.Node = rng.Intn(nodes)
	case fault.FailTarget, fault.DegradeTarget:
		a.Target = rng.Intn(4)
	}
	if a.Kind == fault.DegradeTarget || a.Kind == fault.DegradeLink {
		a.Factor = 0.2 + 0.7*rng.Float64()
	}
	return a
}
