package chaos

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
)

// base returns a small healthy scenario used as the starting point for most
// tests.
func base() Scenario {
	return Scenario{
		Seed: 42, Nodes: 2, PerNode: 2,
		Shape: ShapeInterleaved, BlockKB: 64, Blocks: 2,
		Mode: "enable", FlushFlag: "flush_onclose",
		Sessions: 1,
	}
}

// crashed returns a crash+recovery scenario: one node dies mid-write, then
// sessions recovery-open the file.
func crashed(sessions int) Scenario {
	sc := base()
	sc.Sessions = sessions
	sc.Faults = []Action{{Kind: fault.CrashNode, Node: 1, FromUS: 10_000}}
	return sc
}

// collective returns a degraded-mode scenario: a resilient two-phase
// strided write with reliable delivery and collective timeouts armed.
func collective() Scenario {
	sc := base()
	sc.Collective = true
	return sc
}

func mustExecute(t *testing.T, sc Scenario) *Result {
	t.Helper()
	res, err := Execute(sc)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res
}

func TestCleanScenarioHasNoViolations(t *testing.T) {
	for _, shape := range []string{ShapeContiguous, ShapeInterleaved, ShapeStrided} {
		for _, flush := range []string{"flush_immediate", "flush_onclose", "flush_adaptive"} {
			sc := base()
			sc.Shape = shape
			sc.FlushFlag = flush
			res := mustExecute(t, sc)
			if res.Failed() {
				t.Errorf("%s/%s: unexpected violations: %v", shape, flush, res.Violations)
			}
			if res.AckedOps != sc.ranks()*sc.Blocks {
				t.Errorf("%s/%s: acked %d writes, want %d", shape, flush, res.AckedOps, sc.ranks()*sc.Blocks)
			}
		}
	}
}

func TestCoherentCleanScenario(t *testing.T) {
	sc := base()
	sc.Mode = "coherent"
	res := mustExecute(t, sc)
	if res.Failed() {
		t.Fatalf("coherent clean run violated: %v", res.Violations)
	}
}

func TestCrashRecoveryScenarioConservesBytes(t *testing.T) {
	res := mustExecute(t, crashed(2))
	if res.Failed() {
		t.Fatalf("crash+recovery violated: %v", res.Violations)
	}
}

func TestIdempotenceProbeScenario(t *testing.T) {
	res := mustExecute(t, crashed(3))
	if res.Failed() {
		t.Fatalf("idempotence probe violated: %v", res.Violations)
	}
}

func TestExecuteIsDeterministic(t *testing.T) {
	sc := crashed(3)
	a := mustExecute(t, sc)
	b := mustExecute(t, sc)
	ra, err := NewRepro(a, "").Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRepro(b, "").Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(ra) != string(rb) {
		t.Fatalf("same scenario, different verdicts:\n%s\nvs\n%s", ra, rb)
	}
	if a.Events != b.Events || a.WallNS != b.WallNS {
		t.Fatalf("same scenario, different event/time counts: %d/%d vs %d/%d",
			a.Events, a.WallNS, b.Events, b.WallNS)
	}
}

func TestCollectiveCleanScenario(t *testing.T) {
	res := mustExecute(t, collective())
	if res.Failed() {
		t.Fatalf("fault-free collective run violated: %v", res.Violations)
	}
	sc := collective()
	if res.AckedOps != sc.ranks()*sc.Blocks {
		t.Fatalf("acked %d writes, want %d", res.AckedOps, sc.ranks()*sc.Blocks)
	}
}

// TestCollectiveScenariosSurviveNetworkFaults runs the degraded-mode
// workload under each new fault kind: the oracles must stay green — every
// surviving rank's acked bytes durable, no rank stuck in a collective.
func TestCollectiveScenariosSurviveNetworkFaults(t *testing.T) {
	cases := map[string][]Action{
		"lossy-link": {{Kind: fault.LossyLink, Node: 0, Factor: 0.15, FromUS: 1_000, ToUS: 40_000}},
		"dup-link":   {{Kind: fault.DupLink, Node: 1, Factor: 0.25, FromUS: 1_000, ToUS: 40_000}},
		"partition":  {{Kind: fault.Partition, Nodes: []int{1}, FromUS: 5_000, ToUS: 30_000}},
		"agg-crash":  {{Kind: fault.CrashNode, Node: 1, FromUS: 5_000}},
		"combined": {
			{Kind: fault.LossyLink, Node: 0, Factor: 0.1, FromUS: 1_000, ToUS: 20_000},
			{Kind: fault.CrashNode, Node: 1, FromUS: 8_000},
		},
	}
	for name, faults := range cases {
		sc := collective()
		sc.Blocks = 4
		sc.Faults = faults
		res := mustExecute(t, sc)
		if res.Failed() {
			t.Errorf("%s: degraded-mode run violated: %v", name, res.Violations)
		}
	}
}

func TestCollectiveExecuteIsDeterministic(t *testing.T) {
	sc := collective()
	sc.Blocks = 4
	sc.Faults = []Action{
		{Kind: fault.LossyLink, Node: 0, Factor: 0.2, FromUS: 1_000, ToUS: 30_000},
		{Kind: fault.CrashNode, Node: 1, FromUS: 8_000},
	}
	a := mustExecute(t, sc)
	b := mustExecute(t, sc)
	if a.Events != b.Events || a.WallNS != b.WallNS || a.AckedOps != b.AckedOps {
		t.Fatalf("same degraded scenario diverged: events %d/%d, time %d/%d, acked %d/%d",
			a.Events, b.Events, a.WallNS, b.WallNS, a.AckedOps, b.AckedOps)
	}
}

func TestGenerateAlwaysValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		sc := Generate(rng)
		if err := sc.Validate(); err != nil {
			t.Fatalf("generated scenario %d invalid: %v\n%+v", i, err, sc)
		}
	}
}

func TestGenerateCorruptAlwaysValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		sc := GenerateCorrupt(rng)
		if err := sc.Validate(); err != nil {
			t.Fatalf("generated corrupt scenario %d invalid: %v\n%+v", i, err, sc)
		}
		if sc.Sessions < 2 {
			t.Fatalf("corrupt scenario %d has no recovery session: %+v", i, sc)
		}
		corrupting := false
		for _, a := range sc.Faults {
			if a.Kind == fault.TornWrite || a.Kind == fault.BitRot {
				corrupting = true
			}
		}
		if !corrupting {
			t.Fatalf("corrupt scenario %d schedules no corruption fault: %+v", i, sc)
		}
	}
}

// TestCorruptionSoakIsClean soaks corruption-recovery schedules: every
// torn journal and rotten chunk must be detected, quarantined and
// accounted, never surfaced as an invariant violation.
func TestCorruptionSoakIsClean(t *testing.T) {
	rep, err := ExploreGen(4, 25, GenerateCorrupt, nil)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if len(rep.Failures) != 0 {
		t.Fatalf("corruption soak found violations:\n%s", rep.Text())
	}
}

// TestBitRotQuarantinesBytes pins that the corruption fixtures are not
// vacuous: bit-rot over a crashed node's at-rest state must actually send
// bytes through the scrub's quarantine path, with consistent stats, while
// the verdict stays clean (detected corruption is accounted corruption).
func TestBitRotQuarantinesBytes(t *testing.T) {
	sc := crashed(2)
	sc.Faults = append(sc.Faults, Action{
		Kind: fault.BitRot, Node: 1, Factor: 0.2, FromUS: 12_000,
	})
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	r := &run{sc: sc, solo: -1}
	if err := r.setup(); err != nil {
		t.Fatal(err)
	}
	r.simulate()
	res := r.check()
	if res.Failed() {
		t.Fatalf("bit-rot scenario violated invariants: %v", res.Violations)
	}
	var quar int64
	for _, b := range r.quarBytes {
		quar += b
	}
	if quar == 0 {
		t.Fatal("bit-rot under a crashed journal quarantined nothing; the scrub path was not exercised")
	}
	var corrupt int64
	for _, c := range r.caches {
		corrupt += c.Stats.CorruptExtents
	}
	if corrupt == 0 {
		t.Fatal("no corrupt extents counted despite quarantined bytes")
	}
}

func TestExploreIsDeterministic(t *testing.T) {
	const iters = 8
	a, err := Explore(1, iters, nil)
	if err != nil {
		t.Fatalf("explore A: %v", err)
	}
	b, err := Explore(1, iters, nil)
	if err != nil {
		t.Fatalf("explore B: %v", err)
	}
	da, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Fatalf("same master seed, different digests:\n%s\n%s", a.Text(), b.Text())
	}
	if a.Clean == 0 {
		t.Fatalf("soak had no clean iterations:\n%s", a.Text())
	}
}

func TestExploreSoakIsClean(t *testing.T) {
	rep, err := Explore(1, 25, nil)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if len(rep.Failures) != 0 {
		t.Fatalf("soak found violations:\n%s", rep.Text())
	}
}

// TestInjectionsTripTheirInvariant is the oracle self-test: each deliberate
// sabotage must be caught by the invariant it targets. A green checker
// under its injection would miss the real bug class.
func TestInjectionsTripTheirInvariant(t *testing.T) {
	cases := map[string]Scenario{
		"lose-journal":          crashed(1),
		"lost-ack":              base(),
		"corrupt-replay":        crashed(3),
		"leak-lock":             base(),
		"stall":                 base(),
		"miscount-retry":        base(),
		"stuck-collective":      collective(),
		"cross-tenant-scribble": tenanted(),
		"overrun-span":          base(),
		"silent-corrupt":        crashed(2),
	}
	if len(cases) != len(injections) {
		t.Fatalf("test covers %d injections, registry has %d", len(cases), len(injections))
	}
	for name, sc := range cases {
		sc.Injection = name
		if name == "stall" {
			sc.EventBudget = 100_000
		}
		res := mustExecute(t, sc)
		want := Trips(name)
		found := false
		for _, inv := range res.ViolatedInvariants() {
			if inv == want {
				found = true
			}
		}
		if !found {
			t.Errorf("injection %q: invariant %q not tripped (got %v)",
				name, want, res.ViolatedInvariants())
		}
	}
}

func TestShrinkReducesFaultScheduleAndWorkload(t *testing.T) {
	// A failure caused by an injection, padded with irrelevant hardware
	// faults: the shrinker must strip the padding and bisect the workload.
	sc := Scenario{
		Seed: 42, Nodes: 3, PerNode: 2,
		Shape: ShapeStrided, BlockKB: 256, Blocks: 4,
		Mode: "enable", FlushFlag: "flush_onclose",
		Sessions:  1,
		Injection: "leak-lock",
		Faults: []Action{
			{Kind: fault.DegradeLink, Node: 0, Factor: 0.5, FromUS: 1000, ToUS: 5000},
			{Kind: fault.DegradeTarget, Target: 1, Factor: 0.5, FromUS: 2000, ToUS: 9000},
			{Kind: fault.DeviceENOSPC, Node: 2, FromUS: 3000, ToUS: 7000},
			{Kind: fault.FailTarget, Target: 3, FromUS: 4000, ToUS: 6000},
		},
	}
	sr, err := Shrink(sc)
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if len(sr.Minimal.Faults) > 3 {
		t.Fatalf("shrinker left %d fault actions, want <= 3: %+v",
			len(sr.Minimal.Faults), sr.Minimal.Faults)
	}
	if sr.Minimal.Blocks >= sc.Blocks || sr.Minimal.BlockKB >= sc.BlockKB {
		t.Errorf("workload not reduced: blocks %d->%d, block_kb %d->%d",
			sc.Blocks, sr.Minimal.Blocks, sc.BlockKB, sr.Minimal.BlockKB)
	}
	// The minimal scenario still fails the original invariant.
	res := mustExecute(t, sr.Minimal)
	found := false
	for _, inv := range res.ViolatedInvariants() {
		for _, orig := range sr.Invariants {
			if inv == orig {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("minimal scenario no longer fails the original invariants %v (got %v)",
			sr.Invariants, res.ViolatedInvariants())
	}
}

func TestShrinkRejectsPassingScenario(t *testing.T) {
	if _, err := Shrink(base()); err == nil {
		t.Fatal("shrink of a clean scenario should error")
	}
}

func TestReproRoundTrip(t *testing.T) {
	sc := base()
	sc.Injection = "leak-lock"
	res := mustExecute(t, sc)
	if !res.Failed() {
		t.Fatal("expected a failing result to capture")
	}
	rp := NewRepro(res, "leak-lock self-test")
	data, err := rp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseRepro(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res2, match, err := Replay(parsed)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !match {
		t.Fatalf("replay verdict %v, recorded %v", res2.ViolatedInvariants(), rp.Verdict)
	}
}

func TestParseReproRejectsBadInput(t *testing.T) {
	if _, err := ParseRepro([]byte("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ParseRepro([]byte(`{"version":99}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := ParseRepro([]byte(`{"version":1,"scenario":{"seed":1,"nodes":0}}`)); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestScenarioValidateRejectsBadInput(t *testing.T) {
	cases := []func(*Scenario){
		func(sc *Scenario) { sc.Nodes = 0 },
		func(sc *Scenario) { sc.Nodes = 9 },
		func(sc *Scenario) { sc.PerNode = 5 },
		func(sc *Scenario) { sc.BlockKB = 2 },
		func(sc *Scenario) { sc.Blocks = 0 },
		func(sc *Scenario) { sc.Sessions = 4 },
		func(sc *Scenario) { sc.Shape = "diagonal" },
		func(sc *Scenario) { sc.Mode = "disable" },
		func(sc *Scenario) { sc.FlushFlag = "flush_never" },
		func(sc *Scenario) { sc.Injection = "bogus" },
		func(sc *Scenario) {
			sc.Faults = []Action{{Kind: fault.FailDevice, Node: 7, FromUS: 100}}
		},
		func(sc *Scenario) {
			sc.Faults = []Action{{Kind: fault.FailTarget, Target: 9, FromUS: 100}}
		},
		func(sc *Scenario) {
			sc.Faults = []Action{{Kind: "melt", Node: 0, FromUS: 100}}
		},
		func(sc *Scenario) { // overlapping same-kind windows caught via Schedule().Validate
			sc.Faults = []Action{
				{Kind: fault.FailDevice, Node: 0, FromUS: 100, ToUS: 5000},
				{Kind: fault.FailDevice, Node: 0, FromUS: 2000, ToUS: 9000},
			}
		},
		func(sc *Scenario) { // lossy link without the reliable layer deadlocks
			sc.Faults = []Action{{Kind: fault.LossyLink, Node: 0, Factor: 0.1, FromUS: 100, ToUS: 5000}}
		},
		func(sc *Scenario) { // dup link is collective-only too
			sc.Faults = []Action{{Kind: fault.DupLink, Node: 0, Factor: 0.1, FromUS: 100, ToUS: 5000}}
		},
		func(sc *Scenario) { // permanent partition = dead cluster, not a finding
			sc.Faults = []Action{{Kind: fault.Partition, Nodes: []int{0}, FromUS: 100}}
		},
		func(sc *Scenario) { // partition group must leave survivors
			sc.Faults = []Action{{Kind: fault.Partition, Nodes: []int{0, 1}, FromUS: 100, ToUS: 5000}}
		},
		func(sc *Scenario) { // partition member outside the cluster
			sc.Faults = []Action{{Kind: fault.Partition, Nodes: []int{7}, FromUS: 100, ToUS: 5000}}
		},
		func(sc *Scenario) { // collective mode has no recovery sessions
			sc.Collective = true
			sc.Sessions = 2
		},
		func(sc *Scenario) { // collective mode needs cross-node traffic
			sc.Collective = true
			sc.Nodes = 1
		},
	}
	for i, mutate := range cases {
		sc := base()
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("case %d: invalid scenario accepted: %+v", i, sc)
		}
	}
}

func TestOffsetsAreDisjoint(t *testing.T) {
	for _, shape := range []string{ShapeContiguous, ShapeInterleaved, ShapeStrided} {
		sc := base()
		sc.Shape = shape
		sc.Blocks = 4
		seen := map[int64]string{}
		for rank := 0; rank < sc.ranks(); rank++ {
			for b := 0; b < sc.Blocks; b++ {
				off := sc.offsetFor(rank, b)
				if off%sc.blockSize() != 0 {
					t.Fatalf("%s: rank %d block %d offset %d not block-aligned", shape, rank, b, off)
				}
				if prev, dup := seen[off]; dup {
					t.Fatalf("%s: rank %d block %d collides with %s at offset %d", shape, rank, b, prev, off)
				}
				seen[off] = "earlier write"
			}
		}
	}
}
