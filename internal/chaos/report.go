package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// IterRecord is one failing iteration in a soak report.
type IterRecord struct {
	Iter       int         `json:"iter"`
	Seed       int64       `json:"seed"`
	Scenario   Scenario    `json:"scenario"`
	Violations []Violation `json:"violations"`
}

// Report aggregates one soak run. All fields serialize deterministically
// (maps render key-sorted), so the same master seed yields a byte-identical
// report — and digest — on every machine.
type Report struct {
	MasterSeed int64          `json:"master_seed"`
	Iters      int            `json:"iters"`
	Clean      int            `json:"clean"`
	Violations map[string]int `json:"violations"` // invariant -> failing iters
	Shapes     map[string]int `json:"shapes"`     // coverage: shape -> iters
	Modes      map[string]int `json:"modes"`      // coverage: cache mode -> iters
	Sessions   map[string]int `json:"sessions"`   // coverage: session count -> iters
	// Tenants counts multi-tenant iterations by tenant count. Omitted when
	// the soak generated none, keeping pre-tenant reports byte-identical.
	Tenants     map[string]int `json:"tenants,omitempty"`
	FaultsArmed int            `json:"faults_armed"`
	AckedOps    int64          `json:"acked_ops"`
	Events      int64          `json:"events"`
	WallNS      int64          `json:"wall_ns"` // total virtual time simulated
	Failures    []IterRecord   `json:"failures,omitempty"`
}

// Explore runs iters seeded scenarios and aggregates their verdicts.
// progress (optional) observes each result as it lands. The whole soak is
// a pure function of (masterSeed, iters).
func Explore(masterSeed int64, iters int, progress func(i int, res *Result)) (*Report, error) {
	return ExploreGen(masterSeed, iters, Generate, progress)
}

// ExploreGen is Explore with a custom scenario generator — e.g.
// GenerateNetFaults to soak only degraded-mode collective schedules. The
// soak is a pure function of (masterSeed, iters, gen).
func ExploreGen(masterSeed int64, iters int, gen func(*rand.Rand) Scenario, progress func(i int, res *Result)) (*Report, error) {
	rng := rand.New(rand.NewSource(masterSeed))
	rep := &Report{
		MasterSeed: masterSeed,
		Iters:      iters,
		Violations: map[string]int{},
		Shapes:     map[string]int{},
		Modes:      map[string]int{},
		Sessions:   map[string]int{},
	}
	for i := 0; i < iters; i++ {
		seed := rng.Int63()
		sc := gen(rand.New(rand.NewSource(seed)))
		sc.Seed = seed
		res, err := Execute(sc)
		if err != nil {
			return nil, fmt.Errorf("chaos: iter %d (seed %d): %w", i, seed, err)
		}
		rep.Shapes[sc.Shape]++
		rep.Modes[sc.Mode]++
		rep.Sessions[fmt.Sprintf("%d", sc.Sessions)]++
		if len(sc.Tenants) > 0 {
			if rep.Tenants == nil {
				rep.Tenants = map[string]int{}
			}
			rep.Tenants[fmt.Sprintf("%d", len(sc.Tenants))]++
		}
		rep.FaultsArmed += len(sc.Faults)
		rep.AckedOps += int64(res.AckedOps)
		rep.Events += res.Events
		rep.WallNS += res.WallNS
		if res.Failed() {
			for _, inv := range res.ViolatedInvariants() {
				rep.Violations[inv]++
			}
			rep.Failures = append(rep.Failures, IterRecord{
				Iter: i, Seed: seed, Scenario: sc, Violations: res.Violations,
			})
		} else {
			rep.Clean++
		}
		if progress != nil {
			progress(i, res)
		}
	}
	return rep, nil
}

// JSON renders the report as stable, indented JSON.
func (r *Report) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Digest returns the sha256 of the JSON rendering: the one-line proof that
// two soaks were byte-identical.
func (r *Report) Digest() (string, error) {
	data, err := r.JSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Text renders a deterministic human-readable summary.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos soak: %d iterations, master seed %d\n", r.Iters, r.MasterSeed)
	fmt.Fprintf(&b, "  clean: %d   failing: %d\n", r.Clean, r.Iters-r.Clean)
	fmt.Fprintf(&b, "  coverage: shapes %s | modes %s | sessions %s\n",
		renderCounts(r.Shapes), renderCounts(r.Modes), renderCounts(r.Sessions))
	if len(r.Tenants) > 0 {
		fmt.Fprintf(&b, "  coverage: tenants %s\n", renderCounts(r.Tenants))
	}
	fmt.Fprintf(&b, "  faults armed: %d   acked writes: %d\n", r.FaultsArmed, r.AckedOps)
	fmt.Fprintf(&b, "  kernel events: %d   virtual time: %.3fs\n",
		r.Events, float64(r.WallNS)/1e9)
	if len(r.Violations) > 0 {
		b.WriteString("  violations by invariant:\n")
		keys := make([]string, 0, len(r.Violations))
		for k := range r.Violations {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "    %-20s %d\n", k, r.Violations[k])
		}
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  FAIL iter %d seed %d: ", f.Iter, f.Seed)
		for i, v := range f.Violations {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	if digest, err := r.Digest(); err == nil {
		fmt.Fprintf(&b, "  report digest: sha256:%s\n", digest)
	}
	return b.String()
}

// renderCounts formats a coverage map deterministically.
func renderCounts(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, ",")
}
