package chaos

import (
	"encoding/json"
	"fmt"
)

// ShrinkResult records a minimization: the minimal scenario still failing
// (at least one of) the original invariants, and how many executions the
// search spent.
type ShrinkResult struct {
	Minimal    Scenario `json:"minimal"`
	Invariants []string `json:"invariants"` // of the original failure
	Evals      int      `json:"evals"`
}

// Shrink minimizes a failing scenario to a minimal reproducer: the fault
// schedule is reduced ddmin-style (remove halves, then quarters, down to
// single actions), then the workload is bisected (blocks, block size, rank
// count, session count). A candidate counts as "still failing" when it
// violates at least one invariant the original violated — shrinking must
// not wander onto a different bug. Shrink errors if sc does not fail.
func Shrink(sc Scenario) (*ShrinkResult, error) {
	base, err := Execute(sc)
	if err != nil {
		return nil, err
	}
	if !base.Failed() {
		return nil, fmt.Errorf("chaos: scenario does not fail; nothing to shrink")
	}
	target := map[string]bool{}
	for _, inv := range base.ViolatedInvariants() {
		target[inv] = true
	}
	evals := 1
	stillFails := func(c Scenario) bool {
		if c.Validate() != nil {
			return false
		}
		res, err := Execute(c)
		evals++
		if err != nil {
			return false
		}
		for _, inv := range res.ViolatedInvariants() {
			if target[inv] {
				return true
			}
		}
		return false
	}

	cur := sc
	cur.Faults = ddminFaults(cur, stillFails)
	cur = shrinkWorkload(cur, stillFails)
	// Workload reduction may have unblocked further schedule reduction.
	cur.Faults = ddminFaults(cur, stillFails)

	return &ShrinkResult{
		Minimal:    cur,
		Invariants: base.ViolatedInvariants(),
		Evals:      evals,
	}, nil
}

// ddminFaults removes fault actions in progressively smaller windows
// (halves first, then quarters, down to single actions), keeping any
// removal that preserves the failure.
func ddminFaults(sc Scenario, stillFails func(Scenario) bool) []Action {
	faults := append([]Action(nil), sc.Faults...)
	for window := len(faults); window >= 1; {
		removed := false
		for start := 0; start+window <= len(faults); start++ {
			cand := sc
			cand.Faults = append(append([]Action(nil), faults[:start]...), faults[start+window:]...)
			if stillFails(cand) {
				faults = cand.Faults
				removed = true
				// Restart this window size on the shorter list.
				start = -1
			}
		}
		if !removed || window > len(faults) {
			window /= 2
			if window > len(faults) {
				window = len(faults)
			}
		}
	}
	return faults
}

// shrinkWorkload bisects the workload dimensions to a fixpoint, trying the
// cheapest reductions first.
func shrinkWorkload(sc Scenario, stillFails func(Scenario) bool) Scenario {
	for changed := true; changed; {
		changed = false
		try := func(mutate func(*Scenario)) {
			cand := sc
			cand.Faults = append([]Action(nil), sc.Faults...)
			mutate(&cand)
			if scKey(cand) != scKey(sc) && stillFails(cand) {
				sc = cand
				changed = true
			}
		}
		if sc.Blocks > 1 {
			try(func(c *Scenario) { c.Blocks /= 2 })
		}
		if sc.BlockKB > 4 {
			try(func(c *Scenario) {
				c.BlockKB /= 2
				if c.BlockKB < 4 {
					c.BlockKB = 4
				}
			})
		}
		if sc.Sessions > 1 {
			try(func(c *Scenario) { c.Sessions-- })
		}
		if sc.PerNode > 1 {
			try(func(c *Scenario) { c.PerNode = 1 })
		}
		if sc.Nodes > 1 {
			try(func(c *Scenario) {
				// Can only drop nodes no fault refers to.
				max := 0
				for _, a := range c.Faults {
					if n := nodeRef(a); n > max {
						max = n
					}
				}
				if max+1 < c.Nodes {
					c.Nodes = max + 1
				}
			})
		}
	}
	return sc
}

// scKey renders the scenario minus its fault slice, so two candidates can
// be compared by workload value (Scenario itself is not comparable).
func scKey(sc Scenario) string {
	sc.Faults = nil
	out, _ := json.Marshal(sc)
	return string(out)
}

// nodeRef returns the highest node index an action pins, -1 for
// target-scoped actions.
func nodeRef(a Action) int {
	switch a.Kind {
	case "fail-target", "degrade-target":
		return -1
	case "partition":
		max := 0
		for _, n := range a.Nodes {
			if n > max {
				max = n
			}
		}
		return max
	}
	return a.Node
}
