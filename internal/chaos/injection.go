package chaos

import (
	"repro/internal/extent"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Injections deliberately sabotage a run so the oracle that should catch
// the sabotage can be regression-tested (the committed repro fixtures pin
// one injection per invariant class). They model the bug classes the
// explorer exists to find; a checker that stays green under its injection
// is a checker that would miss the real bug.
type injPhase int

const (
	phasePreRun   injPhase = iota // before the kernel runs
	phaseSession1                 // rank 0, right after the first open
	phaseStaging                  // rank 0, between the two recoveries
	phasePostRun                  // after the kernel, before the oracles
)

// injections maps each injection name to the phase it fires in and the
// invariant it must trip.
var injections = map[string]struct {
	phase injPhase
	trips string
}{
	// Drop every retained journal: a crashed rank's unsynced bytes become
	// untraceable — byte conservation must notice the hole.
	"lose-journal": {phasePostRun, InvConservation},
	// Corrupt durable bytes of a rank that was told everything succeeded.
	"lost-ack": {phasePostRun, InvLostAck},
	// Corrupt the cache payload between the two replays: the second replay
	// writes different bytes, so recover-twice != recover-once.
	"corrupt-replay": {phaseStaging, InvIdempotence},
	// Take a byte-range lock on the global file and never release it.
	"leak-lock": {phaseSession1, InvLockRelease},
	// Spin a process that re-arms forever: the event queue never drains
	// and the liveness watchdog must abort the run.
	"stall": {phasePreRun, InvLiveness},
	// Bump the retry counter without a matching traced retry.
	"miscount-retry": {phasePostRun, InvTraceMetrics},
	// Skew rank 0's collective accounting, as if it entered a collective
	// and never came back — the no_stuck_collective oracle must notice.
	"stuck-collective": {phasePostRun, InvStuckCollective},
	// Append a span that outlives the run: the critical path now attributes
	// more time than the kernel's wall clock, so the attribution-sums-to-
	// wall-time contract of critpath_consistency must trip.
	"overrun-span": {phasePostRun, InvCritPath},
	// Leak one tenant's pattern into another tenant's file: the victim's
	// digest no longer matches its solo same-seed run, which is exactly
	// what the tenant_isolation oracle exists to catch.
	"cross-tenant-scribble": {phasePostRun, InvTenantIsolation},
	// Flip one durable byte inside an extent the recovery replay claims to
	// have restored: scrub-and-repair said the data is back, so the
	// recovery_equivalence oracle must notice the bytes lie.
	"silent-corrupt": {phasePostRun, InvRecoveryEquivalence},
}

// Trips returns the invariant an injection is designed to violate ("" for
// unknown names); fixtures and self-tests assert against it.
func Trips(injection string) string { return injections[injection].trips }

// applyInjection fires the scenario's injection if it belongs to phase.
// mr is the acting rank for in-run phases.
func applyInjection(r *run, phase injPhase, mr ...*mpi.Rank) {
	inj, ok := injections[r.sc.Injection]
	if !ok || inj.phase != phase {
		return
	}
	switch r.sc.Injection {
	case "lose-journal":
		for _, key := range r.cl.CoreEnv.JournalKeys() {
			r.cl.CoreEnv.ClearJournal(key)
		}
	case "lost-ack":
		// Flip durable bytes under the first acked write of a rank that
		// saw no error — its ack is now a lie.
		for _, rec := range r.acked {
			if r.rankErr[rec.rank] != "" {
				continue
			}
			meta := r.cl.FS.Lookup(rec.file)
			if meta == nil {
				continue
			}
			n := rec.ext.Len
			if n > 64 {
				n = 64
			}
			junk := make([]byte, n)
			for i := range junk {
				junk[i] = ^pattern(rec.rank, rec.ext.Off+int64(i))
			}
			meta.Store().WriteAt(junk, rec.ext.Off, n)
			return
		}
	case "corrupt-replay":
		// One byte of cache payload under the first re-staged journal
		// extent; the second replay propagates it to the global file.
		for _, key := range r.idemKeys {
			exts := r.idemJ[key]
			if len(exts) == 0 {
				continue
			}
			for rank, k := range r.journalKey {
				if k != key {
					continue
				}
				cf, err := r.cl.NVMs[r.cacheNode[rank]].Open(r.cacheName[rank], false)
				if err != nil {
					continue
				}
				off := exts[0].Off
				b := []byte{^pattern(rank, off)}
				cf.Store().WriteAt(b, off, 1)
				return
			}
		}
	case "leak-lock":
		// An extent far past the workload so the leak never blocks anyone.
		r.cl.FS.Locks.Acquire(mr[0].Proc(), FilePath, pfs.WriteLock,
			extent.Extent{Off: 1 << 40, Len: 4096})
	case "stall":
		r.cl.Kernel.Spawn("chaos.stall", func(p *sim.Proc) {
			for {
				p.Sleep(10 * sim.Microsecond)
			}
		})
	case "miscount-retry":
		r.mreg.Counter("cache_sync_retries_total", metrics.L(metrics.KeyLayer, "core")).Inc()
	case "stuck-collective":
		r.cl.World.SkewCollAccounting(0)
	case "overrun-span":
		now := int64(r.cl.Kernel.Now())
		tk := r.tracer.Track(trace.GroupKernel, "chaos.overrun")
		r.tracer.SpanAt(tk, "chaos", "overrun", now, now+int64(sim.Millisecond))
	case "cross-tenant-scribble":
		// Write 64 bytes of tenant 0's pattern just past the last tenant's
		// own data — a foreign byte inside the victim's namespace that no
		// acked-write oracle covers, only the isolation digest.
		victim := len(r.sc.Tenants) - 1
		meta := r.cl.FS.Lookup(tenantFile(victim))
		if meta == nil {
			return
		}
		var span int64
		t := r.sc.Tenants[victim]
		for lr := 0; lr < t.Ranks; lr++ {
			for b := 0; b < t.Blocks; b++ {
				if end := t.offsetFor(r.sc.Shape, lr, b) + t.BlockKB<<10; end > span {
					span = end
				}
			}
		}
		meta.Store().WriteAt(patternBuf(0, span, 64), span, 64)
	case "silent-corrupt":
		// One durable byte under the first recovered extent of the first
		// rank whose recovery replayed anything.
		for rank := range r.recovered {
			exts := r.recovered[rank].Extents()
			if len(exts) == 0 {
				continue
			}
			meta := r.cl.FS.Lookup(FilePath)
			if meta == nil {
				return
			}
			off := exts[0].Off
			meta.Store().WriteAt([]byte{^pattern(rank, off)}, off, 1)
			return
		}
	}
}
