package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilTracerSafe locks in the disabled-tracer contract: every method on
// a nil *Tracer (and the zero Span) must be a safe no-op.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tk := tr.Track(GroupRanks, "rank 0")
	if tk != NoTrack {
		t.Fatalf("nil tracer Track = %d, want NoTrack", tk)
	}
	sp := tr.Begin(tk, "mpi", "barrier", 0)
	sp.End(10)
	tr.SpanAt(tk, "c", "n", 0, 5)
	tr.Instant(tk, "c", "n", 1)
	tr.Counter(tk, "q", 2, 3)
	if id := tr.AsyncBegin(tk, "c", "n", 0); id != 0 {
		t.Fatalf("nil AsyncBegin id = %d, want 0", id)
	}
	tr.AsyncEnd(tk, "c", "n", 1, 5)
	if tr.Len() != 0 || tr.Tracks() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer accumulated state")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("nil WriteChrome: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil-tracer chrome output is invalid JSON: %q", buf.String())
	}
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatalf("nil WriteSummary: %v", err)
	}
}

func buildSample() *Tracer {
	tr := New()
	r0 := tr.Track(GroupRanks, "rank 0")
	r1 := tr.Track(GroupRanks, "rank 1")
	st := tr.Track(GroupStations, "pfs.tgt0")
	tr.SpanAt(r0, "mpi", "allreduce", 1000, 51000, I("bytes", 64))
	tr.SpanAt(r1, "mpi", "allreduce", 1000, 41000)
	tr.SpanAt(st, "station", "pfs.tgt0", 2000, 12000)
	tr.Instant(r0, "cache", "cache_write", 60000, I("off", 0), I("bytes", 4096))
	tr.Counter(st, "queue", 2000, 1)
	tr.Counter(st, "queue", 5000, 3)
	tr.Counter(st, "queue", 12000, 0)
	id := tr.AsyncBegin(r0, "mpi", "p2p", 70000, I("dst", 1))
	tr.AsyncEnd(r1, "mpi", "p2p", id, 90123)
	return tr
}

// TestTrackDedupe checks that re-registering a (group, name) pair returns
// the same id and that per-group thread ids are sequential.
func TestTrackDedupe(t *testing.T) {
	tr := New()
	a := tr.Track(GroupRanks, "rank 0")
	b := tr.Track(GroupStations, "nic")
	c := tr.Track(GroupRanks, "rank 0")
	if a != c {
		t.Fatalf("re-registration returned %d, want %d", c, a)
	}
	if a == b {
		t.Fatal("distinct tracks share an id")
	}
	if tr.Tracks() != 2 {
		t.Fatalf("Tracks() = %d, want 2", tr.Tracks())
	}
	if tr.TrackName(a) != "rank 0" || tr.TrackName(b) != "nic" {
		t.Fatal("TrackName mismatch")
	}
}

// TestChromeExport checks the exporter emits valid JSON with the expected
// event phases and integer-math microsecond timestamps.
func TestChromeExport(t *testing.T) {
	tr := buildSample()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	out := buf.String()
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("chrome output is invalid JSON:\n%s", out)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
	}
	// 3 tracks -> 3 thread_name + 2 groups * 2 process metadata events.
	if phases["M"] != 7 {
		t.Fatalf("metadata events = %d, want 7", phases["M"])
	}
	if phases["X"] != 3 || phases["i"] != 1 || phases["C"] != 3 || phases["b"] != 1 || phases["e"] != 1 {
		t.Fatalf("phase counts = %v", phases)
	}
	// 90123 ns -> "90.123" µs, written via integer arithmetic.
	if !strings.Contains(out, "\"ts\":90.123") {
		t.Fatalf("expected integer-math timestamp 90.123 in output:\n%s", out)
	}
	// Counter series must be qualified by track name.
	if !strings.Contains(out, "\"pfs.tgt0:queue\"") {
		t.Fatalf("counter name not track-qualified:\n%s", out)
	}
}

// TestChromeDeterminism: identical recording sequences produce byte-identical
// exports, including map-backed structures (tracks, counters).
func TestChromeDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildSample().WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildSample().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chrome export is not byte-deterministic")
	}
	var sa, sb bytes.Buffer
	buildSample().WriteSummary(&sa)
	buildSample().WriteSummary(&sb)
	if !bytes.Equal(sa.Bytes(), sb.Bytes()) {
		t.Fatal("summary export is not byte-deterministic")
	}
}

// TestSummary checks aggregation, ordering and high-water marks.
func TestSummary(t *testing.T) {
	tr := buildSample()
	sum := tr.Summary()
	if !strings.Contains(sum, "9 events on 3 tracks") {
		t.Fatalf("summary header wrong:\n%s", sum)
	}
	// allreduce total (50µs+40µs) outranks the station span (10µs).
	iAll := strings.Index(sum, "allreduce")
	iStation := strings.Index(sum, "pfs.tgt0 ")
	if iAll < 0 || iStation < 0 || iAll > iStation {
		t.Fatalf("span ordering wrong:\n%s", sum)
	}
	if !strings.Contains(sum, "pfs.tgt0:queue") {
		t.Fatalf("counter missing from summary:\n%s", sum)
	}
	if got := tr.CounterMax(tr.Track(GroupStations, "pfs.tgt0"), "queue"); got != 3 {
		t.Fatalf("CounterMax = %d, want 3", got)
	}
}

// TestSpanClamp: spans never report negative durations.
func TestSpanClamp(t *testing.T) {
	tr := New()
	tk := tr.Track(GroupKernel, "kernel")
	tr.SpanAt(tk, "sim", "weird", 100, 50)
	if tr.Events()[0].Dur != 0 {
		t.Fatalf("negative duration not clamped: %d", tr.Events()[0].Dur)
	}
}

// TestArgsTruncated: at most two args are kept.
func TestArgsTruncated(t *testing.T) {
	tr := New()
	tk := tr.Track(GroupRanks, "rank 0")
	tr.Instant(tk, "c", "n", 0, I("a", 1), I("b", 2), I("c", 3))
	ev := tr.Events()[0]
	if ev.NArgs != 2 || ev.Args[0].Key != "a" || ev.Args[1].Key != "b" {
		t.Fatalf("args = %+v (n=%d)", ev.Args, ev.NArgs)
	}
}
