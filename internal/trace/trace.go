// Package trace is a deterministic, zero-allocation-biased event tracer
// for the simulated cluster: spans (durations), instant events, counters
// with high-water marks, and async spans (message lifetimes), all stamped
// with virtual time.
//
// The package deliberately does not import internal/sim: time is carried as
// raw int64 nanoseconds (the representation of sim.Time), which lets the
// simulation kernel itself own a *Tracer and every layer above it reach the
// tracer through its kernel without import cycles or constructor plumbing.
//
// Determinism is the point: the simulation is single-threaded and seeded,
// so events are appended in a reproducible order, tracks and counters are
// registered in first-use order, and both exporters (Chrome trace-event
// JSON and the plain-text summary) are written with integer arithmetic and
// explicit ordering only. Two runs with the same seed produce byte-identical
// output, which turns a checked-in trace into a regression oracle.
//
// All methods are nil-receiver safe: a nil *Tracer is the disabled tracer,
// and the disabled cost of an instrumentation site is one pointer test.
package trace

import "fmt"

// TrackID identifies one registered timeline (a Chrome "thread").
type TrackID int32

// NoTrack is the TrackID returned by a disabled tracer; events recorded
// against it are dropped.
const NoTrack TrackID = -1

// Track groups: the Chrome "process" a track belongs to. Groups keep the
// hundreds of per-rank, per-device and per-station timelines organised in
// the Perfetto UI.
const (
	GroupRanks    = 0 // one track per MPI rank
	GroupSync     = 1 // cache sync threads
	GroupStations = 2 // queueing stations: NICs, PFS targets, SSDs, caps
	GroupKernel   = 3 // simulation-kernel bookkeeping
	GroupFaults   = 4 // fault-injection lifecycle
)

// GroupName returns the display name of a track group.
func GroupName(g int) string {
	switch g {
	case GroupRanks:
		return "ranks"
	case GroupSync:
		return "sync-threads"
	case GroupStations:
		return "stations"
	case GroupKernel:
		return "kernel"
	case GroupFaults:
		return "faults"
	}
	return fmt.Sprintf("group%d", g)
}

// Kind distinguishes the event flavours.
type Kind uint8

// Event kinds.
const (
	KindSpan Kind = iota
	KindInstant
	KindCounter
	KindAsyncBegin
	KindAsyncEnd
)

// Arg is one integer key/value annotation on an event.
type Arg struct {
	Key string
	Val int64
}

// I builds an Arg; it keeps call sites compact.
func I(key string, val int64) Arg { return Arg{Key: key, Val: val} }

// Event is one recorded occurrence. Start and Dur are virtual nanoseconds.
type Event struct {
	Kind  Kind
	Track TrackID
	Cat   string
	Name  string
	Start int64
	Dur   int64  // spans only
	Value int64  // counters only
	ID    uint64 // async spans only
	Args  [2]Arg
	NArgs uint8
}

// track is one registered timeline.
type track struct {
	group int
	tid   int // id within the group
	name  string
}

type trackKey struct {
	group int
	name  string
}

// counterStat tracks one counter series' latest value and high-water mark.
type counterStat struct {
	track   TrackID
	name    string
	first   int64 // virtual time of the first sample
	last    int64
	max     int64
	samples int64
}

type counterKey struct {
	track TrackID
	name  string
}

// Tracer accumulates events. The zero value is not usable; create tracers
// with New. A nil *Tracer is the disabled tracer.
type Tracer struct {
	events     []Event
	tracks     []track
	trackIdx   map[trackKey]TrackID
	groupSizes map[int]int
	counters   []counterStat
	counterIdx map[counterKey]int
	asyncSeq   uint64
}

// New creates an empty tracer.
func New() *Tracer {
	return &Tracer{
		trackIdx:   make(map[trackKey]TrackID),
		groupSizes: make(map[int]int),
		counterIdx: make(map[counterKey]int),
	}
}

// Enabled reports whether the tracer records events.
func (t *Tracer) Enabled() bool { return t != nil }

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded events in append order (shared slice; callers
// must not mutate).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Track registers (or looks up) the timeline named name in the given group
// and returns its id. Registration order is first-use order, which is
// deterministic in a seeded simulation; callers should cache the result.
func (t *Tracer) Track(group int, name string) TrackID {
	if t == nil {
		return NoTrack
	}
	key := trackKey{group: group, name: name}
	if id, ok := t.trackIdx[key]; ok {
		return id
	}
	id := TrackID(len(t.tracks))
	t.tracks = append(t.tracks, track{group: group, tid: t.groupSizes[group], name: name})
	t.groupSizes[group]++
	t.trackIdx[key] = id
	return id
}

// TrackGroup returns the group a track belongs to, or -1 when the id is
// out of range (or the tracer is disabled).
func (t *Tracer) TrackGroup(id TrackID) int {
	if t == nil || id < 0 || int(id) >= len(t.tracks) {
		return -1
	}
	return t.tracks[id].group
}

// TrackName returns the display name of a track.
func (t *Tracer) TrackName(id TrackID) string {
	if t == nil || id < 0 || int(id) >= len(t.tracks) {
		return ""
	}
	return t.tracks[id].name
}

// Tracks returns the number of registered tracks.
func (t *Tracer) Tracks() int {
	if t == nil {
		return 0
	}
	return len(t.tracks)
}

// setArgs copies up to two args into ev.
func setArgs(ev *Event, args []Arg) {
	for i, a := range args {
		if i >= len(ev.Args) {
			break
		}
		ev.Args[i] = a
		ev.NArgs++
	}
}

// Span is an open interval handle: s := tr.Begin(...); ...; s.End(now).
// The zero Span (from a disabled tracer) is safe to End.
type Span struct {
	t     *Tracer
	track TrackID
	cat   string
	name  string
	start int64
}

// Begin opens a span on a track at virtual time now.
func (t *Tracer) Begin(tk TrackID, cat, name string, now int64) Span {
	if t == nil || tk < 0 {
		return Span{}
	}
	return Span{t: t, track: tk, cat: cat, name: name, start: now}
}

// End closes the span at virtual time now, recording a complete event.
func (s Span) End(now int64, args ...Arg) {
	if s.t == nil {
		return
	}
	s.t.SpanAt(s.track, s.cat, s.name, s.start, now, args...)
}

// SpanAt records a complete span over [start, end].
func (t *Tracer) SpanAt(tk TrackID, cat, name string, start, end int64, args ...Arg) {
	if t == nil || tk < 0 {
		return
	}
	ev := Event{Kind: KindSpan, Track: tk, Cat: cat, Name: name, Start: start, Dur: end - start}
	if ev.Dur < 0 {
		ev.Dur = 0
	}
	setArgs(&ev, args)
	t.events = append(t.events, ev)
}

// Instant records a point event at virtual time now.
func (t *Tracer) Instant(tk TrackID, cat, name string, now int64, args ...Arg) {
	if t == nil || tk < 0 {
		return
	}
	ev := Event{Kind: KindInstant, Track: tk, Cat: cat, Name: name, Start: now}
	setArgs(&ev, args)
	t.events = append(t.events, ev)
}

// Counter records the new value of the named counter series on a track and
// updates its high-water mark.
func (t *Tracer) Counter(tk TrackID, name string, now, val int64) {
	if t == nil || tk < 0 {
		return
	}
	key := counterKey{track: tk, name: name}
	i, ok := t.counterIdx[key]
	if !ok {
		i = len(t.counters)
		t.counters = append(t.counters, counterStat{track: tk, name: name, first: now})
		t.counterIdx[key] = i
	}
	st := &t.counters[i]
	st.last = val
	st.samples++
	if val > st.max {
		st.max = val
	}
	t.events = append(t.events, Event{Kind: KindCounter, Track: tk, Name: name, Start: now, Value: val})
}

// CounterMax returns the high-water mark of a counter series, or 0 when the
// series was never recorded.
func (t *Tracer) CounterMax(tk TrackID, name string) int64 {
	if t == nil {
		return 0
	}
	if i, ok := t.counterIdx[counterKey{track: tk, name: name}]; ok {
		return t.counters[i].max
	}
	return 0
}

// AsyncBegin opens an async span (an operation whose begin and end may lie
// on different tracks, such as a message in flight) and returns its id.
func (t *Tracer) AsyncBegin(tk TrackID, cat, name string, now int64, args ...Arg) uint64 {
	if t == nil || tk < 0 {
		return 0
	}
	t.asyncSeq++
	ev := Event{Kind: KindAsyncBegin, Track: tk, Cat: cat, Name: name, Start: now, ID: t.asyncSeq}
	setArgs(&ev, args)
	t.events = append(t.events, ev)
	return t.asyncSeq
}

// AsyncEnd closes the async span with the given id.
func (t *Tracer) AsyncEnd(tk TrackID, cat, name string, id uint64, now int64) {
	if t == nil || tk < 0 || id == 0 {
		return
	}
	t.events = append(t.events, Event{Kind: KindAsyncEnd, Track: tk, Cat: cat, Name: name, Start: now, ID: id})
}
