package trace

import (
	"strings"
	"testing"
)

// TestSummaryCounterOrdering pins the counter section's sort contract:
// counters are ordered by (track, first sample time, name), NOT by series
// registration order — registration order depends on how stations
// interleave on the host, while track and first-sample time are properties
// of the run itself. Two tracers whose series register in different orders
// (each series' own samples still in time order, as a deterministic sim
// delivers them) must render identical summaries.
func TestSummaryCounterOrdering(t *testing.T) {
	type series struct {
		track   string
		name    string
		ts, val []int64
	}
	all := []series{
		{"rank 0", "dirty", []int64{10, 50}, []int64{3, 1}},
		{"rank 0", "queue", []int64{20, 40}, []int64{5, 9}},
		{"rank 1", "dirty", []int64{30}, []int64{2}},
		{"rank 1", "queue", []int64{30}, []int64{7}},
	}
	build := func(order []int) string {
		tr := New()
		tracks := map[string]TrackID{
			"rank 0": tr.Track(GroupRanks, "rank 0"),
			"rank 1": tr.Track(GroupRanks, "rank 1"),
		}
		for _, i := range order {
			s := all[i]
			for j := range s.ts {
				tr.Counter(tracks[s.track], s.name, s.ts[j], s.val[j])
			}
		}
		return tr.Summary()
	}
	forward := build([]int{0, 1, 2, 3})
	shuffled := build([]int{3, 1, 2, 0})
	if forward != shuffled {
		t.Fatalf("summary depends on series registration order:\nforward:\n%s\nshuffled:\n%s",
			forward, shuffled)
	}
	// The rendered order itself: track "rank 0" before "rank 1"; within a
	// track, earlier first sample first (dirty@10 before queue@20), and
	// first-sample ties broken by name (rank 1 dirty before queue, both @30).
	want := []string{"rank 0:dirty", "rank 0:queue", "rank 1:dirty", "rank 1:queue"}
	pos := -1
	for _, label := range want {
		p := strings.Index(forward, label)
		if p < 0 {
			t.Fatalf("summary misses counter %q:\n%s", label, forward)
		}
		if p < pos {
			t.Errorf("counter %q out of order (want %v):\n%s", label, want, forward)
		}
		pos = p
	}
}

// TestSummaryCounterHighWater pins that the counter section reports the
// high-water mark, the last value and the sample count — not the sum.
func TestSummaryCounterHighWater(t *testing.T) {
	tr := New()
	tk := tr.Track(GroupKernel, "cache.sync")
	tr.Counter(tk, "queue", 10, 4)
	tr.Counter(tk, "queue", 20, 9)
	tr.Counter(tk, "queue", 30, 2)
	sum := tr.Summary()
	line := ""
	for _, l := range strings.Split(sum, "\n") {
		if strings.Contains(l, "cache.sync:queue") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("counter label missing:\n%s", sum)
	}
	fields := strings.Fields(line)
	if len(fields) != 4 || fields[1] != "9" || fields[2] != "2" || fields[3] != "3" {
		t.Errorf("want max=9 last=2 samples=3, got line %q", line)
	}
}
