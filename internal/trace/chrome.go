package trace

import (
	"bufio"
	"io"
	"strconv"
)

// WriteChrome writes the recorded events in the Chrome trace-event JSON
// format (the JSON Array Format wrapped in an object), loadable by Perfetto
// and chrome://tracing. Track groups become processes, tracks become
// threads, spans become "X" complete events, instants "i", counters "C",
// and async spans "b"/"e" pairs.
//
// The writer is hand-rolled on purpose: encoding/json renders floats (the
// format's microsecond timestamps) via shortest-representation formatting,
// which is stable but easy to destabilise by refactoring; writing the
// timestamps with integer arithmetic (µs + ".%03d" of the ns remainder)
// makes byte-identical output a structural property instead of an accident.
func (t *Tracer) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")
	first := true
	sep := func() {
		if first {
			first = false
			bw.WriteString("\n")
		} else {
			bw.WriteString(",\n")
		}
	}
	if t != nil {
		// Metadata: name the processes (groups) and threads (tracks).
		emitted := make(map[int]bool)
		for _, tk := range t.tracks {
			if !emitted[tk.group] {
				emitted[tk.group] = true
				sep()
				bw.WriteString("{\"ph\":\"M\",\"pid\":")
				writeInt(bw, int64(tk.group))
				bw.WriteString(",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":")
				writeString(bw, GroupName(tk.group))
				bw.WriteString("}}")
				sep()
				bw.WriteString("{\"ph\":\"M\",\"pid\":")
				writeInt(bw, int64(tk.group))
				bw.WriteString(",\"tid\":0,\"name\":\"process_sort_index\",\"args\":{\"sort_index\":")
				writeInt(bw, int64(tk.group))
				bw.WriteString("}}")
			}
			sep()
			bw.WriteString("{\"ph\":\"M\",\"pid\":")
			writeInt(bw, int64(tk.group))
			bw.WriteString(",\"tid\":")
			writeInt(bw, int64(tk.tid))
			bw.WriteString(",\"name\":\"thread_name\",\"args\":{\"name\":")
			writeString(bw, tk.name)
			bw.WriteString("}}")
		}
		for i := range t.events {
			ev := &t.events[i]
			tk := t.tracks[ev.Track]
			sep()
			switch ev.Kind {
			case KindSpan:
				bw.WriteString("{\"ph\":\"X\",\"pid\":")
				writeInt(bw, int64(tk.group))
				bw.WriteString(",\"tid\":")
				writeInt(bw, int64(tk.tid))
				bw.WriteString(",\"cat\":")
				writeString(bw, ev.Cat)
				bw.WriteString(",\"name\":")
				writeString(bw, ev.Name)
				bw.WriteString(",\"ts\":")
				writeMicros(bw, ev.Start)
				bw.WriteString(",\"dur\":")
				writeMicros(bw, ev.Dur)
				writeArgs(bw, ev)
				bw.WriteString("}")
			case KindInstant:
				bw.WriteString("{\"ph\":\"i\",\"pid\":")
				writeInt(bw, int64(tk.group))
				bw.WriteString(",\"tid\":")
				writeInt(bw, int64(tk.tid))
				bw.WriteString(",\"cat\":")
				writeString(bw, ev.Cat)
				bw.WriteString(",\"name\":")
				writeString(bw, ev.Name)
				bw.WriteString(",\"ts\":")
				writeMicros(bw, ev.Start)
				bw.WriteString(",\"s\":\"t\"")
				writeArgs(bw, ev)
				bw.WriteString("}")
			case KindCounter:
				// Chrome keys counter series by (pid, name); qualify the
				// name with the track so same-named counters on different
				// stations stay separate series.
				bw.WriteString("{\"ph\":\"C\",\"pid\":")
				writeInt(bw, int64(tk.group))
				bw.WriteString(",\"tid\":")
				writeInt(bw, int64(tk.tid))
				bw.WriteString(",\"name\":")
				writeString(bw, tk.name+":"+ev.Name)
				bw.WriteString(",\"ts\":")
				writeMicros(bw, ev.Start)
				bw.WriteString(",\"args\":{\"value\":")
				writeInt(bw, ev.Value)
				bw.WriteString("}}")
			case KindAsyncBegin, KindAsyncEnd:
				ph := "b"
				if ev.Kind == KindAsyncEnd {
					ph = "e"
				}
				bw.WriteString("{\"ph\":\"")
				bw.WriteString(ph)
				bw.WriteString("\",\"pid\":")
				writeInt(bw, int64(tk.group))
				bw.WriteString(",\"tid\":")
				writeInt(bw, int64(tk.tid))
				bw.WriteString(",\"cat\":")
				writeString(bw, ev.Cat)
				bw.WriteString(",\"name\":")
				writeString(bw, ev.Name)
				bw.WriteString(",\"id\":\"0x")
				bw.WriteString(strconv.FormatUint(ev.ID, 16))
				bw.WriteString("\",\"ts\":")
				writeMicros(bw, ev.Start)
				if ev.Kind == KindAsyncBegin {
					writeArgs(bw, ev)
				} else {
					bw.WriteString(",\"args\":{}")
				}
				bw.WriteString("}")
			}
		}
	}
	bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}

// writeMicros writes virtual nanoseconds as decimal microseconds using
// integer arithmetic only: 1234567 ns -> "1234.567".
func writeMicros(bw *bufio.Writer, ns int64) {
	neg := ns < 0
	if neg {
		bw.WriteByte('-')
		ns = -ns
	}
	writeInt(bw, ns/1000)
	rem := ns % 1000
	bw.WriteByte('.')
	bw.WriteByte(byte('0' + rem/100))
	bw.WriteByte(byte('0' + rem/10%10))
	bw.WriteByte(byte('0' + rem%10))
}

func writeInt(bw *bufio.Writer, v int64) {
	var buf [20]byte
	bw.Write(strconv.AppendInt(buf[:0], v, 10))
}

// writeString writes a JSON string literal. Track, category and event names
// are program-chosen identifiers; strconv.Quote covers the full escape set
// deterministically.
func writeString(bw *bufio.Writer, s string) {
	var buf [64]byte
	bw.Write(strconv.AppendQuote(buf[:0], s))
}

func writeArgs(bw *bufio.Writer, ev *Event) {
	if ev.NArgs == 0 {
		return
	}
	bw.WriteString(",\"args\":{")
	for i := 0; i < int(ev.NArgs); i++ {
		if i > 0 {
			bw.WriteByte(',')
		}
		writeString(bw, ev.Args[i].Key)
		bw.WriteByte(':')
		writeInt(bw, ev.Args[i].Val)
	}
	bw.WriteByte('}')
}
