package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// spanStat aggregates all spans sharing one (category, name) pair.
type spanStat struct {
	cat, name string
	count     int64
	total     int64
	max       int64
}

// topSpans returns per-(cat, name) span aggregates sorted by total virtual
// time descending, ties broken by category then name so the order is total.
func (t *Tracer) topSpans() []spanStat {
	if t == nil {
		return nil
	}
	idx := make(map[[2]string]int)
	var stats []spanStat
	for i := range t.events {
		ev := &t.events[i]
		if ev.Kind != KindSpan {
			continue
		}
		key := [2]string{ev.Cat, ev.Name}
		j, ok := idx[key]
		if !ok {
			j = len(stats)
			stats = append(stats, spanStat{cat: ev.Cat, name: ev.Name})
			idx[key] = j
		}
		st := &stats[j]
		st.count++
		st.total += ev.Dur
		if ev.Dur > st.max {
			st.max = ev.Dur
		}
	}
	sort.Slice(stats, func(a, b int) bool {
		if stats[a].total != stats[b].total {
			return stats[a].total > stats[b].total
		}
		if stats[a].cat != stats[b].cat {
			return stats[a].cat < stats[b].cat
		}
		return stats[a].name < stats[b].name
	})
	return stats
}

// WriteSummary writes a plain-text digest of the trace: event/track totals,
// the top span aggregates by total virtual time, and every counter series'
// high-water mark. The output is deterministic for a deterministic trace.
func (t *Tracer) WriteSummary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t == nil {
		fmt.Fprintln(bw, "trace: disabled")
		return bw.Flush()
	}
	fmt.Fprintf(bw, "trace summary: %d events on %d tracks\n", len(t.events), len(t.tracks))

	const topN = 24
	stats := t.topSpans()
	if len(stats) > 0 {
		fmt.Fprintf(bw, "top spans by total virtual time:\n")
		fmt.Fprintf(bw, "  %-14s %-22s %8s %14s %14s\n", "CAT", "NAME", "COUNT", "TOTAL", "MAX")
		for i, st := range stats {
			if i >= topN {
				fmt.Fprintf(bw, "  (+%d more)\n", len(stats)-topN)
				break
			}
			fmt.Fprintf(bw, "  %-14s %-22s %8d %14s %14s\n",
				st.cat, st.name, st.count, fmtDur(st.total), fmtDur(st.max))
		}
	}
	if len(t.counters) > 0 {
		fmt.Fprintf(bw, "counter high-water marks:\n")
		fmt.Fprintf(bw, "  %-38s %12s %12s %10s\n", "COUNTER", "MAX", "LAST", "SAMPLES")
		// Sort by track then first sample time (ties by name): registration
		// order depends on how runs interleave stations (faults can reorder
		// station start between -trace and -trace-summary runs), but track
		// and first-sample time are properties of the run itself.
		counters := make([]counterStat, len(t.counters))
		copy(counters, t.counters)
		sort.Slice(counters, func(a, b int) bool {
			if counters[a].track != counters[b].track {
				return counters[a].track < counters[b].track
			}
			if counters[a].first != counters[b].first {
				return counters[a].first < counters[b].first
			}
			return counters[a].name < counters[b].name
		})
		for _, c := range counters {
			label := t.tracks[c.track].name + ":" + c.name
			fmt.Fprintf(bw, "  %-38s %12d %12d %10d\n", label, c.max, c.last, c.samples)
		}
	}
	return bw.Flush()
}

// Summary returns WriteSummary's output as a string.
func (t *Tracer) Summary() string {
	var sb strings.Builder
	t.WriteSummary(&sb)
	return sb.String()
}

// fmtDur renders virtual nanoseconds with a human unit using integer
// arithmetic only, keeping summaries byte-deterministic across platforms.
func fmtDur(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%d.%03ds", ns/1_000_000_000, ns%1_000_000_000/1_000_000)
	case ns >= 1_000_000:
		return fmt.Sprintf("%d.%03dms", ns/1_000_000, ns%1_000_000/1_000)
	case ns >= 1_000:
		return fmt.Sprintf("%d.%03dus", ns/1_000, ns%1_000)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
