// Package netsim models the cluster interconnect: compute nodes with
// injection/ejection NIC bandwidth, a constant-latency fabric, and an
// intra-node memory path for ranks co-located on a node.
//
// The model is LogGP-flavoured: a message occupies the sender's injection
// port for size/injection-rate, travels for the fabric latency, then
// occupies the receiver's ejection port for size/ejection-rate. Eight ranks
// per node therefore contend for their shared NIC, which is one of the
// effects the paper's evaluation depends on.
package netsim

import (
	"fmt"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config describes a fabric.
type Config struct {
	Nodes      int      // number of compute nodes
	InjRate    sim.Rate // per-node injection (TX) bandwidth
	EjeRate    sim.Rate // per-node ejection (RX) bandwidth
	Latency    sim.Time // end-to-end wire latency
	MemRate    sim.Rate // intra-node copy bandwidth (shared per node)
	MemLatency sim.Time // intra-node copy latency
	InjJitter  sim.Dist // optional per-transfer jitter on NIC occupancy
}

// DefaultConfig returns parameters approximating the DEEP-ER cluster's
// InfiniBand QDR network (§IV-A of the paper).
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:      nodes,
		InjRate:    3.2 * sim.GBps,
		EjeRate:    3.2 * sim.GBps,
		Latency:    2 * sim.Microsecond,
		MemRate:    6 * sim.GBps,
		MemLatency: 300 * sim.Nanosecond,
		InjJitter:  sim.UnitLogNormal(0.03),
	}
}

// Fabric is the interconnect instance.
type Fabric struct {
	k     *sim.Kernel
	cfg   Config
	nodes []*Node

	// partition, when non-nil, is the set of node ids currently cut from
	// the rest of the fabric. Messages crossing the cut are dropped at the
	// sender; messages within one side flow normally.
	partition map[int]bool
	onChange  []func()
}

// New builds a fabric with cfg.Nodes nodes.
func New(k *sim.Kernel, cfg Config) *Fabric {
	if cfg.Nodes < 1 {
		panic("netsim: need at least one node")
	}
	f := &Fabric{k: k, cfg: cfg}
	f.nodes = make([]*Node, cfg.Nodes)
	for i := range f.nodes {
		f.nodes[i] = &Node{
			id:     i,
			fabric: f,
			inj:    sim.NewStation(k, fmt.Sprintf("node%d.tx", i), 1),
			eje:    sim.NewStation(k, fmt.Sprintf("node%d.rx", i), 1),
			mem:    sim.NewStation(k, fmt.Sprintf("node%d.mem", i), 1),
			slow:   1,
		}
	}
	return f
}

// Kernel returns the owning simulation kernel.
func (f *Fabric) Kernel() *sim.Kernel { return f.k }

// Nodes returns the node count.
func (f *Fabric) Nodes() int { return len(f.nodes) }

// Node returns node i.
func (f *Fabric) Node(i int) *Node { return f.nodes[i] }

// Latency returns the configured fabric latency.
func (f *Fabric) Latency() sim.Time { return f.cfg.Latency }

// SetPartition cuts the fabric between group and the remaining nodes (on
// true), or heals the cut (on false, group ignored). While a partition is
// up, any message whose source and destination fall on opposite sides is
// dropped at the sender's NIC. Registered OnChange observers run after the
// topology flips so held collectives can re-evaluate reachability.
func (f *Fabric) SetPartition(group []int, on bool) {
	if on {
		f.partition = make(map[int]bool, len(group))
		for _, id := range group {
			if id < 0 || id >= len(f.nodes) {
				panic(fmt.Sprintf("netsim: partition node %d outside [0,%d)", id, len(f.nodes)))
			}
			f.partition[id] = true
		}
	} else {
		f.partition = nil
	}
	for _, fn := range f.onChange {
		fn()
	}
}

// Partitioned reports whether nodes a and b are currently on opposite sides
// of a partition.
func (f *Fabric) Partitioned(a, b int) bool {
	if f.partition == nil || a == b {
		return false
	}
	return f.partition[a] != f.partition[b]
}

// Isolated reports whether node id is currently cut from at least one other
// node of the fabric.
func (f *Fabric) Isolated(id int) bool {
	if f.partition == nil {
		return false
	}
	in := f.partition[id]
	for other := range f.nodes {
		if other != id && f.partition[other] != in {
			return true
		}
	}
	return false
}

// Drops returns the total outbound messages lost across all nodes (lossy
// links and partition cuts).
func (f *Fabric) Drops() int64 {
	var n int64
	for _, nd := range f.nodes {
		n += nd.drops
	}
	return n
}

// OnChange registers fn to run after every partition topology change.
func (f *Fabric) OnChange(fn func()) { f.onChange = append(f.onChange, fn) }

// Fate classifies what the fabric does to one message attempt.
type Fate int

const (
	FateDeliver   Fate = iota // message arrives normally
	FateDrop                  // lost on the wire (lossy link)
	FateDup                   // delivered, then delivered again
	FatePartition             // dropped at the cut between partitioned sides
)

// MessageFate decides, consuming the kernel RNG only when a lossy/dup
// probability is armed on the source node, what happens to a message from
// src to dst. Partition checks are free (no randomness), so an idle fabric
// with no faults armed draws nothing — determinism of fault-free runs is
// preserved.
func (f *Fabric) MessageFate(src, dst int) Fate {
	if f.Partitioned(src, dst) {
		return FatePartition
	}
	n := f.nodes[src]
	if n.dropP > 0 && f.k.Rand().Float64() < n.dropP {
		return FateDrop
	}
	if n.dupP > 0 && f.k.Rand().Float64() < n.dupP {
		return FateDup
	}
	return FateDeliver
}

// Node is one compute node's network endpoint.
type Node struct {
	id     int
	fabric *Fabric
	inj    *sim.Station
	eje    *sim.Station
	mem    *sim.Station
	slow   float64 // link speed factor in (0, 1]; 1 = nominal
	dropP  float64 // probability an outbound message is lost; 0 = reliable
	dupP   float64 // probability an outbound message is duplicated
	drops  int64   // messages lost on this node's outbound link
	dups   int64   // messages duplicated on this node's outbound link

	// Metric handles, registered lazily on first use (the registry may be
	// attached to the kernel after the fabric is built).
	mreg   bool
	mTx    *metrics.Counter
	mRx    *metrics.Counter
	mCopy  *metrics.Counter
	mInjNs *metrics.Histogram // injection-port occupancy incl. queueing
	mEjeNs *metrics.Histogram // ejection-port occupancy incl. queueing
	mDegr  *metrics.Counter   // SetDegraded transitions
	mDrops *metrics.Counter   // messages lost to a lossy link or partition
	mDups  *metrics.Counter   // messages duplicated by a dup link
}

// metricsOn resolves (and caches) this node's metric handles; it returns
// false when metrics are disabled, keeping the disabled cost one branch.
func (n *Node) metricsOn() bool {
	m := n.fabric.k.Metrics()
	if m == nil {
		return false
	}
	if !n.mreg {
		layer := metrics.L(metrics.KeyLayer, "netsim")
		node := metrics.L(metrics.KeyNode, strconv.Itoa(n.id))
		n.mTx = m.Counter("net_tx_bytes_total", layer, node)
		n.mRx = m.Counter("net_rx_bytes_total", layer, node)
		n.mCopy = m.Counter("net_copy_bytes_total", layer, node)
		n.mInjNs = m.Histogram("net_inj_ns", layer, node)
		n.mEjeNs = m.Histogram("net_eje_ns", layer, node)
		n.mDegr = m.Counter("net_degrade_events_total", layer, node)
		n.mDrops = m.Counter("net_msgs_dropped_total", layer, node)
		n.mDups = m.Counter("net_msgs_duplicated_total", layer, node)
		n.mreg = true
	}
	return true
}

// ID returns the node index.
func (n *Node) ID() int { return n.id }

// SetDegraded scales this node's NIC bandwidth to factor (in (0, 1]) of
// nominal — a flapping link or failed-over lane. factor 1 restores full
// speed.
func (n *Node) SetDegraded(factor float64) {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("netsim: degrade factor %v outside (0, 1]", factor))
	}
	n.slow = factor
	if n.metricsOn() {
		n.mDegr.Inc()
	}
}

// Degraded returns the current link speed factor.
func (n *Node) Degraded() float64 { return n.slow }

// SetLossy arms (or, with p == 0, disarms) probabilistic message loss on
// this node's outbound link. p must lie in [0, 1).
func (n *Node) SetLossy(p float64) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("netsim: loss probability %v outside [0, 1)", p))
	}
	n.dropP = p
}

// Lossy returns the current outbound loss probability.
func (n *Node) Lossy() float64 { return n.dropP }

// SetDup arms (or, with p == 0, disarms) probabilistic message duplication
// on this node's outbound link. p must lie in [0, 1).
func (n *Node) SetDup(p float64) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("netsim: dup probability %v outside [0, 1)", p))
	}
	n.dupP = p
}

// Dup returns the current outbound duplication probability.
func (n *Node) Dup() float64 { return n.dupP }

// Isolated reports whether this node is on the cut side of an active
// partition (see Fabric.Isolated).
func (n *Node) Isolated() bool { return n.fabric.Isolated(n.id) }

// CountDrop records one message lost on this node's outbound link (lossy
// link or partition cut). The bytes never reach the wire, so only the
// counter moves.
func (n *Node) CountDrop() {
	n.drops++
	if n.metricsOn() {
		n.mDrops.Inc()
	}
}

// Drops returns how many outbound messages this node has lost.
func (n *Node) Drops() int64 { return n.drops }

// CountDup records one message duplicated on this node's outbound link.
func (n *Node) CountDup() {
	n.dups++
	if n.metricsOn() {
		n.mDups.Inc()
	}
}

// Dups returns how many outbound messages this node has duplicated.
func (n *Node) Dups() int64 { return n.dups }

// stretch scales a nominal NIC duration by the degradation factor.
func (n *Node) stretch(d sim.Time) sim.Time {
	if n.slow == 1 {
		return d
	}
	return sim.Time(float64(d) / n.slow)
}

// Inject occupies the node's TX port for the injection time of size bytes.
// It returns after the message has fully left the sender.
func (n *Node) Inject(p *sim.Proc, size int64) {
	cfg := n.fabric.cfg
	d := sim.Jitter(n.fabric.k.Rand(), cfg.InjJitter, cfg.InjRate.DurationFor(size))
	if n.metricsOn() {
		t0 := n.fabric.k.Now()
		n.inj.Serve(p, n.stretch(d))
		n.mInjNs.Observe(int64(n.fabric.k.Now() - t0))
		n.mTx.Add(size)
	} else {
		n.inj.Serve(p, n.stretch(d))
	}
	n.inj.Bytes += size
}

// Eject occupies the node's RX port for the ejection time of size bytes.
func (n *Node) Eject(p *sim.Proc, size int64) {
	cfg := n.fabric.cfg
	d := n.stretch(cfg.EjeRate.DurationFor(size))
	if n.metricsOn() {
		t0 := n.fabric.k.Now()
		n.eje.Serve(p, d)
		n.mEjeNs.Observe(int64(n.fabric.k.Now() - t0))
		n.mRx.Add(size)
	} else {
		n.eje.Serve(p, d)
	}
	n.eje.Bytes += size
}

// LocalCopy charges the shared intra-node memory path for size bytes; used
// for messages between ranks on the same node and for buffer packing.
func (n *Node) LocalCopy(p *sim.Proc, size int64) {
	cfg := n.fabric.cfg
	n.mem.ServeBytes(p, cfg.MemLatency, cfg.MemRate, size)
	if n.metricsOn() {
		n.mCopy.Add(size)
	}
}

// Transfer moves size bytes from n to dst, blocking p for the full transfer:
// injection, wire latency and ejection (or a local copy when dst == n).
func (n *Node) Transfer(p *sim.Proc, dst *Node, size int64) {
	if dst == n {
		n.LocalCopy(p, size)
		return
	}
	n.Inject(p, size)
	p.Sleep(n.fabric.cfg.Latency)
	dst.Eject(p, size)
}

// TxBytes reports the bytes injected by this node so far.
func (n *Node) TxBytes() int64 { return n.inj.Bytes }

// RxBytes reports the bytes ejected to this node so far.
func (n *Node) RxBytes() int64 { return n.eje.Bytes }
