// Package netsim models the cluster interconnect: compute nodes with
// injection/ejection NIC bandwidth, a constant-latency fabric, and an
// intra-node memory path for ranks co-located on a node.
//
// The model is LogGP-flavoured: a message occupies the sender's injection
// port for size/injection-rate, travels for the fabric latency, then
// occupies the receiver's ejection port for size/ejection-rate. Eight ranks
// per node therefore contend for their shared NIC, which is one of the
// effects the paper's evaluation depends on.
package netsim

import (
	"fmt"

	"repro/internal/sim"
)

// Config describes a fabric.
type Config struct {
	Nodes      int      // number of compute nodes
	InjRate    sim.Rate // per-node injection (TX) bandwidth
	EjeRate    sim.Rate // per-node ejection (RX) bandwidth
	Latency    sim.Time // end-to-end wire latency
	MemRate    sim.Rate // intra-node copy bandwidth (shared per node)
	MemLatency sim.Time // intra-node copy latency
	InjJitter  sim.Dist // optional per-transfer jitter on NIC occupancy
}

// DefaultConfig returns parameters approximating the DEEP-ER cluster's
// InfiniBand QDR network (§IV-A of the paper).
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:      nodes,
		InjRate:    3.2 * sim.GBps,
		EjeRate:    3.2 * sim.GBps,
		Latency:    2 * sim.Microsecond,
		MemRate:    6 * sim.GBps,
		MemLatency: 300 * sim.Nanosecond,
		InjJitter:  sim.UnitLogNormal(0.03),
	}
}

// Fabric is the interconnect instance.
type Fabric struct {
	k     *sim.Kernel
	cfg   Config
	nodes []*Node
}

// New builds a fabric with cfg.Nodes nodes.
func New(k *sim.Kernel, cfg Config) *Fabric {
	if cfg.Nodes < 1 {
		panic("netsim: need at least one node")
	}
	f := &Fabric{k: k, cfg: cfg}
	f.nodes = make([]*Node, cfg.Nodes)
	for i := range f.nodes {
		f.nodes[i] = &Node{
			id:     i,
			fabric: f,
			inj:    sim.NewStation(k, fmt.Sprintf("node%d.tx", i), 1),
			eje:    sim.NewStation(k, fmt.Sprintf("node%d.rx", i), 1),
			mem:    sim.NewStation(k, fmt.Sprintf("node%d.mem", i), 1),
			slow:   1,
		}
	}
	return f
}

// Kernel returns the owning simulation kernel.
func (f *Fabric) Kernel() *sim.Kernel { return f.k }

// Nodes returns the node count.
func (f *Fabric) Nodes() int { return len(f.nodes) }

// Node returns node i.
func (f *Fabric) Node(i int) *Node { return f.nodes[i] }

// Latency returns the configured fabric latency.
func (f *Fabric) Latency() sim.Time { return f.cfg.Latency }

// Node is one compute node's network endpoint.
type Node struct {
	id     int
	fabric *Fabric
	inj    *sim.Station
	eje    *sim.Station
	mem    *sim.Station
	slow   float64 // link speed factor in (0, 1]; 1 = nominal
}

// ID returns the node index.
func (n *Node) ID() int { return n.id }

// SetDegraded scales this node's NIC bandwidth to factor (in (0, 1]) of
// nominal — a flapping link or failed-over lane. factor 1 restores full
// speed.
func (n *Node) SetDegraded(factor float64) {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("netsim: degrade factor %v outside (0, 1]", factor))
	}
	n.slow = factor
}

// Degraded returns the current link speed factor.
func (n *Node) Degraded() float64 { return n.slow }

// stretch scales a nominal NIC duration by the degradation factor.
func (n *Node) stretch(d sim.Time) sim.Time {
	if n.slow == 1 {
		return d
	}
	return sim.Time(float64(d) / n.slow)
}

// Inject occupies the node's TX port for the injection time of size bytes.
// It returns after the message has fully left the sender.
func (n *Node) Inject(p *sim.Proc, size int64) {
	cfg := n.fabric.cfg
	d := sim.Jitter(n.fabric.k.Rand(), cfg.InjJitter, cfg.InjRate.DurationFor(size))
	n.inj.Serve(p, n.stretch(d))
	n.inj.Bytes += size
}

// Eject occupies the node's RX port for the ejection time of size bytes.
func (n *Node) Eject(p *sim.Proc, size int64) {
	cfg := n.fabric.cfg
	n.eje.Serve(p, n.stretch(cfg.EjeRate.DurationFor(size)))
	n.eje.Bytes += size
}

// LocalCopy charges the shared intra-node memory path for size bytes; used
// for messages between ranks on the same node and for buffer packing.
func (n *Node) LocalCopy(p *sim.Proc, size int64) {
	cfg := n.fabric.cfg
	n.mem.ServeBytes(p, cfg.MemLatency, cfg.MemRate, size)
}

// Transfer moves size bytes from n to dst, blocking p for the full transfer:
// injection, wire latency and ejection (or a local copy when dst == n).
func (n *Node) Transfer(p *sim.Proc, dst *Node, size int64) {
	if dst == n {
		n.LocalCopy(p, size)
		return
	}
	n.Inject(p, size)
	p.Sleep(n.fabric.cfg.Latency)
	dst.Eject(p, size)
}

// TxBytes reports the bytes injected by this node so far.
func (n *Node) TxBytes() int64 { return n.inj.Bytes }

// RxBytes reports the bytes ejected to this node so far.
func (n *Node) RxBytes() int64 { return n.eje.Bytes }
