// Package netsim models the cluster interconnect: compute nodes with
// injection/ejection NIC bandwidth, a constant-latency fabric, and an
// intra-node memory path for ranks co-located on a node.
//
// The model is LogGP-flavoured: a message occupies the sender's injection
// port for size/injection-rate, travels for the fabric latency, then
// occupies the receiver's ejection port for size/ejection-rate. Eight ranks
// per node therefore contend for their shared NIC, which is one of the
// effects the paper's evaluation depends on.
package netsim

import (
	"fmt"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config describes a fabric.
type Config struct {
	Nodes      int      // number of compute nodes
	InjRate    sim.Rate // per-node injection (TX) bandwidth
	EjeRate    sim.Rate // per-node ejection (RX) bandwidth
	Latency    sim.Time // end-to-end wire latency
	MemRate    sim.Rate // intra-node copy bandwidth (shared per node)
	MemLatency sim.Time // intra-node copy latency
	InjJitter  sim.Dist // optional per-transfer jitter on NIC occupancy
}

// DefaultConfig returns parameters approximating the DEEP-ER cluster's
// InfiniBand QDR network (§IV-A of the paper).
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:      nodes,
		InjRate:    3.2 * sim.GBps,
		EjeRate:    3.2 * sim.GBps,
		Latency:    2 * sim.Microsecond,
		MemRate:    6 * sim.GBps,
		MemLatency: 300 * sim.Nanosecond,
		InjJitter:  sim.UnitLogNormal(0.03),
	}
}

// Fabric is the interconnect instance.
type Fabric struct {
	k     *sim.Kernel
	cfg   Config
	nodes []*Node
}

// New builds a fabric with cfg.Nodes nodes.
func New(k *sim.Kernel, cfg Config) *Fabric {
	if cfg.Nodes < 1 {
		panic("netsim: need at least one node")
	}
	f := &Fabric{k: k, cfg: cfg}
	f.nodes = make([]*Node, cfg.Nodes)
	for i := range f.nodes {
		f.nodes[i] = &Node{
			id:     i,
			fabric: f,
			inj:    sim.NewStation(k, fmt.Sprintf("node%d.tx", i), 1),
			eje:    sim.NewStation(k, fmt.Sprintf("node%d.rx", i), 1),
			mem:    sim.NewStation(k, fmt.Sprintf("node%d.mem", i), 1),
			slow:   1,
		}
	}
	return f
}

// Kernel returns the owning simulation kernel.
func (f *Fabric) Kernel() *sim.Kernel { return f.k }

// Nodes returns the node count.
func (f *Fabric) Nodes() int { return len(f.nodes) }

// Node returns node i.
func (f *Fabric) Node(i int) *Node { return f.nodes[i] }

// Latency returns the configured fabric latency.
func (f *Fabric) Latency() sim.Time { return f.cfg.Latency }

// Node is one compute node's network endpoint.
type Node struct {
	id     int
	fabric *Fabric
	inj    *sim.Station
	eje    *sim.Station
	mem    *sim.Station
	slow   float64 // link speed factor in (0, 1]; 1 = nominal

	// Metric handles, registered lazily on first use (the registry may be
	// attached to the kernel after the fabric is built).
	mreg   bool
	mTx    *metrics.Counter
	mRx    *metrics.Counter
	mCopy  *metrics.Counter
	mInjNs *metrics.Histogram // injection-port occupancy incl. queueing
	mEjeNs *metrics.Histogram // ejection-port occupancy incl. queueing
	mDegr  *metrics.Counter   // SetDegraded transitions
}

// metricsOn resolves (and caches) this node's metric handles; it returns
// false when metrics are disabled, keeping the disabled cost one branch.
func (n *Node) metricsOn() bool {
	m := n.fabric.k.Metrics()
	if m == nil {
		return false
	}
	if !n.mreg {
		layer := metrics.L(metrics.KeyLayer, "netsim")
		node := metrics.L(metrics.KeyNode, strconv.Itoa(n.id))
		n.mTx = m.Counter("net_tx_bytes_total", layer, node)
		n.mRx = m.Counter("net_rx_bytes_total", layer, node)
		n.mCopy = m.Counter("net_copy_bytes_total", layer, node)
		n.mInjNs = m.Histogram("net_inj_ns", layer, node)
		n.mEjeNs = m.Histogram("net_eje_ns", layer, node)
		n.mDegr = m.Counter("net_degrade_events_total", layer, node)
		n.mreg = true
	}
	return true
}

// ID returns the node index.
func (n *Node) ID() int { return n.id }

// SetDegraded scales this node's NIC bandwidth to factor (in (0, 1]) of
// nominal — a flapping link or failed-over lane. factor 1 restores full
// speed.
func (n *Node) SetDegraded(factor float64) {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("netsim: degrade factor %v outside (0, 1]", factor))
	}
	n.slow = factor
	if n.metricsOn() {
		n.mDegr.Inc()
	}
}

// Degraded returns the current link speed factor.
func (n *Node) Degraded() float64 { return n.slow }

// stretch scales a nominal NIC duration by the degradation factor.
func (n *Node) stretch(d sim.Time) sim.Time {
	if n.slow == 1 {
		return d
	}
	return sim.Time(float64(d) / n.slow)
}

// Inject occupies the node's TX port for the injection time of size bytes.
// It returns after the message has fully left the sender.
func (n *Node) Inject(p *sim.Proc, size int64) {
	cfg := n.fabric.cfg
	d := sim.Jitter(n.fabric.k.Rand(), cfg.InjJitter, cfg.InjRate.DurationFor(size))
	if n.metricsOn() {
		t0 := n.fabric.k.Now()
		n.inj.Serve(p, n.stretch(d))
		n.mInjNs.Observe(int64(n.fabric.k.Now() - t0))
		n.mTx.Add(size)
	} else {
		n.inj.Serve(p, n.stretch(d))
	}
	n.inj.Bytes += size
}

// Eject occupies the node's RX port for the ejection time of size bytes.
func (n *Node) Eject(p *sim.Proc, size int64) {
	cfg := n.fabric.cfg
	d := n.stretch(cfg.EjeRate.DurationFor(size))
	if n.metricsOn() {
		t0 := n.fabric.k.Now()
		n.eje.Serve(p, d)
		n.mEjeNs.Observe(int64(n.fabric.k.Now() - t0))
		n.mRx.Add(size)
	} else {
		n.eje.Serve(p, d)
	}
	n.eje.Bytes += size
}

// LocalCopy charges the shared intra-node memory path for size bytes; used
// for messages between ranks on the same node and for buffer packing.
func (n *Node) LocalCopy(p *sim.Proc, size int64) {
	cfg := n.fabric.cfg
	n.mem.ServeBytes(p, cfg.MemLatency, cfg.MemRate, size)
	if n.metricsOn() {
		n.mCopy.Add(size)
	}
}

// Transfer moves size bytes from n to dst, blocking p for the full transfer:
// injection, wire latency and ejection (or a local copy when dst == n).
func (n *Node) Transfer(p *sim.Proc, dst *Node, size int64) {
	if dst == n {
		n.LocalCopy(p, size)
		return
	}
	n.Inject(p, size)
	p.Sleep(n.fabric.cfg.Latency)
	dst.Eject(p, size)
}

// TxBytes reports the bytes injected by this node so far.
func (n *Node) TxBytes() int64 { return n.inj.Bytes }

// RxBytes reports the bytes ejected to this node so far.
func (n *Node) RxBytes() int64 { return n.eje.Bytes }
